package clusterdb

import (
	"fmt"
	"strconv"
	"strings"
)

// This file stores the facts a node's first-boot agent reports about itself
// — the observed counterpart to the nodes table's expected profile. Facts
// live in the same durable database as everything else, so a report written
// before a frontend crash is still there after WAL recovery and drift
// detection picks up where it left off.

// Facts mirrors one row of the facts table: what one node most recently
// claimed to be. NICs is the canonical encoded NIC set (see EncodeNICs) and
// ReportedAt is the frontend's receive time in Unix nanoseconds.
type Facts struct {
	MAC        string
	Name       string
	Arch       string
	CPUs       int
	MemMB      int
	DiskType   string
	DiskMB     int
	NICs       string
	ReportedAt int64
}

// EncodeNICs flattens a NIC set into the facts-table text encoding:
// "type/mac/mbps" entries joined by ";". Callers sort entries first when a
// canonical order matters.
func EncodeNICs(entries []string) string { return strings.Join(entries, ";") }

const factsCols = "mac, name, arch, cpus, mem_mb, disk_type, disk_mb, nics, reported_at"

func factsFromRow(row []Value) Facts {
	geti := func(v Value) int { n, _ := v.AsInt(); return int(n) }
	at, _ := row[8].AsInt()
	return Facts{
		MAC:        row[0].String(),
		Name:       row[1].String(),
		Arch:       row[2].String(),
		CPUs:       geti(row[3]),
		MemMB:      geti(row[4]),
		DiskType:   row[5].String(),
		DiskMB:     geti(row[6]),
		NICs:       row[7].String(),
		ReportedAt: at,
	}
}

// UpsertFacts records a node's latest report, replacing any previous row for
// the same MAC. Both paths are plain SQL through Exec, so the write-ahead
// log covers them.
func UpsertFacts(db *Database, f Facts) error {
	res, err := db.Exec(fmt.Sprintf(
		`UPDATE facts SET name = '%s', arch = '%s', cpus = %d, mem_mb = %d,
		 disk_type = '%s', disk_mb = %d, nics = '%s', reported_at = %s
		 WHERE mac = '%s'`,
		sqlEscape(f.Name), sqlEscape(f.Arch), f.CPUs, f.MemMB,
		sqlEscape(f.DiskType), f.DiskMB, sqlEscape(f.NICs),
		strconv.FormatInt(f.ReportedAt, 10), sqlEscape(f.MAC)))
	if err != nil {
		return err
	}
	if res.Affected == 0 {
		_, err = db.Exec(fmt.Sprintf(
			`INSERT INTO facts (%s) VALUES ('%s', '%s', '%s', %d, %d, '%s', %d, '%s', %s)`,
			factsCols, sqlEscape(f.MAC), sqlEscape(f.Name), sqlEscape(f.Arch),
			f.CPUs, f.MemMB, sqlEscape(f.DiskType), f.DiskMB, sqlEscape(f.NICs),
			strconv.FormatInt(f.ReportedAt, 10)))
	}
	return err
}

// FactsByMAC returns the most recent report for one node, if any.
func FactsByMAC(db *Database, mac string) (Facts, bool, error) {
	res, err := db.Query(fmt.Sprintf(
		"SELECT %s FROM facts WHERE mac = '%s'", factsCols, sqlEscape(mac)))
	if err != nil {
		return Facts{}, false, err
	}
	if len(res.Rows) == 0 {
		return Facts{}, false, nil
	}
	return factsFromRow(res.Rows[0]), true, nil
}

// AllFacts returns every stored report, ordered by node name.
func AllFacts(db *Database) ([]Facts, error) {
	res, err := db.Query("SELECT " + factsCols + " FROM facts ORDER BY name")
	if err != nil {
		return nil, err
	}
	out := make([]Facts, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, factsFromRow(r))
	}
	return out, nil
}

// DeleteFacts drops a node's report (decommission).
func DeleteFacts(db *Database, mac string) error {
	_, err := db.Exec(fmt.Sprintf("DELETE FROM facts WHERE mac = '%s'", sqlEscape(mac)))
	return err
}

package clusterdb

import (
	"fmt"
	"strconv"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func parse(src string) (statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tokPunct, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errorf("trailing input after statement")
	}
	return st, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k tokenKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(k tokenKind, text string) bool {
	if p.at(k, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k tokenKind, text string) (token, error) {
	if p.at(k, text) {
		return p.next(), nil
	}
	return token{}, p.errorf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("clusterdb: parse error near offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) keyword() string {
	if p.cur().kind == tokIdent {
		return p.cur().text
	}
	return ""
}

func (p *parser) statement() (statement, error) {
	switch p.keyword() {
	case "select":
		return p.selectStatement()
	case "insert":
		return p.insertStatement()
	case "update":
		return p.updateStatement()
	case "delete":
		return p.deleteStatement()
	case "create":
		return p.createStatement()
	case "drop":
		return p.dropStatement()
	}
	return nil, p.errorf("expected a statement, found %q", p.cur().text)
}

func (p *parser) identifier(what string) (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errorf("expected %s, found %q", what, p.cur().text)
	}
	return p.next().text, nil
}

func (p *parser) createStatement() (statement, error) {
	p.next() // create
	if _, err := p.expect(tokIdent, "table"); err != nil {
		return nil, err
	}
	name, err := p.identifier("table name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var cols []Column
	for {
		cname, err := p.identifier("column name")
		if err != nil {
			return nil, err
		}
		tname, err := p.identifier("column type")
		if err != nil {
			return nil, err
		}
		var typ Type
		switch tname {
		case "int", "integer":
			typ = TypeInt
		case "text", "varchar", "char", "string":
			typ = TypeText
		default:
			return nil, p.errorf("unknown column type %q", tname)
		}
		// Swallow an optional (n) length on varchar/char.
		if p.accept(tokPunct, "(") {
			if p.cur().kind != tokNumber {
				return nil, p.errorf("expected length after (")
			}
			p.next()
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
		}
		cols = append(cols, Column{Name: cname, Type: typ})
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	return createTableStmt{name: name, cols: cols}, nil
}

func (p *parser) dropStatement() (statement, error) {
	p.next() // drop
	if _, err := p.expect(tokIdent, "table"); err != nil {
		return nil, err
	}
	st := dropTableStmt{}
	if p.accept(tokIdent, "if") {
		if _, err := p.expect(tokIdent, "exists"); err != nil {
			return nil, err
		}
		st.ifExists = true
	}
	name, err := p.identifier("table name")
	if err != nil {
		return nil, err
	}
	st.name = name
	return st, nil
}

func (p *parser) insertStatement() (statement, error) {
	p.next() // insert
	if _, err := p.expect(tokIdent, "into"); err != nil {
		return nil, err
	}
	table, err := p.identifier("table name")
	if err != nil {
		return nil, err
	}
	st := insertStmt{table: table}
	if p.accept(tokPunct, "(") {
		for {
			c, err := p.identifier("column name")
			if err != nil {
				return nil, err
			}
			st.cols = append(st.cols, c)
			if p.accept(tokPunct, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokIdent, "values"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		var row []expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(tokPunct, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		st.rows = append(st.rows, row)
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	return st, nil
}

func (p *parser) updateStatement() (statement, error) {
	p.next() // update
	table, err := p.identifier("table name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "set"); err != nil {
		return nil, err
	}
	st := updateStmt{table: table}
	for {
		col, err := p.identifier("column name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.sets = append(st.sets, setClause{col: col, val: val})
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if p.accept(tokIdent, "where") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.where = w
	}
	return st, nil
}

func (p *parser) deleteStatement() (statement, error) {
	p.next() // delete
	if _, err := p.expect(tokIdent, "from"); err != nil {
		return nil, err
	}
	table, err := p.identifier("table name")
	if err != nil {
		return nil, err
	}
	st := deleteStmt{table: table}
	if p.accept(tokIdent, "where") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.where = w
	}
	return st, nil
}

func (p *parser) selectStatement() (statement, error) {
	p.next() // select
	st := selectStmt{limit: -1}
	if p.accept(tokIdent, "distinct") {
		st.distinct = true
	}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		st.items = append(st.items, item)
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokIdent, "from"); err != nil {
		return nil, err
	}
	for {
		name, err := p.identifier("table name")
		if err != nil {
			return nil, err
		}
		ref := tableRef{name: name, alias: name}
		if p.accept(tokIdent, "as") {
			a, err := p.identifier("table alias")
			if err != nil {
				return nil, err
			}
			ref.alias = a
		} else if p.cur().kind == tokIdent && !isReserved(p.cur().text) {
			ref.alias = p.next().text
		}
		st.tables = append(st.tables, ref)
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if p.accept(tokIdent, "where") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.where = w
	}
	if p.accept(tokIdent, "group") {
		if _, err := p.expect(tokIdent, "by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.groupBy = append(st.groupBy, e)
			if p.accept(tokPunct, ",") {
				continue
			}
			break
		}
		if p.accept(tokIdent, "having") {
			h, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.having = h
		}
	}
	if p.accept(tokIdent, "order") {
		if _, err := p.expect(tokIdent, "by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			key := orderKey{ex: e}
			if p.accept(tokIdent, "desc") {
				key.desc = true
			} else {
				p.accept(tokIdent, "asc")
			}
			st.orderBy = append(st.orderBy, key)
			if p.accept(tokPunct, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokIdent, "limit") {
		if p.cur().kind != tokNumber {
			return nil, p.errorf("expected a number after LIMIT")
		}
		n, err := strconv.Atoi(p.next().text)
		if err != nil {
			return nil, p.errorf("bad LIMIT: %v", err)
		}
		st.limit = n
	}
	return st, nil
}

func (p *parser) selectItem() (selectItem, error) {
	if p.accept(tokPunct, "*") {
		return selectItem{star: true}, nil
	}
	// table.* form
	if p.cur().kind == tokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "." &&
		p.toks[p.pos+2].kind == tokPunct && p.toks[p.pos+2].text == "*" {
		table := p.next().text
		p.next() // .
		p.next() // *
		return selectItem{star: true, table: table}, nil
	}
	e, err := p.expr()
	if err != nil {
		return selectItem{}, err
	}
	item := selectItem{ex: e}
	if p.accept(tokIdent, "as") {
		a, err := p.identifier("column alias")
		if err != nil {
			return selectItem{}, err
		}
		item.alias = a
	}
	return item, nil
}

// isReserved lists keywords that terminate an implicit alias position.
func isReserved(s string) bool {
	switch s {
	case "where", "order", "limit", "and", "or", "not", "from", "as", "group", "select", "like", "in", "is", "by", "asc", "desc", "set", "values", "into", "null", "distinct", "having":
		return true
	}
	return false
}

// Expression grammar, loosest-binding first:
//
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | cmpExpr
//	cmpExpr := addExpr ((= != < > <= >=) addExpr | [NOT] LIKE addExpr |
//	           [NOT] IN (list) | IS [NOT] NULL)?
//	addExpr := primary ((+ -) primary)*
func (p *parser) expr() (expr, error) { return p.orExpr() }

func (p *parser) orExpr() (expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "or") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = binaryExpr{op: "or", l: l, r: r}
	}
	return l, nil
}

func (p *parser) andExpr() (expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "and") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = binaryExpr{op: "and", l: l, r: r}
	}
	return l, nil
}

func (p *parser) notExpr() (expr, error) {
	if p.accept(tokIdent, "not") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return notExpr{x: x}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	// NOT LIKE / NOT IN
	if p.accept(tokIdent, "not") {
		switch {
		case p.accept(tokIdent, "like"):
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return notExpr{x: binaryExpr{op: "like", l: l, r: r}}, nil
		case p.accept(tokIdent, "in"):
			list, err := p.exprList()
			if err != nil {
				return nil, err
			}
			return inExpr{x: l, list: list, neg: true}, nil
		}
		return nil, p.errorf("expected LIKE or IN after NOT")
	}
	if p.accept(tokIdent, "like") {
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return binaryExpr{op: "like", l: l, r: r}, nil
	}
	if p.accept(tokIdent, "in") {
		list, err := p.exprList()
		if err != nil {
			return nil, err
		}
		return inExpr{x: l, list: list}, nil
	}
	if p.accept(tokIdent, "is") {
		neg := p.accept(tokIdent, "not")
		if _, err := p.expect(tokIdent, "null"); err != nil {
			return nil, err
		}
		return isNullExpr{x: l, neg: neg}, nil
	}
	for _, op := range []string{"=", "!=", "<=", ">=", "<", ">"} {
		if p.accept(tokPunct, op) {
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return binaryExpr{op: op, l: l, r: r}, nil
		}
	}
	return l, nil
}

func (p *parser) exprList() ([]expr, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var list []expr
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	return list, nil
}

func (p *parser) addExpr() (expr, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokPunct, "+"):
			r, err := p.primary()
			if err != nil {
				return nil, err
			}
			l = binaryExpr{op: "+", l: l, r: r}
		case p.accept(tokPunct, "-"):
			r, err := p.primary()
			if err != nil {
				return nil, err
			}
			l = binaryExpr{op: "-", l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) primary() (expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return literal{v: IntValue(n)}, nil
	case tokString:
		p.next()
		return literal{v: TextValue(t.text)}, nil
	case tokIdent:
		if t.text == "null" {
			p.next()
			return literal{v: NullValue()}, nil
		}
		if isReserved(t.text) {
			return nil, p.errorf("unexpected keyword %q", t.text)
		}
		if isAggregate(t.text) && p.pos+1 < len(p.toks) &&
			p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "(" {
			p.next() // fn name
			p.next() // (
			agg := aggExpr{fn: t.text}
			if t.text == "count" && p.accept(tokPunct, "*") {
				agg.star = true
			} else {
				x, err := p.expr()
				if err != nil {
					return nil, err
				}
				agg.x = x
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return agg, nil
		}
		p.next()
		ref := columnRef{name: t.text}
		if p.accept(tokPunct, ".") {
			col, err := p.identifier("column name")
			if err != nil {
				return nil, err
			}
			ref.table = t.text
			ref.name = col
		}
		return ref, nil
	case tokPunct:
		if t.text == "(" {
			p.next()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "-" {
			p.next()
			e, err := p.primary()
			if err != nil {
				return nil, err
			}
			return binaryExpr{op: "-", l: literal{v: IntValue(0)}, r: e}, nil
		}
	}
	return nil, p.errorf("unexpected token %q", t.text)
}

// isAggregate names the supported aggregate functions.
func isAggregate(s string) bool {
	switch s {
	case "count", "min", "max", "sum":
		return true
	}
	return false
}

package clusterdb

import (
	"fmt"
	"net"
	"sort"
	"strings"
)

// This file defines the standard Rocks schema (§6.4, Tables II and III) and
// typed helpers over it, so that tools like insert-ethers and the kickstart
// CGI do not hand-assemble SQL for routine operations. Arbitrary SQL remains
// available through Database.Query — the paper's whole point is that ad-hoc
// joins make the tools composable.

// Membership IDs installed by InitSchema, matching Table III.
const (
	MembershipFrontend       = 1
	MembershipCompute        = 2
	MembershipExternal       = 3
	MembershipEthernetSwitch = 4
	MembershipMyrinetSwitch  = 5
	MembershipPowerUnit      = 6
)

// Appliance IDs installed by InitSchema.
const (
	ApplianceFrontend = 1
	ApplianceCompute  = 2
	ApplianceSwitch   = 4
	AppliancePower    = 5
)

// InitSchema creates the standard tables and seeds the memberships and
// appliances rows from Table III, plus the site-configuration defaults a
// freshly installed frontend writes. It is idempotent: tables that already
// exist are kept and tables that already hold rows are not re-seeded, so a
// durable database recovered from a crash *during* bootstrap — some tables
// created, some seeds missing — finishes initializing instead of tripping
// over its own partial work.
func InitSchema(db *Database) error {
	creates := map[string]string{
		"nodes": `CREATE TABLE nodes (
			id INT, mac TEXT, name TEXT, membership INT,
			rack INT, rank INT, ip TEXT, comment TEXT,
			arch TEXT, cpus INT)`,
		"memberships": `CREATE TABLE memberships (id INT, name TEXT, appliance INT, compute TEXT)`,
		"appliances":  `CREATE TABLE appliances (id INT, name TEXT, graph TEXT, node TEXT)`,
		"site":        `CREATE TABLE site (name TEXT, value TEXT)`,
		"facts": `CREATE TABLE facts (
			mac TEXT, name TEXT, arch TEXT, cpus INT,
			mem_mb INT, disk_type TEXT, disk_mb INT,
			nics TEXT, reported_at INT)`,
	}
	seeds := map[string]string{
		"memberships": `INSERT INTO memberships VALUES
			(1, 'Frontend', 1, 'no'),
			(2, 'Compute', 2, 'yes'),
			(3, 'External', 1, 'no'),
			(4, 'Ethernet Switches', 4, 'no'),
			(5, 'Myrinet Switches', 4, 'no'),
			(6, 'Power Units', 5, 'no')`,
		"appliances": `INSERT INTO appliances VALUES
			(1, 'frontend', 'default', 'frontend'),
			(2, 'compute', 'default', 'compute'),
			(4, 'switch', 'default', ''),
			(5, 'power', 'default', '')`,
		"site": `INSERT INTO site VALUES
			('ClusterName', 'Rocks Cluster'),
			('PublicDomain', 'local'),
			('PrivateNetwork', '10.0.0.0'),
			('PrivateNetmask', '255.0.0.0'),
			('KickstartFrom', '10.1.1.1')`,
	}
	have := make(map[string]bool)
	for _, name := range db.TableNames() {
		have[name] = true
	}
	for _, name := range []string{"nodes", "memberships", "appliances", "site", "facts"} {
		if !have[name] {
			if _, err := db.Exec(creates[name]); err != nil {
				return fmt.Errorf("clusterdb: initializing schema: %w", err)
			}
		}
		seed, ok := seeds[name]
		if !ok {
			continue
		}
		res, err := db.Query("SELECT count(*) FROM " + name)
		if err != nil {
			return fmt.Errorf("clusterdb: initializing schema: %w", err)
		}
		if n, _ := res.Rows[0][0].AsInt(); n > 0 {
			continue // already seeded (possibly by a recovered database)
		}
		if _, err := db.Exec(seed); err != nil {
			return fmt.Errorf("clusterdb: initializing schema: %w", err)
		}
	}
	return nil
}

// Node mirrors one row of the nodes table.
type Node struct {
	ID         int
	MAC        string
	Name       string
	Membership int
	Rack       int
	Rank       int
	IP         string
	Comment    string
	Arch       string
	CPUs       int
}

func nodeFromRow(row []Value) Node {
	geti := func(v Value) int { n, _ := v.AsInt(); return int(n) }
	return Node{
		ID:         geti(row[0]),
		MAC:        row[1].String(),
		Name:       row[2].String(),
		Membership: geti(row[3]),
		Rack:       geti(row[4]),
		Rank:       geti(row[5]),
		IP:         row[6].String(),
		Comment:    row[7].String(),
		Arch:       row[8].String(),
		CPUs:       geti(row[9]),
	}
}

const nodeCols = "id, mac, name, membership, rack, rank, ip, comment, arch, cpus"

// InsertNode adds a node row, allocating the next ID if n.ID is zero. It
// returns the stored node (with the allocated ID).
func InsertNode(db *Database, n Node) (Node, error) {
	if n.ID == 0 {
		// max(id) walks the rows once without materializing and sorting
		// them the way ORDER BY id DESC did — the allocation is on the
		// insert-ethers hot path.
		res, err := db.Query(`SELECT max(id) FROM nodes`)
		if err != nil {
			return n, err
		}
		n.ID = 1
		if last, ok := res.Rows[0][0].AsInt(); ok {
			n.ID = int(last) + 1
		}
	}
	if n.CPUs == 0 {
		n.CPUs = 1
	}
	if n.Arch == "" {
		n.Arch = "i386"
	}
	_, err := db.Exec(fmt.Sprintf(
		`INSERT INTO nodes (%s) VALUES (%d, '%s', '%s', %d, %d, %d, '%s', '%s', '%s', %d)`,
		nodeCols, n.ID, sqlEscape(n.MAC), sqlEscape(n.Name), n.Membership,
		n.Rack, n.Rank, sqlEscape(n.IP), sqlEscape(n.Comment), sqlEscape(n.Arch), n.CPUs))
	return n, err
}

// sqlEscape doubles single quotes for embedding in a literal.
func sqlEscape(s string) string { return strings.ReplaceAll(s, "'", "''") }

// Nodes returns all node rows, optionally filtered by a WHERE fragment
// (e.g. "membership = 2"), ordered by id.
func Nodes(db *Database, where string) ([]Node, error) {
	q := "SELECT " + nodeCols + " FROM nodes"
	if where != "" {
		q += " WHERE " + where
	}
	q += " ORDER BY id"
	res, err := db.Query(q)
	if err != nil {
		return nil, err
	}
	out := make([]Node, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, nodeFromRow(r))
	}
	return out, nil
}

// NodeByMAC looks a node up by Ethernet address.
func NodeByMAC(db *Database, mac string) (Node, bool, error) {
	return oneNodeByCol(db, "mac", mac)
}

// NodeByIP looks a node up by IP address — the query the kickstart CGI runs
// for every HTTP request (§6.1).
func NodeByIP(db *Database, ip string) (Node, bool, error) {
	return oneNodeByCol(db, "ip", ip)
}

// NodeByName looks a node up by hostname.
func NodeByName(db *Database, name string) (Node, bool, error) {
	return oneNodeByCol(db, "name", name)
}

// oneNodeByCol resolves a single-column equality lookup, probing the
// column's index directly when one exists (skipping SQL text construction
// and parsing entirely) and falling back to the scan-path query when not.
// Both paths report duplicates with the same error.
func oneNodeByCol(db *Database, col, val string) (Node, bool, error) {
	rows, ok := db.pointLookup("nodes", col, TextValue(val))
	if !ok {
		return oneNode(db, fmt.Sprintf("%s = '%s'", col, sqlEscape(val)))
	}
	switch len(rows) {
	case 0:
		return Node{}, false, nil
	case 1:
		return nodeFromRow(rows[0]), true, nil
	}
	return Node{}, false, fmt.Errorf("clusterdb: %d nodes match %s = '%s'; expected at most one",
		len(rows), col, sqlEscape(val))
}

func oneNode(db *Database, where string) (Node, bool, error) {
	ns, err := Nodes(db, where)
	if err != nil || len(ns) == 0 {
		return Node{}, false, err
	}
	if len(ns) > 1 {
		// Unique indexes make non-empty duplicates impossible, but rows
		// without an identity yet (empty MAC on a replaced chassis, say) may
		// legally collide; picking an arbitrary one would misdirect a
		// kickstart or a replacement. Surface it.
		return Node{}, false, fmt.Errorf("clusterdb: %d nodes match %s; expected at most one", len(ns), where)
	}
	return ns[0], true, nil
}

// SetNodeArch records the architecture the installer actually detected for
// a node — the kickstart CGI's one write path (§6.1). The value is escaped
// before it reaches the SQL text; callers validate it against the known
// architecture set first.
func SetNodeArch(db *Database, id int, arch string) error {
	_, err := db.Exec(fmt.Sprintf("UPDATE nodes SET arch = '%s' WHERE id = %d", sqlEscape(arch), id))
	return err
}

// RebindNodeMAC points an existing node row (by hostname) at a new Ethernet
// address — the insert-ethers --replace operation. Both values are escaped
// here so callers can pass syslog-supplied MACs and admin-typed hostnames
// straight through.
func RebindNodeMAC(db *Database, name, mac string) error {
	_, err := db.Exec(fmt.Sprintf("UPDATE nodes SET mac = '%s' WHERE name = '%s'",
		sqlEscape(mac), sqlEscape(name)))
	return err
}

// DeleteNode removes a node row by name.
func DeleteNode(db *Database, name string) error {
	_, err := db.Exec(fmt.Sprintf("DELETE FROM nodes WHERE name = '%s'", sqlEscape(name)))
	return err
}

// ApplianceForMembership resolves a membership ID to the graph root node
// name of its appliance (e.g. Compute → "compute"), which is where the
// kickstart graph traversal starts.
func ApplianceForMembership(db *Database, membership int) (name, graph, rootNode string, err error) {
	res, err := db.Query(fmt.Sprintf(
		`SELECT appliances.name, appliances.graph, appliances.node
		 FROM memberships, appliances
		 WHERE memberships.id = %d AND memberships.appliance = appliances.id`, membership))
	if err != nil {
		return "", "", "", err
	}
	if len(res.Rows) == 0 {
		return "", "", "", fmt.Errorf("clusterdb: membership %d has no appliance", membership)
	}
	r := res.Rows[0]
	return r[0].String(), r[1].String(), r[2].String(), nil
}

// SiteValue reads one site-configuration attribute.
func SiteValue(db *Database, name string) (string, error) {
	res, err := db.Query(fmt.Sprintf("SELECT value FROM site WHERE name = '%s'", sqlEscape(name)))
	if err != nil {
		return "", err
	}
	if len(res.Rows) == 0 {
		return "", fmt.Errorf("clusterdb: no site attribute %q", name)
	}
	return res.Rows[0][0].String(), nil
}

// SetSiteValue writes one site-configuration attribute, inserting or
// updating as needed.
func SetSiteValue(db *Database, name, value string) error {
	res, err := db.Exec(fmt.Sprintf("UPDATE site SET value = '%s' WHERE name = '%s'",
		sqlEscape(value), sqlEscape(name)))
	if err != nil {
		return err
	}
	if res.Affected == 0 {
		_, err = db.Exec(fmt.Sprintf("INSERT INTO site VALUES ('%s', '%s')",
			sqlEscape(name), sqlEscape(value)))
	}
	return err
}

// NextFreeIP allocates the next unused address for a new compute node.
// Rocks hands out private addresses from the top of the 10.x network
// downward (Table II: compute-0-0 is 10.255.255.245 on a net whose switches
// and servers already hold .253 and .249); the frontend's 10.1.1.1 is
// excluded by construction.
func NextFreeIP(db *Database) (string, error) {
	// Fast path: addresses allocate densely from the top, so probing the
	// nodes_ip index per candidate usually answers on the first try —
	// against the full-scan used-set build that cost O(N) per discovery.
	var used map[string]bool
	taken := func(s string) (bool, error) {
		if used != nil {
			return used[s], nil
		}
		if n, ok := db.lookupKeyCount("nodes", "ip", TextValue(s)); ok {
			return n > 0, nil
		}
		// No index (routing disabled, foreign schema): build the scan set
		// once and answer from it.
		used = map[string]bool{}
		ns, err := Nodes(db, "")
		if err != nil {
			return false, err
		}
		for _, n := range ns {
			used[n.IP] = true
		}
		return used[s], nil
	}
	ip := net.IPv4(10, 255, 255, 254).To4()
	for i := 0; i < 1<<24; i++ {
		s := ip.String()
		inUse, err := taken(s)
		if err != nil {
			return "", err
		}
		if !inUse {
			return s, nil
		}
		// Decrement the address.
		for b := 3; b >= 0; b-- {
			ip[b]--
			if ip[b] != 255 {
				break
			}
		}
		if ip[0] != 10 {
			break
		}
	}
	return "", fmt.Errorf("clusterdb: private address space exhausted")
}

// NextRank returns the next free rank within a rack for the given
// membership: insert-ethers names nodes compute-<rack>-<rank> in discovery
// order (§6.4).
func NextRank(db *Database, membership, rack int) (int, error) {
	// Fetch only the rank column: the (membership, rack) index narrows the
	// rows and the discovery loop doesn't pay to materialize (and sort)
	// every sibling node just to find a free number.
	res, err := db.Query(fmt.Sprintf(
		"SELECT rank FROM nodes WHERE membership = %d AND rack = %d", membership, rack))
	if err != nil {
		return 0, err
	}
	ranks := make(map[int]bool, len(res.Rows))
	for _, row := range res.Rows {
		if n, isInt := row[0].AsInt(); isInt {
			ranks[int(n)] = true
		}
	}
	for r := 0; ; r++ {
		if !ranks[r] {
			return r, nil
		}
	}
}

// MembershipBasename returns the hostname prefix for a membership: the
// lower-cased first word of the membership name ("Ethernet Switches" →
// "network" is special-cased to match Table II's network-0-0 row; everything
// else uses the first word, so Compute → compute, NFS → nfs).
func MembershipBasename(db *Database, membership int) (string, error) {
	res, err := db.Query(fmt.Sprintf("SELECT name FROM memberships WHERE id = %d", membership))
	if err != nil {
		return "", err
	}
	if len(res.Rows) == 0 {
		return "", fmt.Errorf("clusterdb: no membership %d", membership)
	}
	name := res.Rows[0][0].String()
	if strings.HasPrefix(name, "Ethernet Switch") {
		return "network", nil
	}
	first := strings.Fields(strings.ToLower(name))[0]
	return first, nil
}

// ComputeNodeNames returns the hostnames of all nodes whose membership is
// marked compute='yes' — the join the paper's cluster-kill example performs.
func ComputeNodeNames(db *Database) ([]string, error) {
	res, err := db.Query(
		`SELECT nodes.name FROM nodes, memberships
		 WHERE nodes.membership = memberships.id AND memberships.compute = 'yes'
		 ORDER BY nodes.id`)
	if err != nil {
		return nil, err
	}
	return res.Strings(), nil
}

// MembershipIDByName resolves a membership name ("Compute") to its ID.
func MembershipIDByName(db *Database, name string) (int, error) {
	res, err := db.Query(fmt.Sprintf("SELECT id FROM memberships WHERE name = '%s'", sqlEscape(name)))
	if err != nil {
		return 0, err
	}
	if len(res.Rows) == 0 {
		return 0, fmt.Errorf("clusterdb: no membership named %q", name)
	}
	id, _ := res.Rows[0][0].AsInt()
	return int(id), nil
}

// AddMembership registers a new membership (e.g. the NFS and Web rows that
// appear in Table II beyond the default set) and returns its ID.
func AddMembership(db *Database, name string, appliance int, compute bool) (int, error) {
	res, err := db.Query("SELECT id FROM memberships ORDER BY id DESC LIMIT 1")
	if err != nil {
		return 0, err
	}
	id := 1
	if len(res.Rows) > 0 {
		last, _ := res.Rows[0][0].AsInt()
		id = int(last) + 1
	}
	c := "no"
	if compute {
		c = "yes"
	}
	_, err = db.Exec(fmt.Sprintf("INSERT INTO memberships VALUES (%d, '%s', %d, '%s')",
		id, sqlEscape(name), appliance, c))
	return id, err
}

// SortNodesByLocation orders nodes by (rack, rank) — physical order.
func SortNodesByLocation(ns []Node) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Rack != ns[j].Rack {
			return ns[i].Rack < ns[j].Rack
		}
		return ns[i].Rank < ns[j].Rank
	})
}

package clusterdb

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rocks/internal/faults"
)

// Snapshots bound recovery time: instead of replaying every mutation since
// the frontend was installed, Open loads the newest snapshot — the dump.go
// serialization plus a CRC trailer — and replays only the log records that
// postdate it. Writing a snapshot and truncating the log is "rotation"; a
// crash between the two steps leaves both the new snapshot and the full
// log, which the per-record sequence numbers make safe (replay skips
// records the snapshot already contains).

// snapshotPrefix/snapshotSuffix frame snapshot filenames:
// snapshot-<seq, zero-padded so names sort>.sql.
const (
	snapshotPrefix = "snapshot-"
	snapshotSuffix = ".sql"
)

// snapshotTrailerFmt is the final line of a snapshot: the sequence it
// contains and the CRC32-IEEE of everything before the trailer line. A
// snapshot without a valid trailer (a torn write caught mid-rename would
// only ever be a .tmp, but a corrupted disk is a corrupted disk) fails
// recovery loudly.
const snapshotTrailerFmt = "-- snapshot seq=%d crc32=%08x\n"

// RecoveryInfo describes what Open found on disk.
type RecoveryInfo struct {
	// Fresh is true when the directory held no database: no snapshot and no
	// replayable log records. The caller seeds the schema.
	Fresh bool
	// SnapshotSeq is the change sequence the loaded snapshot contained
	// (zero when recovery started from an empty database).
	SnapshotSeq int64
	// Replayed is how many log records were applied on top of the snapshot;
	// ReplayErrors of them failed (deterministically, as they did when
	// first logged).
	Replayed     int
	ReplayErrors int
	// StaleSkipped counts log records the snapshot already contained — the
	// leftovers of a crash between snapshot rename and log truncation.
	StaleSkipped int
	// TornDropped counts torn final records dropped from the log tail.
	TornDropped int
}

// String renders the recovery for syslog and the dbreport recover check.
func (ri RecoveryInfo) String() string {
	if ri.Fresh {
		return "fresh database (no snapshot, no wal records)"
	}
	return fmt.Sprintf("snapshot seq %d, %d wal records replayed (%d errors, %d stale skipped, %d torn dropped)",
		ri.SnapshotSeq, ri.Replayed, ri.ReplayErrors, ri.StaleSkipped, ri.TornDropped)
}

// Open creates or recovers a durable database in dir. Recovery is: delete
// stray temporaries, load the newest snapshot, replay the log, truncate any
// torn tail, and resume appending. The returned RecoveryInfo tells the
// caller whether it must seed a fresh schema.
func Open(dir string, opts Options) (*Database, RecoveryInfo, error) {
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, RecoveryInfo{}, fmt.Errorf("clusterdb: creating %s: %w", dir, err)
	}
	d := New()
	dur := &durability{dir: dir, opts: opts}
	d.dur = dur
	d.writeMu.Lock()
	defer d.writeMu.Unlock()

	// A crash mid-snapshot leaves a partial .tmp; it was never renamed into
	// place, so it holds nothing durable.
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	for _, tmp := range tmps {
		os.Remove(tmp)
	}

	var info RecoveryInfo
	snaps, err := sortedSnapshots(dir)
	if err != nil {
		return nil, info, err
	}
	if len(snaps) > 0 {
		newest := snaps[len(snaps)-1]
		seq, err := d.loadSnapshot(filepath.Join(dir, newest))
		if err != nil {
			return nil, info, err
		}
		info.SnapshotSeq = seq
		d.changeSeq.Store(seq)
		dur.lastSnapshotSeq.Store(seq)
		// Older snapshots are rotation leftovers; the newest supersedes them.
		for _, old := range snaps[:len(snaps)-1] {
			os.Remove(filepath.Join(dir, old))
		}
	}

	f, err := os.OpenFile(dur.walPath(), os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, info, fmt.Errorf("clusterdb: opening wal: %w", err)
	}
	validEnd, err := d.replayWAL(f, info.SnapshotSeq)
	if err != nil {
		f.Close()
		return nil, info, err
	}
	// Drop the torn tail (and any stale garbage past the last valid record)
	// so appends resume on a clean record boundary.
	if err := f.Truncate(validEnd); err != nil {
		f.Close()
		return nil, info, fmt.Errorf("clusterdb: truncating wal tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, info, err
	}
	dur.f = f
	info.Replayed = int(dur.replayed.Load())
	info.ReplayErrors = int(dur.replayErr.Load())
	info.StaleSkipped = int(dur.staleSkipped.Load())
	info.TornDropped = int(dur.tornDropped.Load())
	info.Fresh = len(snaps) == 0 && info.Replayed == 0 && info.StaleSkipped == 0
	if !info.Fresh {
		dur.replays.Add(1)
	}
	// Replayed records are not yet in any snapshot; keep the rotation
	// accounting honest across the crash.
	dur.appendsSinceSnap = info.Replayed
	return d, info, nil
}

// Close flushes and closes a durable database: a final snapshot (when the
// log holds anything new) bounds the next Open's replay, then the log file
// closes. Close on an in-memory database is a no-op. A crashed database
// closes without snapshotting — the frozen files are the test fixture.
func (d *Database) Close() error {
	if d.dur == nil {
		return nil
	}
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	if d.dur.closed.Swap(true) {
		return nil
	}
	var err error
	if !d.dur.crashed.Load() && d.dur.appendsSinceSnap > 0 {
		err = d.snapshotLocked()
	}
	if cerr := d.dur.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("clusterdb: closing wal: %w", cerr)
	}
	return err
}

// Snapshot forces a snapshot + log rotation now.
func (d *Database) Snapshot() error {
	if d.dur == nil {
		return fmt.Errorf("clusterdb: Snapshot on an in-memory database")
	}
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	if err := d.dur.guard(); err != nil {
		return err
	}
	return d.snapshotLocked()
}

// maybeSnapshotLocked rotates when enough mutations accumulated. Callers
// hold writeMu.
func (d *Database) maybeSnapshotLocked() error {
	dur := d.dur
	if dur.opts.SnapshotEvery <= 0 || dur.appendsSinceSnap < dur.opts.SnapshotEvery {
		return nil
	}
	return d.snapshotLocked()
}

// snapshotLocked writes snapshot-<seq>.sql atomically (tmp, fsync, rename),
// then rotates: the log truncates to empty and older snapshots are removed.
// Callers hold writeMu but not d.mu — Dump takes the read lock itself, so
// reads keep flowing while the snapshot writes.
func (d *Database) snapshotLocked() error {
	dur := d.dur
	seq := d.changeSeq.Load()
	name := fmt.Sprintf("%s%016d%s", snapshotPrefix, seq, snapshotSuffix)
	path := filepath.Join(dur.dir, name)
	tmp := path + ".tmp"
	body := d.Dump()
	trailer := fmt.Sprintf(snapshotTrailerFmt, seq, crc32.ChecksumIEEE([]byte(body)))

	if faults.CrashPoint(dur.opts.Faults, faults.OpDBSnapshotMid, "clusterdb", dur.dir) {
		// Die halfway through the tmp write: a partial file with no trailer,
		// never renamed, that recovery must sweep away.
		os.WriteFile(tmp, []byte(body[:len(body)/2]), 0o600)
		dur.crashed.Store(true)
		return fmt.Errorf("%w (mid-snapshot: partial %s left behind)", ErrCrashed, filepath.Base(tmp))
	}

	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("clusterdb: snapshot: %w", err)
	}
	if _, err := tf.WriteString(body + trailer); err != nil {
		tf.Close()
		return fmt.Errorf("clusterdb: snapshot write: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return fmt.Errorf("clusterdb: snapshot fsync: %w", err)
	}
	if err := tf.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("clusterdb: snapshot rename: %w", err)
	}
	dur.snapshots.Add(1)
	dur.lastSnapshotSeq.Store(seq)

	if faults.CrashPoint(dur.opts.Faults, faults.OpDBRotateMid, "clusterdb", dur.dir) {
		// The snapshot is durable but the log still holds everything it
		// contains; recovery's stale-skip handles the overlap.
		dur.crashed.Store(true)
		return fmt.Errorf("%w (mid-rotation: %s durable, wal not truncated)", ErrCrashed, name)
	}

	if err := dur.f.Truncate(0); err != nil {
		return fmt.Errorf("clusterdb: wal rotation: %w", err)
	}
	if _, err := dur.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	dur.appendsSinceSnap = 0
	snaps, err := sortedSnapshots(dur.dir)
	if err != nil {
		return err
	}
	for _, s := range snaps {
		if s != name {
			os.Remove(filepath.Join(dur.dir, s))
		}
	}
	return nil
}

// sortedSnapshots lists snapshot files in ascending sequence order.
func sortedSnapshots(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("clusterdb: listing %s: %w", dir, err)
	}
	var snaps []string
	for _, e := range entries {
		n := e.Name()
		if strings.HasPrefix(n, snapshotPrefix) && strings.HasSuffix(n, snapshotSuffix) {
			snaps = append(snaps, n)
		}
	}
	sort.Strings(snaps) // zero-padded sequence: lexicographic == numeric
	return snaps, nil
}

// loadSnapshot verifies a snapshot's trailer and bulk-loads it into an
// empty database, returning the sequence it contains. Rows load without
// per-row uniqueness churn — the snapshot is a dump of a database that
// already enforced it — and every index rebuilds once at the end, so a
// recovered database answers point lookups through its indexes exactly
// like one that never crashed.
func (d *Database) loadSnapshot(path string) (int64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("clusterdb: reading snapshot: %w", err)
	}
	content := string(raw)
	cut := strings.LastIndex(content, "-- snapshot seq=")
	if cut < 0 || !strings.HasSuffix(content, "\n") {
		return 0, fmt.Errorf("clusterdb: snapshot %s has no trailer — refusing a torn or foreign file", filepath.Base(path))
	}
	body, trailer := content[:cut], content[cut:]
	var seq int64
	var sum uint32
	if _, err := fmt.Sscanf(trailer, snapshotTrailerFmt, &seq, &sum); err != nil {
		return 0, fmt.Errorf("clusterdb: snapshot %s trailer is malformed: %v", filepath.Base(path), err)
	}
	if got := crc32.ChecksumIEEE([]byte(body)); got != sum {
		return 0, fmt.Errorf("clusterdb: snapshot %s fails its checksum (have %08x, want %08x)",
			filepath.Base(path), got, sum)
	}
	for i, stmt := range SplitStatements(body) {
		st, err := parse(stmt)
		if err != nil {
			return 0, fmt.Errorf("clusterdb: snapshot %s statement %d: %v", filepath.Base(path), i+1, err)
		}
		d.mu.Lock()
		switch s := st.(type) {
		case createTableStmt:
			_, err = d.execCreate(s)
		case insertStmt:
			_, err = d.execInsertBulk(s)
		default:
			err = fmt.Errorf("unexpected %T in a snapshot", st)
		}
		d.mu.Unlock()
		if err != nil {
			return 0, fmt.Errorf("clusterdb: snapshot %s statement %d: %v", filepath.Base(path), i+1, err)
		}
	}
	d.mu.Lock()
	for _, t := range d.tables {
		t.rebuildIndexes()
	}
	d.mu.Unlock()
	return seq, nil
}

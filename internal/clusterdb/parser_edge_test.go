package clusterdb

import (
	"strings"
	"testing"
)

// Parser edge cases the fast path leans on: the plan cache keys on raw SQL
// text, so two statements that differ only in quoting style are distinct
// cache entries that must still parse to equivalent plans, and the index
// planner resolves qualified column references — ambiguity and aliasing
// rules have to hold on both the scan and index paths.

func TestQuotedStringEscapeForms(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE strs (id INT, s TEXT)`)
	cases := []struct {
		insert string
		want   string // literal value the row should hold
	}{
		{`INSERT INTO strs VALUES (1, 'it''s')`, "it's"},
		{`INSERT INTO strs VALUES (2, '''')`, "'"},
		{`INSERT INTO strs VALUES (3, '''''')`, "''"},
		{`INSERT INTO strs VALUES (4, "a""b")`, `a"b`},
		{`INSERT INTO strs VALUES (5, "mix'd")`, "mix'd"},
		{`INSERT INTO strs VALUES (6, '')`, ""},
		{`INSERT INTO strs VALUES (7, 'two '' quotes '' here')`, "two ' quotes ' here"},
	}
	for _, c := range cases {
		mustExec(t, db, c.insert)
	}
	for i, c := range cases {
		res, err := db.Query(
			"SELECT s FROM strs WHERE id = " + itoa(i+1))
		if err != nil {
			t.Fatalf("%s: %v", c.insert, err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].Str != c.want {
			t.Errorf("%s stored %q, want %q", c.insert, res.Rows[0][0].Str, c.want)
		}
		// Round-trip: the stored value must be findable by an escaped
		// literal in a WHERE clause (the path sqlEscape feeds).
		res, err = db.Query(
			`SELECT id FROM strs WHERE s = '` + strings.ReplaceAll(c.want, "'", "''") + `'`)
		if err != nil {
			t.Fatalf("round-trip %q: %v", c.want, err)
		}
		if len(res.Rows) != 1 {
			t.Errorf("round-trip %q matched %d rows, want 1", c.want, len(res.Rows))
		}
	}
	// An unterminated string is a parse error, not silent truncation.
	if _, err := db.Query(`SELECT s FROM strs WHERE s = 'dangling`); err == nil {
		t.Error("unterminated string literal should not parse")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestQualifiedColumnResolution(t *testing.T) {
	db := newTestDB(t)

	// A bare column present in both joined tables is ambiguous.
	_, err := db.Query(`SELECT name FROM nodes, memberships`)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("bare shared column = %v, want ambiguity error", err)
	}
	// Qualifying either side resolves it.
	if _, err := db.Query(`SELECT nodes.name FROM nodes, memberships`); err != nil {
		t.Errorf("nodes.name: %v", err)
	}
	if _, err := db.Query(`SELECT memberships.name FROM nodes, memberships`); err != nil {
		t.Errorf("memberships.name: %v", err)
	}
	// An alias replaces the table name for qualification purposes.
	if _, err := db.Query(`SELECT n.name FROM nodes n`); err != nil {
		t.Errorf("alias-qualified: %v", err)
	}
	if _, err := db.Query(`SELECT nodes.name FROM nodes n`); err == nil {
		t.Error("original table name should not resolve once aliased")
	}
	// Ambiguity applies in WHERE too, and qualified refs there work on
	// both the index and scan paths.
	if _, err := db.Query(`SELECT nodes.id FROM nodes, memberships WHERE name = 'compute'`); err == nil {
		t.Error("ambiguous WHERE column should error")
	}
	for _, routing := range []bool{true, false} {
		db.SetIndexRouting(routing)
		res, err := db.Query(`SELECT n.id FROM nodes n WHERE n.name = 'compute-0-0'`)
		if err != nil {
			t.Fatalf("routing=%v: %v", routing, err)
		}
		if len(res.Rows) != 1 {
			t.Errorf("routing=%v: got %d rows, want 1", routing, len(res.Rows))
		}
	}
	db.SetIndexRouting(true)
	// A qualifier that names no table in scope errors rather than scanning.
	if _, err := db.Query(`SELECT ghost.name FROM nodes`); err == nil {
		t.Error("unknown qualifier should error")
	}
}

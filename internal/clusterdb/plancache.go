package clusterdb

import "sync"

// planCache memoizes parse() output keyed on the SQL text. The Rocks hot
// paths — the kickstart CGI's NodeByIP, insert-ethers' NodeByMAC, the
// dbreport queries — repeat a small set of statements thousands of times
// during a reinstall storm or cabinet discovery; re-lexing them each time
// costs more than executing them once indexes answer the lookup.
//
// The cache is generation-capped rather than LRU: statements live in a
// current map, and when that fills the whole map rotates to "previous" and
// a fresh current starts. A hit in the previous generation promotes the
// entry, so the working set survives rotation while one-shot texts (INSERTs
// with inlined values) age out after at most two generations. This keeps
// the cache bounded without per-hit bookkeeping.
//
// Cached statements are shared across goroutines: the executor never
// mutates an AST, so a parsed statement is immutable after parse() returns.
// Parse errors are never cached — error texts are cheap to recompute and
// malformed statements shouldn't occupy slots.
type planCache struct {
	mu           sync.Mutex
	cur, prev    map[string]statement
	hits, misses uint64
}

// planCacheGeneration is the per-generation entry cap; the cache holds at
// most twice this many statements.
const planCacheGeneration = 512

func (pc *planCache) get(sql string) (statement, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if st, ok := pc.cur[sql]; ok {
		pc.hits++
		return st, true
	}
	if st, ok := pc.prev[sql]; ok {
		pc.hits++
		delete(pc.prev, sql)
		pc.promote(sql, st)
		return st, true
	}
	pc.misses++
	return nil, false
}

func (pc *planCache) put(sql string, st statement) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if _, ok := pc.cur[sql]; ok {
		return
	}
	pc.promote(sql, st)
}

// promote installs an entry in the current generation, rotating first if it
// is full. Callers hold pc.mu.
func (pc *planCache) promote(sql string, st statement) {
	if pc.cur == nil {
		pc.cur = make(map[string]statement)
	}
	if len(pc.cur) >= planCacheGeneration {
		pc.prev = pc.cur
		pc.cur = make(map[string]statement)
	}
	pc.cur[sql] = st
}

// stats returns hit/miss counters and the live entry count.
func (pc *planCache) stats() (hits, misses uint64, entries int) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.hits, pc.misses, len(pc.cur) + len(pc.prev)
}

package clusterdb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Column is one column of a table schema.
type Column struct {
	Name string
	Type Type
}

// Table holds a schema and its rows. Rows are slices of Values in schema
// order.
type table struct {
	name    string
	cols    []Column
	rows    [][]Value
	indexes []*index
}

func (t *table) colIndex(name string) int {
	for i, c := range t.cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Database is the cluster configuration database. All access goes through
// Exec (statements) and Query (SELECT); both are safe for concurrent use.
// Reads (SELECT, pointLookup) take mu shared; mutations serialize on
// writeMu so the expensive durability work — WAL append, fsync, snapshot
// writes — happens *outside* the RWMutex, and readers only contend for the
// brief in-memory apply. That split is what keeps the kickstart CGI's
// point-lookup mix flat while insert-ethers storms the writer.
type Database struct {
	mu      sync.RWMutex
	writeMu sync.Mutex
	tables  map[string]*table
	// changeSeq increments on every mutation; report generators use it to
	// decide whether regenerated configuration files are stale. Atomic so
	// ChangeSeq never queues behind a writer mid-fsync; it is stored under
	// both writeMu (ordering) and before the apply under mu, so a reader
	// holding the read lock sees a seq at least as new as the state it
	// reads — the stale-marking direction the report coalescer needs.
	changeSeq atomic.Int64

	// dur is the durability layer (write-ahead log + snapshots); nil for a
	// pure in-memory database (New). See wal.go.
	dur *durability

	// The fast path: a parse memo and per-plan counters. Both toggles
	// default on; benchmarks flip them off to measure the scan baseline.
	plans        planCache
	planCaching  atomic.Bool
	indexRouting atomic.Bool
	// indexSelects/scanSelects count how each SELECT was answered; they are
	// atomic because SELECTs run under the read lock concurrently.
	indexSelects atomic.Uint64
	scanSelects  atomic.Uint64
}

// New creates an empty database.
func New() *Database {
	d := &Database{tables: make(map[string]*table)}
	d.planCaching.Store(true)
	d.indexRouting.Store(true)
	return d
}

// SetPlanCache enables or disables the statement-parse memo. Disabling does
// not drop cached entries; it only bypasses them.
func (d *Database) SetPlanCache(on bool) { d.planCaching.Store(on) }

// SetIndexRouting enables or disables the planner's use of hash indexes for
// SELECTs. Indexes are always *maintained* (uniqueness still holds); this
// only routes reads back through the full-scan path — the ablation knob the
// benchmarks use.
func (d *Database) SetIndexRouting(on bool) { d.indexRouting.Store(on) }

// parseSQL is parse() behind the plan cache.
func (d *Database) parseSQL(sql string) (statement, error) {
	if !d.planCaching.Load() {
		return parse(sql)
	}
	if st, ok := d.plans.get(sql); ok {
		return st, nil
	}
	st, err := parse(sql)
	if err != nil {
		return nil, err
	}
	d.plans.put(sql, st)
	return st, nil
}

// Result is the outcome of a statement: for SELECT, the column names and
// rows; for data-modification statements, the number of affected rows.
type Result struct {
	Columns  []string
	Rows     [][]Value
	Affected int
}

// Strings flattens a single-column result into a string slice — the shape
// cluster-kill wants when it asks for a list of node names.
func (r *Result) Strings() []string {
	out := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		if len(row) > 0 {
			out = append(out, row[0].String())
		}
	}
	return out
}

// Format renders the result as the ASCII table the paper prints (Tables II
// and III): a header row of column names and one row per tuple, columns
// padded to their widest member.
func (r *Result) Format() string {
	if len(r.Columns) == 0 {
		return fmt.Sprintf("OK, %d row(s) affected\n", r.Affected)
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(fields []string) {
		for i, f := range fields {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(f)
			if pad := widths[i] - len(f); pad > 0 && i < len(fields)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}

// Exec parses and executes any supported statement.
func (d *Database) Exec(sql string) (*Result, error) {
	st, err := d.parseSQL(sql)
	if err != nil {
		return nil, err
	}
	if sel, ok := st.(selectStmt); ok {
		d.mu.RLock()
		defer d.mu.RUnlock()
		return d.execSelect(sel)
	}
	return d.execMutation(sql, st)
}

// execMutation runs one mutating statement: log first (when durable), then
// apply under the write half of the RWMutex. The change sequence advances
// even when the apply errors — the historical behavior report staleness
// guards rely on — and the WAL record is appended before the apply, so a
// replay reproduces the identical (possibly failing) outcome.
func (d *Database) execMutation(sql string, st statement) (*Result, error) {
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	if d.dur != nil {
		if err := d.dur.append(d.changeSeq.Load()+1, sql); err != nil {
			return nil, err
		}
	}
	d.mu.Lock()
	d.changeSeq.Add(1)
	res, err := d.applyLocked(st)
	d.mu.Unlock()
	if err != nil {
		return res, err
	}
	if d.dur != nil {
		if serr := d.maybeSnapshotLocked(); serr != nil {
			return res, fmt.Errorf("clusterdb: statement applied, but snapshot rotation failed: %w", serr)
		}
	}
	return res, nil
}

// applyLocked dispatches a parsed mutating statement. Callers hold d.mu;
// both the live write path and WAL replay come through here, which is what
// makes replay reproduce exactly what the original Exec did.
func (d *Database) applyLocked(st statement) (*Result, error) {
	switch s := st.(type) {
	case createTableStmt:
		return d.execCreate(s)
	case dropTableStmt:
		return d.execDrop(s)
	case insertStmt:
		return d.execInsert(s)
	case updateStmt:
		return d.execUpdate(s)
	case deleteStmt:
		return d.execDelete(s)
	}
	return nil, fmt.Errorf("clusterdb: unhandled statement %T", st)
}

// Query is Exec restricted to SELECT; it rejects anything that would modify
// the database, which is what tools taking a --query flag pass through.
func (d *Database) Query(sql string) (*Result, error) {
	st, err := d.parseSQL(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(selectStmt)
	if !ok {
		return nil, fmt.Errorf("clusterdb: Query accepts only SELECT statements")
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.execSelect(sel)
}

// MustExec runs a statement that the caller knows is valid (schema setup);
// it panics on error.
func (d *Database) MustExec(sql string) *Result {
	r, err := d.Exec(sql)
	if err != nil {
		panic("clusterdb: " + err.Error())
	}
	return r
}

// ChangeSeq returns a counter that increments on every mutation.
func (d *Database) ChangeSeq() int64 {
	return d.changeSeq.Load()
}

// TableNames lists the tables in sorted order.
func (d *Database) TableNames() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.tables))
	for n := range d.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Schema returns the column definitions of a table.
func (d *Database) Schema(name string) ([]Column, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, ok := d.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("clusterdb: no such table %q", name)
	}
	return append([]Column(nil), t.cols...), nil
}

func (d *Database) execCreate(s createTableStmt) (*Result, error) {
	if _, ok := d.tables[s.name]; ok {
		return nil, fmt.Errorf("clusterdb: table %q already exists", s.name)
	}
	seen := map[string]bool{}
	for _, c := range s.cols {
		if seen[c.Name] {
			return nil, fmt.Errorf("clusterdb: duplicate column %q in table %q", c.Name, s.name)
		}
		seen[c.Name] = true
	}
	t := &table{name: s.name, cols: s.cols}
	t.attachIndexes()
	d.tables[s.name] = t
	return &Result{}, nil
}

func (d *Database) execDrop(s dropTableStmt) (*Result, error) {
	if _, ok := d.tables[s.name]; !ok {
		if s.ifExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("clusterdb: no such table %q", s.name)
	}
	delete(d.tables, s.name)
	return &Result{}, nil
}

func (d *Database) execInsert(s insertStmt) (*Result, error) {
	return d.insertRows(s, false)
}

// execInsertBulk is the snapshot loader's INSERT: rows append without
// per-row uniqueness checks or index maintenance (the snapshot is a dump of
// a database that already enforced both), and loadSnapshot rebuilds every
// index once at the end.
func (d *Database) execInsertBulk(s insertStmt) (*Result, error) {
	return d.insertRows(s, true)
}

func (d *Database) insertRows(s insertStmt, bulk bool) (*Result, error) {
	t, ok := d.tables[s.table]
	if !ok {
		return nil, fmt.Errorf("clusterdb: no such table %q", s.table)
	}
	colIdx := make([]int, 0, len(t.cols))
	if s.cols == nil {
		for i := range t.cols {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, name := range s.cols {
			i := t.colIndex(name)
			if i < 0 {
				return nil, fmt.Errorf("clusterdb: table %q has no column %q", s.table, name)
			}
			colIdx = append(colIdx, i)
		}
	}
	inserted := 0
	for _, exprs := range s.rows {
		if len(exprs) != len(colIdx) {
			return nil, fmt.Errorf("clusterdb: INSERT has %d values for %d columns", len(exprs), len(colIdx))
		}
		row := make([]Value, len(t.cols))
		for i := range row {
			row[i] = NullValue()
		}
		for i, ex := range exprs {
			v, err := evalConst(ex)
			if err != nil {
				return nil, err
			}
			cv, err := coerce(v, t.cols[colIdx[i]].Type)
			if err != nil {
				return nil, fmt.Errorf("%v (column %q)", err, t.cols[colIdx[i]].Name)
			}
			row[colIdx[i]] = cv
		}
		if !bulk {
			if err := t.checkInsert(row, -1); err != nil {
				return nil, err
			}
			t.indexAdd(row, len(t.rows))
		}
		t.rows = append(t.rows, row)
		inserted++
	}
	return &Result{Affected: inserted}, nil
}

func (d *Database) execUpdate(s updateStmt) (*Result, error) {
	t, ok := d.tables[s.table]
	if !ok {
		return nil, fmt.Errorf("clusterdb: no such table %q", s.table)
	}
	env := &rowEnv{tables: []*boundTable{{alias: s.table, t: t}}}
	affected := 0
	for ri := range t.rows {
		env.rows = [][]Value{t.rows[ri]}
		if s.where != nil {
			v, err := eval(s.where, env)
			if err != nil {
				return nil, err
			}
			if !v.Truthy() {
				continue
			}
		}
		// Stage the new row so uniqueness is checked before anything
		// commits; within one row later SET clauses see earlier ones, the
		// same visibility the old in-place update gave.
		staged := append([]Value(nil), t.rows[ri]...)
		env.rows = [][]Value{staged}
		for _, set := range s.sets {
			ci := t.colIndex(set.col)
			if ci < 0 {
				return nil, fmt.Errorf("clusterdb: table %q has no column %q", s.table, set.col)
			}
			v, err := eval(set.val, env)
			if err != nil {
				return nil, err
			}
			cv, err := coerce(v, t.cols[ci].Type)
			if err != nil {
				return nil, err
			}
			staged[ci] = cv
		}
		if err := t.checkInsert(staged, ri); err != nil {
			return nil, err
		}
		t.indexUpdate(t.rows[ri], staged, ri)
		t.rows[ri] = staged
		affected++
	}
	return &Result{Affected: affected}, nil
}

func (d *Database) execDelete(s deleteStmt) (*Result, error) {
	t, ok := d.tables[s.table]
	if !ok {
		return nil, fmt.Errorf("clusterdb: no such table %q", s.table)
	}
	env := &rowEnv{tables: []*boundTable{{alias: s.table, t: t}}}
	kept := t.rows[:0]
	deleted := 0
	for _, row := range t.rows {
		keep := true
		if s.where != nil {
			env.rows = [][]Value{row}
			v, err := eval(s.where, env)
			if err != nil {
				return nil, err
			}
			keep = !v.Truthy()
		} else {
			keep = false
		}
		if keep {
			kept = append(kept, row)
		} else {
			deleted++
		}
	}
	t.rows = kept
	if deleted > 0 {
		// Deletion shifts row positions; rebuilding is O(N) but deletes are
		// the rarest mutation (decommissioning hardware).
		t.rebuildIndexes()
	}
	return &Result{Affected: deleted}, nil
}

// IndexInfo describes one automatic index in DBStats.
type IndexInfo struct {
	Table   string   `json:"table"`
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
	Unique  bool     `json:"unique"`
	Keys    int      `json:"keys"`
}

// DBStats is the database's fast-path instrumentation: how often the plan
// cache saved a parse, how SELECTs were answered, and what the indexes hold.
type DBStats struct {
	PlanCacheHits    uint64      `json:"plan_cache_hits"`
	PlanCacheMisses  uint64      `json:"plan_cache_misses"`
	PlanCacheEntries int         `json:"plan_cache_entries"`
	IndexSelects     uint64      `json:"index_selects"`
	ScanSelects      uint64      `json:"scan_selects"`
	Indexes          []IndexInfo `json:"indexes"`
	// WAL is the durability layer's accounting; nil for in-memory databases.
	WAL *WALStats `json:"wal,omitempty"`
}

// Stats snapshots the fast-path counters.
func (d *Database) Stats() DBStats {
	var s DBStats
	s.PlanCacheHits, s.PlanCacheMisses, s.PlanCacheEntries = d.plans.stats()
	s.IndexSelects = d.indexSelects.Load()
	s.ScanSelects = d.scanSelects.Load()
	if d.dur != nil {
		s.WAL = d.dur.stats()
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, name := range d.tableNamesLocked() {
		for _, ix := range d.tables[name].indexes {
			s.Indexes = append(s.Indexes, IndexInfo{
				Table:   name,
				Name:    ix.spec.name,
				Columns: append([]string(nil), ix.spec.cols...),
				Unique:  ix.spec.unique,
				Keys:    len(ix.buckets),
			})
		}
	}
	return s
}

// pointLookup answers "all rows where col = v" straight from a
// single-column index — the prepared-statement path the schema helpers use
// so per-value SQL texts (a different IP in every kickstart request) don't
// defeat the plan cache by paying a fresh parse per call. Row slices are
// safe to read after the lock drops: mutations replace a table's row
// slices, never write into them. ok is false when routing is off or no
// index covers col; the caller falls back to the SQL scan path.
func (d *Database) pointLookup(tableName, col string, v Value) (rows [][]Value, ok bool) {
	if !d.indexRouting.Load() {
		return nil, false
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, found := d.tables[tableName]
	if !found {
		return nil, false
	}
	for _, ix := range t.indexes {
		if len(ix.spec.cols) != 1 || ix.spec.cols[0] != col {
			continue
		}
		part, pOK, empty := canonicalKeyPart(t.cols[ix.colIdx[0]].Type, v)
		if empty {
			d.indexSelects.Add(1)
			return nil, true
		}
		if !pOK {
			return nil, false // '07'=7-style coercion: only a scan is exact
		}
		bucket := ix.buckets[part]
		rows = make([][]Value, len(bucket))
		for i, ri := range bucket {
			rows[i] = t.rows[ri]
		}
		d.indexSelects.Add(1)
		return rows, true
	}
	return nil, false
}

// lookupKeyCount returns how many rows hold the given value in a
// single-column indexed column — the O(1) existence probe NextFreeIP uses
// while walking the address space. ok is false when no usable index exists
// or routing is disabled (the caller falls back to its scan).
func (d *Database) lookupKeyCount(tableName, col string, v Value) (int, bool) {
	if !d.indexRouting.Load() {
		return 0, false
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, ok := d.tables[tableName]
	if !ok {
		return 0, false
	}
	for _, ix := range t.indexes {
		if len(ix.spec.cols) != 1 || ix.spec.cols[0] != col {
			continue
		}
		part, pOK, empty := canonicalKeyPart(t.cols[ix.colIdx[0]].Type, v)
		if empty {
			return 0, true
		}
		if !pOK {
			return 0, false
		}
		return len(ix.buckets[part]), true
	}
	return 0, false
}

package clusterdb

import (
	"rocks/internal/metrics"
)

// RegisterMetrics exposes the database's fast-path and durability counters
// on the cluster's metrics registry — the same figures /admin/dbstats
// serves as JSON, re-homed onto the one scrapeable surface. Collector
// funcs sample the live atomics at scrape time, so registration costs the
// hot paths nothing.
//
// The WAL families are registered unconditionally and read zero for an
// in-memory database: a scrape-side assertion ("is this counter present?")
// must not depend on how the cluster was configured.
func (d *Database) RegisterMetrics(r *metrics.Registry) {
	r.CounterFunc("rocks_db_plan_cache_hits_total",
		"SELECT/EXEC statements answered from the parsed-plan cache.",
		func() float64 { h, _, _ := d.plans.stats(); return float64(h) })
	r.CounterFunc("rocks_db_plan_cache_misses_total",
		"Statements that paid a fresh parse before caching.",
		func() float64 { _, m, _ := d.plans.stats(); return float64(m) })
	r.GaugeFunc("rocks_db_plan_cache_entries",
		"Parsed plans currently cached across both generations.",
		func() float64 { _, _, e := d.plans.stats(); return float64(e) })
	r.CounterFunc("rocks_db_index_selects_total",
		"SELECTs routed through an automatic hash index.",
		func() float64 { return float64(d.indexSelects.Load()) })
	r.CounterFunc("rocks_db_scan_selects_total",
		"SELECTs answered by a full table scan.",
		func() float64 { return float64(d.scanSelects.Load()) })
	r.GaugeVecFunc("rocks_db_index_keys",
		"Distinct keys held per automatic index.",
		[]string{"table", "index"}, func() []metrics.Sample {
			var out []metrics.Sample
			d.mu.RLock()
			for _, name := range d.tableNamesLocked() {
				for _, ix := range d.tables[name].indexes {
					out = append(out, metrics.Sample{
						Labels: []string{name, ix.spec.name},
						Value:  float64(len(ix.buckets)),
					})
				}
			}
			d.mu.RUnlock()
			return out
		})

	wal := func(get func(*WALStats) float64) func() float64 {
		return func() float64 {
			if d.dur == nil {
				return 0
			}
			return get(d.dur.stats())
		}
	}
	r.GaugeFunc("rocks_db_wal_enabled",
		"1 when the database is durable (WAL + snapshots), 0 for in-memory.",
		func() float64 {
			if d.dur != nil {
				return 1
			}
			return 0
		})
	r.CounterFunc("rocks_db_wal_records_appended_total",
		"Mutation records appended to the write-ahead log.",
		wal(func(s *WALStats) float64 { return float64(s.RecordsAppended) }))
	r.CounterFunc("rocks_db_wal_bytes_appended_total",
		"Bytes appended to the write-ahead log.",
		wal(func(s *WALStats) float64 { return float64(s.BytesAppended) }))
	r.CounterFunc("rocks_db_wal_fsyncs_total",
		"WAL records forced to stable storage before applying.",
		wal(func(s *WALStats) float64 { return float64(s.Fsyncs) }))
	r.CounterFunc("rocks_db_wal_snapshots_total",
		"Snapshot rotations taken.",
		wal(func(s *WALStats) float64 { return float64(s.Snapshots) }))
	r.GaugeFunc("rocks_db_wal_last_snapshot_seq",
		"Change sequence contained in the most recent snapshot.",
		wal(func(s *WALStats) float64 { return float64(s.LastSnapshotSeq) }))
	r.CounterFunc("rocks_db_wal_replays_total",
		"Recovery passes that replayed the log.",
		wal(func(s *WALStats) float64 { return float64(s.Replays) }))
	r.CounterFunc("rocks_db_wal_records_replayed_total",
		"Log records applied during recovery.",
		wal(func(s *WALStats) float64 { return float64(s.RecordsReplayed) }))
	r.CounterFunc("rocks_db_wal_replay_errors_total",
		"Replayed records that failed (deterministically, as first logged).",
		wal(func(s *WALStats) float64 { return float64(s.ReplayErrors) }))
	r.CounterFunc("rocks_db_wal_stale_skipped_total",
		"Log records skipped because the snapshot already contained them.",
		wal(func(s *WALStats) float64 { return float64(s.StaleSkipped) }))
	r.CounterFunc("rocks_db_wal_torn_tails_dropped_total",
		"Torn final records dropped from the log tail during recovery.",
		wal(func(s *WALStats) float64 { return float64(s.TornTailsDropped) }))
}

package clusterdb

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// populateRandomNodes fills a schema'd database with n deterministic
// pseudo-random nodes: unique macs/ips/names, random placement, a sprinkle
// of NULL-mac ghost rows (hardware registered before discovery).
func populateRandomNodes(t *testing.T, db *Database, rng *rand.Rand, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		node := Node{
			MAC:        fmt.Sprintf("02:00:00:00:%02x:%02x", i/256, i%256),
			Name:       fmt.Sprintf("compute-x-%d", i),
			Membership: 2 + rng.Intn(2),
			Rack:       rng.Intn(5),
			Rank:       i,
			IP:         fmt.Sprintf("10.7.%d.%d", i/256, i%256),
			CPUs:       1 + rng.Intn(4),
		}
		if _, err := InsertNode(db, node); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		mustExec(t, db, fmt.Sprintf(
			`INSERT INTO nodes (id, name, membership, rack) VALUES (%d, 'ghost-%d', 2, %d)`,
			9000+i, i, i%3))
	}
}

// differentialQueries is the catalog the indexed-vs-scan comparison runs:
// point lookups the planner routes, predicates it must refuse, and shapes
// (aggregates, GROUP BY, ORDER BY) layered over both.
var differentialQueries = []string{
	// Routed single-column probes, hit and miss.
	`SELECT * FROM nodes WHERE mac = '02:00:00:00:00:11'`,
	`SELECT id, name FROM nodes WHERE ip = '10.7.0.40'`,
	`SELECT * FROM nodes WHERE name = 'compute-x-7'`,
	`SELECT * FROM nodes WHERE name = 'no-such-node'`,
	`SELECT * FROM nodes WHERE nodes.mac = '02:00:00:00:00:22'`,
	`SELECT n.name FROM nodes n WHERE n.mac = '02:00:00:00:00:22'`,
	// Composite index, both conjunct orders, plus extra conjuncts.
	`SELECT name FROM nodes WHERE membership = 2 AND rack = 3`,
	`SELECT name FROM nodes WHERE rack = 3 AND membership = 2`,
	`SELECT name FROM nodes WHERE membership = 2 AND rack = 1 AND cpus = 2`,
	`SELECT name FROM nodes WHERE mac = '02:00:00:00:00:33' AND cpus = 1`,
	// Conflicting equalities: first probe narrows, full WHERE rejects.
	`SELECT name FROM nodes WHERE mac = '02:00:00:00:00:11' AND mac = '02:00:00:00:00:12'`,
	// Numeric-string literals on INT columns still probe.
	`SELECT name FROM nodes WHERE membership = '2' AND rack = '0'`,
	// Non-numeric literal on an INT column: provably empty either way.
	`SELECT name FROM nodes WHERE membership = 'zap' AND rack = 0`,
	// Integer literal on a TEXT column: '0042'-style coercion forces a scan.
	`SELECT name FROM nodes WHERE name = 7`,
	// Shapes the planner must leave to the scan path.
	`SELECT name FROM nodes WHERE mac = '02:00:00:00:00:11' OR ip = '10.7.0.9'`,
	`SELECT name FROM nodes WHERE mac IN ('02:00:00:00:00:11', '02:00:00:00:00:12')`,
	`SELECT name FROM nodes WHERE mac IS NULL AND rack = 1`,
	`SELECT name FROM nodes WHERE rank < 20 AND membership = 2`,
	`SELECT name FROM nodes WHERE mac LIKE '02:00:%' AND rack = 2`,
	// Sorting, limits, distinct, aggregates, grouping over indexed probes.
	`SELECT name FROM nodes WHERE membership = 2 AND rack = 1 ORDER BY rank DESC LIMIT 3`,
	`SELECT DISTINCT cpus FROM nodes WHERE membership = 3 AND rack = 0`,
	`SELECT count(*), min(rank), max(rank) FROM nodes WHERE membership = 2 AND rack = 2`,
	`SELECT rank, count(*) FROM nodes WHERE membership = 2 AND rack = 0 GROUP BY rank`,
	`SELECT rack, count(*) FROM nodes WHERE membership = 2 GROUP BY rack`,
	// Joins always scan; results must still match with routing on.
	`SELECT nodes.name, memberships.name FROM nodes, memberships
	 WHERE nodes.membership = memberships.id AND nodes.rack = 4 ORDER BY nodes.id`,
	// Errors must surface identically (unknown column alongside a probe).
	`SELECT name FROM nodes WHERE mac = '02:00:00:00:00:11' AND bogus = 1`,
}

// TestDifferentialIndexVsScan proves the planner's outputs are
// byte-identical to the scan path over randomized data, including after
// index maintenance (updates and deletes that shift row positions).
func TestDifferentialIndexVsScan(t *testing.T) {
	db := New()
	if err := InitSchema(db); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	populateRandomNodes(t, db, rng, 160)

	compareAll := func(stage string) {
		t.Helper()
		for _, q := range differentialQueries {
			db.SetIndexRouting(true)
			idxRes, idxErr := db.Query(q)
			before := db.Stats()
			db.SetIndexRouting(false)
			scanRes, scanErr := db.Query(q)
			after := db.Stats()
			db.SetIndexRouting(true)
			if after.IndexSelects != before.IndexSelects {
				t.Fatalf("%s: %q used an index with routing disabled", stage, q)
			}
			if (idxErr == nil) != (scanErr == nil) ||
				(idxErr != nil && idxErr.Error() != scanErr.Error()) {
				t.Fatalf("%s: %q error mismatch: indexed=%v scan=%v", stage, q, idxErr, scanErr)
			}
			if idxErr != nil {
				continue
			}
			if idxRes.Format() != scanRes.Format() {
				t.Fatalf("%s: %q rendered differently:\nindexed:\n%s\nscan:\n%s",
					stage, q, idxRes.Format(), scanRes.Format())
			}
			if !reflect.DeepEqual(idxRes.Rows, scanRes.Rows) {
				t.Fatalf("%s: %q rows differ", stage, q)
			}
		}
	}

	before := db.Stats()
	compareAll("fresh")
	after := db.Stats()
	if after.IndexSelects <= before.IndexSelects {
		t.Fatalf("catalog never hit an index: %+v", after)
	}
	if after.ScanSelects <= before.ScanSelects {
		t.Fatalf("catalog never fell back to a scan: %+v", after)
	}

	// Mutate: random racks move, some nodes decommission, then re-verify.
	for i := 0; i < 40; i++ {
		id := 1 + rng.Intn(160)
		mustExec(t, db, fmt.Sprintf("UPDATE nodes SET rack = %d, cpus = %d WHERE id = %d",
			rng.Intn(5), 1+rng.Intn(4), id))
	}
	for i := 0; i < 20; i++ {
		mustExec(t, db, fmt.Sprintf("DELETE FROM nodes WHERE name = 'compute-x-%d'", rng.Intn(160)))
	}
	compareAll("after-maintenance")
}

func TestUniqueIndexEnforcement(t *testing.T) {
	db := New()
	if err := InitSchema(db); err != nil {
		t.Fatal(err)
	}
	if _, err := InsertNode(db, Node{MAC: "aa:aa", Name: "c-0-0", IP: "10.9.0.1", Membership: 2}); err != nil {
		t.Fatal(err)
	}
	// Duplicate MAC, IP, and name each refuse.
	dups := []Node{
		{MAC: "aa:aa", Name: "c-0-1", IP: "10.9.0.2", Membership: 2},
		{MAC: "aa:ab", Name: "c-0-2", IP: "10.9.0.1", Membership: 2},
		{MAC: "aa:ac", Name: "c-0-0", IP: "10.9.0.3", Membership: 2},
	}
	for _, n := range dups {
		if _, err := InsertNode(db, n); err == nil || !strings.Contains(err.Error(), "unique index") {
			t.Errorf("InsertNode(%+v) = %v, want unique-index error", n, err)
		}
	}
	// UPDATE into a collision refuses; updating a row to its own key is fine.
	if _, err := InsertNode(db, Node{MAC: "bb:bb", Name: "c-0-9", IP: "10.9.0.9", Membership: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`UPDATE nodes SET mac = 'aa:aa' WHERE name = 'c-0-9'`); err == nil {
		t.Error("UPDATE into duplicate mac should fail")
	}
	if _, err := db.Exec(`UPDATE nodes SET mac = 'bb:bb' WHERE name = 'c-0-9'`); err != nil {
		t.Errorf("self-assignment should succeed: %v", err)
	}
	// Sparse semantics: NULL and empty keys may repeat.
	mustExec(t, db, `INSERT INTO nodes (id, name, membership) VALUES (501, 'null-1', 2)`)
	mustExec(t, db, `INSERT INTO nodes (id, name, membership) VALUES (502, 'null-2', 2)`)
	mustExec(t, db, `INSERT INTO nodes (id, mac, name, membership) VALUES (503, '', 'empty-1', 2)`)
	mustExec(t, db, `INSERT INTO nodes (id, mac, name, membership) VALUES (504, '', 'empty-2', 2)`)
	// Freeing a key by delete makes it insertable again.
	if err := DeleteNode(db, "c-0-9"); err != nil {
		t.Fatal(err)
	}
	if _, err := InsertNode(db, Node{MAC: "bb:bb", Name: "c-0-9", IP: "10.9.0.9", Membership: 2}); err != nil {
		t.Errorf("reinsert after delete: %v", err)
	}
}

func TestOneNodeRejectsDuplicateMatches(t *testing.T) {
	db := New()
	if err := InitSchema(db); err != nil {
		t.Fatal(err)
	}
	// Two identity-less rows legally share mac='' under sparse uniqueness;
	// looking one up by that non-identity must error, not pick arbitrarily.
	mustExec(t, db, `INSERT INTO nodes (id, mac, name, membership) VALUES (601, '', 'blank-1', 2)`)
	mustExec(t, db, `INSERT INTO nodes (id, mac, name, membership) VALUES (602, '', 'blank-2', 2)`)
	_, _, err := NodeByMAC(db, "")
	if err == nil || !strings.Contains(err.Error(), "expected at most one") {
		t.Fatalf("NodeByMAC('') = %v, want duplicate-match error", err)
	}
	// A unique match still resolves.
	if _, ok, err := NodeByName(db, "blank-1"); err != nil || !ok {
		t.Fatalf("NodeByName(blank-1) = %v, %v", ok, err)
	}
}

func TestIndexesSurviveDumpRestore(t *testing.T) {
	db := New()
	if err := InitSchema(db); err != nil {
		t.Fatal(err)
	}
	if _, err := InsertNode(db, Node{MAC: "cc:cc", Name: "c-1-0", IP: "10.9.1.1", Membership: 2}); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := Restore(restored, db.Dump()); err != nil {
		t.Fatal(err)
	}
	if len(restored.Stats().Indexes) == 0 {
		t.Fatal("restored database has no indexes")
	}
	before := restored.Stats().IndexSelects
	n, ok, err := NodeByMAC(restored, "cc:cc")
	if err != nil || !ok || n.Name != "c-1-0" {
		t.Fatalf("restored lookup = %+v, %v, %v", n, ok, err)
	}
	if restored.Stats().IndexSelects <= before {
		t.Error("restored lookup did not use the index")
	}
	if _, err := InsertNode(restored, Node{MAC: "cc:cc", Name: "c-1-1", IP: "10.9.1.2", Membership: 2}); err == nil {
		t.Error("restored database lost unique enforcement")
	}
}

// TestConcurrentIndexMaintenance hammers inserts, updates, deletes, and
// indexed reads from many goroutines; run under -race this exercises the
// locking around bucket maintenance.
func TestConcurrentIndexMaintenance(t *testing.T) {
	db := New()
	if err := InitSchema(db); err != nil {
		t.Fatal(err)
	}
	const (
		writers = 4
		perW    = 40
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers*perW*3)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				id := 100 + w*1000 + i
				_, err := db.Exec(fmt.Sprintf(
					`INSERT INTO nodes (id, mac, name, membership, rack, rank, ip)
					 VALUES (%d, 'st:%d:%d', 'storm-%d-%d', 2, %d, %d, '10.8.%d.%d')`,
					id, w, i, w, i, w, i, w, i))
				if err != nil {
					errs <- err
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if _, err := db.Exec(fmt.Sprintf(
					"UPDATE nodes SET cpus = %d WHERE name = 'storm-%d-%d'", 1+i%4, w, i)); err != nil {
					errs <- err
				}
				if err := DeleteNode(db, fmt.Sprintf("storm-%d-%d", 2+w, i)); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perW*2; i++ {
				if _, _, err := NodeByMAC(db, fmt.Sprintf("st:%d:%d", r%writers, i%perW)); err != nil {
					errs <- err
				}
				if _, err := db.Query(`SELECT count(*) FROM nodes WHERE membership = 2 AND rack = 1`); err != nil {
					errs <- err
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The survivors must still be consistent between index and scan paths.
	db.SetIndexRouting(false)
	scan, _ := db.Query(`SELECT name FROM nodes WHERE membership = 2 AND rack = 1 ORDER BY id`)
	db.SetIndexRouting(true)
	idx, _ := db.Query(`SELECT name FROM nodes WHERE membership = 2 AND rack = 1 ORDER BY id`)
	if scan.Format() != idx.Format() {
		t.Fatalf("post-storm divergence:\n%s\nvs\n%s", idx.Format(), scan.Format())
	}
}

func TestPlanCacheHitsAndRotation(t *testing.T) {
	db := New()
	if err := InitSchema(db); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT name FROM nodes WHERE id = 1`
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	h0 := db.Stats().PlanCacheHits
	for i := 0; i < 10; i++ {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	s := db.Stats()
	if s.PlanCacheHits < h0+10 {
		t.Errorf("hits = %d, want >= %d", s.PlanCacheHits, h0+10)
	}
	if s.PlanCacheEntries == 0 {
		t.Error("no cached plans")
	}
	// One-shot texts (INSERTs with inlined values) must not grow the cache
	// without bound: after thousands of distinct statements the entry count
	// stays within two generations.
	mustExec(t, db, `CREATE TABLE scratch (n INT)`)
	for i := 0; i < 3*planCacheGeneration; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO scratch VALUES (%d)", i))
		if i%100 == 0 {
			if _, err := db.Query(q); err != nil { // keep the hot statement hot
				t.Fatal(err)
			}
		}
	}
	if got := db.Stats().PlanCacheEntries; got > 2*planCacheGeneration {
		t.Errorf("cache grew unbounded: %d entries", got)
	}
	// The hot statement survived the churn (promoted across generations
	// each time a prev-generation hit touched it).
	h1 := db.Stats().PlanCacheHits
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if db.Stats().PlanCacheHits != h1+1 {
		t.Error("hot statement evicted by one-shot churn")
	}
	// Disabling bypasses the cache without dropping it.
	db.SetPlanCache(false)
	h2 := db.Stats().PlanCacheHits
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if db.Stats().PlanCacheHits != h2 {
		t.Error("disabled cache still serving hits")
	}
	db.SetPlanCache(true)
}

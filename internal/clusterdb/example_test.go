package clusterdb_test

import (
	"fmt"

	"rocks/internal/clusterdb"
)

// Example_clusterKillJoin runs the paper's §6.4 multi-table join: select
// the compute nodes by joining the nodes and memberships tables.
func Example_clusterKillJoin() {
	db := clusterdb.New()
	if err := clusterdb.InitSchema(db); err != nil {
		fmt.Println(err)
		return
	}
	for i, name := range []string{"compute-0-0", "compute-0-1"} {
		clusterdb.InsertNode(db, clusterdb.Node{
			MAC: fmt.Sprintf("00:50:8b:e0:3a:a%d", i), Name: name,
			Membership: clusterdb.MembershipCompute, Rank: i,
			IP: fmt.Sprintf("10.255.255.%d", 254-i),
		})
	}
	clusterdb.InsertNode(db, clusterdb.Node{
		MAC: "00:30:c1:d8:ac:80", Name: "frontend-0",
		Membership: clusterdb.MembershipFrontend, IP: "10.1.1.1",
	})

	res, err := db.Query(`select nodes.name from nodes,memberships where
		nodes.membership = memberships.id and
		memberships.name = 'Compute'`)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, host := range res.Strings() {
		fmt.Println(host)
	}
	// Output:
	// compute-0-0
	// compute-0-1
}

package clusterdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"

	"rocks/internal/faults"
)

// The write-ahead log makes the cluster database survive the failure mode
// the paper's MySQL frontend survived and our in-memory reproduction did
// not: a frontend crash mid-discovery-storm. Every mutating statement is
// appended to wal.log as a length-prefixed, CRC32-checksummed record
// *before* it is applied in memory; recovery is the newest snapshot plus a
// short log replay. The engine is deterministic and single-writer, so
// replaying a CRC-valid record reproduces its original outcome — including
// its original error, which is why replay tolerates (and counts) apply
// errors but fails loudly on checksum corruption anywhere except a torn
// final record.
//
// Record layout (big-endian):
//
//	4 bytes  payload length
//	4 bytes  CRC32-IEEE of payload
//	payload: 8 bytes sequence number | SQL text
//
// The sequence number is the ChangeSeq value the record produces. Snapshots
// are tagged with the sequence they contain, so a replay after a crash
// mid-rotation (snapshot renamed, log not yet truncated) skips the records
// the snapshot already holds instead of applying them twice.

// walName is the log file inside a durable database directory.
const walName = "wal.log"

// walHeaderSize is the fixed prefix of every record: length + CRC.
const walHeaderSize = 8

// maxWALRecord bounds a single record's payload; anything larger is
// corruption, not a statement.
const maxWALRecord = 64 << 20

// DefaultSnapshotEvery is how many logged mutations accumulate before an
// automatic snapshot + log rotation when Options.SnapshotEvery is zero.
const DefaultSnapshotEvery = 1024

// ErrCrashed is returned by every mutation after a simulated crash seam
// fired: the durability layer is frozen exactly as a kill -9 left it, and
// only reopening the directory recovers.
var ErrCrashed = errors.New("clusterdb: simulated crash: durability layer is down, reopen the directory to recover")

// ErrClosed is returned by mutations after Close.
var ErrClosed = errors.New("clusterdb: database is closed")

// Options configures a durable database opened with Open.
type Options struct {
	// Fsync forces every appended record to stable storage before the
	// statement applies. Off by default: the simulation's tests care about
	// crash *consistency* (which the record framing provides) more than
	// about the last-record guarantee, and a 1000-node discovery storm
	// should not pay a thousand fsyncs unless asked to.
	Fsync bool
	// SnapshotEvery is how many logged mutations trigger an automatic
	// snapshot + log rotation. Zero means DefaultSnapshotEvery; negative
	// disables automatic snapshots (Snapshot may still be called).
	SnapshotEvery int
	// Faults, when set, arms the durability crash seams (faults.OpDBPreAppend
	// and friends) so tests can kill the database at chosen points.
	Faults *faults.Injector

	// onReplay, when set, is invoked after each replayed record with the
	// database being recovered — the white-box hook the recovery/serving
	// boundary race test uses. Never set in production.
	onReplay func(*Database)
}

// WALStats counts the durability layer's traffic for /admin/dbstats.
type WALStats struct {
	Dir              string `json:"dir"`
	RecordsAppended  uint64 `json:"records_appended"`
	BytesAppended    uint64 `json:"bytes_appended"`
	Fsyncs           uint64 `json:"fsyncs"`
	Snapshots        uint64 `json:"snapshots"`
	LastSnapshotSeq  int64  `json:"last_snapshot_seq"`
	Replays          uint64 `json:"replays"`
	RecordsReplayed  uint64 `json:"records_replayed"`
	ReplayErrors     uint64 `json:"replay_errors"`
	StaleSkipped     uint64 `json:"stale_skipped"`
	TornTailsDropped uint64 `json:"torn_tails_dropped"`
}

// durability is a Database's on-disk half: the open log file and the
// counters behind WALStats. The file handle and appendsSinceSnap are
// guarded by Database.writeMu; counters are atomic so Stats never blocks
// behind an fsync.
type durability struct {
	dir  string
	opts Options
	f    *os.File

	crashed atomic.Bool
	closed  atomic.Bool

	appendsSinceSnap int // mutations logged since the last snapshot

	records, bytes, fsyncs       atomic.Uint64
	snapshots                    atomic.Uint64
	lastSnapshotSeq              atomic.Int64
	replays, replayed, replayErr atomic.Uint64
	staleSkipped, tornDropped    atomic.Uint64
}

// guard rejects mutations once the durability layer has crashed or closed.
func (dur *durability) guard() error {
	if dur.crashed.Load() {
		return ErrCrashed
	}
	if dur.closed.Load() {
		return ErrClosed
	}
	return nil
}

// walPath returns the log file's path.
func (dur *durability) walPath() string { return dur.dir + "/" + walName }

// encodeRecord frames one statement for the log.
func encodeRecord(seq int64, sql string) []byte {
	payload := make([]byte, 8+len(sql))
	binary.BigEndian.PutUint64(payload, uint64(seq))
	copy(payload[8:], sql)
	rec := make([]byte, walHeaderSize+len(payload))
	binary.BigEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	copy(rec[walHeaderSize:], payload)
	return rec
}

// append logs one mutation. Callers hold Database.writeMu. The pre-append
// and post-append crash seams fire here: pre-append leaves nothing on disk,
// post-append leaves a durable record whose statement the caller must not
// apply (the returned error tells it so).
func (dur *durability) append(seq int64, sql string) error {
	if err := dur.guard(); err != nil {
		return err
	}
	if faults.CrashPoint(dur.opts.Faults, faults.OpDBPreAppend, "clusterdb", dur.dir) {
		dur.crashed.Store(true)
		return fmt.Errorf("%w (pre-append: record %d never written)", ErrCrashed, seq)
	}
	rec := encodeRecord(seq, sql)
	if _, err := dur.f.Write(rec); err != nil {
		return fmt.Errorf("clusterdb: wal append: %w", err)
	}
	if dur.opts.Fsync {
		if err := dur.f.Sync(); err != nil {
			return fmt.Errorf("clusterdb: wal fsync: %w", err)
		}
		dur.fsyncs.Add(1)
	}
	dur.records.Add(1)
	dur.bytes.Add(uint64(len(rec)))
	dur.appendsSinceSnap++
	if faults.CrashPoint(dur.opts.Faults, faults.OpDBPostAppend, "clusterdb", dur.dir) {
		dur.crashed.Store(true)
		return fmt.Errorf("%w (post-append: record %d durable but unapplied)", ErrCrashed, seq)
	}
	return nil
}

// stats snapshots the counters.
func (dur *durability) stats() *WALStats {
	return &WALStats{
		Dir:              dur.dir,
		RecordsAppended:  dur.records.Load(),
		BytesAppended:    dur.bytes.Load(),
		Fsyncs:           dur.fsyncs.Load(),
		Snapshots:        dur.snapshots.Load(),
		LastSnapshotSeq:  dur.lastSnapshotSeq.Load(),
		Replays:          dur.replays.Load(),
		RecordsReplayed:  dur.replayed.Load(),
		ReplayErrors:     dur.replayErr.Load(),
		StaleSkipped:     dur.staleSkipped.Load(),
		TornTailsDropped: dur.tornDropped.Load(),
	}
}

// replayWAL reads the log and applies every record with seq > snapSeq to d.
// It returns the offset of the end of the last valid record so Open can
// truncate a torn tail before appending resumes.
//
// Torn-tail policy: a final record that is truncated (header or payload
// extends past EOF) or checksum-corrupt is the unacknowledged write a power
// failure legally tears — it is dropped and counted. A checksum mismatch
// with *more data after it* is not a torn write, it is corruption of
// acknowledged history: replay fails loudly rather than silently dropping
// committed statements.
func (d *Database) replayWAL(f *os.File, snapSeq int64) (validEnd int64, err error) {
	dur := d.dur
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, fmt.Errorf("clusterdb: reading wal: %w", err)
	}
	size := int64(len(data))
	off := int64(0)
	for off < size {
		if size-off < walHeaderSize {
			dur.tornDropped.Add(1) // torn mid-header
			return off, nil
		}
		length := int64(binary.BigEndian.Uint32(data[off : off+4]))
		sum := binary.BigEndian.Uint32(data[off+4 : off+8])
		end := off + walHeaderSize + length
		if length < 8 || length > maxWALRecord || end > size {
			// The framing itself is impossible or runs past EOF. If this is
			// the final region of the file it is a torn write; a record this
			// malformed can never have data after it (we cannot frame past
			// it), so it is always final — drop it.
			dur.tornDropped.Add(1)
			return off, nil
		}
		payload := data[off+walHeaderSize : end]
		if crc32.ChecksumIEEE(payload) != sum {
			if end == size {
				dur.tornDropped.Add(1) // torn final record
				return off, nil
			}
			return off, fmt.Errorf("clusterdb: wal record at offset %d fails its checksum with %d bytes of later history — refusing to drop acknowledged statements",
				off, size-end)
		}
		seq := int64(binary.BigEndian.Uint64(payload[:8]))
		sql := string(payload[8:])
		if seq <= snapSeq {
			dur.staleSkipped.Add(1) // the snapshot already contains it
			off = end
			continue
		}
		st, perr := parse(sql)
		if perr != nil {
			// A CRC-valid record that does not parse was never appended by
			// this engine (append happens after parse) — that is corruption,
			// not history.
			return off, fmt.Errorf("clusterdb: wal record at offset %d (seq %d) does not parse: %v", off, seq, perr)
		}
		d.mu.Lock()
		d.changeSeq.Store(seq)
		_, aerr := d.applyLocked(st)
		d.mu.Unlock()
		if aerr != nil {
			// Deterministic engine: the statement failed identically when it
			// was first logged. Count it and keep going.
			dur.replayErr.Add(1)
		}
		dur.replayed.Add(1)
		if dur.opts.onReplay != nil {
			dur.opts.onReplay(d)
		}
		off = end
	}
	return off, nil
}

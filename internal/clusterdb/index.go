package clusterdb

import (
	"fmt"
	"sort"
	"strings"
)

// Hash indexes over the hot columns of the Rocks schema. Every point lookup
// the paper's tools issue — insert-ethers asking NodeByMAC for each syslog
// line, the kickstart CGI asking NodeByIP for each HTTP request, NextRank
// scanning a cabinet — is a single-table equality predicate, so a handful of
// automatic hash indexes turns the O(N) scans that wall at 1000 nodes into
// O(1) probes. Indexes are created when a table with a known spec is
// created (including Restore replaying a dump), maintained on every
// INSERT/UPDATE/DELETE, and consulted by the planner in exec.go. The planner
// must produce byte-identical results to the scan path; the rules that make
// that true live in canonicalKeyPart.

// indexSpec names an automatic index: which columns it covers and whether
// it enforces uniqueness.
type indexSpec struct {
	name   string
	cols   []string
	unique bool
}

// autoIndexSpecs lists the indexes attached to known tables at CREATE time.
// A spec only applies when every named column exists in the created table,
// so user tables that happen to share a name but not the schema stay plain.
//
// Uniqueness on nodes is sparse: NULL keys are never indexed and empty-string
// keys are indexed but not uniqueness-enforced, because appliances without a
// burned-in identity (switches before discovery, placeholder rows) legally
// share ”. oneNode surfaces those duplicates at lookup time instead.
var autoIndexSpecs = map[string][]indexSpec{
	"nodes": {
		{name: "nodes_mac", cols: []string{"mac"}, unique: true},
		{name: "nodes_ip", cols: []string{"ip"}, unique: true},
		{name: "nodes_name", cols: []string{"name"}, unique: true},
		{name: "nodes_membership_rack", cols: []string{"membership", "rack"}},
	},
	"memberships": {
		{name: "memberships_id", cols: []string{"id"}},
		{name: "memberships_name", cols: []string{"name"}},
	},
	"site": {
		{name: "site_name", cols: []string{"name"}},
	},
}

// index is one hash index: bucket keys use the rowKey encoding over the
// indexed columns, and each bucket holds row positions in ascending order so
// an indexed SELECT visits rows in exactly the order a scan would.
type index struct {
	spec    indexSpec
	colIdx  []int
	buckets map[string][]int
}

// attachIndexes gives a freshly created table its automatic indexes.
func (t *table) attachIndexes() {
	for _, spec := range autoIndexSpecs[t.name] {
		colIdx := make([]int, len(spec.cols))
		covered := true
		for i, col := range spec.cols {
			if colIdx[i] = t.colIndex(col); colIdx[i] < 0 {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		t.indexes = append(t.indexes, &index{
			spec:    spec,
			colIdx:  colIdx,
			buckets: make(map[string][]int),
		})
	}
}

// keyFor encodes a stored row's key for this index. ok is false when any key
// column is NULL: NULL equals nothing, so such rows can never be returned by
// an equality probe and are left out of the buckets entirely.
func (ix *index) keyFor(row []Value) (string, bool) {
	var b strings.Builder
	for _, ci := range ix.colIdx {
		v := row[ci]
		if v.Null {
			return "", false
		}
		if v.IsInt {
			fmt.Fprintf(&b, "\x00I%d", v.Int)
		} else {
			b.WriteString("\x00S")
			b.WriteString(v.Str)
		}
	}
	return b.String(), true
}

// enforceable reports whether uniqueness applies to this row's key: sparse
// semantics exempt empty-string text parts (rows without an identity yet).
func (ix *index) enforceable(row []Value) bool {
	if !ix.spec.unique {
		return false
	}
	for _, ci := range ix.colIdx {
		v := row[ci]
		if v.Null || (!v.IsInt && v.Str == "") {
			return false
		}
	}
	return true
}

// checkInsert verifies a prospective row violates no unique index of the
// table. exclude is the row position to ignore (the row itself, during
// UPDATE); pass -1 for INSERT.
func (t *table) checkInsert(row []Value, exclude int) error {
	for _, ix := range t.indexes {
		if !ix.enforceable(row) {
			continue
		}
		key, ok := ix.keyFor(row)
		if !ok {
			continue
		}
		for _, pos := range ix.buckets[key] {
			if pos != exclude {
				return fmt.Errorf("clusterdb: duplicate value %s for unique index %s on %q",
					indexKeyString(ix, row), ix.spec.name, t.name)
			}
		}
	}
	return nil
}

// indexKeyString renders an index key for error messages: ('aa:bb', 7).
func indexKeyString(ix *index, row []Value) string {
	parts := make([]string, len(ix.colIdx))
	for i, ci := range ix.colIdx {
		parts[i] = sqlLiteral(row[ci])
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// indexAdd registers a row at the given position in every index.
func (t *table) indexAdd(row []Value, pos int) {
	for _, ix := range t.indexes {
		if key, ok := ix.keyFor(row); ok {
			ix.buckets[key] = insertPos(ix.buckets[key], pos)
		}
	}
}

// indexUpdate moves a row from its old key to its new key in every index.
func (t *table) indexUpdate(oldRow, newRow []Value, pos int) {
	for _, ix := range t.indexes {
		oldKey, oldOK := ix.keyFor(oldRow)
		newKey, newOK := ix.keyFor(newRow)
		if oldOK == newOK && oldKey == newKey {
			continue
		}
		if oldOK {
			if b := removePos(ix.buckets[oldKey], pos); len(b) > 0 {
				ix.buckets[oldKey] = b
			} else {
				delete(ix.buckets, oldKey)
			}
		}
		if newOK {
			ix.buckets[newKey] = insertPos(ix.buckets[newKey], pos)
		}
	}
}

// rebuildIndexes refills every bucket from scratch — used after DELETE
// compacts the row slice and shifts positions.
func (t *table) rebuildIndexes() {
	for _, ix := range t.indexes {
		ix.buckets = make(map[string][]int)
	}
	for pos, row := range t.rows {
		t.indexAdd(row, pos)
	}
}

// insertPos adds pos to a sorted position slice.
func insertPos(s []int, pos int) []int {
	i := sort.SearchInts(s, pos)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = pos
	return s
}

// removePos drops pos from a sorted position slice.
func removePos(s []int, pos int) []int {
	i := sort.SearchInts(s, pos)
	if i < len(s) && s[i] == pos {
		s = append(s[:i], s[i+1:]...)
	}
	return s
}

// --- planner ---------------------------------------------------------------

// indexCandidates is the minimal planner: for a single-table SELECT whose
// WHERE is index-safe, find the best index fully covered by equality
// conjuncts and return the matching row positions (ascending — scan order).
// used=false means no index applies and the caller must scan. used=true with
// nil candidates means the predicate provably matches nothing.
func indexCandidates(bt *boundTable, where expr) (cand []int, used bool) {
	t := bt.t
	if len(t.indexes) == 0 || where == nil || !whereSafe(where, bt) {
		return nil, false
	}
	eq := map[string]Value{}
	collectEqualities(where, bt, eq)
	if len(eq) == 0 {
		return nil, false
	}
	var best *index
	var bestKey string
	bestEmpty := false
	for _, ix := range t.indexes {
		key, ok, empty := ix.probeKey(t, eq)
		if !ok {
			continue
		}
		if best == nil ||
			len(ix.spec.cols) > len(best.spec.cols) ||
			(len(ix.spec.cols) == len(best.spec.cols) && ix.spec.unique && !best.spec.unique) {
			best, bestKey, bestEmpty = ix, key, empty
		}
	}
	if best == nil {
		return nil, false
	}
	if bestEmpty {
		return nil, true
	}
	return best.buckets[bestKey], true
}

// probeKey builds the bucket key for a probe if every index column has a
// compatible equality literal. empty=true means the predicate can match no
// stored row (e.g. col = NULL), which is itself a usable — empty — plan.
func (ix *index) probeKey(t *table, eq map[string]Value) (key string, ok, empty bool) {
	var b strings.Builder
	for i, col := range ix.spec.cols {
		lit, have := eq[col]
		if !have {
			return "", false, false
		}
		part, pOK, pEmpty := canonicalKeyPart(t.cols[ix.colIdx[i]].Type, lit)
		if pEmpty {
			return "", true, true
		}
		if !pOK {
			return "", false, false
		}
		b.WriteString(part)
	}
	return b.String(), true, false
}

// canonicalKeyPart converts a probe literal to the stored encoding for one
// key column, or reports why it can't:
//
//   - NULL probes match nothing (SQL equality), on any column type.
//   - INT columns store canonical integers, so a probe that parses as an
//     integer probes with that integer; one that doesn't parse can never
//     equal a stored integer (Compare falls back to the canonical decimal
//     rendering, which always parses) — provably empty.
//   - TEXT columns store exact strings, so string probes are exact; an
//     integer probe, however, compares *numerically* against numeric-looking
//     strings ('07' = 7 under Compare), which a hash key can't express — the
//     planner bows out and the scan path answers it.
func canonicalKeyPart(ct Type, v Value) (part string, ok, empty bool) {
	if v.Null {
		return "", true, true
	}
	switch ct {
	case TypeInt:
		n, isInt := v.AsInt()
		if !isInt {
			return "", true, true
		}
		return fmt.Sprintf("\x00I%d", n), true, false
	default:
		if v.IsInt {
			return "", false, false
		}
		return "\x00S" + v.Str, true, false
	}
}

// whereSafe reports whether evaluating the WHERE clause over *any* subset of
// rows behaves identically to evaluating it over all rows: every column
// reference resolves against the single bound table and no operator can
// raise a row-dependent error. A scan evaluates the WHERE on every row, so
// an expression that errors (unknown column, aggregate misuse, non-integer
// arithmetic) errors whenever the table is non-empty; an index path that
// visits fewer rows must not silently succeed where the scan would fail.
func whereSafe(e expr, bt *boundTable) bool {
	switch x := e.(type) {
	case literal:
		return true
	case columnRef:
		return (x.table == "" || x.table == bt.alias) && bt.t.colIndex(x.name) >= 0
	case notExpr:
		return whereSafe(x.x, bt)
	case isNullExpr:
		return whereSafe(x.x, bt)
	case inExpr:
		if !whereSafe(x.x, bt) {
			return false
		}
		for _, item := range x.list {
			if !whereSafe(item, bt) {
				return false
			}
		}
		return true
	case binaryExpr:
		switch x.op {
		case "and", "or", "=", "!=", "<", ">", "<=", ">=":
			return whereSafe(x.l, bt) && whereSafe(x.r, bt)
		}
		// +, - (non-integer operands) and LIKE (pattern compilation) can
		// error per-row; leave them to the scan path.
		return false
	}
	return false
}

// collectEqualities gathers `col = literal` conjuncts from the top-level AND
// tree. Conflicting equalities on one column keep the first — the full WHERE
// is still evaluated on every candidate, so extra conjuncts only narrow.
func collectEqualities(e expr, bt *boundTable, eq map[string]Value) {
	b, ok := e.(binaryExpr)
	if !ok {
		return
	}
	if b.op == "and" {
		collectEqualities(b.l, bt, eq)
		collectEqualities(b.r, bt, eq)
		return
	}
	if b.op != "=" {
		return
	}
	ref, lit, ok := refAndLiteral(b.l, b.r)
	if !ok {
		ref, lit, ok = refAndLiteral(b.r, b.l)
	}
	if !ok || (ref.table != "" && ref.table != bt.alias) || bt.t.colIndex(ref.name) < 0 {
		return
	}
	if _, exists := eq[ref.name]; !exists {
		eq[ref.name] = lit
	}
}

func refAndLiteral(a, b expr) (columnRef, Value, bool) {
	ref, ok := a.(columnRef)
	if !ok {
		return columnRef{}, Value{}, false
	}
	lit, ok := b.(literal)
	if !ok {
		return columnRef{}, Value{}, false
	}
	return ref, lit.v, true
}

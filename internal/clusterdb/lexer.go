package clusterdb

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // one of ( ) , . * = != <> < > <= >= + -
)

type token struct {
	kind tokenKind
	text string // keywords/identifiers are lowercased; punctuation canonical
	pos  int
}

// lexer tokenizes the SQL subset. Identifiers and keywords are
// case-insensitive; string literals use single or double quotes with
// doubled-quote escaping.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(c):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '\'' || c == '"':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		default:
			if err := l.lexPunct(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(k tokenKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: l.pos})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\\' {
			// Backslash-newline continuations appear in the paper's own
			// cluster-kill examples; treat a lone backslash as whitespace.
			l.pos++
			continue
		}
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			// -- comment to end of line
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentCont(l.src[l.pos]) {
		l.pos++
	}
	l.emit(tokIdent, strings.ToLower(l.src[start:l.pos]))
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	l.emit(tokNumber, l.src[start:l.pos])
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
				b.WriteByte(quote) // doubled quote escape
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(tokString, b.String())
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("clusterdb: unterminated string starting at offset %d", start)
}

func (l *lexer) lexPunct() error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "!=", "<>", "<=", ">=":
		canon := two
		if canon == "<>" {
			canon = "!="
		}
		l.pos += 2
		l.emit(tokPunct, canon)
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '.', '*', '=', '<', '>', '+', '-', ';':
		l.pos++
		l.emit(tokPunct, string(c))
		return nil
	}
	return fmt.Errorf("clusterdb: unexpected character %q at offset %d", c, l.pos)
}

package clusterdb

// The statement and expression AST produced by the parser and consumed by
// the executor.

type statement interface{ stmt() }

type createTableStmt struct {
	name string
	cols []Column
}

type dropTableStmt struct {
	name     string
	ifExists bool
}

type insertStmt struct {
	table string
	cols  []string // nil means all columns in schema order
	rows  [][]expr
}

type updateStmt struct {
	table string
	sets  []setClause
	where expr // nil means all rows
}

type setClause struct {
	col string
	val expr
}

type deleteStmt struct {
	table string
	where expr
}

type selectStmt struct {
	distinct bool
	items    []selectItem // nil means *
	tables   []tableRef
	where    expr
	groupBy  []expr
	having   expr
	orderBy  []orderKey
	limit    int // -1 means no limit
}

type selectItem struct {
	ex    expr
	alias string
	star  bool   // bare * or table.*
	table string // for table.*
}

type tableRef struct {
	name  string
	alias string
}

type orderKey struct {
	ex   expr
	desc bool
}

func (createTableStmt) stmt() {}
func (dropTableStmt) stmt()   {}
func (insertStmt) stmt()      {}
func (updateStmt) stmt()      {}
func (deleteStmt) stmt()      {}
func (selectStmt) stmt()      {}

type expr interface{ exprNode() }

// binaryExpr covers comparisons, AND/OR, and + -.
type binaryExpr struct {
	op   string // "and" "or" "=" "!=" "<" ">" "<=" ">=" "+" "-" "like"
	l, r expr
}

type notExpr struct{ x expr }

type inExpr struct {
	x    expr
	list []expr
	neg  bool
}

type isNullExpr struct {
	x   expr
	neg bool // IS NOT NULL
}

type columnRef struct {
	table string // "" if unqualified
	name  string
}

type literal struct{ v Value }

// aggExpr is an aggregate call in a select list: COUNT(*), COUNT(x),
// MIN(x), MAX(x), SUM(x).
type aggExpr struct {
	fn   string // "count", "min", "max", "sum"
	star bool   // COUNT(*)
	x    expr   // nil when star
}

func (binaryExpr) exprNode() {}
func (notExpr) exprNode()    {}
func (inExpr) exprNode()     {}
func (isNullExpr) exprNode() {}
func (columnRef) exprNode()  {}
func (literal) exprNode()    {}
func (aggExpr) exprNode()    {}

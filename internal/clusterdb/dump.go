package clusterdb

import (
	"fmt"
	"strings"
)

// Dump serializes the whole database as SQL text — CREATE TABLE and INSERT
// statements — the way mysqldump backs up a Rocks frontend before an
// upgrade. Restore replays a dump into an empty database.

// Dump renders the database as executable SQL, tables in name order, rows
// in storage order.
func (d *Database) Dump() string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var b strings.Builder
	b.WriteString("-- rocks cluster database dump\n")
	for _, name := range d.tableNamesLocked() {
		t := d.tables[name]
		cols := make([]string, len(t.cols))
		for i, c := range t.cols {
			cols[i] = c.Name + " " + c.Type.String()
		}
		fmt.Fprintf(&b, "CREATE TABLE %s (%s);\n", name, strings.Join(cols, ", "))
		for _, row := range t.rows {
			vals := make([]string, len(row))
			for i, v := range row {
				vals[i] = sqlLiteral(v)
			}
			fmt.Fprintf(&b, "INSERT INTO %s VALUES (%s);\n", name, strings.Join(vals, ", "))
		}
	}
	return b.String()
}

// tableNamesLocked returns sorted table names; callers hold the lock.
func (d *Database) tableNamesLocked() []string {
	names := make([]string, 0, len(d.tables))
	for n := range d.tables {
		names = append(names, n)
	}
	// insertion sort: the table count is tiny
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// sqlLiteral renders a value as an SQL literal. The only escape the dialect
// has is quote doubling: newlines, carriage returns, and every other byte
// embed raw inside the quotes, and SplitStatements + the lexer reassemble
// multi-line literals byte-for-byte. Snapshots lean on this round-tripping
// exactly (the regression tests in dump_test.go feed it hostile text), so
// any new escaping here must change the reader in lockstep.
func sqlLiteral(v Value) string {
	switch {
	case v.Null:
		return "NULL"
	case v.IsInt:
		return v.String()
	default:
		return "'" + strings.ReplaceAll(v.Str, "'", "''") + "'"
	}
}

// Restore replays a dump into the database. Statements execute in order;
// the first error aborts the restore, identifying the statement — recovery
// paths surface this to an administrator staring at a damaged backup, so
// "which statement" matters.
func Restore(d *Database, dump string) error {
	for i, stmt := range SplitStatements(dump) {
		if _, err := d.Exec(stmt); err != nil {
			return fmt.Errorf("clusterdb: restore: statement %d (%s): %w", i+1, abbreviateSQL(stmt), err)
		}
	}
	return nil
}

// abbreviateSQL clips a statement for error messages.
func abbreviateSQL(s string) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}

// SplitStatements splits SQL text on statement-terminating semicolons,
// respecting string literals and skipping comment lines.
func SplitStatements(text string) []string {
	var stmts []string
	var cur strings.Builder
	inString := byte(0)
	lines := strings.Split(text, "\n")
	for _, line := range lines {
		if inString == 0 && strings.HasPrefix(strings.TrimSpace(line), "--") {
			continue
		}
		for i := 0; i < len(line); i++ {
			c := line[i]
			switch {
			case inString != 0:
				cur.WriteByte(c)
				if c == inString {
					// Doubled quotes stay inside the literal.
					if i+1 < len(line) && line[i+1] == inString {
						cur.WriteByte(line[i+1])
						i++
					} else {
						inString = 0
					}
				}
			case c == '\'' || c == '"':
				inString = c
				cur.WriteByte(c)
			case c == ';':
				if s := strings.TrimSpace(cur.String()); s != "" {
					stmts = append(stmts, s)
				}
				cur.Reset()
			default:
				cur.WriteByte(c)
			}
		}
		cur.WriteByte('\n')
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		stmts = append(stmts, s)
	}
	return stmts
}

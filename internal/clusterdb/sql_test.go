package clusterdb

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func mustExec(t *testing.T, db *Database, sql string) *Result {
	t.Helper()
	res, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func newTestDB(t *testing.T) *Database {
	t.Helper()
	db := New()
	mustExec(t, db, `CREATE TABLE nodes (id INT, mac TEXT, name TEXT, membership INT, rack INT, rank INT, ip TEXT, comment TEXT)`)
	mustExec(t, db, `CREATE TABLE memberships (id INT, name TEXT, appliance INT, compute TEXT)`)
	mustExec(t, db, `INSERT INTO nodes VALUES
		(1, '00:30:c1:d8:ac:80', 'frontend-0', 1, 0, 0, '10.1.1.1', 'Gateway machine'),
		(2, '00:01:e7:1a:be:00', 'network-0-0', 4, 0, 0, '10.255.255.253', 'Switch for Cabinet 0'),
		(3, '00:50:8b:a5:4d:b1', 'nfs-0-0', 7, 0, 0, '10.255.255.249', 'NFS Server in Cabinet 0'),
		(4, '00:50:8b:e0:3a:a7', 'compute-0-0', 2, 0, 0, '10.255.255.245', 'Compute node'),
		(5, '00:50:8b:e0:44:5e', 'compute-0-1', 2, 0, 1, '10.255.255.244', 'Compute node'),
		(6, '00:50:8b:e0:40:95', 'compute-0-2', 2, 0, 2, '10.255.255.243', 'Compute node'),
		(7, '00:50:8b:e0:40:93', 'compute-0-3', 2, 0, 3, '10.255.255.242', 'Compute node'),
		(8, '00:50:8b:c5:c7:d3', 'web-1-0', 8, 1, 0, '10.255.255.246', 'Web Server in Cabinet 1')`)
	mustExec(t, db, `INSERT INTO memberships VALUES
		(1, 'Frontend', 1, 'no'),
		(2, 'Compute', 2, 'yes'),
		(4, 'Ethernet Switches', 4, 'no'),
		(7, 'NFS', 7, 'no'),
		(8, 'Web', 8, 'no')`)
	return db
}

func TestSelectAll(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query(`SELECT * FROM nodes`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 || len(res.Columns) != 8 {
		t.Fatalf("got %dx%d, want 8x8", len(res.Rows), len(res.Columns))
	}
}

func TestSelectWhere(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query(`SELECT name FROM nodes WHERE rack = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Strings(); len(got) != 1 || got[0] != "web-1-0" {
		t.Errorf("got %v", got)
	}
}

// TestPaperClusterKillQuery runs the first cluster-kill query from §6.4
// verbatim (including the backslash line continuations).
func TestPaperClusterKillQuery(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query(`select name from nodes where rack=1`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Strings(); len(got) != 1 || got[0] != "web-1-0" {
		t.Errorf("rack=1 nodes = %v, want [web-1-0]", got)
	}
}

// TestPaperJoinQuery runs the paper's multi-table join verbatim: kill a
// runaway job only on compute nodes.
func TestPaperJoinQuery(t *testing.T) {
	db := newTestDB(t)
	q := `select nodes.name from nodes,memberships where \
		nodes.membership = memberships.id and \
		memberships.name = 'Compute'`
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"compute-0-0", "compute-0-1", "compute-0-2", "compute-0-3"}
	got := res.Strings()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestJoinWithAliases(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query(`SELECT n.name, m.name FROM nodes n, memberships m
		WHERE n.membership = m.id AND m.compute = 'yes' ORDER BY n.name DESC LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].String() != "compute-0-3" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query(`SELECT name FROM nodes ORDER BY rack DESC, rank ASC, id`)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Strings()
	if got[0] != "web-1-0" {
		t.Errorf("first row = %q, want web-1-0 (rack 1 first)", got[0])
	}
}

func TestLimitZero(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query(`SELECT name FROM nodes LIMIT 0`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("LIMIT 0 returned %d rows", len(res.Rows))
	}
}

func TestLike(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query(`SELECT name FROM nodes WHERE name LIKE 'compute-%'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Errorf("LIKE matched %d rows, want 4", len(res.Rows))
	}
	res, err = db.Query(`SELECT name FROM nodes WHERE name LIKE 'compute-0-_' AND name NOT LIKE '%3'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("NOT LIKE matched %d rows, want 3", len(res.Rows))
	}
}

func TestInList(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query(`SELECT name FROM nodes WHERE membership IN (4, 7)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("IN matched %d rows, want 2", len(res.Rows))
	}
	res, err = db.Query(`SELECT name FROM nodes WHERE membership NOT IN (1, 2, 4, 7, 8)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("NOT IN matched %d rows, want 0", len(res.Rows))
	}
}

func TestArithmeticAndComparison(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query(`SELECT name FROM nodes WHERE rank + 1 >= 3 AND membership = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Strings(); len(got) != 2 {
		t.Errorf("got %v, want compute-0-2 and compute-0-3", got)
	}
}

func TestUpdate(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `UPDATE nodes SET comment = 'down', rack = 9 WHERE name = 'compute-0-2'`)
	if res.Affected != 1 {
		t.Fatalf("Affected = %d, want 1", res.Affected)
	}
	q, _ := db.Query(`SELECT comment, rack FROM nodes WHERE name = 'compute-0-2'`)
	if q.Rows[0][0].String() != "down" || q.Rows[0][1].String() != "9" {
		t.Errorf("update not applied: %v", q.Rows[0])
	}
}

func TestDelete(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `DELETE FROM nodes WHERE membership = 2`)
	if res.Affected != 4 {
		t.Fatalf("Affected = %d, want 4", res.Affected)
	}
	q, _ := db.Query(`SELECT * FROM nodes`)
	if len(q.Rows) != 4 {
		t.Errorf("%d rows remain, want 4", len(q.Rows))
	}
}

func TestDeleteAll(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `DELETE FROM memberships`)
	if res.Affected != 5 {
		t.Errorf("Affected = %d, want 5", res.Affected)
	}
}

func TestInsertWithColumnList(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `INSERT INTO nodes (id, name, membership) VALUES (99, 'ghost', 2)`)
	res, _ := db.Query(`SELECT mac FROM nodes WHERE id = 99`)
	if !res.Rows[0][0].Null {
		t.Errorf("unlisted column should be NULL, got %v", res.Rows[0][0])
	}
	res, _ = db.Query(`SELECT name FROM nodes WHERE mac IS NULL`)
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "ghost" {
		t.Errorf("IS NULL lookup = %v", res.Rows)
	}
	res, _ = db.Query(`SELECT name FROM nodes WHERE mac IS NOT NULL`)
	if len(res.Rows) != 8 {
		t.Errorf("IS NOT NULL matched %d rows, want 8", len(res.Rows))
	}
}

func TestNullNeverEqual(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE t (a INT, b INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (NULL, NULL)`)
	res, _ := db.Query(`SELECT * FROM t WHERE a = b`)
	if len(res.Rows) != 0 {
		t.Error("NULL = NULL must not match")
	}
}

func TestTypeCoercion(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE t (n INT, s TEXT)`)
	mustExec(t, db, `INSERT INTO t VALUES ('42', 7)`) // string into INT, int into TEXT
	res, _ := db.Query(`SELECT n, s FROM t`)
	if !res.Rows[0][0].IsInt || res.Rows[0][0].Int != 42 {
		t.Errorf("string '42' should coerce to INT 42: %+v", res.Rows[0][0])
	}
	if res.Rows[0][1].IsInt || res.Rows[0][1].Str != "7" {
		t.Errorf("int 7 should coerce to TEXT \"7\": %+v", res.Rows[0][1])
	}
	if _, err := db.Exec(`INSERT INTO t VALUES ('notanumber', 'x')`); err == nil {
		t.Error("non-numeric string into INT column should fail")
	}
}

func TestParseErrors(t *testing.T) {
	db := newTestDB(t)
	bad := []string{
		``,
		`SELEC name FROM nodes`,
		`SELECT name FROM`,
		`SELECT FROM nodes`,
		`SELECT name FROM nodes WHERE`,
		`INSERT INTO nodes`,
		`CREATE TABLE t (x FLOAT)`,
		`SELECT name FROM nodes WHERE name = 'unterminated`,
		`SELECT name FROM nodes LIMIT many`,
		`SELECT name FROM nodes; SELECT 1 FROM nodes`,
	}
	for _, q := range bad {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("Exec(%q) should have failed", q)
		}
	}
}

func TestSemanticErrors(t *testing.T) {
	db := newTestDB(t)
	bad := []string{
		`SELECT name FROM ghosts`,
		`SELECT ghost FROM nodes`,
		`SELECT nodes.ghost FROM nodes`,
		`SELECT id FROM nodes, memberships`, // ambiguous: both tables have id
		`INSERT INTO nodes (nope) VALUES (1)`,
		`INSERT INTO nodes VALUES (1)`, // wrong arity
		`UPDATE nodes SET nope = 1`,
		`DELETE FROM ghosts`,
		`CREATE TABLE nodes (id INT)`, // exists
		`DROP TABLE ghosts`,
	}
	for _, q := range bad {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("Exec(%q) should have failed", q)
		}
	}
}

func TestDropTableIfExists(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `DROP TABLE IF EXISTS ghosts`)
	mustExec(t, db, `DROP TABLE IF EXISTS nodes`)
	if _, err := db.Query(`SELECT * FROM nodes`); err == nil {
		t.Error("nodes should be gone")
	}
}

func TestQueryRejectsMutation(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Query(`DELETE FROM nodes`); err == nil {
		t.Error("Query must reject non-SELECT statements")
	}
	if n, _ := db.Query(`SELECT * FROM nodes`); len(n.Rows) != 8 {
		t.Error("Query mutation leak")
	}
}

func TestQuotedStringEscapes(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE t (s TEXT)`)
	mustExec(t, db, `INSERT INTO t VALUES ('it''s a test')`)
	res, _ := db.Query(`SELECT s FROM t WHERE s = 'it''s a test'`)
	if len(res.Rows) != 1 {
		t.Error("doubled-quote escape failed")
	}
	mustExec(t, db, `INSERT INTO t VALUES ("double quoted")`)
	res, _ = db.Query(`SELECT s FROM t WHERE s = "double quoted"`)
	if len(res.Rows) != 1 {
		t.Error("double-quoted strings failed")
	}
}

func TestComments(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query("SELECT name FROM nodes -- trailing comment\nWHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("comment handling broke the query: %v", res.Rows)
	}
}

func TestResultFormat(t *testing.T) {
	db := newTestDB(t)
	res, _ := db.Query(`SELECT id, name FROM nodes WHERE id <= 2 ORDER BY id`)
	got := res.Format()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("Format produced %d lines: %q", len(lines), got)
	}
	if !strings.HasPrefix(lines[0], "id") || !strings.Contains(lines[0], "name") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "frontend-0") || !strings.Contains(lines[2], "network-0-0") {
		t.Errorf("rows = %q", lines[1:])
	}
}

func TestChangeSeqAdvancesOnMutation(t *testing.T) {
	db := newTestDB(t)
	before := db.ChangeSeq()
	db.Query(`SELECT * FROM nodes`)
	if db.ChangeSeq() != before {
		t.Error("SELECT must not advance ChangeSeq")
	}
	mustExec(t, db, `UPDATE nodes SET rank = rank WHERE id = 1`)
	if db.ChangeSeq() == before {
		t.Error("UPDATE must advance ChangeSeq")
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	db := newTestDB(t)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if _, err := db.Exec(fmt.Sprintf(
					`INSERT INTO nodes (id, name, membership) VALUES (%d, 'n%d-%d', 2)`,
					1000+i*100+j, i, j)); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(i)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if _, err := db.Query(`SELECT name FROM nodes WHERE membership = 2`); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	res, _ := db.Query(`SELECT * FROM nodes WHERE id >= 1000`)
	if len(res.Rows) != 100 {
		t.Errorf("%d rows inserted, want 100", len(res.Rows))
	}
}

// Property: inserting n distinct rows then selecting with an always-true
// predicate returns exactly n rows, and a point query finds each row.
func TestPropertyInsertSelectRoundTrip(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n)%40 + 1
		db := New()
		db.MustExec(`CREATE TABLE t (k INT, v TEXT)`)
		for i := 0; i < count; i++ {
			db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, 'val-%d')`, i, i))
		}
		all, err := db.Query(`SELECT * FROM t WHERE k >= 0`)
		if err != nil || len(all.Rows) != count {
			return false
		}
		for i := 0; i < count; i++ {
			one, err := db.Query(fmt.Sprintf(`SELECT v FROM t WHERE k = %d`, i))
			if err != nil || len(one.Rows) != 1 || one.Rows[0][0].String() != fmt.Sprintf("val-%d", i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: a join between t and its copy on equal keys yields exactly one
// row per key (join correctness on unique keys).
func TestPropertyJoinCardinality(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n)%20 + 1
		db := New()
		db.MustExec(`CREATE TABLE a (k INT)`)
		db.MustExec(`CREATE TABLE b (k INT)`)
		for i := 0; i < count; i++ {
			db.MustExec(fmt.Sprintf(`INSERT INTO a VALUES (%d)`, i))
			db.MustExec(fmt.Sprintf(`INSERT INTO b VALUES (%d)`, i))
		}
		res, err := db.Query(`SELECT a.k FROM a, b WHERE a.k = b.k`)
		return err == nil && len(res.Rows) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCompareValues(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntValue(1), IntValue(2), -1},
		{IntValue(2), IntValue(2), 0},
		{TextValue("a"), TextValue("b"), -1},
		{IntValue(10), TextValue("9"), 1}, // numeric comparison wins
		{TextValue("10"), IntValue(9), 1}, // both directions
		{NullValue(), IntValue(0), -1},    // NULL sorts first
		{NullValue(), NullValue(), 0},
		{IntValue(5), TextValue("abc"), -1}, // unparseable string: string compare of "5" vs "abc"
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestAggregates(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query(`SELECT COUNT(*) FROM nodes`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns[0] != "count" || res.Rows[0][0].Int != 8 {
		t.Errorf("COUNT(*) = %v", res.Rows)
	}
	res, err = db.Query(`SELECT COUNT(*) AS n FROM nodes WHERE membership = 2`)
	if err != nil || res.Columns[0] != "n" || res.Rows[0][0].Int != 4 {
		t.Errorf("filtered count = %v, %v", res, err)
	}
	res, err = db.Query(`SELECT MIN(rank), MAX(rank), SUM(rank), COUNT(rank) FROM nodes WHERE membership = 2`)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	if r[0].Int != 0 || r[1].Int != 3 || r[2].Int != 6 || r[3].Int != 4 {
		t.Errorf("min/max/sum/count = %v", r)
	}
}

func TestAggregateOverJoin(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query(`SELECT COUNT(*) FROM nodes, memberships
		WHERE nodes.membership = memberships.id AND memberships.compute = 'yes'`)
	if err != nil || res.Rows[0][0].Int != 4 {
		t.Errorf("join count = %v, %v", res, err)
	}
}

func TestAggregateSkipsNulls(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE t (v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1), (NULL), (3)`)
	res, err := db.Query(`SELECT COUNT(v), SUM(v), MIN(v) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	if r[0].Int != 2 || r[1].Int != 4 || r[2].Int != 1 {
		t.Errorf("null handling = %v", r)
	}
	// Aggregates over an empty match: COUNT 0, MIN/MAX NULL.
	res, _ = db.Query(`SELECT COUNT(*), MIN(v), MAX(v) FROM t WHERE v > 100`)
	r = res.Rows[0]
	if r[0].Int != 0 || !r[1].Null || !r[2].Null {
		t.Errorf("empty aggregate = %v", r)
	}
}

func TestAggregateErrors(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Query(`SELECT name, COUNT(*) FROM nodes`); err == nil {
		t.Error("mixed scalar/aggregate select accepted (no GROUP BY support)")
	}
	if _, err := db.Query(`SELECT name FROM nodes WHERE COUNT(*) > 1`); err == nil {
		t.Error("aggregate in WHERE accepted")
	}
	if _, err := db.Query(`SELECT SUM(name) FROM nodes`); err == nil {
		t.Error("SUM over text accepted")
	}
}

func TestSelectDistinct(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query(`SELECT DISTINCT rack FROM nodes ORDER BY rack`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Int != 0 || res.Rows[1][0].Int != 1 {
		t.Errorf("distinct racks = %v", res.Rows)
	}
	// Without DISTINCT the same query returns one row per node.
	res, _ = db.Query(`SELECT rack FROM nodes`)
	if len(res.Rows) != 8 {
		t.Errorf("non-distinct rows = %d", len(res.Rows))
	}
	// DISTINCT over multiple columns.
	res, err = db.Query(`SELECT DISTINCT rack, membership FROM nodes WHERE membership = 2`)
	if err != nil || len(res.Rows) != 1 {
		t.Errorf("multi-column distinct = %v, %v", res, err)
	}
}

func TestGroupBy(t *testing.T) {
	db := newTestDB(t)
	// Node count per rack — the capacity question an administrator asks.
	res, err := db.Query(`SELECT rack, COUNT(*) AS n FROM nodes GROUP BY rack`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %v", res.Rows)
	}
	if res.Rows[0][0].Int != 0 || res.Rows[0][1].Int != 7 {
		t.Errorf("rack 0 = %v", res.Rows[0])
	}
	if res.Rows[1][0].Int != 1 || res.Rows[1][1].Int != 1 {
		t.Errorf("rack 1 = %v", res.Rows[1])
	}
}

func TestGroupByWithJoinAndWhere(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query(`SELECT memberships.name, COUNT(*) FROM nodes, memberships
		WHERE nodes.membership = memberships.id AND nodes.rack = 0
		GROUP BY memberships.name`)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{}
	for _, r := range res.Rows {
		counts[r[0].String()] = r[1].Int
	}
	if counts["Compute"] != 4 || counts["Frontend"] != 1 || counts["NFS"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestGroupByMinMaxSum(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query(`SELECT membership, MIN(rank), MAX(rank), SUM(rank)
		FROM nodes GROUP BY membership`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r[0].Int == 2 { // Compute: ranks 0..3
			if r[1].Int != 0 || r[2].Int != 3 || r[3].Int != 6 {
				t.Errorf("compute group = %v", r)
			}
		}
	}
}

func TestGroupByRejectsOrderBy(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Query(`SELECT rack, COUNT(*) FROM nodes GROUP BY rack ORDER BY rack`); err == nil {
		t.Error("ORDER BY with GROUP BY should be rejected")
	}
}

func TestGroupByLimit(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query(`SELECT membership, COUNT(*) FROM nodes GROUP BY membership LIMIT 2`)
	if err != nil || len(res.Rows) != 2 {
		t.Errorf("limit over groups: %v, %v", res, err)
	}
}

func TestGroupByHaving(t *testing.T) {
	db := newTestDB(t)
	// Memberships with more than one node — only Compute qualifies.
	res, err := db.Query(`SELECT membership, COUNT(*) AS n FROM nodes
		GROUP BY membership HAVING COUNT(*) > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 2 || res.Rows[0][1].Int != 4 {
		t.Errorf("having rows = %v", res.Rows)
	}
	// HAVING over an aggregate not in the select list.
	res, err = db.Query(`SELECT membership FROM nodes
		GROUP BY membership HAVING MAX(rank) >= 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 2 {
		t.Errorf("hidden aggregate having = %v", res.Rows)
	}
	if len(res.Columns) != 1 {
		t.Errorf("hidden column leaked: %v", res.Columns)
	}
	// Compound HAVING.
	res, err = db.Query(`SELECT membership FROM nodes
		GROUP BY membership HAVING COUNT(*) > 1 AND MIN(rank) = 0`)
	if err != nil || len(res.Rows) != 1 {
		t.Errorf("compound having = %v, %v", res, err)
	}
}

func TestHavingRejectsRowReferences(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Query(`SELECT membership FROM nodes GROUP BY membership HAVING name = 'x'`); err == nil {
		t.Error("row-wise HAVING reference accepted")
	}
}

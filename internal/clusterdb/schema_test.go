package clusterdb

import (
	"fmt"
	"strings"
	"testing"
)

func initDB(t *testing.T) *Database {
	t.Helper()
	db := New()
	if err := InitSchema(db); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestInitSchemaSeedsDefaults(t *testing.T) {
	db := initDB(t)
	names := db.TableNames()
	want := []string{"appliances", "facts", "memberships", "nodes", "site"}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Errorf("TableNames = %v, want %v", names, want)
	}
	res, _ := db.Query(`SELECT * FROM memberships`)
	if len(res.Rows) != 6 {
		t.Errorf("%d default memberships, want 6 (Table III)", len(res.Rows))
	}
	v, err := SiteValue(db, "PrivateNetwork")
	if err != nil || v != "10.0.0.0" {
		t.Errorf("PrivateNetwork = %q, %v", v, err)
	}
}

func TestInsertNodeAllocatesIDs(t *testing.T) {
	db := initDB(t)
	n1, err := InsertNode(db, Node{MAC: "aa:bb", Name: "frontend-0", Membership: MembershipFrontend, IP: "10.1.1.1"})
	if err != nil {
		t.Fatal(err)
	}
	n2, err := InsertNode(db, Node{MAC: "cc:dd", Name: "compute-0-0", Membership: MembershipCompute, IP: "10.255.255.254"})
	if err != nil {
		t.Fatal(err)
	}
	if n1.ID != 1 || n2.ID != 2 {
		t.Errorf("IDs = %d, %d; want 1, 2", n1.ID, n2.ID)
	}
	if n2.Arch != "i386" || n2.CPUs != 1 {
		t.Errorf("defaults not applied: %+v", n2)
	}
}

func TestNodeLookups(t *testing.T) {
	db := initDB(t)
	InsertNode(db, Node{MAC: "aa:bb", Name: "compute-0-0", Membership: MembershipCompute, IP: "10.255.255.254"})
	byMAC, ok, err := NodeByMAC(db, "aa:bb")
	if err != nil || !ok || byMAC.Name != "compute-0-0" {
		t.Errorf("NodeByMAC = %+v, %v, %v", byMAC, ok, err)
	}
	byIP, ok, _ := NodeByIP(db, "10.255.255.254")
	if !ok || byIP.MAC != "aa:bb" {
		t.Errorf("NodeByIP = %+v, %v", byIP, ok)
	}
	byName, ok, _ := NodeByName(db, "compute-0-0")
	if !ok || byName.IP != "10.255.255.254" {
		t.Errorf("NodeByName = %+v, %v", byName, ok)
	}
	if _, ok, _ := NodeByMAC(db, "no:pe"); ok {
		t.Error("NodeByMAC found a ghost")
	}
}

func TestDeleteNode(t *testing.T) {
	db := initDB(t)
	InsertNode(db, Node{MAC: "aa:bb", Name: "compute-0-0", Membership: MembershipCompute, IP: "10.2.2.2"})
	if err := DeleteNode(db, "compute-0-0"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := NodeByName(db, "compute-0-0"); ok {
		t.Error("node survived deletion")
	}
}

func TestNextFreeIPDescends(t *testing.T) {
	db := initDB(t)
	ip1, err := NextFreeIP(db)
	if err != nil || ip1 != "10.255.255.254" {
		t.Fatalf("first IP = %q, %v", ip1, err)
	}
	InsertNode(db, Node{MAC: "a", Name: "x-0-0", Membership: MembershipCompute, IP: ip1})
	ip2, _ := NextFreeIP(db)
	if ip2 != "10.255.255.253" {
		t.Errorf("second IP = %q, want 10.255.255.253", ip2)
	}
	// A hole left by a deleted node is reused.
	InsertNode(db, Node{MAC: "b", Name: "x-0-1", Membership: MembershipCompute, IP: ip2})
	DeleteNode(db, "x-0-0")
	ip3, _ := NextFreeIP(db)
	if ip3 != "10.255.255.254" {
		t.Errorf("freed IP not reused: got %q", ip3)
	}
}

func TestNextFreeIPCrossesOctetBoundary(t *testing.T) {
	db := initDB(t)
	// Fill .254 down to .1 of the top /24, then the allocator must move to
	// 10.255.254.x. (.0 is skipped implicitly by decrementing through it —
	// verify we don't hand out a .0... actually Rocks hands out every
	// address; we just check the decrement is correct across the boundary.)
	for i := 254; i >= 1; i-- {
		InsertNode(db, Node{MAC: fmt.Sprintf("m%d", i), Name: fmt.Sprintf("c-0-%d", i),
			Membership: MembershipCompute, IP: fmt.Sprintf("10.255.255.%d", i)})
	}
	ip, err := NextFreeIP(db)
	if err != nil {
		t.Fatal(err)
	}
	if ip != "10.255.255.0" {
		t.Errorf("boundary IP = %q, want 10.255.255.0", ip)
	}
}

func TestNextRank(t *testing.T) {
	db := initDB(t)
	r, _ := NextRank(db, MembershipCompute, 0)
	if r != 0 {
		t.Errorf("first rank = %d, want 0", r)
	}
	InsertNode(db, Node{MAC: "a", Name: "compute-0-0", Membership: MembershipCompute, Rack: 0, Rank: 0, IP: "10.0.0.1"})
	InsertNode(db, Node{MAC: "b", Name: "compute-0-1", Membership: MembershipCompute, Rack: 0, Rank: 1, IP: "10.0.0.2"})
	r, _ = NextRank(db, MembershipCompute, 0)
	if r != 2 {
		t.Errorf("rank after two inserts = %d, want 2", r)
	}
	// Different rack and different membership rank independently.
	if r, _ = NextRank(db, MembershipCompute, 1); r != 0 {
		t.Errorf("rack 1 rank = %d, want 0", r)
	}
	if r, _ = NextRank(db, MembershipEthernetSwitch, 0); r != 0 {
		t.Errorf("switch rank = %d, want 0", r)
	}
	// A gap (deleted node) is refilled.
	DeleteNode(db, "compute-0-0")
	if r, _ = NextRank(db, MembershipCompute, 0); r != 0 {
		t.Errorf("gap rank = %d, want 0", r)
	}
}

func TestApplianceForMembership(t *testing.T) {
	db := initDB(t)
	name, graph, root, err := ApplianceForMembership(db, MembershipCompute)
	if err != nil {
		t.Fatal(err)
	}
	if name != "compute" || graph != "default" || root != "compute" {
		t.Errorf("got %q %q %q", name, graph, root)
	}
	if _, _, _, err := ApplianceForMembership(db, 99); err == nil {
		t.Error("unknown membership should error")
	}
}

func TestMembershipBasename(t *testing.T) {
	db := initDB(t)
	cases := map[int]string{
		MembershipCompute:        "compute",
		MembershipEthernetSwitch: "network",
		MembershipFrontend:       "frontend",
		MembershipPowerUnit:      "power",
	}
	for id, want := range cases {
		got, err := MembershipBasename(db, id)
		if err != nil || got != want {
			t.Errorf("MembershipBasename(%d) = %q, %v; want %q", id, got, err, want)
		}
	}
}

func TestAddMembership(t *testing.T) {
	db := initDB(t)
	id, err := AddMembership(db, "NFS", 7, false)
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 {
		t.Errorf("new membership id = %d, want 7", id)
	}
	got, err := MembershipIDByName(db, "NFS")
	if err != nil || got != 7 {
		t.Errorf("MembershipIDByName = %d, %v", got, err)
	}
	base, _ := MembershipBasename(db, 7)
	if base != "nfs" {
		t.Errorf("basename = %q, want nfs", base)
	}
}

func TestComputeNodeNames(t *testing.T) {
	db := initDB(t)
	InsertNode(db, Node{MAC: "a", Name: "frontend-0", Membership: MembershipFrontend, IP: "10.1.1.1"})
	InsertNode(db, Node{MAC: "b", Name: "compute-0-0", Membership: MembershipCompute, IP: "10.0.0.2"})
	InsertNode(db, Node{MAC: "c", Name: "compute-0-1", Membership: MembershipCompute, IP: "10.0.0.3"})
	got, err := ComputeNodeNames(db)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, " ") != "compute-0-0 compute-0-1" {
		t.Errorf("ComputeNodeNames = %v", got)
	}
}

func TestSetSiteValueInsertsAndUpdates(t *testing.T) {
	db := initDB(t)
	if err := SetSiteValue(db, "ClusterName", "Meteor"); err != nil {
		t.Fatal(err)
	}
	if v, _ := SiteValue(db, "ClusterName"); v != "Meteor" {
		t.Errorf("update path failed: %q", v)
	}
	if err := SetSiteValue(db, "NewAttr", "x"); err != nil {
		t.Fatal(err)
	}
	if v, _ := SiteValue(db, "NewAttr"); v != "x" {
		t.Errorf("insert path failed: %q", v)
	}
}

func TestSQLInjectionSafeEscaping(t *testing.T) {
	db := initDB(t)
	evil := "x'; DELETE FROM nodes -- "
	if _, err := InsertNode(db, Node{MAC: evil, Name: "n", Membership: 2, IP: "10.0.0.9"}); err != nil {
		t.Fatalf("InsertNode with quote in MAC: %v", err)
	}
	n, ok, err := NodeByMAC(db, evil)
	if err != nil || !ok || n.MAC != evil {
		t.Errorf("quoted MAC round-trip failed: %+v %v %v", n, ok, err)
	}
}

func TestSortNodesByLocation(t *testing.T) {
	ns := []Node{{Rack: 1, Rank: 0}, {Rack: 0, Rank: 2}, {Rack: 0, Rank: 1}}
	SortNodesByLocation(ns)
	if ns[0].Rank != 1 || ns[1].Rank != 2 || ns[2].Rack != 1 {
		t.Errorf("sorted = %+v", ns)
	}
}

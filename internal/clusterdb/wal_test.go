package clusterdb

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"rocks/internal/faults"
)

// kill simulates a kill -9: the file handle closes and the database refuses
// further mutations, leaving the directory exactly as the last write left
// it — no Close, no final snapshot.
func kill(d *Database) {
	d.dur.crashed.Store(true)
	d.dur.f.Close()
}

func mustOpen(t *testing.T, dir string, opts Options) (*Database, RecoveryInfo) {
	t.Helper()
	d, info, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return d, info
}

func seedNodes(t *testing.T, d *Database, n int) {
	t.Helper()
	if err := InitSchema(d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := InsertNode(d, Node{
			MAC:  fmt.Sprintf("aa:bb:cc:00:%02x:%02x", i/256, i%256),
			Name: fmt.Sprintf("compute-0-%d", i), Membership: MembershipCompute,
			Rack: 0, Rank: i, IP: fmt.Sprintf("10.255.%d.%d", 255-i/256, 254-i%256),
		}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
}

func TestWALRecoveryAfterKill(t *testing.T) {
	dir := t.TempDir()
	d, info := mustOpen(t, dir, Options{})
	if !info.Fresh {
		t.Fatalf("expected a fresh directory, got %+v", info)
	}
	seedNodes(t, d, 20)
	want := d.Dump()
	seq := d.ChangeSeq()
	kill(d)

	d2, info2 := mustOpen(t, dir, Options{})
	defer d2.Close()
	if info2.Fresh {
		t.Fatal("recovery reported a fresh directory after a kill")
	}
	if info2.Replayed == 0 {
		t.Fatalf("expected replayed records, got %+v", info2)
	}
	if got := d2.Dump(); got != want {
		t.Errorf("recovered dump differs from pre-kill dump:\n--- want\n%s\n--- got\n%s", want, got)
	}
	if d2.ChangeSeq() != seq {
		t.Errorf("recovered ChangeSeq = %d, want %d", d2.ChangeSeq(), seq)
	}
	// Recovered databases keep working.
	if _, err := InsertNode(d2, Node{MAC: "aa:bb:cc:ff:ff:01", Name: "compute-0-99",
		Membership: MembershipCompute, Rank: 99, IP: "10.254.0.1"}); err != nil {
		t.Fatalf("insert after recovery: %v", err)
	}
}

func TestWALCloseSnapshotBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	d, _ := mustOpen(t, dir, Options{})
	seedNodes(t, d, 5)
	want := d.Dump()
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	d2, info := mustOpen(t, dir, Options{})
	defer d2.Close()
	if info.Replayed != 0 {
		t.Errorf("Close should snapshot: want 0 replayed, got %+v", info)
	}
	if info.SnapshotSeq == 0 {
		t.Errorf("expected a snapshot, got %+v", info)
	}
	if got := d2.Dump(); got != want {
		t.Error("snapshot recovery dump differs from pre-close dump")
	}
}

func TestWALRotation(t *testing.T) {
	dir := t.TempDir()
	d, _ := mustOpen(t, dir, Options{SnapshotEvery: 10})
	seedNodes(t, d, 30) // several rotations
	st := d.Stats().WAL
	if st.Snapshots == 0 {
		t.Fatalf("expected automatic snapshots, got %+v", st)
	}
	snaps, err := sortedSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Errorf("rotation should keep exactly one snapshot, found %v", snaps)
	}
	// The log only holds what postdates the snapshot.
	fi, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	want := d.Dump()
	kill(d)
	d2, info := mustOpen(t, dir, Options{})
	defer d2.Close()
	if info.SnapshotSeq == 0 || int64(info.Replayed) > d2.ChangeSeq()-info.SnapshotSeq {
		t.Errorf("recovery did not use the snapshot: %+v (wal was %d bytes)", info, fi.Size())
	}
	if got := d2.Dump(); got != want {
		t.Error("post-rotation recovery dump differs")
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	for _, cut := range []int64{1, 3, 9, 20} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			d, _ := mustOpen(t, dir, Options{})
			seedNodes(t, d, 3)
			d.MustExec("INSERT INTO site VALUES ('before', 'x')")
			wantBefore := d.Dump()
			d.MustExec("INSERT INTO site VALUES ('last', 'y')")
			kill(d)
			wal := filepath.Join(dir, walName)
			if err := faults.TruncateTail(wal, cut); err != nil {
				t.Fatal(err)
			}
			d2, info := mustOpen(t, dir, Options{})
			defer d2.Close()
			if info.TornDropped != 1 {
				t.Fatalf("want 1 torn record dropped, got %+v", info)
			}
			// Only the unacknowledged final record is lost.
			if got := d2.Dump(); got != wantBefore {
				t.Errorf("torn-tail recovery lost more than the final record:\n%s", got)
			}
			// The tail was truncated to a clean boundary: appending works and
			// a further recovery is whole.
			d2.MustExec("INSERT INTO site VALUES ('after', 'z')")
			want := d2.Dump()
			kill(d2)
			d3, info3 := mustOpen(t, dir, Options{})
			defer d3.Close()
			if info3.TornDropped != 0 {
				t.Errorf("second recovery saw a torn tail: %+v", info3)
			}
			if d3.Dump() != want {
				t.Error("second recovery dump differs")
			}
		})
	}
}

func TestWALTornTailBitFlip(t *testing.T) {
	dir := t.TempDir()
	d, _ := mustOpen(t, dir, Options{})
	seedNodes(t, d, 3)
	wantBefore := d.Dump()
	d.MustExec("INSERT INTO site VALUES ('last', 'y')")
	kill(d)
	if err := faults.FlipTailBit(filepath.Join(dir, walName), 4); err != nil {
		t.Fatal(err)
	}
	d2, info := mustOpen(t, dir, Options{})
	defer d2.Close()
	if info.TornDropped != 1 {
		t.Fatalf("want the corrupt final record dropped, got %+v", info)
	}
	if d2.Dump() != wantBefore {
		t.Error("bit-flip recovery lost more than the final record")
	}
}

func TestWALCorruptMiddleFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	d, _ := mustOpen(t, dir, Options{})
	seedNodes(t, d, 3)
	kill(d)
	wal := filepath.Join(dir, walName)
	fi, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit far from the tail: acknowledged history is corrupt.
	if err := faults.FlipTailBit(wal, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a log with corrupt acknowledged history")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("want a checksum error, got: %v", err)
	}
}

func TestSnapshotCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	d, _ := mustOpen(t, dir, Options{})
	seedNodes(t, d, 3)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, _ := sortedSnapshots(dir)
	if len(snaps) != 1 {
		t.Fatalf("want one snapshot, got %v", snaps)
	}
	path := filepath.Join(dir, snaps[0])
	raw, _ := os.ReadFile(path)
	raw[len(raw)/3] ^= 0x04
	os.WriteFile(path, raw, 0o600)
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a corrupt snapshot")
	}
}

// TestCrashSeams drives every durability seam the injector covers and
// asserts each leaves a directory that recovers to a consistent state.
func TestCrashSeams(t *testing.T) {
	seams := []faults.Op{faults.OpDBPreAppend, faults.OpDBPostAppend,
		faults.OpDBSnapshotMid, faults.OpDBRotateMid}
	for _, seam := range seams {
		t.Run(string(seam), func(t *testing.T) {
			dir := t.TempDir()
			inj := faults.NewInjector(7)
			d, _ := mustOpen(t, dir, Options{SnapshotEvery: 8, Faults: inj})
			seedNodes(t, d, 10)
			preCrash := d.Dump()
			inj.AddRule(faults.Rule{Op: seam, Count: 1})

			// Drive mutations until the seam fires.
			var crashErr error
			for i := 0; i < 20 && crashErr == nil; i++ {
				_, crashErr = d.Exec(fmt.Sprintf("INSERT INTO site VALUES ('k%d', 'v')", i))
			}
			if crashErr == nil {
				t.Fatal("seam never fired")
			}
			if !strings.Contains(crashErr.Error(), "simulated crash") {
				t.Fatalf("unexpected error: %v", crashErr)
			}
			// Crashed databases refuse further mutations...
			if _, err := d.Exec("INSERT INTO site VALUES ('post', 'crash')"); err == nil {
				t.Fatal("mutation accepted after a crash")
			}
			// ...and Close must not snapshot the frozen state.
			d.Close()

			d2, info := mustOpen(t, dir, Options{})
			defer d2.Close()
			if info.Fresh {
				t.Fatalf("recovery found nothing: %+v", info)
			}
			// Recovery holds at least everything acknowledged before the
			// crash loop, and nothing impossible: every recovered site key
			// is one the test wrote.
			if !strings.Contains(d2.Dump(), preCrash[strings.Index(preCrash, "CREATE"):][:20]) {
				t.Error("recovered dump lost pre-crash content")
			}
			res, err := d2.Query("SELECT count(*) FROM nodes")
			if err != nil {
				t.Fatal(err)
			}
			if n, _ := res.Rows[0][0].AsInt(); n != 10 {
				t.Errorf("recovered %d nodes, want 10 (info %+v)", n, info)
			}
		})
	}
}

// TestRecoveredIndexesServeLookups pins the snapshot-restore index rebuild:
// a recovered database must answer point lookups through its indexes, not
// by scanning (DBStats.IndexSelects advances).
func TestRecoveredIndexesServeLookups(t *testing.T) {
	dir := t.TempDir()
	d, _ := mustOpen(t, dir, Options{})
	seedNodes(t, d, 50)
	if err := d.Close(); err != nil { // snapshot on close → recovery is a pure bulk load
		t.Fatal(err)
	}
	d2, info := mustOpen(t, dir, Options{})
	defer d2.Close()
	if info.SnapshotSeq == 0 || info.Replayed != 0 {
		t.Fatalf("want pure snapshot recovery, got %+v", info)
	}
	n, ok, err := NodeByMAC(d2, "aa:bb:cc:00:00:07")
	if err != nil || !ok {
		t.Fatalf("NodeByMAC after recovery: ok=%v err=%v", ok, err)
	}
	if n.Name != "compute-0-7" {
		t.Errorf("recovered lookup returned %q", n.Name)
	}
	if _, ok, _ := NodeByIP(d2, n.IP); !ok {
		t.Error("NodeByIP after recovery found nothing")
	}
	st := d2.Stats()
	if st.IndexSelects == 0 {
		t.Errorf("recovered lookups bypassed the indexes: %+v", st)
	}
	// And uniqueness is still enforced over the bulk-loaded rows.
	if _, err := InsertNode(d2, Node{MAC: "aa:bb:cc:00:00:07", Name: "dup",
		Membership: MembershipCompute, IP: "10.200.0.1"}); err == nil {
		t.Error("duplicate MAC accepted after snapshot recovery")
	}
}

// TestConcurrentQueryExecDuringOpen drives Query and Exec against a
// replay-in-progress Open, pinning the recovery/serving boundary: readers
// interleave safely under the read lock, and writers queue on writeMu until
// replay finishes. Run under -race this is the proof the lock split is
// sound.
func TestConcurrentQueryExecDuringOpen(t *testing.T) {
	dir := t.TempDir()
	d, _ := mustOpen(t, dir, Options{})
	seedNodes(t, d, 100)
	kill(d)

	var once sync.Once
	var wg sync.WaitGroup
	opts := Options{}
	opts.onReplay = func(rd *Database) {
		once.Do(func() {
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						rd.Query("SELECT count(*) FROM nodes")
						NodeByMAC(rd, "aa:bb:cc:00:00:01")
					}
				}(g)
			}
			// A writer racing the replay must serialize behind it.
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := rd.Exec("INSERT INTO site VALUES ('racer', '1')"); err != nil {
					t.Errorf("concurrent Exec during Open: %v", err)
				}
			}()
		})
	}
	d2, info, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	wg.Wait()
	if info.Replayed == 0 {
		t.Fatalf("expected replay, got %+v", info)
	}
	res, err := d2.Query("SELECT value FROM site WHERE name = 'racer'")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("racer write lost: %v rows=%d", err, len(res.Rows))
	}
	// The racer's record must itself be durable: recover again.
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	d3, _ := mustOpen(t, dir, Options{})
	defer d3.Close()
	if res, _ := d3.Query("SELECT value FROM site WHERE name = 'racer'"); len(res.Rows) != 1 {
		t.Error("racer write did not survive a second recovery")
	}
}

// TestSnapshotHostileTextRoundTrip feeds the snapshot path values full of
// newlines, quotes, and comment-lookalikes and requires byte-identical
// recovery — the dump escaping regression at the recovery level.
func TestSnapshotHostileTextRoundTrip(t *testing.T) {
	hostiles := []string{
		"line one\nline two",
		"it's got 'quotes'\nand a newline",
		"-- looks like a comment\n-- twice",
		"semi;colon', 'and fake literal",
		"crlf\r\nend",
		"trailing newline\n",
		"\nleading newline",
		`back\slash and "double quotes"`,
	}
	dir := t.TempDir()
	d, _ := mustOpen(t, dir, Options{})
	if err := InitSchema(d); err != nil {
		t.Fatal(err)
	}
	for i, h := range hostiles {
		if err := SetSiteValue(d, fmt.Sprintf("hostile%d", i), h); err != nil {
			t.Fatalf("hostile %d: %v", i, err)
		}
	}
	want := d.Dump()
	if err := d.Close(); err != nil { // snapshot path
		t.Fatal(err)
	}
	d2, info := mustOpen(t, dir, Options{})
	defer d2.Close()
	if info.Replayed != 0 {
		t.Fatalf("want snapshot-only recovery, got %+v", info)
	}
	if got := d2.Dump(); got != want {
		t.Errorf("hostile snapshot did not round-trip byte-identically:\n--- want\n%q\n--- got\n%q", want, got)
	}
	for i, h := range hostiles {
		got, err := SiteValue(d2, fmt.Sprintf("hostile%d", i))
		if err != nil || got != h {
			t.Errorf("hostile %d: got %q err %v, want %q", i, got, err, h)
		}
	}
}

func TestWALStatsCounters(t *testing.T) {
	dir := t.TempDir()
	d, _ := mustOpen(t, dir, Options{Fsync: true})
	seedNodes(t, d, 5)
	st := d.Stats().WAL
	if st == nil {
		t.Fatal("durable database reported no WAL stats")
	}
	if st.RecordsAppended == 0 || st.BytesAppended == 0 || st.Fsyncs == 0 {
		t.Errorf("append counters flat: %+v", st)
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	st = d.Stats().WAL
	if st.Snapshots != 1 || st.LastSnapshotSeq != d.ChangeSeq() {
		t.Errorf("snapshot counters wrong: %+v (seq %d)", st, d.ChangeSeq())
	}
	kill(d)
	d2, _ := mustOpen(t, dir, Options{})
	defer d2.Close()
	st2 := d2.Stats().WAL
	if st2.Replays != 1 {
		t.Errorf("want 1 replay pass, got %+v", st2)
	}
	// In-memory databases have no WAL stats.
	if New().Stats().WAL != nil {
		t.Error("in-memory database reported WAL stats")
	}
}

func TestInMemoryCloseNoop(t *testing.T) {
	if err := New().Close(); err != nil {
		t.Fatalf("Close on in-memory database: %v", err)
	}
}

func TestInitSchemaIdempotentAfterPartialBootstrap(t *testing.T) {
	dir := t.TempDir()
	d, _ := mustOpen(t, dir, Options{})
	// Bootstrap crashes after two tables exist and one seed landed.
	d.MustExec("CREATE TABLE nodes (id INT, mac TEXT, name TEXT, membership INT, rack INT, rank INT, ip TEXT, comment TEXT, arch TEXT, cpus INT)")
	d.MustExec("CREATE TABLE site (name TEXT, value TEXT)")
	d.MustExec("INSERT INTO site VALUES ('ClusterName', 'Half')")
	kill(d)
	d2, info := mustOpen(t, dir, Options{})
	defer d2.Close()
	if info.Fresh {
		t.Fatalf("partial bootstrap should not look fresh: %+v", info)
	}
	if err := InitSchema(d2); err != nil {
		t.Fatalf("InitSchema on a partially bootstrapped database: %v", err)
	}
	if got := d2.TableNames(); len(got) != 5 {
		t.Errorf("tables after re-init: %v", got)
	}
	// The existing seed row survived (not duplicated, not clobbered).
	v, err := SiteValue(d2, "ClusterName")
	if err != nil || v != "Half" {
		t.Errorf("ClusterName = %q, %v", v, err)
	}
	if res, _ := d2.Query("SELECT count(*) FROM memberships"); len(res.Rows) == 1 {
		if n, _ := res.Rows[0][0].AsInt(); n != 6 {
			t.Errorf("memberships seeded %d rows, want 6", n)
		}
	}
}

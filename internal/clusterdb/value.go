// Package clusterdb implements the cluster-wide configuration database that
// Rocks keeps in MySQL (§6.4): a small relational engine with an SQL subset
// rich enough to run the paper's own queries — including the multi-table
// join that drives cluster-kill — plus the report generators that turn
// database state into /etc/hosts, dhcpd.conf, and PBS configuration files.
//
// The engine supports CREATE TABLE, DROP TABLE, INSERT, UPDATE, DELETE, and
// SELECT with multi-table joins, WHERE expressions (AND/OR/NOT, comparisons,
// LIKE, IN), ORDER BY, and LIMIT. Two column types exist, INT and TEXT,
// which is all the Rocks schema uses.
package clusterdb

import (
	"fmt"
	"strconv"
	"strings"
)

// Type is a column type.
type Type int

// The supported column types.
const (
	TypeInt Type = iota
	TypeText
)

// String returns the SQL name of the type.
func (t Type) String() string {
	if t == TypeInt {
		return "INT"
	}
	return "TEXT"
}

// Value is one cell: an integer, a string, or NULL.
type Value struct {
	Null  bool
	IsInt bool
	Int   int64
	Str   string
}

// IntValue builds an integer Value.
func IntValue(v int64) Value { return Value{IsInt: true, Int: v} }

// TextValue builds a string Value.
func TextValue(s string) Value { return Value{Str: s} }

// NullValue is the SQL NULL.
func NullValue() Value { return Value{Null: true} }

// String renders the value the way the CLI and reports print it.
func (v Value) String() string {
	switch {
	case v.Null:
		return "NULL"
	case v.IsInt:
		return strconv.FormatInt(v.Int, 10)
	default:
		return v.Str
	}
}

// AsInt coerces the value to an integer; strings parse if numeric.
func (v Value) AsInt() (int64, bool) {
	if v.Null {
		return 0, false
	}
	if v.IsInt {
		return v.Int, true
	}
	n, err := strconv.ParseInt(strings.TrimSpace(v.Str), 10, 64)
	return n, err == nil
}

// Truthy reports whether the value counts as true in a WHERE clause.
func (v Value) Truthy() bool {
	if v.Null {
		return false
	}
	if v.IsInt {
		return v.Int != 0
	}
	return v.Str != ""
}

// Compare orders two values: NULLs sort first and equal to each other; two
// ints compare numerically; otherwise both sides compare as strings (an int
// against a numeric string compares numerically).
func Compare(a, b Value) int {
	switch {
	case a.Null && b.Null:
		return 0
	case a.Null:
		return -1
	case b.Null:
		return 1
	}
	if a.IsInt && b.IsInt {
		switch {
		case a.Int < b.Int:
			return -1
		case a.Int > b.Int:
			return 1
		}
		return 0
	}
	if a.IsInt || b.IsInt {
		// Mixed: compare numerically if the string side parses.
		ai, aok := a.AsInt()
		bi, bok := b.AsInt()
		if aok && bok {
			switch {
			case ai < bi:
				return -1
			case ai > bi:
				return 1
			}
			return 0
		}
	}
	return strings.Compare(a.String(), b.String())
}

// Equal reports SQL equality (NULL equals nothing, not even NULL; callers
// that need NULL-safe equality use Compare).
func Equal(a, b Value) bool {
	if a.Null || b.Null {
		return false
	}
	return Compare(a, b) == 0
}

// coerce converts a value to the column type on INSERT/UPDATE.
func coerce(v Value, t Type) (Value, error) {
	if v.Null {
		return v, nil
	}
	switch t {
	case TypeInt:
		n, ok := v.AsInt()
		if !ok {
			return v, fmt.Errorf("clusterdb: cannot store %q in an INT column", v.String())
		}
		return IntValue(n), nil
	default:
		return TextValue(v.String()), nil
	}
}

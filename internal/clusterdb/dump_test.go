package clusterdb

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestDumpRestoreRoundTrip(t *testing.T) {
	db := newTestDB(t)
	dump := db.Dump()
	for _, want := range []string{
		"CREATE TABLE memberships",
		"CREATE TABLE nodes",
		"INSERT INTO nodes VALUES (1, '00:30:c1:d8:ac:80', 'frontend-0'",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
	restored := New()
	if err := Restore(restored, dump); err != nil {
		t.Fatal(err)
	}
	a, _ := db.Query(`SELECT * FROM nodes ORDER BY id`)
	b, _ := restored.Query(`SELECT * FROM nodes ORDER BY id`)
	if a.Format() != b.Format() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", a.Format(), b.Format())
	}
}

func TestDumpRestoreEscaping(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (s TEXT, n INT)`)
	db.MustExec(`INSERT INTO t VALUES ('it''s; tricky -- not a comment', NULL)`)
	restored := New()
	if err := Restore(restored, db.Dump()); err != nil {
		t.Fatal(err)
	}
	res, _ := restored.Query(`SELECT s, n FROM t`)
	if res.Rows[0][0].String() != "it's; tricky -- not a comment" || !res.Rows[0][1].Null {
		t.Errorf("restored = %v", res.Rows[0])
	}
}

func TestRestoreBadDump(t *testing.T) {
	if err := Restore(New(), "CREATE GARBAGE;"); err == nil {
		t.Error("bad dump accepted")
	}
}

func TestSplitStatements(t *testing.T) {
	got := SplitStatements("-- comment\nCREATE TABLE a (x INT);\nINSERT INTO a VALUES ('semi;colon');")
	if len(got) != 2 || !strings.Contains(got[1], "semi;colon") {
		t.Errorf("split = %#v", got)
	}
}

// Property: dump/restore preserves arbitrary generated databases.
func TestPropertyDumpRestore(t *testing.T) {
	f := func(rows uint8, withNull bool) bool {
		db := New()
		db.MustExec(`CREATE TABLE t (k INT, s TEXT)`)
		n := int(rows)%20 + 1
		for i := 0; i < n; i++ {
			if withNull && i%3 == 0 {
				db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, NULL)`, i))
			} else {
				db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, 'v''%d')`, i, i))
			}
		}
		restored := New()
		if err := Restore(restored, db.Dump()); err != nil {
			return false
		}
		a, _ := db.Query(`SELECT * FROM t ORDER BY k`)
		b, _ := restored.Query(`SELECT * FROM t ORDER BY k`)
		return a.Format() == b.Format()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestDumpHostileTextRoundTrip is the escaping regression for snapshots:
// values holding embedded newlines and single quotes (and every other shape
// that has bitten line-based SQL splitters) must survive Dump → Restore →
// Dump byte-identically, because snapshot recovery IS this round trip.
func TestDumpHostileTextRoundTrip(t *testing.T) {
	hostiles := []string{
		"plain",
		"embedded\nnewline",
		"it's quoted",
		"both: it's\nsplit across 'lines'",
		"ends with newline\n",
		"\nstarts with newline",
		"\n",
		"''", // doubled quotes as data
		"'",
		"-- a comment lookalike\nINSERT INTO fake VALUES (1);",
		"a;b;c",
		"crlf\r\nline",
		"lone cr\rhere",
		"tab\tand spaces  ",
		`backslash \n is two chars`,
		`double "quotes" inside`,
	}
	db := New()
	db.MustExec(`CREATE TABLE t (k INT, s TEXT)`)
	for i, h := range hostiles {
		db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, '%s')`, i, sqlEscape(h)))
	}
	first := db.Dump()
	restored := New()
	if err := Restore(restored, first); err != nil {
		t.Fatalf("restore of hostile dump: %v", err)
	}
	second := restored.Dump()
	if first != second {
		t.Fatalf("hostile dump did not round-trip byte-identically:\n--- first\n%q\n--- second\n%q", first, second)
	}
	res, err := restored.Query(`SELECT s FROM t ORDER BY k`)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hostiles {
		if got := res.Rows[i][0].Str; got != h {
			t.Errorf("row %d: got %q, want %q", i, got, h)
		}
	}
}

// TestRestoreErrorNamesStatement pins the restore diagnostics: an
// administrator replaying a damaged backup learns which statement died.
func TestRestoreErrorNamesStatement(t *testing.T) {
	db := New()
	err := Restore(db, "CREATE TABLE t (k INT);\nINSERT INTO missing VALUES (1);\n")
	if err == nil {
		t.Fatal("restore accepted an INSERT into a missing table")
	}
	if !strings.Contains(err.Error(), "statement 2") || !strings.Contains(err.Error(), "missing") {
		t.Errorf("restore error lacks statement context: %v", err)
	}
}

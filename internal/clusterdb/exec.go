package clusterdb

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// outCol is one projected column of a SELECT.
type outCol struct {
	name string
	ex   expr
}

// boundTable pairs a table with the alias it is visible under in a query.
type boundTable struct {
	alias string
	t     *table
}

// rowEnv is the name-resolution environment for one candidate joined row:
// rows[i] is the current row of tables[i].
type rowEnv struct {
	tables []*boundTable
	rows   [][]Value
}

// lookup resolves a column reference against the environment. Unqualified
// names must be unambiguous across the joined tables, mirroring MySQL.
func (e *rowEnv) lookup(ref columnRef) (Value, error) {
	found := -1
	foundCol := -1
	for ti, bt := range e.tables {
		if ref.table != "" && bt.alias != ref.table {
			continue
		}
		if ci := bt.t.colIndex(ref.name); ci >= 0 {
			if found >= 0 {
				return Value{}, fmt.Errorf("clusterdb: column %q is ambiguous", ref.name)
			}
			found, foundCol = ti, ci
		}
	}
	if found < 0 {
		if ref.table != "" {
			return Value{}, fmt.Errorf("clusterdb: unknown column %s.%s", ref.table, ref.name)
		}
		return Value{}, fmt.Errorf("clusterdb: unknown column %q", ref.name)
	}
	return e.rows[found][foundCol], nil
}

// evalConst evaluates an expression with no column references (INSERT
// values).
func evalConst(ex expr) (Value, error) {
	return eval(ex, &rowEnv{})
}

func eval(ex expr, env *rowEnv) (Value, error) {
	switch e := ex.(type) {
	case literal:
		return e.v, nil
	case columnRef:
		return env.lookup(e)
	case notExpr:
		v, err := eval(e.x, env)
		if err != nil {
			return Value{}, err
		}
		if v.Truthy() {
			return IntValue(0), nil
		}
		return IntValue(1), nil
	case isNullExpr:
		v, err := eval(e.x, env)
		if err != nil {
			return Value{}, err
		}
		res := v.Null
		if e.neg {
			res = !res
		}
		return boolValue(res), nil
	case inExpr:
		v, err := eval(e.x, env)
		if err != nil {
			return Value{}, err
		}
		match := false
		for _, item := range e.list {
			iv, err := eval(item, env)
			if err != nil {
				return Value{}, err
			}
			if Equal(v, iv) {
				match = true
				break
			}
		}
		if e.neg {
			match = !match
		}
		return boolValue(match), nil
	case binaryExpr:
		return evalBinary(e, env)
	case aggExpr:
		return Value{}, fmt.Errorf("clusterdb: aggregate %s() is only allowed in a select list", e.fn)
	}
	return Value{}, fmt.Errorf("clusterdb: cannot evaluate %T", ex)
}

func boolValue(b bool) Value {
	if b {
		return IntValue(1)
	}
	return IntValue(0)
}

func evalBinary(e binaryExpr, env *rowEnv) (Value, error) {
	// AND short-circuits so `WHERE x AND y` doesn't evaluate y on rows x
	// already rejected.
	if e.op == "and" || e.op == "or" {
		l, err := eval(e.l, env)
		if err != nil {
			return Value{}, err
		}
		if e.op == "and" && !l.Truthy() {
			return boolValue(false), nil
		}
		if e.op == "or" && l.Truthy() {
			return boolValue(true), nil
		}
		r, err := eval(e.r, env)
		if err != nil {
			return Value{}, err
		}
		return boolValue(r.Truthy()), nil
	}
	l, err := eval(e.l, env)
	if err != nil {
		return Value{}, err
	}
	r, err := eval(e.r, env)
	if err != nil {
		return Value{}, err
	}
	switch e.op {
	case "=":
		return boolValue(Equal(l, r)), nil
	case "!=":
		if l.Null || r.Null {
			return boolValue(false), nil
		}
		return boolValue(Compare(l, r) != 0), nil
	case "<", ">", "<=", ">=":
		if l.Null || r.Null {
			return boolValue(false), nil
		}
		c := Compare(l, r)
		switch e.op {
		case "<":
			return boolValue(c < 0), nil
		case ">":
			return boolValue(c > 0), nil
		case "<=":
			return boolValue(c <= 0), nil
		default:
			return boolValue(c >= 0), nil
		}
	case "like":
		if l.Null || r.Null {
			return boolValue(false), nil
		}
		ok, err := likeMatch(l.String(), r.String())
		if err != nil {
			return Value{}, err
		}
		return boolValue(ok), nil
	case "+", "-":
		li, lok := l.AsInt()
		ri, rok := r.AsInt()
		if !lok || !rok {
			return Value{}, fmt.Errorf("clusterdb: %s requires integer operands", e.op)
		}
		if e.op == "+" {
			return IntValue(li + ri), nil
		}
		return IntValue(li - ri), nil
	}
	return Value{}, fmt.Errorf("clusterdb: unknown operator %q", e.op)
}

// likeMatch implements SQL LIKE: % matches any run, _ matches one character;
// matching is case-insensitive like MySQL's default collation.
func likeMatch(s, pattern string) (bool, error) {
	var re strings.Builder
	re.WriteString("(?is)^")
	for _, c := range pattern {
		switch c {
		case '%':
			re.WriteString(".*")
		case '_':
			re.WriteString(".")
		default:
			re.WriteString(regexp.QuoteMeta(string(c)))
		}
	}
	re.WriteString("$")
	rx, err := regexp.Compile(re.String())
	if err != nil {
		return false, fmt.Errorf("clusterdb: bad LIKE pattern %q: %v", pattern, err)
	}
	return rx.MatchString(s), nil
}

// execSelect runs a SELECT: a nested-loop join over the FROM tables,
// filtered by WHERE, projected, ordered, and limited. Callers hold the read
// lock.
func (d *Database) execSelect(s selectStmt) (*Result, error) {
	// Bind tables.
	bound := make([]*boundTable, 0, len(s.tables))
	seen := map[string]bool{}
	for _, ref := range s.tables {
		t, ok := d.tables[ref.name]
		if !ok {
			return nil, fmt.Errorf("clusterdb: no such table %q", ref.name)
		}
		if seen[ref.alias] {
			return nil, fmt.Errorf("clusterdb: duplicate table alias %q", ref.alias)
		}
		seen[ref.alias] = true
		bound = append(bound, &boundTable{alias: ref.alias, t: t})
	}

	// Expand the projection list.
	var out []outCol
	for _, item := range s.items {
		if item.star {
			for _, bt := range bound {
				if item.table != "" && bt.alias != item.table {
					continue
				}
				for _, c := range bt.t.cols {
					out = append(out, outCol{name: c.Name, ex: columnRef{table: bt.alias, name: c.Name}})
				}
			}
			if item.table != "" && !seen[item.table] {
				return nil, fmt.Errorf("clusterdb: unknown table %q in select list", item.table)
			}
			continue
		}
		name := item.alias
		if name == "" {
			switch e := item.ex.(type) {
			case columnRef:
				name = e.name
			case aggExpr:
				name = e.fn
			default:
				name = "expr"
			}
		}
		out = append(out, outCol{name: name, ex: item.ex})
	}

	env := &rowEnv{tables: bound, rows: make([][]Value, len(bound))}

	// The minimal planner: route a single-table equality predicate through
	// a hash index when one covers it. cand holds the matching row
	// positions in scan order; the full WHERE is still evaluated on each,
	// so results are byte-identical to the scan path by construction.
	var cand []int
	useIndex := false
	if d.indexRouting.Load() && len(bound) == 1 {
		cand, useIndex = indexCandidates(bound[0], s.where)
	}
	if useIndex {
		d.indexSelects.Add(1)
	} else {
		d.scanSelects.Add(1)
	}

	// Aggregate mode: if any select item is an aggregate, all must be, and
	// the query yields exactly one row computed over the matching rows.
	aggMode := false
	for _, oc := range out {
		if _, ok := oc.ex.(aggExpr); ok {
			aggMode = true
			break
		}
	}
	if len(s.groupBy) > 0 {
		return d.execGroupBy(s, bound, out, env, cand, useIndex)
	}
	if aggMode {
		return d.execAggregate(s, bound, out, env, cand, useIndex)
	}

	type sortedRow struct {
		cells []Value
		keys  []Value
	}
	var results []sortedRow

	// Nested-loop join over the cartesian product.
	var loop func(depth int) error
	loop = func(depth int) error {
		if depth == len(bound) {
			if s.where != nil {
				v, err := eval(s.where, env)
				if err != nil {
					return err
				}
				if !v.Truthy() {
					return nil
				}
			}
			row := sortedRow{cells: make([]Value, len(out))}
			for i, oc := range out {
				v, err := eval(oc.ex, env)
				if err != nil {
					return err
				}
				row.cells[i] = v
			}
			for _, k := range s.orderBy {
				v, err := eval(k.ex, env)
				if err != nil {
					return err
				}
				row.keys = append(row.keys, v)
			}
			results = append(results, row)
			return nil
		}
		for _, r := range planRows(bound[depth].t, depth, cand, useIndex) {
			env.rows[depth] = r
			if err := loop(depth + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := loop(0); err != nil {
		return nil, err
	}

	if s.distinct {
		seenRows := map[string]bool{}
		dedup := results[:0]
		for _, r := range results {
			key := rowKey(r.cells)
			if !seenRows[key] {
				seenRows[key] = true
				dedup = append(dedup, r)
			}
		}
		results = dedup
	}
	if len(s.orderBy) > 0 {
		sort.SliceStable(results, func(i, j int) bool {
			for k, key := range s.orderBy {
				c := Compare(results[i].keys[k], results[j].keys[k])
				if c == 0 {
					continue
				}
				if key.desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if s.limit >= 0 && len(results) > s.limit {
		results = results[:s.limit]
	}

	res := &Result{Columns: make([]string, len(out))}
	for i, oc := range out {
		res.Columns[i] = oc.name
	}
	for _, r := range results {
		res.Rows = append(res.Rows, r.cells)
	}
	res.Affected = len(res.Rows)
	return res, nil
}

// planRows yields the rows the planner chose for one FROM table: the index
// candidates at depth 0 when a plan exists, every row otherwise. Candidate
// positions are ascending, so the visit order matches a scan exactly.
func planRows(t *table, depth int, cand []int, useIndex bool) [][]Value {
	if !useIndex || depth != 0 {
		return t.rows
	}
	rows := make([][]Value, len(cand))
	for i, pos := range cand {
		rows[i] = t.rows[pos]
	}
	return rows
}

// aggState accumulates one aggregate column.
type aggState struct {
	count    int64
	sum      int64
	min, max Value
	seen     bool
}

// execAggregate evaluates a select list made entirely of aggregates.
func (d *Database) execAggregate(s selectStmt, bound []*boundTable, out []outCol, env *rowEnv, cand []int, useIndex bool) (*Result, error) {
	aggs := make([]aggExpr, len(out))
	for i, oc := range out {
		a, ok := oc.ex.(aggExpr)
		if !ok {
			return nil, fmt.Errorf("clusterdb: column %q must be an aggregate when aggregates are selected (GROUP BY is not supported)", oc.name)
		}
		aggs[i] = a
	}
	states := make([]aggState, len(aggs))
	var loop func(depth int) error
	loop = func(depth int) error {
		if depth == len(bound) {
			if s.where != nil {
				v, err := eval(s.where, env)
				if err != nil {
					return err
				}
				if !v.Truthy() {
					return nil
				}
			}
			for i, a := range aggs {
				st := &states[i]
				if a.star {
					st.count++
					continue
				}
				v, err := eval(a.x, env)
				if err != nil {
					return err
				}
				if v.Null {
					continue // SQL aggregates skip NULLs
				}
				st.count++
				if n, ok := v.AsInt(); ok {
					st.sum += n
				} else if a.fn == "sum" {
					return fmt.Errorf("clusterdb: SUM over non-numeric value %q", v.String())
				}
				if !st.seen || Compare(v, st.min) < 0 {
					st.min = v
				}
				if !st.seen || Compare(v, st.max) > 0 {
					st.max = v
				}
				st.seen = true
			}
			return nil
		}
		for _, r := range planRows(bound[depth].t, depth, cand, useIndex) {
			env.rows[depth] = r
			if err := loop(depth + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := loop(0); err != nil {
		return nil, err
	}
	res := &Result{Columns: make([]string, len(out))}
	row := make([]Value, len(out))
	for i, a := range aggs {
		res.Columns[i] = out[i].name
		st := states[i]
		switch a.fn {
		case "count":
			row[i] = IntValue(st.count)
		case "sum":
			row[i] = IntValue(st.sum)
		case "min":
			if st.seen {
				row[i] = st.min
			} else {
				row[i] = NullValue()
			}
		case "max":
			if st.seen {
				row[i] = st.max
			} else {
				row[i] = NullValue()
			}
		}
	}
	res.Rows = [][]Value{row}
	res.Affected = 1
	return res, nil
}

// rowKey builds a collision-safe identity for DISTINCT comparison.
func rowKey(cells []Value) string {
	var b strings.Builder
	for _, v := range cells {
		if v.Null {
			b.WriteString("\x00N")
		} else if v.IsInt {
			fmt.Fprintf(&b, "\x00I%d", v.Int)
		} else {
			fmt.Fprintf(&b, "\x00S%s", v.Str)
		}
	}
	return b.String()
}

// execGroupBy evaluates SELECT ... GROUP BY: rows partition by the group
// key; aggregate select items accumulate per group and non-aggregate items
// take the group's first row (classic MySQL 3.23 semantics, which the Rocks
// frontend ran). Groups come back sorted by key; ORDER BY is not supported
// together with GROUP BY.
func (d *Database) execGroupBy(s selectStmt, bound []*boundTable, out []outCol, env *rowEnv, cand []int, useIndex bool) (*Result, error) {
	if len(s.orderBy) > 0 {
		return nil, fmt.Errorf("clusterdb: ORDER BY with GROUP BY is not supported (groups are returned sorted by key)")
	}
	// HAVING may reference aggregates not in the select list; accumulate
	// them as hidden trailing columns, dropped before returning.
	visible := len(out)
	if s.having != nil {
		for _, a := range collectAggs(s.having) {
			out = append(out, outCol{name: "__having__", ex: a})
		}
	}
	type groupAcc struct {
		key    []Value
		states []aggState
		first  []Value // first-row values for non-aggregate items
	}
	groups := map[string]*groupAcc{}
	var order []string

	var loop func(depth int) error
	loop = func(depth int) error {
		if depth == len(bound) {
			if s.where != nil {
				v, err := eval(s.where, env)
				if err != nil {
					return err
				}
				if !v.Truthy() {
					return nil
				}
			}
			key := make([]Value, len(s.groupBy))
			for i, g := range s.groupBy {
				v, err := eval(g, env)
				if err != nil {
					return err
				}
				key[i] = v
			}
			k := rowKey(key)
			g, ok := groups[k]
			if !ok {
				g = &groupAcc{key: key, states: make([]aggState, len(out)), first: make([]Value, len(out))}
				for i, oc := range out {
					if _, isAgg := oc.ex.(aggExpr); !isAgg {
						v, err := eval(oc.ex, env)
						if err != nil {
							return err
						}
						g.first[i] = v
					}
				}
				groups[k] = g
				order = append(order, k)
			}
			for i, oc := range out {
				a, isAgg := oc.ex.(aggExpr)
				if !isAgg {
					continue
				}
				st := &g.states[i]
				if a.star {
					st.count++
					continue
				}
				v, err := eval(a.x, env)
				if err != nil {
					return err
				}
				if v.Null {
					continue
				}
				st.count++
				if n, ok := v.AsInt(); ok {
					st.sum += n
				} else if a.fn == "sum" {
					return fmt.Errorf("clusterdb: SUM over non-numeric value %q", v.String())
				}
				if !st.seen || Compare(v, st.min) < 0 {
					st.min = v
				}
				if !st.seen || Compare(v, st.max) > 0 {
					st.max = v
				}
				st.seen = true
			}
			return nil
		}
		for _, r := range planRows(bound[depth].t, depth, cand, useIndex) {
			env.rows[depth] = r
			if err := loop(depth + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := loop(0); err != nil {
		return nil, err
	}

	// Sorted group keys give deterministic output.
	sort.Slice(order, func(i, j int) bool {
		a, b := groups[order[i]].key, groups[order[j]].key
		for k := range a {
			if c := Compare(a[k], b[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})

	res := &Result{Columns: make([]string, visible)}
	for i := 0; i < visible; i++ {
		res.Columns[i] = out[i].name
	}
	for _, k := range order {
		g := groups[k]
		row := make([]Value, len(out))
		for i, oc := range out {
			if a, isAgg := oc.ex.(aggExpr); isAgg {
				st := g.states[i]
				switch a.fn {
				case "count":
					row[i] = IntValue(st.count)
				case "sum":
					row[i] = IntValue(st.sum)
				case "min":
					if st.seen {
						row[i] = st.min
					} else {
						row[i] = NullValue()
					}
				case "max":
					if st.seen {
						row[i] = st.max
					} else {
						row[i] = NullValue()
					}
				}
			} else {
				row[i] = g.first[i]
			}
		}
		if s.having != nil {
			// Evaluate HAVING with aggregate sub-expressions replaced by
			// this group's computed values.
			aggVals := map[int]Value{}
			for i := range out {
				if _, isAgg := out[i].ex.(aggExpr); isAgg {
					aggVals[i] = row[i]
				}
			}
			rewritten := substituteAggs(s.having, out, aggVals)
			// Non-aggregate references in HAVING resolve against... nothing
			// row-wise; restrict HAVING to aggregate terms and literals.
			v, err := eval(rewritten, &rowEnv{})
			if err != nil {
				return nil, fmt.Errorf("clusterdb: HAVING: %w (only aggregates and literals are allowed)", err)
			}
			if !v.Truthy() {
				continue
			}
		}
		res.Rows = append(res.Rows, row[:visible])
	}
	if s.limit >= 0 && len(res.Rows) > s.limit {
		res.Rows = res.Rows[:s.limit]
	}
	res.Affected = len(res.Rows)
	return res, nil
}

// collectAggs gathers every aggregate sub-expression in an expr tree.
func collectAggs(ex expr) []aggExpr {
	var out []aggExpr
	var walk func(e expr)
	walk = func(e expr) {
		switch t := e.(type) {
		case aggExpr:
			out = append(out, t)
		case binaryExpr:
			walk(t.l)
			walk(t.r)
		case notExpr:
			walk(t.x)
		case isNullExpr:
			walk(t.x)
		case inExpr:
			walk(t.x)
			for _, i := range t.list {
				walk(i)
			}
		}
	}
	walk(ex)
	return out
}

// substituteAggs replaces aggregate sub-expressions with literals holding
// the group's computed values (matched structurally against the out list).
func substituteAggs(ex expr, out []outCol, vals map[int]Value) expr {
	var rewrite func(e expr) expr
	rewrite = func(e expr) expr {
		switch t := e.(type) {
		case aggExpr:
			for i := range out {
				if a, ok := out[i].ex.(aggExpr); ok && sameAgg(a, t) {
					if v, have := vals[i]; have {
						return literal{v: v}
					}
				}
			}
			return e
		case binaryExpr:
			return binaryExpr{op: t.op, l: rewrite(t.l), r: rewrite(t.r)}
		case notExpr:
			return notExpr{x: rewrite(t.x)}
		case isNullExpr:
			return isNullExpr{x: rewrite(t.x), neg: t.neg}
		case inExpr:
			list := make([]expr, len(t.list))
			for i, it := range t.list {
				list[i] = rewrite(it)
			}
			return inExpr{x: rewrite(t.x), list: list, neg: t.neg}
		default:
			return e
		}
	}
	return rewrite(ex)
}

// sameAgg compares aggregate expressions structurally (function, star, and
// a column-reference argument).
func sameAgg(a, b aggExpr) bool {
	if a.fn != b.fn || a.star != b.star {
		return false
	}
	if a.x == nil && b.x == nil {
		return true
	}
	ar, aok := a.x.(columnRef)
	br, bok := b.x.(columnRef)
	return aok && bok && ar == br
}

package installer

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"rocks/internal/lifecycle"
	"rocks/internal/node"
	"rocks/internal/rpm"
)

// Source kinds: a peer relay (a completed node re-serving its verified
// tree) or the frontend itself (always the fallback of last resort).
const (
	SourcePeer     = "peer"
	SourceFrontend = "frontend"
)

// Source is one place an installer can fetch package bodies from. The
// frontend's /v1/relays registry hands out prioritized peer sources; the
// frontend's own distribution URL is appended as the final fallback.
type Source struct {
	URL  string `json:"url"`            // distribution root, no trailing slash
	Kind string `json:"kind"`           // SourcePeer or SourceFrontend
	Node string `json:"node,omitempty"` // serving node, for peers
}

// String renders the source for error messages and lifecycle events — the
// attribution that makes a demotion auditable in /admin/events.
func (s Source) String() string { return s.Kind + " " + s.URL }

// sourceSet is the installer's working view of its sources: peers in
// registry priority order, frontend last. A peer that serves a corrupt or
// failing response is demoted (dropped for the rest of the install); the
// frontend is never demoted.
type sourceSet struct {
	peers    []Source
	frontend Source
}

func newSourceSet(peers []Source, frontendURL string) *sourceSet {
	return &sourceSet{peers: peers, frontend: Source{URL: frontendURL, Kind: SourceFrontend}}
}

// pick returns the best available source: the first surviving peer, else
// the frontend.
func (ss *sourceSet) pick() Source {
	if len(ss.peers) > 0 {
		return ss.peers[0]
	}
	return ss.frontend
}

// demote drops a peer from the set. Demoting the frontend is a no-op.
func (ss *sourceSet) demote(src Source) {
	for i, p := range ss.peers {
		if p.URL == src.URL {
			ss.peers = append(ss.peers[:i:i], ss.peers[i+1:]...)
			return
		}
	}
}

// relayEnvelope is the /v1/relays response shape (the standard v1
// {"data": ...} envelope around the registry's source list).
type relayEnvelope struct {
	Data struct {
		Sources []Source `json:"sources"`
	} `json:"data"`
}

// fetchRelaySources asks the frontend's relay registry for prioritized peer
// sources. It is strictly best-effort: any error (registry absent, old
// frontend, torn response) means frontend-only distribution, never a failed
// install.
func fetchRelaySources(ctx context.Context, cfg Config) []Source {
	if cfg.RelayURL == "" {
		return nil
	}
	u := cfg.RelayURL
	if cfg.RelayMAC != "" {
		sep := "?"
		if strings.Contains(u, "?") {
			sep = "&"
		}
		u += sep + "mac=" + url.QueryEscape(cfg.RelayMAC)
	}
	req, err := http.NewRequestWithContext(ctx, "GET", u, nil)
	if err != nil {
		return nil
	}
	resp, err := cfg.HTTP.Do(req)
	if err != nil {
		return nil
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil
	}
	var env relayEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		return nil
	}
	var peers []Source
	for _, s := range env.Data.Sources {
		if s.Kind == SourcePeer && s.URL != "" {
			peers = append(peers, s)
		}
	}
	return peers
}

// fetchPackageFrom downloads and decodes one package body from a specific
// source. Errors name the full package URL, so a failure is attributable to
// the peer or frontend that served it.
func fetchPackageFrom(ctx context.Context, cfg Config, src Source, m rpm.Metadata) (*rpm.Package, int64, error) {
	pkgURL := src.URL + "/RedHat/RPMS/" + url.PathEscape(m.Filename())
	req, err := http.NewRequestWithContext(ctx, "GET", pkgURL, nil)
	if err != nil {
		return nil, 0, fmt.Errorf("installer: %w", err)
	}
	resp, err := cfg.HTTP.Do(req)
	if err != nil {
		return nil, 0, transient(fmt.Errorf("installer: fetching %s: %w", pkgURL, err))
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, 0, transient(fmt.Errorf("installer: fetching %s: %w", pkgURL, err))
	}
	if resp.StatusCode != http.StatusOK {
		err = fmt.Errorf("installer: fetching %s: HTTP %s", pkgURL, resp.Status)
		if resp.StatusCode >= 500 {
			err = transient(err)
		}
		return nil, 0, err
	}
	pkg, err := rpm.Read(bytes.NewReader(body))
	if err != nil {
		// A decode failure on a served package is a torn or corrupted
		// transfer: the embedded digest caught it. The caller records the
		// corruption against this source and tries elsewhere.
		return nil, 0, transient(fmt.Errorf("installer: decoding %s: %w (%v)", pkgURL, errCorruptBody, err))
	}
	return pkg, int64(len(body)), nil
}

// verifyPackage checks a fetched body against the listing identity and the
// distribution manifest's digest. The manifest always comes from the
// frontend, so this is what makes peers trustless: a lying relay cannot
// forge a body that passes.
func verifyPackage(pkg *rpm.Package, m rpm.Metadata) error {
	if want := m.NVRA(); pkg.NVRA() != want {
		return transient(fmt.Errorf("installer: verifying %s: %w (body identifies as %s)", m.Filename(), errCorruptBody, pkg.NVRA()))
	}
	if m.Digest != "" && pkg.EnsureDigest() != m.Digest {
		return transient(fmt.Errorf("installer: verifying %s: %w (payload digest does not match the distribution manifest)", m.Filename(), errCorruptBody))
	}
	return nil
}

// fetchVerified fetches one package from the best available source,
// verifying the body end-to-end. A peer that errors or serves a corrupt
// body is demoted and the fetch moves to the next source immediately (no
// retry budget spent); only a frontend failure propagates to the caller's
// retry loop. Verified packages land in the node's relay store so this node
// can re-serve them after install-complete.
func fetchVerified(ctx context.Context, n *node.Node, cfg Config, screen io.Writer, srcs *sourceSet, best map[string]rpm.Metadata, name string) (*rpm.Package, error) {
	m, ok := best[name]
	if !ok {
		return nil, fmt.Errorf("installer: package %q not present in distribution", name)
	}
	for {
		src := srcs.pick()
		start := time.Now()
		pkg, nbytes, err := fetchPackageFrom(ctx, cfg, src, m)
		if err == nil {
			err = verifyPackage(pkg, m)
		}
		if err != nil {
			if errors.Is(err, errCorruptBody) {
				markCorrupt(cfg, n, screen, m.Filename(), src)
			}
			if src.Kind == SourcePeer && ctx.Err() == nil {
				cfg.Stats.demotePeer()
				srcs.demote(src)
				fmt.Fprintf(screen, "demoting relay %s: %v\n", src.URL, err)
				emit(cfg, n, lifecycle.EventRelayDemoted, fmt.Sprintf("%s demoted: %v", src, err))
				continue
			}
			return nil, err
		}
		cfg.Stats.fetched(src.Kind, nbytes, time.Since(start))
		if cfg.RelayStore != nil {
			cfg.RelayStore.Add(pkg)
		}
		return pkg, nil
	}
}

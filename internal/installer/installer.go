// Package installer simulates Red Hat's Kickstart installer (anaconda) with
// the Rocks eKV modification (§6.3). A run performs the full §5/§6.1 node
// flow against live services: acquire an address over DHCP, fetch the
// dynamically generated kickstart file over HTTP, partition the disk
// (reformatting root, preserving non-root partitions), pull every RPM over
// HTTP, execute %post scripts, rebuild the Myrinet driver from source when
// the hardware probe demands it, and reboot. Progress is written to the
// node's eKV port so shoot-node can watch remotely.
package installer

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"rocks/internal/dhcp"
	"rocks/internal/dist"
	"rocks/internal/ekv"
	"rocks/internal/hardware"
	"rocks/internal/kickstart"
	"rocks/internal/lifecycle"
	"rocks/internal/node"
	"rocks/internal/rpm"
)

// ClientIPHeader carries the installing node's DHCP-assigned address to the
// kickstart CGI. The real CGI keys on the TCP source address (§6.1); every
// simulated node shares the loopback interface, so the address travels in a
// header instead. The CGI prefers it over RemoteAddr.
const ClientIPHeader = "X-Rocks-Client-IP"

// Config wires an installation run to the cluster's services.
type Config struct {
	// Bus is the private Ethernet broadcast segment for DHCP.
	Bus *dhcp.Bus
	// HTTP fetches the kickstart file and packages; nil means
	// http.DefaultClient.
	HTTP *http.Client
	// DHCPRetry is the wait between DISCOVER attempts while the node is
	// still unknown (insert-ethers may not have bound it yet).
	DHCPRetry time.Duration
	// DHCPTimeout bounds the whole discovery phase.
	DHCPTimeout time.Duration
	// DisableEKV skips starting the eKV listener (mass fan-out tests).
	DisableEKV bool
	// InteractiveRetryWait, when positive, keeps a failed package fetch
	// alive: the installer prompts on eKV and waits this long for a user
	// to type "retry" (try the package again) or "abort" (§6.3: "we've
	// also inserted code that allows users to interact with the
	// installation"). Zero disables interaction and fails immediately.
	InteractiveRetryWait time.Duration
	// FetchRetries grants every HTTP fetch (kickstart, listing, package)
	// that many automatic retries on transient failures — connection
	// errors, 5xx responses, truncated bodies — before the install fails.
	// The large-cluster experience reports (CERN, Brookhaven) are blunt
	// that at scale such failures are constant; a bounded non-interactive
	// retry keeps a single flake from costing a whole reinstall. Zero
	// disables automatic retries.
	FetchRetries int
	// FetchBackoff is the wait before the first automatic retry; it
	// doubles on each subsequent attempt. Zero means 25ms.
	FetchBackoff time.Duration
	// FaultHook, when set, is consulted at install stage boundaries
	// ("partition", "finalize"); a non-nil return aborts the install at
	// that point. The faults package uses it to wedge nodes mid-install.
	FaultHook func(stage string) error
	// Events, when set, receives a lifecycle event at every install phase
	// boundary (lease, kickstart, partition, packages, post) plus a
	// terminal install-complete / install-failed / install-aborted event.
	Events *lifecycle.Bus
	// Stats, when set, accumulates fetch retries, corrupt-package
	// discards, and terminal outcomes across every Run sharing it.
	Stats *Stats
	// RelayURL, when set, names the frontend's /v1/relays registry; the
	// installer asks it once per install for prioritized peer sources and
	// fetches each package peer-first with the frontend as fallback.
	// Empty disables the relay tier — no extra requests, frontend-only.
	RelayURL string
	// RelayStore, when set, accumulates every digest-verified package this
	// install fetches, so the node can re-serve its tree to peers once the
	// registry hears its install-complete event.
	RelayStore *rpm.Repository
	// RelayMAC identifies this installer to the relay registry (its
	// Ethernet MAC), letting the registry prefer same-rack peers. Empty
	// asks for a rack-blind list.
	RelayMAC string
	// FactsURL, when set, names the frontend's facts endpoint (/v1/facts).
	// After install-complete the installer runs a first-boot agent phase: it
	// probes the node's hardware profile and POSTs the facts there, closing
	// the discover→install→verify loop. A failed report never fails the
	// install — the node is already built — but is marked with a
	// facts-failed lifecycle event. Empty disables the agent.
	FactsURL string
	// FactsHook, when set, may perturb the profile the agent is about to
	// report (the machine's real hardware is untouched). The faults package
	// uses it to inject deterministic drift.
	FactsHook func(p hardware.Profile) hardware.Profile
}

// defaultClient bounds every fetch: http.DefaultClient has no timeout, so
// one hung kickstart or package request could wedge an install forever.
var defaultClient = &http.Client{Timeout: 60 * time.Second}

func (c Config) withDefaults() Config {
	if c.HTTP == nil {
		c.HTTP = defaultClient
	}
	if c.DHCPRetry <= 0 {
		c.DHCPRetry = 10 * time.Millisecond
	}
	if c.DHCPTimeout <= 0 {
		c.DHCPTimeout = 30 * time.Second
	}
	if c.FetchBackoff <= 0 {
		c.FetchBackoff = 25 * time.Millisecond
	}
	return c
}

// transientError marks a failure the automatic retry budget may absorb.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

func transient(err error) error { return &transientError{err} }

// errCorruptBody marks a fetched package body that failed a digest check —
// the package's embedded digest (the body no longer decodes) or the
// distribution manifest's (a self-consistent body that is not the advertised
// package). Both are transient: a retry fetches a fresh copy. The package
// loop turns each occurrence into a package-corrupt lifecycle event.
var errCorruptBody = errors.New("package body failed digest verification")

// IsTransient reports whether an installation error was classified as
// transient (retryable): connection failures, 5xx responses, and truncated
// or undecodable payloads.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// retryFetch runs attempt under the config's automatic retry budget with
// exponential backoff. Non-transient errors and budget exhaustion return
// the last error unchanged (still transient-marked, so callers can tell).
// Cancellation is honored between attempts: a done context stops the retry
// loop instead of sleeping out the backoff.
func retryFetch(ctx context.Context, cfg Config, screen io.Writer, what string, attempt func() error) error {
	backoff := cfg.FetchBackoff
	var err error
	for try := 0; ; try++ {
		err = attempt()
		if err == nil || !IsTransient(err) || try >= cfg.FetchRetries || ctx.Err() != nil {
			return err
		}
		cfg.Stats.retry()
		fmt.Fprintf(screen, "transient failure fetching %s: %v; retry %d/%d in %s\n",
			what, err, try+1, cfg.FetchRetries, backoff)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return fmt.Errorf("installer: retry of %s aborted: %w", what, ctx.Err())
		}
		backoff *= 2
	}
}

// emit publishes an install-phase event for the node, using the hostname
// once the lease has bound one and the MAC before that.
func emit(cfg Config, n *node.Node, t lifecycle.EventType, detail string) {
	if cfg.Events == nil {
		return
	}
	name := n.Name()
	if name == "" {
		name = n.MAC()
	}
	cfg.Events.Publish(lifecycle.Event{
		Node:   name,
		MAC:    n.MAC(),
		Phase:  lifecycle.PhaseInstall,
		Type:   t,
		Source: "installer",
		Detail: detail,
	})
}

// faultAt consults the configured fault hook at a stage boundary.
func faultAt(cfg Config, stage string) error {
	if cfg.FaultHook == nil {
		return nil
	}
	return cfg.FaultHook(stage)
}

// Result summarizes a completed installation.
type Result struct {
	Profile       *kickstart.Profile
	Packages      int
	Bytes         int64
	GMRebuilt     bool
	EKVTranscript string
}

// Run installs the node. On success the node is left in StateBooting with a
// bootable disk; the caller (the cluster orchestrator) completes the boot.
// On failure the node is left in StateCrashed — the paper's "physical
// intervention required" outcome. Cancelling ctx aborts the install at the
// next phase boundary, retry backoff, or package fetch; the error then
// satisfies errors.Is(err, context.Canceled) and the terminal event is
// install-aborted rather than install-failed.
func Run(ctx context.Context, n *node.Node, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	runStart := time.Now()
	n.SetState(node.StateInstalling)
	n.ClearReinstall()

	var screen io.Writer = io.Discard
	var ekvSrv *ekv.Server
	if !cfg.DisableEKV {
		var err error
		ekvSrv, err = ekv.NewServer()
		if err != nil {
			return fail(cfg, n, nil, fmt.Errorf("installer: starting eKV: %w", err))
		}
		defer func() {
			n.SetEKVAddr("")
			ekvSrv.Close()
		}()
		n.SetEKVAddr(ekvSrv.Addr())
		screen = ekvSrv
	}
	res := &Result{}

	fmt.Fprintf(screen, "Red Hat Linux (C) 2000 Red Hat, Inc.  [Rocks eKV]\n")

	if err := ctx.Err(); err != nil {
		return fail(cfg, n, ekvSrv, fmt.Errorf("installer: install aborted before start: %w", err))
	}

	// Hardware probe: autodetect the modules to load (§1, §3.3).
	probe, err := hardware.Detect(n.HW)
	if err != nil {
		return fail(cfg, n, ekvSrv, fmt.Errorf("installer: hardware probe: %w", err))
	}
	fmt.Fprintf(screen, "probing hardware: disk driver %s (%s), NIC drivers %s\n",
		probe.DiskDriver, probe.DiskDevice, strings.Join(probe.NICDrivers, ", "))

	// DHCP: the network "is configured early in the boot cycle" (§4).
	lease, err := acquireLease(ctx, n, cfg, screen)
	if err != nil {
		return fail(cfg, n, ekvSrv, err)
	}
	n.SetIP(lease.YourIP)
	n.SetName(lease.Hostname)
	emit(cfg, n, lifecycle.EventLease, fmt.Sprintf("ip %s", lease.YourIP))
	fmt.Fprintf(screen, "eth0: %s (%s), kickstart server %s\n",
		lease.YourIP, lease.Hostname, lease.NextServer)

	// Fetch the dynamically generated kickstart file (§6.1).
	var profile *kickstart.Profile
	err = retryFetch(ctx, cfg, screen, "kickstart", func() error {
		var ferr error
		profile, ferr = fetchKickstart(ctx, cfg, lease, n.HW.Arch)
		return ferr
	})
	if err != nil {
		return fail(cfg, n, ekvSrv, err)
	}
	res.Profile = profile
	ksDetail := fmt.Sprintf("%d packages", len(profile.Packages))
	if profile.Appliance != "" {
		ksDetail = fmt.Sprintf("appliance %s, %s", profile.Appliance, ksDetail)
	}
	emit(cfg, n, lifecycle.EventKickstart, ksDetail)
	fmt.Fprintf(screen, "retrieved kickstart: appliance %q, %d packages\n",
		profile.Appliance, len(profile.Packages))

	// %pre scripts run in the install environment before partitioning —
	// anaconda executes them from the ramdisk, so their effects are
	// environment-only; we record the transcript.
	if len(profile.Pre) > 0 {
		fmt.Fprintf(screen, "running %d pre-installation scripts\n", len(profile.Pre))
		for i, script := range profile.Pre {
			n.Logf("pre %d: %s", i, strings.TrimSpace(script.Text))
		}
	}

	// Partitioning, per the command section.
	if err := applyPartitioning(n, profile, screen); err != nil {
		return fail(cfg, n, ekvSrv, err)
	}
	if err := faultAt(cfg, "partition"); err != nil {
		return fail(cfg, n, ekvSrv, err)
	}
	emit(cfg, n, lifecycle.EventPartition, "")

	// Package installation over HTTP.
	distURL, err := distBase(profile)
	if err != nil {
		return fail(cfg, n, ekvSrv, err)
	}
	count, bytes, err := installPackages(ctx, n, cfg, profile, distURL, screen, ekvSrv)
	if err != nil {
		return fail(cfg, n, ekvSrv, err)
	}
	res.Packages, res.Bytes = count, bytes
	emit(cfg, n, lifecycle.EventPackages, fmt.Sprintf("%d packages, %d bytes", count, bytes))

	// The kernel payload makes the disk bootable.
	if m, ok := n.PackageDB().Query("kernel"); ok {
		kv := m.Version.Version + "-" + m.Version.Release
		n.SetKernelVersion(kv)
		if err := n.Disk().WriteFile("/boot/vmlinuz", []byte("vmlinuz-"+kv), 0o755); err != nil {
			return fail(cfg, n, ekvSrv, err)
		}
	}

	// %post scripts.
	if err := runPostScripts(n, profile, screen); err != nil {
		return fail(cfg, n, ekvSrv, err)
	}
	emit(cfg, n, lifecycle.EventPost, fmt.Sprintf("%d scripts", len(profile.Post)))

	// Myrinet driver: rebuilt from source so it always matches the kernel
	// that was just installed (§6.3).
	if probe.NeedsGMBuild {
		if err := rebuildGMDriver(n, screen); err != nil {
			return fail(cfg, n, ekvSrv, err)
		}
		res.GMRebuilt = true
	}

	if err := faultAt(cfg, "finalize"); err != nil {
		return fail(cfg, n, ekvSrv, err)
	}

	n.Logf("installation complete: %d packages, %d bytes", count, bytes)
	n.Disk().WriteFile("/root/install.log", []byte(strings.Join(n.InstallLog(), "\n")+"\n"), 0o644)
	fmt.Fprintf(screen, "installation complete; rebooting\n")
	n.MarkInstalled()
	n.SetState(node.StateBooting)
	if cfg.Stats != nil {
		cfg.Stats.Complete.Add(1)
	}
	cfg.Stats.observeInstall(time.Since(runStart))
	emit(cfg, n, lifecycle.EventInstallComplete, fmt.Sprintf("%d packages", count))

	// First-boot agent phase: report what the hardware probe actually saw
	// back to the frontend, so the database's idea of this node can be
	// verified against reality.
	reportFacts(ctx, n, cfg, screen)

	if ekvSrv != nil {
		res.EKVTranscript = ekvSrv.Screen()
	}
	return res, nil
}

// reportFacts is the first-boot agent: probe the node's hardware profile,
// apply any configured perturbation, and POST the facts to the frontend.
// Delivery failures are published (facts-failed) but never fail the install.
func reportFacts(ctx context.Context, n *node.Node, cfg Config, screen io.Writer) {
	if cfg.FactsURL == "" {
		return
	}
	p := n.HW
	if cfg.FactsHook != nil {
		p = cfg.FactsHook(p)
	}
	facts := hardware.FactsFromProfile(p, n.MAC(), n.Name())
	body, err := json.Marshal(facts)
	if err != nil {
		emit(cfg, n, lifecycle.EventFactsFailed, err.Error())
		return
	}
	fmt.Fprintf(screen, "reporting hardware facts to %s\n", cfg.FactsURL)
	err = retryFetch(ctx, cfg, screen, "facts report", func() error {
		req, rerr := http.NewRequestWithContext(ctx, "POST", cfg.FactsURL, bytes.NewReader(body))
		if rerr != nil {
			return rerr
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(ClientIPHeader, n.IP())
		resp, rerr := cfg.HTTP.Do(req)
		if rerr != nil {
			return transient(fmt.Errorf("installer: posting facts: %w", rerr))
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			rerr = fmt.Errorf("installer: facts endpoint: HTTP %s", resp.Status)
			if resp.StatusCode >= 500 {
				rerr = transient(rerr)
			}
			return rerr
		}
		return nil
	})
	if err != nil {
		emit(cfg, n, lifecycle.EventFactsFailed, err.Error())
	}
}

func fail(cfg Config, n *node.Node, ekvSrv *ekv.Server, err error) (*Result, error) {
	if ekvSrv != nil {
		ekvSrv.Printf("INSTALL FAILED: %v\n(interactive shell available on this port)\n", err)
	}
	n.Logf("install failed: %v", err)
	n.SetState(node.StateCrashed)
	// A cancelled install is an abort commanded from above (Cluster.Close,
	// a supervisor pre-emption), not a node-local failure.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		if cfg.Stats != nil {
			cfg.Stats.Aborted.Add(1)
		}
		emit(cfg, n, lifecycle.EventInstallAborted, err.Error())
	} else {
		if cfg.Stats != nil {
			cfg.Stats.Failed.Add(1)
		}
		emit(cfg, n, lifecycle.EventInstallFailed, err.Error())
	}
	return nil, err
}

// acquireLease runs the DISCOVER/OFFER/REQUEST/ACK exchange, retrying while
// the node is unknown. During first integration the DHCP server stays
// silent until insert-ethers binds the MAC, so the retry loop is what makes
// sequential discovery work.
func acquireLease(ctx context.Context, n *node.Node, cfg Config, screen io.Writer) (dhcp.Packet, error) {
	deadline := time.Now().Add(cfg.DHCPTimeout)
	xid := uint32(1)
	fmt.Fprintf(screen, "sending DHCPDISCOVER from %s\n", n.MAC())
	for {
		offer, ok := cfg.Bus.Broadcast(dhcp.Packet{Type: dhcp.Discover, Xid: xid, MAC: n.MAC()})
		if ok {
			ack, ok := cfg.Bus.Broadcast(dhcp.Packet{Type: dhcp.Request, Xid: xid, MAC: n.MAC()})
			if !ok {
				return dhcp.Packet{}, fmt.Errorf("installer: OFFER but no ACK for %s", n.MAC())
			}
			_ = offer
			return ack, nil
		}
		if time.Now().After(deadline) {
			return dhcp.Packet{}, fmt.Errorf("installer: DHCP timeout for %s (node never inserted?)", n.MAC())
		}
		xid++
		select {
		case <-time.After(cfg.DHCPRetry):
		case <-ctx.Done():
			return dhcp.Packet{}, fmt.Errorf("installer: DHCP discovery for %s aborted: %w", n.MAC(), ctx.Err())
		}
	}
}

func fetchKickstart(ctx context.Context, cfg Config, lease dhcp.Packet, arch string) (*kickstart.Profile, error) {
	// The architecture travels in the request, exactly as anaconda encodes
	// it in the kickstart URL; the CGI uses it to prune arch-conditional
	// graph edges and records it in the nodes table.
	url := strings.TrimSuffix(lease.NextServer, "/") + "/install/kickstart.cgi?arch=" + arch
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return nil, fmt.Errorf("installer: %w", err)
	}
	req.Header.Set(ClientIPHeader, lease.YourIP)
	resp, err := cfg.HTTP.Do(req)
	if err != nil {
		return nil, transient(fmt.Errorf("installer: fetching kickstart: %w", err))
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, transient(fmt.Errorf("installer: reading kickstart: %w", err))
	}
	if resp.StatusCode != http.StatusOK {
		err = fmt.Errorf("installer: kickstart CGI: HTTP %s: %s", resp.Status, strings.TrimSpace(string(body)))
		if resp.StatusCode >= 500 {
			err = transient(err)
		}
		return nil, err
	}
	profile, err := kickstart.ParseProfile(string(body))
	if err != nil {
		return nil, err
	}
	return profile, nil
}

// distBase extracts the distribution URL from the profile's `url` command.
func distBase(p *kickstart.Profile) (string, error) {
	v, ok := p.CommandValue("url")
	if !ok {
		return "", fmt.Errorf("installer: kickstart has no url directive")
	}
	fields := strings.Fields(v)
	for i, f := range fields {
		if f == "--url" && i+1 < len(fields) {
			return strings.TrimSuffix(fields[i+1], "/"), nil
		}
	}
	return "", fmt.Errorf("installer: malformed url directive %q", v)
}

// applyPartitioning interprets clearpart/part commands. Root ("/") is
// always reformatted; a partition marked --noformat is created if absent
// but its contents survive if present — the §6.3 persistence contract.
// Fixed partition sizes must fit the probed disk; anaconda refuses to
// install onto hardware that cannot hold the requested layout.
func applyPartitioning(n *node.Node, p *kickstart.Profile, screen io.Writer) error {
	var fixedMB int
	for _, c := range p.Commands {
		fields := strings.Fields(c)
		if len(fields) < 2 || fields[0] != "part" {
			continue
		}
		grow := false
		size := 0
		for i, f := range fields {
			if f == "--grow" {
				grow = true
			}
			if f == "--size" && i+1 < len(fields) {
				fmt.Sscanf(fields[i+1], "%d", &size)
			}
		}
		if !grow {
			fixedMB += size
		}
	}
	if disk := n.HW.Disk.SizeMB; disk > 0 && fixedMB > disk {
		return fmt.Errorf("installer: kickstart requests %d MB of fixed partitions but the %s disk holds %d MB",
			fixedMB, n.HW.Disk.Type, disk)
	}

	d := n.Disk()
	for _, c := range p.Commands {
		fields := strings.Fields(c)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "clearpart":
			for _, f := range fields[1:] {
				if f == "--all" {
					fmt.Fprintf(screen, "clearing all partitions\n")
					d.RemoveAll()
				}
			}
		case "part":
			if len(fields) < 2 {
				return fmt.Errorf("installer: malformed part command %q", c)
			}
			mount := fields[1]
			noformat := false
			for _, f := range fields[2:] {
				if f == "--noformat" {
					noformat = true
				}
			}
			if noformat {
				part := d.EnsurePartition(mount)
				if !part.Formatted {
					d.Format(mount)
					fmt.Fprintf(screen, "formatting %s (first use)\n", mount)
				} else {
					fmt.Fprintf(screen, "preserving %s\n", mount)
				}
			} else {
				d.Format(mount)
				fmt.Fprintf(screen, "formatting %s\n", mount)
			}
		}
	}
	if _, ok := d.Partition("/"); !ok {
		return fmt.Errorf("installer: kickstart defined no root partition")
	}
	return nil
}

// installPackages resolves the profile's package names against the served
// repository listing (newest version per name, like anaconda's hdlist) and
// downloads and unpacks each one.
// markCorrupt records one discarded package body in all three places that
// care: the lifecycle timeline, the node's eKV screen, and the shared
// corruption counter. The event names the source that served the body
// (peer vs frontend URL), so a relay demotion is auditable in
// /admin/events rather than an anonymous "some fetch was corrupt".
func markCorrupt(cfg Config, n *node.Node, screen io.Writer, file string, src Source) {
	cfg.Stats.corrupt()
	emit(cfg, n, lifecycle.EventPackageCorrupt,
		fmt.Sprintf("%s failed digest verification (source: %s)", file, src))
	fmt.Fprintf(screen, "package %s from %s failed digest verification; discarding\n", file, src)
}

func installPackages(ctx context.Context, n *node.Node, cfg Config, p *kickstart.Profile, distURL string, screen io.Writer, ekvSrv *ekv.Server) (int, int64, error) {
	n.ResetPackageDB()
	listURL := distURL + "/RedHat/RPMS/"
	var best map[string]rpm.Metadata
	err := retryFetch(ctx, cfg, screen, "package listing", func() error {
		var ferr error
		best, ferr = fetchListing(ctx, cfg, listURL, n.HW.Arch)
		return ferr
	})
	if err != nil {
		return 0, 0, err
	}

	// Ask the relay registry for peer sources (best-effort): packages are
	// then fetched peer-first with the frontend as fallback. Every body is
	// verified against the frontend's manifest digests regardless of which
	// source served it — a corrupt or lying peer is demoted and the fetch
	// moves elsewhere, so garbage never reaches the disk.
	srcs := newSourceSet(fetchRelaySources(ctx, cfg), distURL)
	if len(srcs.peers) > 0 {
		fmt.Fprintf(screen, "relay registry offered %d peer source(s)\n", len(srcs.peers))
	}

	var total int64
	// The Figure 7 status panel's Total/Completed/Remaining accounting:
	// package sizes come from the hdlist when the server provides one.
	var grandTotal int64
	for _, name := range p.Packages {
		if m, ok := best[name]; ok {
			grandTotal += m.Size
		}
	}
	start := time.Now()
	for i := 0; i < len(p.Packages); i++ {
		// Cancellation lands between packages: the package being written
		// finishes (no torn files on disk), then the loop exits promptly.
		if cerr := ctx.Err(); cerr != nil {
			return i, total, fmt.Errorf("installer: package installation aborted after %d/%d packages: %w",
				i, len(p.Packages), cerr)
		}
		name := p.Packages[i]
		var pkg *rpm.Package
		err := retryFetch(ctx, cfg, screen, name, func() error {
			var ferr error
			pkg, ferr = fetchVerified(ctx, n, cfg, screen, srcs, best, name)
			return ferr
		})
		if err != nil {
			// The eKV keyboard gives the administrator a chance to fix
			// the distribution and retry without restarting the install.
			if cfg.InteractiveRetryWait > 0 && ekvSrv != nil && ctx.Err() == nil {
				fmt.Fprintf(screen, "FAILED: %v\ntype 'retry' to try %s again, 'abort' to give up\n", err, name)
				if awaitRetry(ctx, ekvSrv, cfg.InteractiveRetryWait) {
					fmt.Fprintf(screen, "retrying %s\n", name)
					// Refresh the listing: the fix may be a new package.
					if refreshed, rerr := fetchListing(ctx, cfg, listURL, n.HW.Arch); rerr == nil {
						best = refreshed
					}
					i--
					continue
				}
			}
			return i, total, err
		}
		for _, f := range pkg.Files {
			if err := n.Disk().WriteFile(f.Path, f.Data, f.Mode); err != nil {
				return i, total, fmt.Errorf("installer: unpacking %s: %w", pkg.NVRA(), err)
			}
		}
		n.PackageDB().Install(pkg.Metadata)
		total += pkg.Size
		// Redraw the Figure 7 panel for every package, exactly as the
		// paper's screenshot shows.
		writeStatusPanel(screen, pkg, i+1, len(p.Packages), total, grandTotal, time.Since(start))
	}
	fmt.Fprintf(screen, " Total  : %d packages, %dM\n", len(p.Packages), total>>20)
	return len(p.Packages), total, nil
}

// writeStatusPanel renders the installation panel of Figure 7.
func writeStatusPanel(w io.Writer, pkg *rpm.Package, done, totalPkgs int, doneBytes, totalBytes int64, elapsed time.Duration) {
	mm := func(b int64) string { return fmt.Sprintf("%dM", b>>20) }
	clock := func(d time.Duration) string {
		secs := int(d.Seconds())
		return fmt.Sprintf("%d:%02d.%02d", secs/60, secs%60, int(d.Milliseconds()/10)%100)
	}
	var remainTime time.Duration
	if doneBytes > 0 && totalBytes > doneBytes {
		remainTime = time.Duration(float64(elapsed) * float64(totalBytes-doneBytes) / float64(doneBytes))
	}
	fmt.Fprintf(w, "+---------------- Package Installation -----------------+\n")
	fmt.Fprintf(w, "| Name   : %-45s |\n", pkg.NVRA())
	fmt.Fprintf(w, "| Size   : %-45s |\n", fmt.Sprintf("%dk", pkg.Size/1024))
	fmt.Fprintf(w, "| Summary: %-45.45s |\n", pkg.Summary)
	fmt.Fprintf(w, "|             Packages   Bytes      Time              |\n")
	fmt.Fprintf(w, "| Total     : %-8d   %-8s   %-8s          |\n", totalPkgs, mm(totalBytes), clock(elapsed+remainTime))
	fmt.Fprintf(w, "| Completed : %-8d   %-8s   %-8s          |\n", done, mm(doneBytes), clock(elapsed))
	fmt.Fprintf(w, "| Remaining : %-8d   %-8s   %-8s          |\n", totalPkgs-done, mm(totalBytes-doneBytes), clock(remainTime))
	fmt.Fprintf(w, "+--------------------------------------------------------+\n")
}

// runPostScripts executes each %post section with a miniature shell
// interpreter: `echo 'text' > path`, `echo 'text' >> path`, and
// `chkconfig <svc> on|off` have real effects on the node; every other line
// is recorded in the install log (the transcript a real %post leaves).
func runPostScripts(n *node.Node, p *kickstart.Profile, screen io.Writer) error {
	fmt.Fprintf(screen, "running %d post-configuration scripts\n", len(p.Post))
	services := map[string]bool{}
	for i, s := range p.Post {
		scriptPath := fmt.Sprintf("/root/ks-post.%03d.sh", i)
		if err := n.Disk().WriteFile(scriptPath, []byte(s.Text), 0o755); err != nil {
			return err
		}
		for _, line := range strings.Split(s.Text, "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if err := execPostLine(n, line, services); err != nil {
				return fmt.Errorf("installer: post script %d: %w", i, err)
			}
		}
	}
	var enabled []string
	for svc, on := range services {
		if on {
			enabled = append(enabled, svc)
		}
	}
	n.SetServices(enabled)
	return nil
}

// execPostLine applies one %post line.
func execPostLine(n *node.Node, line string, services map[string]bool) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	switch fields[0] {
	case "chkconfig":
		if len(fields) == 3 {
			services[fields[1]] = fields[2] == "on"
		}
		n.Logf("post: %s", line)
		return nil
	case "echo":
		// echo 'text' > path   or   echo 'text' >> path
		if i := strings.LastIndex(line, ">>"); i > 0 {
			text := extractEchoText(line[:i])
			path := strings.TrimSpace(line[i+2:])
			if strings.HasPrefix(path, "/") {
				return n.Disk().AppendFile(path, []byte(text+"\n"))
			}
		} else if i := strings.LastIndex(line, ">"); i > 0 {
			text := extractEchoText(line[:i])
			path := strings.TrimSpace(line[i+1:])
			if strings.HasPrefix(path, "/") {
				return n.Disk().WriteFile(path, []byte(text+"\n"), 0o644)
			}
		}
		n.Logf("post: %s", line)
		return nil
	default:
		n.Logf("post: %s", line)
		return nil
	}
}

// extractEchoText pulls the quoted (or bare) argument of an echo.
func extractEchoText(s string) string {
	s = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(s), "echo"))
	s = strings.TrimSpace(s)
	if len(s) >= 2 && (s[0] == '\'' || s[0] == '"') && s[len(s)-1] == s[0] {
		return s[1 : len(s)-1]
	}
	return s
}

// rebuildGMDriver compiles the Myrinet driver from its source RPM against
// the just-installed kernel. It fails if the source package or its build
// requirements are missing — a real configuration error Rocks surfaces.
func rebuildGMDriver(n *node.Node, screen io.Writer) error {
	db := n.PackageDB()
	src, ok := db.Query("myrinet-gm-src")
	if !ok {
		return fmt.Errorf("installer: node has Myrinet hardware but no myrinet-gm-src package")
	}
	for _, req := range []string{"gcc", "kernel"} {
		if _, ok := db.Query(req); !ok {
			return fmt.Errorf("installer: GM driver build requires %q which is not installed", req)
		}
	}
	kv := n.KernelVersion()
	fmt.Fprintf(screen, "building GM driver %s against kernel %s\n", src.Version, kv)
	module := fmt.Sprintf("/lib/modules/%s/kernel/drivers/net/gm.o", kv)
	if err := n.Disk().WriteFile(module, []byte("gm module for "+kv), 0o644); err != nil {
		return err
	}
	n.SetGMDriverFor(kv)
	n.Logf("gm driver rebuilt for kernel %s", kv)
	return nil
}

// fetchListing retrieves the repository index and resolves the newest
// compatible version of every package (anaconda's hdlist step). It prefers
// the digest manifest (sizes for progress accounting plus the payload
// digest every fetched body must match), then the hdlist, then the bare
// directory listing — so installs against pre-manifest servers still work,
// just without verification.
func fetchListing(ctx context.Context, cfg Config, listURL, arch string) (map[string]rpm.Metadata, error) {
	base := strings.TrimSuffix(listURL, "RPMS/") + "base/"
	if best, err := fetchManifest(ctx, cfg, base+"manifest", arch); err == nil {
		return best, nil
	}
	entries, err := fetchIndex(ctx, cfg, base+"hdlist")
	if err != nil {
		entries, err = fetchIndex(ctx, cfg, listURL)
		if err != nil {
			return nil, err
		}
	}
	best := map[string]rpm.Metadata{}
	for i := 0; i < len(entries); i++ {
		fn := entries[i]
		m, err := rpm.ParseFilename(fn)
		if err != nil {
			continue
		}
		// An hdlist pairs each filename with its size.
		if i+1 < len(entries) {
			if size, serr := strconv.ParseInt(entries[i+1], 10, 64); serr == nil {
				m.Size = size
				i++
			}
		}
		if !rpm.ArchCompatible(arch, m.Arch) {
			continue
		}
		cur, ok := best[m.Name]
		if !ok || rpm.Compare(m.Version, cur.Version) > 0 {
			best[m.Name] = m
		}
	}
	return best, nil
}

// fetchManifest retrieves the distribution's digest manifest and resolves
// the newest compatible version of every package, digests included.
func fetchManifest(ctx context.Context, cfg Config, url, arch string) (map[string]rpm.Metadata, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return nil, fmt.Errorf("installer: %w", err)
	}
	resp, err := cfg.HTTP.Do(req)
	if err != nil {
		return nil, transient(fmt.Errorf("installer: manifest %s: %w", url, err))
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		ferr := fmt.Errorf("installer: manifest %s: HTTP %s (%v)", url, resp.Status, err)
		if err != nil || resp.StatusCode >= 500 {
			ferr = transient(ferr)
		}
		return nil, ferr
	}
	entries, err := dist.ParseManifest(body)
	if err != nil {
		// A garbled manifest is a torn transfer; the caller falls back (or
		// the listing retry budget takes another shot).
		return nil, transient(fmt.Errorf("installer: manifest %s: %w", url, err))
	}
	best := map[string]rpm.Metadata{}
	for _, e := range entries {
		m, err := rpm.ParseFilename(e.NVRA + ".rpm")
		if err != nil {
			continue
		}
		m.Size, m.Digest, m.Source = e.Size, e.Digest, e.Source
		if !rpm.ArchCompatible(arch, m.Arch) {
			continue
		}
		cur, ok := best[m.Name]
		if !ok || rpm.Compare(m.Version, cur.Version) > 0 {
			best[m.Name] = m
		}
	}
	return best, nil
}

// fetchIndex retrieves a whitespace-separated index document.
func fetchIndex(ctx context.Context, cfg Config, url string) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return nil, fmt.Errorf("installer: %w", err)
	}
	resp, err := cfg.HTTP.Do(req)
	if err != nil {
		return nil, transient(fmt.Errorf("installer: listing %s: %w", url, err))
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		ferr := fmt.Errorf("installer: listing %s: HTTP %s (%v)", url, resp.Status, err)
		if err != nil || resp.StatusCode >= 500 {
			ferr = transient(ferr)
		}
		return nil, ferr
	}
	return strings.Fields(string(body)), nil
}

// awaitRetry blocks for an eKV keyboard decision; it reports true for
// "retry", false for "abort", timeout, or cancellation.
func awaitRetry(ctx context.Context, srv *ekv.Server, wait time.Duration) bool {
	deadline := time.Now().Add(wait)
	for {
		line, ok := srv.AwaitLine(ctx, time.Until(deadline))
		if !ok {
			return false
		}
		switch strings.TrimSpace(line) {
		case "retry":
			return true
		case "abort":
			return false
		}
	}
}

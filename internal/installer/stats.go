package installer

import (
	"sync/atomic"

	"rocks/internal/metrics"
)

// Stats aggregates install outcomes across every Run sharing one struct —
// the cluster passes the same *Stats to all installer launches, so the
// counters survive individual installs and node churn. All fields are
// atomics; a nil *Stats disables counting (every increment goes through
// the nil-safe helpers below).
type Stats struct {
	// FetchRetries counts automatic retry attempts spent across all HTTP
	// fetches (kickstart, listing, packages).
	FetchRetries atomic.Uint64
	// PackagesCorrupt counts fetched package bodies discarded after
	// failing digest verification.
	PackagesCorrupt atomic.Uint64
	// Complete / Failed / Aborted count terminal install outcomes, in the
	// same taxonomy as the install-complete/-failed/-aborted lifecycle
	// events.
	Complete atomic.Uint64
	Failed   atomic.Uint64
	Aborted  atomic.Uint64
}

func (s *Stats) retry() {
	if s != nil {
		s.FetchRetries.Add(1)
	}
}

func (s *Stats) corrupt() {
	if s != nil {
		s.PackagesCorrupt.Add(1)
	}
}

// RegisterMetrics exposes the installer counters. The outcome vec emits
// all three children even at zero, so a scrape can assert their presence
// before any install has finished.
func (s *Stats) RegisterMetrics(r *metrics.Registry) {
	r.CounterFunc("rocks_installer_fetch_retries_total",
		"Automatic retry attempts spent on transient fetch failures.",
		func() float64 { return float64(s.FetchRetries.Load()) })
	r.CounterFunc("rocks_installer_packages_corrupt_total",
		"Package bodies discarded after failing digest verification.",
		func() float64 { return float64(s.PackagesCorrupt.Load()) })
	r.CounterVecFunc("rocks_installer_installs_total",
		"Terminal install outcomes.", []string{"outcome"},
		func() []metrics.Sample {
			return []metrics.Sample{
				{Labels: []string{"complete"}, Value: float64(s.Complete.Load())},
				{Labels: []string{"failed"}, Value: float64(s.Failed.Load())},
				{Labels: []string{"aborted"}, Value: float64(s.Aborted.Load())},
			}
		})
}

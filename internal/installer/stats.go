package installer

import (
	"sync"
	"sync/atomic"
	"time"

	"rocks/internal/metrics"
)

// Stats aggregates install outcomes across every Run sharing one struct —
// the cluster passes the same *Stats to all installer launches, so the
// counters survive individual installs and node churn. All fields are
// atomics; a nil *Stats disables counting (every increment goes through
// the nil-safe helpers below).
type Stats struct {
	// FetchRetries counts automatic retry attempts spent across all HTTP
	// fetches (kickstart, listing, packages).
	FetchRetries atomic.Uint64
	// PackagesCorrupt counts fetched package bodies discarded after
	// failing digest verification.
	PackagesCorrupt atomic.Uint64
	// Complete / Failed / Aborted count terminal install outcomes, in the
	// same taxonomy as the install-complete/-failed/-aborted lifecycle
	// events.
	Complete atomic.Uint64
	Failed   atomic.Uint64
	Aborted  atomic.Uint64

	// Per-source accounting for the relay distribution tier: how many
	// verified package bodies (and bytes) came from peer relays vs the
	// frontend, and how many peers were demoted for serving corrupt or
	// failing responses. The peer-vs-frontend byte split is the headline
	// number: it is the traffic the frontend NIC did NOT carry.
	PeerFetches     atomic.Uint64
	FrontendFetches atomic.Uint64
	PeerBytes       atomic.Uint64
	FrontendBytes   atomic.Uint64
	PeerDemotions   atomic.Uint64

	// Latency distributions (the ROADMAP observability follow-on):
	// per-package verified-fetch latency and whole-install duration.
	// Created lazily so a zero Stats works; RegisterMetrics exposes them
	// as histogram families.
	histOnce       sync.Once
	FetchSeconds   *metrics.Histogram
	InstallSeconds *metrics.Histogram
}

// hists lazily creates the histogram instruments. Package fetches are
// sub-second in the live plane while installs run seconds to minutes; the
// default bucket ladder covers both.
func (s *Stats) hists() {
	s.histOnce.Do(func() {
		s.FetchSeconds = metrics.NewHistogram(nil)
		s.InstallSeconds = metrics.NewHistogram(nil)
	})
}

func (s *Stats) retry() {
	if s != nil {
		s.FetchRetries.Add(1)
	}
}

func (s *Stats) corrupt() {
	if s != nil {
		s.PackagesCorrupt.Add(1)
	}
}

func (s *Stats) demotePeer() {
	if s != nil {
		s.PeerDemotions.Add(1)
	}
}

// fetched records one verified package body by source kind.
func (s *Stats) fetched(kind string, bytes int64, d time.Duration) {
	if s == nil {
		return
	}
	if kind == SourcePeer {
		s.PeerFetches.Add(1)
		s.PeerBytes.Add(uint64(bytes))
	} else {
		s.FrontendFetches.Add(1)
		s.FrontendBytes.Add(uint64(bytes))
	}
	s.hists()
	s.FetchSeconds.Observe(d.Seconds())
}

// observeInstall records one completed install's wall-clock duration.
func (s *Stats) observeInstall(d time.Duration) {
	if s == nil {
		return
	}
	s.hists()
	s.InstallSeconds.Observe(d.Seconds())
}

// RegisterMetrics exposes the installer counters. The outcome and source
// vecs emit all their children even at zero, so a scrape can assert their
// presence before any install has finished.
func (s *Stats) RegisterMetrics(r *metrics.Registry) {
	s.hists()
	r.CounterFunc("rocks_installer_fetch_retries_total",
		"Automatic retry attempts spent on transient fetch failures.",
		func() float64 { return float64(s.FetchRetries.Load()) })
	r.CounterFunc("rocks_installer_packages_corrupt_total",
		"Package bodies discarded after failing digest verification.",
		func() float64 { return float64(s.PackagesCorrupt.Load()) })
	r.CounterVecFunc("rocks_installer_installs_total",
		"Terminal install outcomes.", []string{"outcome"},
		func() []metrics.Sample {
			return []metrics.Sample{
				{Labels: []string{"complete"}, Value: float64(s.Complete.Load())},
				{Labels: []string{"failed"}, Value: float64(s.Failed.Load())},
				{Labels: []string{"aborted"}, Value: float64(s.Aborted.Load())},
			}
		})
	r.CounterVecFunc("rocks_installer_fetch_source_total",
		"Verified package bodies fetched, by serving source.", []string{"source"},
		func() []metrics.Sample {
			return []metrics.Sample{
				{Labels: []string{"peer"}, Value: float64(s.PeerFetches.Load())},
				{Labels: []string{"frontend"}, Value: float64(s.FrontendFetches.Load())},
			}
		})
	r.CounterVecFunc("rocks_installer_fetch_bytes_total",
		"Verified package bytes fetched, by serving source — the peer-vs-frontend split.",
		[]string{"source"},
		func() []metrics.Sample {
			return []metrics.Sample{
				{Labels: []string{"peer"}, Value: float64(s.PeerBytes.Load())},
				{Labels: []string{"frontend"}, Value: float64(s.FrontendBytes.Load())},
			}
		})
	r.CounterFunc("rocks_installer_relay_demotions_total",
		"Peer relays dropped from an install's source set after corrupt or failing responses.",
		func() float64 { return float64(s.PeerDemotions.Load()) })
	r.RegisterHistogram("rocks_installer_fetch_seconds",
		"Per-package verified fetch latency in seconds.", s.FetchSeconds)
	r.RegisterHistogram("rocks_installer_install_seconds",
		"Whole-install wall-clock duration in seconds, successful installs only.", s.InstallSeconds)
}

package installer

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rocks/internal/dhcp"
	"rocks/internal/dist"
	"rocks/internal/ekv"
	"rocks/internal/faults"
	"rocks/internal/hardware"
	"rocks/internal/kickstart"
	"rocks/internal/lifecycle"
	"rocks/internal/node"
	"rocks/internal/rpm"
	"rocks/internal/syslogd"
)

// testFrontend is a miniature frontend: a kickstart CGI, a served
// distribution, and a DHCP server on a private bus — just enough to install
// nodes without the full core orchestrator (which has its own tests).
type testFrontend struct {
	srv     *httptest.Server
	bus     *dhcp.Bus
	dhcpd   *dhcp.Server
	dist    *dist.Distribution
	appcfg  map[string]string // IP → appliance
	archcfg map[string]string // IP → arch
}

func newTestFrontend(t *testing.T) *testFrontend {
	t.Helper()
	fe := &testFrontend{
		bus:     dhcp.NewBus(),
		appcfg:  map[string]string{},
		archcfg: map[string]string{},
	}
	fe.dist = dist.Build("rocks", kickstart.DefaultFramework(),
		dist.Source{Name: "redhat", Repo: dist.SyntheticRedHat()})

	mux := http.NewServeMux()
	mux.Handle("/install/dist/", http.StripPrefix("/install/dist", dist.Handler(fe.dist)))
	mux.HandleFunc("/install/kickstart.cgi", func(w http.ResponseWriter, r *http.Request) {
		ip := r.Header.Get(ClientIPHeader)
		app, ok := fe.appcfg[ip]
		if !ok {
			http.Error(w, "unknown node "+ip, http.StatusNotFound)
			return
		}
		profile, err := fe.dist.Framework.Generate(kickstart.Request{
			Appliance: app,
			Arch:      fe.archcfg[ip],
			NodeName:  "node-" + ip,
			Attrs:     kickstart.DefaultAttrs(fe.srv.URL+"/install/dist", "10.1.1.1"),
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write([]byte(profile.Render()))
	})
	fe.srv = httptest.NewServer(mux)
	t.Cleanup(fe.srv.Close)

	fe.dhcpd = dhcp.NewServer("frontend-0", syslogd.New())
	fe.bus.Register(fe.dhcpd)
	return fe
}

// admit binds a node's MAC the way insert-ethers would.
func (fe *testFrontend) admit(n *node.Node, ip, hostname, appliance string) {
	fe.appcfg[ip] = appliance
	fe.archcfg[ip] = n.HW.Arch
	fe.dhcpd.SetBinding(n.MAC(), dhcp.Binding{IP: ip, Hostname: hostname, NextServer: fe.srv.URL})
}

func (fe *testFrontend) config() Config {
	return Config{Bus: fe.bus, HTTP: fe.srv.Client(), DHCPRetry: 2 * time.Millisecond, DHCPTimeout: 5 * time.Second}
}

func newComputeNode() *node.Node {
	macs := hardware.NewMACAllocator()
	return node.New(hardware.PIIICompute(macs, 733))
}

func TestFullComputeInstall(t *testing.T) {
	fe := newTestFrontend(t)
	n := newComputeNode()
	fe.admit(n, "10.255.255.254", "compute-0-0", "compute")

	res, err := Run(context.Background(), n, fe.config())
	if err != nil {
		t.Fatal(err)
	}
	if n.State() != node.StateBooting {
		t.Errorf("state = %s, want booting", n.State())
	}
	if n.Name() != "compute-0-0" || n.IP() != "10.255.255.254" {
		t.Errorf("identity = %s/%s", n.Name(), n.IP())
	}
	if res.Packages != 162 {
		t.Errorf("installed %d packages, want 162", res.Packages)
	}
	want := int64(dist.ComputeTransferBytes)
	if res.Bytes < want*99/100 || res.Bytes > want*101/100 {
		t.Errorf("transferred %d bytes, want ~%d", res.Bytes, want)
	}
	if !n.Disk().Bootable() {
		t.Error("disk not bootable after install")
	}
	if n.KernelVersion() == "" {
		t.Error("kernel version not recorded")
	}
	if !res.GMRebuilt || !n.MyrinetOperational() {
		t.Error("Myrinet driver not rebuilt for this kernel")
	}
	if n.PackageDB().Len() != 162 {
		t.Errorf("package db has %d entries", n.PackageDB().Len())
	}
	if n.Installs() != 1 {
		t.Errorf("install count = %d", n.Installs())
	}
}

func TestPostScriptsConfigureNode(t *testing.T) {
	fe := newTestFrontend(t)
	n := newComputeNode()
	fe.admit(n, "10.255.255.254", "compute-0-0", "compute")
	if _, err := Run(context.Background(), n, fe.config()); err != nil {
		t.Fatal(err)
	}
	// chkconfig effects → services.
	for _, svc := range []string{"sshd", "rexecd"} {
		if !n.HasService(svc) {
			t.Errorf("service %s not enabled; services=%v", svc, n.Services())
		}
	}
	// echo >> effects → files.
	fstab, err := n.Disk().ReadFile("/etc/fstab")
	if err != nil || !strings.Contains(string(fstab), "10.1.1.1:/export/home /home nfs") {
		t.Errorf("fstab = %q, %v", fstab, err)
	}
	hosts, err := n.Disk().ReadFile("/etc/hosts")
	if err != nil || !strings.Contains(string(hosts), "10.1.1.1 frontend") {
		t.Errorf("hosts = %q, %v", hosts, err)
	}
	// Scripts themselves are preserved on disk.
	if got := n.Disk().List("/root/ks-post"); len(got) == 0 {
		t.Error("post scripts not written to /root")
	}
}

func TestReinstallPreservesStatePartition(t *testing.T) {
	fe := newTestFrontend(t)
	n := newComputeNode()
	fe.admit(n, "10.255.255.254", "compute-0-0", "compute")
	if _, err := Run(context.Background(), n, fe.config()); err != nil {
		t.Fatal(err)
	}
	// A user leaves data on the persistent partition; root gets scribbled.
	if err := n.Disk().WriteFile("/state/partition1/results.dat", []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	n.Disk().WriteFile("/etc/broken.conf", []byte("experiment gone wrong"), 0o644)

	n.ForceReinstall()
	if _, err := Run(context.Background(), n, fe.config()); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Disk().ReadFile("/etc/broken.conf"); err == nil {
		t.Error("root partition state survived reinstall")
	}
	data, err := n.Disk().ReadFile("/state/partition1/results.dat")
	if err != nil || string(data) != "keep me" {
		t.Errorf("persistent data lost: %q, %v", data, err)
	}
	if n.Installs() != 2 {
		t.Errorf("install count = %d", n.Installs())
	}
}

func TestReinstallRestoresKnownGoodState(t *testing.T) {
	// §3.2's question: "My experiment on node X just went horribly wrong.
	// How do I restore the last known good state?" — reinstall, then the
	// manifest matches a fresh install exactly.
	fe := newTestFrontend(t)
	a := newComputeNode()
	fe.admit(a, "10.255.255.254", "compute-0-0", "compute")
	if _, err := Run(context.Background(), a, fe.config()); err != nil {
		t.Fatal(err)
	}
	reference := a.PackageDB().Manifest()

	// Wreck the node's software state.
	a.PackageDB().Erase("glibc")
	a.PackageDB().Install(newMeta("rogue-package", "6.6.6", "6"))
	if a.PackageDB().Manifest() == reference {
		t.Fatal("sabotage failed")
	}
	a.ForceReinstall()
	if _, err := Run(context.Background(), a, fe.config()); err != nil {
		t.Fatal(err)
	}
	if a.PackageDB().Manifest() != reference {
		t.Error("reinstall did not restore the known good state")
	}
}

func TestFrontendInstall(t *testing.T) {
	fe := newTestFrontend(t)
	macs := hardware.NewMACAllocator()
	n := node.New(hardware.Frontend(macs))
	fe.admit(n, "10.1.1.1", "frontend-0", "frontend")
	res, err := Run(context.Background(), n, fe.config())
	if err != nil {
		t.Fatal(err)
	}
	if res.GMRebuilt {
		t.Error("frontend has no Myrinet; nothing to rebuild")
	}
	if _, ok := n.PackageDB().Query("mysql-server"); !ok {
		t.Error("frontend missing mysql-server")
	}
	if _, ok := n.PackageDB().Query("pbs-mom"); ok {
		t.Error("frontend must not run the compute-only pbs-mom")
	}
	for _, svc := range []string{"httpd", "mysqld", "ypserv", "pbs_server", "maui"} {
		if !n.HasService(svc) {
			t.Errorf("frontend service %s missing; got %v", svc, n.Services())
		}
	}
}

func TestEKVObservableDuringInstall(t *testing.T) {
	fe := newTestFrontend(t)
	n := newComputeNode()
	fe.admit(n, "10.255.255.254", "compute-0-0", "compute")

	done := make(chan error, 1)
	go func() {
		_, err := Run(context.Background(), n, fe.config())
		done <- err
	}()
	// Wait for the eKV port to come up, then attach mid-install.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" && time.Now().Before(deadline) {
		addr = n.EKVAddr()
		time.Sleep(time.Millisecond)
	}
	if addr == "" {
		t.Fatal("eKV never came up")
	}
	c, err := ekv.Attach(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.WaitFor("Package Installation", 5*time.Second) {
		t.Errorf("eKV screen = %q", c.Screen())
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !c.WaitFor("installation complete", 5*time.Second) {
		t.Errorf("final screen missing completion banner: %q", c.Screen())
	}
}

func TestInstallFailsWithoutDHCPBinding(t *testing.T) {
	fe := newTestFrontend(t)
	n := newComputeNode()
	cfg := fe.config()
	cfg.DHCPTimeout = 50 * time.Millisecond
	_, err := Run(context.Background(), n, cfg)
	if err == nil || !strings.Contains(err.Error(), "DHCP timeout") {
		t.Fatalf("err = %v", err)
	}
	if n.State() != node.StateCrashed {
		t.Errorf("state = %s, want crashed", n.State())
	}
}

func TestInstallFailsOnMissingPackage(t *testing.T) {
	fe := newTestFrontend(t)
	// Sabotage the distribution: drop glibc entirely.
	for _, p := range fe.dist.Repo.Versions("glibc") {
		fe.dist.Repo.Remove(p.NVRA())
	}
	n := newComputeNode()
	fe.admit(n, "10.255.255.254", "compute-0-0", "compute")
	_, err := Run(context.Background(), n, fe.config())
	if err == nil || !strings.Contains(err.Error(), "glibc") {
		t.Fatalf("err = %v", err)
	}
	if n.State() != node.StateCrashed {
		t.Errorf("state = %s, want crashed", n.State())
	}
}

func TestInstallFailsForMyrinetWithoutSourcePackage(t *testing.T) {
	fe := newTestFrontend(t)
	for _, p := range fe.dist.Repo.Versions("myrinet-gm-src") {
		fe.dist.Repo.Remove(p.NVRA())
	}
	// Also remove it from the profile? No: the profile demands it, so the
	// install fails at package fetch — which is the right diagnostic.
	n := newComputeNode()
	fe.admit(n, "10.255.255.254", "compute-0-0", "compute")
	_, err := Run(context.Background(), n, fe.config())
	if err == nil || !strings.Contains(err.Error(), "myrinet-gm-src") {
		t.Fatalf("err = %v", err)
	}
}

func TestInstallUnknownNodeGets404(t *testing.T) {
	fe := newTestFrontend(t)
	n := newComputeNode()
	// DHCP binding exists but the CGI doesn't know the IP → kickstart 404.
	fe.dhcpd.SetBinding(n.MAC(), dhcp.Binding{IP: "10.9.9.9", Hostname: "ghost", NextServer: fe.srv.URL})
	_, err := Run(context.Background(), n, fe.config())
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("err = %v", err)
	}
}

func TestInstallPicksNewestPackageVersion(t *testing.T) {
	fe := newTestFrontend(t)
	// Push a security update for glibc into the served repo (what a
	// rocks-dist rebuild does), then install: the node must get the update.
	cur := fe.dist.Repo.Newest("glibc", "i386")
	up := *cur
	upv := cur.Version
	upv.Release = upv.Release + ".security1"
	up.Version = upv
	fe.dist.Repo.Add(&up)

	n := newComputeNode()
	fe.admit(n, "10.255.255.254", "compute-0-0", "compute")
	if _, err := Run(context.Background(), n, fe.config()); err != nil {
		t.Fatal(err)
	}
	m, _ := n.PackageDB().Query("glibc")
	if !strings.HasSuffix(m.Version.Release, ".security1") {
		t.Errorf("node installed %s, want the security update", m.NVRA())
	}
}

func newMeta(name, ver, rel string) rpm.Metadata {
	return rpm.Metadata{Name: name, Version: rpm.Version{Version: ver, Release: rel}, Arch: "i386"}
}

// TestInteractiveRetryOverEKV exercises §6.3's interaction path: a package
// fetch fails mid-install, the administrator watching over eKV fixes the
// distribution and types "retry", and the installation completes without a
// restart.
func TestInteractiveRetryOverEKV(t *testing.T) {
	fe := newTestFrontend(t)
	// Sabotage: remove glibc so the install wedges early.
	var removed []*rpm.Package
	for _, p := range fe.dist.Repo.Versions("glibc") {
		removed = append(removed, p)
		fe.dist.Repo.Remove(p.NVRA())
	}
	n := newComputeNode()
	fe.admit(n, "10.255.255.254", "compute-0-0", "compute")

	cfg := fe.config()
	cfg.InteractiveRetryWait = 10 * time.Second
	done := make(chan error, 1)
	go func() {
		_, err := Run(context.Background(), n, cfg)
		done <- err
	}()

	// Attach like shoot-node's xterm and wait for the failure prompt.
	var addr string
	for deadline := time.Now().Add(5 * time.Second); addr == "" && time.Now().Before(deadline); {
		addr = n.EKVAddr()
		time.Sleep(time.Millisecond)
	}
	client, err := ekv.Attach(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if !client.WaitFor("type 'retry'", 10*time.Second) {
		t.Fatalf("no retry prompt; screen = %q", client.Screen())
	}
	// Fix the distribution, then type retry.
	for _, p := range removed {
		fe.dist.Repo.Add(p)
	}
	if err := client.Send("retry"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("install failed despite the fix: %v", err)
	}
	if n.State() != node.StateBooting {
		t.Errorf("state = %s", n.State())
	}
	if _, ok := n.PackageDB().Query("glibc"); !ok {
		t.Error("glibc missing after retry")
	}
}

// TestInteractiveAbortOverEKV: the administrator gives up; the install
// fails promptly instead of waiting out the timeout.
func TestInteractiveAbortOverEKV(t *testing.T) {
	fe := newTestFrontend(t)
	for _, p := range fe.dist.Repo.Versions("glibc") {
		fe.dist.Repo.Remove(p.NVRA())
	}
	n := newComputeNode()
	fe.admit(n, "10.255.255.254", "compute-0-0", "compute")
	cfg := fe.config()
	cfg.InteractiveRetryWait = time.Minute
	done := make(chan error, 1)
	go func() {
		_, err := Run(context.Background(), n, cfg)
		done <- err
	}()
	var addr string
	for deadline := time.Now().Add(5 * time.Second); addr == "" && time.Now().Before(deadline); {
		addr = n.EKVAddr()
		time.Sleep(time.Millisecond)
	}
	client, err := ekv.Attach(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if !client.WaitFor("type 'retry'", 10*time.Second) {
		t.Fatalf("no retry prompt; screen = %q", client.Screen())
	}
	client.Send("abort")
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("aborted install reported success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("abort did not terminate the install")
	}
	if n.State() != node.StateCrashed {
		t.Errorf("state = %s", n.State())
	}
}

// TestFigure7StatusPanel checks the install screen carries the paper's
// Figure 7 panel: Name/Size rows plus Total/Completed/Remaining accounting
// with byte totals from the hdlist.
func TestFigure7StatusPanel(t *testing.T) {
	fe := newTestFrontend(t)
	n := newComputeNode()
	fe.admit(n, "10.255.255.254", "compute-0-0", "compute")
	res, err := Run(context.Background(), n, fe.config())
	if err != nil {
		t.Fatal(err)
	}
	screen := res.EKVTranscript
	for _, want := range []string{
		"+---------------- Package Installation -----------------+",
		"| Name   :",
		"| Size   :",
		"| Total     : 162",
		"| Completed : 162",
		"| Remaining : 0",
		"224M", // 225 MB minus per-package rounding
	} {
		if !strings.Contains(screen, want) {
			t.Errorf("panel missing %q", want)
		}
	}
	// The panel redraws per package: 162 panels in the transcript.
	if got := strings.Count(screen, "Package Installation"); got != 162 {
		t.Errorf("panel drawn %d times, want 162", got)
	}
}

// TestInstallRefusesUndersizedDisk: the kickstart's fixed partitions must
// fit the probed hardware — a node with a too-small disk fails cleanly
// instead of pretending to install.
func TestInstallRefusesUndersizedDisk(t *testing.T) {
	fe := newTestFrontend(t)
	macs := hardware.NewMACAllocator()
	hw := hardware.PIIICompute(macs, 733)
	hw.Disk.SizeMB = 2000 // compute kickstart wants a 4096 MB root
	n := node.New(hw)
	fe.admit(n, "10.255.255.254", "compute-0-0", "compute")
	_, err := Run(context.Background(), n, fe.config())
	if err == nil || !strings.Contains(err.Error(), "MB") {
		t.Fatalf("err = %v", err)
	}
	if n.State() != node.StateCrashed {
		t.Errorf("state = %s", n.State())
	}
}

// TestPreScriptsRecorded: %pre sections run before partitioning, in the
// install environment; their transcript lands in the install log.
func TestPreScriptsRecorded(t *testing.T) {
	fe := newTestFrontend(t)
	compute := fe.dist.Framework.Nodes["compute"]
	compute.Pre = append(compute.Pre, kickstart.Script{Text: "dd if=/dev/zero of=/dev/sda bs=512 count=1"})
	n := newComputeNode()
	fe.admit(n, "10.255.255.254", "compute-0-0", "compute")
	res, err := Run(context.Background(), n, fe.config())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.EKVTranscript, "pre-installation scripts") {
		t.Error("pre phase missing from eKV")
	}
	found := false
	for _, l := range n.InstallLog() {
		if strings.Contains(l, "pre 0: dd if=/dev/zero") {
			found = true
		}
	}
	if !found {
		t.Errorf("pre script not logged: %v", n.InstallLog())
	}
}

// TestDefaultClientHasTimeout: satellite fix — withDefaults must never fall
// back to http.DefaultClient (no timeout), or one hung fetch wedges an
// install forever.
func TestDefaultClientHasTimeout(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.HTTP == http.DefaultClient {
		t.Fatal("withDefaults fell back to http.DefaultClient")
	}
	if cfg.HTTP.Timeout <= 0 {
		t.Fatalf("default client timeout = %v, want positive", cfg.HTTP.Timeout)
	}
}

// TestAutomaticRetryAbsorbsTransientHTTPErrors: a bounded fault storm of
// 500s and truncations across kickstart and package fetches is absorbed by
// the non-interactive retry budget — no eKV keyboard, no crash.
func TestAutomaticRetryAbsorbsTransientHTTPErrors(t *testing.T) {
	fe := newTestFrontend(t)
	n := newComputeNode()
	fe.admit(n, "10.255.255.254", "compute-0-0", "compute")

	inj := faults.NewInjector(17,
		faults.Rule{Op: faults.OpHTTPKickstart, Mode: faults.ModeTruncate, Count: 1},
		faults.Rule{Op: faults.OpHTTPPackage, Mode: faults.ModeError500, Count: 4},
	)
	cfg := fe.config()
	cfg.HTTP = &http.Client{Transport: faults.NewTransport(inj, fe.srv.Client().Transport, nil)}
	cfg.DisableEKV = true
	cfg.FetchRetries = 3
	cfg.FetchBackoff = time.Millisecond

	res, err := Run(context.Background(), n, cfg)
	if err != nil {
		t.Fatalf("install did not survive the storm: %v", err)
	}
	if res.Packages != 162 {
		t.Errorf("installed %d packages, want 162", res.Packages)
	}
	if !inj.Exhausted() {
		t.Errorf("fault budget not consumed: %v", inj.Injected())
	}
	if n.State() != node.StateBooting {
		t.Errorf("state = %s", n.State())
	}
}

// TestRetryBudgetExhaustionCrashes: unlimited 500s defeat a bounded retry
// budget; the failure is still classified transient so the supervisor knows
// a re-shoot is worthwhile.
func TestRetryBudgetExhaustionCrashes(t *testing.T) {
	fe := newTestFrontend(t)
	n := newComputeNode()
	fe.admit(n, "10.255.255.254", "compute-0-0", "compute")

	inj := faults.NewInjector(17, faults.Rule{Op: faults.OpHTTPPackage})
	cfg := fe.config()
	cfg.HTTP = &http.Client{Transport: faults.NewTransport(inj, fe.srv.Client().Transport, nil)}
	cfg.DisableEKV = true
	cfg.FetchRetries = 2
	cfg.FetchBackoff = time.Millisecond

	_, err := Run(context.Background(), n, cfg)
	if err == nil {
		t.Fatal("install succeeded against a permanently failing server")
	}
	if !IsTransient(err) {
		t.Errorf("exhausted-budget error not transient: %v", err)
	}
	if n.State() != node.StateCrashed {
		t.Errorf("state = %s, want crashed", n.State())
	}
}

// TestFaultHookWedgesInstall: the injection seam for mid-install wedges.
func TestFaultHookWedgesInstall(t *testing.T) {
	fe := newTestFrontend(t)
	n := newComputeNode()
	fe.admit(n, "10.255.255.254", "compute-0-0", "compute")

	inj := faults.NewInjector(3, faults.Rule{Op: faults.OpInstallWedge, Count: 1})
	cfg := fe.config()
	cfg.DisableEKV = true
	cfg.FaultHook = faults.InstallHook(inj, func() []string { return []string{n.MAC()} })

	_, err := Run(context.Background(), n, cfg)
	if !errors.Is(err, faults.ErrWedged) {
		t.Fatalf("err = %v, want ErrWedged", err)
	}
	if n.State() != node.StateCrashed {
		t.Errorf("state = %s, want crashed", n.State())
	}
	// The budget is spent: the next run goes through.
	n.ForceReinstall()
	if _, err := Run(context.Background(), n, cfg); err != nil {
		t.Fatalf("second run: %v", err)
	}
}

// roundTripperFunc adapts a function to http.RoundTripper.
type roundTripperFunc func(*http.Request) (*http.Response, error)

func (f roundTripperFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// corruptPackagesClient returns a client that routes package-body fetches
// through the bit-flipping fault transport and everything else (manifest,
// hdlist, kickstart) through the clean one — corruption lands only on RPM
// payloads, which is what isolates the digest check under test.
func corruptPackagesClient(fe *testFrontend, inj *faults.Injector) *http.Client {
	clean := fe.srv.Client().Transport
	faulty := faults.NewTransport(inj, clean, nil)
	return &http.Client{Transport: roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		if strings.HasSuffix(r.URL.Path, ".rpm") {
			return faulty.RoundTrip(r)
		}
		return clean.RoundTrip(r)
	})}
}

// TestInstallDetectsAndRetriesCorruptPackages: a bounded storm of bit-flipped
// package bodies is caught by digest verification, surfaced as
// package-corrupt lifecycle events, and absorbed by the retry budget — the
// install completes and no corrupt byte reaches the disk.
func TestInstallDetectsAndRetriesCorruptPackages(t *testing.T) {
	fe := newTestFrontend(t)
	n := newComputeNode()
	fe.admit(n, "10.255.255.254", "compute-0-0", "compute")

	inj := faults.NewInjector(23, faults.Rule{
		Op: faults.OpHTTPPackage, Mode: faults.ModeCorrupt, Count: 2})
	cfg := fe.config()
	cfg.HTTP = corruptPackagesClient(fe, inj)
	cfg.DisableEKV = true
	cfg.FetchRetries = 4
	cfg.FetchBackoff = time.Millisecond
	cfg.Events = lifecycle.NewBus(256)

	res, err := Run(context.Background(), n, cfg)
	if err != nil {
		t.Fatalf("install did not survive bounded corruption: %v", err)
	}
	if res.Packages != 162 {
		t.Errorf("installed %d packages, want 162", res.Packages)
	}
	if !inj.Exhausted() {
		t.Errorf("corruption budget not consumed: %v", inj.Injected())
	}
	corrupt := cfg.Events.Recent(lifecycle.Filter{Type: lifecycle.EventPackageCorrupt})
	if len(corrupt) != 2 {
		t.Fatalf("package-corrupt events = %d, want 2:\n%v", len(corrupt), corrupt)
	}
	for _, e := range corrupt {
		if !strings.Contains(e.Detail, ".rpm") {
			t.Errorf("corrupt event does not name the file: %q", e.Detail)
		}
		if e.Phase != lifecycle.PhaseInstall {
			t.Errorf("corrupt event phase = %s", e.Phase)
		}
	}
	if got := cfg.Events.Recent(lifecycle.Filter{Type: lifecycle.EventInstallComplete}); len(got) != 1 {
		t.Errorf("install-complete events = %d, want 1", len(got))
	}
	// Every installed payload byte survived the storm intact: the package DB
	// was filled from verified bodies only.
	if n.PackageDB().Len() != 162 {
		t.Errorf("package db has %d entries", n.PackageDB().Len())
	}
}

// TestPersistentCorruptionFailsInstallNamingFile: when every package body
// arrives flipped, the retry budget runs out and the install fails —
// transiently (a re-shoot against a healed mirror is worthwhile), naming
// the corrupt file, with the corruption on the lifecycle timeline.
func TestPersistentCorruptionFailsInstallNamingFile(t *testing.T) {
	fe := newTestFrontend(t)
	n := newComputeNode()
	fe.admit(n, "10.255.255.254", "compute-0-0", "compute")

	inj := faults.NewInjector(23, faults.Rule{Op: faults.OpHTTPPackage, Mode: faults.ModeCorrupt})
	cfg := fe.config()
	cfg.HTTP = corruptPackagesClient(fe, inj)
	cfg.DisableEKV = true
	cfg.FetchRetries = 2
	cfg.FetchBackoff = time.Millisecond
	cfg.Events = lifecycle.NewBus(256)

	_, err := Run(context.Background(), n, cfg)
	if err == nil {
		t.Fatal("install succeeded against a persistently corrupting server")
	}
	if !IsTransient(err) {
		t.Errorf("corruption-exhausted error not transient: %v", err)
	}
	if !strings.Contains(err.Error(), ".rpm") {
		t.Errorf("error does not name the corrupt file: %v", err)
	}
	if n.State() != node.StateCrashed {
		t.Errorf("state = %s, want crashed", n.State())
	}
	corrupt := cfg.Events.Recent(lifecycle.Filter{Type: lifecycle.EventPackageCorrupt})
	if len(corrupt) < 2 {
		t.Errorf("package-corrupt events = %d, want one per failed attempt", len(corrupt))
	}
	if got := cfg.Events.Recent(lifecycle.Filter{Type: lifecycle.EventInstallComplete}); len(got) != 0 {
		t.Error("install-complete published despite corruption failure")
	}
}

// waitAborted blocks until the node's install-aborted event is on the bus,
// bounded by the given context.Context.
func waitAborted(t *testing.T, ctx context.Context, bus *lifecycle.Bus, nodeName string) lifecycle.Event {
	t.Helper()
	e, err := bus.WaitFor(ctx, lifecycle.Filter{Node: nodeName, Type: lifecycle.EventInstallAborted})
	if err != nil {
		t.Fatalf("install-aborted event never published: %v", err)
	}
	return e
}

// TestRunCancelledMidPackageLoop is the cancellation contract: a context
// cancelled partway through package installation makes Run return promptly
// with context.Canceled, leaves the node crashed (well-defined failed
// state), and publishes install-aborted — not install-failed — on the bus.
func TestRunCancelledMidPackageLoop(t *testing.T) {
	fe := newTestFrontend(t)
	n := newComputeNode()
	fe.admit(n, "10.255.255.254", "compute-0-0", "compute")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var pkgFetches int32
	inner := fe.srv.Client().Transport
	cfg := fe.config()
	cfg.Events = lifecycle.NewBus(256)
	cfg.HTTP = &http.Client{Transport: roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		if strings.HasSuffix(r.URL.Path, ".rpm") && atomic.AddInt32(&pkgFetches, 1) == 3 {
			cancel() // yank the plug mid-package-loop
		}
		return inner.RoundTrip(r)
	})}

	start := time.Now()
	_, err := Run(ctx, n, cfg)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancelled Run took %s; cancellation should land promptly", elapsed)
	}
	if n.State() != node.StateCrashed {
		t.Errorf("state = %s, want crashed", n.State())
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer wcancel()
	e := waitAborted(t, wctx, cfg.Events, "compute-0-0")
	if e.Phase != lifecycle.PhaseInstall || e.Source != "installer" {
		t.Errorf("aborted event = %+v", e)
	}
	if got := cfg.Events.Recent(lifecycle.Filter{Type: lifecycle.EventInstallFailed}); len(got) != 0 {
		t.Errorf("cancellation published install-failed events: %v", got)
	}
	// The phases that completed before the cancel are on the timeline.
	tl := cfg.Events.Timeline("compute-0-0")
	var types []lifecycle.EventType
	for _, ev := range tl {
		types = append(types, ev.Type)
	}
	want := []lifecycle.EventType{lifecycle.EventLease, lifecycle.EventKickstart, lifecycle.EventPartition, lifecycle.EventInstallAborted}
	if len(types) != len(want) {
		t.Fatalf("timeline = %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("timeline = %v, want %v", types, want)
		}
	}
}

// TestRunCancelledDuringDHCP proves cancellation interrupts the discovery
// retry loop — the phase a node with no binding would otherwise sit in for
// the full DHCPTimeout.
func TestRunCancelledDuringDHCP(t *testing.T) {
	fe := newTestFrontend(t)
	n := newComputeNode() // never admitted: DHCP stays silent
	cfg := fe.config()
	cfg.DHCPTimeout = 30 * time.Second
	cfg.Events = lifecycle.NewBus(64)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Run(ctx, n, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled DHCP wait took %s", elapsed)
	}
	if n.State() != node.StateCrashed {
		t.Errorf("state = %s, want crashed", n.State())
	}
	// No name was ever bound, so the aborted event carries the MAC.
	if got := cfg.Events.Recent(lifecycle.Filter{Node: n.MAC(), Type: lifecycle.EventInstallAborted}); len(got) != 1 {
		t.Errorf("aborted-by-MAC events = %v", got)
	}
}

// TestInstallEventsOnFailure: a non-cancellation failure publishes
// install-failed, keeping the two terminal event types distinct.
func TestInstallEventsOnFailure(t *testing.T) {
	fe := newTestFrontend(t)
	for _, p := range fe.dist.Repo.Versions("glibc") {
		fe.dist.Repo.Remove(p.NVRA())
	}
	n := newComputeNode()
	fe.admit(n, "10.255.255.254", "compute-0-0", "compute")
	cfg := fe.config()
	cfg.Events = lifecycle.NewBus(64)
	if _, err := Run(context.Background(), n, cfg); err == nil {
		t.Fatal("install should have failed")
	}
	if got := cfg.Events.Recent(lifecycle.Filter{Node: "compute-0-0", Type: lifecycle.EventInstallFailed}); len(got) != 1 {
		t.Errorf("install-failed events = %v", got)
	}
	if got := cfg.Events.Recent(lifecycle.Filter{Type: lifecycle.EventInstallAborted}); len(got) != 0 {
		t.Errorf("spurious install-aborted events = %v", got)
	}
}

// TestInstallEventTimeline: a clean install publishes the full §6.1 phase
// sequence in order.
func TestInstallEventTimeline(t *testing.T) {
	fe := newTestFrontend(t)
	n := newComputeNode()
	fe.admit(n, "10.255.255.254", "compute-0-0", "compute")
	cfg := fe.config()
	cfg.Events = lifecycle.NewBus(64)
	if _, err := Run(context.Background(), n, cfg); err != nil {
		t.Fatal(err)
	}
	want := []lifecycle.EventType{
		lifecycle.EventLease, lifecycle.EventKickstart, lifecycle.EventPartition,
		lifecycle.EventPackages, lifecycle.EventPost, lifecycle.EventInstallComplete,
	}
	tl := cfg.Events.Timeline("compute-0-0")
	if len(tl) != len(want) {
		t.Fatalf("timeline has %d events (%v), want %d", len(tl), tl, len(want))
	}
	for i, ev := range tl {
		if ev.Type != want[i] {
			t.Fatalf("timeline[%d] = %s, want %s", i, ev.Type, want[i])
		}
		if ev.Phase != lifecycle.PhaseInstall || ev.Source != "installer" {
			t.Errorf("event %d mislabeled: %+v", i, ev)
		}
	}
}

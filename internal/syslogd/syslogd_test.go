package syslogd

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLogAndMessages(t *testing.T) {
	c := New()
	c.Log("frontend-0", "dhcpd", "DHCPDISCOVER from %s", "00:50:8b:e0:3a:a7")
	c.Log("frontend-0", "insert-ethers", "added compute-0-0")
	msgs := c.Messages()
	if len(msgs) != 2 {
		t.Fatalf("got %d messages", len(msgs))
	}
	if msgs[0].Seq >= msgs[1].Seq {
		t.Error("sequence numbers must increase")
	}
	if msgs[0].String() != "frontend-0 dhcpd: DHCPDISCOVER from 00:50:8b:e0:3a:a7" {
		t.Errorf("String = %q", msgs[0].String())
	}
}

func TestGrep(t *testing.T) {
	c := New()
	c.Log("h", "dhcpd", "DHCPDISCOVER from aa:bb")
	c.Log("h", "kernel", "eth0 up")
	c.Log("h", "dhcpd", "DHCPDISCOVER from cc:dd")
	got := c.Grep("DHCPDISCOVER")
	if len(got) != 2 {
		t.Fatalf("Grep matched %d, want 2", len(got))
	}
	if !strings.Contains(got[1].Text, "cc:dd") {
		t.Error("Grep order should be oldest first")
	}
}

func TestSubscribeReceivesLive(t *testing.T) {
	c := New()
	ch, cancel := c.Subscribe()
	defer cancel()
	c.Log("h", "t", "hello")
	select {
	case m := <-ch:
		if m.Text != "hello" {
			t.Errorf("got %q", m.Text)
		}
	case <-time.After(time.Second):
		t.Fatal("no message delivered")
	}
}

func TestSubscribeCancelIdempotent(t *testing.T) {
	c := New()
	_, cancel := c.Subscribe()
	cancel()
	cancel() // must not panic on double close
	c.Log("h", "t", "after cancel")
}

func TestSlowSubscriberDoesNotBlockLogger(t *testing.T) {
	c := New()
	_, cancel := c.Subscribe() // never drained
	defer cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			c.Log("h", "t", "msg %d", i)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("logger blocked on a slow subscriber")
	}
	if len(c.Messages()) != 1000 {
		t.Errorf("collector kept %d messages, want all 1000", len(c.Messages()))
	}
}

func TestWaitForBacklog(t *testing.T) {
	c := New()
	c.Log("h", "dhcpd", "DHCPDISCOVER from aa:bb")
	m, ok := c.WaitFor(func(m Message) bool {
		return strings.Contains(m.Text, "aa:bb")
	}, 100*time.Millisecond)
	if !ok || !strings.Contains(m.Text, "aa:bb") {
		t.Errorf("WaitFor backlog = %+v, %v", m, ok)
	}
}

func TestWaitForFuture(t *testing.T) {
	c := New()
	go func() {
		time.Sleep(20 * time.Millisecond)
		c.Log("h", "dhcpd", "DHCPDISCOVER from cc:dd")
	}()
	m, ok := c.WaitFor(func(m Message) bool {
		return strings.Contains(m.Text, "cc:dd")
	}, 2*time.Second)
	if !ok || !strings.Contains(m.Text, "cc:dd") {
		t.Errorf("WaitFor future = %+v, %v", m, ok)
	}
}

func TestWaitForTimeout(t *testing.T) {
	c := New()
	start := time.Now()
	_, ok := c.WaitFor(func(Message) bool { return false }, 30*time.Millisecond)
	if ok {
		t.Error("WaitFor should have timed out")
	}
	if time.Since(start) > time.Second {
		t.Error("WaitFor overslept")
	}
}

func TestConcurrentLoggers(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Log("h", "t", "g%d m%d", i, j)
			}
		}(i)
	}
	wg.Wait()
	msgs := c.Messages()
	if len(msgs) != 800 {
		t.Fatalf("got %d messages, want 800", len(msgs))
	}
	seen := map[int64]bool{}
	for _, m := range msgs {
		if seen[m.Seq] {
			t.Fatalf("duplicate seq %d", m.Seq)
		}
		seen[m.Seq] = true
	}
}

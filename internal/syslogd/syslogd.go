// Package syslogd is the cluster's log collector. Its one load-bearing role
// in Rocks is discovery: the DHCP server logs DHCPDISCOVER messages from
// unknown MACs, and insert-ethers "monitors syslog messages for DHCP
// requests from new hosts" (§6.4). The collector therefore supports both
// retrospective reads and live subscription.
package syslogd

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Message is one syslog entry.
type Message struct {
	Seq  int64  // monotonically increasing sequence number
	Host string // originating host
	Tag  string // program tag, e.g. "dhcpd"
	Text string
}

// String renders the message in classic syslog style.
func (m Message) String() string {
	return fmt.Sprintf("%s %s: %s", m.Host, m.Tag, m.Text)
}

// Collector receives messages and fans them out to subscribers. It is safe
// for concurrent use.
type Collector struct {
	mu   sync.Mutex
	msgs []Message
	subs map[int]chan Message
	next int
	seq  int64
}

// New creates an empty collector.
func New() *Collector {
	return &Collector{subs: make(map[int]chan Message)}
}

// Log records a message and delivers it to all subscribers. Slow
// subscribers lose messages rather than blocking the logger (syslog is
// lossy; insert-ethers re-reads the backlog on startup instead).
func (c *Collector) Log(host, tag, format string, args ...interface{}) {
	c.mu.Lock()
	c.seq++
	m := Message{Seq: c.seq, Host: host, Tag: tag, Text: fmt.Sprintf(format, args...)}
	c.msgs = append(c.msgs, m)
	for _, ch := range c.subs {
		select {
		case ch <- m:
		default:
		}
	}
	c.mu.Unlock()
}

// Subscribe returns a channel of future messages and a cancel function.
// The channel is buffered; messages overflowing the buffer are dropped for
// that subscriber.
func (c *Collector) Subscribe() (<-chan Message, func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.next
	c.next++
	ch := make(chan Message, 256)
	c.subs[id] = ch
	return ch, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if _, ok := c.subs[id]; ok {
			delete(c.subs, id)
			close(ch)
		}
	}
}

// Messages returns a copy of everything logged so far.
func (c *Collector) Messages() []Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Message(nil), c.msgs...)
}

// Grep returns logged messages whose text contains substr, oldest first.
func (c *Collector) Grep(substr string) []Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Message
	for _, m := range c.msgs {
		if strings.Contains(m.Text, substr) {
			out = append(out, m)
		}
	}
	return out
}

// WaitFor polls until a logged message satisfies pred or the timeout
// elapses; it returns the first matching message. It checks the backlog
// first, so a message logged before the call still matches.
func (c *Collector) WaitFor(pred func(Message) bool, timeout time.Duration) (Message, bool) {
	deadline := time.Now().Add(timeout)
	ch, cancel := c.Subscribe()
	defer cancel()
	for _, m := range c.Messages() {
		if pred(m) {
			return m, true
		}
	}
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return Message{}, false
		}
		select {
		case m, ok := <-ch:
			if !ok {
				return Message{}, false
			}
			if pred(m) {
				return m, true
			}
		case <-time.After(remain):
			return Message{}, false
		}
	}
}

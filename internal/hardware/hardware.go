// Package hardware models the physical variety a Rocks cluster absorbs:
// CPU architectures, disk subsystems (SCSI, IDE, integrated RAID), and
// network interfaces (Ethernet, Myrinet). The paper's Meteor cluster grew
// to "seven different types of nodes, two different CPU architectures,
// manufactured by three vendors with three different types of disk-storage
// adapters" (§3.1); Rocks handles that by letting the installer autodetect
// hardware and load the right modules instead of cloning disk images.
package hardware

import (
	"fmt"
	"strings"
	"sync"
)

// DiskType enumerates the three storage-adapter families the paper names.
type DiskType string

// Disk subsystem types (§1: "disk subsystem type: SCSI, IDE, integrated
// RAID adapter").
const (
	DiskSCSI DiskType = "scsi"
	DiskIDE  DiskType = "ide"
	DiskRAID DiskType = "raid"
)

// NICType enumerates network interface families.
type NICType string

// Network interface types. Every node has Ethernet (the management
// network); compute nodes usually add Myrinet (§3.1).
const (
	NICEthernet NICType = "ethernet"
	NICMyrinet  NICType = "myrinet"
)

// NIC is one network interface.
type NIC struct {
	Type NICType
	MAC  string
	Mbps int // link speed (Ethernet: 100 or 1000; Myrinet: 1280)
}

// Disk describes the node's system disk.
type Disk struct {
	Type   DiskType
	SizeMB int
}

// Profile is a node's hardware description — what the installer probes.
type Profile struct {
	Model  string // human-readable, e.g. "VA Linux 1220"
	Vendor string
	Arch   string // "i386", "athlon", "ia64"
	CPUMHz int
	CPUs   int
	MemMB  int
	Disk   Disk
	NICs   []NIC
}

// EthernetMAC returns the MAC of the first Ethernet interface — the address
// DHCP discovery and the nodes table key on. It returns "" if the profile
// has no Ethernet NIC (such a node cannot be managed by Rocks; §4 assumes
// an integrated Ethernet device).
func (p Profile) EthernetMAC() string {
	for _, n := range p.NICs {
		if n.Type == NICEthernet {
			return n.MAC
		}
	}
	return ""
}

// EthernetMbps returns the first Ethernet interface's speed, or 0.
func (p Profile) EthernetMbps() int {
	for _, n := range p.NICs {
		if n.Type == NICEthernet {
			return n.Mbps
		}
	}
	return 0
}

// HasMyrinet reports whether the node carries a Myrinet adapter, which
// obliges the installer to rebuild the GM driver from source (§6.3).
func (p Profile) HasMyrinet() bool {
	for _, n := range p.NICs {
		if n.Type == NICMyrinet {
			return true
		}
	}
	return false
}

// Probe is the result of hardware autodetection: the kernel modules the
// installer must load. Reproducing this detection is exactly the "wheel
// reinvention" the paper says proprietary installers waste effort on
// (§3.3); we model its outcome.
type Probe struct {
	DiskDriver   string   // module for the disk adapter
	DiskDevice   string   // device name the kickstart partitioning targets
	NICDrivers   []string // modules for each NIC, in NIC order
	NeedsGMBuild bool     // Myrinet present: GM driver must be built from source
}

// Detect maps a hardware profile to drivers the way anaconda's probe does.
func Detect(p Profile) (Probe, error) {
	var pr Probe
	switch p.Disk.Type {
	case DiskSCSI:
		pr.DiskDriver, pr.DiskDevice = "aic7xxx", "sda"
	case DiskIDE:
		pr.DiskDriver, pr.DiskDevice = "ide-disk", "hda"
	case DiskRAID:
		pr.DiskDriver, pr.DiskDevice = "megaraid", "sda"
	default:
		return pr, fmt.Errorf("hardware: unknown disk type %q", p.Disk.Type)
	}
	for _, n := range p.NICs {
		switch n.Type {
		case NICEthernet:
			if n.Mbps >= 1000 {
				pr.NICDrivers = append(pr.NICDrivers, "acenic")
			} else {
				pr.NICDrivers = append(pr.NICDrivers, "eepro100")
			}
		case NICMyrinet:
			pr.NICDrivers = append(pr.NICDrivers, "gm")
			pr.NeedsGMBuild = true
		default:
			return pr, fmt.Errorf("hardware: unknown NIC type %q", n.Type)
		}
	}
	return pr, nil
}

// MACAllocator hands out deterministic, unique Ethernet addresses for
// simulated nodes. It is safe for concurrent use.
type MACAllocator struct {
	mu   sync.Mutex
	next uint32
	oui  string
}

// NewMACAllocator creates an allocator under a fixed OUI prefix.
func NewMACAllocator() *MACAllocator {
	return &MACAllocator{oui: "00:50:8b"} // Compaq's OUI, as in Table II
}

// NewMACAllocatorOUI creates an allocator under the given OUI prefix
// ("xx:xx:xx"). Federated child frontends each simulate their own
// hardware population; giving every shard a distinct OUI keeps MAC
// addresses — the machine identity every merged query dedupes on —
// globally unique across the hierarchy. An empty or malformed prefix
// falls back to the default allocator.
func NewMACAllocatorOUI(oui string) *MACAllocator {
	var b1, b2, b3 byte
	if _, err := fmt.Sscanf(strings.ToLower(oui), "%02x:%02x:%02x", &b1, &b2, &b3); err != nil {
		return NewMACAllocator()
	}
	return &MACAllocator{oui: fmt.Sprintf("%02x:%02x:%02x", b1, b2, b3)}
}

// ShardOUI derives a deterministic locally-administered OUI from a shard
// name (FNV-1a over the name into the low two octets). The leading octet
// 0x06 has the locally-administered bit set, so derived prefixes can
// never collide with the default Compaq OUI however many shards a site
// grows.
func ShardOUI(shard string) string {
	h := uint32(2166136261)
	for i := 0; i < len(shard); i++ {
		h ^= uint32(shard[i])
		h *= 16777619
	}
	return fmt.Sprintf("06:%02x:%02x", byte(h>>8), byte(h))
}

// Next returns the next MAC address.
func (a *MACAllocator) Next() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := a.next
	a.next++
	return fmt.Sprintf("%s:%02x:%02x:%02x", a.oui, byte(n>>16), byte(n>>8), byte(n))
}

// Reserve marks a MAC as already in use: if it falls under this
// allocator's OUI at or beyond the next handout, allocation resumes past
// it. A frontend recovering a durable database reserves every registered
// MAC so newly simulated machines cannot collide with — and silently
// adopt — a recovered node's identity. MACs outside the OUI — including
// over-long addresses or ones with trailing garbage, which a prefix match
// would silently misread as a different slot — are ignored.
func (a *MACAllocator) Reserve(mac string) {
	s := strings.ToLower(strings.TrimSpace(mac))
	if !strings.HasPrefix(s, a.oui+":") {
		return
	}
	rest := strings.Split(s[len(a.oui)+1:], ":")
	if len(rest) != 3 {
		return // over-long (extra octets) or truncated: not ours
	}
	var n uint32
	for _, oct := range rest {
		if len(oct) != 2 || !isHexByte(oct) {
			return // trailing garbage or malformed octet
		}
		var b byte
		fmt.Sscanf(oct, "%02x", &b)
		n = n<<8 | uint32(b)
	}
	a.mu.Lock()
	if n >= a.next {
		a.next = n + 1
	}
	a.mu.Unlock()
}

// isHexByte reports whether s is exactly two lower-case hex digits.
func isHexByte(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) == 2
}

// Catalog returns the heterogeneous node-type mix of the Meteor cluster
// (§3.1): seven node types, two CPU architectures, three vendors, three
// disk-adapter types. macs supplies unique Ethernet addresses.
func Catalog(macs *MACAllocator) []Profile {
	eth := func(mbps int) NIC { return NIC{Type: NICEthernet, MAC: macs.Next(), Mbps: mbps} }
	myri := func() NIC { return NIC{Type: NICMyrinet, MAC: macs.Next(), Mbps: 1280} }
	return []Profile{
		{Model: "PIII-733 compute", Vendor: "Compaq", Arch: "i386", CPUMHz: 733, CPUs: 2,
			MemMB: 512, Disk: Disk{DiskSCSI, 9000}, NICs: []NIC{eth(100), myri()}},
		{Model: "PIII-800 compute", Vendor: "Compaq", Arch: "i386", CPUMHz: 800, CPUs: 2,
			MemMB: 512, Disk: Disk{DiskIDE, 20000}, NICs: []NIC{eth(100), myri()}},
		{Model: "PIII-1000 compute", Vendor: "IBM", Arch: "i386", CPUMHz: 1000, CPUs: 2,
			MemMB: 1024, Disk: Disk{DiskRAID, 18000}, NICs: []NIC{eth(100), myri()}},
		{Model: "Athlon compute", Vendor: "VA Linux", Arch: "athlon", CPUMHz: 1200, CPUs: 1,
			MemMB: 512, Disk: Disk{DiskIDE, 40000}, NICs: []NIC{eth(100)}},
		{Model: "IA-64 compute", Vendor: "IBM", Arch: "ia64", CPUMHz: 800, CPUs: 2,
			MemMB: 2048, Disk: Disk{DiskSCSI, 18000}, NICs: []NIC{eth(100)}},
		{Model: "Dual-homed frontend", Vendor: "Compaq", Arch: "i386", CPUMHz: 733, CPUs: 2,
			MemMB: 1024, Disk: Disk{DiskSCSI, 18000}, NICs: []NIC{eth(100), eth(100)}},
		{Model: "NFS server", Vendor: "VA Linux", Arch: "i386", CPUMHz: 866, CPUs: 2,
			MemMB: 2048, Disk: Disk{DiskRAID, 72000}, NICs: []NIC{eth(1000)}},
	}
}

// PIIICompute returns the paper's Table I compute node: a 733 MHz - 1 GHz
// PIII with Fast Ethernet and Myrinet.
func PIIICompute(macs *MACAllocator, mhz int) Profile {
	return Profile{
		Model: fmt.Sprintf("PIII-%d compute", mhz), Vendor: "Compaq", Arch: "i386",
		CPUMHz: mhz, CPUs: 1, MemMB: 512, Disk: Disk{DiskSCSI, 9000},
		NICs: []NIC{
			{Type: NICEthernet, MAC: macs.Next(), Mbps: 100},
			{Type: NICMyrinet, MAC: macs.Next(), Mbps: 1280},
		},
	}
}

// Frontend returns the paper's HTTP server: a dual 733 MHz PIII with
// 100 Mbit Ethernet.
func Frontend(macs *MACAllocator) Profile {
	return Profile{
		Model: "Dual PIII-733 frontend", Vendor: "Compaq", Arch: "i386",
		CPUMHz: 733, CPUs: 2, MemMB: 1024, Disk: Disk{DiskSCSI, 18000},
		NICs: []NIC{
			{Type: NICEthernet, MAC: macs.Next(), Mbps: 100},
			{Type: NICEthernet, MAC: macs.Next(), Mbps: 100}, // dual-homed: public side
		},
	}
}

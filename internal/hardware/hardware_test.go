package hardware

import (
	"strings"
	"testing"
)

func TestDetectDiskDrivers(t *testing.T) {
	cases := []struct {
		disk   DiskType
		driver string
		dev    string
	}{
		{DiskSCSI, "aic7xxx", "sda"},
		{DiskIDE, "ide-disk", "hda"},
		{DiskRAID, "megaraid", "sda"},
	}
	for _, c := range cases {
		p := Profile{Disk: Disk{Type: c.disk}}
		pr, err := Detect(p)
		if err != nil {
			t.Fatalf("%s: %v", c.disk, err)
		}
		if pr.DiskDriver != c.driver || pr.DiskDevice != c.dev {
			t.Errorf("%s: got %s/%s, want %s/%s", c.disk, pr.DiskDriver, pr.DiskDevice, c.driver, c.dev)
		}
	}
}

func TestDetectNICDriversAndGMBuild(t *testing.T) {
	macs := NewMACAllocator()
	p := PIIICompute(macs, 733)
	pr, err := Detect(p)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(pr.NICDrivers, " ") != "eepro100 gm" {
		t.Errorf("NIC drivers = %v", pr.NICDrivers)
	}
	if !pr.NeedsGMBuild {
		t.Error("Myrinet node must need a GM source build")
	}
	noMyri := Profile{Disk: Disk{Type: DiskIDE},
		NICs: []NIC{{Type: NICEthernet, MAC: "m", Mbps: 1000}}}
	pr2, _ := Detect(noMyri)
	if pr2.NeedsGMBuild {
		t.Error("Ethernet-only node must not need a GM build")
	}
	if pr2.NICDrivers[0] != "acenic" {
		t.Errorf("gigabit driver = %v", pr2.NICDrivers)
	}
}

func TestDetectUnknownHardware(t *testing.T) {
	if _, err := Detect(Profile{Disk: Disk{Type: "floppy"}}); err == nil {
		t.Error("unknown disk type should fail")
	}
	if _, err := Detect(Profile{Disk: Disk{Type: DiskIDE},
		NICs: []NIC{{Type: "token-ring"}}}); err == nil {
		t.Error("unknown NIC type should fail")
	}
}

func TestMACAllocatorUniqueAndStable(t *testing.T) {
	a := NewMACAllocator()
	seen := map[string]bool{}
	for i := 0; i < 300; i++ {
		m := a.Next()
		if seen[m] {
			t.Fatalf("duplicate MAC %s", m)
		}
		seen[m] = true
		if !strings.HasPrefix(m, "00:50:8b:") || len(m) != 17 {
			t.Fatalf("malformed MAC %s", m)
		}
	}
	b := NewMACAllocator()
	if b.Next() != "00:50:8b:00:00:00" {
		t.Error("allocator not deterministic")
	}
}

func TestReserveRejectsMalformedMACs(t *testing.T) {
	// A prefix match used to accept over-long or garbage-tailed MACs and
	// silently reserve the slot named by their first three trailing octets;
	// a fresh allocator must still hand out slot 0 after seeing them.
	bad := []string{
		"00:50:8b:aa:bb:cc:dd",   // over-long: one octet too many
		"00:50:8b:aa:bb:cczz",    // trailing garbage fused to the last octet
		"00:50:8b:aa:bb:cc junk", // trailing garbage after a space
		"00:50:8b:aa:bb",         // truncated
		"00:50:8b:aa:bb:c",       // short final octet
		"00:50:8b:aa:bb:cg",      // non-hex digit
		"02:00:00:aa:bb:cc",      // different OUI
	}
	for _, m := range bad {
		a := NewMACAllocator()
		a.Reserve(m)
		if got := a.Next(); got != "00:50:8b:00:00:00" {
			t.Errorf("Reserve(%q) shifted allocation to %s; malformed MACs must be ignored", m, got)
		}
	}
	// Well-formed reservations (any case, surrounding space) still advance.
	a := NewMACAllocator()
	a.Reserve(" 00:50:8B:00:00:05 ")
	if got := a.Next(); got != "00:50:8b:00:00:06" {
		t.Errorf("valid reservation ignored: next = %s, want 00:50:8b:00:00:06", got)
	}
}

func TestProfileAccessors(t *testing.T) {
	macs := NewMACAllocator()
	p := PIIICompute(macs, 1000)
	if p.EthernetMAC() == "" || p.EthernetMbps() != 100 {
		t.Errorf("Ethernet accessors: %q %d", p.EthernetMAC(), p.EthernetMbps())
	}
	if !p.HasMyrinet() {
		t.Error("PIII compute should have Myrinet")
	}
	var none Profile
	if none.EthernetMAC() != "" || none.EthernetMbps() != 0 || none.HasMyrinet() {
		t.Error("empty profile accessors should be zero")
	}
}

func TestCatalogMatchesMeteorHeterogeneity(t *testing.T) {
	macs := NewMACAllocator()
	cat := Catalog(macs)
	if len(cat) != 7 {
		t.Fatalf("catalog has %d node types, want 7 (§3.1)", len(cat))
	}
	arches := map[string]bool{}
	vendors := map[string]bool{}
	disks := map[DiskType]bool{}
	macsSeen := map[string]bool{}
	for _, p := range cat {
		arches[p.Arch] = true
		vendors[p.Vendor] = true
		disks[p.Disk.Type] = true
		for _, n := range p.NICs {
			if macsSeen[n.MAC] {
				t.Errorf("duplicate MAC %s in catalog", n.MAC)
			}
			macsSeen[n.MAC] = true
		}
		if _, err := Detect(p); err != nil {
			t.Errorf("catalog profile %q does not probe: %v", p.Model, err)
		}
	}
	// "two different CPU architectures" is the minimum; we carry three
	// (i386, athlon, ia64 — athlon is a distinct kickstart arch).
	if len(arches) < 2 {
		t.Errorf("arches = %v, want at least 2", arches)
	}
	if len(vendors) != 3 {
		t.Errorf("vendors = %v, want 3", vendors)
	}
	if len(disks) != 3 {
		t.Errorf("disk types = %v, want 3", disks)
	}
}

func TestFrontendIsDualHomed(t *testing.T) {
	macs := NewMACAllocator()
	fe := Frontend(macs)
	eth := 0
	for _, n := range fe.NICs {
		if n.Type == NICEthernet {
			eth++
		}
	}
	if eth != 2 {
		t.Errorf("frontend has %d Ethernet NICs, want 2 (dual-homed)", eth)
	}
	if fe.CPUs != 2 || fe.CPUMHz != 733 {
		t.Errorf("frontend should be the paper's dual 733 MHz PIII: %+v", fe)
	}
}

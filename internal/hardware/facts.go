package hardware

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the vocabulary of the facts-driven inventory loop: the wire
// format a node's first-boot agent reports about itself (Facts), and the
// order-insensitive comparator the frontend runs against the profile the
// database expects (DiffFacts). The comparator is deliberately conservative
// about what it calls actionable: a wrong architecture, disk, or NIC set is
// something a reinstall re-probes and fixes, while CPU count and memory
// readings wobble with kernel reservations and flaky DMI tables — those are
// recorded, never remediated.

// Facts is the agent's report: the identity it installed under plus what its
// hardware probe actually saw.
type Facts struct {
	MAC    string `json:"mac"`
	Name   string `json:"name"`
	Arch   string `json:"arch"`
	CPUs   int    `json:"cpus"`
	CPUMHz int    `json:"cpu_mhz,omitempty"`
	MemMB  int    `json:"mem_mb"`
	Disk   Disk   `json:"disk"`
	NICs   []NIC  `json:"nics"`
}

// FactsFromProfile builds the report for a probed profile under the node's
// management identity.
func FactsFromProfile(p Profile, mac, name string) Facts {
	return Facts{
		MAC: mac, Name: name, Arch: p.Arch, CPUs: p.CPUs, CPUMHz: p.CPUMHz,
		MemMB: p.MemMB, Disk: p.Disk, NICs: append([]NIC(nil), p.NICs...),
	}
}

// Drift is one field where a node's reported facts diverge from the profile
// the database expects. Actionable drift is what a reinstall's fresh
// hardware probe would correct; everything else is inventory-only.
type Drift struct {
	Field      string `json:"field"` // "arch", "cpus", "mem_mb", "disk", "nics"
	Expected   string `json:"expected"`
	Got        string `json:"got"`
	Actionable bool   `json:"actionable"`
}

// DefaultMemTolerancePct is how far (in percent) a reported MemMB may sit
// from the expected value before it counts as drift at all. Kernels reserve
// memory, BIOSes round it; a 5% band keeps that noise out of the timeline.
const DefaultMemTolerancePct = 5

// CanonicalNICs renders a NIC set in canonical form: one "type/mac/mbps"
// entry per NIC with the MAC lower-cased, sorted. Two hardware-identical NIC
// sets canonicalize identically no matter what order the probe enumerated
// them in or how the firmware cased the addresses.
func CanonicalNICs(nics []NIC) []string {
	out := make([]string, len(nics))
	for i, n := range nics {
		out[i] = fmt.Sprintf("%s/%s/%d", n.Type, strings.ToLower(n.MAC), n.Mbps)
	}
	sort.Strings(out)
	return out
}

// DiskString renders a disk for drift details.
func DiskString(d Disk) string { return fmt.Sprintf("%s/%dMB", d.Type, d.SizeMB) }

// DiffFacts compares what a node reported against what the database expects
// and returns one Drift per divergent field, in a fixed field order. The
// comparison is order-insensitive where hardware enumeration order is
// meaningless (NICs) and case-insensitive on MAC addresses; memTolerancePct
// (<= 0 means DefaultMemTolerancePct) suppresses within-tolerance MemMB
// differences entirely.
func DiffFacts(expected Profile, got Facts, memTolerancePct int) []Drift {
	if memTolerancePct <= 0 {
		memTolerancePct = DefaultMemTolerancePct
	}
	var out []Drift
	if !strings.EqualFold(expected.Arch, got.Arch) {
		out = append(out, Drift{Field: "arch", Expected: expected.Arch, Got: got.Arch, Actionable: true})
	}
	if expected.CPUs != got.CPUs {
		out = append(out, Drift{Field: "cpus",
			Expected: fmt.Sprintf("%d", expected.CPUs), Got: fmt.Sprintf("%d", got.CPUs)})
	}
	if d := expected.MemMB - got.MemMB; d*100 > expected.MemMB*memTolerancePct ||
		-d*100 > expected.MemMB*memTolerancePct {
		out = append(out, Drift{Field: "mem_mb",
			Expected: fmt.Sprintf("%d", expected.MemMB), Got: fmt.Sprintf("%d", got.MemMB)})
	}
	if expected.Disk.Type != got.Disk.Type || expected.Disk.SizeMB != got.Disk.SizeMB {
		out = append(out, Drift{Field: "disk",
			Expected: DiskString(expected.Disk), Got: DiskString(got.Disk), Actionable: true})
	}
	want, have := CanonicalNICs(expected.NICs), CanonicalNICs(got.NICs)
	if strings.Join(want, ";") != strings.Join(have, ";") {
		out = append(out, Drift{Field: "nics",
			Expected: strings.Join(want, ";"), Got: strings.Join(have, ";"), Actionable: true})
	}
	return out
}

// Actionable reports whether any drift in the set warrants remediation.
func Actionable(ds []Drift) bool {
	for _, d := range ds {
		if d.Actionable {
			return true
		}
	}
	return false
}

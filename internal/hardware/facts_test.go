package hardware

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// randomNICs builds a random NIC set: 1-6 interfaces with random types,
// hex MACs, and link speeds.
func randomNICs(rng *rand.Rand) []NIC {
	types := []NICType{NICEthernet, NICMyrinet}
	speeds := []int{10, 100, 1000, 1280}
	nics := make([]NIC, 1+rng.Intn(6))
	for i := range nics {
		mac := fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x",
			rng.Intn(256), rng.Intn(256), rng.Intn(256),
			rng.Intn(256), rng.Intn(256), rng.Intn(256))
		nics[i] = NIC{Type: types[rng.Intn(len(types))], MAC: mac, Mbps: speeds[rng.Intn(len(speeds))]}
	}
	return nics
}

// randomProfile builds a random but plausible hardware profile.
func randomProfile(rng *rand.Rand) Profile {
	arches := []string{"i386", "athlon", "ia64"}
	return Profile{
		Arch:  arches[rng.Intn(len(arches))],
		CPUs:  1 + rng.Intn(4),
		MemMB: 256 + rng.Intn(65536),
		Disk:  Disk{Type: DiskSCSI, SizeMB: 1000 + rng.Intn(100000)},
		NICs:  randomNICs(rng),
	}
}

// TestDiffFactsOrderInsensitive: hardware probes enumerate NICs in whatever
// order the bus scan happens to walk, and firmware cases MAC addresses
// arbitrarily — neither may ever count as drift. Property-style over seeded
// random profiles: a report that shuffles the NIC set and flips MAC casing
// diffs clean.
func TestDiffFactsOrderInsensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		p := randomProfile(rng)
		f := FactsFromProfile(p, "00:50:8b:00:00:01", "compute-0-0")
		rng.Shuffle(len(f.NICs), func(i, j int) { f.NICs[i], f.NICs[j] = f.NICs[j], f.NICs[i] })
		for i := range f.NICs {
			if rng.Intn(2) == 0 {
				f.NICs[i].MAC = strings.ToUpper(f.NICs[i].MAC)
			}
		}
		if ds := DiffFacts(p, f, 0); len(ds) != 0 {
			t.Fatalf("trial %d: reordered/recased identical hardware flagged as drift: %+v", trial, ds)
		}
	}
}

// TestDiffFactsNICChangeIsActionable: any real change to the NIC set — one
// interface missing, an extra one, a different link speed — is actionable
// drift on exactly the nics field.
func TestDiffFactsNICChangeIsActionable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		p := randomProfile(rng)
		f := FactsFromProfile(p, "00:50:8b:00:00:01", "compute-0-0")
		switch rng.Intn(3) {
		case 0: // drop one
			i := rng.Intn(len(f.NICs))
			f.NICs = append(f.NICs[:i], f.NICs[i+1:]...)
		case 1: // grow one
			f.NICs = append(f.NICs, NIC{Type: NICEthernet, MAC: "de:ad:be:ef:00:00", Mbps: 1000})
		default: // perturb a link speed
			f.NICs[rng.Intn(len(f.NICs))].Mbps += 7
		}
		ds := DiffFacts(p, f, 0)
		if len(ds) != 1 || ds[0].Field != "nics" || !ds[0].Actionable {
			t.Fatalf("trial %d: NIC change diffed as %+v, want one actionable nics drift", trial, ds)
		}
	}
}

// TestDiffFactsMemTolerance: MemMB readings inside the tolerance band are
// not drift at all (kernel reservations, DMI rounding); outside the band
// they are drift but never actionable. Property-style around the exact
// integer boundary.
func TestDiffFactsMemTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const pct = DefaultMemTolerancePct
	for trial := 0; trial < 500; trial++ {
		p := randomProfile(rng)
		delta := rng.Intn(p.MemMB/5) - p.MemMB/10 // anywhere within ±10%
		f := FactsFromProfile(p, "00:50:8b:00:00:01", "compute-0-0")
		f.MemMB = p.MemMB + delta
		wantDrift := delta*100 > p.MemMB*pct || -delta*100 > p.MemMB*pct
		ds := DiffFacts(p, f, 0)
		switch {
		case !wantDrift && len(ds) != 0:
			t.Fatalf("trial %d: mem %d%+d (within %d%%) flagged: %+v", trial, p.MemMB, delta, pct, ds)
		case wantDrift && (len(ds) != 1 || ds[0].Field != "mem_mb"):
			t.Fatalf("trial %d: mem %d%+d diffed as %+v, want one mem_mb drift", trial, p.MemMB, delta, ds)
		case wantDrift && ds[0].Actionable:
			t.Fatalf("trial %d: mem_mb drift marked actionable; memory wobble must never trigger a reinstall", trial)
		}
	}
}

// TestDiffFactsClassification pins the actionable/benign split per field:
// arch, disk, and NICs warrant a reinstall; CPU count never does, and
// architecture comparison ignores case.
func TestDiffFactsClassification(t *testing.T) {
	base := Profile{
		Arch: "i386", CPUs: 2, MemMB: 1024,
		Disk: Disk{Type: DiskSCSI, SizeMB: 9000},
		NICs: []NIC{{Type: NICEthernet, MAC: "00:50:8b:aa:bb:cc", Mbps: 100}},
	}
	report := func(mut func(*Facts)) Facts {
		f := FactsFromProfile(base, "00:50:8b:aa:bb:cc", "compute-0-0")
		mut(&f)
		return f
	}
	cases := []struct {
		name       string
		facts      Facts
		field      string
		actionable bool
	}{
		{"arch", report(func(f *Facts) { f.Arch = "ia64" }), "arch", true},
		{"arch-case", report(func(f *Facts) { f.Arch = "I386" }), "", false},
		{"cpus", report(func(f *Facts) { f.CPUs = 4 }), "cpus", false},
		{"disk-size", report(func(f *Facts) { f.Disk.SizeMB = 4500 }), "disk", true},
		{"disk-type", report(func(f *Facts) { f.Disk.Type = DiskIDE }), "disk", true},
	}
	for _, tc := range cases {
		ds := DiffFacts(base, tc.facts, 0)
		if tc.field == "" {
			if len(ds) != 0 {
				t.Errorf("%s: want clean diff, got %+v", tc.name, ds)
			}
			continue
		}
		if len(ds) != 1 || ds[0].Field != tc.field {
			t.Errorf("%s: diff = %+v, want one %s drift", tc.name, ds, tc.field)
			continue
		}
		if ds[0].Actionable != tc.actionable {
			t.Errorf("%s: actionable = %v, want %v", tc.name, ds[0].Actionable, tc.actionable)
		}
		if got := Actionable(ds); got != tc.actionable {
			t.Errorf("%s: Actionable() = %v, want %v", tc.name, got, tc.actionable)
		}
	}
}

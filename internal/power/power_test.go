package power

import (
	"errors"
	"strings"
	"testing"
)

func TestHardCycleInvokesTarget(t *testing.T) {
	p := NewPDU("pdu-0-0")
	cycled := 0
	p.Connect(4, "compute-0-3", TargetFunc(func() { cycled++ }))
	if err := p.HardCycle(4); err != nil {
		t.Fatal(err)
	}
	if cycled != 1 {
		t.Errorf("cycled = %d", cycled)
	}
	hist := p.History()
	if len(hist) != 1 || !strings.Contains(hist[0], "compute-0-3") {
		t.Errorf("history = %v", hist)
	}
}

func TestHardCycleUnwiredOutlet(t *testing.T) {
	p := NewPDU("pdu-0-0")
	if err := p.HardCycle(9); err == nil {
		t.Error("unwired outlet should error")
	}
}

func TestInterceptorVetoesCycle(t *testing.T) {
	p := NewPDU("pdu-0-0")
	cycled := 0
	p.Connect(4, "compute-0-3", TargetFunc(func() { cycled++ }))
	fail := true
	p.SetInterceptor(func(outlet int, label string) error {
		if outlet != 4 || label != "compute-0-3" {
			t.Errorf("interceptor saw outlet %d label %q", outlet, label)
		}
		if fail {
			return errors.New("relay stuck")
		}
		return nil
	})
	if err := p.HardCycle(4); err == nil {
		t.Fatal("vetoed cycle should error")
	}
	if cycled != 0 {
		t.Errorf("vetoed cycle still reached the target (%d)", cycled)
	}
	fail = false
	if err := p.HardCycle(4); err != nil {
		t.Fatal(err)
	}
	if cycled != 1 {
		t.Errorf("cycled = %d", cycled)
	}
	hist := p.History()
	if len(hist) != 2 || !strings.Contains(hist[0], "FAILED") || strings.Contains(hist[1], "FAILED") {
		t.Errorf("history = %v", hist)
	}
	p.SetInterceptor(nil)
	if err := p.HardCycle(4); err != nil {
		t.Errorf("cleared interceptor: %v", err)
	}
}

func TestOutletForAndDisconnect(t *testing.T) {
	p := NewPDU("pdu-0-0")
	p.Connect(1, "compute-0-0", TargetFunc(func() {}))
	p.Connect(2, "compute-0-1", TargetFunc(func() {}))
	if n, ok := p.OutletFor("compute-0-1"); !ok || n != 2 {
		t.Errorf("OutletFor = %d, %v", n, ok)
	}
	if got := p.Outlets(); len(got) != 2 || got[0] != 1 {
		t.Errorf("Outlets = %v", got)
	}
	p.Disconnect(2)
	if _, ok := p.OutletFor("compute-0-1"); ok {
		t.Error("disconnected outlet still resolvable")
	}
	if err := p.HardCycle(2); err == nil {
		t.Error("cycling a disconnected outlet should fail")
	}
}

// Package power models the network-enabled power distribution unit of §4:
// when a compute node stops responding over Ethernet, the administrator
// remotely executes "a hard power cycle command for its outlet". On a Rocks
// node a hard power cycle forces reinstallation, so the PDU is the
// last-resort management path before the crash cart.
package power

import (
	"fmt"
	"sort"
	"sync"
)

// Target is the machine behind an outlet. HardPowerCycle must cut power and
// restart the machine; Rocks nodes reinstall on the way back up.
type Target interface {
	HardPowerCycle()
}

// TargetFunc adapts a function to the Target interface.
type TargetFunc func()

// HardPowerCycle invokes the function.
func (f TargetFunc) HardPowerCycle() { f() }

// PDU is one network-enabled power distribution unit.
type PDU struct {
	name string

	mu          sync.Mutex
	outlets     map[int]outlet
	history     []string
	interceptor func(outlet int, label string) error
	observer    func(outlet int, label string, err error)
}

type outlet struct {
	label  string
	target Target
}

// NewPDU creates a PDU with no connected outlets.
func NewPDU(name string) *PDU {
	return &PDU{name: name, outlets: make(map[int]outlet)}
}

// Connect wires an outlet to a target with a human-readable label
// (typically the node name).
func (p *PDU) Connect(outletNum int, label string, t Target) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.outlets[outletNum] = outlet{label: label, target: t}
}

// Disconnect frees an outlet.
func (p *PDU) Disconnect(outletNum int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.outlets, outletNum)
}

// SetInterceptor installs a hook consulted before every hard cycle; a
// non-nil return makes the cycle fail without touching the target — the
// "relay clicked but nothing happened" PDU firmware failure that fault
// injection manufactures and the supervisor must survive. A nil hook
// clears it.
func (p *PDU) SetInterceptor(hook func(outlet int, label string) error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.interceptor = hook
}

// SetObserver installs a hook notified after every hard-cycle attempt on a
// wired outlet — err is nil when the relay fired, non-nil when the cycle
// was vetoed or failed. The cluster uses it to publish pdu-sourced
// lifecycle events. A nil hook clears it.
func (p *PDU) SetObserver(hook func(outlet int, label string, err error)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.observer = hook
}

// HardCycle power-cycles the device on an outlet. It returns an error for
// an unwired outlet — the administrator fat-fingered the outlet number —
// or when the interceptor vetoes the command.
func (p *PDU) HardCycle(outletNum int) error {
	p.mu.Lock()
	o, ok := p.outlets[outletNum]
	hook := p.interceptor
	observer := p.observer
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("power: %s has nothing on outlet %d", p.name, outletNum)
	}
	if hook != nil {
		if err := hook(outletNum, o.label); err != nil {
			p.mu.Lock()
			p.history = append(p.history, fmt.Sprintf("hard cycle outlet %d (%s) FAILED: %v", outletNum, o.label, err))
			p.mu.Unlock()
			if observer != nil {
				observer(outletNum, o.label, err)
			}
			return err
		}
	}
	p.mu.Lock()
	p.history = append(p.history, fmt.Sprintf("hard cycle outlet %d (%s)", outletNum, o.label))
	p.mu.Unlock()
	if observer != nil {
		observer(outletNum, o.label, nil)
	}
	o.target.HardPowerCycle()
	return nil
}

// OutletFor returns the outlet number wired to the given label.
func (p *PDU) OutletFor(label string) (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for num, o := range p.outlets {
		if o.label == label {
			return num, true
		}
	}
	return 0, false
}

// Outlets lists wired outlet numbers in order.
func (p *PDU) Outlets() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, 0, len(p.outlets))
	for n := range p.outlets {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// History returns the audit trail of cycle commands.
func (p *PDU) History() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.history...)
}

package nfs

import (
	"strings"
	"sync"
	"testing"
)

func TestMountReadWrite(t *testing.T) {
	s := NewServer()
	s.AddExport("/export/home")
	m, err := s.Mount("/export/home", "/home", "compute-0-0")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteFile("/home/bruno/job.out", []byte("results")); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadFile("/home/bruno/job.out")
	if err != nil || string(got) != "results" {
		t.Errorf("ReadFile = %q, %v", got, err)
	}
	if _, err := m.ReadFile("/home/missing"); err == nil {
		t.Error("missing file readable")
	}
	if err := m.WriteFile("/tmp/outside", nil); err == nil {
		t.Error("write outside mount accepted")
	}
}

func TestSharedVisibilityAcrossNodes(t *testing.T) {
	// Home directories live on the frontend: a write from one node is
	// immediately visible to all others, and survives any node reinstall.
	s := NewServer()
	s.AddExport("/export/home")
	m0, _ := s.Mount("/export/home", "/home", "compute-0-0")
	m1, _ := s.Mount("/export/home", "/home", "compute-0-1")
	if err := m0.WriteFile("/home/bruno/data", []byte("from node 0")); err != nil {
		t.Fatal(err)
	}
	got, err := m1.ReadFile("/home/bruno/data")
	if err != nil || string(got) != "from node 0" {
		t.Errorf("cross-node read = %q, %v", got, err)
	}
	if got := m1.List(); len(got) != 1 || got[0] != "/home/bruno/data" {
		t.Errorf("List = %v", got)
	}
}

func TestMountUnknownExportFails(t *testing.T) {
	s := NewServer()
	if _, err := s.Mount("/export/ghost", "/home", "c0"); err == nil {
		t.Error("mount of unknown export accepted")
	}
}

func TestExportsAndStats(t *testing.T) {
	s := NewServer()
	s.AddExport("/export/home")
	s.AddExport("/export/apps")
	s.AddExport("/export/home") // idempotent
	if got := s.Exports(); len(got) != 2 || got[0] != "/export/apps" {
		t.Errorf("Exports = %v", got)
	}
	m, _ := s.Mount("/export/home", "/home", "c0")
	m.WriteFile("/home/a", []byte("x"))
	m.ReadFile("/home/a")
	m.ReadFile("/home/a")
	r, w := s.Stats()
	if r != 2 || w != 1 {
		t.Errorf("stats = %d reads, %d writes", r, w)
	}
}

func TestConcurrentClients(t *testing.T) {
	s := NewServer()
	s.AddExport("/export/home")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, _ := s.Mount("/export/home", "/home", "node")
			for j := 0; j < 25; j++ {
				m.WriteFile("/home/user/f"+strings.Repeat("x", i), []byte("data"))
				m.ReadFile("/home/user/f" + strings.Repeat("x", i))
			}
		}(i)
	}
	wg.Wait()
	m, _ := s.Mount("/export/home", "/home", "checker")
	if got := m.List(); len(got) != 8 {
		t.Errorf("files = %v", got)
	}
}

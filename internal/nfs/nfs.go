// Package nfs models the one unscalable service the paper admits to (§5):
// the frontend exports user home directories to every compute node over
// NFS. An Export is the server-side file tree; a Mount is a node's view of
// it. Because mounts share the export's storage, a write from one node is
// immediately visible on every other — the property parallel jobs rely on
// and the reason reinstalls don't lose user data (home directories never
// live on a compute node's disk).
package nfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Export is a served directory tree, keyed by path relative to the export
// root (e.g. "bruno/results.txt" under /export/home).
type Export struct {
	path string

	mu    sync.RWMutex
	files map[string][]byte
	// reads/writes count operations for the load accounting that motivates
	// the paper's search for a scalable alternative.
	reads, writes int
}

// Server is the frontend's NFS daemon: a set of exports.
type Server struct {
	mu      sync.RWMutex
	exports map[string]*Export
}

// NewServer creates an NFS server with no exports.
func NewServer() *Server {
	return &Server{exports: make(map[string]*Export)}
}

// AddExport starts serving a directory (e.g. "/export/home").
func (s *Server) AddExport(path string) *Export {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.exports[path]; ok {
		return e
	}
	e := &Export{path: path, files: make(map[string][]byte)}
	s.exports[path] = e
	return e
}

// Lookup finds an export by path.
func (s *Server) Lookup(path string) (*Export, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.exports[path]
	return e, ok
}

// Exports lists export paths, sorted (the /etc/exports report).
func (s *Server) Exports() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.exports))
	for p := range s.exports {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Stats returns cumulative (reads, writes) over all exports.
func (s *Server) Stats() (reads, writes int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.exports {
		e.mu.RLock()
		reads += e.reads
		writes += e.writes
		e.mu.RUnlock()
	}
	return
}

// Mount is one node's attachment of an export at a local mountpoint.
type Mount struct {
	export     *Export
	mountPoint string // e.g. "/home"
	host       string // mounting node, for diagnostics
}

// Mount attaches an export; it fails if the export does not exist — the
// common-mode NFS failure §4 describes (nodes hang, fix the service, power
// cycle).
func (s *Server) Mount(exportPath, mountPoint, host string) (*Mount, error) {
	e, ok := s.Lookup(exportPath)
	if !ok {
		return nil, fmt.Errorf("nfs: %s not exported", exportPath)
	}
	return &Mount{export: e, mountPoint: mountPoint, host: host}, nil
}

// rel converts an absolute path under the mountpoint to an export-relative
// key.
func (m *Mount) rel(path string) (string, error) {
	prefix := strings.TrimSuffix(m.mountPoint, "/") + "/"
	if !strings.HasPrefix(path, prefix) {
		return "", fmt.Errorf("nfs: %s is outside mount %s", path, m.mountPoint)
	}
	return strings.TrimPrefix(path, prefix), nil
}

// WriteFile stores a file through the mount.
func (m *Mount) WriteFile(path string, data []byte) error {
	key, err := m.rel(path)
	if err != nil {
		return err
	}
	m.export.mu.Lock()
	defer m.export.mu.Unlock()
	m.export.files[key] = append([]byte(nil), data...)
	m.export.writes++
	return nil
}

// ReadFile retrieves a file through the mount.
func (m *Mount) ReadFile(path string) ([]byte, error) {
	key, err := m.rel(path)
	if err != nil {
		return nil, err
	}
	m.export.mu.Lock()
	defer m.export.mu.Unlock()
	m.export.reads++
	data, ok := m.export.files[key]
	if !ok {
		return nil, fmt.Errorf("nfs: %s: no such file", path)
	}
	return append([]byte(nil), data...), nil
}

// List returns mounted paths under the mountpoint, sorted.
func (m *Mount) List() []string {
	m.export.mu.RLock()
	defer m.export.mu.RUnlock()
	out := make([]string, 0, len(m.export.files))
	for k := range m.export.files {
		out = append(out, strings.TrimSuffix(m.mountPoint, "/")+"/"+k)
	}
	sort.Strings(out)
	return out
}

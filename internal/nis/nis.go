// Package nis implements the Network Information Service slice Rocks uses:
// "User account configuration (e.g., passwords and home directory
// locations) are synchronized from the frontend node to compute nodes with
// the Network Information Service" (§5). The frontend runs a Domain
// (ypserv); each compute node holds a Binding (ypbind) that pulls the
// passwd map when it is stale.
package nis

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// User is one account in the passwd map.
type User struct {
	Name  string
	UID   int
	GID   int
	Home  string
	Shell string
}

// passwdLine renders the user in passwd(5) format.
func (u User) passwdLine() string {
	shell := u.Shell
	if shell == "" {
		shell = "/bin/bash"
	}
	return fmt.Sprintf("%s:x:%d:%d::%s:%s", u.Name, u.UID, u.GID, u.Home, shell)
}

// Domain is the master map served by the frontend.
type Domain struct {
	name string

	mu      sync.RWMutex
	users   map[string]User
	version int
}

// NewDomain creates an empty NIS domain (Rocks calls its domain "rocks").
func NewDomain(name string) *Domain {
	return &Domain{name: name, users: make(map[string]User)}
}

// Name returns the domain name.
func (d *Domain) Name() string { return d.name }

// AddUser installs or updates an account, bumping the map version.
func (d *Domain) AddUser(u User) error {
	if u.Name == "" {
		return fmt.Errorf("nis: user needs a name")
	}
	if u.Home == "" {
		u.Home = "/home/" + u.Name
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.users[u.Name] = u
	d.version++
	return nil
}

// RemoveUser deletes an account; it reports whether the user existed.
func (d *Domain) RemoveUser(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.users[name]; !ok {
		return false
	}
	delete(d.users, name)
	d.version++
	return true
}

// Lookup finds one account.
func (d *Domain) Lookup(name string) (User, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	u, ok := d.users[name]
	return u, ok
}

// Version returns the map generation; it increases on every change.
func (d *Domain) Version() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.version
}

// PasswdMap renders the full passwd map plus its version.
func (d *Domain) PasswdMap() (string, int) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.users))
	for n := range d.users {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		b.WriteString(d.users[n].passwdLine())
		b.WriteByte('\n')
	}
	return b.String(), d.version
}

// Binding is a node's ypbind state: which domain it follows and the map
// version it last pulled.
type Binding struct {
	domain *Domain

	mu      sync.Mutex
	version int
	passwd  string
}

// Bind attaches a client to a domain (what the nis-client %post's
// authconfig accomplishes).
func Bind(d *Domain) *Binding {
	return &Binding{domain: d, version: -1}
}

// Fresh reports whether the cached map matches the master.
func (b *Binding) Fresh() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.version == b.domain.Version()
}

// Refresh pulls the map if stale and returns it; the bool reports whether a
// transfer happened. This models ypbind's periodic map pull — the paper's
// "dynamic services for frequently changing state".
func (b *Binding) Refresh() (string, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.version == b.domain.Version() {
		return b.passwd, false
	}
	b.passwd, b.version = b.domain.PasswdMap()
	return b.passwd, true
}

// LookupUser resolves an account through the binding, refreshing first.
func (b *Binding) LookupUser(name string) (User, bool) {
	b.Refresh()
	return b.domain.Lookup(name)
}

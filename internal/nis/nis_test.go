package nis

import (
	"strings"
	"sync"
	"testing"
)

func TestAddLookupRemove(t *testing.T) {
	d := NewDomain("rocks")
	if err := d.AddUser(User{Name: "bruno", UID: 500, GID: 500}); err != nil {
		t.Fatal(err)
	}
	u, ok := d.Lookup("bruno")
	if !ok || u.Home != "/home/bruno" {
		t.Errorf("Lookup = %+v, %v (default home expected)", u, ok)
	}
	if !d.RemoveUser("bruno") || d.RemoveUser("bruno") {
		t.Error("RemoveUser semantics wrong")
	}
	if err := d.AddUser(User{}); err == nil {
		t.Error("nameless user accepted")
	}
}

func TestPasswdMapFormat(t *testing.T) {
	d := NewDomain("rocks")
	d.AddUser(User{Name: "mason", UID: 501, GID: 501})
	d.AddUser(User{Name: "bruno", UID: 500, GID: 500, Shell: "/bin/tcsh"})
	m, v := d.PasswdMap()
	lines := strings.Split(strings.TrimRight(m, "\n"), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "bruno:x:500:500::/home/bruno:/bin/tcsh") {
		t.Errorf("map = %q", m)
	}
	if v != 2 {
		t.Errorf("version = %d, want 2 (two changes)", v)
	}
}

func TestBindingRefreshOnlyWhenStale(t *testing.T) {
	d := NewDomain("rocks")
	d.AddUser(User{Name: "bruno", UID: 500, GID: 500})
	b := Bind(d)
	if b.Fresh() {
		t.Error("new binding should be stale")
	}
	_, transferred := b.Refresh()
	if !transferred {
		t.Error("first refresh must transfer")
	}
	if _, transferred = b.Refresh(); transferred {
		t.Error("second refresh without changes must not transfer")
	}
	if !b.Fresh() {
		t.Error("binding should be fresh after refresh")
	}
	// The paper's scenario: add an account on the frontend, nodes pick it
	// up through NIS without any reinstall.
	d.AddUser(User{Name: "papadopoulos", UID: 502, GID: 502})
	if b.Fresh() {
		t.Error("binding should go stale after a master change")
	}
	m, transferred := b.Refresh()
	if !transferred || !strings.Contains(m, "papadopoulos") {
		t.Errorf("refresh after change: %v, %q", transferred, m)
	}
	if u, ok := b.LookupUser("papadopoulos"); !ok || u.UID != 502 {
		t.Errorf("LookupUser = %+v, %v", u, ok)
	}
}

func TestConcurrentBindings(t *testing.T) {
	d := NewDomain("rocks")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			d.AddUser(User{Name: strings.Repeat("u", i+1), UID: 500 + i, GID: 500})
		}(i)
		go func() {
			defer wg.Done()
			b := Bind(d)
			for j := 0; j < 20; j++ {
				b.Refresh()
			}
		}()
	}
	wg.Wait()
	if m, _ := d.PasswdMap(); strings.Count(m, "\n") != 4 {
		t.Errorf("map = %q", m)
	}
}

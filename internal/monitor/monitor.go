// Package monitor implements the health-monitoring side of the paper's
// management story. §4: with no dedicated management network, "an
// administrator is 'in the dark' from the moment the node is powered on (or
// reset) to the time Linux brings up the Ethernet network"; a node that
// stays unreachable either has a hardware fault or fell to a common-mode
// service failure, and the remedy is a remote power cycle. The monitor
// periodically probes every node over the management Ethernet, tracks when
// each was last reachable, and classifies nodes so the administrator knows
// exactly which outlets to cycle.
package monitor

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"rocks/internal/lifecycle"
)

// Pinger answers reachability probes — the cluster provides one backed by
// its management Ethernet.
type Pinger interface {
	// Ping reports whether the host currently answers on the network, and
	// a short state description for display (e.g. "up", "installing").
	Ping(host string) (bool, string)
}

// PingerFunc adapts a function to Pinger.
type PingerFunc func(host string) (bool, string)

// Ping calls the function.
func (f PingerFunc) Ping(host string) (bool, string) { return f(host) }

// Health classifies one host.
type Health string

// Health classes. Dark hosts have been unreachable longer than the
// configured patience — the §4 "physical intervention or power cycle"
// candidates.
const (
	HealthUp   Health = "up"
	HealthDark Health = "dark"
)

// HostStatus is the monitor's view of one host.
type HostStatus struct {
	Host     string
	Health   Health
	Detail   string // the pinger's state description from the last probe
	LastSeen time.Time
	// DarkFor is how long the host has been unreachable (zero when up).
	DarkFor time.Duration
}

// Monitor watches a fixed-or-growing set of hosts.
type Monitor struct {
	pinger   Pinger
	patience time.Duration
	now      func() time.Time // injectable clock for tests

	mu       sync.Mutex
	hosts    map[string]*hostRecord
	stopCh   chan struct{}
	stopped  bool
	running  bool
	interval time.Duration

	// bus receives up/dark transition events; published remembers the last
	// health class announced per host so steady state publishes nothing.
	bus       *lifecycle.Bus
	published map[string]Health
}

type hostRecord struct {
	lastSeen time.Time
	seenEver bool
	detail   string
	firstAdd time.Time
}

// New creates a monitor. patience is how long a host may be unreachable
// before it is reported dark; interval is the background probe period
// (zero disables the background loop; call Probe manually).
func New(p Pinger, patience, interval time.Duration) *Monitor {
	m := &Monitor{
		pinger:    p,
		patience:  patience,
		interval:  interval,
		now:       time.Now,
		hosts:     make(map[string]*hostRecord),
		stopCh:    make(chan struct{}),
		published: make(map[string]Health),
	}
	if interval > 0 {
		m.running = true
		go m.loop(context.Background())
	}
	return m
}

// PublishTo routes up/dark transitions onto the lifecycle bus. A host that
// crosses the patience threshold produces one dark event; a dark host that
// answers again produces one up event. Steady state is silent. Call before
// the first probe.
func (m *Monitor) PublishTo(bus *lifecycle.Bus) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bus = bus
}

// StartCtx starts the background probe loop under a context.Context: the
// loop exits when ctx is cancelled (or Stop is called), which is how the
// cluster's root context reaps every monitor on Close. interval <= 0 falls
// back to the interval given to New. Starting an already-running monitor is
// a no-op.
func (m *Monitor) StartCtx(ctx context.Context, interval time.Duration) {
	m.mu.Lock()
	if interval > 0 {
		m.interval = interval
	}
	if m.running || m.stopped || m.interval <= 0 {
		m.mu.Unlock()
		return
	}
	m.running = true
	m.mu.Unlock()
	go m.loop(ctx)
}

// SetClock injects a clock (tests).
func (m *Monitor) SetClock(now func() time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = now
}

// Watch adds hosts to the probe set; re-adding is a no-op.
func (m *Monitor) Watch(hosts ...string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, h := range hosts {
		if _, ok := m.hosts[h]; !ok {
			m.hosts[h] = &hostRecord{firstAdd: m.now()}
		}
	}
}

// Unwatch removes hosts (decommissioned nodes).
func (m *Monitor) Unwatch(hosts ...string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, h := range hosts {
		delete(m.hosts, h)
		delete(m.published, h)
	}
}

// Probe runs one probe pass over every watched host.
func (m *Monitor) Probe() {
	m.mu.Lock()
	names := make([]string, 0, len(m.hosts))
	for h := range m.hosts {
		names = append(names, h)
	}
	now := m.now
	m.mu.Unlock()

	for _, h := range names {
		ok, detail := m.pinger.Ping(h)
		m.mu.Lock()
		if rec, present := m.hosts[h]; present {
			rec.detail = detail
			if ok {
				rec.lastSeen = now()
				rec.seenEver = true
			}
		}
		m.mu.Unlock()
	}
	m.publishTransitions()
}

// publishTransitions diffs the current classification against what was last
// announced and publishes the deltas. A host first classified up is recorded
// silently — the cluster's own up event is authoritative for that edge; the
// monitor speaks when a host goes dark and when a dark host comes back.
func (m *Monitor) publishTransitions() {
	m.mu.Lock()
	bus := m.bus
	m.mu.Unlock()
	if bus == nil {
		return
	}
	for _, st := range m.Status() {
		m.mu.Lock()
		if _, watched := m.hosts[st.Host]; !watched {
			m.mu.Unlock()
			continue // unwatched between Status and here
		}
		prev, seen := m.published[st.Host]
		m.published[st.Host] = st.Health
		m.mu.Unlock()
		switch {
		case st.Health == HealthDark && prev != HealthDark:
			bus.Publish(lifecycle.Event{
				Node:   st.Host,
				Phase:  lifecycle.PhaseRun,
				Type:   lifecycle.EventDark,
				Source: "monitor",
				Detail: fmt.Sprintf("dark for %s (%s)", st.DarkFor.Round(time.Millisecond), st.Detail),
			})
		case st.Health == HealthUp && seen && prev == HealthDark:
			bus.Publish(lifecycle.Event{
				Node:   st.Host,
				Phase:  lifecycle.PhaseRun,
				Type:   lifecycle.EventUp,
				Source: "monitor",
				Detail: "answering again: " + st.Detail,
			})
		}
	}
}

func (m *Monitor) loop(ctx context.Context) {
	m.mu.Lock()
	interval := m.interval
	m.mu.Unlock()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-m.stopCh:
			return
		case <-t.C:
			m.Probe()
		}
	}
}

// Stop halts the background loop; idempotent.
func (m *Monitor) Stop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.stopped {
		m.stopped = true
		close(m.stopCh)
	}
}

// Status reports every watched host, sorted by name.
func (m *Monitor) Status() []HostStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	out := make([]HostStatus, 0, len(m.hosts))
	for h, rec := range m.hosts {
		st := HostStatus{Host: h, Detail: rec.detail, LastSeen: rec.lastSeen}
		ref := rec.lastSeen
		if !rec.seenEver {
			ref = rec.firstAdd
		}
		if dark := now.Sub(ref); dark > m.patience {
			st.Health = HealthDark
			st.DarkFor = dark
		} else {
			st.Health = HealthUp
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}

// Dark returns the hosts currently classified dark — the power-cycle list.
func (m *Monitor) Dark() []string {
	var out []string
	for _, st := range m.Status() {
		if st.Health == HealthDark {
			out = append(out, st.Host)
		}
	}
	return out
}

// Report renders the status table the CLI prints.
func (m *Monitor) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-6s %-12s %s\n", "HOST", "HEALTH", "STATE", "DARK-FOR")
	for _, st := range m.Status() {
		dark := "-"
		if st.DarkFor > 0 {
			dark = st.DarkFor.Round(time.Second).String()
		}
		fmt.Fprintf(&b, "%-14s %-6s %-12s %s\n", st.Host, st.Health, st.Detail, dark)
	}
	return b.String()
}

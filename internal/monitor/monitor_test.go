package monitor

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"rocks/internal/lifecycle"
)

// fakeNet is a controllable pinger.
type fakeNet struct {
	mu    sync.Mutex
	alive map[string]string // host → detail; absent = unreachable
}

func (f *fakeNet) set(host, detail string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.alive == nil {
		f.alive = map[string]string{}
	}
	if detail == "" {
		delete(f.alive, host)
	} else {
		f.alive[host] = detail
	}
}

func (f *fakeNet) Ping(host string) (bool, string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, ok := f.alive[host]
	if !ok {
		return false, "no response"
	}
	return true, d
}

// testClock is a manually advanced clock.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *testClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newTestMonitor(patience time.Duration) (*Monitor, *fakeNet, *testClock) {
	net := &fakeNet{}
	clock := &testClock{t: time.Unix(1000, 0)}
	m := New(net, patience, 0) // no background loop: tests drive Probe
	m.SetClock(clock.now)
	return m, net, clock
}

func TestHealthyHostStaysUp(t *testing.T) {
	m, net, clock := newTestMonitor(30 * time.Second)
	net.set("compute-0-0", "up")
	m.Watch("compute-0-0")
	m.Probe()
	clock.advance(10 * time.Second)
	m.Probe()
	st := m.Status()
	if len(st) != 1 || st[0].Health != HealthUp || st[0].Detail != "up" {
		t.Errorf("status = %+v", st)
	}
	if len(m.Dark()) != 0 {
		t.Errorf("dark = %v", m.Dark())
	}
}

func TestDarkDetectionAndRecovery(t *testing.T) {
	m, net, clock := newTestMonitor(30 * time.Second)
	net.set("compute-0-0", "up")
	m.Watch("compute-0-0")
	m.Probe()

	// The node wedges: unreachable past the patience window.
	net.set("compute-0-0", "")
	clock.advance(31 * time.Second)
	m.Probe()
	st := m.Status()[0]
	if st.Health != HealthDark || st.DarkFor < 31*time.Second {
		t.Fatalf("status = %+v", st)
	}
	if got := m.Dark(); len(got) != 1 || got[0] != "compute-0-0" {
		t.Errorf("Dark = %v", got)
	}
	// The administrator power-cycles it; it reinstalls and answers again.
	net.set("compute-0-0", "installing")
	m.Probe()
	if st := m.Status()[0]; st.Health != HealthUp || st.Detail != "installing" {
		t.Errorf("recovered status = %+v", st)
	}
}

func TestNeverSeenHostGoesDarkAfterPatience(t *testing.T) {
	m, _, clock := newTestMonitor(30 * time.Second)
	m.Watch("compute-0-9") // never answers
	m.Probe()
	if m.Status()[0].Health != HealthUp {
		t.Error("brand-new host should get the patience window")
	}
	clock.advance(31 * time.Second)
	m.Probe()
	if m.Status()[0].Health != HealthDark {
		t.Error("never-seen host should go dark after patience")
	}
}

func TestWatchUnwatch(t *testing.T) {
	m, net, _ := newTestMonitor(time.Minute)
	net.set("a", "up")
	m.Watch("a", "b")
	m.Watch("a") // idempotent
	if len(m.Status()) != 2 {
		t.Fatalf("status = %v", m.Status())
	}
	m.Unwatch("b")
	if len(m.Status()) != 1 {
		t.Errorf("status after unwatch = %v", m.Status())
	}
}

func TestReportFormat(t *testing.T) {
	m, net, clock := newTestMonitor(10 * time.Second)
	net.set("frontend-0", "up")
	m.Watch("frontend-0", "compute-0-0")
	m.Probe()
	clock.advance(time.Minute)
	m.Probe()
	r := m.Report()
	if !strings.Contains(r, "HOST") || !strings.Contains(r, "dark") || !strings.Contains(r, "frontend-0") {
		t.Errorf("report = %q", r)
	}
}

// TestFlappingHost: a host that bounces — answering, vanishing, answering
// again — must only be reported dark when an outage outlasts the patience
// window, and each recovery must reset the dark clock completely.
func TestFlappingHost(t *testing.T) {
	m, net, clock := newTestMonitor(30 * time.Second)
	m.Watch("compute-0-5")

	// Fast flapping: outages shorter than patience never show as dark.
	for i := 0; i < 5; i++ {
		net.set("compute-0-5", "up")
		m.Probe()
		clock.advance(10 * time.Second)
		net.set("compute-0-5", "")
		m.Probe()
		clock.advance(10 * time.Second)
		if st := m.Status()[0]; st.Health != HealthUp {
			t.Fatalf("flap %d: %+v; short outages must stay within patience", i, st)
		}
	}

	// A real outage: dark, with DarkFor measured from the last answer.
	net.set("compute-0-5", "")
	clock.advance(40 * time.Second)
	m.Probe()
	st := m.Status()[0]
	if st.Health != HealthDark || st.DarkFor < 40*time.Second {
		t.Fatalf("real outage: %+v", st)
	}

	// Recovery resets the clock: the next short outage is tolerated anew.
	net.set("compute-0-5", "up")
	m.Probe()
	if st := m.Status()[0]; st.Health != HealthUp || st.DarkFor != 0 {
		t.Fatalf("after recovery: %+v", st)
	}
	net.set("compute-0-5", "")
	clock.advance(20 * time.Second)
	m.Probe()
	if st := m.Status()[0]; st.Health != HealthUp {
		t.Errorf("dark clock did not reset after recovery: %+v", st)
	}
}

// TestConcurrentProbeStatusWatch hammers Probe, Status, Dark, Report, and
// Watch/Unwatch from concurrent goroutines. It asserts nothing beyond
// termination — its value is running under -race (the supervisor probes
// the same monitor the admin endpoints read).
func TestConcurrentProbeStatusWatch(t *testing.T) {
	m, net, clock := newTestMonitor(30 * time.Second)
	for _, h := range []string{"a", "b", "c", "d"} {
		net.set(h, "up")
		m.Watch(h)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	worker := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					f()
				}
			}
		}()
	}
	worker(m.Probe)
	worker(func() { m.Status() })
	worker(func() { m.Dark() })
	worker(func() { m.Report() })
	worker(func() { net.set("b", "installing"); net.set("b", "") })
	worker(func() { clock.advance(time.Millisecond) })
	worker(func() {
		m.Watch("transient")
		m.Unwatch("transient")
	})
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	// The permanent hosts must all still be tracked afterwards.
	if st := m.Status(); len(st) < 4 {
		t.Errorf("hosts lost during concurrency: %+v", st)
	}
}

func TestBackgroundLoop(t *testing.T) {
	net := &fakeNet{}
	net.set("n", "up")
	m := New(net, time.Minute, 2*time.Millisecond)
	defer m.Stop()
	m.Watch("n")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := m.Status(); len(st) == 1 && st[0].Detail == "up" {
			m.Stop()
			m.Stop() // idempotent
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("background loop never probed")
}

// TestTransitionEvents: the monitor publishes exactly one dark event when a
// host crosses the patience threshold and exactly one up event when it
// answers again — steady state and initial healthy classification are
// silent (the cluster's own up event owns that edge).
func TestTransitionEvents(t *testing.T) {
	m, net, clock := newTestMonitor(30 * time.Second)
	bus := lifecycle.NewBus(64)
	m.PublishTo(bus)
	net.set("compute-0-0", "up")
	m.Watch("compute-0-0")
	m.Probe()
	m.Probe() // steady state: still nothing
	if got := bus.Recent(lifecycle.Filter{}); len(got) != 0 {
		t.Fatalf("healthy host published %v", got)
	}

	net.set("compute-0-0", "")
	clock.advance(31 * time.Second)
	m.Probe()
	m.Probe() // still dark: no duplicate
	dark := bus.Recent(lifecycle.Filter{Type: lifecycle.EventDark})
	if len(dark) != 1 || dark[0].Node != "compute-0-0" || dark[0].Source != "monitor" {
		t.Fatalf("dark events = %v", dark)
	}

	net.set("compute-0-0", "up")
	m.Probe()
	m.Probe()
	up := bus.Recent(lifecycle.Filter{Type: lifecycle.EventUp})
	if len(up) != 1 || up[0].Node != "compute-0-0" || up[0].Phase != lifecycle.PhaseRun {
		t.Fatalf("up events = %v", up)
	}
}

// TestUnwatchForgetsPublishedState: re-watching a host after Unwatch starts
// a fresh patience window and a fresh transition history.
func TestUnwatchForgetsPublishedState(t *testing.T) {
	m, _, clock := newTestMonitor(30 * time.Second)
	bus := lifecycle.NewBus(64)
	m.PublishTo(bus)
	m.Watch("aa:bb") // watched by MAC pre-discovery, never answers
	clock.advance(31 * time.Second)
	m.Probe()
	if got := bus.Recent(lifecycle.Filter{Type: lifecycle.EventDark}); len(got) != 1 {
		t.Fatalf("dark events = %v", got)
	}
	// insert-ethers binds the name; the supervisor rebinds the watch.
	m.Unwatch("aa:bb")
	m.Watch("compute-0-0")
	m.Probe()
	// New identity gets its own patience window: no immediate dark event.
	if got := bus.Recent(lifecycle.Filter{Node: "compute-0-0"}); len(got) != 0 {
		t.Fatalf("rebound host published before its patience expired: %v", got)
	}
}

// TestStartCtx: the background loop starts under a context.Context and is
// reaped by cancelling it — the root-context shutdown path Cluster.Close
// relies on.
func TestStartCtx(t *testing.T) {
	net := &fakeNet{}
	net.set("n", "up")
	m := New(net, time.Minute, 0) // no loop yet
	ctx, cancel := context.WithCancel(context.Background())
	m.StartCtx(ctx, 2*time.Millisecond)
	m.StartCtx(ctx, 2*time.Millisecond) // double start: no-op
	m.Watch("n")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := m.Status(); len(st) == 1 && st[0].Detail == "up" {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if st := m.Status(); len(st) != 1 || st[0].Detail != "up" {
		t.Fatalf("loop never probed: %+v", st)
	}
	cancel()
	// After cancellation the loop must stop probing: flip the pinger and
	// verify the stale detail persists.
	time.Sleep(10 * time.Millisecond)
	net.set("n", "rebooting")
	time.Sleep(20 * time.Millisecond)
	if st := m.Status(); st[0].Detail != "up" {
		t.Errorf("monitor kept probing after ctx cancel: %+v", st)
	}
}

// Package lifecycle is the cluster's event spine: a typed, subscribable
// node-event bus that every management layer publishes into. Rocks treats
// full reinstallation as the basic management primitive (§1, §6.4), which
// makes the interesting state of the system the *lifecycle* of each node —
// discovered → leased → installing → up → dark → power-cycled → recovered —
// rather than any single component's private log. The bus gives that
// lifecycle one vocabulary (Event), one bounded store (the ring), and two
// consumption styles: subscription fan-out for reactive components (the
// supervisor) and per-node timeline queries for humans (/admin/events).
package lifecycle

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Phase groups event types by which management layer owns that part of a
// node's life. A node's timeline typically walks discover → install → run,
// with remediate interleaved whenever the supervisor intervenes.
type Phase string

const (
	PhaseDiscover  Phase = "discover"  // insert-ethers: MAC seen, name bound
	PhaseInstall   Phase = "install"   // installer: lease through post-scripts
	PhaseRun       Phase = "run"       // steady state: up/dark transitions
	PhaseRemediate Phase = "remediate" // supervisor/PDU: cycles, quarantine
)

// EventType identifies what happened. The constants cover every producer:
// insert-ethers (discover), the installer (install), the monitor and cluster
// (run), and the supervisor/PDU (remediate).
type EventType string

const (
	// Discovery (insert-ethers).
	EventDiscovered EventType = "discovered" // unknown MAC appeared on the bus
	EventBound      EventType = "bound"      // name + IP assigned, DB row inserted
	EventReplaced   EventType = "replaced"   // existing name rebound to a new MAC

	// Installation (installer), in §6.1 order.
	EventLease     EventType = "lease"     // DHCP lease acquired
	EventKickstart EventType = "kickstart" // kickstart file fetched
	EventPartition EventType = "partition" // disk partitioned + formatted
	EventPackages  EventType = "packages"  // package installation finished
	EventPost      EventType = "post"      // %post scripts ran
	// EventPackageCorrupt reports a fetched package body that failed digest
	// verification against the distribution manifest; the installer
	// discards the body and retries, so a corrupt package never lands on
	// the node's disk.
	EventPackageCorrupt  EventType = "package-corrupt"
	EventInstallComplete EventType = "install-complete"
	EventInstallFailed   EventType = "install-failed"
	EventInstallAborted  EventType = "install-aborted" // cancelled via context

	// Steady state (monitor, cluster).
	EventUp   EventType = "up"   // node joined service
	EventDark EventType = "dark" // monitor lost the node

	// Remediation (supervisor, PDU).
	EventPowerCycle       EventType = "power-cycle"        // supervisor decision
	EventPowerCycled      EventType = "power-cycled"       // PDU relay actually fired
	EventPowerCycleFailed EventType = "power-cycle-failed" // PDU refused/wedged
	EventQuarantine       EventType = "quarantine"
	EventUnquarantine     EventType = "unquarantine"
	EventRecovered        EventType = "recovered"

	// Frontend durability (clusterdb): the cluster database was recovered
	// from its on-disk snapshot + write-ahead log at startup.
	EventDBRecovered EventType = "db-recovered"

	// Facts-driven inventory (the post-install agent loop). A node that
	// finishes installing probes its own hardware and posts the facts to the
	// frontend; the frontend records the report, diffs it against the
	// database's expected profile, and publishes one drift-detected event per
	// divergent field. Actionable drift is cleared by a supervisor-driven
	// reinstall (drift-reinstall); a clean report after drift publishes
	// drift-cleared. facts-failed marks an agent that could not deliver its
	// report (the install itself still succeeded).
	EventFactsReported  EventType = "facts-reported"
	EventFactsFailed    EventType = "facts-failed"
	EventDriftDetected  EventType = "drift-detected"
	EventDriftCleared   EventType = "drift-cleared"
	EventDriftReinstall EventType = "drift-reinstall"

	// Relay distribution tier (PR 8). A completed node that re-serves its
	// verified package tree announces relay-up; the registry withdraws it
	// (relay-down) when the node reinstalls, goes dark, or is quarantined.
	// An installer that catches a relay serving corrupt or failing
	// responses emits relay-demoted with the source URL, making the
	// demotion auditable in /admin/events.
	EventRelayUp      EventType = "relay-up"
	EventRelayDown    EventType = "relay-down"
	EventRelayDemoted EventType = "relay-demoted"
)

// Event is one step in a node's lifecycle. Node is the best identity known
// at emission time — a hostname once one is bound, the MAC before that — and
// MAC is always the hardware address when the producer knows it, so queries
// can follow a machine across renames.
type Event struct {
	Seq     uint64    `json:"seq"`  // bus-global, monotonically increasing from 1
	Time    time.Time `json:"time"` //
	Node    string    `json:"node"` // hostname, or MAC when no name is bound yet
	MAC     string    `json:"mac,omitempty"`
	Phase   Phase     `json:"phase"`
	Type    EventType `json:"type"`
	Source  string    `json:"source"`            // producing layer: installer, monitor, supervisor, insert-ethers, pdu, cluster
	Attempt int       `json:"attempt,omitempty"` // remediation attempt number, when meaningful
	Detail  string    `json:"detail,omitempty"`
	// Shard is federation provenance: the child frontend whose bus
	// originated the event. Empty on a standalone frontend and on a
	// child's own view of its events — only a parent merging shard
	// results stamps it, so a timeline read at the child and the same
	// timeline read at the top differ in nothing but this field.
	Shard string `json:"shard,omitempty"`
}

// String formats an event the way the supervisor log used to: terse,
// grep-able, one line.
func (e Event) String() string {
	s := fmt.Sprintf("#%d %s %s/%s %s", e.Seq, e.Node, e.Phase, e.Type, e.Source)
	if e.Attempt > 0 {
		s += fmt.Sprintf(" attempt=%d", e.Attempt)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Filter selects events. Zero fields match everything. Node matches either
// the event's Node or its MAC, so a timeline query follows a machine from
// pre-name discovery through its bound hostname.
type Filter struct {
	Node     string
	MAC      string
	Type     EventType
	Phase    Phase
	Source   string
	SinceSeq uint64 // only events with Seq > SinceSeq
	Limit    int    // 0 = unlimited; otherwise the most recent N matches
}

func (f Filter) matches(e Event) bool {
	if f.Node != "" && e.Node != f.Node && e.MAC != f.Node {
		return false
	}
	if f.MAC != "" && e.MAC != f.MAC {
		return false
	}
	if f.Type != "" && e.Type != f.Type {
		return false
	}
	if f.Phase != "" && e.Phase != f.Phase {
		return false
	}
	if f.Source != "" && e.Source != f.Source {
		return false
	}
	if e.Seq <= f.SinceSeq {
		return false
	}
	return true
}

// DefaultRingSize bounds the bus when the caller doesn't choose: large
// enough to hold a full integration burst plus a chaos storm, small enough
// that a week of steady-state up/dark flapping can't grow the heap.
const DefaultRingSize = 4096

type subscriber struct {
	ch      chan Event
	dropped uint64
}

// Bus is a bounded, fan-out event log. Publishing never blocks: the ring
// evicts its oldest entry when full (counted in Evicted), and a subscriber
// that falls behind loses events (counted per subscription) rather than
// stalling the producers — the installer must not wait on a slow reader.
type Bus struct {
	mu      sync.Mutex
	ring    []Event
	start   int // index of oldest event
	count   int
	seq     uint64
	evicted uint64

	subs   map[int]*subscriber
	nextID int

	// bcast is closed and replaced on every publish; WaitFor sleeps on it
	// instead of holding a subscription, so it can never miss an event
	// between its ring scan and its wait (it re-scans after every wake).
	bcast chan struct{}
}

// NewBus creates a bus whose ring holds at most size events
// (DefaultRingSize when size <= 0).
func NewBus(size int) *Bus {
	if size <= 0 {
		size = DefaultRingSize
	}
	return &Bus{
		ring:  make([]Event, size),
		subs:  make(map[int]*subscriber),
		bcast: make(chan struct{}),
	}
}

// Publish assigns the event a sequence number (and timestamp, when unset),
// appends it to the ring, and fans it out. It returns the stamped event.
func (b *Bus) Publish(e Event) Event {
	b.mu.Lock()
	b.seq++
	e.Seq = b.seq
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if b.count == len(b.ring) {
		b.start = (b.start + 1) % len(b.ring)
		b.evicted++
	} else {
		b.count++
	}
	b.ring[(b.start+b.count-1)%len(b.ring)] = e
	for _, s := range b.subs {
		select {
		case s.ch <- e:
		default:
			s.dropped++
		}
	}
	close(b.bcast)
	b.bcast = make(chan struct{})
	b.mu.Unlock()
	return e
}

// Subscribe returns a channel receiving every event published after the
// call, buffered to buf entries (minimum 1). A subscriber that falls behind
// its buffer silently loses events — use WaitFor when a guaranteed
// observation matters. cancel releases the subscription; the channel is
// never closed, so a drained reader simply stops receiving.
func (b *Bus) Subscribe(buf int) (<-chan Event, func()) {
	if buf < 1 {
		buf = 1
	}
	b.mu.Lock()
	id := b.nextID
	b.nextID++
	s := &subscriber{ch: make(chan Event, buf)}
	b.subs[id] = s
	b.mu.Unlock()
	cancel := func() {
		b.mu.Lock()
		delete(b.subs, id)
		b.mu.Unlock()
	}
	return s.ch, cancel
}

// Recent returns the matching events still in the ring, oldest first. With
// f.Limit set, only the most recent matches are returned.
func (b *Bus) Recent(f Filter) []Event {
	b.mu.Lock()
	out := make([]Event, 0, b.count)
	for i := 0; i < b.count; i++ {
		e := b.ring[(b.start+i)%len(b.ring)]
		if f.matches(e) {
			out = append(out, e)
		}
	}
	b.mu.Unlock()
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// Timeline is a node's per-node lifecycle view: every ring event whose Node
// or MAC matches, oldest first.
func (b *Bus) Timeline(node string) []Event {
	return b.Recent(Filter{Node: node})
}

// WaitFor blocks until an event matching f exists (checking the ring first,
// so events published before the call still satisfy it as long as their Seq
// exceeds f.SinceSeq) or ctx is done. Set f.SinceSeq from Seq() to wait for
// a strictly future occurrence.
func (b *Bus) WaitFor(ctx context.Context, f Filter) (Event, error) {
	for {
		b.mu.Lock()
		for i := 0; i < b.count; i++ {
			e := b.ring[(b.start+i)%len(b.ring)]
			if f.matches(e) {
				b.mu.Unlock()
				return e, nil
			}
		}
		wake := b.bcast
		b.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return Event{}, ctx.Err()
		}
	}
}

// Seq returns the sequence number of the most recently published event
// (0 when none have been).
func (b *Bus) Seq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Evicted counts events pushed out of the ring by newer ones — the
// /admin/supervisor "dropped" figure.
func (b *Bus) Evicted() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.evicted
}

// SubscriberDrops sums events lost across all current subscribers' buffers.
func (b *Bus) SubscriberDrops() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var n uint64
	for _, s := range b.subs {
		n += s.dropped
	}
	return n
}

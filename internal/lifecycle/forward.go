package lifecycle

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Forwarder streams a bus's events upstream to a parent frontend — the
// federation seam. It subscribes to the local bus, batches what arrives,
// and hands each batch to a post callback (an HTTP POST to the parent's
// /v1/federation/events in production). Forwarding is best-effort by
// design: the parent's merged queries fan out to children *live*, so the
// forwarded copy is only the parent's fallback view for when a child goes
// dark. A failed batch is retried once on the next flush tick and then
// dropped, counted, and left behind — the child's own ring remains the
// authoritative history.
type Forwarder struct {
	bus   *Bus
	post  func([]Event) error
	every time.Duration
	batch int

	mu    sync.Mutex
	queue []Event

	flushReq chan chan struct{}
	stopped  chan struct{}

	forwarded atomic.Uint64 // events successfully posted upstream
	errors    atomic.Uint64 // failed post attempts (batches, not events)
	dropped   atomic.Uint64 // events abandoned after a failed retry
}

// ForwarderOptions tunes batching; the zero value means a 50ms flush
// interval and 256-event batches.
type ForwarderOptions struct {
	FlushInterval time.Duration
	BatchSize     int
}

// StartForwarder subscribes to the bus and begins forwarding. The
// goroutine exits when ctx is cancelled, posting whatever is still queued
// on the way out.
func StartForwarder(ctx context.Context, bus *Bus, opts ForwarderOptions, post func([]Event) error) *Forwarder {
	if opts.FlushInterval <= 0 {
		opts.FlushInterval = 50 * time.Millisecond
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 256
	}
	f := &Forwarder{
		bus:      bus,
		post:     post,
		every:    opts.FlushInterval,
		batch:    opts.BatchSize,
		flushReq: make(chan chan struct{}),
		stopped:  make(chan struct{}),
	}
	events, cancel := bus.Subscribe(opts.BatchSize * 2)
	drain := func() {
		for {
			select {
			case e := <-events:
				f.mu.Lock()
				f.queue = append(f.queue, e)
				f.mu.Unlock()
			default:
				return
			}
		}
	}
	go func() {
		defer close(f.stopped)
		defer cancel()
		ticker := time.NewTicker(f.every)
		defer ticker.Stop()
		for {
			select {
			case e := <-events:
				f.mu.Lock()
				f.queue = append(f.queue, e)
				full := len(f.queue) >= f.batch
				f.mu.Unlock()
				if full {
					f.flushOnce(true)
				}
			case <-ticker.C:
				f.flushOnce(false)
			case done := <-f.flushReq:
				// Drain whatever the subscription already delivered before
				// flushing, so Flush callers see everything published
				// before their call.
				drain()
				f.flushOnce(true)
				close(done)
			case <-ctx.Done():
				drain()
				f.flushOnce(true)
				return
			}
		}
	}()
	return f
}

// Enqueue injects events that did not come from the local bus — a
// mid-tier frontend relaying a grandchild's already-stamped events
// further up the hierarchy. The events keep whatever Shard provenance
// they carry.
func (f *Forwarder) Enqueue(events []Event) {
	if len(events) == 0 {
		return
	}
	f.mu.Lock()
	f.queue = append(f.queue, events...)
	f.mu.Unlock()
}

// flushOnce attempts one post of the pending queue. On failure the batch
// is kept for exactly one more attempt (final=true or the next tick);
// a batch that fails twice is dropped so a dark parent cannot grow the
// queue without bound.
func (f *Forwarder) flushOnce(final bool) {
	f.mu.Lock()
	pending := f.queue
	f.queue = nil
	f.mu.Unlock()
	if len(pending) == 0 {
		return
	}
	if err := f.post(pending); err != nil {
		f.errors.Add(1)
		if final || len(pending) > f.batch {
			f.dropped.Add(uint64(len(pending)))
			return
		}
		// Retry on the next flush tick.
		f.mu.Lock()
		f.queue = append(pending, f.queue...)
		f.mu.Unlock()
		return
	}
	f.forwarded.Add(uint64(len(pending)))
}

// Flush synchronously drains the subscription and posts the pending
// queue — shutdown and test determinism. Safe after the forwarder has
// stopped (it then flushes whatever Enqueue added directly).
func (f *Forwarder) Flush() {
	done := make(chan struct{})
	select {
	case f.flushReq <- done:
		<-done
	case <-f.stopped:
		f.flushOnce(true)
	}
}

// Done is closed once the forwarding goroutine has exited (after its
// final drain-and-flush) — the join point for leak-free shutdown.
func (f *Forwarder) Done() <-chan struct{} { return f.stopped }

// Stats reports the forwarder's cumulative traffic.
func (f *Forwarder) Stats() (forwarded, errors, dropped uint64) {
	return f.forwarded.Load(), f.errors.Load(), f.dropped.Load()
}

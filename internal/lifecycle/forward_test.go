package lifecycle

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// collectPost returns a post func recording every forwarded event and the
// accessor to read them back.
func collectPost() (func([]Event) error, func() []Event) {
	var mu sync.Mutex
	var got []Event
	post := func(events []Event) error {
		mu.Lock()
		got = append(got, events...)
		mu.Unlock()
		return nil
	}
	read := func() []Event {
		mu.Lock()
		defer mu.Unlock()
		return append([]Event(nil), got...)
	}
	return post, read
}

func TestForwarderStreamsBusEvents(t *testing.T) {
	bus := NewBus(0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	post, read := collectPost()
	fw := StartForwarder(ctx, bus, ForwarderOptions{FlushInterval: 5 * time.Millisecond}, post)
	for i := 0; i < 10; i++ {
		bus.Publish(Event{Node: "c0-0", Type: EventDiscovered, Phase: PhaseDiscover})
	}
	fw.Flush()
	if got := read(); len(got) != 10 {
		t.Fatalf("forwarded %d events, want 10", len(got))
	}
	forwarded, errs, dropped := fw.Stats()
	if forwarded != 10 || errs != 0 || dropped != 0 {
		t.Fatalf("Stats() = %d, %d, %d", forwarded, errs, dropped)
	}
}

func TestForwarderFinalFlushDropsFailedBatch(t *testing.T) {
	bus := NewBus(0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fw := StartForwarder(ctx, bus, ForwarderOptions{FlushInterval: time.Hour},
		func([]Event) error { return errors.New("parent dark") })
	bus.Publish(Event{Node: "c0-0", Type: EventDiscovered})
	// Flush is a final flush: a failed batch is dropped, not requeued, so
	// a dark parent cannot grow the queue without bound.
	fw.Flush()
	_, errs, dropped := fw.Stats()
	if errs != 1 || dropped != 1 {
		t.Fatalf("Stats errors=%d dropped=%d, want 1 and 1", errs, dropped)
	}
}

func TestForwarderTickRetriesFailedBatch(t *testing.T) {
	bus := NewBus(0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	calls := 0
	var got []Event
	post := func(events []Event) error {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if calls == 1 {
			return errors.New("transient")
		}
		got = append(got, events...)
		return nil
	}
	fw := StartForwarder(ctx, bus, ForwarderOptions{FlushInterval: 2 * time.Millisecond}, post)
	bus.Publish(Event{Node: "c0-0", Type: EventDiscovered})
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("failed batch was not retried on the next tick")
		}
		time.Sleep(time.Millisecond)
	}
	forwarded, errs, dropped := fw.Stats()
	if forwarded != 1 || errs != 1 || dropped != 0 {
		t.Fatalf("Stats = %d, %d, %d; want 1 forwarded, 1 error, 0 drops", forwarded, errs, dropped)
	}
}

func TestForwarderEnqueueInjectsStampedEvents(t *testing.T) {
	bus := NewBus(0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	post, read := collectPost()
	fw := StartForwarder(ctx, bus, ForwarderOptions{FlushInterval: time.Hour}, post)
	fw.Enqueue([]Event{{Node: "g0-0", Shard: "leaf", Type: EventUp}})
	fw.Flush()
	got := read()
	if len(got) != 1 || got[0].Shard != "leaf" {
		t.Fatalf("enqueue lost provenance: %+v", got)
	}
}

func TestForwarderDoneAfterCancel(t *testing.T) {
	bus := NewBus(0)
	ctx, cancel := context.WithCancel(context.Background())
	post, read := collectPost()
	fw := StartForwarder(ctx, bus, ForwarderOptions{FlushInterval: time.Hour}, post)
	bus.Publish(Event{Node: "c0-0", Type: EventDiscovered})
	cancel()
	select {
	case <-fw.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("forwarder did not exit after cancel")
	}
	// The exit path drains and flushes what was still queued.
	if got := read(); len(got) != 1 {
		t.Fatalf("final flush forwarded %d events, want 1", len(got))
	}
}

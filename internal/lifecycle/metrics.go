package lifecycle

import (
	"rocks/internal/metrics"
)

// RegisterMetrics exposes the bus's health counters on the registry: how
// much has happened (Seq), how much the bounded ring has forgotten
// (Evicted), and whether any reactive consumer is falling behind
// (SubscriberDrops). Collector funcs take the bus lock only at scrape
// time.
func (b *Bus) RegisterMetrics(r *metrics.Registry) {
	r.CounterFunc("rocks_lifecycle_events_total",
		"Lifecycle events published on the bus since start.",
		func() float64 { return float64(b.Seq()) })
	r.CounterFunc("rocks_lifecycle_ring_evictions_total",
		"Events pushed out of the bounded ring by newer ones.",
		func() float64 { return float64(b.Evicted()) })
	r.CounterFunc("rocks_lifecycle_subscriber_drops_total",
		"Events lost across current subscribers' full buffers.",
		func() float64 { return float64(b.SubscriberDrops()) })
	r.GaugeFunc("rocks_lifecycle_subscribers",
		"Active bus subscriptions.",
		func() float64 {
			b.mu.Lock()
			defer b.mu.Unlock()
			return float64(len(b.subs))
		})
}

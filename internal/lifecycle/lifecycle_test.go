package lifecycle

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestPublishAssignsSeqAndTime(t *testing.T) {
	b := NewBus(8)
	e1 := b.Publish(Event{Node: "compute-0-0", Phase: PhaseInstall, Type: EventLease})
	e2 := b.Publish(Event{Node: "compute-0-0", Phase: PhaseInstall, Type: EventKickstart})
	if e1.Seq != 1 || e2.Seq != 2 {
		t.Fatalf("sequence numbers = %d, %d; want 1, 2", e1.Seq, e2.Seq)
	}
	if e1.Time.IsZero() {
		t.Fatal("Publish left Time zero")
	}
	if got := b.Seq(); got != 2 {
		t.Fatalf("Seq() = %d, want 2", got)
	}
}

func TestRingEvictsOldest(t *testing.T) {
	b := NewBus(4)
	for i := 0; i < 10; i++ {
		b.Publish(Event{Node: fmt.Sprintf("n%d", i), Type: EventUp})
	}
	got := b.Recent(Filter{})
	if len(got) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(got))
	}
	if got[0].Node != "n6" || got[3].Node != "n9" {
		t.Fatalf("ring = %s..%s, want n6..n9", got[0].Node, got[3].Node)
	}
	if b.Evicted() != 6 {
		t.Fatalf("Evicted() = %d, want 6", b.Evicted())
	}
}

func TestFilterMatchesNodeOrMAC(t *testing.T) {
	b := NewBus(16)
	// Before insert-ethers binds a name, producers use the MAC as Node.
	b.Publish(Event{Node: "aa:bb", MAC: "aa:bb", Phase: PhaseDiscover, Type: EventDiscovered})
	b.Publish(Event{Node: "compute-0-0", MAC: "aa:bb", Phase: PhaseDiscover, Type: EventBound})
	b.Publish(Event{Node: "compute-0-1", MAC: "cc:dd", Phase: PhaseDiscover, Type: EventBound})

	tl := b.Timeline("aa:bb")
	if len(tl) != 2 {
		t.Fatalf("timeline by MAC returned %d events, want 2 (discovered+bound)", len(tl))
	}
	byName := b.Timeline("compute-0-0")
	if len(byName) != 1 || byName[0].Type != EventBound {
		t.Fatalf("timeline by name = %v", byName)
	}
	if got := b.Recent(Filter{Type: EventBound}); len(got) != 2 {
		t.Fatalf("type filter returned %d, want 2", len(got))
	}
	if got := b.Recent(Filter{Phase: PhaseDiscover, Limit: 1}); len(got) != 1 || got[0].Node != "compute-0-1" {
		t.Fatalf("limit should keep most recent match, got %v", got)
	}
	if got := b.Recent(Filter{SinceSeq: 2}); len(got) != 1 {
		t.Fatalf("SinceSeq filter returned %d, want 1", len(got))
	}
}

func TestSubscribeFanOut(t *testing.T) {
	b := NewBus(16)
	ch1, cancel1 := b.Subscribe(4)
	ch2, cancel2 := b.Subscribe(4)
	defer cancel2()
	b.Publish(Event{Node: "n0", Type: EventUp})
	for i, ch := range []<-chan Event{ch1, ch2} {
		select {
		case e := <-ch:
			if e.Node != "n0" {
				t.Fatalf("subscriber %d got %v", i, e)
			}
		case <-time.After(time.Second):
			t.Fatalf("subscriber %d never received the event", i)
		}
	}
	cancel1()
	b.Publish(Event{Node: "n1", Type: EventUp})
	select {
	case e := <-ch1:
		t.Fatalf("cancelled subscriber received %v", e)
	default:
	}
	select {
	case e := <-ch2:
		if e.Node != "n1" {
			t.Fatalf("live subscriber got %v", e)
		}
	case <-time.After(time.Second):
		t.Fatal("live subscriber missed the second event")
	}
}

func TestSlowSubscriberDropsInsteadOfBlocking(t *testing.T) {
	b := NewBus(16)
	_, cancel := b.Subscribe(1)
	defer cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 5; i++ {
			b.Publish(Event{Node: "n0", Type: EventUp})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Publish blocked on a full subscriber")
	}
	if d := b.SubscriberDrops(); d != 4 {
		t.Fatalf("SubscriberDrops() = %d, want 4", d)
	}
}

func TestWaitForSeesPastEvents(t *testing.T) {
	b := NewBus(16)
	b.Publish(Event{Node: "compute-0-0", Type: EventQuarantine})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	e, err := b.WaitFor(ctx, Filter{Node: "compute-0-0", Type: EventQuarantine})
	if err != nil {
		t.Fatalf("WaitFor missed an event already in the ring: %v", err)
	}
	if e.Seq != 1 {
		t.Fatalf("WaitFor returned seq %d, want 1", e.Seq)
	}
}

func TestWaitForBlocksUntilPublish(t *testing.T) {
	b := NewBus(16)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got := make(chan Event, 1)
	since := b.Seq()
	go func() {
		e, err := b.WaitFor(ctx, Filter{Node: "compute-0-3", Type: EventRecovered, SinceSeq: since})
		if err == nil {
			got <- e
		}
	}()
	b.Publish(Event{Node: "compute-0-1", Type: EventRecovered}) // wrong node: keeps waiting
	b.Publish(Event{Node: "compute-0-3", Type: EventRecovered})
	select {
	case e := <-got:
		if e.Node != "compute-0-3" {
			t.Fatalf("WaitFor returned %v", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitFor never woke for the matching publish")
	}
}

func TestWaitForHonorsContext(t *testing.T) {
	b := NewBus(16)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := b.WaitFor(ctx, Filter{Node: "never"})
		errc <- err
	}()
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("WaitFor returned %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("WaitFor ignored cancellation")
	}
}

// TestConcurrentPublishSubscribe exercises the bus under -race: publishers,
// subscribers, timeline readers, and WaitFor callers all at once.
func TestConcurrentPublishSubscribe(t *testing.T) {
	b := NewBus(64)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				b.Publish(Event{Node: fmt.Sprintf("n%d", p), Type: EventUp, Detail: fmt.Sprintf("%d", i)})
			}
		}(p)
	}
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch, cancelSub := b.Subscribe(8)
			defer cancelSub()
			for {
				select {
				case <-ch:
				case <-time.After(10 * time.Millisecond):
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			b.Timeline("n0")
			b.Recent(Filter{Type: EventUp, Limit: 5})
		}
	}()
	if _, err := b.WaitFor(ctx, Filter{Node: "n3", Type: EventUp}); err != nil {
		t.Fatalf("WaitFor under load: %v", err)
	}
	wg.Wait()
	if b.Seq() != 200 {
		t.Fatalf("Seq() = %d after 200 publishes", b.Seq())
	}
}

func TestEventString(t *testing.T) {
	e := Event{Seq: 7, Node: "compute-0-2", Phase: PhaseRemediate, Type: EventPowerCycle,
		Source: "supervisor", Attempt: 2, Detail: "dark 310ms"}
	s := e.String()
	for _, want := range []string{"#7", "compute-0-2", "remediate/power-cycle", "attempt=2", "dark 310ms"} {
		if !contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

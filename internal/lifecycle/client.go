package lifecycle

// The client side of /admin/events: the CLI tools (shoot-node,
// insert-ethers) fetch a node's merged timeline from a running frontend and
// render it for a terminal, so "what has this machine been through?" is one
// flag away from any shell.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// TimelineResponse is the JSON shape /admin/events returns.
type TimelineResponse struct {
	Events  []Event `json:"events"`
	Seq     uint64  `json:"seq"`
	Dropped uint64  `json:"dropped"`
}

// FetchTimeline queries a frontend's /admin/events for one node's timeline
// (hostname or MAC; the server merges both identities). server is the admin
// base URL, e.g. http://127.0.0.1:8070.
func FetchTimeline(server, node string) (*TimelineResponse, error) {
	u := strings.TrimSuffix(server, "/") + "/admin/events?" +
		url.Values{"node": {node}}.Encode()
	resp, err := http.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("lifecycle: %s: %s", resp.Status, body)
	}
	var tr TimelineResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		return nil, fmt.Errorf("lifecycle: bad /admin/events response: %w", err)
	}
	return &tr, nil
}

// FormatTimeline renders a timeline one event per line, aligned for a
// terminal, with wall-clock times.
func FormatTimeline(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		fmt.Fprintf(&b, "%s  %-9s %-16s %-13s", e.Time.Format("15:04:05.000"),
			e.Phase, e.Type, e.Source)
		if e.Attempt > 0 {
			fmt.Fprintf(&b, " attempt=%d", e.Attempt)
		}
		if e.Detail != "" {
			fmt.Fprintf(&b, " %s", e.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

package lifecycle

// The client side of /v1/events: the CLI tools (shoot-node,
// insert-ethers) fetch a node's merged timeline from a running frontend and
// render it for a terminal, so "what has this machine been through?" is one
// flag away from any shell.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// TimelineResponse is the event-listing payload /v1/events returns (inside
// the data envelope) and /admin/events returns bare.
type TimelineResponse struct {
	Events  []Event `json:"events"`
	Seq     uint64  `json:"seq"`
	Dropped uint64  `json:"dropped"`
}

// FetchTimeline queries a frontend's /v1/events for one node's timeline
// (hostname or MAC; the server merges both identities). server is the
// frontend base URL, e.g. http://127.0.0.1:8070.
func FetchTimeline(server, node string) (*TimelineResponse, error) {
	u := strings.TrimSuffix(server, "/") + "/v1/events?" +
		url.Values{"node": {node}}.Encode()
	resp, err := http.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var env struct {
		Data  *TimelineResponse `json:"data"`
		Error *struct {
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		return nil, fmt.Errorf("lifecycle: bad /v1/events response (%s): %w", resp.Status, err)
	}
	if env.Error != nil {
		return nil, fmt.Errorf("lifecycle: %s: %s", resp.Status, env.Error.Message)
	}
	if env.Data == nil {
		return nil, fmt.Errorf("lifecycle: empty /v1/events response (%s)", resp.Status)
	}
	return env.Data, nil
}

// FormatTimeline renders a timeline one event per line, aligned for a
// terminal, with wall-clock times.
func FormatTimeline(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		fmt.Fprintf(&b, "%s  %-9s %-16s %-13s", e.Time.Format("15:04:05.000"),
			e.Phase, e.Type, e.Source)
		if e.Attempt > 0 {
			fmt.Fprintf(&b, " attempt=%d", e.Attempt)
		}
		if e.Detail != "" {
			fmt.Fprintf(&b, " %s", e.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

package pbs

import (
	"strings"
	"testing"

	"rocks/internal/hardware"
	"rocks/internal/node"
)

func upNode(name string) *node.Node {
	macs := hardware.NewMACAllocator()
	n := node.New(hardware.PIIICompute(macs, 733))
	n.SetName(name)
	// Give the node an installed OS so NeedsInstall is driven purely by
	// ForceReinstall (what the reinstall-job assertions check).
	n.Disk().Format("/")
	n.Disk().WriteFile("/boot/vmlinuz", []byte("k"), 0o755)
	n.SetState(node.StateUp)
	return n
}

func serverWithNodes(names ...string) (*Server, map[string]*node.Node) {
	s := NewServer()
	nodes := map[string]*node.Node{}
	for _, name := range names {
		n := upNode(name)
		nodes[name] = n
		s.RegisterMom(name, n)
	}
	return s, nodes
}

func TestSubmitAndScheduleCommandJob(t *testing.T) {
	s, _ := serverWithNodes("c0", "c1")
	id := s.Submit(Job{Name: "hello", NodeCount: 2, Command: "hostname"})
	if started := s.Schedule(); started != 1 {
		t.Fatalf("started = %d", started)
	}
	j, ok := s.Job(id)
	if !ok || j.State != StateComplete {
		t.Fatalf("job = %+v", j)
	}
	if len(j.Assigned) != 2 || j.Output["c0"] != "c0\n" || j.Output["c1"] != "c1\n" {
		t.Errorf("job outputs = %+v", j)
	}
	if s.FreeNodes() != 2 {
		t.Errorf("nodes not freed: %d", s.FreeNodes())
	}
}

func TestJobWaitsForEnoughNodes(t *testing.T) {
	s, _ := serverWithNodes("c0")
	id := s.Submit(Job{Name: "big", NodeCount: 4, Command: "hostname"})
	if s.Schedule() != 0 {
		t.Fatal("4-node job started on a 1-node cluster")
	}
	j, _ := s.Job(id)
	if j.State != StateQueued {
		t.Errorf("state = %s", j.State)
	}
	for _, n := range []string{"c1", "c2", "c3"} {
		s.RegisterMom(n, upNode(n))
	}
	if s.Schedule() != 1 {
		t.Fatal("job did not start once nodes arrived")
	}
}

func TestHeldJobOccupiesNodesUntilFinish(t *testing.T) {
	s, _ := serverWithNodes("c0", "c1")
	id := s.Submit(Job{Name: "simulation", NodeCount: 2, Hold: true})
	s.Schedule()
	j, _ := s.Job(id)
	if j.State != StateRunning || s.FreeNodes() != 0 {
		t.Fatalf("held job: %+v, free=%d", j, s.FreeNodes())
	}
	// A second job must wait.
	id2 := s.Submit(Job{Name: "next", NodeCount: 1, Command: "hostname"})
	s.Schedule()
	if j2, _ := s.Job(id2); j2.State != StateQueued {
		t.Errorf("second job = %+v, want queued", j2)
	}
	if err := s.Finish(id); err != nil {
		t.Fatal(err)
	}
	s.Schedule()
	if j2, _ := s.Job(id2); j2.State != StateComplete {
		t.Errorf("second job after finish = %+v", j2)
	}
	if err := s.Finish(id); err == nil {
		t.Error("double Finish accepted")
	}
	if err := s.Finish(999); err == nil {
		t.Error("Finish of unknown job accepted")
	}
}

// TestReinstallClusterDoesNotDisturbRunningJobs is §5's rolling upgrade:
// reinstall jobs queue behind the running application and only shoot nodes
// that have drained.
func TestReinstallClusterDoesNotDisturbRunningJobs(t *testing.T) {
	s, nodes := serverWithNodes("c0", "c1", "c2")
	app := s.Submit(Job{Name: "science-app", NodeCount: 2, Hold: true})
	s.Schedule()
	appJob, _ := s.Job(app)
	busy := map[string]bool{}
	for _, h := range appJob.Assigned {
		busy[h] = true
	}

	ids := s.SubmitReinstallCluster()
	if len(ids) != 3 {
		t.Fatalf("reinstall jobs = %d", len(ids))
	}
	s.Schedule()
	// Only the idle node was shot.
	for _, id := range ids {
		j, _ := s.Job(id)
		target := strings.TrimPrefix(j.Name, "reinstall-")
		if busy[target] {
			if j.State != StateQueued {
				t.Errorf("reinstall of busy node %s = %s, want queued", target, j.State)
			}
			if nodes[target].NeedsInstall() {
				t.Errorf("busy node %s was shot", target)
			}
		} else {
			if j.State != StateComplete {
				t.Errorf("reinstall of idle node %s = %s", target, j.State)
			}
			if !nodes[target].NeedsInstall() {
				t.Errorf("idle node %s not marked for reinstall", target)
			}
		}
	}

	// The application finishes; the remaining reinstalls proceed.
	if err := s.Finish(app); err != nil {
		t.Fatal(err)
	}
	s.Schedule()
	for _, id := range ids {
		if j, _ := s.Job(id); j.State != StateComplete {
			t.Errorf("reinstall %s = %s after drain", j.Name, j.State)
		}
	}
	for name, n := range nodes {
		if !n.NeedsInstall() {
			t.Errorf("node %s never reinstalled", name)
		}
	}
}

func TestUnregisterMomFailsRunningJob(t *testing.T) {
	s, _ := serverWithNodes("c0", "c1")
	id := s.Submit(Job{Name: "app", NodeCount: 2, Hold: true})
	s.Schedule()
	s.UnregisterMom("c0") // node dies mid-job
	j, _ := s.Job(id)
	if j.State != StateFailed || j.Err == nil {
		t.Errorf("job = %+v", j)
	}
	if s.FreeNodes() != 1 {
		t.Errorf("free = %d, want 1 (c1 freed, c0 gone)", s.FreeNodes())
	}
}

func TestFCFSOrder(t *testing.T) {
	s, _ := serverWithNodes("c0")
	first := s.Submit(Job{Name: "first", NodeCount: 1, Hold: true})
	second := s.Submit(Job{Name: "second", NodeCount: 1, Command: "hostname"})
	s.Schedule()
	if j, _ := s.Job(first); j.State != StateRunning {
		t.Errorf("first job = %s", j.State)
	}
	if j, _ := s.Job(second); j.State != StateQueued {
		t.Errorf("second job = %s, want queued behind first", j.State)
	}
}

func TestQStat(t *testing.T) {
	s, _ := serverWithNodes("c0")
	s.Submit(Job{Name: "render", NodeCount: 1, Hold: true})
	s.Schedule()
	out := s.QStat()
	if !strings.Contains(out, "render") || !strings.Contains(out, " R ") {
		t.Errorf("qstat = %q", out)
	}
}

func TestFailedCommandMarksJobFailed(t *testing.T) {
	s, _ := serverWithNodes("c0")
	id := s.Submit(Job{Name: "bad", NodeCount: 1, Command: "no-such-binary"})
	s.Schedule()
	j, _ := s.Job(id)
	if j.State != StateFailed || j.Err == nil {
		t.Errorf("job = %+v", j)
	}
	if s.FreeNodes() != 1 {
		t.Error("failed job did not free its node")
	}
}

func TestQdel(t *testing.T) {
	s, _ := serverWithNodes("c0")
	running := s.Submit(Job{Name: "app", NodeCount: 1, Hold: true})
	queued := s.Submit(Job{Name: "waiting", NodeCount: 1, Hold: true})
	s.Schedule()

	if err := s.Qdel(queued); err != nil {
		t.Fatal(err)
	}
	if j, _ := s.Job(queued); j.State != StateFailed {
		t.Errorf("queued job after qdel = %s", j.State)
	}
	if err := s.Qdel(running); err != nil {
		t.Fatal(err)
	}
	if s.FreeNodes() != 1 {
		t.Error("qdel of running job did not free its node")
	}
	if err := s.Qdel(running); err == nil {
		t.Error("double qdel accepted")
	}
	if err := s.Qdel(999); err == nil {
		t.Error("qdel of unknown job accepted")
	}
}

func TestOfflineHostIsNeverScheduled(t *testing.T) {
	s, _ := serverWithNodes("c0", "c1")
	s.SetOffline("c1", true)
	if s.FreeNodes() != 1 {
		t.Errorf("FreeNodes = %d with one host offline", s.FreeNodes())
	}
	if got := s.Offline(); len(got) != 1 || got[0] != "c1" || !s.IsOffline("c1") {
		t.Errorf("Offline = %v", got)
	}
	// A one-node job lands on the surviving host.
	id := s.Submit(Job{Name: "work", NodeCount: 1, Command: "hostname"})
	if s.Schedule() != 1 {
		t.Fatal("job did not start on the online host")
	}
	j, _ := s.Job(id)
	if len(j.Assigned) != 1 || j.Assigned[0] != "c0" {
		t.Errorf("assigned = %v, want [c0]", j.Assigned)
	}
	// A job pinned to the offline host waits.
	pinned := s.Submit(Job{Name: "pinned", Assigned: []string{"c1"}, Command: "hostname"})
	if s.Schedule() != 0 {
		t.Error("pinned job ran on an offline host")
	}
	// Clearing the mark releases it.
	s.SetOffline("c1", false)
	if s.Schedule() != 1 {
		t.Error("pinned job did not start after the offline mark cleared")
	}
	j, _ = s.Job(pinned)
	if j.State != StateComplete {
		t.Errorf("pinned job state = %s", j.State)
	}
}

func TestReinstallClusterSkipsOfflineHosts(t *testing.T) {
	s, _ := serverWithNodes("c0", "c1", "c2")
	s.SetOffline("c2", true)
	ids := s.SubmitReinstallCluster()
	if len(ids) != 2 {
		t.Fatalf("submitted %d reinstall jobs, want 2", len(ids))
	}
	for _, id := range ids {
		j, _ := s.Job(id)
		if len(j.Assigned) == 1 && j.Assigned[0] == "c2" {
			t.Error("reinstall job submitted for quarantined host c2")
		}
	}
}

package pbs

import (
	"sync"
	"time"
)

// Maui is the standalone scheduler daemon of §4.1: PBS manages the workload
// (starting and monitoring jobs) while Maui supplies the scheduling policy.
// This daemon runs periodic Schedule passes against a Server and can be
// kicked immediately when cluster state changes (a mom registering, a job
// arriving) instead of waiting out the interval.
type Maui struct {
	server   *Server
	interval time.Duration

	mu      sync.Mutex
	kick    chan struct{}
	stop    chan struct{}
	stopped bool
	passes  int
}

// NewMaui creates a scheduler for the server. interval <= 0 defaults to the
// classic 30 s RMPOLLINTERVAL scaled down for simulation (10 ms).
func NewMaui(server *Server, interval time.Duration) *Maui {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	return &Maui{
		server:   server,
		interval: interval,
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
}

// Start launches the scheduling loop.
func (m *Maui) Start() {
	go func() {
		t := time.NewTicker(m.interval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-m.kick:
			case <-t.C:
			}
			m.server.Schedule()
			m.mu.Lock()
			m.passes++
			m.mu.Unlock()
		}
	}()
}

// Kick requests an immediate scheduling pass (non-blocking).
func (m *Maui) Kick() {
	select {
	case m.kick <- struct{}{}:
	default:
	}
}

// Stop halts the loop; it is idempotent.
func (m *Maui) Stop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.stopped {
		m.stopped = true
		close(m.stop)
	}
}

// Passes reports how many scheduling passes have run.
func (m *Maui) Passes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.passes
}

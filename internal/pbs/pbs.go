// Package pbs implements the workload-management slice of the Portable
// Batch System plus a Maui-style FCFS scheduler (§4.1): the frontend runs
// the server with a default queue, compute nodes run moms, and jobs are
// scheduled onto free nodes only. The load-bearing Rocks use beyond user
// jobs is §5's rolling upgrade: "the production system can be upgraded by
// submitting a 'reinstall cluster' job to Maui, as not to disturb any
// running applications" — reinstall jobs queue like any other work and
// touch a node only when it is idle.
package pbs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Executor runs a command on a mom's machine; *node.Node satisfies it.
type Executor interface {
	Exec(cmd string) (string, error)
}

// JobState is a job's lifecycle position.
type JobState string

// Job states, matching qstat's vocabulary.
const (
	StateQueued   JobState = "Q"
	StateRunning  JobState = "R"
	StateComplete JobState = "C"
	StateFailed   JobState = "F"
)

// Job is one queue entry.
type Job struct {
	ID        int
	Name      string
	NodeCount int
	// Command runs on every assigned node when the job starts. Jobs with
	// Hold=true represent long-running applications: they occupy their
	// nodes until Finish is called instead of completing instantly.
	Command string
	Hold    bool

	State    JobState
	Assigned []string
	Output   map[string]string
	Err      error
}

// ReinstallCommand is what a reinstall job executes on its node.
const ReinstallCommand = "/boot/kickstart/cluster-kickstart"

// Server is pbs_server plus the default queue.
type Server struct {
	mu      sync.Mutex
	moms    map[string]Executor
	busy    map[string]int // host → job ID occupying it
	offline map[string]bool
	jobs    map[int]*Job
	order   []int
	nextID  int
}

// NewServer creates a server with an empty default queue.
func NewServer() *Server {
	return &Server{
		moms:    make(map[string]Executor),
		busy:    make(map[string]int),
		offline: make(map[string]bool),
		jobs:    make(map[int]*Job),
	}
}

// SetOffline marks a host offline (pbsnodes -o) or clears the mark. An
// offline host is never scheduled — even if its mom registers — but its
// record survives, so the cluster keeps running at reduced capacity and
// the administrator sees exactly which nodes are quarantined.
func (s *Server) SetOffline(host string, off bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off {
		s.offline[host] = true
	} else {
		delete(s.offline, host)
	}
}

// IsOffline reports whether a host is marked offline.
func (s *Server) IsOffline(host string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.offline[host]
}

// Offline lists hosts currently marked offline, sorted.
func (s *Server) Offline() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.offline))
	for h := range s.offline {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// RegisterMom announces a node's mom to the server (the node came up).
func (s *Server) RegisterMom(host string, exec Executor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.moms[host] = exec
}

// UnregisterMom removes a node (it went down or is reinstalling). Any job
// running there is failed — the visible consequence of losing a node.
func (s *Server) UnregisterMom(host string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.moms, host)
	if id, ok := s.busy[host]; ok {
		delete(s.busy, host)
		if j := s.jobs[id]; j != nil && j.State == StateRunning {
			j.State = StateFailed
			j.Err = fmt.Errorf("pbs: node %s lost while job running", host)
			// Free the job's other nodes.
			for _, h := range j.Assigned {
				if s.busy[h] == id {
					delete(s.busy, h)
				}
			}
		}
	}
}

// Moms lists registered mom hosts, sorted.
func (s *Server) Moms() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.moms))
	for h := range s.moms {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// FreeNodes counts registered moms with no running job.
func (s *Server) FreeNodes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.freeLocked()
}

func (s *Server) freeLocked() int {
	n := 0
	for h := range s.moms {
		if _, busy := s.busy[h]; !busy && !s.offline[h] {
			n++
		}
	}
	return n
}

// Submit queues a job and returns its ID.
func (s *Server) Submit(j Job) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	j.ID = s.nextID
	if j.NodeCount <= 0 {
		j.NodeCount = 1
	}
	j.State = StateQueued
	j.Output = make(map[string]string)
	s.jobs[j.ID] = &j
	s.order = append(s.order, j.ID)
	return j.ID
}

// SubmitReinstallCluster queues one single-node reinstall job per
// registered, online mom — the §5 rolling upgrade. Each job waits for its
// node to drain, shoots it, and completes. Offline (quarantined) hosts are
// skipped: a reinstall job pinned to one would wait forever.
func (s *Server) SubmitReinstallCluster() []int {
	hosts := s.Moms()
	ids := make([]int, 0, len(hosts))
	for _, h := range hosts {
		if s.IsOffline(h) {
			continue
		}
		ids = append(ids, s.Submit(Job{
			Name:      "reinstall-" + h,
			NodeCount: 1,
			Command:   ReinstallCommand,
			// Pin to the specific host so every node gets exactly one.
			Assigned: []string{h},
		}))
	}
	return ids
}

// Job returns a copy of the job's current record.
func (s *Server) Job(id int) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Jobs returns copies of all jobs in submission order.
func (s *Server) Jobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.jobs[id])
	}
	return out
}

// Finish completes a held (long-running) job, freeing its nodes.
func (s *Server) Finish(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("pbs: no job %d", id)
	}
	if j.State != StateRunning {
		return fmt.Errorf("pbs: job %d is %s, not running", id, j.State)
	}
	j.State = StateComplete
	for _, h := range j.Assigned {
		if s.busy[h] == id {
			delete(s.busy, h)
		}
	}
	return nil
}

// Schedule is one Maui pass: walk the queue FCFS and start every job whose
// node requirements can be met from free moms. It returns the number of
// jobs started. Jobs pre-pinned to hosts (reinstall jobs) start only when
// all their hosts are free.
func (s *Server) Schedule() int {
	s.mu.Lock()
	started := 0
	type launch struct {
		job   *Job
		hosts []string
		execs []Executor
	}
	var launches []launch
	for _, id := range s.order {
		j := s.jobs[id]
		if j.State != StateQueued {
			continue
		}
		var hosts []string
		if len(j.Assigned) > 0 {
			// Pinned: every named host must exist, be free, and be online.
			ok := true
			for _, h := range j.Assigned {
				if _, reg := s.moms[h]; !reg || s.offline[h] {
					ok = false
					break
				}
				if _, busy := s.busy[h]; busy {
					ok = false
					break
				}
			}
			if !ok {
				continue // FCFS per pinned host: skip, try next job
			}
			hosts = j.Assigned
		} else {
			free := make([]string, 0)
			for h := range s.moms {
				if _, busy := s.busy[h]; !busy && !s.offline[h] {
					free = append(free, h)
				}
			}
			sort.Strings(free)
			if len(free) < j.NodeCount {
				continue
			}
			hosts = free[:j.NodeCount]
		}
		j.Assigned = hosts
		j.State = StateRunning
		var execs []Executor
		for _, h := range hosts {
			s.busy[h] = j.ID
			execs = append(execs, s.moms[h])
		}
		launches = append(launches, launch{job: j, hosts: hosts, execs: execs})
		started++
	}
	s.mu.Unlock()

	// Run commands outside the lock: a reinstall command flips the node's
	// state machine, which may call back into the server.
	for _, l := range launches {
		if l.job.Command == "" {
			continue
		}
		allOK := true
		for i, h := range l.hosts {
			out, err := l.execs[i].Exec(l.job.Command)
			s.mu.Lock()
			l.job.Output[h] = out
			if err != nil {
				l.job.Err = err
				allOK = false
			}
			s.mu.Unlock()
		}
		if !l.job.Hold {
			s.mu.Lock()
			if l.job.State == StateRunning { // may already be Failed by UnregisterMom
				if allOK {
					l.job.State = StateComplete
				} else {
					l.job.State = StateFailed
				}
				for _, h := range l.hosts {
					if s.busy[h] == l.job.ID {
						delete(s.busy, h)
					}
				}
			}
			s.mu.Unlock()
		}
	}
	return started
}

// QStat renders the queue the way qstat does.
func (s *Server) QStat() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-24s %-6s %s\n", "Job id", "Name", "State", "Nodes")
	for _, j := range s.Jobs() {
		fmt.Fprintf(&b, "%-6d %-24s %-6s %s\n", j.ID, j.Name, j.State, strings.Join(j.Assigned, ","))
	}
	return b.String()
}

// Qdel removes a job: a queued job is simply deleted from consideration; a
// running job is terminated (its nodes freed). Completed jobs cannot be
// deleted — their record is the accounting trail.
func (s *Server) Qdel(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("pbs: no job %d", id)
	}
	switch j.State {
	case StateQueued:
		j.State = StateFailed
		j.Err = fmt.Errorf("pbs: deleted by qdel")
		return nil
	case StateRunning:
		j.State = StateFailed
		j.Err = fmt.Errorf("pbs: deleted by qdel")
		for _, h := range j.Assigned {
			if s.busy[h] == id {
				delete(s.busy, h)
			}
		}
		return nil
	default:
		return fmt.Errorf("pbs: job %d already %s", id, j.State)
	}
}

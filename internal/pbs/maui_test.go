package pbs

import (
	"testing"
	"time"
)

func TestMauiSchedulesInBackground(t *testing.T) {
	s, _ := serverWithNodes("c0", "c1")
	m := NewMaui(s, 5*time.Millisecond)
	m.Start()
	defer m.Stop()

	id := s.Submit(Job{Name: "auto", NodeCount: 2, Command: "hostname"})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if j, _ := s.Job(id); j.State == StateComplete {
			break
		}
		if time.Now().After(deadline) {
			j, _ := s.Job(id)
			t.Fatalf("job never scheduled: %+v", j)
		}
		time.Sleep(time.Millisecond)
	}
	if m.Passes() == 0 {
		t.Error("no scheduling passes recorded")
	}
}

func TestMauiKick(t *testing.T) {
	s, _ := serverWithNodes("c0")
	m := NewMaui(s, time.Hour) // interval effectively never fires
	m.Start()
	defer m.Stop()
	id := s.Submit(Job{Name: "kicked", NodeCount: 1, Command: "hostname"})
	m.Kick()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if j, _ := s.Job(id); j.State == StateComplete {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("kick did not trigger a pass")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMauiStopIdempotent(t *testing.T) {
	s := NewServer()
	m := NewMaui(s, 0)
	m.Start()
	m.Stop()
	m.Stop()
	m.Kick() // must not panic after stop
}

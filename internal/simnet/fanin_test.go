package simnet

import (
	"fmt"
	"math"
	"testing"
)

// fanInRun drives n flows with staggered sizes through one shared server
// link (each flow also crossing its own client NIC) and records the
// completion order and times.
func fanInRun(n int) (order []string, times []float64, firstRate float64) {
	s := New()
	server := s.NewLink("server", 1e9)
	for i := 0; i < n; i++ {
		nic := s.NewLink(fmt.Sprintf("nic-%04d", i), 1e9) // never the bottleneck
		name := fmt.Sprintf("flow-%04d", i)
		bytes := 1e6 * float64(1+(i*7)%97)
		s.StartFlow(name, bytes, []*Link{server, nic}, 0, func() {
			order = append(order, name)
			times = append(times, s.Now())
		})
	}
	// One shared link, n equal claimants: max-min gives everyone C/n.
	firstRate = s.flowList[0].Rate()
	s.Run()
	return order, times, firstRate
}

// TestFanInSharedBottleneckFairness pushes 10k flows through one shared
// bottleneck: every flow must receive exactly the max-min fair share, flows
// must complete shortest-first, and the whole run must stay comfortably
// inside wall-clock budgets that the old O(links × flows) water-filling
// could not meet.
func TestFanInSharedBottleneckFairness(t *testing.T) {
	const n = 10000
	order, times, firstRate := fanInRun(n)

	if want := 1e9 / float64(n); !almost(firstRate, want, want*1e-9) {
		t.Fatalf("fair share = %g, want %g", firstRate, want)
	}
	if len(order) != n {
		t.Fatalf("completed %d flows, want %d", len(order), n)
	}
	// Max-min on one bottleneck means strictly shorter flows finish no
	// later than longer ones: completion times must be sorted.
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1]-timeEpsilon {
			t.Fatalf("completion times not monotonic at %d: %g after %g", i, times[i], times[i-1])
		}
	}
	// Flows that complete at the same instant run in (start, name) order;
	// starts are all zero here, so equal-time runs must be name-sorted.
	for i := 1; i < len(order); i++ {
		if times[i] == times[i-1] && order[i] < order[i-1] {
			t.Fatalf("same-instant completions out of name order: %s before %s", order[i-1], order[i])
		}
	}
}

// TestFanInDeterministic replays the 10k-flow fan-in and requires the
// completion order and every completion timestamp to be bit-identical —
// the property the modeled-time experiments (and their recorded BENCH
// numbers) depend on.
func TestFanInDeterministic(t *testing.T) {
	order1, times1, _ := fanInRun(10000)
	order2, times2, _ := fanInRun(10000)
	if len(order1) != len(order2) {
		t.Fatalf("runs completed %d vs %d flows", len(order1), len(order2))
	}
	for i := range order1 {
		if order1[i] != order2[i] {
			t.Fatalf("completion order diverged at %d: %s vs %s", i, order1[i], order2[i])
		}
		if times1[i] != times2[i] {
			t.Fatalf("completion time diverged at %d (%s): %v vs %v", i, order1[i], times1[i], times2[i])
		}
	}
}

// TestRateCapComposesWithMultiLinkPath is a regression test that per-flow
// rate caps and multi-link paths interact correctly: a capped flow must not
// claim more than its cap even when its links have headroom, and the
// capacity it leaves behind must be redistributed to uncapped flows sharing
// any of its links.
func TestRateCapComposesWithMultiLinkPath(t *testing.T) {
	s := New()
	a := s.NewLink("a", 10)
	b := s.NewLink("b", 6)
	c := s.NewLink("c", 20)

	capped := s.StartFlow("capped", 100, []*Link{a, b, c}, 1, nil)
	free := s.StartFlow("free", 100, []*Link{a, b}, 0, nil)

	// Water-filling: both rise to 1 (capped freezes at its cap), then
	// "free" continues until link b (6 B/s) saturates at 1 + 5.
	if got := capped.Rate(); !almost(got, 1, 1e-9) {
		t.Errorf("capped flow rate = %g, want 1 (cap binds below every link)", got)
	}
	if got := free.Rate(); !almost(got, 5, 1e-9) {
		t.Errorf("uncapped flow rate = %g, want 5 (b's leftover)", got)
	}
	if got := s.Utilization(b); !almost(got, 1, 1e-9) {
		t.Errorf("bottleneck utilization = %g, want 1", got)
	}
	if got := s.Utilization(a); !almost(got, 0.6, 1e-9) {
		t.Errorf("link a utilization = %g, want 0.6", got)
	}

	// A cap above the fair share must not bind: replace the capped flow
	// with one capped at 100 and the two flows split b evenly.
	capped.Cancel()
	loose := s.StartFlow("loose", 100, []*Link{a, b, c}, 100, nil)
	if got := loose.Rate(); !almost(got, 3, 1e-9) {
		t.Errorf("loosely capped flow rate = %g, want 3 (fair half of b)", got)
	}
	if got := free.Rate(); !almost(got, 3, 1e-9) {
		t.Errorf("uncapped flow rate = %g, want 3 (fair half of b)", got)
	}

	// Completion timing must reflect the capped phase: drain the rest and
	// check total time is finite and consistent with conservation.
	end := s.Run()
	if math.IsInf(end, 1) || end <= 0 {
		t.Fatalf("simulation never drained: end=%g", end)
	}
}

// TestFanInLateArrivalsRebalance checks max-min fairness holds through
// churn at scale: 1000 flows share a bottleneck, 1000 more arrive later,
// and the share halves for everyone.
func TestFanInLateArrivalsRebalance(t *testing.T) {
	s := New()
	server := s.NewLink("server", 1e6)
	var first *Flow
	for i := 0; i < 1000; i++ {
		f := s.StartFlow(fmt.Sprintf("early-%04d", i), 1e9, []*Link{server}, 0, nil)
		if i == 0 {
			first = f
		}
	}
	if got, want := first.Rate(), 1e6/1000; !almost(got, want, want*1e-9) {
		t.Fatalf("early share = %g, want %g", got, want)
	}
	s.After(10, func() {
		for i := 0; i < 1000; i++ {
			s.StartFlow(fmt.Sprintf("late-%04d", i), 1e9, []*Link{server}, 0, nil)
		}
	})
	s.RunUntil(10)
	if got, want := first.Rate(), 1e6/2000; !almost(got, want, want*1e-9) {
		t.Fatalf("share after late arrivals = %g, want %g", got, want)
	}
	if got := s.ActiveFlows(); got != 2000 {
		t.Fatalf("active flows = %d, want 2000", got)
	}
}

package simnet

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTimerOrderingDeterministic(t *testing.T) {
	s := New()
	var got []int
	s.After(2, func() { got = append(got, 2) })
	s.After(1, func() { got = append(got, 1) })
	s.After(1, func() { got = append(got, 10) }) // same time: scheduled later, fires later
	s.After(0, func() { got = append(got, 0) })
	end := s.Run()
	want := []int{0, 1, 10, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if end != 2 {
		t.Errorf("final time = %g, want 2", end)
	}
}

func TestTimerStop(t *testing.T) {
	s := New()
	fired := false
	tm := s.After(1, func() { fired = true })
	s.After(0.5, func() { tm.Stop() })
	s.Run()
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []float64
	for _, d := range []float64{1, 2, 3} {
		d := d
		s.After(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(2)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want two events", fired)
	}
	if s.Now() != 2 {
		t.Errorf("Now = %g, want 2", s.Now())
	}
	s.Run()
	if len(fired) != 3 {
		t.Errorf("remaining event did not fire: %v", fired)
	}
}

func TestSingleFlowRate(t *testing.T) {
	s := New()
	l := s.NewLink("eth", 100) // 100 B/s
	var doneAt float64
	s.StartFlow("f", 500, []*Link{l}, 0, func() { doneAt = s.Now() })
	s.Run()
	if !almost(doneAt, 5, 1e-6) {
		t.Errorf("500 B over 100 B/s finished at %g, want 5", doneAt)
	}
}

func TestFlowCapLimitsRate(t *testing.T) {
	s := New()
	l := s.NewLink("eth", 100)
	var doneAt float64
	s.StartFlow("f", 500, []*Link{l}, 50, func() { doneAt = s.Now() })
	s.Run()
	if !almost(doneAt, 10, 1e-6) {
		t.Errorf("capped flow finished at %g, want 10", doneAt)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	s := New()
	l := s.NewLink("eth", 100)
	var at1, at2 float64
	s.StartFlow("a", 500, []*Link{l}, 0, func() { at1 = s.Now() })
	s.StartFlow("b", 500, []*Link{l}, 0, func() { at2 = s.Now() })
	s.Run()
	// Equal shares of 50 B/s each: both finish at t=10.
	if !almost(at1, 10, 1e-6) || !almost(at2, 10, 1e-6) {
		t.Errorf("finish times %g, %g; want 10, 10", at1, at2)
	}
}

func TestLateArrivalSlowsExistingFlow(t *testing.T) {
	s := New()
	l := s.NewLink("eth", 100)
	var at1, at2 float64
	s.StartFlow("a", 500, []*Link{l}, 0, func() { at1 = s.Now() })
	s.After(2.5, func() {
		// At t=2.5 flow a has 250 B left. Now both share 50 B/s.
		s.StartFlow("b", 500, []*Link{l}, 0, func() { at2 = s.Now() })
	})
	s.Run()
	// a: 250 B at 50 B/s => finishes at 7.5. Then b has 500-250=250 left,
	// alone at 100 B/s => finishes at 7.5+2.5 = 10.
	if !almost(at1, 7.5, 1e-6) {
		t.Errorf("flow a finished at %g, want 7.5", at1)
	}
	if !almost(at2, 10, 1e-6) {
		t.Errorf("flow b finished at %g, want 10", at2)
	}
}

func TestMaxMinWithHeterogeneousCaps(t *testing.T) {
	// Three flows on a 100 B/s link, one capped at 10 B/s. Max-min: capped
	// flow gets 10, the other two split the remaining 90 → 45 each.
	s := New()
	l := s.NewLink("eth", 100)
	fa := s.StartFlow("a", 1e9, []*Link{l}, 10, nil)
	fb := s.StartFlow("b", 1e9, []*Link{l}, 0, nil)
	fc := s.StartFlow("c", 1e9, []*Link{l}, 0, nil)
	if !almost(fa.Rate(), 10, 1e-6) || !almost(fb.Rate(), 45, 1e-6) || !almost(fc.Rate(), 45, 1e-6) {
		t.Errorf("rates = %g %g %g, want 10 45 45", fa.Rate(), fb.Rate(), fc.Rate())
	}
	fa.Cancel()
	fb.Cancel()
	fc.Cancel()
}

func TestTwoLinkPathBottleneck(t *testing.T) {
	// Flow crosses a fast client link and a slow server link; the slow one
	// is the bottleneck.
	s := New()
	server := s.NewLink("server", 50)
	client := s.NewLink("client", 1000)
	var doneAt float64
	s.StartFlow("f", 500, []*Link{server, client}, 0, func() { doneAt = s.Now() })
	s.Run()
	if !almost(doneAt, 10, 1e-6) {
		t.Errorf("finished at %g, want 10", doneAt)
	}
}

func TestParkingLotFairness(t *testing.T) {
	// Classic parking-lot: flow X crosses links L1 and L2; flow A uses only
	// L1; flow B uses only L2. Both links 100 B/s. Max-min: X gets 50 on
	// both, A gets 50, B gets 50.
	s := New()
	l1 := s.NewLink("l1", 100)
	l2 := s.NewLink("l2", 100)
	fx := s.StartFlow("x", 1e9, []*Link{l1, l2}, 0, nil)
	fa := s.StartFlow("a", 1e9, []*Link{l1}, 0, nil)
	fb := s.StartFlow("b", 1e9, []*Link{l2}, 0, nil)
	if !almost(fx.Rate(), 50, 1e-6) || !almost(fa.Rate(), 50, 1e-6) || !almost(fb.Rate(), 50, 1e-6) {
		t.Errorf("rates = %g %g %g, want 50 50 50", fx.Rate(), fa.Rate(), fb.Rate())
	}
}

func TestUnevenParkingLot(t *testing.T) {
	// L1 = 100, L2 = 30. X crosses both, A uses L1 only.
	// Water-filling: X freezes at 30 (L2 saturates), A then takes 70.
	s := New()
	l1 := s.NewLink("l1", 100)
	l2 := s.NewLink("l2", 30)
	fx := s.StartFlow("x", 1e9, []*Link{l1, l2}, 0, nil)
	fa := s.StartFlow("a", 1e9, []*Link{l1}, 0, nil)
	if !almost(fx.Rate(), 30, 1e-6) {
		t.Errorf("x rate = %g, want 30", fx.Rate())
	}
	if !almost(fa.Rate(), 70, 1e-6) {
		t.Errorf("a rate = %g, want 70", fa.Rate())
	}
}

func TestZeroByteFlowCompletes(t *testing.T) {
	s := New()
	l := s.NewLink("eth", 100)
	done := false
	s.StartFlow("z", 0, []*Link{l}, 0, func() { done = true })
	s.Run()
	if !done {
		t.Error("zero-byte flow never completed")
	}
	if s.Now() != 0 {
		t.Errorf("zero-byte flow advanced the clock to %g", s.Now())
	}
}

func TestCancelFreesBandwidth(t *testing.T) {
	s := New()
	l := s.NewLink("eth", 100)
	fa := s.StartFlow("a", 1e9, []*Link{l}, 0, nil)
	fb := s.StartFlow("b", 1e9, []*Link{l}, 0, nil)
	if !almost(fa.Rate(), 50, 1e-6) {
		t.Fatalf("pre-cancel rate = %g", fa.Rate())
	}
	fb.Cancel()
	if !almost(fa.Rate(), 100, 1e-6) {
		t.Errorf("post-cancel rate = %g, want 100", fa.Rate())
	}
	if s.ActiveFlows() != 1 {
		t.Errorf("ActiveFlows = %d, want 1", s.ActiveFlows())
	}
}

func TestRemainingMidFlight(t *testing.T) {
	s := New()
	l := s.NewLink("eth", 100)
	f := s.StartFlow("f", 1000, []*Link{l}, 0, nil)
	s.After(3, func() {
		if !almost(f.Remaining(), 700, 1e-6) {
			t.Errorf("Remaining at t=3 = %g, want 700", f.Remaining())
		}
	})
	s.Run()
}

func TestUtilization(t *testing.T) {
	s := New()
	l := s.NewLink("eth", 100)
	s.StartFlow("f", 1e9, []*Link{l}, 25, nil)
	if got := s.Utilization(l); !almost(got, 0.25, 1e-9) {
		t.Errorf("Utilization = %g, want 0.25", got)
	}
}

// Property: total allocated rate on any link never exceeds its capacity, and
// every flow gets a strictly positive rate (no starvation) — the two
// invariants max-min fairness must uphold.
func TestPropertyConservationAndNoStarvation(t *testing.T) {
	f := func(nFlows uint8, capSeed uint8) bool {
		n := int(nFlows)%12 + 1
		s := New()
		server := s.NewLink("server", 1000)
		flows := make([]*Flow, n)
		for i := 0; i < n; i++ {
			client := s.NewLink("client", 400)
			capRate := 0.0
			if (int(capSeed)+i)%3 == 0 {
				capRate = float64(50 + 10*i)
			}
			flows[i] = s.StartFlow("f", 1e9, []*Link{server, client}, capRate, nil)
		}
		var total float64
		for _, fl := range flows {
			if fl.Rate() <= 0 {
				return false // starvation
			}
			total += fl.Rate()
		}
		return total <= 1000+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: with identical uncapped flows, completion order equals start
// order and all rates are equal (symmetry).
func TestPropertySymmetricFlowsFinishTogether(t *testing.T) {
	s := New()
	l := s.NewLink("eth", 700)
	const n = 7
	var finishes []float64
	for i := 0; i < n; i++ {
		s.StartFlow("f", 7000, []*Link{l}, 0, func() { finishes = append(finishes, s.Now()) })
	}
	s.Run()
	if len(finishes) != n {
		t.Fatalf("only %d flows completed", len(finishes))
	}
	sort.Float64s(finishes)
	// n flows, each 7000 B, sharing 700 B/s → everyone at 100 B/s, done at 70.
	if !almost(finishes[0], 70, 1e-6) || !almost(finishes[n-1], 70, 1e-6) {
		t.Errorf("finishes = %v, want all 70", finishes)
	}
}

func TestNestedTimersAndFlows(t *testing.T) {
	// A small process chain: timer → flow → timer → flow; validates that
	// callbacks can schedule further work.
	s := New()
	l := s.NewLink("eth", 10)
	var trace []float64
	s.After(1, func() {
		s.StartFlow("f1", 20, []*Link{l}, 0, func() {
			trace = append(trace, s.Now()) // t=3
			s.After(2, func() {
				s.StartFlow("f2", 10, []*Link{l}, 0, func() {
					trace = append(trace, s.Now()) // t=6
				})
			})
		})
	})
	s.Run()
	if len(trace) != 2 || !almost(trace[0], 3, 1e-6) || !almost(trace[1], 6, 1e-6) {
		t.Errorf("trace = %v, want [3 6]", trace)
	}
}

func TestPastEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("scheduling into the past should panic at dispatch")
		}
	}()
	s := New()
	s.push(-5, func() {})
	s.After(1, func() {})
	s.Run()
}

// TestPropertyRandomChurn drives the simulator with a randomized schedule
// of flow arrivals and cancellations and checks the global invariants:
// the simulation terminates, every surviving flow completes exactly once,
// and sampled link allocations never exceed capacity.
func TestPropertyRandomChurn(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		s := New()
		links := make([]*Link, 3)
		for i := range links {
			links[i] = s.NewLink(fmt.Sprintf("l%d", i), 100+float64(r.Intn(900)))
		}
		type tracked struct {
			flow      *Flow
			completed int
			cancelled bool
		}
		var flows []*tracked
		nFlows := 5 + r.Intn(20)
		for i := 0; i < nFlows; i++ {
			i := i
			at := r.Float64() * 50
			size := 10 + r.Float64()*5000
			cap := 0.0
			if r.Intn(3) == 0 {
				cap = 10 + r.Float64()*200
			}
			path := []*Link{links[r.Intn(len(links))]}
			if r.Intn(2) == 0 {
				path = append(path, links[r.Intn(len(links))])
			}
			// Avoid duplicate links in a path (counts double otherwise).
			if len(path) == 2 && path[0] == path[1] {
				path = path[:1]
			}
			tr := &tracked{}
			flows = append(flows, tr)
			capCopy, pathCopy, sizeCopy := cap, path, size
			s.After(at, func() {
				tr.flow = s.StartFlow(fmt.Sprintf("f%d", i), sizeCopy, pathCopy, capCopy, func() {
					tr.completed++
				})
			})
			if r.Intn(4) == 0 {
				s.After(at+r.Float64()*20, func() {
					if tr.flow != nil {
						tr.cancelled = true
						tr.flow.Cancel()
					}
				})
			}
		}
		// Sample conservation at random instants.
		for i := 0; i < 10; i++ {
			s.After(r.Float64()*100, func() {
				for _, l := range links {
					if u := s.Utilization(l); u > 1+1e-6 {
						t.Errorf("seed %d: link %s over capacity: %.3f", seed, l.Name, u)
					}
				}
			})
		}
		s.Run()
		for i, tr := range flows {
			if tr.cancelled {
				if tr.completed > 1 {
					t.Errorf("seed %d: flow %d completed %d times after cancel", seed, i, tr.completed)
				}
				continue
			}
			if tr.completed != 1 {
				t.Errorf("seed %d: flow %d completed %d times, want 1", seed, i, tr.completed)
			}
		}
	}
}

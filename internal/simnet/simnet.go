// Package simnet is a deterministic discrete-event network simulator used to
// reproduce the paper's timing results (Table I and the §6.3 scaling claims)
// without a 32-node testbed.
//
// The model is fluid-flow: a Flow moves a byte count across a Path of shared
// Links, and at any instant the set of active flows shares link capacity
// max-min fairly (progressive water-filling, with optional per-flow rate
// caps modelling a client NIC or an application's limited demand). Between
// rate changes, flows drain linearly, so the simulator only processes events
// at flow arrivals, departures, and timer expirations — a 32-node, 10-minute
// reinstallation replays in microseconds of wall-clock time.
//
// Rate reallocation is batched: starts, cancellations, and completions that
// land on the same virtual instant are absorbed into one water-filling pass,
// run just before the clock moves (or on demand when rates are observed).
// Water-filling touches only the links active flows actually cross, so a
// 10k-flow fan-in costs O(flows + active links) per pass rather than
// O(flows × registered links). That is what makes whole-fleet experiments
// (1k–10k nodes reinstalling at once) tractable.
//
// Virtual time is a float64 in seconds. All scheduling is deterministic:
// events at equal times fire in the order they were scheduled, and onDone
// callbacks for simultaneous completions run in (start time, flow name)
// order.
package simnet

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// timeEpsilon guards float comparisons on the virtual clock.
const timeEpsilon = 1e-9

// Simulation owns the virtual clock, the event queue, and the set of active
// flows. It is not safe for concurrent use; a simulation is single-threaded
// by construction (determinism is the point).
type Simulation struct {
	now    float64
	seq    int64
	events eventQueue

	// flowList holds active flows in start order (start times are
	// monotonic, so append order is (start, arrival) order). Retired flows
	// are marked done and compacted out at the next rate flush.
	flowList []*Flow
	live     int

	// dirty marks that the flow set changed since rates were last computed.
	// The reallocation runs once per virtual instant — after every event at
	// that time has fired — or immediately when rates are observed.
	dirty bool

	// allocGen stamps per-link scratch state (capLeft, users) so a
	// water-filling pass can reset only the links it touches.
	allocGen int64

	// completionGen invalidates the pending earliest-flow-completion event
	// whenever rates are reallocated.
	completionGen int64
}

// New creates an empty simulation at virtual time zero.
func New() *Simulation {
	return &Simulation{}
}

// Now returns the current virtual time in seconds.
func (s *Simulation) Now() float64 { return s.now }

// Timer is a scheduled callback; it can be stopped before it fires.
type Timer struct {
	stopped bool
}

// Stop prevents the timer's callback from running. It is a no-op if the
// timer already fired.
func (t *Timer) Stop() { t.stopped = true }

// After schedules fn to run once, delay seconds from now. A negative delay
// fires immediately (at the current time).
func (s *Simulation) After(delay float64, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	t := &Timer{}
	s.push(s.now+delay, func() {
		if !t.stopped {
			fn()
		}
	})
	return t
}

// Run processes events until none remain, and returns the final virtual
// time.
func (s *Simulation) Run() float64 {
	for {
		s.maybeFlush()
		if len(s.events) == 0 {
			return s.now
		}
		s.step()
	}
}

// RunUntil processes events up to and including virtual time t, leaving
// later events queued. The clock is left at t (or at the last event time if
// that is later than any remaining event).
func (s *Simulation) RunUntil(t float64) {
	for {
		s.maybeFlush()
		if len(s.events) == 0 || s.events[0].at > t+timeEpsilon {
			break
		}
		s.step()
	}
	if s.now < t {
		s.now = t
	}
}

// maybeFlush recomputes rates if the flow set changed and every event at the
// current instant has fired. Holding the flush until the batch is complete
// collapses thousands of same-time starts or completions into a single
// water-filling pass without changing any observable timing: no virtual time
// passes between same-instant events.
func (s *Simulation) maybeFlush() {
	if !s.dirty {
		return
	}
	if len(s.events) > 0 && s.events[0].at <= s.now+timeEpsilon {
		return // more events at this instant: keep batching
	}
	s.flush()
}

// settle forces any pending reallocation so observers (Rate, Remaining,
// Utilization) see post-batch state.
func (s *Simulation) settle() {
	if s.dirty {
		s.flush()
	}
}

func (s *Simulation) step() {
	ev := heap.Pop(&s.events).(*event)
	if ev.at < s.now-timeEpsilon {
		panic(fmt.Sprintf("simnet: event at t=%g scheduled in the past (now=%g)", ev.at, s.now))
	}
	if ev.at > s.now {
		s.now = ev.at
	}
	ev.fn()
}

func (s *Simulation) push(at float64, fn func()) {
	s.seq++
	heap.Push(&s.events, &event{at: at, seq: s.seq, fn: fn})
}

type event struct {
	at  float64
	seq int64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Link is a shared transmission resource with a fixed capacity in bytes per
// second. All flows whose Path includes the link share it max-min fairly.
type Link struct {
	Name     string
	Capacity float64 // bytes/second

	// Water-filling scratch, valid only while gen == Simulation.allocGen.
	gen     int64
	capLeft float64
	users   int
}

// NewLink registers a link with the simulation.
func (s *Simulation) NewLink(name string, capacity float64) *Link {
	if capacity <= 0 {
		panic("simnet: link capacity must be positive")
	}
	return &Link{Name: name, Capacity: capacity}
}

// Utilization returns the fraction of the link's capacity currently
// allocated to active flows.
func (s *Simulation) Utilization(l *Link) float64 {
	s.settle()
	var used float64
	for _, f := range s.flowList {
		if f.done {
			continue
		}
		for _, fl := range f.path {
			if fl == l {
				used += f.rate
			}
		}
	}
	return used / l.Capacity
}

// Flow is an in-progress bulk transfer.
type Flow struct {
	Name string

	sim       *Simulation
	path      []*Link
	cap       float64 // per-flow rate cap; 0 means uncapped
	remaining float64 // bytes left at time `updated`
	rate      float64 // current allocated rate
	updated   float64 // virtual time of last remaining-bytes update
	onDone    func()
	done      bool
	frozen    bool // water-filling scratch
	start     float64
}

// StartFlow begins transferring `bytes` across `path`, calling onDone (which
// may be nil) when the last byte arrives. rateCap limits the flow's rate
// regardless of link availability; pass 0 for no cap. A zero-byte flow
// completes at the current time (onDone runs from the event loop, not
// inline).
func (s *Simulation) StartFlow(name string, bytes float64, path []*Link, rateCap float64, onDone func()) *Flow {
	if bytes < 0 {
		panic("simnet: negative flow size")
	}
	if len(path) == 0 && rateCap <= 0 {
		panic("simnet: flow needs at least one link or a rate cap")
	}
	f := &Flow{Name: name, sim: s, path: path, cap: rateCap, remaining: bytes, updated: s.now, onDone: onDone, start: s.now}
	s.flowList = append(s.flowList, f)
	s.live++
	s.dirty = true
	// A zero-byte flow must complete even if no other event flushes rates.
	if bytes <= timeEpsilon {
		s.push(s.now, func() {}) // forces a flush at this instant
	}
	return f
}

// Cancel aborts a flow, freeing its bandwidth; onDone is not called.
func (f *Flow) Cancel() {
	if f.done {
		return
	}
	// Charge the flow's own transfer up to now; peers are charged at the
	// next flush, before their rates change.
	f.chargeTo(f.sim.now)
	f.done = true
	f.sim.live--
	f.sim.dirty = true
}

// chargeTo drains the flow at its current rate up to virtual time t.
func (f *Flow) chargeTo(t float64) {
	if dt := t - f.updated; dt > 0 {
		f.remaining -= f.rate * dt
		if f.remaining < 0 {
			f.remaining = 0
		}
		f.updated = t
	}
}

// Remaining returns the bytes the flow still has to transfer as of the
// current virtual time.
func (f *Flow) Remaining() float64 {
	if f.done {
		return 0
	}
	f.sim.settle()
	return f.remaining - f.rate*(f.sim.now-f.updated)
}

// Rate returns the flow's currently allocated transfer rate in bytes/sec.
func (f *Flow) Rate() float64 {
	if f.done {
		return 0
	}
	f.sim.settle()
	return f.rate
}

// Elapsed returns how long the flow has been active.
func (f *Flow) Elapsed() float64 { return f.sim.now - f.start }

// advance charges elapsed time against every active flow's remaining bytes.
func (s *Simulation) advance() {
	for _, f := range s.flowList {
		if !f.done {
			f.chargeTo(s.now)
		}
	}
}

// compact drops retired flows from the flow list, preserving start order.
func (s *Simulation) compact() {
	if s.live == len(s.flowList) {
		return
	}
	kept := s.flowList[:0]
	for _, f := range s.flowList {
		if !f.done {
			kept = append(kept, f)
		}
	}
	for i := len(kept); i < len(s.flowList); i++ {
		s.flowList[i] = nil
	}
	s.flowList = kept
}

// flush advances flows to the current instant at their old rates, recomputes
// max-min fair rates, and schedules the next completion event.
func (s *Simulation) flush() {
	s.dirty = false
	s.advance()
	s.compact()
	s.waterfill()
	s.scheduleCompletion()
}

// waterfill runs progressive max-min water-filling over the active flows.
// All unfrozen flows' rates rise together; a flow freezes when it hits its
// cap or when one of its links saturates. Only links referenced by active
// flows are touched; per-link scratch (capLeft, user count) is reset by
// generation stamp, so the pass allocates nothing and costs
// O(flows + active links) per round.
func (s *Simulation) waterfill() {
	s.allocGen++
	gen := s.allocGen
	flows := s.flowList
	var active []*Link
	for _, f := range flows {
		f.rate = 0
		f.frozen = false
		for _, l := range f.path {
			if l.gen != gen {
				l.gen = gen
				l.capLeft = l.Capacity
				l.users = 0
				active = append(active, l)
			}
			l.users++
		}
	}

	unfrozen := len(flows)
	for unfrozen > 0 {
		// The common increment is limited by the tightest link share and
		// the nearest flow cap.
		delta := math.Inf(1)
		for _, l := range active {
			if l.users > 0 {
				if share := l.capLeft / float64(l.users); share < delta {
					delta = share
				}
			}
		}
		for _, f := range flows {
			if !f.frozen && f.cap > 0 {
				if room := f.cap - f.rate; room < delta {
					delta = room
				}
			}
		}
		if math.IsInf(delta, 1) {
			// Flows with no links and no cap cannot happen (StartFlow
			// rejects them), so delta is always finite here.
			panic("simnet: unbounded allocation")
		}
		if delta < 0 {
			delta = 0
		}
		// Apply the increment.
		for _, f := range flows {
			if !f.frozen {
				f.rate += delta
			}
		}
		for _, l := range active {
			l.capLeft -= delta * float64(l.users)
		}
		// Freeze capped flows and flows on saturated links. Flow order is
		// start order, so float noise is reproducible run to run.
		progressed := false
		for _, f := range flows {
			if f.frozen {
				continue
			}
			frozen := false
			if f.cap > 0 && f.rate >= f.cap-timeEpsilon {
				f.rate = f.cap
				frozen = true
			}
			if !frozen {
				for _, l := range f.path {
					if l.capLeft <= timeEpsilon {
						frozen = true
						break
					}
				}
			}
			if frozen {
				f.frozen = true
				unfrozen--
				progressed = true
				for _, l := range f.path {
					l.users--
				}
			}
		}
		if !progressed && delta <= timeEpsilon {
			// Numerical stall: leave everything at current rates.
			break
		}
	}
}

// scheduleCompletion finds the flow that will finish first at current rates
// and schedules its completion; any previously scheduled completion event is
// invalidated via the generation counter.
func (s *Simulation) scheduleCompletion() {
	s.completionGen++
	gen := s.completionGen
	best := math.Inf(1)
	found := false
	for _, f := range s.flowList {
		if f.rate <= 0 {
			if f.remaining <= timeEpsilon {
				// Zero-byte flow: completes now.
				best = 0
				found = true
			}
			continue
		}
		if t := f.remaining / f.rate; t < best {
			best = t
			found = true
		}
	}
	if !found {
		return
	}
	s.push(s.now+best, func() {
		if gen != s.completionGen {
			return // stale: rates changed since this was scheduled
		}
		s.completeFinished()
	})
}

// completeFinished retires every flow whose remaining bytes reached zero.
// onDone callbacks run in deterministic (start, name) order; the rate
// reallocation they trigger is batched with any same-instant starts.
func (s *Simulation) completeFinished() {
	s.advance()
	var finished []*Flow
	for _, f := range s.flowList {
		if !f.done && f.remaining <= 1e-6 { // byte-level epsilon
			finished = append(finished, f)
		}
	}
	sort.Slice(finished, func(i, j int) bool {
		return finished[i].start < finished[j].start ||
			(finished[i].start == finished[j].start && finished[i].Name < finished[j].Name)
	})
	for _, f := range finished {
		f.done = true
		s.live--
	}
	s.dirty = true
	for _, f := range finished {
		if f.onDone != nil {
			f.onDone()
		}
	}
}

// ActiveFlows reports the number of in-progress flows.
func (s *Simulation) ActiveFlows() int { return s.live }

// Package simnet is a deterministic discrete-event network simulator used to
// reproduce the paper's timing results (Table I and the §6.3 scaling claims)
// without a 32-node testbed.
//
// The model is fluid-flow: a Flow moves a byte count across a Path of shared
// Links, and at any instant the set of active flows shares link capacity
// max-min fairly (progressive water-filling, with optional per-flow rate
// caps modelling a client NIC or an application's limited demand). Between
// rate changes, flows drain linearly, so the simulator only processes events
// at flow arrivals, departures, and timer expirations — a 32-node, 10-minute
// reinstallation replays in microseconds of wall-clock time.
//
// Virtual time is a float64 in seconds. All scheduling is deterministic:
// events at equal times fire in the order they were scheduled.
package simnet

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// timeEpsilon guards float comparisons on the virtual clock.
const timeEpsilon = 1e-9

// Simulation owns the virtual clock, the event queue, and the set of active
// flows. It is not safe for concurrent use; a simulation is single-threaded
// by construction (determinism is the point).
type Simulation struct {
	now    float64
	seq    int64
	events eventQueue
	links  []*Link
	flows  map[*Flow]struct{}

	// completionTimer is the pending earliest-flow-completion event; it is
	// invalidated (not removed) whenever rates are reallocated.
	completionGen int64
}

// New creates an empty simulation at virtual time zero.
func New() *Simulation {
	return &Simulation{flows: make(map[*Flow]struct{})}
}

// Now returns the current virtual time in seconds.
func (s *Simulation) Now() float64 { return s.now }

// Timer is a scheduled callback; it can be stopped before it fires.
type Timer struct {
	stopped bool
}

// Stop prevents the timer's callback from running. It is a no-op if the
// timer already fired.
func (t *Timer) Stop() { t.stopped = true }

// After schedules fn to run once, delay seconds from now. A negative delay
// fires immediately (at the current time).
func (s *Simulation) After(delay float64, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	t := &Timer{}
	s.push(s.now+delay, func() {
		if !t.stopped {
			fn()
		}
	})
	return t
}

// Run processes events until none remain, and returns the final virtual
// time.
func (s *Simulation) Run() float64 {
	for len(s.events) > 0 {
		s.step()
	}
	return s.now
}

// RunUntil processes events up to and including virtual time t, leaving
// later events queued. The clock is left at t (or at the last event time if
// that is later than any remaining event).
func (s *Simulation) RunUntil(t float64) {
	for len(s.events) > 0 && s.events[0].at <= t+timeEpsilon {
		s.step()
	}
	if s.now < t {
		s.now = t
	}
}

func (s *Simulation) step() {
	ev := heap.Pop(&s.events).(*event)
	if ev.at < s.now-timeEpsilon {
		panic(fmt.Sprintf("simnet: event at t=%g scheduled in the past (now=%g)", ev.at, s.now))
	}
	if ev.at > s.now {
		s.now = ev.at
	}
	ev.fn()
}

func (s *Simulation) push(at float64, fn func()) {
	s.seq++
	heap.Push(&s.events, &event{at: at, seq: s.seq, fn: fn})
}

type event struct {
	at  float64
	seq int64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Link is a shared transmission resource with a fixed capacity in bytes per
// second. All flows whose Path includes the link share it max-min fairly.
type Link struct {
	Name     string
	Capacity float64 // bytes/second
}

// NewLink registers a link with the simulation.
func (s *Simulation) NewLink(name string, capacity float64) *Link {
	if capacity <= 0 {
		panic("simnet: link capacity must be positive")
	}
	l := &Link{Name: name, Capacity: capacity}
	s.links = append(s.links, l)
	return l
}

// Utilization returns the fraction of the link's capacity currently
// allocated to active flows.
func (s *Simulation) Utilization(l *Link) float64 {
	var used float64
	for f := range s.flows {
		for _, fl := range f.path {
			if fl == l {
				used += f.rate
			}
		}
	}
	return used / l.Capacity
}

// Flow is an in-progress bulk transfer.
type Flow struct {
	Name string

	sim       *Simulation
	path      []*Link
	cap       float64 // per-flow rate cap; 0 means uncapped
	remaining float64 // bytes left at time `updated`
	rate      float64 // current allocated rate
	updated   float64 // virtual time of last remaining-bytes update
	onDone    func()
	done      bool
	start     float64
}

// StartFlow begins transferring `bytes` across `path`, calling onDone (which
// may be nil) when the last byte arrives. rateCap limits the flow's rate
// regardless of link availability; pass 0 for no cap. A zero-byte flow
// completes at the current time (onDone runs from the event loop, not
// inline).
func (s *Simulation) StartFlow(name string, bytes float64, path []*Link, rateCap float64, onDone func()) *Flow {
	if bytes < 0 {
		panic("simnet: negative flow size")
	}
	f := &Flow{Name: name, sim: s, path: path, cap: rateCap, remaining: bytes, updated: s.now, onDone: onDone, start: s.now}
	if len(path) == 0 && rateCap <= 0 {
		panic("simnet: flow needs at least one link or a rate cap")
	}
	s.flows[f] = struct{}{}
	s.reallocate()
	return f
}

// Cancel aborts a flow, freeing its bandwidth; onDone is not called.
func (f *Flow) Cancel() {
	if f.done {
		return
	}
	f.sim.advance()
	f.done = true
	delete(f.sim.flows, f)
	f.sim.reallocate()
}

// Remaining returns the bytes the flow still has to transfer as of the
// current virtual time.
func (f *Flow) Remaining() float64 {
	if f.done {
		return 0
	}
	return f.remaining - f.rate*(f.sim.now-f.updated)
}

// Rate returns the flow's currently allocated transfer rate in bytes/sec.
func (f *Flow) Rate() float64 {
	if f.done {
		return 0
	}
	return f.rate
}

// Elapsed returns how long the flow has been active.
func (f *Flow) Elapsed() float64 { return f.sim.now - f.start }

// advance charges elapsed time against every active flow's remaining bytes.
func (s *Simulation) advance() {
	for f := range s.flows {
		dt := s.now - f.updated
		if dt > 0 {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
			f.updated = s.now
		}
	}
}

// reallocate recomputes max-min fair rates for all active flows and
// schedules the next completion event. Callers must have advanced flows to
// the current time first (StartFlow/advance do this).
func (s *Simulation) reallocate() {
	s.advance()

	// Progressive water-filling. All unfrozen flows' rates rise together;
	// a flow freezes when it hits its cap or when one of its links
	// saturates.
	capLeft := make(map[*Link]float64, len(s.links))
	for _, l := range s.links {
		capLeft[l] = l.Capacity
	}
	unfrozen := make(map[*Flow]struct{}, len(s.flows))
	ordered := make([]*Flow, 0, len(s.flows))
	for f := range s.flows {
		f.rate = 0
		unfrozen[f] = struct{}{}
		ordered = append(ordered, f)
	}
	sort.Slice(ordered, func(i, j int) bool {
		return ordered[i].start < ordered[j].start || (ordered[i].start == ordered[j].start && ordered[i].Name < ordered[j].Name)
	})

	linkUsers := func(l *Link) int {
		n := 0
		for f := range unfrozen {
			for _, fl := range f.path {
				if fl == l {
					n++
					break
				}
			}
		}
		return n
	}

	for len(unfrozen) > 0 {
		// The common increment is limited by the tightest link share and
		// the nearest flow cap.
		delta := math.Inf(1)
		for _, l := range s.links {
			if n := linkUsers(l); n > 0 {
				if share := capLeft[l] / float64(n); share < delta {
					delta = share
				}
			}
		}
		for f := range unfrozen {
			if f.cap > 0 {
				if room := f.cap - f.rate; room < delta {
					delta = room
				}
			}
		}
		if math.IsInf(delta, 1) {
			// Flows with no links and no cap cannot happen (StartFlow
			// rejects them), so delta is always finite here.
			panic("simnet: unbounded allocation")
		}
		if delta < 0 {
			delta = 0
		}
		// Apply the increment.
		for f := range unfrozen {
			f.rate += delta
		}
		for _, l := range s.links {
			if n := linkUsers(l); n > 0 {
				capLeft[l] -= delta * float64(n)
			}
		}
		// Freeze capped flows and flows on saturated links. Iterate over
		// the deterministic order to keep float noise reproducible.
		progressed := false
		for _, f := range ordered {
			if _, ok := unfrozen[f]; !ok {
				continue
			}
			frozen := false
			if f.cap > 0 && f.rate >= f.cap-timeEpsilon {
				f.rate = f.cap
				frozen = true
			}
			if !frozen {
				for _, l := range f.path {
					if capLeft[l] <= timeEpsilon {
						frozen = true
						break
					}
				}
			}
			if frozen {
				delete(unfrozen, f)
				progressed = true
			}
		}
		if !progressed && delta <= timeEpsilon {
			// Numerical stall: freeze everything at current rates.
			for f := range unfrozen {
				delete(unfrozen, f)
			}
		}
	}

	s.scheduleCompletion()
}

// scheduleCompletion finds the flow that will finish first at current rates
// and schedules its completion; any previously scheduled completion event is
// invalidated via the generation counter.
func (s *Simulation) scheduleCompletion() {
	s.completionGen++
	gen := s.completionGen
	best := math.Inf(1)
	found := false
	for f := range s.flows {
		if f.rate <= 0 {
			if f.remaining <= timeEpsilon {
				// Zero-byte flow: completes now.
				best = 0
				found = true
			}
			continue
		}
		if t := f.remaining / f.rate; t < best {
			best = t
			found = true
		}
	}
	if !found {
		return
	}
	s.push(s.now+best, func() {
		if gen != s.completionGen {
			return // stale: rates changed since this was scheduled
		}
		s.completeFinished()
	})
}

// completeFinished retires every flow whose remaining bytes reached zero,
// then reallocates. onDone callbacks run in deterministic (start, name)
// order.
func (s *Simulation) completeFinished() {
	s.advance()
	var finished []*Flow
	for f := range s.flows {
		if f.remaining <= 1e-6 { // byte-level epsilon
			finished = append(finished, f)
		}
	}
	sort.Slice(finished, func(i, j int) bool {
		return finished[i].start < finished[j].start ||
			(finished[i].start == finished[j].start && finished[i].Name < finished[j].Name)
	})
	for _, f := range finished {
		f.done = true
		delete(s.flows, f)
	}
	s.reallocate()
	for _, f := range finished {
		if f.onDone != nil {
			f.onDone()
		}
	}
}

// ActiveFlows reports the number of in-progress flows.
func (s *Simulation) ActiveFlows() int { return len(s.flows) }

// Package faults is a deterministic, seeded fault-injection layer for the
// cluster's service seams. The CERN and Brookhaven large-cluster reports
// (PAPERS.md) agree that at thousand-node scale transient failures —
// dropped DHCP offers, truncated package downloads, power controllers that
// ignore a cycle command — are the steady state, not the exception. The
// paper's remediation loop ends at a human; to close it mechanically (the
// core supervisor) we first need a way to manufacture those failures on
// demand, reproducibly, and to account for every one injected.
//
// An Injector owns a seeded PRNG and a rule table. Each service seam asks
// it one question — "should this event fail, and how?" — identified by an
// operation (Op) and the identities of the host involved (MAC, hostname,
// IP; whichever the seam knows). Rules select events by operation and a
// glob-lite host matcher, fire with a configured probability, and can be
// capped by count so a storm eventually dries up and the system under test
// can prove it converges. Every injection is recorded with a sequence
// number so tests can reconcile the supervisor's remediation log against
// exactly what was done to the cluster.
package faults

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// Op names an injectable seam.
type Op string

// The seams the cluster wires up.
const (
	// OpDHCPOffer drops an affirmative DHCP reply (OFFER or ACK) on the
	// broadcast bus — the node's DISCOVER goes unanswered.
	OpDHCPOffer Op = "dhcp.offer"
	// OpHTTPKickstart corrupts a kickstart CGI fetch.
	OpHTTPKickstart Op = "http.kickstart"
	// OpHTTPPackage corrupts a distribution fetch (listing, hdlist, RPM) —
	// from the frontend or from a peer relay; the seam is the fetching
	// node's client, so package-fault rules hit both.
	OpHTTPPackage Op = "http.package"
	// OpHTTPRelays corrupts a /v1/relays registry fetch. Kept distinct
	// from OpHTTPPackage so package-corruption campaigns don't silently
	// burn injections on the best-effort registry lookup.
	OpHTTPRelays Op = "http.relays"
	// OpHTTPFacts corrupts the agent's facts POST in transit (distinct from
	// OpFactsReport, which skews the content; and from OpHTTPPackage, so
	// package campaigns don't burn injections on the post-install report).
	OpHTTPFacts Op = "http.facts"
	// OpPowerCycle makes a PDU hard-cycle command fail silently: the relay
	// clicks, nothing happens, the node stays dark.
	OpPowerCycle Op = "power.cycle"
	// OpInstallWedge wedges a node mid-install: the installer dies between
	// partitioning and package installation, leaving the node crashed.
	OpInstallWedge Op = "install.wedge"
	// OpFactsReport perturbs the hardware facts a node's first-boot agent
	// reports — the agent's probe misreads the machine (flaky DMI tables,
	// a half-seated NIC) while the machine itself is fine. The skew is
	// deterministic, so a chaos test can reconcile every drift event the
	// frontend publishes against this injector's ledger.
	OpFactsReport Op = "facts.report"
)

// Mode refines how an HTTP fault manifests.
type Mode string

// HTTP failure modes. Non-HTTP ops ignore the mode.
const (
	// ModeError500 answers with HTTP 500 instead of performing the request.
	ModeError500 Mode = "error500"
	// ModeTruncate performs the request but cuts the body short.
	ModeTruncate Mode = "truncate"
	// ModeCorrupt performs the request but flips one bit in the middle of
	// the body, preserving its length — the silent corruption (bad NIC, bad
	// disk, bad switch) that only content digests can catch. Unlike
	// ModeTruncate the transfer looks completely successful.
	ModeCorrupt Mode = "corrupt"
	// ModeLatency delays the request by the rule's Latency, then lets it
	// proceed untouched. The fault still appears in the injection log.
	ModeLatency Mode = "latency"
	// ModeFactsSkew (OpFactsReport only) misreports actionable fields — the
	// architecture and the disk — plus a within-tolerance memory wobble that
	// drift detection must classify as benign. See FactsHook.
	ModeFactsSkew Mode = "facts-skew"
)

// Rule selects events to fail.
type Rule struct {
	// Op is the seam this rule applies to (required).
	Op Op
	// Hosts matches the event's host identities: "" or "*" match
	// everything; "prefix*" matches any identity with the prefix; anything
	// else must equal one identity exactly (a MAC, hostname, or IP).
	Hosts string
	// Prob is the chance an eligible event fails, in [0,1]. Zero means 1.0
	// — a rule with no probability always fires — so the common "fail the
	// next N" rule needs only Op+Count.
	Prob float64
	// Count caps how many times the rule fires; 0 is unlimited.
	Count int
	// Mode is the HTTP failure mode; defaults to ModeError500.
	Mode Mode
	// Latency is the delay for ModeLatency.
	Latency time.Duration
}

// Injection is one recorded fault.
type Injection struct {
	Seq  int
	Op   Op
	Host string // the first matched identity
	Mode Mode
}

// String renders the injection for logs.
func (i Injection) String() string {
	return fmt.Sprintf("#%d %s on %s (%s)", i.Seq, i.Op, i.Host, i.Mode)
}

type rule struct {
	Rule
	fired int
}

// Injector decides, deterministically for a given seed and event sequence,
// which events fail. It is safe for concurrent use; under concurrency the
// interleaving of PRNG draws follows goroutine scheduling, so tests that
// need an exact fault sequence must drive it from one goroutine, while
// chaos tests assert on the injection *log* instead.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*rule
	log   []Injection
}

// NewInjector creates an injector with the given seed and initial rules.
func NewInjector(seed int64, rules ...Rule) *Injector {
	inj := &Injector{rng: rand.New(rand.NewSource(seed))}
	for _, r := range rules {
		inj.AddRule(r)
	}
	return inj
}

// AddRule appends a rule; chaos tests add host-targeted rules once MACs are
// known.
func (inj *Injector) AddRule(r Rule) {
	if r.Mode == "" {
		r.Mode = ModeError500
	}
	if r.Prob <= 0 || r.Prob > 1 {
		r.Prob = 1
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.rules = append(inj.rules, &rule{Rule: r})
}

// matchHost applies the glob-lite matcher to one identity.
func matchHost(pattern, identity string) bool {
	if pattern == "" || pattern == "*" {
		return true
	}
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(identity, strings.TrimSuffix(pattern, "*"))
	}
	return pattern == identity
}

// ShouldInject reports whether an event at the given seam, involving a host
// known by the given identities, should fail — and in which mode. A firing
// is recorded in the injection log. The first rule that matches and fires
// wins; rules are consulted in the order they were added.
func (inj *Injector) ShouldInject(op Op, identities ...string) (Rule, bool) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for _, r := range inj.rules {
		if r.Op != op {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		host, matched := "", false
		for _, id := range identities {
			if id != "" && matchHost(r.Hosts, id) {
				host, matched = id, true
				break
			}
		}
		if !matched {
			continue
		}
		// Draw even for prob 1.0 so adding a probability to a rule does not
		// shift the draw sequence of later rules.
		if draw := inj.rng.Float64(); draw >= r.Prob {
			continue
		}
		r.fired++
		rec := Injection{Seq: len(inj.log) + 1, Op: op, Host: host, Mode: r.Mode}
		inj.log = append(inj.log, rec)
		return r.Rule, true
	}
	return Rule{}, false
}

// Injected returns a copy of the injection log in firing order.
func (inj *Injector) Injected() []Injection {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return append([]Injection(nil), inj.log...)
}

// CountOp reports how many injections fired for one seam.
func (inj *Injector) CountOp(op Op) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	n := 0
	for _, rec := range inj.log {
		if rec.Op == op {
			n++
		}
	}
	return n
}

// Exhausted reports whether every count-capped rule has fired out. Rules
// without a cap never exhaust.
func (inj *Injector) Exhausted() bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for _, r := range inj.rules {
		if r.Count == 0 || r.fired < r.Count {
			return false
		}
	}
	return true
}

package faults

import (
	"fmt"
	"os"
)

// Durability crash seams. The clusterdb write-ahead log asks the injector,
// at each point where a kill -9 would leave a distinct on-disk state,
// whether to die right there. A firing freezes the files exactly as the
// power failure would — nothing is unwound — and the database refuses all
// further mutations until the directory is reopened and recovered. Tests
// seed the injector, crash a discovery storm at each seam in turn, and
// assert recovery converges to the uncrashed reference.
const (
	// OpDBPreAppend kills the frontend before a mutation's WAL record is
	// written: neither the log nor memory has the statement. The client saw
	// an error, so nothing is lost.
	OpDBPreAppend Op = "db.wal.pre-append"
	// OpDBPostAppend kills the frontend after the WAL record is durable but
	// before the statement is applied in memory. Recovery replays the
	// record, so the unacknowledged statement reappears — the client must
	// treat its error as "unknown outcome", exactly as with a real database.
	OpDBPostAppend Op = "db.wal.post-append"
	// OpDBSnapshotMid kills the frontend halfway through writing a snapshot:
	// a partial .tmp file is left behind and must be ignored on recovery.
	OpDBSnapshotMid Op = "db.snapshot.mid"
	// OpDBRotateMid kills the frontend after the new snapshot is renamed
	// into place but before the WAL is truncated: recovery must not replay
	// records the snapshot already contains.
	OpDBRotateMid Op = "db.rotate.mid"
)

// CrashPoint asks whether a simulated kill -9 fires at a durability seam.
// A nil injector never crashes, so production paths pay one nil check.
func CrashPoint(inj *Injector, op Op, identities ...string) bool {
	if inj == nil {
		return false
	}
	_, fire := inj.ShouldInject(op, identities...)
	return fire
}

// TruncateTail cuts the last n bytes off a file — the torn write a power
// failure leaves when only a prefix of the final record reached the platter.
func TruncateTail(path string, n int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if n < 0 || n > fi.Size() {
		return fmt.Errorf("faults: TruncateTail(%s, %d): file holds %d bytes", path, n, fi.Size())
	}
	return os.Truncate(path, fi.Size()-n)
}

// FlipTailBit flips one bit fromEnd bytes before the end of a file — the
// in-place corruption of a sector that was being rewritten at power-off.
func FlipTailBit(path string, fromEnd int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	off := fi.Size() - 1 - fromEnd
	if off < 0 {
		return fmt.Errorf("faults: FlipTailBit(%s, %d): file holds %d bytes", path, fromEnd, fi.Size())
	}
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, off); err != nil {
		return err
	}
	b[0] ^= 0x10
	_, err = f.WriteAt(b, off)
	return err
}

package faults

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"rocks/internal/dhcp"
	"rocks/internal/hardware"
)

// ErrWedged is the root of every injected mid-install wedge.
var ErrWedged = errors.New("faults: node wedged mid-install")

// ErrPowerCycle is the root of every injected power-control failure.
var ErrPowerCycle = errors.New("faults: power controller ignored cycle command")

// WrapResponder interposes on a DHCP responder: affirmative replies
// (OFFER/ACK) selected by OpDHCPOffer rules are dropped on the floor, so
// the client's broadcast goes unanswered and its retry loop runs — the
// flaky-switch/lossy-segment failure the big-cluster reports describe.
func WrapResponder(next dhcp.Responder, inj *Injector) dhcp.Responder {
	return responderFunc(func(p dhcp.Packet) (dhcp.Packet, bool) {
		reply, ok := next.HandleDHCP(p)
		if !ok {
			return reply, ok
		}
		if _, drop := inj.ShouldInject(OpDHCPOffer, p.MAC, reply.Hostname); drop {
			return dhcp.Packet{}, false
		}
		return reply, ok
	})
}

type responderFunc func(dhcp.Packet) (dhcp.Packet, bool)

func (f responderFunc) HandleDHCP(p dhcp.Packet) (dhcp.Packet, bool) { return f(p) }

// Transport wraps an HTTP transport with fault injection. Requests for the
// kickstart CGI consult OpHTTPKickstart rules; everything else (listing,
// hdlist, RPM payloads) consults OpHTTPPackage. The identities callback
// supplies the requesting host's names at call time — a node learns its
// hostname mid-install, so identity must be late-bound.
type Transport struct {
	inj        *Injector
	next       http.RoundTripper
	identities func() []string
}

// NewTransport builds a fault-injecting RoundTripper. next nil means
// http.DefaultTransport; identities nil means no host identity (rules must
// match with a wildcard).
func NewTransport(inj *Injector, next http.RoundTripper, identities func() []string) *Transport {
	if next == nil {
		next = http.DefaultTransport
	}
	if identities == nil {
		identities = func() []string { return nil }
	}
	return &Transport{inj: inj, next: next, identities: identities}
}

// classifyPath maps a URL path to the HTTP seam it belongs to.
func classifyPath(path string) Op {
	if strings.Contains(path, "kickstart.cgi") {
		return OpHTTPKickstart
	}
	if strings.Contains(path, "/v1/relays") {
		return OpHTTPRelays
	}
	if strings.Contains(path, "/v1/facts") || strings.Contains(path, "/admin/facts") {
		return OpHTTPFacts
	}
	return OpHTTPPackage
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	op := classifyPath(req.URL.Path)
	ids := append(t.identities(), "*")
	rule, fire := t.inj.ShouldInject(op, ids...)
	if !fire {
		return t.next.RoundTrip(req)
	}
	switch rule.Mode {
	case ModeLatency:
		time.Sleep(rule.Latency)
		return t.next.RoundTrip(req)
	case ModeTruncate:
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		// Keep the advertised length, deliver half, and end the stream with
		// the unexpected-EOF a torn TCP connection produces.
		resp.Body = &truncatedBody{r: bytes.NewReader(body[:len(body)/2])}
		return resp, nil
	case ModeCorrupt:
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		resp.Body = io.NopCloser(bytes.NewReader(FlipBit(body)))
		resp.ContentLength = int64(len(body))
		return resp, nil
	default: // ModeError500
		body := "faults: injected server error\n"
		return &http.Response{
			Status:        "500 Internal Server Error",
			StatusCode:    http.StatusInternalServerError,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"text/plain"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
}

// FlipBit returns a copy of body with one bit inverted at the midpoint —
// the canonical injected corruption. Deterministic (no PRNG draw) so a
// test that knows the clean bytes knows the corrupt ones too; flipping a
// payload-interior bit leaves framing intact, which is exactly the failure
// only end-to-end digests detect. Empty bodies pass through unchanged.
func FlipBit(body []byte) []byte {
	out := append([]byte(nil), body...)
	if len(out) > 0 {
		out[len(out)/2] ^= 0x40
	}
	return out
}

// truncatedBody yields its bytes and then fails with ErrUnexpectedEOF,
// exactly as a connection dropped mid-body presents to io.ReadAll.
type truncatedBody struct{ r *bytes.Reader }

func (b *truncatedBody) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return nil }

// Middleware interposes on the frontend's install endpoints server-side.
// The requesting host's identity is taken from clientIPHeader when present
// (the kickstart CGI contract) and the remote address otherwise.
func Middleware(inj *Injector, clientIPHeader string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ids := []string{}
		if ip := r.Header.Get(clientIPHeader); ip != "" {
			ids = append(ids, ip)
		}
		if host, _, err := splitHostPort(r.RemoteAddr); err == nil {
			ids = append(ids, host)
		}
		ids = append(ids, "*")
		rule, fire := inj.ShouldInject(classifyPath(r.URL.Path), ids...)
		if !fire {
			next.ServeHTTP(w, r)
			return
		}
		switch rule.Mode {
		case ModeLatency:
			time.Sleep(rule.Latency)
			next.ServeHTTP(w, r)
		case ModeTruncate:
			// Record the full response, then advertise its length and send
			// half: the server aborts the connection and the client sees an
			// unexpected EOF.
			rec := &recorder{header: http.Header{}, code: http.StatusOK}
			next.ServeHTTP(rec, r)
			for k, v := range rec.header {
				w.Header()[k] = v
			}
			w.Header().Set("Content-Length", strconv.Itoa(rec.body.Len()))
			w.WriteHeader(rec.code)
			w.Write(rec.body.Bytes()[:rec.body.Len()/2])
		case ModeCorrupt:
			// Record the full response and deliver it complete — same
			// status, same length — with one bit flipped in the middle.
			rec := &recorder{header: http.Header{}, code: http.StatusOK}
			next.ServeHTTP(rec, r)
			for k, v := range rec.header {
				w.Header()[k] = v
			}
			w.Header().Set("Content-Length", strconv.Itoa(rec.body.Len()))
			w.WriteHeader(rec.code)
			w.Write(FlipBit(rec.body.Bytes()))
		default: // ModeError500
			http.Error(w, "faults: injected server error", http.StatusInternalServerError)
		}
	})
}

// splitHostPort is net.SplitHostPort without the import weight; RemoteAddr
// in tests may already be a bare host.
func splitHostPort(addr string) (string, string, error) {
	if i := strings.LastIndex(addr, ":"); i >= 0 {
		return addr[:i], addr[i+1:], nil
	}
	return addr, "", nil
}

// recorder buffers a handler's response for the truncating middleware.
type recorder struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) WriteHeader(code int)        { r.code = code }
func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }

// PowerInterceptor adapts the injector to the PDU's interceptor hook: an
// OpPowerCycle firing makes the hard-cycle command fail without touching
// the machine.
func PowerInterceptor(inj *Injector) func(outlet int, label string) error {
	return func(outlet int, label string) error {
		if _, fire := inj.ShouldInject(OpPowerCycle, label, fmt.Sprintf("outlet-%d", outlet)); fire {
			return fmt.Errorf("%w: outlet %d (%s)", ErrPowerCycle, outlet, label)
		}
		return nil
	}
}

// SkewFacts returns the deterministic perturbation ModeFactsSkew applies to
// a reported hardware profile: the architecture gains a "-drift" suffix and
// the disk size halves (both actionable — a reinstall re-probes them), and
// MemMB shrinks by 2% (inside the frontend's default drift tolerance, so it
// must be classified as benign). No PRNG draw: a test that knows the clean
// profile knows the skewed one exactly.
func SkewFacts(p hardware.Profile) hardware.Profile {
	p.Arch += "-drift"
	p.Disk.SizeMB /= 2
	p.MemMB -= p.MemMB / 50
	return p
}

// FactsHook adapts the injector to the installer's facts-agent seam: when
// an OpFactsReport rule fires for the node, the profile the agent is about
// to report is skewed (SkewFacts); otherwise it passes through untouched.
// Only what is *reported* is perturbed — the machine's real hardware is
// intact, so the reinstall the supervisor orders converges once the rule's
// Count budget is exhausted.
func FactsHook(inj *Injector, identities func() []string) func(p hardware.Profile) hardware.Profile {
	if identities == nil {
		identities = func() []string { return nil }
	}
	return func(p hardware.Profile) hardware.Profile {
		ids := append(identities(), "*")
		if _, fire := inj.ShouldInject(OpFactsReport, ids...); fire {
			return SkewFacts(p)
		}
		return p
	}
}

// InstallHook adapts the injector to the installer's fault hook: an
// OpInstallWedge firing kills the install at the stage boundary where it
// was consulted.
func InstallHook(inj *Injector, identities func() []string) func(stage string) error {
	if identities == nil {
		identities = func() []string { return nil }
	}
	return func(stage string) error {
		ids := append(identities(), "*")
		if _, fire := inj.ShouldInject(OpInstallWedge, ids...); fire {
			return fmt.Errorf("%w at stage %q", ErrWedged, stage)
		}
		return nil
	}
}

package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rocks/internal/dhcp"
	"rocks/internal/syslogd"
)

func TestDeterministicSequence(t *testing.T) {
	run := func() []Injection {
		inj := NewInjector(42, Rule{Op: OpDHCPOffer, Prob: 0.5})
		for i := 0; i < 100; i++ {
			inj.ShouldInject(OpDHCPOffer, "compute-0-0")
		}
		return inj.Injected()
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 100 {
		t.Fatalf("prob 0.5 over 100 events fired %d times; rule is not probabilistic", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if a[0].Seq != 1 {
		t.Errorf("first injection Seq = %d, want 1", a[0].Seq)
	}
}

func TestCountCapAndExhaustion(t *testing.T) {
	inj := NewInjector(1, Rule{Op: OpPowerCycle, Count: 3})
	if inj.Exhausted() {
		t.Fatal("fresh injector reports exhausted")
	}
	fired := 0
	for i := 0; i < 10; i++ {
		if _, ok := inj.ShouldInject(OpPowerCycle, "node"); ok {
			fired++
		}
	}
	if fired != 3 {
		t.Errorf("capped rule fired %d times, want 3", fired)
	}
	if !inj.Exhausted() {
		t.Error("rule at its cap must report exhausted")
	}
	if inj.CountOp(OpPowerCycle) != 3 || inj.CountOp(OpDHCPOffer) != 0 {
		t.Errorf("CountOp accounting wrong: %v", inj.Injected())
	}
}

func TestHostMatcher(t *testing.T) {
	cases := []struct {
		pattern, id string
		want        bool
	}{
		{"", "anything", true},
		{"*", "anything", true},
		{"compute-*", "compute-0-5", true},
		{"compute-*", "frontend-0", false},
		{"00:11:22", "00:11:22", true},
		{"00:11:22", "00:11:23", false},
	}
	for _, c := range cases {
		if got := matchHost(c.pattern, c.id); got != c.want {
			t.Errorf("matchHost(%q, %q) = %v, want %v", c.pattern, c.id, got, c.want)
		}
	}
}

func TestRuleTargetsOnlyMatchedHosts(t *testing.T) {
	inj := NewInjector(7, Rule{Op: OpDHCPOffer, Hosts: "compute-1-*"})
	if _, ok := inj.ShouldInject(OpDHCPOffer, "compute-0-0"); ok {
		t.Error("rule for compute-1-* fired on compute-0-0")
	}
	if _, ok := inj.ShouldInject(OpDHCPOffer, "aa:bb", "compute-1-3"); !ok {
		t.Error("rule for compute-1-* did not fire on compute-1-3")
	}
	if got := inj.Injected(); len(got) != 1 || got[0].Host != "compute-1-3" {
		t.Errorf("log = %v", got)
	}
}

func TestWrapResponderDropsOffers(t *testing.T) {
	srv := dhcp.NewServer("frontend-0", syslogd.New())
	srv.SetBinding("aa:bb:cc", dhcp.Binding{IP: "10.1.255.254", Hostname: "compute-0-0"})
	inj := NewInjector(3, Rule{Op: OpDHCPOffer, Hosts: "aa:bb:cc", Count: 2})
	bus := dhcp.NewBus()
	bus.Register(WrapResponder(srv, inj))

	drops, answers := 0, 0
	for i := 0; i < 5; i++ {
		if _, ok := bus.Broadcast(dhcp.Packet{Type: dhcp.Discover, Xid: uint32(i), MAC: "aa:bb:cc"}); ok {
			answers++
		} else {
			drops++
		}
	}
	if drops != 2 || answers != 3 {
		t.Errorf("drops = %d answers = %d, want 2 and 3", drops, answers)
	}
}

func TestTransportError500(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "payload")
	}))
	defer backend.Close()

	inj := NewInjector(5, Rule{Op: OpHTTPPackage, Count: 1})
	client := &http.Client{Transport: NewTransport(inj, nil, func() []string { return []string{"compute-0-0"} })}

	resp, err := client.Get(backend.URL + "/install/dist/RedHat/RPMS/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("first fetch status = %d, want 500", resp.StatusCode)
	}
	resp, err = client.Get(backend.URL + "/install/dist/RedHat/RPMS/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "payload" {
		t.Errorf("after cap: status %d body %q", resp.StatusCode, body)
	}
}

func TestTransportTruncate(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("x", 1000))
	}))
	defer backend.Close()

	inj := NewInjector(5, Rule{Op: OpHTTPPackage, Mode: ModeTruncate, Count: 1})
	client := &http.Client{Transport: NewTransport(inj, nil, nil)}
	resp, err := client.Get(backend.URL + "/anything")
	if err != nil {
		t.Fatal(err)
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(rerr, io.ErrUnexpectedEOF) {
		t.Errorf("truncated read error = %v, want unexpected EOF", rerr)
	}
	if len(body) != 500 {
		t.Errorf("got %d bytes, want 500", len(body))
	}
}

func TestFlipBit(t *testing.T) {
	in := []byte("abcdefgh")
	out := FlipBit(in)
	if len(out) != len(in) {
		t.Fatalf("length changed: %d -> %d", len(in), len(out))
	}
	diff := 0
	for i := range in {
		if in[i] != out[i] {
			diff++
			if i != len(in)/2 {
				t.Errorf("byte %d changed, want only the midpoint", i)
			}
		}
	}
	if diff != 1 {
		t.Errorf("%d bytes changed, want exactly 1", diff)
	}
	if string(in) != "abcdefgh" {
		t.Error("FlipBit mutated its input")
	}
	if got := FlipBit(nil); len(got) != 0 {
		t.Errorf("FlipBit(nil) = %v", got)
	}
}

// TestTransportAndMiddlewareCorrupt: both HTTP seams deliver a complete,
// correct-length 200 response with exactly one bit flipped — the silent
// corruption only an end-to-end digest check can catch — and hand back the
// clean bytes once the rule's budget is spent.
func TestTransportAndMiddlewareCorrupt(t *testing.T) {
	clean := strings.Repeat("z", 800)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, clean)
	})
	for _, seam := range []string{"transport", "middleware"} {
		t.Run(seam, func(t *testing.T) {
			inj := NewInjector(9, Rule{Op: OpHTTPPackage, Mode: ModeCorrupt, Count: 1})
			var url string
			var client *http.Client
			switch seam {
			case "transport":
				backend := httptest.NewServer(inner)
				defer backend.Close()
				url = backend.URL
				client = &http.Client{Transport: NewTransport(inj, nil, nil)}
			case "middleware":
				srv := httptest.NewServer(Middleware(inj, "X-Client-IP", inner))
				defer srv.Close()
				url = srv.URL
				client = http.DefaultClient
			}
			get := func() (int, []byte) {
				resp, err := client.Get(url + "/RedHat/RPMS/pkg-1.0-1.i386.rpm")
				if err != nil {
					t.Fatal(err)
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					t.Fatalf("corrupt body must still read to completion: %v", rerr)
				}
				return resp.StatusCode, body
			}
			code, body := get()
			if code != http.StatusOK || len(body) != len(clean) {
				t.Fatalf("corrupted response: status %d, %d bytes, want 200 and %d", code, len(body), len(clean))
			}
			diff := 0
			for i := range body {
				if body[i] != clean[i] {
					diff++
				}
			}
			if diff != 1 {
				t.Errorf("%d bytes differ, want exactly 1", diff)
			}
			code, body = get()
			if code != http.StatusOK || string(body) != clean {
				t.Errorf("after cap: status %d, body clean=%v", code, string(body) == clean)
			}
		})
	}
}

func TestTransportClassifiesKickstart(t *testing.T) {
	inj := NewInjector(5, Rule{Op: OpHTTPKickstart, Count: 1})
	client := &http.Client{Transport: NewTransport(inj, nil, nil)}
	// No backend needed: the 500 is synthesized before any dial.
	resp, err := client.Get("http://127.0.0.1:1/install/kickstart.cgi?arch=i386")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("kickstart status = %d, want 500", resp.StatusCode)
	}
	if got := inj.CountOp(OpHTTPKickstart); got != 1 {
		t.Errorf("kickstart injections = %d, want 1", got)
	}
}

func TestMiddlewareError500AndTruncate(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("y", 600))
	})
	inj := NewInjector(9,
		Rule{Op: OpHTTPPackage, Hosts: "10.1.255.254", Count: 1},
		Rule{Op: OpHTTPPackage, Mode: ModeTruncate, Count: 1},
	)
	srv := httptest.NewServer(Middleware(inj, "X-Rocks-Client-IP", inner))
	defer srv.Close()

	req, _ := http.NewRequest("GET", srv.URL+"/RedHat/RPMS/", nil)
	req.Header.Set("X-Rocks-Client-IP", "10.1.255.254")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("header-matched request: status %d, want 500", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/RedHat/RPMS/")
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr == nil {
		t.Error("truncating middleware: read succeeded, want connection error")
	}

	resp, err = http.Get(srv.URL + "/RedHat/RPMS/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 600 {
		t.Errorf("after caps: status %d, %d bytes", resp.StatusCode, len(body))
	}
}

func TestPowerInterceptorAndInstallHook(t *testing.T) {
	inj := NewInjector(11,
		Rule{Op: OpPowerCycle, Count: 1},
		Rule{Op: OpInstallWedge, Hosts: "aa:bb", Count: 1},
	)
	pi := PowerInterceptor(inj)
	if err := pi(4, "aa:bb"); !errors.Is(err, ErrPowerCycle) {
		t.Errorf("first cycle err = %v, want ErrPowerCycle", err)
	}
	if err := pi(4, "aa:bb"); err != nil {
		t.Errorf("capped interceptor still failing: %v", err)
	}

	hook := InstallHook(inj, func() []string { return []string{"aa:bb"} })
	if err := hook("partition"); !errors.Is(err, ErrWedged) {
		t.Errorf("hook err = %v, want ErrWedged", err)
	}
	if err := hook("partition"); err != nil {
		t.Errorf("capped hook still failing: %v", err)
	}
	other := InstallHook(inj, func() []string { return []string{"cc:dd"} })
	if err := other("partition"); err != nil {
		t.Errorf("host-targeted wedge hit wrong host: %v", err)
	}
}

// Package rexec reproduces UC Berkeley's REXEC remote execution system as
// Rocks ships it (§4.1): "transparent, secure remote execution of parallel
// and sequential jobs", with propagation of the local environment
// (environment variables, user ID, group ID, current working directory),
// redirection of stdin/stdout/stderr from each parallel process, and remote
// forwarding of signals.
package rexec

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Executor runs a command on one machine; *node.Node satisfies it.
type Executor interface {
	Exec(cmd string) (string, error)
}

// Request is one remote execution with the local context REXEC propagates.
type Request struct {
	Command string
	Env     map[string]string
	UID     int
	GID     int
	Cwd     string
	Stdin   string
}

// Result is the outcome on one host, with redirected streams.
type Result struct {
	Host   string
	Stdout string
	Stderr string
	Err    error
}

// Daemon is rexecd on one machine.
type Daemon struct {
	host string
	exec Executor
}

// NewDaemon wraps a machine's executor.
func NewDaemon(host string, exec Executor) *Daemon {
	return &Daemon{host: host, exec: exec}
}

// Host returns the daemon's machine name.
func (d *Daemon) Host() string { return d.host }

// Run executes one request, emulating the context propagation REXEC
// performs: printenv/pwd/id answer from the *client's* environment, which
// is the observable effect of propagating env, cwd, and credentials.
func (d *Daemon) Run(req Request) Result {
	res := Result{Host: d.host}
	fields := strings.Fields(req.Command)
	if len(fields) == 0 {
		res.Err = fmt.Errorf("rexec: empty command")
		res.Stderr = res.Err.Error()
		return res
	}
	switch fields[0] {
	case "printenv":
		if len(fields) == 1 {
			keys := make([]string, 0, len(req.Env))
			for k := range req.Env {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			var b strings.Builder
			for _, k := range keys {
				fmt.Fprintf(&b, "%s=%s\n", k, req.Env[k])
			}
			res.Stdout = b.String()
			return res
		}
		v, ok := req.Env[fields[1]]
		if !ok {
			res.Err = fmt.Errorf("rexec: %s not set", fields[1])
			res.Stderr = res.Err.Error()
			return res
		}
		res.Stdout = v + "\n"
		return res
	case "pwd":
		cwd := req.Cwd
		if cwd == "" {
			cwd = "/"
		}
		res.Stdout = cwd + "\n"
		return res
	case "id":
		res.Stdout = fmt.Sprintf("uid=%d gid=%d\n", req.UID, req.GID)
		return res
	case "cat":
		if len(fields) == 2 && fields[1] == "-" {
			// stdin redirection: echo the forwarded stream back.
			res.Stdout = req.Stdin
			return res
		}
	}
	out, err := d.exec.Exec(req.Command)
	res.Stdout = out
	res.Err = err
	if err != nil {
		res.Stderr = err.Error()
	}
	return res
}

// Signal forwards a signal to a named process on the daemon's machine —
// REXEC's "sophisticated signal handling system". KILL/TERM/INT terminate
// the process; other signals are delivered as no-ops.
func (d *Daemon) Signal(sig, process string) (int, error) {
	switch sig {
	case "KILL", "TERM", "INT", "SIGKILL", "SIGTERM", "SIGINT":
		out, err := d.exec.Exec("kill " + process)
		if err != nil {
			return 0, err
		}
		var n int
		fmt.Sscanf(out, "killed %d", &n)
		return n, nil
	default:
		// Delivered but non-fatal (e.g. USR1).
		return 0, nil
	}
}

// RunParallel executes the request on every daemon concurrently — the
// parallel-job launch path. Results come back in daemon order regardless of
// completion order.
func RunParallel(daemons []*Daemon, req Request) []Result {
	results := make([]Result, len(daemons))
	var wg sync.WaitGroup
	for i, d := range daemons {
		wg.Add(1)
		go func(i int, d *Daemon) {
			defer wg.Done()
			results[i] = d.Run(req)
		}(i, d)
	}
	wg.Wait()
	return results
}

// TagOutput interleaves per-host stdout the way rexec prints parallel
// output: every line prefixed with its origin host.
func TagOutput(results []Result) string {
	var b strings.Builder
	for _, r := range results {
		stream := r.Stdout
		if r.Err != nil {
			stream = r.Stderr
		}
		for _, line := range strings.Split(strings.TrimRight(stream, "\n"), "\n") {
			if line == "" && stream == "" {
				continue
			}
			fmt.Fprintf(&b, "%s: %s\n", r.Host, line)
		}
	}
	return b.String()
}

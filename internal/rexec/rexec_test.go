package rexec

import (
	"strings"
	"testing"

	"rocks/internal/hardware"
	"rocks/internal/node"
)

func upNode(name string) *node.Node {
	macs := hardware.NewMACAllocator()
	n := node.New(hardware.PIIICompute(macs, 733))
	n.SetName(name)
	n.SetState(node.StateUp)
	return n
}

func TestEnvPropagation(t *testing.T) {
	d := NewDaemon("compute-0-0", upNode("compute-0-0"))
	req := Request{Command: "printenv PATH", Env: map[string]string{"PATH": "/usr/local/bin:/usr/bin"}}
	res := d.Run(req)
	if res.Err != nil || res.Stdout != "/usr/local/bin:/usr/bin\n" {
		t.Errorf("printenv = %+v", res)
	}
	res = d.Run(Request{Command: "printenv MISSING", Env: map[string]string{}})
	if res.Err == nil {
		t.Error("missing env var should fail")
	}
	res = d.Run(Request{Command: "printenv", Env: map[string]string{"B": "2", "A": "1"}})
	if res.Stdout != "A=1\nB=2\n" {
		t.Errorf("printenv all = %q", res.Stdout)
	}
}

func TestUIDCwdPropagation(t *testing.T) {
	d := NewDaemon("c0", upNode("c0"))
	res := d.Run(Request{Command: "id", UID: 500, GID: 501})
	if res.Stdout != "uid=500 gid=501\n" {
		t.Errorf("id = %q", res.Stdout)
	}
	res = d.Run(Request{Command: "pwd", Cwd: "/home/bruno/project"})
	if res.Stdout != "/home/bruno/project\n" {
		t.Errorf("pwd = %q", res.Stdout)
	}
	if out := d.Run(Request{Command: "pwd"}); out.Stdout != "/\n" {
		t.Errorf("default cwd = %q", out.Stdout)
	}
}

func TestStdinRedirection(t *testing.T) {
	d := NewDaemon("c0", upNode("c0"))
	res := d.Run(Request{Command: "cat -", Stdin: "piped input\n"})
	if res.Stdout != "piped input\n" {
		t.Errorf("stdin redirect = %q", res.Stdout)
	}
}

func TestRemoteCommandPassthrough(t *testing.T) {
	n := upNode("compute-0-0")
	d := NewDaemon("compute-0-0", n)
	res := d.Run(Request{Command: "hostname"})
	if res.Err != nil || res.Stdout != "compute-0-0\n" {
		t.Errorf("hostname = %+v", res)
	}
	res = d.Run(Request{Command: "no-such-binary"})
	if res.Err == nil || res.Stderr == "" {
		t.Errorf("missing binary should fail with stderr: %+v", res)
	}
	res = d.Run(Request{Command: ""})
	if res.Err == nil {
		t.Error("empty command accepted")
	}
}

func TestSignalForwarding(t *testing.T) {
	n := upNode("c0")
	d := NewDaemon("c0", n)
	if _, err := n.Exec("spawn simulation"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Exec("spawn simulation"); err != nil {
		t.Fatal(err)
	}
	// Non-fatal signal: process survives.
	if killed, err := d.Signal("USR1", "simulation"); err != nil || killed != 0 {
		t.Errorf("USR1 = %d, %v", killed, err)
	}
	if len(n.Processes()) != 2 {
		t.Error("USR1 killed the job")
	}
	// KILL is forwarded and terminates both instances.
	killed, err := d.Signal("KILL", "simulation")
	if err != nil || killed != 2 {
		t.Errorf("KILL = %d, %v", killed, err)
	}
	if len(n.Processes()) != 0 {
		t.Error("processes survived KILL")
	}
}

func TestRunParallelOrderAndDownNodes(t *testing.T) {
	n0 := upNode("compute-0-0")
	n1 := upNode("compute-0-1")
	n1.SetState(node.StateOff) // down node mid-fleet
	n2 := upNode("compute-0-2")
	daemons := []*Daemon{
		NewDaemon("compute-0-0", n0),
		NewDaemon("compute-0-1", n1),
		NewDaemon("compute-0-2", n2),
	}
	results := RunParallel(daemons, Request{Command: "hostname"})
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Stdout != "compute-0-0\n" || results[2].Stdout != "compute-0-2\n" {
		t.Errorf("ordering broken: %+v", results)
	}
	if results[1].Err == nil {
		t.Error("down node should error")
	}
}

func TestTagOutput(t *testing.T) {
	n := upNode("c1")
	n.SetState(node.StateOff)
	bad := NewDaemon("c1", n).Run(Request{Command: "hostname"})
	results := []Result{
		{Host: "c0", Stdout: "line1\nline2\n"},
		bad,
	}
	got := TagOutput(results)
	want := []string{"c0: line1", "c0: line2", "c1: "}
	for _, w := range want {
		if !strings.Contains(got, w) {
			t.Errorf("TagOutput missing %q:\n%s", w, got)
		}
	}
	if strings.Count(got, "\n") != 3 {
		t.Errorf("TagOutput = %q", got)
	}
}

package rexec

import (
	"net"
	"strings"
	"testing"
)

func serveNode(t *testing.T, name string) (*TCPServer, *DaemonNodePair) {
	t.Helper()
	n := upNode(name)
	d := NewDaemon(name, n)
	srv, err := Serve(d)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, &DaemonNodePair{Daemon: d, Node: n}
}

// DaemonNodePair bundles the server-side pieces for assertions.
type DaemonNodePair struct {
	Daemon *Daemon
	Node   interface {
		Exec(string) (string, error)
	}
}

func TestRunRemoteExecutesOverTCP(t *testing.T) {
	srv, _ := serveNode(t, "compute-0-0")
	res := RunRemote(srv.Addr(), Request{Command: "hostname"})
	if res.Err != nil || res.Stdout != "compute-0-0\n" {
		t.Errorf("res = %+v", res)
	}
	if res.Host != "compute-0-0" {
		t.Errorf("host = %q", res.Host)
	}
}

func TestRunRemoteEnvPropagation(t *testing.T) {
	srv, _ := serveNode(t, "c0")
	res := RunRemote(srv.Addr(), Request{Command: "printenv HOME",
		Env: map[string]string{"HOME": "/home/bruno"}, UID: 500, GID: 500, Cwd: "/home/bruno"})
	if res.Err != nil || res.Stdout != "/home/bruno\n" {
		t.Errorf("env over TCP = %+v", res)
	}
	res = RunRemote(srv.Addr(), Request{Command: "id", UID: 500, GID: 501})
	if res.Stdout != "uid=500 gid=501\n" {
		t.Errorf("id over TCP = %q", res.Stdout)
	}
}

func TestRunRemoteErrors(t *testing.T) {
	srv, _ := serveNode(t, "c0")
	res := RunRemote(srv.Addr(), Request{Command: "no-such-binary"})
	if res.Err == nil || !strings.Contains(res.Err.Error(), "not found") {
		t.Errorf("res = %+v", res)
	}
	// Dead address.
	res = RunRemote("127.0.0.1:1", Request{Command: "hostname"})
	if res.Err == nil {
		t.Error("dial to a dead port succeeded")
	}
}

func TestSignalRemote(t *testing.T) {
	srv, pair := serveNode(t, "c0")
	pair.Node.Exec("spawn job")
	pair.Node.Exec("spawn job")
	killed, err := SignalRemote(srv.Addr(), "KILL", "job")
	if err != nil || killed != 2 {
		t.Errorf("SignalRemote = %d, %v", killed, err)
	}
	killed, err = SignalRemote(srv.Addr(), "USR1", "job")
	if err != nil || killed != 0 {
		t.Errorf("USR1 = %d, %v", killed, err)
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	srv, _ := serveNode(t, "c0")
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("this is not json\n"))
	buf := make([]byte, 1024)
	n, _ := conn.Read(buf)
	if !strings.Contains(string(buf[:n]), "bad request") {
		t.Errorf("response = %q", buf[:n])
	}
}

func TestServeCloseIdempotent(t *testing.T) {
	srv, _ := serveNode(t, "c0")
	srv.Close()
	srv.Close()
	res := RunRemote(srv.Addr(), Request{Command: "hostname"})
	if res.Err == nil {
		t.Error("closed server still answering")
	}
}

package rexec

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCP transport: rexecd as a real network daemon. The paper's REXEC is "a
// decentralized, secure remote execution environment"; we reproduce the
// execution environment over a one-request-per-connection JSON protocol
// (authentication is out of scope — the paper's clusters trusted the
// private network).

// wireRequest is the on-the-wire form of a Request plus the signal verb.
type wireRequest struct {
	Command string            `json:"command,omitempty"`
	Env     map[string]string `json:"env,omitempty"`
	UID     int               `json:"uid,omitempty"`
	GID     int               `json:"gid,omitempty"`
	Cwd     string            `json:"cwd,omitempty"`
	Stdin   string            `json:"stdin,omitempty"`
	// Signal/Process, when set, deliver a signal instead of executing.
	Signal  string `json:"signal,omitempty"`
	Process string `json:"process,omitempty"`
}

type wireResponse struct {
	Host   string `json:"host"`
	Stdout string `json:"stdout,omitempty"`
	Stderr string `json:"stderr,omitempty"`
	Error  string `json:"error,omitempty"`
	Killed int    `json:"killed,omitempty"`
}

// TCPServer is a listening rexecd.
type TCPServer struct {
	daemon *Daemon
	ln     net.Listener

	mu     sync.Mutex
	closed bool
}

// Serve starts rexecd for the daemon's machine on an ephemeral loopback
// port.
func Serve(d *Daemon) (*TCPServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("rexec: listen: %w", err)
	}
	s := &TCPServer{daemon: d, ln: ln}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the daemon's dialable address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Close stops accepting connections.
func (s *TCPServer) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		s.ln.Close()
	}
}

func (s *TCPServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.handle(conn)
	}
}

func (s *TCPServer) handle(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	var req wireRequest
	if err := json.NewDecoder(conn).Decode(&req); err != nil {
		json.NewEncoder(conn).Encode(wireResponse{
			Host: s.daemon.Host(), Error: "rexec: bad request: " + err.Error()})
		return
	}
	var resp wireResponse
	resp.Host = s.daemon.Host()
	if req.Signal != "" {
		killed, err := s.daemon.Signal(req.Signal, req.Process)
		resp.Killed = killed
		if err != nil {
			resp.Error = err.Error()
		}
	} else {
		res := s.daemon.Run(Request{
			Command: req.Command, Env: req.Env, UID: req.UID, GID: req.GID,
			Cwd: req.Cwd, Stdin: req.Stdin,
		})
		resp.Stdout = res.Stdout
		resp.Stderr = res.Stderr
		if res.Err != nil {
			resp.Error = res.Err.Error()
		}
	}
	json.NewEncoder(conn).Encode(resp)
}

// RunRemote executes a request against a remote rexecd.
func RunRemote(addr string, req Request) Result {
	res := Result{Host: addr}
	resp, err := roundTrip(addr, wireRequest{
		Command: req.Command, Env: req.Env, UID: req.UID, GID: req.GID,
		Cwd: req.Cwd, Stdin: req.Stdin,
	})
	if err != nil {
		res.Err = err
		res.Stderr = err.Error()
		return res
	}
	res.Host = resp.Host
	res.Stdout = resp.Stdout
	res.Stderr = resp.Stderr
	if resp.Error != "" {
		res.Err = fmt.Errorf("%s", resp.Error)
	}
	return res
}

// SignalRemote forwards a signal through a remote rexecd, returning the
// number of processes it terminated.
func SignalRemote(addr, sig, process string) (int, error) {
	resp, err := roundTrip(addr, wireRequest{Signal: sig, Process: process})
	if err != nil {
		return 0, err
	}
	if resp.Error != "" {
		return resp.Killed, fmt.Errorf("%s", resp.Error)
	}
	return resp.Killed, nil
}

func roundTrip(addr string, req wireRequest) (wireResponse, error) {
	var resp wireResponse
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return resp, fmt.Errorf("rexec: dial %s: %w", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return resp, fmt.Errorf("rexec: send: %w", err)
	}
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		return resp, fmt.Errorf("rexec: receive: %w", err)
	}
	return resp, nil
}

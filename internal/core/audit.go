package core

import (
	"sync"
	"time"
)

// The audit log answers "who changed the cluster, and did it work?" — the
// question the bespoke admin endpoints never recorded. Every mutating
// control-plane call (sql exec, shoot, kill, fork, integrate, adduser,
// reinstall-cluster) lands here with its actor, parameters, outcome, and
// HTTP status, on both the /v1 surface and the legacy /admin aliases. The
// log is a bounded ring like the lifecycle bus: old entries are evicted,
// never the process's memory.

// DefaultAuditRingSize bounds the audit ring when Config.AuditRingSize is
// zero.
const DefaultAuditRingSize = 1024

// AuditEntry is one recorded mutation.
type AuditEntry struct {
	Seq    uint64    `json:"seq"` // log-global, monotonically increasing from 1
	Time   time.Time `json:"time"`
	Actor  string    `json:"actor"`            // X-Rocks-Actor header, "anonymous" when unset
	Remote string    `json:"remote,omitempty"` // client address
	Op     string    `json:"op"`               // sql-exec, shoot, kill, fork, integrate, adduser, reinstall-cluster
	Detail string    `json:"detail,omitempty"` // the operation's parameters, human-readable
	// Outcome is "ok" or "error"; Error carries the message and Status the
	// HTTP code the caller saw.
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
	Status  int    `json:"status"`
}

// auditLog is a bounded ring of AuditEntries, safe for concurrent use.
type auditLog struct {
	mu      sync.Mutex
	ring    []AuditEntry
	start   int
	count   int
	seq     uint64
	evicted uint64
	errors  uint64
}

func newAuditLog(size int) *auditLog {
	if size <= 0 {
		size = DefaultAuditRingSize
	}
	return &auditLog{ring: make([]AuditEntry, size)}
}

// record stamps the entry with a sequence number and timestamp and appends
// it, evicting the oldest entry when the ring is full.
func (a *auditLog) record(e AuditEntry) AuditEntry {
	a.mu.Lock()
	a.seq++
	e.Seq = a.seq
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if e.Outcome != "ok" {
		a.errors++
	}
	if a.count == len(a.ring) {
		a.start = (a.start + 1) % len(a.ring)
		a.evicted++
	} else {
		a.count++
	}
	a.ring[(a.start+a.count-1)%len(a.ring)] = e
	a.mu.Unlock()
	return e
}

// auditFilter selects entries; zero fields match everything.
type auditFilter struct {
	Op       string
	Actor    string
	Outcome  string
	SinceSeq uint64
	Limit    int // 0 = unlimited; otherwise the most recent N matches
}

// recent returns matching entries still in the ring, oldest first.
func (a *auditLog) recent(f auditFilter) []AuditEntry {
	a.mu.Lock()
	out := make([]AuditEntry, 0, a.count)
	for i := 0; i < a.count; i++ {
		e := a.ring[(a.start+i)%len(a.ring)]
		if f.Op != "" && e.Op != f.Op {
			continue
		}
		if f.Actor != "" && e.Actor != f.Actor {
			continue
		}
		if f.Outcome != "" && e.Outcome != f.Outcome {
			continue
		}
		if e.Seq <= f.SinceSeq {
			continue
		}
		out = append(out, e)
	}
	a.mu.Unlock()
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// stats snapshots the log's counters for /metrics and the /v1/audit header
// fields.
func (a *auditLog) stats() (seq, evicted, errors uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seq, a.evicted, a.errors
}

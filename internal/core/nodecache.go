package core

import (
	"sync"

	"rocks/internal/clusterdb"
)

// resolvedNode is everything kickstart.cgi needs to know about a requester:
// the node row and its membership's kickstart root.
type resolvedNode struct {
	node clusterdb.Node
	root string
}

// nodeResolver memoizes the per-request SQL — NodeByIP plus
// ApplianceForMembership — behind the database's mutation counter. During a
// mass reinstall the same nodes ask for their profiles over and over while
// the database sits still, so both queries collapse to one map lookup. Any
// mutation (insert-ethers adding a node, an arch update, a membership edit)
// bumps ChangeSeq and the whole memo drops on the next request, mirroring
// the generation-stamp discipline of kickstart.ProfileCache. Lookup
// failures are never cached.
type nodeResolver struct {
	db *clusterdb.Database

	mu   sync.RWMutex
	seq  int64
	byIP map[string]resolvedNode
}

func newNodeResolver(db *clusterdb.Database) *nodeResolver {
	return &nodeResolver{db: db, seq: db.ChangeSeq(), byIP: make(map[string]resolvedNode)}
}

// resolve maps a client IP to its node row and appliance root. ok is false
// when no node is registered at the address; err reports query failures and
// memberships with no kickstartable appliance.
func (nr *nodeResolver) resolve(ip string) (rn resolvedNode, ok bool, err error) {
	seq := nr.db.ChangeSeq()
	nr.mu.RLock()
	if nr.seq == seq {
		if rn, ok = nr.byIP[ip]; ok {
			nr.mu.RUnlock()
			return rn, true, nil
		}
	}
	nr.mu.RUnlock()

	n, ok, err := clusterdb.NodeByIP(nr.db, ip)
	if err != nil || !ok {
		return resolvedNode{}, false, err
	}
	_, _, root, err := clusterdb.ApplianceForMembership(nr.db, n.Membership)
	if err != nil {
		// A membership without a kickstartable appliance renders as an empty
		// root (the CGI's 403); the failed lookup is not memoized.
		return resolvedNode{node: n}, true, nil
	}
	rn = resolvedNode{node: n, root: root}
	nr.mu.Lock()
	if nr.seq != seq {
		nr.byIP = make(map[string]resolvedNode)
		nr.seq = seq
	}
	nr.byIP[ip] = rn
	nr.mu.Unlock()
	return rn, true, nil
}

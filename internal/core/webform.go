package core

import (
	"fmt"
	"html/template"
	"net/http"

	"rocks/internal/kickstart"
)

// The frontend web form (§7): "the frontend Kickstart file is built from a
// simple web form". GET /install/frontend-form renders the form; submitting
// it returns a complete frontend kickstart file localized with the site's
// answers — the file a user writes to their boot floppy.

var frontendFormTmpl = template.Must(template.New("form").Parse(`<!DOCTYPE html>
<html><head><title>Rocks Frontend Kickstart Builder</title></head>
<body>
<h1>Build a Rocks frontend kickstart</h1>
<form method="GET" action="/install/frontend-form">
<input type="hidden" name="generate" value="1">
<table>
<tr><td>Cluster name</td><td><input name="cluster" value="{{.Cluster}}"></td></tr>
<tr><td>Public domain</td><td><input name="domain" value="{{.Domain}}"></td></tr>
<tr><td>Timezone</td><td><input name="timezone" value="{{.Timezone}}"></td></tr>
<tr><td>Root password (crypted)</td><td><input name="rootpw" value="{{.RootPW}}"></td></tr>
<tr><td>Distribution URL</td><td><input name="disturl" value="{{.DistURL}}" size="48"></td></tr>
</table>
<input type="submit" value="Generate kickstart">
</form>
</body></html>
`))

type frontendFormValues struct {
	Cluster  string
	Domain   string
	Timezone string
	RootPW   string
	DistURL  string
}

// frontendForm serves the §7 web form and, on generate=1, the rendered
// frontend kickstart file.
func (c *Cluster) frontendForm(w http.ResponseWriter, r *http.Request) {
	vals := frontendFormValues{
		Cluster:  c.cfg.Name,
		Domain:   "local",
		Timezone: "America/Los_Angeles",
		RootPW:   "$1$rocks$encrypted",
		DistURL:  c.baseURL + "/install/dist",
	}
	if r.FormValue("generate") != "1" {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		frontendFormTmpl.Execute(w, vals)
		return
	}
	read := func(key, def string) string {
		if v := r.FormValue(key); v != "" {
			return v
		}
		return def
	}
	attrs := kickstart.DefaultAttrs(read("disturl", vals.DistURL), FrontendIP)
	attrs["Kickstart_Timezone"] = read("timezone", vals.Timezone)
	attrs["Kickstart_RootPW"] = read("rootpw", vals.RootPW)
	attrs["Kickstart_PublicHostname"] = "frontend-0." + read("domain", vals.Domain)
	profile, err := c.Dist.Framework.Generate(kickstart.Request{
		Appliance: "frontend",
		Arch:      "i386",
		NodeName:  "frontend-0",
		Attrs:     attrs,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	w.Header().Set("Content-Disposition", `attachment; filename="ks.cfg"`)
	fmt.Fprint(w, profile.Render())
}

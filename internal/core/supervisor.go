package core

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/lifecycle"
	"rocks/internal/monitor"
	"rocks/internal/node"
)

// The supervisor closes the remediation loop the paper leaves open. §4's
// monitor ends at a human — it tells the administrator "which outlets to
// cycle" — and §6.3's installer waits for a user to type "retry". The
// large-cluster experience reports (CERN, Brookhaven; PAPERS.md) are
// unanimous that at thousand-node scale transient install failures are
// constant and the human in that loop is the bottleneck. The supervisor
// consumes the monitor's up/dark transitions from the lifecycle bus plus
// each node's state machine and applies the paper's own remedies
// mechanically: a hard power cycle for dark nodes (which forces
// reinstallation, §4), a re-shoot for crashed installs, capped exponential
// backoff with jitter between attempts, and — when a node exhausts its
// retry budget — quarantine: the node is marked offline in PBS and the
// reports, so the cluster keeps scheduling at reduced capacity instead of
// wedging on one bad machine. Every action is published to the cluster's
// lifecycle bus (the bounded ring that /admin/events serves), which chaos
// tests reconcile against the fault injector's ledger.

// SupervisorConfig tunes the remediation loop.
type SupervisorConfig struct {
	// Patience is how long a node may be dark (off, stuck booting) before
	// remediation starts; it is also the monitor's patience. Crashed nodes
	// skip the wait — their state is definitive. Default 5s.
	Patience time.Duration
	// Interval is the supervision tick. Default 500ms.
	Interval time.Duration
	// MaxRetries is the remediation budget per failure episode; a node
	// still failing after that many power cycles is quarantined. A
	// recovery (node reaches Up) refunds the budget. Default 3.
	MaxRetries int
	// BaseBackoff is the wait after the first remediation attempt; it
	// doubles per attempt up to MaxBackoff, plus up to 50% seeded jitter
	// so a rack of simultaneous casualties does not thundering-herd the
	// install server. Defaults 1s and 30s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed drives the jitter PRNG; fixed seeds give reproducible runs.
	Seed int64
}

func (cfg SupervisorConfig) withDefaults() SupervisorConfig {
	if cfg.Patience <= 0 {
		cfg.Patience = 5 * time.Second
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = time.Second
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 30 * time.Second
	}
	return cfg
}

// EventType classifies a supervisor action. It is the lifecycle bus's event
// vocabulary; the aliases below preserve the supervisor's original names.
type EventType = lifecycle.EventType

// The supervisor's vocabulary of actions.
const (
	// EventPowerCycle: a hard cycle was issued and the PDU obeyed; the
	// node is reinstalling itself.
	EventPowerCycle = lifecycle.EventPowerCycle
	// EventPowerCycleFailed: the cycle command failed (PDU fault, unwired
	// outlet); the attempt still burned budget and backoff applies.
	EventPowerCycleFailed = lifecycle.EventPowerCycleFailed
	// EventQuarantine: retry budget exhausted; node marked offline.
	EventQuarantine = lifecycle.EventQuarantine
	// EventRecovered: a previously failing node reached Up; budget
	// refunded.
	EventRecovered = lifecycle.EventRecovered
	// EventDriftReinstall: an Up node's reported facts show actionable
	// drift; a cycle-to-reinstall was ordered to chase it.
	EventDriftReinstall = lifecycle.EventDriftReinstall
)

// supervisorStats counts remediation actions by type. It lives on the
// Cluster rather than the Supervisor so the counters stay monotonic
// across supervisor restarts.
type supervisorStats struct {
	powerCycles     atomic.Uint64
	powerCycleFails atomic.Uint64
	quarantines     atomic.Uint64
	unquarantines   atomic.Uint64
	recoveries      atomic.Uint64
	driftReinstalls atomic.Uint64
}

func (st *supervisorStats) count(t EventType) {
	switch t {
	case EventPowerCycle:
		st.powerCycles.Add(1)
	case EventPowerCycleFailed:
		st.powerCycleFails.Add(1)
	case EventQuarantine:
		st.quarantines.Add(1)
	case lifecycle.EventUnquarantine:
		st.unquarantines.Add(1)
	case EventRecovered:
		st.recoveries.Add(1)
	case EventDriftReinstall:
		st.driftReinstalls.Add(1)
	}
}

// SupervisorEvent is one structured log entry, reconstructed from the
// supervisor's events on the lifecycle bus.
type SupervisorEvent struct {
	Seq     int       `json:"seq"`
	Time    time.Time `json:"time"`
	Host    string    `json:"host"`
	MAC     string    `json:"mac"`
	Type    EventType `json:"type"`
	Attempt int       `json:"attempt,omitempty"`
	Detail  string    `json:"detail,omitempty"`
}

// String renders the event for logs.
func (e SupervisorEvent) String() string {
	s := fmt.Sprintf("#%d %s %s", e.Seq, e.Host, e.Type)
	if e.Attempt > 0 {
		s += fmt.Sprintf(" (attempt %d)", e.Attempt)
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

// remedRecord is the supervisor's per-node bookkeeping, keyed by MAC (the
// only identity a node is guaranteed to have).
type remedRecord struct {
	watchedAs   string // identity registered with the monitor
	attempts    int
	next        time.Time // backoff gate for the next attempt
	failing     bool
	quarantined bool
}

// Supervisor is the closed-loop remediation daemon.
type Supervisor struct {
	c   *Cluster
	cfg SupervisorConfig
	mon *monitor.Monitor

	mu      sync.Mutex
	rng     *rand.Rand
	recs    map[string]*remedRecord
	health  map[string]monitor.Health // last health class per watched identity, from bus events
	stopped bool

	sub    <-chan lifecycle.Event
	unsub  func()
	cancel context.CancelFunc
	done   chan struct{}
}

// StartSupervisor launches the remediation loop over the cluster's nodes.
// Its monitor probes in the background and publishes up/dark transitions to
// the lifecycle bus; the supervisor consumes them from a subscription. Both
// loops run under the cluster's root context, so Close reaps them; the
// caller may also Stop explicitly.
func (c *Cluster) StartSupervisor(cfg SupervisorConfig) *Supervisor {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(c.ctx)
	mon := monitor.New(monitor.PingerFunc(c.Ping), cfg.Patience, 0)
	mon.PublishTo(c.events)
	s := &Supervisor{
		c:      c,
		cfg:    cfg,
		mon:    mon,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		recs:   make(map[string]*remedRecord),
		health: make(map[string]monitor.Health),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	s.sub, s.unsub = c.events.Subscribe(lifecycle.DefaultRingSize)
	c.mu.Lock()
	c.supervisor = s
	c.mu.Unlock()
	mon.StartCtx(ctx, cfg.Interval)
	go s.run(ctx)
	return s
}

// Supervisor returns the running supervisor, if any.
func (c *Cluster) Supervisor() *Supervisor {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.supervisor
}

// run consumes bus events between ticks; each tick drains the backlog and
// applies the remediation policy with a current health picture.
func (s *Supervisor) run(ctx context.Context) {
	defer close(s.done)
	t := time.NewTicker(s.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case e := <-s.sub:
			s.observe(e)
		case <-t.C:
			s.drain()
			s.tick()
		}
	}
}

// observe folds one bus event into the supervisor's health picture. Only
// the monitor's transitions matter here; the supervisor's own events and
// the installer's phase events would be echoes.
func (s *Supervisor) observe(e lifecycle.Event) {
	if e.Source != "monitor" {
		return
	}
	s.mu.Lock()
	switch e.Type {
	case lifecycle.EventDark:
		s.health[e.Node] = monitor.HealthDark
	case lifecycle.EventUp:
		s.health[e.Node] = monitor.HealthUp
	}
	s.mu.Unlock()
}

// drain consumes every queued bus event without blocking.
func (s *Supervisor) drain() {
	for {
		select {
		case e := <-s.sub:
			s.observe(e)
		default:
			return
		}
	}
}

// Stop halts the loop and the embedded monitor; idempotent. The cluster's
// root context cancels the same way, so Close needs no special case.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	s.cancel()
	<-s.done
	s.unsub()
	s.mon.Stop()
}

// Monitor exposes the supervisor's embedded health monitor.
func (s *Supervisor) Monitor() *monitor.Monitor { return s.mon }

// tick is one pass: refresh the watch set, then remediate against the
// health picture accumulated from the monitor's bus events.
func (s *Supervisor) tick() {
	nodes := s.c.Nodes()
	frontendMAC := s.c.Frontend.MAC()

	// Keep the monitor watching every node under its best-known identity.
	// A node's name arrives mid-install, so identities are late-bound.
	s.mu.Lock()
	for mac, n := range nodes {
		if mac == frontendMAC {
			continue
		}
		identity := n.Name()
		if identity == "" {
			identity = mac
		}
		rec := s.recs[mac]
		if rec == nil {
			rec = &remedRecord{}
			s.recs[mac] = rec
		}
		if rec.watchedAs != identity {
			if rec.watchedAs != "" {
				s.mon.Unwatch(rec.watchedAs)
				delete(s.health, rec.watchedAs)
			}
			s.mon.Watch(identity)
			rec.watchedAs = identity
		}
	}
	s.mu.Unlock()

	now := time.Now()
	for mac, n := range nodes {
		if mac == frontendMAC {
			continue
		}
		s.superviseNode(now, mac, n)
	}
}

// superviseNode applies the remediation policy to one node.
func (s *Supervisor) superviseNode(now time.Time, mac string, n *node.Node) {
	s.mu.Lock()
	rec := s.recs[mac]
	if rec == nil || rec.quarantined {
		s.mu.Unlock()
		return
	}
	st := n.State()
	switch st {
	case node.StateUp:
		// Drift remediation: an Up node whose latest facts report shows
		// actionable drift (wrong arch, disk, NIC set) is cycled so its
		// reinstall re-probes the hardware. The episode shares the dark-node
		// budget — same backoff, same quarantine when it exhausts — and the
		// check runs before the recovery refund, so drift that persists
		// across reinstalls burns down the budget instead of resetting it.
		// Benign drift (cpus, mem_mb) never reaches here: it is recorded in
		// the inventory and the timeline only.
		if fields := s.c.actionableDriftFields(mac); len(fields) > 0 {
			s.remediateDriftLocked(now, rec, mac, n, fields)
			return
		}
		if rec.failing {
			rec.failing = false
			rec.attempts = 0
			rec.next = time.Time{}
			s.recordLocked(rec.watchedAs, mac, EventRecovered, 0, "node reached up; retry budget refunded")
		}
		s.mu.Unlock()
		return
	case node.StateInstalling:
		// Alive: the install is visible on eKV. Progress stalls surface as
		// a crash (wedge) or as darkness after the install dies.
		s.mu.Unlock()
		return
	case node.StateCrashed:
		// Definitive: no patience needed.
	default: // off, booting
		if s.health[rec.watchedAs] != monitor.HealthDark {
			s.mu.Unlock()
			return
		}
	}
	rec.failing = true
	if now.Before(rec.next) {
		s.mu.Unlock()
		return
	}
	if rec.attempts >= s.cfg.MaxRetries {
		rec.quarantined = true
		attempts := rec.attempts
		host := s.displayName(mac, n)
		s.mu.Unlock()
		if err := s.c.Quarantine(host); err != nil {
			s.c.Syslog.Log("frontend-0", "supervisor", "quarantining %s: %v", host, err)
		}
		// Published after Quarantine took effect, so a bus waiter that
		// wakes on this event observes the node already offline.
		s.record(host, mac, EventQuarantine, attempts,
			fmt.Sprintf("retry budget (%d) exhausted in state %s; marking offline", s.cfg.MaxRetries, st))
		return
	}
	rec.attempts++
	attempt := rec.attempts
	rec.next = now.Add(s.backoffLocked(attempt))
	host := s.displayName(mac, n)
	s.mu.Unlock()

	// The paper's remedy, issued mechanically: a hard power cycle forces
	// the node to reinstall itself (§4).
	outlet, wired := s.c.PDU.OutletFor(mac)
	if !wired {
		s.record(host, mac, EventPowerCycleFailed, attempt, "no PDU outlet wired")
		return
	}
	if err := s.c.PDU.HardCycle(outlet); err != nil {
		s.record(host, mac, EventPowerCycleFailed, attempt, err.Error())
		return
	}
	s.record(host, mac, EventPowerCycle, attempt,
		fmt.Sprintf("outlet %d cycled; node reinstalling (was %s)", outlet, st))
}

// remediateDriftLocked orders a bounded cycle-to-reinstall for an Up node
// with actionable facts drift. Called with s.mu held; releases it.
func (s *Supervisor) remediateDriftLocked(now time.Time, rec *remedRecord, mac string, n *node.Node, fields []string) {
	rec.failing = true
	if now.Before(rec.next) {
		s.mu.Unlock()
		return
	}
	if rec.attempts >= s.cfg.MaxRetries {
		rec.quarantined = true
		attempts := rec.attempts
		host := s.displayName(mac, n)
		s.mu.Unlock()
		if err := s.c.Quarantine(host); err != nil {
			s.c.Syslog.Log("frontend-0", "supervisor", "quarantining %s: %v", host, err)
		}
		s.record(host, mac, EventQuarantine, attempts,
			fmt.Sprintf("retry budget (%d) exhausted chasing drift in %s; marking offline",
				s.cfg.MaxRetries, strings.Join(fields, ",")))
		return
	}
	rec.attempts++
	attempt := rec.attempts
	rec.next = now.Add(s.backoffLocked(attempt))
	host := s.displayName(mac, n)
	s.mu.Unlock()

	outlet, wired := s.c.PDU.OutletFor(mac)
	if !wired {
		s.record(host, mac, EventPowerCycleFailed, attempt, "no PDU outlet wired")
		return
	}
	if err := s.c.PDU.HardCycle(outlet); err != nil {
		s.record(host, mac, EventPowerCycleFailed, attempt, err.Error())
		return
	}
	s.record(host, mac, EventDriftReinstall, attempt,
		fmt.Sprintf("outlet %d cycled; reinstalling to chase drift in %s", outlet, strings.Join(fields, ",")))
}

// backoffLocked computes the capped exponential backoff plus jitter for the
// given attempt number. Caller holds s.mu (the PRNG is not goroutine-safe).
func (s *Supervisor) backoffLocked(attempt int) time.Duration {
	d := s.cfg.BaseBackoff << uint(attempt-1)
	if d > s.cfg.MaxBackoff || d <= 0 {
		d = s.cfg.MaxBackoff
	}
	return d + time.Duration(s.rng.Float64()*float64(d)/2)
}

// displayName resolves the best human name for a node: its hostname, the
// database row bound to its MAC (insert-ethers names nodes before their
// first successful boot), or the MAC itself. Caller may hold s.mu; only
// cluster-level lookups happen here.
func (s *Supervisor) displayName(mac string, n *node.Node) string {
	if name := n.Name(); name != "" {
		return name
	}
	if row, ok, err := clusterdb.NodeByMAC(s.c.DB, mac); err == nil && ok && row.Name != "" {
		return row.Name
	}
	return mac
}

func (s *Supervisor) record(host, mac string, t EventType, attempt int, detail string) {
	s.recordLocked(host, mac, t, attempt, detail)
}

// recordLocked publishes one supervisor action to the lifecycle bus — the
// bounded ring is the event log now; there is no private slice to grow
// without limit. Safe with or without s.mu held (the bus has its own lock
// and never calls back).
func (s *Supervisor) recordLocked(host, mac string, t EventType, attempt int, detail string) {
	s.c.supStats.count(t)
	e := s.c.events.Publish(lifecycle.Event{
		Node:    host,
		MAC:     mac,
		Phase:   lifecycle.PhaseRemediate,
		Type:    t,
		Source:  "supervisor",
		Attempt: attempt,
		Detail:  detail,
	})
	s.c.Syslog.Log("frontend-0", "supervisor", "%s", e.String())
}

// Events returns the supervisor's action log in order, reconstructed from
// the lifecycle ring (bounded: entries evicted from the ring are gone; the
// drop count is on /admin/supervisor).
func (s *Supervisor) Events() []SupervisorEvent {
	events := s.c.events.Recent(lifecycle.Filter{Source: "supervisor"})
	out := make([]SupervisorEvent, len(events))
	for i, e := range events {
		out[i] = SupervisorEvent{
			Seq: i + 1, Time: e.Time,
			Host: e.Node, MAC: e.MAC, Type: e.Type, Attempt: e.Attempt, Detail: e.Detail,
		}
	}
	return out
}

// EventsFor filters the log by host or MAC.
func (s *Supervisor) EventsFor(hostOrMAC string) []SupervisorEvent {
	var out []SupervisorEvent
	for _, e := range s.Events() {
		if e.Host == hostOrMAC || e.MAC == hostOrMAC {
			out = append(out, e)
		}
	}
	return out
}

// EventLog renders the action log as text, one event per line.
func (s *Supervisor) EventLog() string {
	var b strings.Builder
	for _, e := range s.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/dist"
	"rocks/internal/hardware"
	"rocks/internal/lifecycle"
	"rocks/internal/node"
)

// The admin API is the simulation's control plane: what an administrator
// reaches over ssh on a real frontend, exposed over HTTP so the cmd/ tools
// (shoot-node, cluster-fork, rocksql, insert-ethers) work as separate
// processes against a running cluster-sim.
//
// Every operation is defined once as an endpoint (run function + audit
// metadata) and served on two surfaces registered by startHTTP:
//
//	/v1/<name>     — the versioned API: {"data": ...} / {"error": ...}
//	                 envelopes, POST-only mutations (405 otherwise), and
//	                 an audit record for every mutating call.
//	/admin/<name>  — legacy aliases preserving the original bespoke
//	                 response shapes for old scripts; mutations are
//	                 audited here too, but any method is accepted.

// apiError is the one structured error shape: machine-readable code,
// human-readable message, and the HTTP status the caller saw. On /v1 it is
// serialized as {"error": {...}}; legacy aliases send just the message.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Status  int    `json:"status"`
}

func (e *apiError) Error() string { return e.Message }

func apiErrorf(status int, code, format string, args ...interface{}) *apiError {
	return &apiError{Code: code, Message: fmt.Sprintf(format, args...), Status: status}
}

// endpoint describes one control-plane operation for both surfaces.
type endpoint struct {
	// name is the path suffix under /v1/ and /admin/, and the op label on
	// rocks_api_requests_total.
	name string
	// audit is the audit-log op name; empty marks a read-only endpoint.
	audit string
	// mutates, when set, decides per-request whether the call mutates
	// (sql: only with exec=1). nil on a mutating endpoint means always.
	mutates func(*http.Request) bool
	// detail renders the operation's parameters for the audit record.
	detail func(*http.Request) string
	// run executes the operation and returns the response payload.
	run func(*http.Request) (interface{}, *apiError)
	// fanout, when set, post-processes run's payload on a federated
	// parent: it fans the query out to registered child frontends and
	// merges their shard results into the local payload. Standalone
	// frontends have no children and fan-outs pass through untouched.
	fanout func(*http.Request, interface{}) (interface{}, *apiError)
	// legacyWrite, when set, overrides JSON for the legacy alias's
	// success response (sql writes text/plain).
	legacyWrite func(http.ResponseWriter, interface{})
}

// ForkResponse is the JSON shape of fork/kill results.
type ForkResponse struct {
	Results []ForkHostResult `json:"results"`
	Killed  int              `json:"killed,omitempty"`
}

// ForkHostResult is one host's outcome.
type ForkHostResult struct {
	Host   string `json:"host"`
	Output string `json:"output,omitempty"`
	Error  string `json:"error,omitempty"`
}

// SQLResponse is the JSON shape of /v1/sql results; the legacy alias sends
// Result as bare text/plain.
type SQLResponse struct {
	Result string `json:"result"`
	Exec   bool   `json:"exec,omitempty"`
}

// ReinstallResult reports what a cluster-wide reinstall actually achieved.
// Converged is only true when every reinstall job completed and every node
// came back up within the deadline; NotUp names the stragglers.
type ReinstallResult struct {
	Status    string   `json:"status"`
	Converged bool     `json:"converged"`
	NotUp     []string `json:"not_up,omitempty"`
}

func (c *Cluster) registerAdmin(mux *http.ServeMux) {
	for _, ep := range c.apiEndpoints() {
		ep := ep
		mux.HandleFunc("/admin/"+ep.name, c.legacyHandler(ep))
		mux.HandleFunc("/v1/"+ep.name, c.v1Handler(ep))
	}
	// The audit log is queryable on the versioned surface only — it did
	// not exist before /v1.
	audit := c.auditEndpoint()
	mux.HandleFunc("/v1/audit", c.v1Handler(audit))
}

// apiEndpoints enumerates the control plane: seven mutations and the
// read-only views.
func (c *Cluster) apiEndpoints() []endpoint {
	return []endpoint{
		{
			name:  "sql",
			audit: "sql-exec",
			mutates: func(r *http.Request) bool {
				return r.FormValue("exec") == "1"
			},
			detail: func(r *http.Request) string { return r.FormValue("q") },
			run:    c.opSQL,
			legacyWrite: func(w http.ResponseWriter, payload interface{}) {
				w.Header().Set("Content-Type", "text/plain")
				fmt.Fprint(w, payload.(SQLResponse).Result)
			},
		},
		{
			name:  "fork",
			audit: "fork",
			detail: func(r *http.Request) string {
				return fmt.Sprintf("cmd %q query %q", r.FormValue("cmd"), r.FormValue("query"))
			},
			run: c.opFork,
		},
		{
			name:  "kill",
			audit: "kill",
			detail: func(r *http.Request) string {
				return fmt.Sprintf("process %q query %q", r.FormValue("process"), r.FormValue("query"))
			},
			run: c.opKill,
		},
		{
			name:  "shoot",
			audit: "shoot",
			detail: func(r *http.Request) string {
				r.ParseForm()
				return "nodes " + strings.Join(r.Form["node"], ",")
			},
			run: c.opShoot,
		},
		{
			name:  "integrate",
			audit: "integrate",
			detail: func(r *http.Request) string {
				return fmt.Sprintf("count=%s rack=%s membership=%s",
					formOr(r, "count", "1"), formOr(r, "rack", "0"), formOr(r, "membership", "default"))
			},
			run: c.opIntegrate,
		},
		{
			name:   "adduser",
			audit:  "adduser",
			detail: func(r *http.Request) string { return "user " + r.FormValue("name") },
			run:    c.opAddUser,
		},
		{
			name:   "reinstall-cluster",
			audit:  "reinstall-cluster",
			detail: func(r *http.Request) string { return "wait=" + formOr(r, "wait", "120") + "s" },
			run:    c.opReinstall,
		},
		{name: "consistency", run: c.opConsistency},
		{name: "relays", run: c.opRelays},
		{name: "health", run: c.opHealth},
		{name: "supervisor", run: c.opSupervisor},
		{name: "dbstats", run: c.opDBStats},
		{name: "diststats", run: c.opDistStats},
		{name: "events", run: c.opEvents, fanout: c.fanEvents},
		{
			name:  "facts",
			audit: "facts-report",
			// First-boot agent reports are telemetry, not administration:
			// accept POST, never audit (a cluster-wide reinstall's report
			// burst would bury the log).
			mutates: func(*http.Request) bool { return false },
			run:     c.opFacts,
		},
		// The federated management hierarchy: merged queries fan out to
		// child frontends; registration and event forwarding come up from
		// them; remirror cascades down the distribution tree.
		{name: "nodes", run: c.opNodes, fanout: c.fanNodes},
		{name: "dbreport", run: c.opDBReport, fanout: c.fanDBReport},
		{name: "federation", run: c.opFederation},
		{
			name:  "federation/register",
			audit: "federation-register",
			detail: func(r *http.Request) string {
				return fmt.Sprintf("shard %q url %q", r.FormValue("shard"), r.FormValue("url"))
			},
			run: c.opFedRegister,
		},
		{
			name:  "federation/events",
			audit: "federation-forward",
			// Forwarded batches are telemetry, not administration: accept
			// POST, never audit (a 20ms-interval stream would bury the log).
			mutates: func(*http.Request) bool { return false },
			run:     c.opFedEvents,
		},
		{
			name:  "federation/remirror",
			audit: "federation-remirror",
			detail: func(r *http.Request) string {
				return "cascade re-mirror"
			},
			run:    c.opFedRemirror,
			fanout: c.fanRemirror,
		},
	}
}

// opSQL runs a read-only query (q=...); exec=1 permits data-modification
// statements (and, on /v1, requires POST).
func (c *Cluster) opSQL(r *http.Request) (interface{}, *apiError) {
	q := r.FormValue("q")
	if q == "" {
		return nil, apiErrorf(http.StatusBadRequest, "missing_parameter", "missing q parameter")
	}
	exec := r.FormValue("exec") == "1"
	var res *clusterdb.Result
	var err error
	if exec {
		res, err = c.DB.Exec(q)
	} else {
		res, err = c.DB.Query(q)
	}
	if err != nil {
		return nil, apiErrorf(http.StatusBadRequest, "sql_error", "%v", err)
	}
	if exec {
		c.WriteReports() // mutations may change service configuration
	}
	return SQLResponse{Result: res.Format(), Exec: exec}, nil
}

func (c *Cluster) opFork(r *http.Request) (interface{}, *apiError) {
	cmd := r.FormValue("cmd")
	if cmd == "" {
		return nil, apiErrorf(http.StatusBadRequest, "missing_parameter", "missing cmd parameter")
	}
	results, err := c.Fork(r.FormValue("query"), cmd)
	if err != nil {
		return nil, apiErrorf(http.StatusBadRequest, "fork_failed", "%v", err)
	}
	resp := ForkResponse{}
	for _, hr := range results {
		out := ForkHostResult{Host: hr.Host, Output: hr.Output}
		if hr.Err != nil {
			out.Error = hr.Err.Error()
		}
		resp.Results = append(resp.Results, out)
	}
	return resp, nil
}

func (c *Cluster) opKill(r *http.Request) (interface{}, *apiError) {
	proc := r.FormValue("process")
	if proc == "" {
		return nil, apiErrorf(http.StatusBadRequest, "missing_parameter", "missing process parameter")
	}
	results, killed, err := c.Kill(r.FormValue("query"), proc)
	if err != nil {
		return nil, apiErrorf(http.StatusBadRequest, "kill_failed", "%v", err)
	}
	resp := ForkResponse{Killed: killed}
	for _, hr := range results {
		out := ForkHostResult{Host: hr.Host, Output: hr.Output}
		if hr.Err != nil {
			out.Error = hr.Err.Error()
		}
		resp.Results = append(resp.Results, out)
	}
	return resp, nil
}

// opShoot reinstalls the named nodes (node=a&node=b). With watch=1 it waits
// for the first node's eKV port and reports it so the CLI can attach. A
// name the cluster does not track is a 404; a node that vanishes from
// tracking between the shot and the watch is a 500 — never a crash.
func (c *Cluster) opShoot(r *http.Request) (interface{}, *apiError) {
	r.ParseForm()
	names := r.Form["node"]
	if len(names) == 0 {
		return nil, apiErrorf(http.StatusBadRequest, "missing_parameter", "missing node parameter")
	}
	if err := c.ShootNode(names...); err != nil {
		if errors.Is(err, ErrUnknownNode) {
			return nil, apiErrorf(http.StatusNotFound, "unknown_node", "%v", err)
		}
		return nil, apiErrorf(http.StatusBadRequest, "shoot_failed", "%v", err)
	}
	resp := map[string]string{"status": "reinstalling"}
	if r.FormValue("watch") == "1" {
		n, ok := c.NodeByName(names[0])
		if !ok {
			return nil, apiErrorf(http.StatusInternalServerError, "node_untracked",
				"node %s was shot but is no longer tracked", names[0])
		}
		// The watch ends early when the client hangs up or the cluster shuts
		// down — a poll must never pin the handler to its full deadline.
		deadline := time.Now().Add(10 * time.Second)
	watch:
		for time.Now().Before(deadline) {
			if addr := n.EKVAddr(); addr != "" {
				resp["ekv"] = addr
				break
			}
			select {
			case <-time.After(2 * time.Millisecond):
			case <-r.Context().Done():
				break watch
			case <-c.ctx.Done():
				break watch
			}
		}
	}
	return resp, nil
}

// opIntegrate powers on `count` new simulated machines and integrates them
// (insert-ethers + sequential boot). Parameters: count, rack, membership,
// mhz, wait (seconds).
func (c *Cluster) opIntegrate(r *http.Request) (interface{}, *apiError) {
	count, aerr := formInt(r, "count", 1, 1)
	if aerr != nil {
		return nil, aerr
	}
	rack, aerr := formInt(r, "rack", 0, 0)
	if aerr != nil {
		return nil, aerr
	}
	membership, aerr := formInt(r, "membership", clusterdb.MembershipCompute, 0)
	if aerr != nil {
		return nil, aerr
	}
	mhz, aerr := formInt(r, "mhz", 733, 1)
	if aerr != nil {
		return nil, aerr
	}
	waitSec, aerr := formInt(r, "wait", 60, 0)
	if aerr != nil {
		return nil, aerr
	}
	wait := time.Duration(waitSec) * time.Second

	profiles := make([]hardware.Profile, count)
	for i := range profiles {
		profiles[i] = hardware.PIIICompute(c.macs, mhz)
	}
	nodes, err := c.IntegrateNodes(profiles, membership, rack, wait)
	if err != nil {
		return nil, apiErrorf(http.StatusInternalServerError, "integrate_failed", "%v", err)
	}
	var names []string
	for _, n := range nodes {
		names = append(names, n.Name())
	}
	return map[string]interface{}{"integrated": names}, nil
}

func (c *Cluster) opAddUser(r *http.Request) (interface{}, *apiError) {
	name := r.FormValue("name")
	if name == "" {
		return nil, apiErrorf(http.StatusBadRequest, "missing_parameter", "missing name parameter")
	}
	uid, aerr := formInt(r, "uid", 500, 0)
	if aerr != nil {
		return nil, aerr
	}
	if err := c.AddUser(name, uid); err != nil {
		return nil, apiErrorf(http.StatusInternalServerError, "adduser_failed", "%v", err)
	}
	return map[string]string{"status": "added", "user": name}, nil
}

// opReinstall reinstalls every compute node through PBS and reports what
// actually happened: Converged only when all jobs completed and every node
// came back up within the deadline, with NotUp naming the machines that
// did not — never an unconditional "cluster reinstalled".
func (c *Cluster) opReinstall(r *http.Request) (interface{}, *apiError) {
	waitSec, aerr := formInt(r, "wait", 120, 0)
	if aerr != nil {
		return nil, aerr
	}
	wait := time.Duration(waitSec) * time.Second
	// One deadline governs both the PBS drain and the come-back-up wait;
	// a drain that eats the whole budget leaves nothing for the boot poll.
	deadline := time.Now().Add(wait)
	jobErr := c.ReinstallCluster(wait)
	var timeoutErr *ReinstallTimeoutError
	if jobErr != nil && !errors.As(jobErr, &timeoutErr) {
		return nil, apiErrorf(http.StatusInternalServerError, "reinstall_failed", "%v", jobErr)
	}
	// The convergence poll ends early when the client hangs up or the
	// cluster shuts down, reporting whatever state the last pass saw; it
	// must never hold the handler (and with it Close) to the full deadline.
	var notUp []string
poll:
	for {
		notUp = notUp[:0]
		for _, n := range c.Nodes() {
			if n.State() != node.StateUp {
				name := n.Name()
				if name == "" {
					name = n.MAC()
				}
				notUp = append(notUp, name)
			}
		}
		if len(notUp) == 0 || !time.Now().Before(deadline) {
			break
		}
		select {
		case <-time.After(5 * time.Millisecond):
		case <-r.Context().Done():
			break poll
		case <-c.ctx.Done():
			break poll
		}
	}
	if timeoutErr != nil {
		notUp = append(notUp, timeoutErr.StuckHosts()...)
	}
	notUp = dedupSorted(notUp)
	res := ReinstallResult{Converged: jobErr == nil && len(notUp) == 0, NotUp: notUp}
	if res.Converged {
		res.Status = "cluster reinstalled"
	} else {
		res.Status = fmt.Sprintf("reinstall incomplete: %d nodes not up", len(notUp))
	}
	return res, nil
}

func (c *Cluster) opConsistency(r *http.Request) (interface{}, *apiError) {
	ref, divergent, err := c.ConsistencyReport()
	if err != nil {
		return nil, apiErrorf(http.StatusInternalServerError, "consistency_failed", "%v", err)
	}
	return map[string]interface{}{"reference": ref, "divergent": divergent}, nil
}

// opSupervisor exposes the remediation supervisor's state: whether one is
// running, its structured event log (reconstructed from the bounded
// lifecycle ring — Dropped counts events the ring has evicted), and the
// quarantine list.
func (c *Cluster) opSupervisor(r *http.Request) (interface{}, *apiError) {
	resp := struct {
		Running     bool              `json:"running"`
		Events      []SupervisorEvent `json:"events"`
		Dropped     uint64            `json:"dropped"`
		Quarantined []string          `json:"quarantined"`
	}{Quarantined: c.Quarantined(), Dropped: c.events.Evicted()}
	if s := c.Supervisor(); s != nil {
		resp.Running = true
		resp.Events = s.Events()
	}
	return resp, nil
}

// opDBStats exposes the database fast path's instrumentation: plan-cache
// traffic, index-vs-scan SELECT counts, per-index key counts, the WAL and
// snapshot counters (durable databases), what recovery found at startup,
// the report coalescer's write/skip counters, and the kickstart profile
// cache. The same figures are scrapeable on /metrics.
func (c *Cluster) opDBStats(r *http.Request) (interface{}, *apiError) {
	ksHits, ksMisses, ksInvalidations := c.KickstartCacheStats()
	resp := struct {
		DB        clusterdb.DBStats       `json:"db"`
		Recovery  *clusterdb.RecoveryInfo `json:"recovery,omitempty"`
		Reports   ReportStats             `json:"reports"`
		Kickstart struct {
			Hits          uint64 `json:"hits"`
			Misses        uint64 `json:"misses"`
			Invalidations uint64 `json:"invalidations"`
		} `json:"kickstart_cache"`
	}{DB: c.DB.Stats(), Recovery: c.recovery, Reports: c.ReportStats()}
	resp.Kickstart.Hits = ksHits
	resp.Kickstart.Misses = ksMisses
	resp.Kickstart.Invalidations = ksInvalidations
	return resp, nil
}

// opDistStats exposes the distribution layer end to end: the build report
// (what rocks-dist composed), the serving counters (manifest versus
// package-body traffic — a delta re-mirror advances the former and not the
// latter), and, when this frontend replicated a parent, the mirror pass's
// skipped/fetched/verified accounting.
func (c *Cluster) opDistStats(r *http.Request) (interface{}, *apiError) {
	return struct {
		Name   string             `json:"name"`
		Build  dist.BuildReport   `json:"build"`
		Serve  dist.ServeStats    `json:"serve"`
		Mirror *dist.MirrorReport `json:"mirror,omitempty"`
	}{Name: c.Dist.Name, Build: c.Dist.Report, Serve: c.distSrv.Stats(), Mirror: c.mirrorReport}, nil
}

// opEvents serves the lifecycle bus: the recent event ring, filtered by
// node (matches hostname or MAC and merges both identities into one
// timeline), type, phase, source, and since (sequence number); limit keeps
// the most recent N matches. The response carries the bus's high-water
// sequence and how many old events the bounded ring has dropped, so a
// client polling with since= can detect gaps.
func (c *Cluster) opEvents(r *http.Request) (interface{}, *apiError) {
	since, aerr := formInt(r, "since", 0, 0)
	if aerr != nil {
		return nil, aerr
	}
	limit, aerr := formInt(r, "limit", 0, 0)
	if aerr != nil {
		return nil, aerr
	}
	f := lifecycle.Filter{
		Type:     lifecycle.EventType(r.FormValue("type")),
		Phase:    lifecycle.Phase(r.FormValue("phase")),
		Source:   r.FormValue("source"),
		SinceSeq: uint64(since),
		Limit:    limit,
	}
	var events []lifecycle.Event
	if nodeID := r.FormValue("node"); nodeID != "" {
		// NodeTimeline merges the MAC-keyed discovery/install prefix with
		// the hostname-keyed remainder of the node's life.
		events = c.NodeTimeline(nodeID)
		kept := events[:0]
		for _, e := range events {
			keep := (f.Type == "" || e.Type == f.Type) &&
				(f.Phase == "" || e.Phase == f.Phase) &&
				(f.Source == "" || e.Source == f.Source) &&
				e.Seq > f.SinceSeq
			if keep {
				kept = append(kept, e)
			}
		}
		events = kept
		if f.Limit > 0 && len(events) > f.Limit {
			events = events[len(events)-f.Limit:]
		}
	} else {
		events = c.events.Recent(f)
	}
	if events == nil {
		events = []lifecycle.Event{}
	}
	return EventsResponse{Events: events, Seq: c.events.Seq(), Dropped: c.events.Evicted()}, nil
}

// opFacts is the install loop's reporting edge. POST ingests one
// first-boot agent's JSON report: the frontend persists it (WAL-covered),
// diffs it against the profile the database expects, and publishes
// drift-detected events the supervisor acts on; ?shard= marks a report a
// registered federated child is relaying upstream, stored with provenance
// and never re-diffed. GET serves the assembled inventory with per-node
// freshness and each node's current drift verdict.
func (c *Cluster) opFacts(r *http.Request) (interface{}, *apiError) {
	if r.Method != http.MethodPost {
		return c.FactsInventory(), nil
	}
	shard := r.URL.Query().Get("shard")
	if shard != "" {
		c.fed.mu.Lock()
		_, known := c.fed.children[shard]
		c.fed.mu.Unlock()
		if !known {
			return nil, apiErrorf(http.StatusNotFound, "unknown_shard",
				"shard %q is not registered; POST /v1/federation/register first", shard)
		}
	}
	var f hardware.Facts
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	if err := dec.Decode(&f); err != nil {
		return nil, apiErrorf(http.StatusBadRequest, "bad_body", "decoding facts report: %v", err)
	}
	if f.MAC == "" {
		return nil, apiErrorf(http.StatusBadRequest, "missing_parameter", "facts report has no mac")
	}
	if err := c.ingestFacts(f, shard); err != nil {
		return nil, apiErrorf(http.StatusInternalServerError, "facts_failed", "recording facts: %v", err)
	}
	return map[string]string{"status": "recorded", "mac": f.MAC}, nil
}

// auditEndpoint serves the mutation audit log, filtered by op, actor,
// outcome, since (sequence), and limit.
func (c *Cluster) auditEndpoint() endpoint {
	return endpoint{
		name: "audit",
		run: func(r *http.Request) (interface{}, *apiError) {
			since, aerr := formInt(r, "since", 0, 0)
			if aerr != nil {
				return nil, aerr
			}
			limit, aerr := formInt(r, "limit", 0, 0)
			if aerr != nil {
				return nil, aerr
			}
			entries := c.audit.recent(auditFilter{
				Op:       r.FormValue("op"),
				Actor:    r.FormValue("actor"),
				Outcome:  r.FormValue("outcome"),
				SinceSeq: uint64(since),
				Limit:    limit,
			})
			if entries == nil {
				entries = []AuditEntry{}
			}
			seq, evicted, errCount := c.audit.stats()
			return struct {
				Entries []AuditEntry `json:"entries"`
				Seq     uint64       `json:"seq"`
				Dropped uint64       `json:"dropped"`
				Errors  uint64       `json:"errors"`
			}{entries, seq, evicted, errCount}, nil
		},
	}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// formInt parses an optional integer parameter: absent means def, but bad
// input is a 400 — unparseable text must never silently become a default
// (since=abc), and a negative must never wrap into a huge unsigned value
// (since=-1).
func formInt(r *http.Request, key string, def, min int) (int, *apiError) {
	s := r.FormValue(key)
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, apiErrorf(http.StatusBadRequest, "bad_parameter",
			"parameter %s: %q is not an integer", key, s)
	}
	if n < min {
		return 0, apiErrorf(http.StatusBadRequest, "bad_parameter",
			"parameter %s: %d is below the minimum %d", key, n, min)
	}
	return n, nil
}

// formOr returns the parameter's raw value, or def when absent — for audit
// details, which record what was asked even when it fails validation.
func formOr(r *http.Request, key, def string) string {
	if s := r.FormValue(key); s != "" {
		return s
	}
	return def
}

// dedupSorted sorts and deduplicates in place.
func dedupSorted(in []string) []string {
	if len(in) == 0 {
		return nil
	}
	sort.Strings(in)
	out := in[:1]
	for _, s := range in[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}

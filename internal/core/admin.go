package core

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/dist"
	"rocks/internal/hardware"
	"rocks/internal/lifecycle"
	"rocks/internal/node"
)

// The admin API is the simulation's control plane: what an administrator
// reaches over ssh on a real frontend, exposed over HTTP so the cmd/ tools
// (shoot-node, cluster-fork, rocksql, insert-ethers) work as separate
// processes against a running cluster-sim. It is registered alongside the
// public endpoints by startHTTP.

// ForkResponse is the JSON shape of /admin/fork results.
type ForkResponse struct {
	Results []ForkHostResult `json:"results"`
	Killed  int              `json:"killed,omitempty"`
}

// ForkHostResult is one host's outcome.
type ForkHostResult struct {
	Host   string `json:"host"`
	Output string `json:"output,omitempty"`
	Error  string `json:"error,omitempty"`
}

func (c *Cluster) registerAdmin(mux *http.ServeMux) {
	mux.HandleFunc("/admin/sql", c.adminSQL)
	mux.HandleFunc("/admin/fork", c.adminFork)
	mux.HandleFunc("/admin/kill", c.adminKill)
	mux.HandleFunc("/admin/shoot", c.adminShoot)
	mux.HandleFunc("/admin/integrate", c.adminIntegrate)
	mux.HandleFunc("/admin/adduser", c.adminAddUser)
	mux.HandleFunc("/admin/reinstall-cluster", c.adminReinstallCluster)
	mux.HandleFunc("/admin/consistency", c.adminConsistency)
	mux.HandleFunc("/admin/health", c.adminHealth)
	mux.HandleFunc("/admin/supervisor", c.adminSupervisor)
	mux.HandleFunc("/admin/dbstats", c.adminDBStats)
	mux.HandleFunc("/admin/diststats", c.adminDistStats)
	mux.HandleFunc("/admin/events", c.adminEvents)
}

// adminDistStats exposes the distribution layer end to end: the build
// report (what rocks-dist composed), the serving counters (manifest versus
// package-body traffic — a delta re-mirror advances the former and not the
// latter), and, when this frontend replicated a parent, the mirror pass's
// skipped/fetched/verified accounting.
func (c *Cluster) adminDistStats(w http.ResponseWriter, r *http.Request) {
	resp := struct {
		Name   string             `json:"name"`
		Build  dist.BuildReport   `json:"build"`
		Serve  dist.ServeStats    `json:"serve"`
		Mirror *dist.MirrorReport `json:"mirror,omitempty"`
	}{Name: c.Dist.Name, Build: c.Dist.Report, Serve: c.distSrv.Stats(), Mirror: c.mirrorReport}
	writeJSON(w, resp)
}

// adminEvents serves the lifecycle bus: the recent event ring, filtered by
// node (matches hostname or MAC and merges both identities into one
// timeline), type, phase, source, and since (sequence number); limit keeps
// the most recent N matches. The response carries the bus's high-water
// sequence and how many old events the bounded ring has dropped, so a
// client polling with since= can detect gaps.
func (c *Cluster) adminEvents(w http.ResponseWriter, r *http.Request) {
	f := lifecycle.Filter{
		Type:     lifecycle.EventType(r.FormValue("type")),
		Phase:    lifecycle.Phase(r.FormValue("phase")),
		Source:   r.FormValue("source"),
		SinceSeq: uint64(formInt(r, "since", 0)),
		Limit:    formInt(r, "limit", 0),
	}
	var events []lifecycle.Event
	if nodeID := r.FormValue("node"); nodeID != "" {
		// NodeTimeline merges the MAC-keyed discovery/install prefix with
		// the hostname-keyed remainder of the node's life.
		events = c.NodeTimeline(nodeID)
		kept := events[:0]
		for _, e := range events {
			keep := (f.Type == "" || e.Type == f.Type) &&
				(f.Phase == "" || e.Phase == f.Phase) &&
				(f.Source == "" || e.Source == f.Source) &&
				e.Seq > f.SinceSeq
			if keep {
				kept = append(kept, e)
			}
		}
		events = kept
		if f.Limit > 0 && len(events) > f.Limit {
			events = events[len(events)-f.Limit:]
		}
	} else {
		events = c.events.Recent(f)
	}
	if events == nil {
		events = []lifecycle.Event{}
	}
	writeJSON(w, struct {
		Events  []lifecycle.Event `json:"events"`
		Seq     uint64            `json:"seq"`
		Dropped uint64            `json:"dropped"`
	}{events, c.events.Seq(), c.events.Evicted()})
}

// adminDBStats exposes the database fast path's instrumentation: plan-cache
// traffic, index-vs-scan SELECT counts, per-index key counts, the WAL and
// snapshot counters (durable databases), what recovery found at startup,
// the report coalescer's write/skip counters, and the kickstart profile
// cache.
func (c *Cluster) adminDBStats(w http.ResponseWriter, r *http.Request) {
	ksHits, ksMisses, ksInvalidations := c.KickstartCacheStats()
	resp := struct {
		DB        clusterdb.DBStats       `json:"db"`
		Recovery  *clusterdb.RecoveryInfo `json:"recovery,omitempty"`
		Reports   ReportStats             `json:"reports"`
		Kickstart struct {
			Hits          uint64 `json:"hits"`
			Misses        uint64 `json:"misses"`
			Invalidations uint64 `json:"invalidations"`
		} `json:"kickstart_cache"`
	}{DB: c.DB.Stats(), Recovery: c.recovery, Reports: c.ReportStats()}
	resp.Kickstart.Hits = ksHits
	resp.Kickstart.Misses = ksMisses
	resp.Kickstart.Invalidations = ksInvalidations
	writeJSON(w, resp)
}

// adminSupervisor exposes the remediation supervisor's state: whether one is
// running, its structured event log (reconstructed from the bounded
// lifecycle ring — Dropped counts events the ring has evicted), and the
// quarantine list.
func (c *Cluster) adminSupervisor(w http.ResponseWriter, r *http.Request) {
	resp := struct {
		Running     bool              `json:"running"`
		Events      []SupervisorEvent `json:"events"`
		Dropped     uint64            `json:"dropped"`
		Quarantined []string          `json:"quarantined"`
	}{Quarantined: c.Quarantined(), Dropped: c.events.Evicted()}
	if s := c.Supervisor(); s != nil {
		resp.Running = true
		resp.Events = s.Events()
	}
	writeJSON(w, resp)
}

// adminSQL runs a read-only query (q=...) and returns the formatted table.
// exec=1 permits data-modification statements.
func (c *Cluster) adminSQL(w http.ResponseWriter, r *http.Request) {
	q := r.FormValue("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	var res *clusterdb.Result
	var err error
	if r.FormValue("exec") == "1" {
		res, err = c.DB.Exec(q)
	} else {
		res, err = c.DB.Query(q)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprint(w, res.Format())
	if r.FormValue("exec") == "1" {
		c.WriteReports() // mutations may change service configuration
	}
}

func (c *Cluster) adminFork(w http.ResponseWriter, r *http.Request) {
	cmd := r.FormValue("cmd")
	if cmd == "" {
		http.Error(w, "missing cmd parameter", http.StatusBadRequest)
		return
	}
	results, err := c.Fork(r.FormValue("query"), cmd)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := ForkResponse{}
	for _, hr := range results {
		out := ForkHostResult{Host: hr.Host, Output: hr.Output}
		if hr.Err != nil {
			out.Error = hr.Err.Error()
		}
		resp.Results = append(resp.Results, out)
	}
	writeJSON(w, resp)
}

func (c *Cluster) adminKill(w http.ResponseWriter, r *http.Request) {
	proc := r.FormValue("process")
	if proc == "" {
		http.Error(w, "missing process parameter", http.StatusBadRequest)
		return
	}
	results, killed, err := c.Kill(r.FormValue("query"), proc)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := ForkResponse{Killed: killed}
	for _, hr := range results {
		out := ForkHostResult{Host: hr.Host, Output: hr.Output}
		if hr.Err != nil {
			out.Error = hr.Err.Error()
		}
		resp.Results = append(resp.Results, out)
	}
	writeJSON(w, resp)
}

// adminShoot reinstalls the named nodes (node=a&node=b). With watch=1 it
// waits for the first node's eKV port and reports it so the CLI can attach.
func (c *Cluster) adminShoot(w http.ResponseWriter, r *http.Request) {
	r.ParseForm()
	names := r.Form["node"]
	if len(names) == 0 {
		http.Error(w, "missing node parameter", http.StatusBadRequest)
		return
	}
	if err := c.ShootNode(names...); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := map[string]string{"status": "reinstalling"}
	if r.FormValue("watch") == "1" {
		n, _ := c.NodeByName(names[0])
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if addr := n.EKVAddr(); addr != "" {
				resp["ekv"] = addr
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	writeJSON(w, resp)
}

// adminIntegrate powers on `count` new simulated machines and integrates
// them (insert-ethers + sequential boot). Parameters: count, rack,
// membership, mhz, wait (seconds).
func (c *Cluster) adminIntegrate(w http.ResponseWriter, r *http.Request) {
	count := formInt(r, "count", 1)
	rack := formInt(r, "rack", 0)
	membership := formInt(r, "membership", clusterdb.MembershipCompute)
	mhz := formInt(r, "mhz", 733)
	wait := time.Duration(formInt(r, "wait", 60)) * time.Second

	profiles := make([]hardware.Profile, count)
	for i := range profiles {
		profiles[i] = hardware.PIIICompute(c.macs, mhz)
	}
	nodes, err := c.IntegrateNodes(profiles, membership, rack, wait)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var names []string
	for _, n := range nodes {
		names = append(names, n.Name())
	}
	writeJSON(w, map[string]interface{}{"integrated": names})
}

func (c *Cluster) adminAddUser(w http.ResponseWriter, r *http.Request) {
	name := r.FormValue("name")
	if name == "" {
		http.Error(w, "missing name parameter", http.StatusBadRequest)
		return
	}
	uid := formInt(r, "uid", 500)
	if err := c.AddUser(name, uid); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]string{"status": "added", "user": name})
}

func (c *Cluster) adminReinstallCluster(w http.ResponseWriter, r *http.Request) {
	wait := time.Duration(formInt(r, "wait", 120)) * time.Second
	if err := c.ReinstallCluster(wait); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// Wait for the shot nodes to come back up before reporting.
	deadline := time.Now().Add(wait)
	for time.Now().Before(deadline) {
		allUp := true
		for _, n := range c.Nodes() {
			if n.State() != node.StateUp {
				allUp = false
				break
			}
		}
		if allUp {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	writeJSON(w, map[string]string{"status": "cluster reinstalled"})
}

func (c *Cluster) adminConsistency(w http.ResponseWriter, r *http.Request) {
	ref, divergent, err := c.ConsistencyReport()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]interface{}{"reference": ref, "divergent": divergent})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func formInt(r *http.Request, key string, def int) int {
	if s := r.FormValue(key); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			return n
		}
	}
	return def
}

package core

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/dist"
	"rocks/internal/hardware"
	"rocks/internal/kickstart"
	"rocks/internal/mpirun"
	"rocks/internal/node"
	"rocks/internal/rexec"
	"rocks/internal/rpm"
)

// TestKernelUpgradeFlow reproduces §3.3's kernel customization path: the
// administrator builds a new kernel RPM (`make rpm`), binds it into a new
// distribution with rocks-dist, and instantiates it "on all desired nodes
// by simply reinstalling them". The Myrinet driver must come out rebuilt
// against the new kernel (§6.3).
func TestKernelUpgradeFlow(t *testing.T) {
	c := newCluster(t)
	nodes := addComputes(t, c, 2)
	oldKernel := nodes[0].KernelVersion()

	// Craft the custom kernel RPM: same name, higher version.
	cur := c.Dist.Repo.Newest("kernel", "i386")
	custom := rpm.New("kernel", rpm.Version{Version: cur.Version.Version, Release: cur.Version.Release + ".custom1"},
		rpm.ArchI386, rpm.FileEntry{Path: "/boot/config-custom", Data: []byte("CONFIG_HPC=y")})
	custom.Size = cur.Size
	local := rpm.NewRepository("site-kernels")
	local.Add(custom)

	// rocks-dist: bind the kernel into a new distribution.
	rebuilt := dist.Build(c.Dist.Name, c.Dist.Framework,
		dist.Source{Name: "current", Repo: c.Dist.Repo},
		dist.Source{Name: "site-kernels", Repo: local})
	if len(rebuilt.Report.Superseded) != 1 {
		t.Fatalf("superseded = %v, want just the old kernel", rebuilt.Report.Superseded)
	}
	*c.Dist = *rebuilt

	// Reinstall and verify.
	if err := c.ShootNode("compute-0-0", "compute-0-1"); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if !WaitState(n, node.StateUp, integrationTimeout) {
			t.Fatalf("%s stuck in %s; log: %v", n.Name(), n.State(), n.InstallLog())
		}
		if n.KernelVersion() == oldKernel {
			t.Errorf("%s still runs %s", n.Name(), oldKernel)
		}
		if !strings.HasSuffix(n.KernelVersion(), ".custom1") {
			t.Errorf("%s kernel = %s, want the custom build", n.Name(), n.KernelVersion())
		}
		// The per-install source rebuild keeps Myrinet working across
		// kernel changes — the whole point of §6.3's strategy.
		if !n.MyrinetOperational() {
			t.Errorf("%s Myrinet broken after kernel upgrade (driver for %q, kernel %q)",
				n.Name(), n.GMDriverFor(), n.KernelVersion())
		}
		if _, err := n.Disk().ReadFile("/boot/config-custom"); err != nil {
			t.Errorf("%s missing the custom kernel payload: %v", n.Name(), err)
		}
	}
}

// TestFailedInstallRecoveryViaPDU injects a distribution fault mid-fleet:
// the install crashes (visible on eKV), the administrator fixes the
// distribution and recovers the node with a hard power cycle (§4).
func TestFailedInstallRecoveryViaPDU(t *testing.T) {
	c := newCluster(t)
	nodes := addComputes(t, c, 1)
	n := nodes[0]

	// Break the distribution: drop bash.
	var removed []*rpm.Package
	for _, p := range c.Dist.Repo.Versions("bash") {
		removed = append(removed, p)
		c.Dist.Repo.Remove(p.NVRA())
	}
	if err := c.ShootNode("compute-0-0"); err != nil {
		t.Fatal(err)
	}
	if !WaitState(n, node.StateCrashed, integrationTimeout) {
		t.Fatalf("node state = %s, want crashed", n.State())
	}
	logs := strings.Join(n.InstallLog(), "\n")
	if !strings.Contains(logs, "bash") {
		t.Errorf("install log does not name the missing package: %q", logs)
	}

	// Fix the distribution, then recover via the PDU: a hard power cycle
	// forces reinstallation.
	for _, p := range removed {
		c.Dist.Repo.Add(p)
	}
	outlet, ok := c.PDU.OutletFor(n.MAC())
	if !ok {
		t.Fatal("node not wired")
	}
	if err := c.PDU.HardCycle(outlet); err != nil {
		t.Fatal(err)
	}
	if !WaitState(n, node.StateUp, integrationTimeout) {
		t.Fatalf("node state = %s after recovery", n.State())
	}
	if n.PackageDB().Len() != 162 {
		t.Errorf("recovered node has %d packages", n.PackageDB().Len())
	}
}

// TestParallelDiscovery exercises the §6.4 footnote: "This procedure can be
// executed in parallel if a node's physical location is unimportant." All
// nodes power on at once; every one must end Up with a unique name and IP.
func TestParallelDiscovery(t *testing.T) {
	c := newCluster(t)
	ie, err := c.StartInsertEthers(clusterdb.MembershipCompute, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ie.Stop()

	const n = 4
	nodes := make([]*node.Node, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		nodes[i] = node.New(hardware.PIIICompute(c.MACs(), 733))
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.PowerOn(nodes[i])
		}(i)
	}
	wg.Wait()
	names := map[string]bool{}
	ips := map[string]bool{}
	for _, nd := range nodes {
		if !WaitState(nd, node.StateUp, integrationTimeout) {
			t.Fatalf("node %s stuck in %s", nd.MAC(), nd.State())
		}
		if names[nd.Name()] || ips[nd.IP()] {
			t.Fatalf("duplicate identity: %s/%s", nd.Name(), nd.IP())
		}
		names[nd.Name()] = true
		ips[nd.IP()] = true
	}
	rows, _ := clusterdb.Nodes(c.DB, "membership = 2")
	if len(rows) != n {
		t.Errorf("db rows = %d", len(rows))
	}
}

// TestWebFormGeneratesFrontendKickstart covers §7: "the frontend Kickstart
// file is built from a simple web form."
func TestWebFormGeneratesFrontendKickstart(t *testing.T) {
	c := newCluster(t)
	resp, err := http.Get(c.BaseURL() + "/install/frontend-form")
	if err != nil {
		t.Fatal(err)
	}
	form, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(form), "<form") || !strings.Contains(string(form), "Cluster name") {
		t.Fatalf("form = %q", form)
	}

	resp, err = http.Get(c.BaseURL() + "/install/frontend-form?generate=1&cluster=Scripps&timezone=US/Pacific")
	if err != nil {
		t.Fatal(err)
	}
	ks, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(ks)
	for _, want := range []string{"install", "%packages", "mysql-server", "timezone US/Pacific"} {
		if !strings.Contains(text, want) {
			t.Errorf("generated kickstart missing %q", want)
		}
	}
}

// TestMpirunOnCluster launches a parallel job across live nodes using the
// machinefile derived from the database — §4.1's interactive path.
func TestMpirunOnCluster(t *testing.T) {
	c := newCluster(t)
	addComputes(t, c, 2)
	rows, err := clusterdb.Nodes(c.DB, "membership = 2")
	if err != nil {
		t.Fatal(err)
	}
	var hosts []mpirun.Host
	for _, r := range rows {
		nd, ok := c.NodeByName(r.Name)
		if !ok {
			t.Fatalf("no live node for %s", r.Name)
		}
		hosts = append(hosts, mpirun.Host{Name: r.Name, Slots: r.CPUs, Exec: nd})
	}
	job, err := mpirun.Launch("cpi", 2, hosts)
	if err != nil {
		t.Fatal(err)
	}
	defer job.Kill()
	results := job.Run(rexec.Request{Command: "hostname"})
	if results[0].Stdout != "compute-0-0\n" || results[1].Stdout != "compute-0-1\n" {
		t.Errorf("results = %+v", results)
	}
	// cluster-kill can clean up the whole parallel job.
	_, killed, err := c.Kill("", "cpi.0")
	if err != nil || killed != 1 {
		t.Errorf("cluster-kill of rank 0: %d, %v", killed, err)
	}
}

// TestClusterFromParentDistribution bootstraps a cluster whose distribution
// derives from a parent served over HTTP — the Figure 6 campus flow ending
// in installed nodes that carry the parent's packages.
func TestClusterFromParentDistribution(t *testing.T) {
	parent := dist.Build("npaci", kickstart.DefaultFramework(),
		dist.Source{Name: "redhat", Repo: dist.SyntheticRedHat()},
		dist.Source{Name: "rocks-local", Repo: dist.LocalRocksPackages()})
	srv := httptest.NewServer(dist.Handler(parent))
	defer srv.Close()

	c, err := New(Config{
		Name:      "campus",
		ParentURL: srv.URL,
		Sources:   []dist.Source{}, // nothing local: everything mirrored
		DHCPRetry: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Dist.Repo.Len() != parent.Repo.Len() {
		t.Errorf("mirrored %d packages, parent has %d", c.Dist.Repo.Len(), parent.Repo.Len())
	}
	nodes, err := c.IntegrateNodes(
		[]hardware.Profile{hardware.PIIICompute(c.MACs(), 733)},
		clusterdb.MembershipCompute, 0, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := nodes[0].PackageDB().Query("rocks-tools")
	if !ok || m.Source == "" {
		t.Errorf("node missing parent package: %+v %v", m, ok)
	}
}

// TestClusterBadParentURL fails fast.
func TestClusterBadParentURL(t *testing.T) {
	if _, err := New(Config{ParentURL: "http://127.0.0.1:1"}); err == nil {
		t.Error("unreachable parent accepted")
	}
}

package core

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/faults"
	"rocks/internal/hardware"
	"rocks/internal/lifecycle"
	"rocks/internal/node"
)

// TestChaosStormSelfHeals is the ISSUE 1 acceptance scenario: a 17-machine
// delivery is integrated under a seeded fault storm — DHCP offers dropped,
// package fetches answered with 500s, a PDU relay that ignores its first
// cycle command, installs wedged mid-partition — with zero manual
// intervention. The installer's bounded retries absorb what they can; the
// supervisor power-cycles what they can't; and the one genuinely bad
// machine (which wedges on every install) exhausts its retry budget and is
// quarantined — offline in PBS — rather than failing the run. Sixteen nodes
// reach fully-installed; the supervisor's event log and the injector's
// ledger reconcile exactly.
func TestChaosStormSelfHeals(t *testing.T) {
	if testing.Short() {
		t.Skip("17-node live chaos integration")
	}
	inj := faults.NewInjector(42)
	c, err := New(Config{
		Name:                "chaos",
		DHCPRetry:           2 * time.Millisecond,
		DisableEKV:          true,
		Faults:              inj,
		InstallRetries:      2,
		InstallRetryBackoff: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ie, err := c.StartInsertEthers(clusterdb.MembershipCompute, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ie.Stop()

	const total = 17
	nodes := make([]*node.Node, total)
	for i := range nodes {
		nodes[i] = node.New(hardware.PIIICompute(c.MACs(), 733))
	}
	// Target the storm by MAC: under concurrent discovery, hostnames are
	// assigned in arrival order, so MACs are the only stable handles.
	dhcpVictim := nodes[0] // two OFFERs vanish; the discover loop absorbs them
	absorbed := nodes[1]   // two 500s — within the installer's retry budget
	crasher := nodes[2]    // six 500s — exceeds the budget, crashes, is revived
	flakyPower := nodes[3] // wedges once AND its PDU relay ignores one cycle
	lemon := nodes[4]      // wedges on every install: the quarantine case
	inj.AddRule(faults.Rule{Op: faults.OpDHCPOffer, Hosts: dhcpVictim.MAC(), Count: 2})
	inj.AddRule(faults.Rule{Op: faults.OpHTTPPackage, Hosts: absorbed.MAC(), Count: 2, Mode: faults.ModeError500})
	// The listing fetch tries the digest manifest, then hdlist, then falls
	// back to the directory — three requests per retry attempt — so
	// exceeding a 3-attempt budget takes nine consecutive 500s.
	inj.AddRule(faults.Rule{Op: faults.OpHTTPPackage, Hosts: crasher.MAC(), Count: 9, Mode: faults.ModeError500})
	inj.AddRule(faults.Rule{Op: faults.OpInstallWedge, Hosts: flakyPower.MAC(), Count: 1})
	inj.AddRule(faults.Rule{Op: faults.OpPowerCycle, Hosts: flakyPower.MAC(), Count: 1})
	// The lemon wedges its initial install plus every supervised retry:
	// 1 + MaxRetries wedges, then the budget is gone.
	inj.AddRule(faults.Rule{Op: faults.OpInstallWedge, Hosts: lemon.MAC(), Count: 4})
	// Background noise over everyone: a sprinkle of latency (added last so
	// the targeted rules above match first).
	inj.AddRule(faults.Rule{
		Op: faults.OpHTTPPackage, Hosts: "*", Prob: 0.25, Count: 12,
		Mode: faults.ModeLatency, Latency: time.Millisecond,
	})

	sup := c.StartSupervisor(SupervisorConfig{
		Patience:    150 * time.Millisecond,
		Interval:    10 * time.Millisecond,
		MaxRetries:  3,
		BaseBackoff: 30 * time.Millisecond,
		MaxBackoff:  300 * time.Millisecond,
		Seed:        7,
	})
	defer sup.Stop()

	var wg sync.WaitGroup
	for i := range nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.PowerOn(nodes[i])
		}(i)
	}
	wg.Wait()

	// Zero manual intervention from here: the lemon must end quarantined
	// and the healthy sixteen must reach up, all on the supervisor's own.
	// The quarantine is observed as a bus event (published after the node
	// went offline), not by polling cluster state.
	waitCtx, cancelWait := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancelWait()
	if _, err := c.Events().WaitFor(waitCtx, lifecycle.Filter{
		MAC: lemon.MAC(), Type: lifecycle.EventQuarantine,
	}); err != nil {
		t.Fatalf("lemon never quarantined: %v\nevents:\n%s", err, sup.EventLog())
	}
	for i, n := range nodes {
		if n == lemon {
			continue
		}
		if !WaitState(n, node.StateUp, 2*time.Minute) {
			t.Fatalf("node %d (%s) stuck in state %s\nevents:\n%s",
				i, n.MAC(), n.State(), sup.EventLog())
		}
	}

	// The quarantined machine is out of the batch pool but still on the
	// books: offline in PBS, marked in the nodes report, row intact.
	lemonName := lemon.Name()
	if !c.PBS.IsOffline(lemonName) {
		t.Errorf("%s not offline in PBS", lemonName)
	}
	if got := len(c.PBS.Moms()); got != total-1 {
		t.Errorf("moms = %d, want %d", got, total-1)
	}
	report, err := c.Frontend.Disk().ReadFile("/opt/pbs/server_priv/nodes")
	if err != nil {
		t.Fatal(err)
	}
	var marked bool
	for _, line := range strings.Split(string(report), "\n") {
		if strings.HasPrefix(line, lemonName+" ") || line == lemonName {
			marked = strings.HasSuffix(line, " offline")
		}
	}
	if !marked {
		t.Errorf("nodes report missing offline mark for %s:\n%s", lemonName, report)
	}

	// The storm actually happened, and dried up: every count-capped rule
	// was fully consumed.
	if n := inj.CountOp(faults.OpDHCPOffer); n != 2 {
		t.Errorf("DHCP drops = %d, want 2", n)
	}
	errors500 := 0
	for _, rec := range inj.Injected() {
		if rec.Op == faults.OpHTTPPackage && rec.Mode == faults.ModeError500 {
			errors500++
		}
	}
	if errors500 != 11 {
		t.Errorf("HTTP 500 injections = %d, want 11 (2 absorbed + 9 crasher)", errors500)
	}
	if n := inj.CountOp(faults.OpInstallWedge); n != 5 {
		t.Errorf("wedge injections = %d, want 5 (1 flaky + 4 lemon)", n)
	}
	if n := inj.CountOp(faults.OpPowerCycle); n != 1 {
		t.Errorf("power-cycle injections = %d, want 1", n)
	}
	if !inj.Exhausted() {
		t.Error("storm never dried up: count-capped rules left unconsumed")
	}

	// The nodes are up, but the supervisor notices a recovery on its next
	// probe tick — wait for both recovery events on the bus before
	// auditing the log.
	for _, mac := range []string{crasher.MAC(), flakyPower.MAC()} {
		if _, err := c.Events().WaitFor(waitCtx, lifecycle.Filter{
			MAC: mac, Type: lifecycle.EventRecovered,
		}); err != nil {
			t.Fatalf("no recovered event for %s: %v\nevents:\n%s", mac, err, sup.EventLog())
		}
	}

	// Event-log accounting: every supervisor action traces to one of the
	// three deliberately broken machines, every injected power fault shows
	// up as a failed cycle, the lemon burned exactly its budget, and both
	// recoverable machines were logged recovered.
	victims := map[string]bool{crasher.MAC(): true, flakyPower.MAC(): true, lemon.MAC(): true}
	perMAC := map[string]map[EventType]int{}
	for _, e := range sup.Events() {
		if !victims[e.MAC] {
			t.Errorf("supervisor touched a healthy node: %s", e)
			continue
		}
		if perMAC[e.MAC] == nil {
			perMAC[e.MAC] = map[EventType]int{}
		}
		perMAC[e.MAC][e.Type]++
	}
	if n := perMAC[flakyPower.MAC()][EventPowerCycleFailed]; n != 1 {
		t.Errorf("failed cycles on flaky-power node = %d, want 1 (one injected veto)", n)
	}
	if perMAC[crasher.MAC()][EventPowerCycle] < 1 || perMAC[crasher.MAC()][EventRecovered] != 1 {
		t.Errorf("crasher events = %v, want ≥1 power-cycle and exactly 1 recovered", perMAC[crasher.MAC()])
	}
	if perMAC[flakyPower.MAC()][EventPowerCycle] < 1 || perMAC[flakyPower.MAC()][EventRecovered] != 1 {
		t.Errorf("flaky-power events = %v", perMAC[flakyPower.MAC()])
	}
	lemonEvents := perMAC[lemon.MAC()]
	if lemonEvents[EventPowerCycle] != 3 || lemonEvents[EventQuarantine] != 1 || lemonEvents[EventRecovered] != 0 {
		t.Errorf("lemon events = %v, want exactly 3 cycles and 1 quarantine", lemonEvents)
	}

	// Finally: the surviving cluster is a real cluster — consistent
	// manifests, a full batch pool, jobs schedulable.
	_, divergent, err := c.ConsistencyReport()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range divergent {
		if d != lemonName {
			t.Errorf("node %s divergent after storm", d)
		}
	}
	if free := c.PBS.FreeNodes(); free != total-1 {
		t.Errorf("free nodes = %d, want %d", free, total-1)
	}
}

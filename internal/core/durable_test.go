package core

import (
	"encoding/json"
	"testing"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/lifecycle"
)

// TestDurableClusterRestart boots a frontend on a durable database
// directory, integrates compute nodes, shuts down cleanly, and boots a
// second frontend on the same directory: the node rows survive, the new
// frontend announces the recovery on the lifecycle bus, and
// /admin/dbstats exposes the WAL counters and recovery summary.
func TestDurableClusterRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Name: "Meteor", DHCPRetry: 2 * time.Millisecond, DBDir: dir}

	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Recovery() != nil {
		t.Errorf("fresh directory reported a recovery: %+v", c.Recovery())
	}
	addComputes(t, c, 3)
	want := c.DB.Dump()
	c.Close()

	c2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart on %s: %v", dir, err)
	}
	defer c2.Close()

	ri := c2.Recovery()
	if ri == nil || ri.Fresh {
		t.Fatalf("restart did not recover: %+v", ri)
	}
	if got := c2.DB.Dump(); got != want {
		t.Errorf("recovered database differs from pre-shutdown dump:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	rows, err := clusterdb.Nodes(c2.DB, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // frontend + 3 computes
		t.Errorf("recovered %d node rows, want 4", len(rows))
	}

	// The restart announces itself: a db-recovered event on the bus.
	evs := c2.Events().Recent(lifecycle.Filter{Type: lifecycle.EventDBRecovered})
	if len(evs) != 1 {
		t.Fatalf("want one db-recovered event, got %d", len(evs))
	}
	if evs[0].Source != "clusterdb" || evs[0].Detail == "" {
		t.Errorf("db-recovered event = %+v", evs[0])
	}

	// /admin/dbstats carries the WAL counters and the recovery summary.
	code, body := adminGet(t, c2, "/admin/dbstats", nil)
	if code != 200 {
		t.Fatalf("dbstats: %d %q", code, body)
	}
	var stats struct {
		DB struct {
			WAL *clusterdb.WALStats `json:"wal"`
		} `json:"db"`
		Recovery *clusterdb.RecoveryInfo `json:"recovery"`
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("dbstats json: %v\n%s", err, body)
	}
	if stats.DB.WAL == nil {
		t.Fatal("dbstats missing wal counters on a durable database")
	}
	if stats.DB.WAL.Replays != 1 {
		t.Errorf("replays = %d, want 1", stats.DB.WAL.Replays)
	}
	if stats.Recovery == nil {
		t.Error("dbstats missing recovery summary after restart")
	}

	// A machine integrated after recovery must be a new node, not a
	// silent adoption of a recovered identity: the restarted MAC
	// allocator reserves every recovered MAC.
	addComputes(t, c2, 1)
	rows, err = clusterdb.Nodes(c2.DB, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("post-recovery integrate: %d node rows, want 5 (new machine adopted a recovered MAC?)", len(rows))
	}
	want2 := c2.DB.Dump()

	// A clean shutdown snapshots, so a third boot replays nothing.
	c2.Close()
	c3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if ri := c3.Recovery(); ri == nil || ri.Replayed != 0 {
		t.Errorf("third boot after clean shutdown: %+v", ri)
	}
	if got := c3.DB.Dump(); got != want2 {
		t.Error("third boot diverged from pre-shutdown dump")
	}
}

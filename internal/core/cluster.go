// Package core assembles the complete Rocks system: a frontend running the
// cluster database, the kickstart CGI, the HTTP distribution server, DHCP,
// syslog, NIS, NFS, and PBS/Maui — plus the lifecycle machinery that boots,
// installs, discovers, and reinstalls compute nodes. It is the public
// façade a downstream user programs against; the cmd/ tools and examples
// are thin wrappers over it.
package core

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/dhcp"
	"rocks/internal/dist"
	"rocks/internal/hardware"
	"rocks/internal/installer"
	"rocks/internal/kickstart"
	"rocks/internal/nfs"
	"rocks/internal/nis"
	"rocks/internal/node"
	"rocks/internal/pbs"
	"rocks/internal/power"
	"rocks/internal/syslogd"
)

// FrontendIP is the frontend's address on the private network, as in
// Table II.
const FrontendIP = "10.1.1.1"

// Config parameterizes cluster construction.
type Config struct {
	// Name is the cluster's name (site attribute ClusterName).
	Name string
	// Sources are the rocks-dist inputs; nil means the synthetic Red Hat
	// mirror plus the local Rocks packages.
	Sources []dist.Source
	// ParentURL, when set, is a parent distribution served over HTTP (an
	// NPACI or campus master, Figure 6); it is mirrored with wget-over-HTTP
	// semantics and layered under Sources, so this cluster's distribution
	// derives from the parent.
	ParentURL string
	// Framework is the XML configuration infrastructure; nil means the
	// stock Rocks graph.
	Framework *kickstart.Framework
	// DisableEKV turns off per-install eKV listeners (large fan-outs).
	DisableEKV bool
	// DHCPRetry/DHCPTimeout tune the installer's discovery loop.
	DHCPRetry   time.Duration
	DHCPTimeout time.Duration
	// ListenAddr is where the frontend's HTTP service binds; empty means
	// an ephemeral loopback port (tests) — cluster-sim sets a fixed port
	// so the CLI tools can find it.
	ListenAddr string
}

// Cluster is a running Rocks cluster.
type Cluster struct {
	cfg Config

	DB     *clusterdb.Database
	Syslog *syslogd.Collector
	Bus    *dhcp.Bus
	DHCPd  *dhcp.Server
	Dist   *dist.Distribution
	NIS    *nis.Domain
	NFS    *nfs.Server
	Home   *nfs.Export
	PBS    *pbs.Server
	PDU    *power.PDU

	Frontend *node.Node
	macs     *hardware.MACAllocator

	httpLn  net.Listener
	httpSrv *http.Server
	baseURL string

	mu      sync.Mutex
	nodes   map[string]*node.Node // by MAC
	byName  map[string]*node.Node
	outlets int

	wg     sync.WaitGroup
	closed bool
}

// New builds and boots a cluster frontend: database, distribution, HTTP
// (kickstart CGI + package serving), DHCP, syslog, NIS, NFS, PBS, and a
// PDU. The frontend node itself is installed through the very kickstart
// pipeline it serves — the paper's frontends install from the same CD
// mechanism as compute nodes.
func New(cfg Config) (*Cluster, error) {
	if cfg.Name == "" {
		cfg.Name = "Rocks Cluster"
	}
	if cfg.Framework == nil {
		cfg.Framework = kickstart.DefaultFramework()
	}
	if cfg.Sources == nil && cfg.ParentURL == "" {
		cfg.Sources = []dist.Source{
			{Name: "redhat-7.2", Repo: dist.SyntheticRedHat()},
			{Name: "rocks-local", Repo: dist.LocalRocksPackages()},
		}
	}
	if cfg.ParentURL != "" {
		mirror, err := dist.Mirror(http.DefaultClient, cfg.ParentURL, "parent-mirror")
		if err != nil {
			return nil, fmt.Errorf("core: replicating parent distribution: %w", err)
		}
		cfg.Sources = append([]dist.Source{{Name: "parent-mirror", Repo: mirror}}, cfg.Sources...)
	}
	c := &Cluster{
		cfg:    cfg,
		DB:     clusterdb.New(),
		Syslog: syslogd.New(),
		Bus:    dhcp.NewBus(),
		NIS:    nis.NewDomain("rocks"),
		NFS:    nfs.NewServer(),
		PBS:    pbs.NewServer(),
		PDU:    power.NewPDU("pdu-0-0"),
		macs:   hardware.NewMACAllocator(),
		nodes:  make(map[string]*node.Node),
		byName: make(map[string]*node.Node),
	}
	if err := clusterdb.InitSchema(c.DB); err != nil {
		return nil, err
	}
	if err := clusterdb.SetSiteValue(c.DB, "ClusterName", cfg.Name); err != nil {
		return nil, err
	}
	c.Dist = dist.Build(cfg.Name, cfg.Framework, cfg.Sources...)
	c.DHCPd = dhcp.NewServer("frontend-0", c.Syslog)
	c.Bus.Register(c.DHCPd)
	c.Home = c.NFS.AddExport("/export/home")

	if err := c.startHTTP(); err != nil {
		return nil, err
	}

	// Install the frontend through its own services.
	fe := node.New(hardware.Frontend(c.macs))
	c.Frontend = fe
	if _, err := clusterdb.InsertNode(c.DB, clusterdb.Node{
		MAC: fe.MAC(), Name: "frontend-0", Membership: clusterdb.MembershipFrontend,
		IP: FrontendIP, Comment: "Gateway machine", Arch: fe.HW.Arch, CPUs: fe.HW.CPUs,
	}); err != nil {
		c.Close()
		return nil, err
	}
	if err := c.syncDHCP(); err != nil {
		c.Close()
		return nil, err
	}
	c.trackNode(fe)
	if err := c.bootOnce(fe); err != nil {
		c.Close()
		return nil, fmt.Errorf("core: installing frontend: %w", err)
	}
	if err := c.WriteReports(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// BaseURL returns the frontend's HTTP root (kickstart CGI and dist).
func (c *Cluster) BaseURL() string { return c.baseURL }

// MACs returns the cluster's Ethernet address allocator; all simulated
// hardware on the private segment must draw from it so addresses are
// unique.
func (c *Cluster) MACs() *hardware.MACAllocator { return c.macs }

// trackNode registers a node in the cluster's indexes and installs its
// reboot hook.
func (c *Cluster) trackNode(n *node.Node) {
	c.mu.Lock()
	c.nodes[n.MAC()] = n
	c.mu.Unlock()
	n.OnReboot = func() {
		// The node rebooted (shoot-node, reinstall job, or plain reboot):
		// it leaves the batch pool immediately and comes back through the
		// boot path.
		if name := n.Name(); name != "" {
			c.PBS.UnregisterMom(name)
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			if err := c.bootOnce(n); err != nil {
				c.Syslog.Log("frontend-0", "rocks", "node %s failed to boot: %v", n.Name(), err)
			}
		}()
	}
}

// installerConfig builds the per-install configuration.
func (c *Cluster) installerConfig() installer.Config {
	return installer.Config{
		Bus:         c.Bus,
		HTTP:        http.DefaultClient,
		DHCPRetry:   c.cfg.DHCPRetry,
		DHCPTimeout: c.cfg.DHCPTimeout,
		DisableEKV:  c.cfg.DisableEKV,
	}
}

// bootOnce takes a node through one power-on: install if needed, then come
// up and join the cluster's services.
func (c *Cluster) bootOnce(n *node.Node) error {
	if n.NeedsInstall() {
		if _, err := installer.Run(n, c.installerConfig()); err != nil {
			return err
		}
	}
	return c.comeUp(n)
}

// comeUp transitions an installed node to Up: bind NIS, mount home over
// NFS, register the PBS mom (compute nodes), and index the hostname.
func (c *Cluster) comeUp(n *node.Node) error {
	n.SetState(node.StateUp)
	name := n.Name()
	if name == "" {
		return fmt.Errorf("core: node %s has no hostname after boot", n.MAC())
	}
	c.mu.Lock()
	c.byName[name] = n
	c.mu.Unlock()

	// ypbind: pull the account map and materialize /etc/passwd.nis.
	b := nis.Bind(c.NIS)
	if m, _ := b.Refresh(); m != "" {
		n.Disk().WriteFile("/etc/passwd.nis", []byte(m), 0o644)
	}
	// mount home (compute nodes only; the frontend *is* the server).
	if n != c.Frontend {
		if _, err := c.NFS.Mount("/export/home", "/home", name); err != nil {
			c.Syslog.Log(name, "mount", "NFS mount failed: %v", err)
		}
	}
	// pbs-mom registers with the server and a scheduling pass runs.
	if _, ok := n.PackageDB().Query("pbs-mom"); ok {
		c.PBS.RegisterMom(name, n)
		c.PBS.Schedule()
	}
	c.Syslog.Log(name, "rocks", "node up (kernel %s, %d packages)",
		n.KernelVersion(), n.PackageDB().Len())
	return nil
}

// NodeByName returns a tracked node.
func (c *Cluster) NodeByName(name string) (*node.Node, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.byName[name]
	return n, ok
}

// Nodes returns all tracked nodes keyed by MAC (a copy).
func (c *Cluster) Nodes() map[string]*node.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]*node.Node, len(c.nodes))
	for k, v := range c.nodes {
		out[k] = v
	}
	return out
}

// syncDHCP regenerates the DHCP server's table from the database.
func (c *Cluster) syncDHCP() error {
	nodes, err := clusterdb.Nodes(c.DB, "")
	if err != nil {
		return err
	}
	want := map[string]dhcp.Binding{}
	for _, n := range nodes {
		if n.MAC == "" || n.IP == "" {
			continue
		}
		want[n.MAC] = dhcp.Binding{IP: n.IP, Hostname: n.Name, NextServer: c.baseURL}
	}
	for mac := range c.DHCPd.Bindings() {
		if _, ok := want[mac]; !ok {
			c.DHCPd.RemoveBinding(mac)
		}
	}
	for mac, b := range want {
		c.DHCPd.SetBinding(mac, b)
	}
	return nil
}

// WriteReports regenerates the service configuration files from the
// database onto the frontend's disk — the dbreport step (§6.4).
func (c *Cluster) WriteReports() error {
	if !c.Frontend.Disk().Bootable() {
		return nil // frontend still installing
	}
	hosts, err := clusterdb.HostsReport(c.DB)
	if err != nil {
		return err
	}
	dhcpConf, err := clusterdb.DHCPReport(c.DB)
	if err != nil {
		return err
	}
	pbsNodes, err := clusterdb.PBSNodesReport(c.DB)
	if err != nil {
		return err
	}
	d := c.Frontend.Disk()
	if err := d.WriteFile("/etc/hosts", []byte(hosts), 0o644); err != nil {
		return err
	}
	if err := d.WriteFile("/etc/dhcpd.conf", []byte(dhcpConf), 0o644); err != nil {
		return err
	}
	if err := d.WriteFile("/opt/pbs/server_priv/nodes", []byte(pbsNodes), 0o644); err != nil {
		return err
	}
	// Back the configuration database up alongside the reports (the
	// mysqldump a careful Rocks site cron'd); rocksql -dump reads it.
	if err := d.WriteFile("/var/db/cluster.sql", []byte(c.DB.Dump()), 0o600); err != nil {
		return err
	}
	return c.syncDHCP()
}

// AddUser creates an account on the frontend: an NIS map entry plus a home
// directory on the NFS export. Compute nodes see it without reinstalling.
func (c *Cluster) AddUser(name string, uid int) error {
	if err := c.NIS.AddUser(nis.User{Name: name, UID: uid, GID: uid}); err != nil {
		return err
	}
	m, _ := c.NFS.Mount("/export/home", "/home", "frontend-0")
	return m.WriteFile("/home/"+name+"/.profile", []byte("# "+name+"\n"))
}

// Close shuts the cluster down: HTTP stops, node goroutines drain.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	if c.httpLn != nil {
		c.httpLn.Close()
	}
	c.wg.Wait()
}

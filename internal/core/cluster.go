// Package core assembles the complete Rocks system: a frontend running the
// cluster database, the kickstart CGI, the HTTP distribution server, DHCP,
// syslog, NIS, NFS, and PBS/Maui — plus the lifecycle machinery that boots,
// installs, discovers, and reinstalls compute nodes. It is the public
// façade a downstream user programs against; the cmd/ tools and examples
// are thin wrappers over it.
package core

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/dhcp"
	"rocks/internal/dist"
	"rocks/internal/faults"
	"rocks/internal/federation"
	"rocks/internal/hardware"
	"rocks/internal/installer"
	"rocks/internal/kickstart"
	"rocks/internal/lifecycle"
	"rocks/internal/metrics"
	"rocks/internal/nfs"
	"rocks/internal/nis"
	"rocks/internal/node"
	"rocks/internal/pbs"
	"rocks/internal/power"
	"rocks/internal/rpm"
	"rocks/internal/syslogd"
)

// FrontendIP is the frontend's address on the private network, as in
// Table II.
const FrontendIP = "10.1.1.1"

// Config parameterizes cluster construction.
type Config struct {
	// Name is the cluster's name (site attribute ClusterName).
	Name string
	// Sources are the rocks-dist inputs; nil means the synthetic Red Hat
	// mirror plus the local Rocks packages.
	Sources []dist.Source
	// ParentURL, when set, is a parent distribution served over HTTP (an
	// NPACI or campus master, Figure 6); it is mirrored with wget-over-HTTP
	// semantics and layered under Sources, so this cluster's distribution
	// derives from the parent.
	ParentURL string
	// Framework is the XML configuration infrastructure; nil means the
	// stock Rocks graph.
	Framework *kickstart.Framework
	// DisableEKV turns off per-install eKV listeners (large fan-outs).
	DisableEKV bool
	// DHCPRetry/DHCPTimeout tune the installer's discovery loop.
	DHCPRetry   time.Duration
	DHCPTimeout time.Duration
	// ListenAddr is where the frontend's HTTP service binds; empty means
	// an ephemeral loopback port (tests) — cluster-sim sets a fixed port
	// so the CLI tools can find it.
	ListenAddr string
	// Faults, when set, injects deterministic failures at the cluster's
	// service seams: DHCP offers dropped on the bus, installer HTTP
	// traffic corrupted per-node, PDU cycle commands vetoed, and installs
	// wedged at stage boundaries. Nil means no injection (production).
	Faults *faults.Injector
	// InstallRetries bounds the installer's automatic, non-interactive
	// retries per fetch before the install crashes. Zero means the
	// default (2); negative disables automatic retries.
	InstallRetries int
	// InstallRetryBackoff is the initial wait between those retries
	// (doubling per attempt); zero means the installer default.
	InstallRetryBackoff time.Duration
	// DisableProfileCache turns off the kickstart CGI's memoized profile
	// cache, forcing a full graph traversal per request — the
	// cached-vs-uncached ablation in the mass-reinstall benchmark.
	// Production keeps the cache.
	DisableProfileCache bool
	// EventRingSize bounds the lifecycle event bus's ring buffer; zero
	// means lifecycle.DefaultRingSize.
	EventRingSize int
	// DBDir, when set, makes the cluster database durable: mutations append
	// to a write-ahead log in this directory and Close snapshots it, so a
	// frontend restarted on the same directory recovers every node binding
	// a crash would otherwise lose. Empty means in-memory (pure-simulation
	// tests).
	DBDir string
	// DBFsync forces every WAL record to stable storage before its
	// statement applies (the last-record guarantee, at one fsync per
	// mutation).
	DBFsync bool
	// DBSnapshotEvery overrides how many logged mutations trigger an
	// automatic snapshot + log rotation; zero means the clusterdb default.
	DBSnapshotEvery int
	// AuditRingSize bounds the control-plane audit log's ring buffer;
	// zero means DefaultAuditRingSize.
	AuditRingSize int
	// EnableRelays turns on the peer distribution tier: completed nodes
	// re-serve their verified package trees, the frontend's /v1/relays
	// registry hands installers prioritized peer sources, and installs
	// fetch peer-first with the frontend as fallback. Off by default —
	// installs then touch only the frontend, exactly as before.
	EnableRelays bool
	// MaxRelaySources caps how many peers /v1/relays offers one installer;
	// zero means the default (8).
	MaxRelaySources int
	// Parent, when set, is another frontend's base URL: this cluster runs
	// as a *child frontend* in a federated hierarchy. It mirrors the
	// parent's distribution (ParentURL defaults to Parent's /install/dist
	// when unset), registers its shard over /v1/federation/register, and
	// forwards its lifecycle events upstream. Construction fails if the
	// parent is unreachable, the same way a failed parent mirror does.
	Parent string
	// Shard declares the slice of the population this frontend owns. The
	// zero value normalizes to "all racks" under the cluster's name.
	Shard federation.Shard
	// FederationTimeout bounds every federation HTTP call (registration,
	// event forwarding, and parent-side fan-outs); zero means 2s. A dark
	// child costs the parent one bounded wait, never a hung merged query.
	FederationTimeout time.Duration
	// MACOUI overrides the simulated-hardware MAC prefix ("xx:xx:xx").
	// Empty with Parent set derives a per-shard OUI so federated
	// populations cannot collide; empty otherwise keeps the default.
	MACOUI string
	// FactsMemTolerancePct is how far (percent) a node's reported memory
	// may sit from the database's expected MemMB before it counts as
	// drift; zero means hardware.DefaultMemTolerancePct. Kernel
	// reservations and BIOS rounding wobble the reading — the band keeps
	// that noise out of the drift timeline.
	FactsMemTolerancePct int
}

// Cluster is a running Rocks cluster.
type Cluster struct {
	cfg Config

	// ctx is the cluster's root context: every long-running path — node
	// installs, the supervisor, monitors, the report coalescer — derives
	// from it, so Close cancels all in-flight work deterministically.
	ctx    context.Context
	cancel context.CancelFunc

	// events is the lifecycle spine: installer, monitor, supervisor,
	// insert-ethers, the PDU, and the cluster itself publish typed
	// node-lifecycle events into one bounded ring (/admin/events).
	events *lifecycle.Bus

	DB     *clusterdb.Database
	Syslog *syslogd.Collector
	Bus    *dhcp.Bus
	DHCPd  *dhcp.Server
	Dist   *dist.Distribution
	NIS    *nis.Domain
	NFS    *nfs.Server
	Home   *nfs.Export
	PBS    *pbs.Server
	PDU    *power.PDU

	Frontend *node.Node
	macs     *hardware.MACAllocator

	httpLn  net.Listener
	httpSrv *http.Server
	baseURL string
	// distSrv serves c.Dist under /install/dist/ and counts its traffic;
	// mirrorReport records the parent replication pass when ParentURL was
	// set. Both feed /admin/diststats. mirrorRepo keeps the mirrored repo
	// itself as the delta baseline for Remirror, and localSources the
	// pre-mirror source list a rebuild layers under the fresh mirror.
	distSrv      *dist.Server
	mirrorReport *dist.MirrorReport
	mirrorRepo   *rpm.Repository
	localSources []dist.Source
	ksAttrs      map[string]string       // shared kickstart attributes; never mutated after startHTTP
	ksCache      *kickstart.ProfileCache // nil when Config.DisableProfileCache
	nodeCache    *nodeResolver           // nil when Config.DisableProfileCache

	mu          sync.Mutex
	nodes       map[string]*node.Node // by MAC
	byName      map[string]*node.Node
	outlets     int
	quarantined map[string]bool
	quarSeq     int64 // bumps on every quarantine-set change (report guard)
	supervisor  *Supervisor

	// supStats counts remediation actions across supervisor restarts;
	// installStats does the same for installer outcomes across node churn.
	supStats     supervisorStats
	installStats installer.Stats

	// metricsReg is the one scrapeable surface (/metrics) every layer's
	// counters register on; audit records every mutating control-plane
	// call; apiReqs counts control-plane traffic per operation.
	metricsReg *metrics.Registry
	audit      *auditLog
	apiReqs    *metrics.CounterVec

	// relays is the peer distribution registry (nil unless EnableRelays).
	relays *relayRegistry

	// fed is the federation half: shard declaration, upstream link when
	// this frontend is a child, child registry when it is a parent. Always
	// non-nil. cgiSeconds times kickstart.cgi request latency.
	fed        *fedState
	cgiSeconds *metrics.Histogram

	// facts is the inventory half of the install loop: every node's latest
	// first-boot report, its drift verdict against the database's expected
	// profile, and the per-field drift counters /metrics exposes. Always
	// non-nil; the durable rows live in clusterdb's facts table.
	facts *factsState

	reports reportCoalescer

	// recovery records what Open found when DBDir was set and held a
	// previous life's database; nil for fresh or in-memory databases.
	recovery *clusterdb.RecoveryInfo

	wg     sync.WaitGroup
	closed bool
}

// New builds and boots a cluster frontend: database, distribution, HTTP
// (kickstart CGI + package serving), DHCP, syslog, NIS, NFS, PBS, and a
// PDU. The frontend node itself is installed through the very kickstart
// pipeline it serves — the paper's frontends install from the same CD
// mechanism as compute nodes.
func New(cfg Config) (*Cluster, error) {
	if cfg.Name == "" {
		cfg.Name = "Rocks Cluster"
	}
	if cfg.Framework == nil {
		cfg.Framework = kickstart.DefaultFramework()
	}
	// Federation normalization: a child frontend's distribution parent is
	// its federation parent's served tree unless overridden, and its shard
	// defaults to "everything, named after the cluster".
	if cfg.Parent != "" {
		cfg.Parent = strings.TrimSuffix(cfg.Parent, "/")
		if cfg.ParentURL == "" {
			cfg.ParentURL = cfg.Parent + "/install/dist"
		}
	}
	if cfg.Shard == (federation.Shard{}) {
		cfg.Shard = federation.Shard{Name: cfg.Name, RackLo: 0, RackHi: -1}
	}
	if cfg.Shard.Name == "" {
		cfg.Shard.Name = cfg.Name
	}
	if cfg.MACOUI == "" && cfg.Parent != "" {
		cfg.MACOUI = hardware.ShardOUI(cfg.Shard.Name)
	}
	if cfg.Sources == nil && cfg.ParentURL == "" {
		cfg.Sources = []dist.Source{
			{Name: "redhat-7.2", Repo: dist.SyntheticRedHat()},
			{Name: "rocks-local", Repo: dist.LocalRocksPackages()},
		}
	}
	// The root context exists before the first network touch (the parent
	// mirror below), so every mirror pass this cluster ever runs — initial
	// and Remirror — is cancellable by the same cancel Close calls.
	ctx, cancel := context.WithCancel(context.Background())
	localSources := cfg.Sources
	var mirrorReport *dist.MirrorReport
	var mirrorRepo *rpm.Repository
	if cfg.ParentURL != "" {
		// Default options: a 60s-timeout client (a wedged parent must not
		// hang frontend construction forever), 8 parallel fetch workers,
		// and bounded per-file retries. Every fetched body is verified
		// against the parent's digest manifest when it serves one.
		mirror, report, err := dist.MirrorReportWith(cfg.ParentURL, "parent-mirror", dist.MirrorOptions{Context: ctx})
		if err != nil {
			cancel()
			return nil, fmt.Errorf("core: replicating parent distribution: %w", err)
		}
		mirrorReport = &report
		mirrorRepo = mirror
		cfg.Sources = append([]dist.Source{{Name: "parent-mirror", Repo: mirror}}, cfg.Sources...)
	}
	macs := hardware.NewMACAllocator()
	if cfg.MACOUI != "" {
		macs = hardware.NewMACAllocatorOUI(cfg.MACOUI)
	}
	c := &Cluster{
		cfg:          cfg,
		events:       lifecycle.NewBus(cfg.EventRingSize),
		Syslog:       syslogd.New(),
		Bus:          dhcp.NewBus(),
		NIS:          nis.NewDomain("rocks"),
		NFS:          nfs.NewServer(),
		PBS:          pbs.NewServer(),
		PDU:          power.NewPDU("pdu-0-0"),
		macs:         macs,
		nodes:        make(map[string]*node.Node),
		byName:       make(map[string]*node.Node),
		quarantined:  make(map[string]bool),
		localSources: localSources,
	}
	c.ctx, c.cancel = ctx, cancel
	c.facts = newFactsState()
	if cfg.DBDir != "" {
		// Durable database: recover whatever a previous life left behind —
		// the node bindings a frontend crash mid-discovery-storm would
		// otherwise silently lose.
		db, info, err := clusterdb.Open(cfg.DBDir, clusterdb.Options{
			Fsync:         cfg.DBFsync,
			SnapshotEvery: cfg.DBSnapshotEvery,
			Faults:        cfg.Faults,
		})
		if err != nil {
			return nil, fmt.Errorf("core: opening cluster database in %s: %w", cfg.DBDir, err)
		}
		c.DB = db
		if !info.Fresh {
			c.recovery = &info
			c.events.Publish(lifecycle.Event{
				Node: "frontend-0", Phase: lifecycle.PhaseRun,
				Type: lifecycle.EventDBRecovered, Source: "clusterdb",
				Detail: info.String(),
			})
		}
	} else {
		c.DB = clusterdb.New()
	}
	// InitSchema is idempotent: on a recovered database (even one that
	// crashed mid-bootstrap) it fills in only what is missing.
	if err := clusterdb.InitSchema(c.DB); err != nil {
		c.DB.Close()
		return nil, err
	}
	if err := clusterdb.SetSiteValue(c.DB, "ClusterName", cfg.Name); err != nil {
		c.DB.Close()
		return nil, err
	}
	c.Dist = dist.Build(cfg.Name, cfg.Framework, cfg.Sources...)
	c.distSrv = dist.NewServer(c.Dist)
	c.mirrorReport = mirrorReport
	c.mirrorRepo = mirrorRepo
	if !cfg.DisableProfileCache {
		// The CGI's memo: reinstall storms hit one (appliance, arch) class
		// hundreds of times; one traversal serves them all (§4, §6.1). The
		// node resolver memoizes the companion SQL behind the database's
		// mutation counter.
		c.ksCache = kickstart.NewProfileCache(c.Dist.Framework)
		c.nodeCache = newNodeResolver(c.DB)
	}
	c.DHCPd = dhcp.NewServer("frontend-0", c.Syslog)
	if cfg.Faults != nil {
		// Every seam the injector covers is wired here, so one Config
		// field turns the whole chaos apparatus on.
		c.Bus.Register(faults.WrapResponder(c.DHCPd, cfg.Faults))
		c.PDU.SetInterceptor(faults.PowerInterceptor(cfg.Faults))
	} else {
		c.Bus.Register(c.DHCPd)
	}
	c.Home = c.NFS.AddExport("/export/home")

	// Every relay actuation — supervisor remediation, an administrator's
	// manual cycle, a chaos test — lands on the bus as a pdu-sourced event.
	c.PDU.SetObserver(func(outlet int, label string, err error) {
		t := lifecycle.EventPowerCycled
		detail := fmt.Sprintf("outlet %d", outlet)
		if err != nil {
			t = lifecycle.EventPowerCycleFailed
			detail = fmt.Sprintf("outlet %d: %v", outlet, err)
		}
		e := lifecycle.Event{Phase: lifecycle.PhaseRemediate, Type: t, Source: "pdu", Detail: detail}
		// Outlets are labeled by MAC; surface the hostname when one exists.
		e.Node = label
		c.mu.Lock()
		if n, ok := c.nodes[label]; ok {
			e.MAC = label
			if name := n.Name(); name != "" {
				e.Node = name
			}
		}
		c.mu.Unlock()
		c.events.Publish(e)
	})

	// One scrapeable surface for every layer's counters, plus the audit
	// log the control plane records mutations into. Both must exist
	// before startHTTP registers their endpoints.
	c.audit = newAuditLog(cfg.AuditRingSize)
	if cfg.EnableRelays {
		c.relays = newRelayRegistry(c)
	}
	c.fed = newFedState(c)
	c.registerMetrics()

	if err := c.startHTTP(); err != nil {
		c.DB.Close()
		return nil, err
	}

	// Install the frontend through its own services. A recovered database
	// already holds the frontend's row; rebind it to this life's MAC (the
	// allocator restarts from scratch, so it usually matches anyway) instead
	// of tripping the unique name index.
	fe := node.New(hardware.Frontend(c.macs))
	c.Frontend = fe
	if existing, ok, err := clusterdb.NodeByName(c.DB, "frontend-0"); err != nil {
		c.Close()
		return nil, err
	} else if ok {
		if existing.MAC != fe.MAC() {
			if err := clusterdb.RebindNodeMAC(c.DB, "frontend-0", fe.MAC()); err != nil {
				c.Close()
				return nil, err
			}
		}
	} else if _, err := clusterdb.InsertNode(c.DB, clusterdb.Node{
		MAC: fe.MAC(), Name: "frontend-0", Membership: clusterdb.MembershipFrontend,
		IP: FrontendIP, Comment: "Gateway machine", Arch: fe.HW.Arch, CPUs: fe.HW.CPUs,
	}); err != nil {
		c.Close()
		return nil, err
	}
	if c.recovery != nil {
		// Recovered rows hold MACs from the previous life's allocator; take
		// them out of circulation so a *new* simulated machine cannot DHCP
		// into a recovered node's identity.
		rows, err := clusterdb.Nodes(c.DB, "")
		if err != nil {
			c.Close()
			return nil, err
		}
		for _, n := range rows {
			c.macs.Reserve(n.MAC)
		}
		// The inventory the previous life collected survives with the rows:
		// /v1/facts answers from the recovered table immediately.
		if err := c.loadFacts(); err != nil {
			c.Close()
			return nil, err
		}
	}
	if err := c.syncDHCP(); err != nil {
		c.Close()
		return nil, err
	}
	c.trackNode(fe)
	if err := c.bootOnce(c.ctx, fe); err != nil {
		c.Close()
		return nil, fmt.Errorf("core: installing frontend: %w", err)
	}
	if err := c.WriteReports(); err != nil {
		c.Close()
		return nil, err
	}
	if cfg.Parent != "" {
		// Announce this child's shard upstream and start streaming its
		// lifecycle events; an unreachable parent fails construction the
		// same way a failed parent mirror does.
		if err := c.fed.registerWithParent(); err != nil {
			c.Close()
			return nil, fmt.Errorf("core: registering with parent frontend: %w", err)
		}
		c.fed.startForwarder()
	}
	return c, nil
}

// BaseURL returns the frontend's HTTP root (kickstart CGI and dist).
func (c *Cluster) BaseURL() string { return c.baseURL }

// Events returns the cluster's lifecycle event bus. Subscribe for reactive
// consumption, or query Recent/Timeline for the bounded history that
// /admin/events serves.
func (c *Cluster) Events() *lifecycle.Bus { return c.events }

// NodeTimeline returns every lifecycle event for a node, identified by
// hostname or MAC, merged across its identities: events published before
// insert-ethers bound a name carry the MAC, later ones the hostname. The
// result is the /admin/events?node=X view — discover through install, up,
// dark, and remediation — in publish order.
func (c *Cluster) NodeTimeline(hostOrMAC string) []lifecycle.Event {
	events := c.events.Timeline(hostOrMAC)
	// Resolve the other identity and merge, deduplicating by bus sequence.
	var other string
	if n, ok := c.NodeByName(hostOrMAC); ok {
		other = n.MAC()
	} else {
		c.mu.Lock()
		if n, ok := c.nodes[hostOrMAC]; ok {
			other = n.Name()
		}
		c.mu.Unlock()
	}
	if other == "" || other == hostOrMAC {
		return events
	}
	seen := make(map[uint64]bool, len(events))
	for _, e := range events {
		seen[e.Seq] = true
	}
	for _, e := range c.events.Timeline(other) {
		if !seen[e.Seq] {
			events = append(events, e)
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })
	return events
}

// Handler exposes the frontend's HTTP mux for in-process dispatch — load
// tests and benchmarks can drive the full CGI path without a socket.
func (c *Cluster) Handler() http.Handler { return c.httpSrv.Handler }

// KickstartCacheStats reports the CGI profile cache's traffic (all zero
// when the cache is disabled): template hits, template builds, and
// generation-stamp invalidations.
func (c *Cluster) KickstartCacheStats() (hits, misses, invalidations uint64) {
	if c.ksCache == nil {
		return 0, 0, 0
	}
	return c.ksCache.Stats()
}

// MACs returns the cluster's Ethernet address allocator; all simulated
// hardware on the private segment must draw from it so addresses are
// unique.
func (c *Cluster) MACs() *hardware.MACAllocator { return c.macs }

// trackNode registers a node in the cluster's indexes and installs its
// reboot hook.
func (c *Cluster) trackNode(n *node.Node) {
	c.mu.Lock()
	c.nodes[n.MAC()] = n
	c.mu.Unlock()
	n.OnReboot = func() {
		// The node rebooted (shoot-node, reinstall job, or plain reboot):
		// it leaves the batch pool immediately and comes back through the
		// boot path.
		if name := n.Name(); name != "" {
			c.PBS.UnregisterMom(name)
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			if err := c.bootOnce(c.ctx, n); err != nil {
				c.Syslog.Log("frontend-0", "rocks", "node %s failed to boot: %v", n.Name(), err)
			}
		}()
	}
}

// installerConfig builds the per-node install configuration. Leaving HTTP
// nil lets the installer use its own bounded-timeout default client; under
// fault injection each node gets a private client whose transport knows the
// node's identities (MAC always, name and IP once assigned — a node learns
// its hostname mid-install, so identities are late-bound).
func (c *Cluster) installerConfig(n *node.Node) installer.Config {
	retries := c.cfg.InstallRetries
	switch {
	case retries == 0:
		retries = 2
	case retries < 0:
		retries = 0
	}
	cfg := installer.Config{
		Bus:          c.Bus,
		DHCPRetry:    c.cfg.DHCPRetry,
		DHCPTimeout:  c.cfg.DHCPTimeout,
		DisableEKV:   c.cfg.DisableEKV,
		FetchRetries: retries,
		FetchBackoff: c.cfg.InstallRetryBackoff,
		Events:       c.events,
		Stats:        &c.installStats,
	}
	if c.relays != nil && n != c.Frontend {
		// Each install accumulates its verified packages in a fresh store;
		// the registry promotes it to a serving relay on install-complete.
		store := rpm.NewRepository(n.MAC() + "-relay")
		c.relays.expect(n.MAC(), store)
		cfg.RelayStore = store
		cfg.RelayURL = c.baseURL + "/v1/relays"
		cfg.RelayMAC = n.MAC()
	}
	if n != c.Frontend {
		// The first-boot facts agent: after install-complete the node
		// probes its hardware and reports to the frontend, which diffs the
		// report against the database's expected profile. The frontend
		// itself does not report — it is the diffing side.
		cfg.FactsURL = c.baseURL + "/v1/facts"
	}
	if c.cfg.Faults != nil && n != c.Frontend {
		identities := func() []string { return []string{n.MAC(), n.Name(), n.IP()} }
		cfg.HTTP = &http.Client{
			Timeout:   60 * time.Second,
			Transport: faults.NewTransport(c.cfg.Faults, nil, identities),
		}
		cfg.FaultHook = faults.InstallHook(c.cfg.Faults, identities)
		cfg.FactsHook = faults.FactsHook(c.cfg.Faults, identities)
	}
	return cfg
}

// bootOnce takes a node through one power-on: install if needed, then come
// up and join the cluster's services. The context bounds the whole boot —
// cancelling it (Cluster.Close) aborts an in-flight install promptly.
func (c *Cluster) bootOnce(ctx context.Context, n *node.Node) error {
	if n.NeedsInstall() {
		if _, err := installer.Run(ctx, n, c.installerConfig(n)); err != nil {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.comeUp(n)
}

// comeUp transitions an installed node to Up: bind NIS, mount home over
// NFS, register the PBS mom (compute nodes), and index the hostname.
func (c *Cluster) comeUp(n *node.Node) error {
	n.SetState(node.StateUp)
	name := n.Name()
	if name == "" {
		return fmt.Errorf("core: node %s has no hostname after boot", n.MAC())
	}
	c.mu.Lock()
	c.byName[name] = n
	c.mu.Unlock()

	// ypbind: pull the account map and materialize /etc/passwd.nis.
	b := nis.Bind(c.NIS)
	if m, _ := b.Refresh(); m != "" {
		n.Disk().WriteFile("/etc/passwd.nis", []byte(m), 0o644)
	}
	// mount home (compute nodes only; the frontend *is* the server).
	if n != c.Frontend {
		if _, err := c.NFS.Mount("/export/home", "/home", name); err != nil {
			c.Syslog.Log(name, "mount", "NFS mount failed: %v", err)
		}
	}
	// pbs-mom registers with the server and a scheduling pass runs.
	if _, ok := n.PackageDB().Query("pbs-mom"); ok {
		c.PBS.RegisterMom(name, n)
		c.PBS.Schedule()
	}
	c.Syslog.Log(name, "rocks", "node up (kernel %s, %d packages)",
		n.KernelVersion(), n.PackageDB().Len())
	c.events.Publish(lifecycle.Event{
		Node:   name,
		MAC:    n.MAC(),
		Phase:  lifecycle.PhaseRun,
		Type:   lifecycle.EventUp,
		Source: "cluster",
		Detail: fmt.Sprintf("kernel %s, %d packages", n.KernelVersion(), n.PackageDB().Len()),
	})
	return nil
}

// NodeByName returns a tracked node.
func (c *Cluster) NodeByName(name string) (*node.Node, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.byName[name]
	return n, ok
}

// Nodes returns all tracked nodes keyed by MAC (a copy).
func (c *Cluster) Nodes() map[string]*node.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]*node.Node, len(c.nodes))
	for k, v := range c.nodes {
		out[k] = v
	}
	return out
}

// syncDHCP regenerates the DHCP server's table from the database.
func (c *Cluster) syncDHCP() error {
	nodes, err := clusterdb.Nodes(c.DB, "")
	if err != nil {
		return err
	}
	want := map[string]dhcp.Binding{}
	for _, n := range nodes {
		if n.MAC == "" || n.IP == "" {
			continue
		}
		want[n.MAC] = dhcp.Binding{IP: n.IP, Hostname: n.Name, NextServer: c.baseURL}
	}
	for mac := range c.DHCPd.Bindings() {
		if _, ok := want[mac]; !ok {
			c.DHCPd.RemoveBinding(mac)
		}
	}
	for mac, b := range want {
		c.DHCPd.SetBinding(mac, b)
	}
	return nil
}

// Quarantine pulls a node out of service without removing it: the host is
// marked offline in PBS (never scheduled again), its mom is unregistered
// (failing any running job — the honest consequence), and the reports
// regenerate with the offline mark. The database row, DHCP binding, and
// PDU outlet survive so the machine can be repaired and returned with
// Unquarantine. Host may be a hostname or, for nodes that died before
// naming, a MAC.
func (c *Cluster) Quarantine(host string) error {
	c.mu.Lock()
	c.quarantined[host] = true
	c.quarSeq++
	c.mu.Unlock()
	c.PBS.SetOffline(host, true)
	c.PBS.UnregisterMom(host)
	c.Syslog.Log("frontend-0", "rocks", "quarantined %s: offline in PBS, awaiting repair", host)
	return c.WriteReports()
}

// Unquarantine returns a repaired node to service. The node rejoins the
// batch pool on its next successful boot (its mom re-registers in comeUp).
func (c *Cluster) Unquarantine(host string) error {
	c.mu.Lock()
	delete(c.quarantined, host)
	c.quarSeq++
	c.mu.Unlock()
	c.PBS.SetOffline(host, false)
	c.Syslog.Log("frontend-0", "rocks", "unquarantined %s", host)
	c.supStats.unquarantines.Add(1)
	c.events.Publish(lifecycle.Event{
		Node: host, Phase: lifecycle.PhaseRemediate,
		Type: lifecycle.EventUnquarantine, Source: "cluster",
	})
	return c.WriteReports()
}

// IsQuarantined reports whether the host is quarantined.
func (c *Cluster) IsQuarantined(host string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.quarantined[host]
}

// Quarantined lists quarantined hosts, sorted.
func (c *Cluster) Quarantined() []string {
	c.mu.Lock()
	out := make([]string, 0, len(c.quarantined))
	for h := range c.quarantined {
		out = append(out, h)
	}
	c.mu.Unlock()
	sort.Strings(out)
	return out
}

// AddUser creates an account on the frontend: an NIS map entry plus a home
// directory on the NFS export. Compute nodes see it without reinstalling.
func (c *Cluster) AddUser(name string, uid int) error {
	if err := c.NIS.AddUser(nis.User{Name: name, UID: uid, GID: uid}); err != nil {
		return err
	}
	m, _ := c.NFS.Mount("/export/home", "/home", "frontend-0")
	return m.WriteFile("/home/"+name+"/.profile", []byte("# "+name+"\n"))
}

// Close shuts the cluster down deterministically: the root context is
// cancelled first, which aborts in-flight installs at their next phase
// boundary and reaps every context-started monitor loop; then the
// supervisor, report timer, and HTTP listener stop, and the node goroutines
// drain. After Close returns, no cluster goroutine is left running.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	sup := c.supervisor
	c.mu.Unlock()
	c.cancel()
	c.stopReportTimer()
	if sup != nil {
		sup.Stop()
	}
	if c.relays != nil {
		c.relays.closeAll()
	}
	if c.httpSrv != nil {
		// Close the server, not just the listener: accepted keep-alive
		// connections (an installer's pooled conns, a parent's fan-out
		// client) would otherwise keep answering after shutdown — a closed
		// frontend must go dark, not half-dark.
		c.httpSrv.Close()
	}
	if c.httpLn != nil {
		c.httpLn.Close()
	}
	c.wg.Wait()
	// Last: a final snapshot bounds the next Open's replay. After wg.Wait
	// no cluster goroutine can still be writing.
	if err := c.DB.Close(); err != nil {
		c.Syslog.Log("frontend-0", "clusterdb", "closing database: %v", err)
	}
}

// Recovery reports what the durable database recovered at startup: nil when
// the database was in-memory or the directory was fresh.
func (c *Cluster) Recovery() *clusterdb.RecoveryInfo { return c.recovery }

package core

import (
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"runtime"
	"testing"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/hardware"
	"rocks/internal/lifecycle"
	"rocks/internal/node"
)

// TestNodeLifecycleTimeline drives one node through its whole life —
// discovery, install, service, darkness, supervised power cycle, recovery —
// and asserts that /admin/events?node= replays it as a single ordered
// timeline fed by every producer layer.
func TestNodeLifecycleTimeline(t *testing.T) {
	c := newCluster(t)
	nodes := addComputes(t, c, 1)
	n := nodes[0]

	s := c.StartSupervisor(tightSupervisor(11))
	defer s.Stop()

	// Kill the machine: the monitor reports it dark, the supervisor cycles
	// its outlet, and the forced reinstall brings it back.
	n.PowerOff()
	ctx, cancelWait := context.WithTimeout(context.Background(), integrationTimeout)
	defer cancelWait()
	if _, err := c.Events().WaitFor(ctx, lifecycle.Filter{
		Node: "compute-0-0", Type: lifecycle.EventRecovered,
	}); err != nil {
		t.Fatalf("node never recovered: %v\nevents:\n%s", err, s.EventLog())
	}

	code, body := adminGet(t, c, "/admin/events", url.Values{"node": {"compute-0-0"}})
	if code != 200 {
		t.Fatalf("/admin/events: %d %q", code, body)
	}
	var resp struct {
		Events  []lifecycle.Event `json:"events"`
		Seq     uint64            `json:"seq"`
		Dropped uint64            `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("events JSON: %v (%s)", err, body)
	}

	// The timeline must contain the canonical subsequence, in order. Other
	// events — the reinstall's second lease/kickstart/…/up — interleave
	// after the power cycle; the scan skips over them.
	want := []lifecycle.EventType{
		lifecycle.EventDiscovered,
		lifecycle.EventBound,
		lifecycle.EventLease,
		lifecycle.EventKickstart,
		lifecycle.EventPartition,
		lifecycle.EventPackages,
		lifecycle.EventPost,
		lifecycle.EventInstallComplete,
		lifecycle.EventUp,
		lifecycle.EventDark,
		lifecycle.EventPowerCycle,
		lifecycle.EventRecovered,
	}
	i := 0
	for _, e := range resp.Events {
		if i < len(want) && e.Type == want[i] {
			i++
		}
	}
	if i != len(want) {
		t.Fatalf("timeline missing %q (matched %d/%d):\n%s", want[i], i, len(want), body)
	}

	// One bus, every producer: discovery, install, steady state, and
	// remediation all speak on it.
	seen := map[string]bool{}
	for _, e := range resp.Events {
		seen[e.Source] = true
	}
	for _, src := range []string{"insert-ethers", "installer", "cluster", "monitor", "supervisor", "pdu"} {
		if !seen[src] {
			t.Errorf("no %s-sourced event in the timeline:\n%s", src, body)
		}
	}

	// The merged timeline (pre-name events under the MAC, the rest under
	// the hostname) is strictly Seq-ordered.
	for i := 1; i < len(resp.Events); i++ {
		if resp.Events[i].Seq <= resp.Events[i-1].Seq {
			t.Errorf("timeline out of order at %d: %+v", i, resp.Events[i])
		}
	}
	if resp.Seq == 0 {
		t.Error("response missing the bus's high-water sequence")
	}
}

// TestAdminEventsFilters: the endpoint's type/source/limit parameters narrow
// the ring without a node timeline merge.
func TestAdminEventsFilters(t *testing.T) {
	c := newCluster(t)
	addComputes(t, c, 2)

	code, body := adminGet(t, c, "/admin/events",
		url.Values{"type": {"bound"}, "source": {"insert-ethers"}})
	if code != 200 {
		t.Fatalf("/admin/events: %d %q", code, body)
	}
	var resp struct {
		Events []lifecycle.Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("events JSON: %v (%s)", err, body)
	}
	if len(resp.Events) != 2 {
		t.Fatalf("bound events = %d, want 2:\n%s", len(resp.Events), body)
	}
	for _, e := range resp.Events {
		if e.Type != lifecycle.EventBound || e.Source != "insert-ethers" {
			t.Errorf("filter leak: %+v", e)
		}
	}

	// limit keeps the most recent matches.
	_, body = adminGet(t, c, "/admin/events", url.Values{"type": {"bound"}, "limit": {"1"}})
	resp.Events = nil
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Events) != 1 || resp.Events[0].Node != "compute-0-1" {
		t.Errorf("limit=1 = %+v, want the most recent bound (compute-0-1)", resp.Events)
	}
}

// TestCloseReapsAllGoroutines is the regression test for the monitor leak:
// Close cancels the cluster's root context, which must reap a background
// monitor nobody stopped, a running supervisor, and an installer parked in
// its DHCP discover loop. CI runs this under -race.
func TestCloseReapsAllGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	c, err := New(Config{
		Name:        "leak",
		DHCPRetry:   2 * time.Millisecond,
		DHCPTimeout: time.Hour, // only cancellation can end the stray's loop
	})
	if err != nil {
		t.Fatal(err)
	}
	profiles := []hardware.Profile{hardware.PIIICompute(c.MACs(), 733)}
	if _, err := c.IntegrateNodes(profiles, clusterdb.MembershipCompute, 0, integrationTimeout); err != nil {
		c.Close()
		t.Fatal(err)
	}

	// The three leak sources Close must reap on its own: a background
	// monitor loop that is never explicitly stopped (the old bug), a
	// supervisor with its own monitor and bus subscription, and a powered-on
	// machine no insert-ethers session will ever admit — its installer
	// retries DHCP discovery until the root context aborts it.
	c.NewMonitor(20*time.Millisecond, 5*time.Millisecond)
	c.StartSupervisor(tightSupervisor(13))
	stray := node.New(hardware.PIIICompute(c.MACs(), 733))
	c.PowerOn(stray)

	start := time.Now()
	done := make(chan struct{})
	go func() { c.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(integrationTimeout):
		t.Fatal("Close never returned: a goroutine is not honoring the root context")
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Errorf("Close took %v; cancellation should be prompt", d)
	}
	if stray.State() == node.StateUp {
		t.Error("stray node came up without a DHCP binding")
	}

	// The count settles back to the pre-cluster baseline. Idle HTTP
	// keep-alive connections from the installs are the one legitimate
	// straggler, so flush them while waiting.
	deadline := time.Now().Add(10 * time.Second)
	for {
		http.DefaultTransport.(*http.Transport).CloseIdleConnections()
		if g := runtime.NumGoroutine(); g <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: %d before the cluster, %d after Close\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

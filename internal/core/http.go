package core

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"

	"rocks/internal/clusterdb"
	"rocks/internal/dist"
	"rocks/internal/installer"
	"rocks/internal/kickstart"
)

// startHTTP brings up the frontend's web service on a loopback port:
//
//	/install/kickstart.cgi  — dynamic kickstart generation (§6.1)
//	/install/dist/...       — the distribution tree (RPMs over HTTP, §5)
//	/status                 — node states as JSON (the monitoring view)
//	/tables/nodes           — Table II rendered from the live database
//	/tables/memberships     — Table III
//	/graph.dot              — the kickstart graph (Figure 4)
func (c *Cluster) startHTTP() error {
	addr := c.cfg.ListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("core: frontend HTTP: %w", err)
	}
	c.httpLn = ln
	c.baseURL = "http://" + ln.Addr().String()

	mux := http.NewServeMux()
	mux.HandleFunc("/install/kickstart.cgi", c.kickstartCGI)
	mux.Handle("/install/dist/", http.StripPrefix("/install/dist", dist.Handler(c.Dist)))
	mux.HandleFunc("/status", c.statusHandler)
	mux.HandleFunc("/tables/nodes", func(w http.ResponseWriter, r *http.Request) {
		report, err := clusterdb.NodesTableReport(c.DB)
		writeReport(w, report, err)
	})
	mux.HandleFunc("/tables/memberships", func(w http.ResponseWriter, r *http.Request) {
		report, err := clusterdb.MembershipsTableReport(c.DB)
		writeReport(w, report, err)
	})
	mux.HandleFunc("/graph.dot", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, c.Dist.Framework.DOT())
	})
	mux.HandleFunc("/install/frontend-form", c.frontendForm)
	c.registerAdmin(mux)
	c.httpSrv = &http.Server{Handler: mux}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.httpSrv.Serve(ln)
	}()
	return nil
}

func writeReport(w http.ResponseWriter, report string, err error) {
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	io.WriteString(w, report)
}

// kickstartCGI is the §6.1 CGI: resolve the requesting IP to a node row,
// the node's membership to an appliance, traverse the graph for the node's
// architecture, and return the rendered kickstart file.
func (c *Cluster) kickstartCGI(w http.ResponseWriter, r *http.Request) {
	ip := r.Header.Get(installer.ClientIPHeader)
	if ip == "" {
		host, _, err := net.SplitHostPort(r.RemoteAddr)
		if err != nil {
			http.Error(w, "cannot determine client address", http.StatusBadRequest)
			return
		}
		ip = host
	}
	n, ok, err := clusterdb.NodeByIP(c.DB, ip)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !ok {
		http.Error(w, fmt.Sprintf("no node registered at %s (run insert-ethers)", ip), http.StatusNotFound)
		return
	}
	_, _, rootNode, err := clusterdb.ApplianceForMembership(c.DB, n.Membership)
	if err != nil || rootNode == "" {
		http.Error(w, fmt.Sprintf("membership %d has no kickstartable appliance", n.Membership), http.StatusForbidden)
		return
	}
	arch := r.FormValue("arch")
	if arch == "" {
		arch = n.Arch
	} else if arch != n.Arch {
		// Record the architecture the installer actually detected — the
		// database can't know it before the machine first boots.
		c.DB.Exec(fmt.Sprintf("UPDATE nodes SET arch = '%s' WHERE id = %d", arch, n.ID))
	}
	attrs := kickstart.DefaultAttrs(c.baseURL+"/install/dist", FrontendIP)
	attrs["Kickstart_PublicHostname"] = n.Name
	profile, err := c.Dist.Framework.Generate(kickstart.Request{
		Appliance: rootNode,
		Arch:      arch,
		NodeName:  n.Name,
		Attrs:     attrs,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	io.WriteString(w, profile.Render())
	c.Syslog.Log("frontend-0", "kickstart.cgi", "served %s profile to %s (%s)",
		profile.Appliance, n.Name, ip)
}

// NodeStatus is one row of the /status view.
type NodeStatus struct {
	Name     string `json:"name"`
	MAC      string `json:"mac"`
	IP       string `json:"ip"`
	State    string `json:"state"`
	Kernel   string `json:"kernel,omitempty"`
	Packages int    `json:"packages"`
	Installs int    `json:"installs"`
	EKV      string `json:"ekv,omitempty"`
}

// Status snapshots every tracked node, sorted by name.
func (c *Cluster) Status() []NodeStatus {
	c.mu.Lock()
	nodes := make([]NodeStatus, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, NodeStatus{
			Name:     n.Name(),
			MAC:      n.MAC(),
			IP:       n.IP(),
			State:    string(n.State()),
			Kernel:   n.KernelVersion(),
			Packages: n.PackageDB().Len(),
			Installs: n.Installs(),
			EKV:      n.EKVAddr(),
		})
	}
	c.mu.Unlock()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	return nodes
}

func (c *Cluster) statusHandler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(c.Status())
}

// StatusTable renders Status as aligned text for CLI display.
func (c *Cluster) StatusTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-18s %-16s %-11s %-10s %4s\n",
		"NAME", "MAC", "IP", "STATE", "KERNEL", "PKGS")
	for _, s := range c.Status() {
		fmt.Fprintf(&b, "%-14s %-18s %-16s %-11s %-10s %4d\n",
			s.Name, s.MAC, s.IP, s.State, s.Kernel, s.Packages)
	}
	return b.String()
}

package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/installer"
	"rocks/internal/kickstart"
)

// startHTTP brings up the frontend's web service on a loopback port:
//
//	/install/kickstart.cgi  — dynamic kickstart generation (§6.1)
//	/install/dist/...       — the distribution tree (RPMs over HTTP, §5)
//	/status                 — node states as JSON (the monitoring view)
//	/tables/nodes           — Table II rendered from the live database
//	/tables/memberships     — Table III
//	/graph.dot              — the kickstart graph (Figure 4)
func (c *Cluster) startHTTP() error {
	addr := c.cfg.ListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("core: frontend HTTP: %w", err)
	}
	c.httpLn = ln
	c.baseURL = "http://" + ln.Addr().String()
	// The shared attribute set every kickstart request substitutes. Built
	// once: it is also the profile cache's key, and it must never be
	// mutated per request (per-node values ride in Request.NodeAttrs).
	c.ksAttrs = kickstart.DefaultAttrs(c.baseURL+"/install/dist", FrontendIP)

	mux := http.NewServeMux()
	mux.HandleFunc("/install/kickstart.cgi", c.kickstartCGI)
	mux.Handle("/install/dist/", http.StripPrefix("/install/dist", c.distSrv))
	mux.HandleFunc("/status", c.statusHandler)
	mux.HandleFunc("/tables/nodes", func(w http.ResponseWriter, r *http.Request) {
		report, err := clusterdb.NodesTableReport(c.DB)
		writeReport(w, report, err)
	})
	mux.HandleFunc("/tables/memberships", func(w http.ResponseWriter, r *http.Request) {
		report, err := clusterdb.MembershipsTableReport(c.DB)
		writeReport(w, report, err)
	})
	mux.HandleFunc("/graph.dot", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, c.Dist.Framework.DOT())
	})
	mux.HandleFunc("/install/frontend-form", c.frontendForm)
	mux.HandleFunc("/metrics", c.metricsHandler)
	c.registerAdmin(mux)
	c.httpSrv = &http.Server{Handler: mux}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		// Serve only returns on listener failure or shutdown; anything but
		// the expected close is worth a syslog line, not silence.
		if err := c.httpSrv.Serve(ln); err != nil &&
			!errors.Is(err, http.ErrServerClosed) && !errors.Is(err, net.ErrClosed) {
			c.Syslog.Log("frontend-0", "httpd", "frontend HTTP serve: %v", err)
		}
	}()
	return nil
}

func writeReport(w http.ResponseWriter, report string, err error) {
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	io.WriteString(w, report)
}

// kickstartCGI is the §6.1 CGI: resolve the requesting IP to a node row,
// the node's membership to an appliance, traverse the graph for the node's
// architecture, and return the rendered kickstart file.
func (c *Cluster) kickstartCGI(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() {
		if c.cgiSeconds != nil {
			c.cgiSeconds.Observe(time.Since(start).Seconds())
		}
	}()
	ip := r.Header.Get(installer.ClientIPHeader)
	if ip == "" {
		host, _, err := net.SplitHostPort(r.RemoteAddr)
		if err != nil {
			http.Error(w, "cannot determine client address", http.StatusBadRequest)
			return
		}
		ip = host
	}
	n, rootNode, ok, err := c.resolveNode(ip)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !ok {
		http.Error(w, fmt.Sprintf("no node registered at %s (run insert-ethers)", ip), http.StatusNotFound)
		return
	}
	if rootNode == "" {
		http.Error(w, fmt.Sprintf("membership %d has no kickstartable appliance", n.Membership), http.StatusForbidden)
		return
	}
	arch := r.FormValue("arch")
	switch {
	case arch == "":
		arch = n.Arch
	case !kickstart.KnownArch(arch):
		// The value is client-supplied; anything outside the known set is
		// rejected before it can reach the database or the graph.
		http.Error(w, fmt.Sprintf("unknown architecture %q", arch), http.StatusBadRequest)
		return
	case arch != n.Arch:
		// Record the architecture the installer actually detected — the
		// database can't know it before the machine first boots.
		if err := clusterdb.SetNodeArch(c.DB, n.ID, arch); err != nil {
			c.Syslog.Log("frontend-0", "kickstart.cgi", "recording arch %s for %s: %v",
				arch, n.Name, err)
		}
	}
	req := kickstart.Request{
		Appliance: rootNode,
		Arch:      arch,
		NodeName:  n.Name,
		Attrs:     c.ksAttrs,
		NodeAttrs: map[string]string{"Kickstart_PublicHostname": n.Name},
	}
	var text string
	if c.ksCache != nil {
		text, err = c.ksCache.Render(req)
	} else {
		var profile *kickstart.Profile
		if profile, err = c.Dist.Framework.Generate(req); err == nil {
			text = profile.Render()
		}
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	io.WriteString(w, text)
	c.Syslog.Log("frontend-0", "kickstart.cgi", "served %s profile to %s (%s)",
		rootNode, n.Name, ip)
}

// resolveNode maps a requesting IP to its node row and appliance root,
// through the memo when caching is enabled.
func (c *Cluster) resolveNode(ip string) (clusterdb.Node, string, bool, error) {
	if c.nodeCache != nil {
		rn, ok, err := c.nodeCache.resolve(ip)
		return rn.node, rn.root, ok, err
	}
	n, ok, err := clusterdb.NodeByIP(c.DB, ip)
	if err != nil || !ok {
		return clusterdb.Node{}, "", ok, err
	}
	// An appliance-lookup failure surfaces as an empty root — the CGI's
	// "no kickstartable appliance" response — matching the memoized path.
	_, _, root, _ := clusterdb.ApplianceForMembership(c.DB, n.Membership)
	return n, root, true, nil
}

// NodeStatus is one row of the /status view.
type NodeStatus struct {
	Name     string `json:"name"`
	MAC      string `json:"mac"`
	IP       string `json:"ip"`
	State    string `json:"state"`
	Kernel   string `json:"kernel,omitempty"`
	Packages int    `json:"packages"`
	Installs int    `json:"installs"`
	EKV      string `json:"ekv,omitempty"`
}

// Status snapshots every tracked node, sorted by name.
func (c *Cluster) Status() []NodeStatus {
	// Unlock via defer: a panic in a node accessor must not leak the lock
	// and freeze every other status/tracking path.
	c.mu.Lock()
	defer c.mu.Unlock()
	nodes := make([]NodeStatus, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, NodeStatus{
			Name:     n.Name(),
			MAC:      n.MAC(),
			IP:       n.IP(),
			State:    string(n.State()),
			Kernel:   n.KernelVersion(),
			Packages: n.PackageDB().Len(),
			Installs: n.Installs(),
			EKV:      n.EKVAddr(),
		})
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	return nodes
}

func (c *Cluster) statusHandler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(c.Status())
}

// StatusTable renders Status as aligned text for CLI display.
func (c *Cluster) StatusTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-18s %-16s %-11s %-10s %4s\n",
		"NAME", "MAC", "IP", "STATE", "KERNEL", "PKGS")
	for _, s := range c.Status() {
		fmt.Fprintf(&b, "%-14s %-18s %-16s %-11s %-10s %4d\n",
			s.Name, s.MAC, s.IP, s.State, s.Kernel, s.Packages)
	}
	return b.String()
}

package core

import (
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"testing"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/federation"
	"rocks/internal/hardware"
	"rocks/internal/lifecycle"
)

// newFedCluster builds a standalone (parent-capable) frontend with fan-out
// timeouts widened for loaded CI machines.
func newFedCluster(t *testing.T, name string) *Cluster {
	t.Helper()
	c, err := New(Config{
		Name:              name,
		DHCPRetry:         2 * time.Millisecond,
		FederationTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// newChildCluster builds a full child frontend that mirrors the parent's
// distribution and registers its shard upstream during construction.
func newChildCluster(t *testing.T, parent *Cluster, spec string) *Cluster {
	t.Helper()
	shard, err := federation.ParseShard(spec)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{
		Name:              shard.Name,
		Parent:            parent.BaseURL(),
		Shard:             shard,
		DHCPRetry:         2 * time.Millisecond,
		FederationTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// stripShards clears the provenance stamp a merging parent adds, for the
// byte-identity comparison against the child's own unstamped timeline.
func stripShards(events []lifecycle.Event) []lifecycle.Event {
	out := append([]lifecycle.Event(nil), events...)
	for i := range out {
		out[i].Shard = ""
	}
	return out
}

// TestFederationTimelineByteIdentical is the tentpole acceptance test: a
// node lives its whole life — discover, install, up, dark, power-cycle,
// recover — on a child frontend, and the parent's merged /v1/events view of
// that node is byte-identical to the child's own timeline modulo the shard
// provenance stamp.
func TestFederationTimelineByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-frontend live integration")
	}
	parent := newFedCluster(t, "HQ")
	child := newChildCluster(t, parent, "deptA:0-3")

	n := addComputes(t, child, 1)[0]
	s := child.StartSupervisor(tightSupervisor(11))
	defer s.Stop()
	since := child.Events().Seq()
	n.PowerOff()
	ctx, cancel := context.WithTimeout(context.Background(), integrationTimeout)
	defer cancel()
	if _, err := child.Events().WaitFor(ctx, lifecycle.Filter{
		Node: "compute-0-0", Type: lifecycle.EventRecovered, SinceSeq: since,
	}); err != nil {
		t.Fatalf("node never recovered: %v", err)
	}
	// Quiesce the child before reading: no publisher may race the two reads.
	s.Stop()

	params := url.Values{"node": {"compute-0-0"}}
	code, childBody, _ := v1Call(t, child, http.MethodGet, "/v1/events", params)
	if code != 200 {
		t.Fatalf("child /v1/events = %d: %s", code, childBody)
	}
	var childResp EventsResponse
	dataOf(t, childBody, &childResp)
	if len(childResp.Events) == 0 {
		t.Fatal("child timeline empty")
	}

	code, parentBody, _ := v1Call(t, parent, http.MethodGet, "/v1/events", params)
	if code != 200 {
		t.Fatalf("parent /v1/events = %d: %s", code, parentBody)
	}
	var parentResp EventsResponse
	dataOf(t, parentBody, &parentResp)

	// The merged view is attributed and whole.
	if parentResp.Partial {
		t.Error("parent flagged partial with a live child")
	}
	if parentResp.Shard != "HQ" || len(parentResp.Shards) != 1 || !parentResp.Shards[0].OK {
		t.Fatalf("provenance wrong: shard=%q shards=%+v", parentResp.Shard, parentResp.Shards)
	}
	for i, e := range parentResp.Events {
		if e.Shard != "deptA" {
			t.Fatalf("event %d missing shard stamp: %+v", i, e)
		}
	}
	// The full arc is present, in order.
	want := []lifecycle.EventType{
		lifecycle.EventDiscovered, lifecycle.EventInstallComplete, lifecycle.EventUp,
		lifecycle.EventDark, lifecycle.EventRecovered,
	}
	i := 0
	for _, e := range parentResp.Events {
		if i < len(want) && e.Type == want[i] {
			i++
		}
	}
	if i != len(want) {
		t.Fatalf("merged timeline missing arc after %v: %d/%d matched", want, i, len(want))
	}
	// Byte identity modulo provenance.
	childJSON, err := json.Marshal(childResp.Events)
	if err != nil {
		t.Fatal(err)
	}
	parentJSON, err := json.Marshal(stripShards(parentResp.Events))
	if err != nil {
		t.Fatal(err)
	}
	if string(childJSON) != string(parentJSON) {
		t.Errorf("parent timeline diverges from child's:\nchild:  %s\nparent: %s", childJSON, parentJSON)
	}
}

// TestFederationDarkChildPartial: a dark child degrades merged queries to
// honestly-flagged partial results — nodes drop out, events fall back to
// the forwarded mirror marked stale — never to a 500.
func TestFederationDarkChildPartial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-frontend live integration")
	}
	parent := newFedCluster(t, "HQ")
	a := newChildCluster(t, parent, "deptA:0-3")
	b := newChildCluster(t, parent, "deptB:4-7")

	// One machine lives in deptB's racks.
	profiles := []hardware.Profile{hardware.PIIICompute(b.MACs(), 733)}
	if _, err := b.IntegrateNodes(profiles, clusterdb.MembershipCompute, 4, integrationTimeout); err != nil {
		t.Fatal(err)
	}
	// Make sure the whole history reached the parent's mirror, then kill B.
	b.fed.getForwarder().Flush()
	b.Close()

	code, body, _ := v1Call(t, parent, http.MethodGet, "/v1/nodes", nil)
	if code != 200 {
		t.Fatalf("merged /v1/nodes with a dark child = %d: %s", code, body)
	}
	var nodes NodesResponse
	dataOf(t, body, &nodes)
	if !nodes.Partial {
		t.Error("nodes result not flagged partial")
	}
	statuses := map[string]federation.ShardStatus{}
	for _, st := range nodes.Shards {
		statuses[st.Shard] = st
	}
	if st := statuses["deptB"]; st.OK || st.Error == "" {
		t.Errorf("deptB status not marked failed: %+v", st)
	}
	if st := statuses["deptA"]; !st.OK {
		t.Errorf("live child deptA marked failed: %+v", st)
	}
	for _, row := range nodes.Nodes {
		if row.Name == "compute-4-0" {
			t.Errorf("dark child's node served as live data: %+v", row)
		}
	}

	// Events fall back to the forwarded mirror, flagged stale.
	code, body, _ = v1Call(t, parent, http.MethodGet, "/v1/events", url.Values{"node": {"compute-4-0"}})
	if code != 200 {
		t.Fatalf("merged /v1/events with a dark child = %d: %s", code, body)
	}
	var events EventsResponse
	dataOf(t, body, &events)
	if !events.Partial {
		t.Error("events result not flagged partial")
	}
	var darkSt *federation.ShardStatus
	for i := range events.Shards {
		if events.Shards[i].Shard == "deptB" {
			darkSt = &events.Shards[i]
		}
	}
	if darkSt == nil || darkSt.OK || !darkSt.Stale {
		t.Fatalf("deptB fallback not flagged stale: %+v", events.Shards)
	}
	if len(events.Events) == 0 {
		t.Fatal("mirror fallback served nothing for the dark child's node")
	}
	sawUp := false
	for _, e := range events.Events {
		if e.Shard != "deptB" {
			t.Fatalf("mirror event missing provenance: %+v", e)
		}
		if e.Type == lifecycle.EventUp || e.Type == lifecycle.EventInstallComplete {
			sawUp = true
		}
	}
	if !sawUp {
		t.Error("mirror fallback lost the node's install history")
	}
	// The dbreport concatenation names the outage instead of omitting it.
	code, body, _ = v1Call(t, parent, http.MethodGet, "/v1/dbreport", nil)
	if code != 200 {
		t.Fatalf("merged /v1/dbreport = %d", code)
	}
	var report DBReportResponse
	dataOf(t, body, &report)
	if !report.Partial {
		t.Error("dbreport not flagged partial")
	}
	// keep the unused var honest
	_ = a
}

// TestFederationRemirrorCascadeZeroBodies: an unchanged distribution
// re-mirrored across a three-level hierarchy moves zero package bodies at
// every level — asserted both from the per-level delta reports and from the
// serving side's own package-request counters.
func TestFederationRemirrorCascadeZeroBodies(t *testing.T) {
	if testing.Short() {
		t.Skip("three-frontend live integration")
	}
	top := newFedCluster(t, "top")
	mid := newChildCluster(t, top, "campus")
	leaf := newChildCluster(t, mid, "dept")

	topBefore := top.distSrv.Stats().PackageRequests
	midBefore := mid.distSrv.Stats().PackageRequests

	code, body, _ := v1Call(t, top, http.MethodPost, "/v1/federation/remirror", nil)
	if code != 200 {
		t.Fatalf("cascade remirror = %d: %s", code, body)
	}
	var res RemirrorResult
	dataOf(t, body, &res)
	if res.Partial {
		t.Fatalf("cascade flagged partial: %+v", res.Shards)
	}
	if res.Shard != "top" || res.Mirror != nil {
		t.Fatalf("root result wrong: shard=%q mirror=%+v", res.Shard, res.Mirror)
	}
	if len(res.Children) != 1 {
		t.Fatalf("top cascade reached %d children, want 1", len(res.Children))
	}
	midRes := res.Children[0]
	if midRes.Shard != "campus" || midRes.Mirror == nil {
		t.Fatalf("mid result wrong: %+v", midRes)
	}
	if midRes.Mirror.Fetched != 0 || midRes.Mirror.Listed == 0 || midRes.Mirror.Skipped != midRes.Mirror.Listed {
		t.Errorf("mid delta not clean: listed=%d skipped=%d fetched=%d",
			midRes.Mirror.Listed, midRes.Mirror.Skipped, midRes.Mirror.Fetched)
	}
	if len(midRes.Children) != 1 {
		t.Fatalf("mid cascade reached %d children, want 1", len(midRes.Children))
	}
	leafRes := midRes.Children[0]
	if leafRes.Shard != "dept" || leafRes.Mirror == nil || leafRes.Mirror.Fetched != 0 {
		t.Fatalf("leaf delta not clean: %+v", leafRes)
	}
	// Server-observed, not just client-claimed: neither serving tier handed
	// out a single package body during the cascade.
	if got := top.distSrv.Stats().PackageRequests - topBefore; got != 0 {
		t.Errorf("top served %d package bodies during an unchanged re-mirror", got)
	}
	if got := mid.distSrv.Stats().PackageRequests - midBefore; got != 0 {
		t.Errorf("mid served %d package bodies during an unchanged re-mirror", got)
	}
	_ = leaf
}

// TestFederationRebindDedupe is the regression test for the merged-query
// duplication bug: a child re-announcing under a second shard name (a
// reshard mid-flight) must not double any node's rows or timeline — merges
// dedupe on (MAC, seq).
func TestFederationRebindDedupe(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-frontend live integration")
	}
	parent := newFedCluster(t, "HQ")
	child := newChildCluster(t, parent, "deptA")
	addComputes(t, child, 1)

	// The same backend re-registers as a second shard.
	code, body, _ := v1Call(t, parent, http.MethodPost, "/v1/federation/register",
		url.Values{"shard": {"deptB"}, "url": {child.BaseURL()}})
	if code != 200 {
		t.Fatalf("re-register = %d: %s", code, body)
	}

	code, body, _ = v1Call(t, parent, http.MethodGet, "/v1/nodes", nil)
	if code != 200 {
		t.Fatalf("/v1/nodes = %d", code)
	}
	var nodes NodesResponse
	dataOf(t, body, &nodes)
	count := 0
	for _, row := range nodes.Nodes {
		if row.Name == "compute-0-0" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("compute-0-0 appears %d times in the merged listing, want 1", count)
	}
	if nodes.Deduped == 0 {
		t.Error("merged nodes reported zero dedupes for a doubly-registered child")
	}

	// The timeline survives the rebind byte-identical, not doubled.
	params := url.Values{"node": {"compute-0-0"}}
	_, childBody, _ := v1Call(t, child, http.MethodGet, "/v1/events", params)
	var childResp EventsResponse
	dataOf(t, childBody, &childResp)
	_, parentBody, _ := v1Call(t, parent, http.MethodGet, "/v1/events", params)
	var parentResp EventsResponse
	dataOf(t, parentBody, &parentResp)
	if parentResp.Deduped == 0 {
		t.Error("merged events reported zero dedupes for a doubly-registered child")
	}
	childJSON, _ := json.Marshal(childResp.Events)
	parentJSON, _ := json.Marshal(stripShards(parentResp.Events))
	if string(childJSON) != string(parentJSON) {
		t.Errorf("rebound timeline diverged:\nchild:  %s\nparent: %s", childJSON, parentJSON)
	}
	// Keep-first: the duplicate kept the first-sorted shard's stamp.
	for _, e := range parentResp.Events {
		if e.Shard != "deptA" {
			t.Fatalf("duplicate won over keep-first: %+v", e)
		}
	}
}

// TestFederationScrapeAggregation: the parent's /metrics carries its own
// families verbatim plus every child's, shard-labeled, and the merged text
// still satisfies the strict parser (scrapeMetrics parses it).
func TestFederationScrapeAggregation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-frontend live integration")
	}
	parent := newFedCluster(t, "HQ")
	a := newChildCluster(t, parent, "deptA")
	newChildCluster(t, parent, "deptB")
	// The forwarder subscribes after bootstrap, so give it traffic to
	// stream before asserting on the ingest counters.
	a.Events().Publish(lifecycle.Event{
		Node: "frontend-0", Phase: lifecycle.PhaseRun, Type: lifecycle.EventUp,
		Source: "test", Detail: "scrape probe",
	})
	a.fed.getForwarder().Flush()

	s := scrapeMetrics(t, parent)
	if v, _ := s.Value("rocks_federation_children"); v != 2 {
		t.Errorf("rocks_federation_children = %v, want 2", v)
	}
	if v, _ := s.Value("rocks_federation_registrations_total"); v < 2 {
		t.Errorf("registrations_total = %v, want >= 2", v)
	}
	if v, _ := s.Value("rocks_federation_events_received_total"); v == 0 {
		t.Error("parent never ingested forwarded events")
	}
	// Parent's own population family survives bare.
	if v, ok := s.Value("rocks_nodes"); !ok || v != 1 {
		t.Errorf(`rocks_nodes = %v (ok=%v), want the parent's own 1`, v, ok)
	}
	// Child families arrive shard-labeled.
	for _, shard := range []string{"deptA", "deptB"} {
		key := `rocks_nodes{shard="` + shard + `"}`
		if v, ok := s.Value(key); !ok || v != 1 {
			t.Errorf("%s = %v (ok=%v), want 1", key, v, ok)
		}
		up := `rocks_federation_child_up{shard="` + shard + `"}`
		if v, ok := s.Value(up); !ok || v != 1 {
			t.Errorf("%s = %v (ok=%v), want 1", up, v, ok)
		}
	}
	// Child histogram series merged in without breaking strict validation.
	if s.Types["rocks_kickstart_cgi_seconds"] != "histogram" {
		t.Errorf("cgi histogram type = %q", s.Types["rocks_kickstart_cgi_seconds"])
	}

	// /v1/federation reports both sides of the link.
	code, body, _ := v1Call(t, parent, http.MethodGet, "/v1/federation", nil)
	if code != 200 {
		t.Fatalf("/v1/federation = %d", code)
	}
	var fed FederationResponse
	dataOf(t, body, &fed)
	if fed.Role != RoleParent || len(fed.Children) != 2 || fed.Received == 0 {
		t.Errorf("parent federation view wrong: %+v", fed)
	}
	code, body, _ = v1Call(t, a, http.MethodGet, "/v1/federation", nil)
	if code != 200 {
		t.Fatalf("child /v1/federation = %d", code)
	}
	var childFed FederationResponse
	dataOf(t, body, &childFed)
	if childFed.Role != RoleChild || childFed.Parent != parent.BaseURL() || childFed.Forwarded == 0 {
		t.Errorf("child federation view wrong: %+v", childFed)
	}
}

// TestFederationRegisterValidation: the registration surface rejects
// malformed shards, relative URLs, and a child claiming the parent's own
// shard name.
func TestFederationRegisterValidation(t *testing.T) {
	parent := newFedCluster(t, "HQ")
	cases := []struct {
		shard, url, code string
		status           int
	}{
		{"", "http://127.0.0.1:1", "missing_parameter", 400},
		{"a:5-2", "http://127.0.0.1:1", "bad_parameter", 400},
		{"deptA", "not-a-url", "bad_parameter", 400},
		{"HQ", "http://127.0.0.1:1", "shard_conflict", 409},
	}
	for _, tc := range cases {
		code, body, _ := v1Call(t, parent, http.MethodPost, "/v1/federation/register",
			url.Values{"shard": {tc.shard}, "url": {tc.url}})
		if code != tc.status {
			t.Errorf("register(%q,%q) = %d, want %d: %s", tc.shard, tc.url, code, tc.status, body)
			continue
		}
		if e := errorOf(t, body); e.Code != tc.code {
			t.Errorf("register(%q,%q) code = %q, want %q", tc.shard, tc.url, e.Code, tc.code)
		}
	}
	if got := parent.Role(); got != RoleStandalone {
		t.Errorf("failed registrations changed role to %q", got)
	}
}

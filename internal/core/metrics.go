package core

import (
	"time"

	"rocks/internal/metrics"
	"rocks/internal/node"
)

// registerMetrics builds the cluster's metrics registry — the /metrics
// surface — and registers every layer's counters on it: the figures that
// used to live only in the bespoke JSON of /admin/dbstats, /admin/diststats,
// /admin/supervisor, and /admin/events, plus the node-population and
// control-plane gauges. Everything is a collector func sampling live state
// at scrape time; the registry costs the instrumented paths nothing.
func (c *Cluster) registerMetrics() {
	r := metrics.NewRegistry()
	c.metricsReg = r

	// Database fast path + WAL (the /admin/dbstats "db" block).
	c.DB.RegisterMetrics(r)

	// Kickstart profile cache. The families exist even when the cache is
	// disabled (the ablation config), reading zero, so scrape-side
	// presence checks never depend on configuration.
	if c.ksCache != nil {
		c.ksCache.RegisterMetrics(r)
	} else {
		r.CounterFunc("rocks_kickstart_cache_hits_total",
			"Kickstart requests answered from the profile memo.",
			func() float64 { return 0 })
		r.CounterFunc("rocks_kickstart_cache_misses_total",
			"Kickstart requests that paid a full graph traversal.",
			func() float64 { return 0 })
		r.CounterFunc("rocks_kickstart_cache_invalidations_total",
			"Whole-cache drops caused by framework generation bumps.",
			func() float64 { return 0 })
	}

	// Distribution serving and (when a parent was replicated) the mirror
	// pass. The mirror figures are a finished pass's report, so gauges.
	c.distSrv.RegisterMetrics(r)
	r.GaugeFunc("rocks_dist_mirror_packages_listed",
		"Packages the parent distribution advertised (last mirror pass).",
		func() float64 {
			if c.mirrorReport == nil {
				return 0
			}
			return float64(c.mirrorReport.Listed)
		})
	r.GaugeFunc("rocks_dist_mirror_packages_skipped",
		"Packages reused from the baseline by digest match (no body fetched).",
		func() float64 {
			if c.mirrorReport == nil {
				return 0
			}
			return float64(c.mirrorReport.Skipped)
		})
	r.GaugeFunc("rocks_dist_mirror_packages_fetched",
		"Package bodies transferred from the parent.",
		func() float64 {
			if c.mirrorReport == nil {
				return 0
			}
			return float64(c.mirrorReport.Fetched)
		})
	r.GaugeFunc("rocks_dist_mirror_bytes_fetched",
		"Bytes of package bodies transferred from the parent.",
		func() float64 {
			if c.mirrorReport == nil {
				return 0
			}
			return float64(c.mirrorReport.FetchedBytes)
		})
	r.GaugeFunc("rocks_dist_mirror_corrupt_bodies",
		"Fetched bodies discarded after failing their manifest digest.",
		func() float64 {
			if c.mirrorReport == nil {
				return 0
			}
			return float64(c.mirrorReport.CorruptBodies)
		})

	// Relay distribution tier. The families exist even with relays
	// disabled (reading zero), so scrape-side presence checks never depend
	// on configuration. Relay serve traffic is the load the frontend NIC
	// did not carry — compare rocks_dist_relay_package_bytes_total against
	// rocks_dist_package_bytes_total for the offload ratio.
	r.GaugeFunc("rocks_dist_relays",
		"Completed nodes currently re-serving their verified package trees.",
		func() float64 {
			if c.relays == nil {
				return 0
			}
			return float64(c.relays.liveCount())
		})
	r.CounterFunc("rocks_dist_relays_started_total",
		"Relays promoted after install-complete.",
		func() float64 {
			if c.relays == nil {
				return 0
			}
			return float64(c.relays.started.Load())
		})
	r.CounterFunc("rocks_dist_relays_withdrawn_total",
		"Relays withdrawn on reinstall, dark, quarantine, or decommission.",
		func() float64 {
			if c.relays == nil {
				return 0
			}
			return float64(c.relays.withdrawn.Load())
		})
	r.CounterFunc("rocks_dist_relay_package_requests_total",
		"Package bodies served by peer relays, live and retired.",
		func() float64 {
			if c.relays == nil {
				return 0
			}
			reqs, _ := c.relays.serveTotals()
			return float64(reqs)
		})
	r.CounterFunc("rocks_dist_relay_package_bytes_total",
		"Package body bytes served by peer relays, live and retired.",
		func() float64 {
			if c.relays == nil {
				return 0
			}
			_, bytes := c.relays.serveTotals()
			return float64(bytes)
		})
	r.CounterFunc("rocks_dist_relay_same_rack_total",
		"Relay sources handed to installers in the installer's own rack.",
		func() float64 {
			if c.relays == nil {
				return 0
			}
			return float64(c.relays.sameRack.Load())
		})
	r.CounterFunc("rocks_dist_relay_cross_rack_total",
		"Relay sources handed out across rack boundaries (no same-rack peer).",
		func() float64 {
			if c.relays == nil {
				return 0
			}
			return float64(c.relays.crossRack.Load())
		})

	// Lifecycle bus health.
	c.events.RegisterMetrics(r)

	// Report coalescer (the /admin/dbstats "reports" block).
	r.CounterFunc("rocks_reports_writes_total",
		"Report regenerations actually performed.",
		func() float64 { return float64(c.ReportStats().Writes) })
	r.CounterFunc("rocks_reports_skips_total",
		"WriteReports calls coalesced away (another write already pending).",
		func() float64 { return float64(c.ReportStats().Skips) })
	r.CounterFunc("rocks_reports_scheduled_total",
		"WriteReports calls that scheduled a deferred regeneration.",
		func() float64 { return float64(c.ReportStats().Scheduled) })

	// Installer outcomes, aggregated across every node's installs.
	c.installStats.RegisterMetrics(r)

	// Supervisor remediation (the /admin/supervisor figures).
	r.CounterFunc("rocks_supervisor_power_cycles_total",
		"Hard power cycles the supervisor commanded.",
		func() float64 { return float64(c.supStats.powerCycles.Load()) })
	r.CounterFunc("rocks_supervisor_power_cycle_failures_total",
		"Cycle commands the PDU refused or botched.",
		func() float64 { return float64(c.supStats.powerCycleFails.Load()) })
	r.CounterFunc("rocks_supervisor_quarantines_total",
		"Nodes pulled from service after exhausting their retry budget.",
		func() float64 { return float64(c.supStats.quarantines.Load()) })
	r.CounterFunc("rocks_supervisor_unquarantines_total",
		"Repaired nodes returned to service.",
		func() float64 { return float64(c.supStats.unquarantines.Load()) })
	r.CounterFunc("rocks_supervisor_recoveries_total",
		"Failing nodes that reached Up and had their budget refunded.",
		func() float64 { return float64(c.supStats.recoveries.Load()) })
	r.GaugeFunc("rocks_supervisor_running",
		"1 while a remediation supervisor is attached.",
		func() float64 {
			if c.Supervisor() != nil {
				return 1
			}
			return 0
		})

	// Node population.
	r.GaugeFunc("rocks_nodes",
		"Nodes the cluster tracks, including the frontend.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.nodes))
		})
	r.GaugeFunc("rocks_nodes_quarantined",
		"Hosts currently quarantined.",
		func() float64 { return float64(len(c.Quarantined())) })
	r.GaugeVecFunc("rocks_nodes_state",
		"Nodes per lifecycle state.", []string{"state"},
		func() []metrics.Sample {
			counts := make(map[node.State]int)
			c.mu.Lock()
			for _, n := range c.nodes {
				counts[n.State()]++
			}
			c.mu.Unlock()
			out := make([]metrics.Sample, 0, len(counts))
			for state, n := range counts {
				out = append(out, metrics.Sample{Labels: []string{string(state)}, Value: float64(n)})
			}
			return out
		})

	// Startup recovery (what Open found; zero for fresh/in-memory lives).
	r.GaugeFunc("rocks_db_recovery_records_replayed",
		"Log records applied during this life's startup recovery.",
		func() float64 {
			if c.recovery == nil {
				return 0
			}
			return float64(c.recovery.Replayed)
		})
	r.GaugeFunc("rocks_db_recovery_replay_errors",
		"Replayed records that failed during this life's startup recovery.",
		func() float64 {
			if c.recovery == nil {
				return 0
			}
			return float64(c.recovery.ReplayErrors)
		})

	// Kickstart CGI latency — the frontend-side cost a §6.1 reinstall
	// storm concentrates. Default buckets; the storm benchmark asserts on
	// the _count series.
	c.cgiSeconds = r.Histogram("rocks_kickstart_cgi_seconds",
		"Wall-clock seconds spent serving one kickstart.cgi request.", nil)

	// Federation: the management hierarchy's own health. Families exist
	// (reading zero) on standalone frontends, like the relay block above.
	r.GaugeFunc("rocks_federation_children",
		"Child frontends currently registered with this parent.",
		func() float64 { return float64(len(c.fed.childSnapshot())) })
	r.GaugeVecFunc("rocks_federation_child_up",
		"1 while the labeled child shard answered its last fan-out.", []string{"shard"},
		func() []metrics.Sample {
			children := c.fed.childSnapshot()
			out := make([]metrics.Sample, 0, len(children))
			for _, ch := range children {
				up := 1.0
				ch.mu.Lock()
				if ch.dark {
					up = 0
				}
				name := ch.shard.Name
				ch.mu.Unlock()
				out = append(out, metrics.Sample{Labels: []string{name}, Value: up})
			}
			return out
		})
	r.CounterFunc("rocks_federation_registrations_total",
		"Child registration calls accepted, including re-registrations.",
		func() float64 { return float64(c.fed.registrations.Load()) })
	r.CounterFunc("rocks_federation_events_received_total",
		"Lifecycle events ingested from child forwarders.",
		func() float64 { return float64(c.fed.received.Load()) })
	r.CounterFunc("rocks_federation_events_forwarded_total",
		"Lifecycle events this child streamed to its parent.",
		func() float64 {
			fw := c.fed.getForwarder()
			if fw == nil {
				return 0
			}
			n, _, _ := fw.Stats()
			return float64(n)
		})
	r.CounterFunc("rocks_federation_forward_errors_total",
		"Upstream event batches that failed to post.",
		func() float64 {
			fw := c.fed.getForwarder()
			if fw == nil {
				return 0
			}
			_, errs, _ := fw.Stats()
			return float64(errs)
		})
	r.CounterFunc("rocks_federation_fanout_errors_total",
		"Child fetches that failed during merged queries and scrapes.",
		func() float64 { return float64(c.fed.fanoutErrors.Load()) })
	r.CounterFunc("rocks_federation_merge_deduped_total",
		"Duplicate rows and events dropped by merged queries.",
		func() float64 { return float64(c.fed.deduped.Load()) })
	r.GaugeVecFunc("rocks_federation_child_last_scrape_seconds",
		"Seconds since the labeled child shard last answered a /metrics "+
			"scrape; its stale exposition is re-served while it is dark. "+
			"Example alert: rocks_federation_child_last_scrape_seconds > 120.",
		[]string{"shard"},
		func() []metrics.Sample {
			children := c.fed.childSnapshot()
			out := make([]metrics.Sample, 0, len(children))
			for _, ch := range children {
				ch.mu.Lock()
				at := ch.lastExpoAt
				name := ch.shard.Name
				ch.mu.Unlock()
				if at.IsZero() {
					continue // never scraped; nothing to age
				}
				out = append(out, metrics.Sample{Labels: []string{name}, Value: time.Since(at).Seconds()})
			}
			return out
		})

	// Facts-driven inventory loop: reports ingested (own nodes and
	// forwarded), drift events by divergent field, and reinstalls the
	// supervisor ordered to chase actionable drift. The drift family is
	// pre-seeded with every comparator field, so all series exist at zero
	// before any report lands.
	r.CounterFunc("rocks_facts_reports_total",
		"Facts reports ingested from first-boot agents and child forwarders.",
		func() float64 { return float64(c.factsReportCount()) })
	r.CounterVecFunc("rocks_facts_drift_total",
		"Drift events published, by divergent field.", []string{"field"},
		func() []metrics.Sample {
			counts := c.factsDriftCounts()
			out := make([]metrics.Sample, 0, len(driftFields))
			for _, f := range driftFields {
				out = append(out, metrics.Sample{Labels: []string{f}, Value: float64(counts[f])})
			}
			return out
		})
	r.CounterFunc("rocks_facts_reinstalls_total",
		"Reinstalls the supervisor ordered to remediate actionable drift.",
		func() float64 { return float64(c.supStats.driftReinstalls.Load()) })

	// Control plane: per-op traffic and the mutation audit log.
	c.apiReqs = r.CounterVec("rocks_api_requests_total",
		"Control-plane requests by operation, both /v1 and legacy /admin.", "op")
	r.CounterFunc("rocks_audit_entries_total",
		"Mutating control-plane calls recorded in the audit log.",
		func() float64 { seq, _, _ := c.audit.stats(); return float64(seq) })
	r.CounterFunc("rocks_audit_errors_total",
		"Audited calls that failed.",
		func() float64 { _, _, errs := c.audit.stats(); return float64(errs) })
	r.CounterFunc("rocks_audit_evictions_total",
		"Audit entries evicted from the bounded ring.",
		func() float64 { _, ev, _ := c.audit.stats(); return float64(ev) })
}

// Metrics exposes the cluster's registry (tests and embedders; HTTP
// clients scrape /metrics).
func (c *Cluster) Metrics() *metrics.Registry { return c.metricsReg }

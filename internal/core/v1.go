package core

import (
	"encoding/json"
	"net/http"
)

// The /v1 surface wraps every endpoint in one discipline: a JSON envelope
// ({"data": ...} on success, {"error": {code, message, status}} on
// failure), POST-only mutations with a 405 + Allow header otherwise, and
// an audit record for every mutating call — the things the legacy /admin
// handlers each did differently or not at all.

// allowedMethods renders the endpoint's Allow header.
func (ep endpoint) allowedMethods() string {
	switch {
	case ep.audit == "":
		return "GET"
	case ep.mutates != nil:
		// Conditionally mutating (sql): reads over GET, exec over POST.
		return "GET, POST"
	default:
		return "POST"
	}
}

// methodCheck enforces the POST-only-mutations rule for /v1.
func (ep endpoint) methodCheck(r *http.Request) *apiError {
	switch {
	case ep.audit == "":
		if r.Method != http.MethodGet {
			return apiErrorf(http.StatusMethodNotAllowed, "method_not_allowed",
				"%s is read-only; use GET", r.URL.Path)
		}
	case ep.mutates != nil:
		if r.Method != http.MethodGet && r.Method != http.MethodPost {
			return apiErrorf(http.StatusMethodNotAllowed, "method_not_allowed",
				"use GET to read or POST to mutate %s", r.URL.Path)
		}
		if ep.mutates(r) && r.Method != http.MethodPost {
			return apiErrorf(http.StatusMethodNotAllowed, "method_not_allowed",
				"mutating %s requires POST", r.URL.Path)
		}
	default:
		if r.Method != http.MethodPost {
			return apiErrorf(http.StatusMethodNotAllowed, "method_not_allowed",
				"%s mutates the cluster; use POST", r.URL.Path)
		}
	}
	return nil
}

// v1Handler serves one endpoint on the versioned surface.
func (c *Cluster) v1Handler(ep endpoint) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c.apiReqs.With(ep.name).Inc()
		if aerr := ep.methodCheck(r); aerr != nil {
			w.Header().Set("Allow", ep.allowedMethods())
			writeV1Error(w, aerr)
			return
		}
		payload, aerr := ep.run(r)
		if aerr == nil && ep.fanout != nil {
			payload, aerr = ep.fanout(r, payload)
		}
		c.auditOp(ep, r, aerr)
		if aerr != nil {
			writeV1Error(w, aerr)
			return
		}
		writeV1Data(w, payload)
	}
}

// legacyHandler serves one endpoint under /admin with its original
// response shape and no method discipline (old scripts GET everything).
// Mutations are still audited.
func (c *Cluster) legacyHandler(ep endpoint) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c.apiReqs.With(ep.name).Inc()
		payload, aerr := ep.run(r)
		if aerr == nil && ep.fanout != nil {
			payload, aerr = ep.fanout(r, payload)
		}
		c.auditOp(ep, r, aerr)
		if aerr != nil {
			http.Error(w, aerr.Message, aerr.Status)
			return
		}
		if ep.legacyWrite != nil {
			ep.legacyWrite(w, payload)
			return
		}
		writeJSON(w, payload)
	}
}

// auditOp records a mutating call's outcome; reads and non-mutating sql
// queries pass through unrecorded.
func (c *Cluster) auditOp(ep endpoint, r *http.Request, aerr *apiError) {
	if ep.audit == "" || (ep.mutates != nil && !ep.mutates(r)) {
		return
	}
	e := AuditEntry{
		Actor:   auditActor(r),
		Remote:  r.RemoteAddr,
		Op:      ep.audit,
		Outcome: "ok",
		Status:  http.StatusOK,
	}
	if ep.detail != nil {
		e.Detail = ep.detail(r)
	}
	if aerr != nil {
		e.Outcome = "error"
		e.Error = aerr.Message
		e.Status = aerr.Status
	}
	c.audit.record(e)
}

// auditActor identifies the caller: the X-Rocks-Actor header when the
// client sends one (the cmd tools send $USER), "anonymous" otherwise.
func auditActor(r *http.Request) string {
	if a := r.Header.Get("X-Rocks-Actor"); a != "" {
		return a
	}
	return "anonymous"
}

func writeV1Data(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Data interface{} `json:"data"`
	}{v})
}

func writeV1Error(w http.ResponseWriter, e *apiError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.Status)
	json.NewEncoder(w).Encode(struct {
		Error *apiError `json:"error"`
	}{e})
}

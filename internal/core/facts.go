package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/hardware"
	"rocks/internal/lifecycle"
)

// This file is the frontend half of the facts-driven inventory loop. The
// database records what every node *should* be; nothing in the paper ever
// checks what a node actually *is* after first boot. Here the agent's
// report lands (/v1/facts POST), is persisted in clusterdb (WAL-covered, so
// it survives a frontend crash), and is diffed against the expected
// hardware profile; each divergent field becomes a drift-detected lifecycle
// event, and actionable drift feeds the supervisor's remediation policy
// (supervisor.go). The same endpoint serves the inventory with per-node
// freshness, and a federated child forwards each report upstream so the
// parent's inventory carries shard provenance.

// driftFields is the comparator's full field vocabulary, pre-seeded into
// the drift counters so the rocks_facts_drift_total family is present on
// /metrics (at zero) before any drift ever occurs.
var driftFields = []string{"arch", "cpus", "mem_mb", "disk", "nics"}

// factsRecord is one node's latest report plus its drift verdict.
type factsRecord struct {
	facts      hardware.Facts
	reportedAt time.Time
	drift      []hardware.Drift
}

// factsState is the cluster's in-memory inventory view: its own nodes'
// latest reports (backed by the durable facts table) plus reports forwarded
// up from federated children, keyed by shard.
type factsState struct {
	mu      sync.Mutex
	records map[string]*factsRecord            // own nodes, by MAC
	fwd     map[string]map[string]*factsRecord // shard → MAC → record
	reports uint64
	drift   map[string]uint64 // drift events by field
}

func newFactsState() *factsState {
	fs := &factsState{
		records: make(map[string]*factsRecord),
		fwd:     make(map[string]map[string]*factsRecord),
		drift:   make(map[string]uint64, len(driftFields)),
	}
	for _, f := range driftFields {
		fs.drift[f] = 0
	}
	return fs
}

// ingestFacts records one agent report. shard is federation provenance:
// empty for this frontend's own nodes, the child's shard name for a report
// forwarded upstream (provenance-only — the parent has no expected profile
// for another frontend's node, so forwarded reports are never diffed here;
// the child already did that and published the drift events).
func (c *Cluster) ingestFacts(f hardware.Facts, shard string) error {
	now := time.Now()
	if shard != "" {
		c.facts.mu.Lock()
		m := c.facts.fwd[shard]
		if m == nil {
			m = make(map[string]*factsRecord)
			c.facts.fwd[shard] = m
		}
		m[f.MAC] = &factsRecord{facts: f, reportedAt: now}
		c.facts.reports++
		c.facts.mu.Unlock()
		return nil
	}

	c.mu.Lock()
	n := c.nodes[f.MAC]
	c.mu.Unlock()
	rec := &factsRecord{facts: f, reportedAt: now}
	if n != nil {
		rec.drift = hardware.DiffFacts(n.HW, f, c.cfg.FactsMemTolerancePct)
	}

	// Persist before publishing: a crash between the two loses events (the
	// ring is volatile anyway) but never a recorded report.
	if err := clusterdb.UpsertFacts(c.DB, clusterdb.Facts{
		MAC: f.MAC, Name: f.Name, Arch: f.Arch, CPUs: f.CPUs, MemMB: f.MemMB,
		DiskType: string(f.Disk.Type), DiskMB: f.Disk.SizeMB,
		NICs:       strings.Join(hardware.CanonicalNICs(f.NICs), ";"),
		ReportedAt: now.UnixNano(),
	}); err != nil {
		return err
	}

	c.facts.mu.Lock()
	prev := c.facts.records[f.MAC]
	hadDrift := prev != nil && len(prev.drift) > 0
	c.facts.records[f.MAC] = rec
	c.facts.reports++
	for _, d := range rec.drift {
		c.facts.drift[d.Field]++
	}
	c.facts.mu.Unlock()

	name := f.Name
	if name == "" {
		name = f.MAC
	}
	c.events.Publish(lifecycle.Event{
		Node: name, MAC: f.MAC, Phase: lifecycle.PhaseRun,
		Type: lifecycle.EventFactsReported, Source: "facts",
		Detail: fmt.Sprintf("arch=%s cpus=%d mem=%dMB disk=%s nics=%d drift=%d",
			f.Arch, f.CPUs, f.MemMB, hardware.DiskString(f.Disk), len(f.NICs), len(rec.drift)),
	})
	for _, d := range rec.drift {
		c.events.Publish(lifecycle.Event{
			Node: name, MAC: f.MAC, Phase: lifecycle.PhaseRun,
			Type: lifecycle.EventDriftDetected, Source: "facts",
			Detail: fmt.Sprintf("field=%s expected=%q got=%q actionable=%v",
				d.Field, d.Expected, d.Got, d.Actionable),
		})
	}
	if hadDrift && len(rec.drift) == 0 {
		c.events.Publish(lifecycle.Event{
			Node: name, MAC: f.MAC, Phase: lifecycle.PhaseRun,
			Type: lifecycle.EventDriftCleared, Source: "facts",
			Detail: "report matches expected profile",
		})
	}

	// A child frontend forwards the report upstream with its shard name, so
	// the parent's merged inventory carries provenance. Best-effort and
	// asynchronous: a dark parent must never stall a node's first boot.
	c.fed.forwardFacts(f)
	return nil
}

// loadFacts rehydrates the in-memory inventory from the durable facts
// table — what a recovered frontend knew before the crash. Drift is not
// recomputed here: the previous life's machines are not tracked yet, and
// each node's next first-boot report re-diffs it anyway.
func (c *Cluster) loadFacts() error {
	rows, err := clusterdb.AllFacts(c.DB)
	if err != nil {
		return err
	}
	c.facts.mu.Lock()
	for _, row := range rows {
		c.facts.records[row.MAC] = &factsRecord{
			facts: hardware.Facts{
				MAC: row.MAC, Name: row.Name, Arch: row.Arch, CPUs: row.CPUs,
				MemMB: row.MemMB,
				Disk:  hardware.Disk{Type: hardware.DiskType(row.DiskType), SizeMB: row.DiskMB},
				NICs:  decodeNICs(row.NICs),
			},
			reportedAt: time.Unix(0, row.ReportedAt),
		}
	}
	c.facts.mu.Unlock()
	return nil
}

// decodeNICs parses the canonical "type/mac/mbps;..." encoding the facts
// table stores (see CanonicalNICs). Malformed entries are dropped — the
// row came from our own encoder, so anything else is corruption.
func decodeNICs(s string) []hardware.NIC {
	if s == "" {
		return nil
	}
	var out []hardware.NIC
	for _, entry := range strings.Split(s, ";") {
		parts := strings.Split(entry, "/")
		if len(parts) != 3 {
			continue
		}
		mbps, err := strconv.Atoi(parts[2])
		if err != nil {
			continue
		}
		out = append(out, hardware.NIC{Type: hardware.NICType(parts[0]), MAC: parts[1], Mbps: mbps})
	}
	return out
}

// actionableDriftFields returns the actionable divergent fields from the
// node's latest report, or nil when the node is clean (or unreported). The
// supervisor polls this each tick to drive drift remediation.
func (c *Cluster) actionableDriftFields(mac string) []string {
	c.facts.mu.Lock()
	defer c.facts.mu.Unlock()
	rec := c.facts.records[mac]
	if rec == nil {
		return nil
	}
	var out []string
	for _, d := range rec.drift {
		if d.Actionable {
			out = append(out, d.Field)
		}
	}
	return out
}

// FactsEntry is one node's row in the served inventory.
type FactsEntry struct {
	Node       string           `json:"node"`
	MAC        string           `json:"mac"`
	Shard      string           `json:"shard,omitempty"`
	Arch       string           `json:"arch"`
	CPUs       int              `json:"cpus"`
	MemMB      int              `json:"mem_mb"`
	Disk       string           `json:"disk"`
	NICs       []string         `json:"nics"`
	ReportedAt time.Time        `json:"reported_at"`
	AgeSeconds float64          `json:"age_seconds"`
	Drift      []hardware.Drift `json:"drift,omitempty"`
	Actionable bool             `json:"actionable"`
}

// FactsResponse is the GET /v1/facts payload: every known report — own
// nodes first-hand, federated children by forwarded provenance — with
// per-node freshness.
type FactsResponse struct {
	Facts   []FactsEntry `json:"facts"`
	Reports uint64       `json:"reports"`
}

func factsEntry(rec *factsRecord, shard string, now time.Time) FactsEntry {
	f := rec.facts
	name := f.Name
	if name == "" {
		name = f.MAC
	}
	return FactsEntry{
		Node: name, MAC: f.MAC, Shard: shard,
		Arch: f.Arch, CPUs: f.CPUs, MemMB: f.MemMB,
		Disk: hardware.DiskString(f.Disk), NICs: hardware.CanonicalNICs(f.NICs),
		ReportedAt: rec.reportedAt,
		AgeSeconds: now.Sub(rec.reportedAt).Seconds(),
		Drift:      rec.drift,
		Actionable: hardware.Actionable(rec.drift),
	}
}

// FactsInventory assembles the served inventory, sorted by (shard, node).
func (c *Cluster) FactsInventory() FactsResponse {
	now := time.Now()
	c.facts.mu.Lock()
	resp := FactsResponse{Facts: make([]FactsEntry, 0, len(c.facts.records)), Reports: c.facts.reports}
	for _, rec := range c.facts.records {
		resp.Facts = append(resp.Facts, factsEntry(rec, "", now))
	}
	for shard, m := range c.facts.fwd {
		for _, rec := range m {
			resp.Facts = append(resp.Facts, factsEntry(rec, shard, now))
		}
	}
	c.facts.mu.Unlock()
	sort.Slice(resp.Facts, func(i, j int) bool {
		if resp.Facts[i].Shard != resp.Facts[j].Shard {
			return resp.Facts[i].Shard < resp.Facts[j].Shard
		}
		return resp.Facts[i].Node < resp.Facts[j].Node
	})
	return resp
}

// factsReportCount and factsDriftCounts feed the /metrics families.
func (c *Cluster) factsReportCount() uint64 {
	c.facts.mu.Lock()
	defer c.facts.mu.Unlock()
	return c.facts.reports
}

func (c *Cluster) factsDriftCounts() map[string]uint64 {
	c.facts.mu.Lock()
	defer c.facts.mu.Unlock()
	out := make(map[string]uint64, len(c.facts.drift))
	for k, v := range c.facts.drift {
		out[k] = v
	}
	return out
}

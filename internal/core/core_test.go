package core

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/hardware"
	"rocks/internal/node"
	"rocks/internal/pbs"
	"rocks/internal/rexec"
)

const integrationTimeout = 30 * time.Second

func newCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(Config{
		Name:      "Meteor",
		DHCPRetry: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// addComputes integrates n PIII compute nodes into rack 0.
func addComputes(t *testing.T, c *Cluster, n int) []*node.Node {
	t.Helper()
	profiles := make([]hardware.Profile, n)
	for i := range profiles {
		profiles[i] = hardware.PIIICompute(c.MACs(), 733)
	}
	nodes, err := c.IntegrateNodes(profiles, clusterdb.MembershipCompute, 0, integrationTimeout)
	if err != nil {
		t.Fatal(err)
	}
	return nodes
}

func TestFrontendBootstrap(t *testing.T) {
	c := newCluster(t)
	fe := c.Frontend
	if fe.State() != node.StateUp {
		t.Fatalf("frontend state = %s", fe.State())
	}
	if fe.Name() != "frontend-0" || fe.IP() != FrontendIP {
		t.Errorf("frontend identity = %s/%s", fe.Name(), fe.IP())
	}
	for _, svc := range []string{"httpd", "mysqld", "ypserv", "nfs", "pbs_server", "maui", "dhcpd"} {
		if !fe.HasService(svc) {
			t.Errorf("frontend service %s missing: %v", svc, fe.Services())
		}
	}
	// The Figure 2 post script ran: dhcpd listens only on eth0. Our mini
	// shell can't run awk, so the script text must at least be on disk.
	if got := fe.Disk().List("/root/ks-post"); len(got) == 0 {
		t.Error("frontend post scripts missing")
	}
	if name, _ := clusterdb.SiteValue(c.DB, "ClusterName"); name != "Meteor" {
		t.Errorf("ClusterName = %q", name)
	}
}

func TestIntegrateComputeNodes(t *testing.T) {
	c := newCluster(t)
	nodes := addComputes(t, c, 3)
	for i, n := range nodes {
		want := fmt.Sprintf("compute-0-%d", i)
		if n.Name() != want {
			t.Errorf("node %d named %s, want %s", i, n.Name(), want)
		}
		if n.State() != node.StateUp {
			t.Errorf("%s state = %s", want, n.State())
		}
		if n.PackageDB().Len() != 162 {
			t.Errorf("%s has %d packages", want, n.PackageDB().Len())
		}
		if !n.MyrinetOperational() {
			t.Errorf("%s Myrinet not operational", want)
		}
	}
	// Database reflects the integration.
	rows, err := clusterdb.Nodes(c.DB, "membership = 2")
	if err != nil || len(rows) != 3 {
		t.Fatalf("db rows = %d, %v", len(rows), err)
	}
	// PBS knows all three moms.
	if got := c.PBS.Moms(); len(got) != 3 {
		t.Errorf("moms = %v", got)
	}
	// Reports regenerated on the frontend's disk.
	hosts, err := c.Frontend.Disk().ReadFile("/etc/hosts")
	if err != nil || !strings.Contains(string(hosts), "compute-0-2") {
		t.Errorf("frontend /etc/hosts stale: %v", err)
	}
	pbsNodes, _ := c.Frontend.Disk().ReadFile("/opt/pbs/server_priv/nodes")
	if !strings.Contains(string(pbsNodes), "compute-0-0 np=1") {
		t.Errorf("PBS nodes file = %q", pbsNodes)
	}
}

func TestClusterConsistency(t *testing.T) {
	c := newCluster(t)
	nodes := addComputes(t, c, 3)
	ref, divergent, err := c.ConsistencyReport()
	if err != nil || len(divergent) != 0 {
		t.Fatalf("fresh cluster inconsistent: ref=%s divergent=%v err=%v", ref, divergent, err)
	}
	// Wreck one node, detect, reinstall, verify.
	nodes[1].PackageDB().Erase("glibc")
	_, divergent, _ = c.ConsistencyReport()
	if len(divergent) != 1 || divergent[0] != "compute-0-1" {
		t.Fatalf("divergence not detected: %v", divergent)
	}
	if err := c.ShootNode("compute-0-1"); err != nil {
		t.Fatal(err)
	}
	if !WaitState(nodes[1], node.StateUp, integrationTimeout) {
		t.Fatalf("node stuck in %s after shoot", nodes[1].State())
	}
	_, divergent, _ = c.ConsistencyReport()
	if len(divergent) != 0 {
		t.Errorf("still divergent after reinstall: %v", divergent)
	}
	if nodes[1].Installs() != 2 {
		t.Errorf("installs = %d", nodes[1].Installs())
	}
}

func TestShootNodeWatchShowsEKV(t *testing.T) {
	c := newCluster(t)
	nodes := addComputes(t, c, 1)
	client, err := c.ShootNodeWatch("compute-0-0", integrationTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if !client.WaitFor("Package Installation", integrationTimeout) {
		t.Errorf("eKV screen = %q", client.Screen())
	}
	if !WaitState(nodes[0], node.StateUp, integrationTimeout) {
		t.Fatal("node never came back")
	}
}

func TestHardPowerCycleForcesReinstall(t *testing.T) {
	c := newCluster(t)
	nodes := addComputes(t, c, 1)
	n := nodes[0]
	outlet, ok := c.PDU.OutletFor(n.MAC())
	if !ok {
		t.Fatal("node not wired to the PDU")
	}
	if err := c.PDU.HardCycle(outlet); err != nil {
		t.Fatal(err)
	}
	if !WaitState(n, node.StateUp, integrationTimeout) {
		t.Fatalf("node state = %s after power cycle", n.State())
	}
	if n.Installs() != 2 {
		t.Errorf("installs = %d; hard power cycle must force reinstallation", n.Installs())
	}
}

func TestClusterKillViaSQL(t *testing.T) {
	c := newCluster(t)
	nodes := addComputes(t, c, 2)
	nodes[0].StartProcess("bad-job")
	nodes[1].StartProcess("bad-job")
	c.Frontend.StartProcess("bad-job")

	query := `select nodes.name from nodes,memberships where ` +
		`nodes.membership = memberships.id and memberships.name = 'Compute'`
	_, killed, err := c.Kill(query, "bad-job")
	if err != nil {
		t.Fatal(err)
	}
	if killed != 2 {
		t.Errorf("killed = %d", killed)
	}
	if len(c.Frontend.Processes()) != 1 {
		t.Error("frontend process killed by a Compute-only query")
	}
}

func TestForkRpmQuery(t *testing.T) {
	c := newCluster(t)
	addComputes(t, c, 2)
	results, err := c.Fork("", "rpm -q glibc")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil || !strings.HasPrefix(r.Output, "glibc-") {
			t.Errorf("%s: %q %v", r.Host, r.Output, r.Err)
		}
	}
}

func TestNISUserVisibleOnComputeNodes(t *testing.T) {
	c := newCluster(t)
	addComputes(t, c, 1)
	if err := c.AddUser("bruno", 500); err != nil {
		t.Fatal(err)
	}
	// The account map is dynamic: nodes see it without reinstalling.
	daemons, err := c.RexecDaemons("compute-0-0")
	if err != nil {
		t.Fatal(err)
	}
	_ = daemons
	n, _ := c.NodeByName("compute-0-0")
	m, _ := c.NFS.Mount("/export/home", "/home", n.Name())
	data, err := m.ReadFile("/home/bruno/.profile")
	if err != nil || !strings.Contains(string(data), "bruno") {
		t.Errorf("home dir = %q, %v", data, err)
	}
}

func TestRexecAcrossCluster(t *testing.T) {
	c := newCluster(t)
	addComputes(t, c, 2)
	daemons, err := c.RexecDaemons("compute-0-0", "compute-0-1")
	if err != nil {
		t.Fatal(err)
	}
	results := rexec.RunParallel(daemons, rexec.Request{Command: "hostname"})
	if results[0].Stdout != "compute-0-0\n" || results[1].Stdout != "compute-0-1\n" {
		t.Errorf("results = %+v", results)
	}
	tagged := rexec.TagOutput(results)
	if !strings.Contains(tagged, "compute-0-1: compute-0-1") {
		t.Errorf("tagged = %q", tagged)
	}
}

func TestReinstallClusterViaPBS(t *testing.T) {
	c := newCluster(t)
	nodes := addComputes(t, c, 2)
	// A long-running app occupies node 0.
	appID := c.PBS.Submit(pbs.Job{Name: "science", NodeCount: 1, Hold: true})
	c.PBS.Schedule()
	appJob, _ := c.PBS.Job(appID)
	if appJob.State != pbs.StateRunning {
		t.Fatalf("app job = %+v", appJob)
	}
	busyHost := appJob.Assigned[0]

	done := make(chan error, 1)
	go func() { done <- c.ReinstallCluster(integrationTimeout) }()

	// Give the rolling reinstall a moment: the idle node reinstalls, the
	// busy one must not.
	time.Sleep(50 * time.Millisecond)
	var busyNode *node.Node
	for _, n := range nodes {
		if n.Name() == busyHost {
			busyNode = n
		}
	}
	if busyNode.Installs() != 1 {
		t.Errorf("busy node reinstalled while the app was running")
	}
	// The app completes; the drain proceeds.
	if err := c.PBS.Finish(appID); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if !WaitState(n, node.StateUp, integrationTimeout) {
			t.Fatalf("%s stuck in %s", n.Name(), n.State())
		}
		if n.Installs() != 2 {
			t.Errorf("%s installs = %d", n.Name(), n.Installs())
		}
	}
}

func TestHTTPEndpoints(t *testing.T) {
	c := newCluster(t)
	addComputes(t, c, 1)
	get := func(path string) string {
		resp, err := http.Get(c.BaseURL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String()
	}
	if !strings.Contains(get("/tables/nodes"), "compute-0-0") {
		t.Error("/tables/nodes missing the compute node")
	}
	if !strings.Contains(get("/tables/memberships"), "Ethernet Switches") {
		t.Error("/tables/memberships missing defaults")
	}
	if !strings.Contains(get("/graph.dot"), "digraph rocks") {
		t.Error("/graph.dot broken")
	}
	var status []NodeStatus
	if err := json.Unmarshal([]byte(get("/status")), &status); err != nil {
		t.Fatalf("status JSON: %v", err)
	}
	if len(status) != 2 { // frontend + compute
		t.Errorf("status rows = %d", len(status))
	}
}

func TestShootUnknownNode(t *testing.T) {
	c := newCluster(t)
	if err := c.ShootNode("compute-9-9"); err == nil {
		t.Error("shooting an unknown node should fail")
	}
}

func TestStatusTable(t *testing.T) {
	c := newCluster(t)
	out := c.StatusTable()
	if !strings.Contains(out, "frontend-0") || !strings.Contains(out, "NAME") {
		t.Errorf("StatusTable = %q", out)
	}
}

package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/ctools"
	"rocks/internal/ekv"
	"rocks/internal/hardware"
	"rocks/internal/insertethers"
	"rocks/internal/node"
	"rocks/internal/power"
	"rocks/internal/rexec"
)

// StartInsertEthers begins a discovery session for the given membership and
// rack. Nodes powered on while the session runs are named, addressed,
// inserted into the database, and handed DHCP bindings; reports regenerate
// after each insertion.
func (c *Cluster) StartInsertEthers(membership, rack int) (*insertethers.InsertEthers, error) {
	return insertethers.Start(insertethers.Config{
		DB:         c.DB,
		Syslog:     c.Syslog,
		DHCP:       c.DHCPd,
		NextServer: c.baseURL,
		Membership: membership,
		Rack:       rack,
		Events:     c.events,
		OnInsert: func(n clusterdb.Node) {
			// The insert already applied its own DHCP binding delta; the
			// full dbreport pass coalesces across the discovery burst.
			c.ScheduleReports()
		},
	})
}

// PowerOn starts a node's boot lifecycle in the background and wires it to
// the cluster (reboot hook, PDU outlet). The node installs itself if its
// disk is blank or a reinstall was forced.
func (c *Cluster) PowerOn(n *node.Node) {
	c.mu.Lock()
	_, tracked := c.nodes[n.MAC()]
	c.outlets++
	outlet := c.outlets
	c.mu.Unlock()
	if !tracked {
		c.trackNode(n)
	}
	c.PDU.Connect(outlet, n.MAC(), power.TargetFunc(func() {
		// A hard power cycle forces the node to reinstall itself (§4).
		n.PowerOff()
		n.ForceReinstall()
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			n.SetState(node.StateBooting)
			if err := c.bootOnce(c.ctx, n); err != nil {
				c.Syslog.Log("frontend-0", "rocks", "node %s failed after power cycle: %v", n.MAC(), err)
			}
		}()
	}))
	n.SetState(node.StateBooting)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		if err := c.bootOnce(c.ctx, n); err != nil {
			c.Syslog.Log("frontend-0", "rocks", "node %s failed to integrate: %v", n.MAC(), err)
		}
	}()
}

// WaitState polls until the node reaches the state or the timeout expires.
func WaitState(n *node.Node, want node.State, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if n.State() == want {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return n.State() == want
}

// IntegrateNodes runs the full §6.4 integration for a batch of new
// machines: start insert-ethers, power the nodes on sequentially, and wait
// until each is installed and up. It returns the created nodes in order.
func (c *Cluster) IntegrateNodes(profiles []hardware.Profile, membership, rack int, timeout time.Duration) ([]*node.Node, error) {
	ie, err := c.StartInsertEthers(membership, rack)
	if err != nil {
		return nil, err
	}
	defer ie.Stop()
	// The batch hands control back to the administrator when it returns;
	// the reports on disk must reflect every node it integrated.
	defer c.FlushReports()
	nodes := make([]*node.Node, 0, len(profiles))
	for i, hw := range profiles {
		n := node.New(hw)
		nodes = append(nodes, n)
		c.PowerOn(n)
		// Sequential boot keeps rack/rank assignment in physical order
		// (§6.4's footnote: serial only so names map to locations).
		if !WaitState(n, node.StateUp, timeout) {
			return nodes, fmt.Errorf("core: node %d (%s) stuck in state %s", i, n.MAC(), n.State())
		}
	}
	return nodes, nil
}

// ShootNode commands nodes to reinstall themselves over Ethernet and
// returns immediately; the nodes transition installing → up in the
// background (§6.3). Unreachable nodes produce errors — the administrator
// then reaches for PDU.HardCycle.
// ErrUnknownNode marks operations naming a host the cluster does not
// track; the control plane maps it to a 404.
var ErrUnknownNode = errors.New("unknown node")

func (c *Cluster) ShootNode(names ...string) error {
	for _, name := range names {
		n, ok := c.NodeByName(name)
		if !ok {
			return fmt.Errorf("core: no node named %q: %w", name, ErrUnknownNode)
		}
		if _, err := n.Exec("/boot/kickstart/cluster-kickstart"); err != nil {
			return fmt.Errorf("core: shoot-node %s: %w (try the PDU)", name, err)
		}
	}
	return nil
}

// ShootNodeWatch shoots one node and attaches to its eKV port, returning
// the attached client (the xterm shoot-node pops open). The caller closes
// the client.
func (c *Cluster) ShootNodeWatch(name string, timeout time.Duration) (*ekv.Client, error) {
	n, ok := c.NodeByName(name)
	if !ok {
		return nil, fmt.Errorf("core: no node named %q", name)
	}
	if err := c.ShootNode(name); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if addr := n.EKVAddr(); addr != "" {
			return ekv.Attach(addr)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil, fmt.Errorf("core: %s never exposed an eKV port", name)
}

// StuckJob identifies one reinstall job that had not finished when
// ReinstallCluster gave up, and the host it was pinned to.
type StuckJob struct {
	JobID int
	Host  string
	State string // PBS job state at timeout ("Q" or "R")
}

// ReinstallTimeoutError is returned when ReinstallCluster's deadline passes
// with jobs outstanding. It names the stuck hosts so the administrator (or
// the supervisor) knows exactly which machines to chase instead of just
// how many.
type ReinstallTimeoutError struct {
	Stuck []StuckJob
}

// Error lists every stuck host and its job.
func (e *ReinstallTimeoutError) Error() string {
	parts := make([]string, len(e.Stuck))
	for i, s := range e.Stuck {
		parts[i] = fmt.Sprintf("%s (job %d, state %s)", s.Host, s.JobID, s.State)
	}
	return fmt.Sprintf("core: reinstall cluster: %d jobs still pending: %s",
		len(e.Stuck), strings.Join(parts, ", "))
}

// StuckHosts returns just the hostnames, in job order.
func (e *ReinstallTimeoutError) StuckHosts() []string {
	out := make([]string, len(e.Stuck))
	for i, s := range e.Stuck {
		out[i] = s.Host
	}
	return out
}

// ReinstallCluster submits per-node reinstall jobs through PBS/Maui so
// running applications drain first (§5), then runs scheduling passes until
// every job has completed or failed, or the timeout expires. On timeout the
// error is a *ReinstallTimeoutError naming each stuck node and job.
func (c *Cluster) ReinstallCluster(timeout time.Duration) error {
	ids := c.PBS.SubmitReinstallCluster()
	deadline := time.Now().Add(timeout)
	for {
		c.PBS.Schedule()
		var stuck []StuckJob
		for _, id := range ids {
			if j, ok := c.PBS.Job(id); ok && (j.State == "Q" || j.State == "R") {
				host := strings.TrimPrefix(j.Name, "reinstall-")
				if len(j.Assigned) > 0 {
					host = j.Assigned[0]
				}
				stuck = append(stuck, StuckJob{JobID: id, Host: host, State: string(j.State)})
			}
		}
		if len(stuck) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return &ReinstallTimeoutError{Stuck: stuck}
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// execLookup adapts the cluster's name index to the ctools Lookup contract.
func (c *Cluster) execLookup(host string) (rexec.Executor, bool) {
	n, ok := c.NodeByName(host)
	return n, ok
}

// Fork is cluster-fork: run a command on the nodes selected by an SQL query
// (the default query selects all compute nodes).
func (c *Cluster) Fork(query, cmd string) ([]ctools.HostResult, error) {
	return ctools.Fork(c.DB, c.execLookup, query, cmd)
}

// Kill is cluster-kill: terminate a named process on the selected nodes.
func (c *Cluster) Kill(query, process string) ([]ctools.HostResult, int, error) {
	return ctools.Kill(c.DB, c.execLookup, query, process)
}

// RexecDaemons returns rexec daemons for the named (up) hosts, in order.
func (c *Cluster) RexecDaemons(names ...string) ([]*rexec.Daemon, error) {
	out := make([]*rexec.Daemon, 0, len(names))
	for _, name := range names {
		n, ok := c.NodeByName(name)
		if !ok {
			return nil, fmt.Errorf("core: no node named %q", name)
		}
		out = append(out, rexec.NewDaemon(name, n))
	}
	return out, nil
}

// ConsistencyReport diffs every up compute node's package manifest against
// the first one, answering §3.2's "what version of software X do I have on
// node Y?" for the whole cluster at once. It returns the hosts whose
// manifests differ.
func (c *Cluster) ConsistencyReport() (reference string, divergent []string, err error) {
	names, err := clusterdb.ComputeNodeNames(c.DB)
	if err != nil {
		return "", nil, err
	}
	var refManifest string
	for _, name := range names {
		n, ok := c.NodeByName(name)
		if !ok || n.State() != node.StateUp {
			continue
		}
		m := n.PackageDB().Manifest()
		if refManifest == "" {
			reference, refManifest = name, m
			continue
		}
		if m != refManifest {
			divergent = append(divergent, name)
		}
	}
	return reference, divergent, nil
}

// CrashCart is the last resort of §4: "If the compute node is still
// unresponsive, physical intervention is required. For this case, we have a
// crash cart — a monitor and a keyboard." It returns the node's console
// view (state, install log tail) and, when repair is requested, clears the
// fault and boots the machine fresh.
func (c *Cluster) CrashCart(mac string, repair bool) (string, error) {
	c.mu.Lock()
	n, ok := c.nodes[mac]
	c.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("core: no machine with MAC %s on the floor", mac)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "console %s (%s):\n", mac, n.State())
	log := n.InstallLog()
	if len(log) > 5 {
		log = log[len(log)-5:]
	}
	for _, line := range log {
		fmt.Fprintf(&b, "  %s\n", line)
	}
	if repair {
		fmt.Fprintf(&b, "repair: replacing hardware and reinstalling\n")
		n.PowerOff()
		n.ForceReinstall()
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			n.SetState(node.StateBooting)
			if err := c.bootOnce(c.ctx, n); err != nil {
				c.Syslog.Log("frontend-0", "rocks", "crash-cart repair of %s failed: %v", mac, err)
			}
		}()
	}
	return b.String(), nil
}

// Decommission removes a node from the cluster: the database row goes, the
// DHCP binding disappears with the next report pass, PBS loses the mom, the
// PDU outlet is freed, and the machine is powered off. The physical box can
// leave the rack.
func (c *Cluster) Decommission(name string) error {
	n, ok := c.NodeByName(name)
	if !ok {
		return fmt.Errorf("core: no node named %q", name)
	}
	c.PBS.UnregisterMom(name)
	if c.relays != nil {
		// No lifecycle event marks a decommission; withdraw directly so the
		// registry never offers a powered-off machine as a source.
		c.relays.withdraw(name, "decommissioned")
	}
	if outlet, wired := c.PDU.OutletFor(n.MAC()); wired {
		c.PDU.Disconnect(outlet)
	}
	n.PowerOff()
	if err := clusterdb.DeleteNode(c.DB, name); err != nil {
		return err
	}
	// The machine is leaving for good: its facts row and drift verdict go
	// with it, so the inventory never reports a ghost.
	if err := clusterdb.DeleteFacts(c.DB, n.MAC()); err != nil {
		return err
	}
	c.facts.mu.Lock()
	delete(c.facts.records, n.MAC())
	c.facts.mu.Unlock()
	c.mu.Lock()
	delete(c.byName, name)
	delete(c.nodes, n.MAC())
	c.mu.Unlock()
	c.Syslog.Log("frontend-0", "rocks", "decommissioned %s (%s)", name, n.MAC())
	return c.WriteReports()
}

package core

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"rocks/internal/clusterdb"
	"rocks/internal/dist"
	"rocks/internal/installer"
	"rocks/internal/lifecycle"
	"rocks/internal/rpm"
)

// The relay distribution tier breaks the frontend-NIC bottleneck of mass
// reinstalls: a compute node that finishes installing re-serves its
// digest-verified package tree (dist.NewRepoServer) to peers, and the
// frontend's /v1/relays registry hands each new installer a prioritized
// source list. Peers are trustless — every body an installer accepts is
// verified against the frontend's manifest digests — so the registry needs
// no health checking beyond lifecycle bookkeeping: it registers a relay on
// install-complete and withdraws it the moment the node leaves the serving
// state (reinstall lease, dark, quarantine, decommission).

// defaultMaxRelaySources caps how many peers one installer is offered. A
// short list keeps the registry response tiny at 10k-node scale; rotation
// spreads successive installers across the live relay population.
const defaultMaxRelaySources = 8

// relayEntry is one live relay: a loopback HTTP listener serving the node's
// verified package tree at the same RPMS/manifest endpoints as the frontend.
type relayEntry struct {
	mac  string
	name string
	url  string
	rack int // the relay node's rack, -1 when unknown
	srv  *dist.Server
	ln   net.Listener
}

// relayRegistry tracks which nodes currently re-serve their install trees.
// It is fed by the lifecycle bus: the installer's install-complete promotes
// a node's accumulated package store to a serving relay, and lease/dark/
// quarantine events withdraw it. Bus subscription is lossy under extreme
// backlog; the failure mode is benign (a missed registration serves nothing,
// a missed withdrawal serves stale-but-digest-valid bodies until the next
// event), which is exactly why installers verify every body.
type relayRegistry struct {
	c   *Cluster
	max int

	mu      sync.Mutex
	closed  bool
	pending map[string]*rpm.Repository // MAC → store of an install in flight
	live    map[string]*relayEntry     // MAC → serving relay
	rotor   int

	started      atomic.Uint64
	withdrawn    atomic.Uint64
	retiredBytes atomic.Int64  // package bytes served by since-withdrawn relays
	retiredReqs  atomic.Uint64 // package requests answered by since-withdrawn relays
	sameRack     atomic.Uint64 // sources handed out inside the asker's rack
	crossRack    atomic.Uint64 // sources handed out across rack boundaries
}

// newRelayRegistry builds the registry and starts its bus-watching
// goroutine (tracked on the cluster's WaitGroup, reaped by ctx cancel).
func newRelayRegistry(c *Cluster) *relayRegistry {
	max := c.cfg.MaxRelaySources
	if max <= 0 {
		max = defaultMaxRelaySources
	}
	r := &relayRegistry{
		c:       c,
		max:     max,
		pending: make(map[string]*rpm.Repository),
		live:    make(map[string]*relayEntry),
	}
	events, cancel := c.events.Subscribe(256)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer cancel()
		for {
			select {
			case e := <-events:
				r.observe(e)
			case <-c.ctx.Done():
				return
			}
		}
	}()
	return r
}

// expect records the store an in-flight install is accumulating verified
// packages into, keyed by the node's MAC. A reinstall overwrites the
// previous expectation with a fresh store.
func (r *relayRegistry) expect(mac string, store *rpm.Repository) {
	r.mu.Lock()
	r.pending[mac] = store
	r.mu.Unlock()
}

// observe reacts to one lifecycle event.
func (r *relayRegistry) observe(e lifecycle.Event) {
	switch e.Type {
	case lifecycle.EventInstallComplete:
		r.promote(e.MAC, e.Node)
	case lifecycle.EventLease:
		// The node is reinstalling: its tree is about to be wiped, so its
		// relay goes down before peers can be pointed at it again.
		r.withdraw(e.MAC, "reinstalling")
	case lifecycle.EventDark:
		r.withdraw(firstNonEmpty(e.MAC, e.Node), "went dark")
	case lifecycle.EventQuarantine:
		r.withdraw(firstNonEmpty(e.MAC, e.Node), "quarantined")
	}
}

// promote turns a completed install's package store into a serving relay on
// its own loopback listener. A node with no pending store (the frontend, or
// a relay-disabled install) is ignored.
func (r *relayRegistry) promote(mac, name string) {
	r.mu.Lock()
	store, ok := r.pending[mac]
	if !ok || r.closed {
		r.mu.Unlock()
		return
	}
	delete(r.pending, mac)
	r.mu.Unlock()
	if len(store.All()) == 0 {
		return
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		r.c.Syslog.Log("frontend-0", "relay", "cannot start relay for %s: %v", name, err)
		return
	}
	entry := &relayEntry{
		mac:  mac,
		name: name,
		url:  "http://" + ln.Addr().String(),
		rack: r.rackOf(mac),
		srv:  dist.NewRepoServer(store),
		ln:   ln,
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		ln.Close()
		return
	}
	if old, ok := r.live[mac]; ok {
		// A relay survived a reinstall's withdrawal (lost event): replace it.
		r.retire(old)
	}
	r.live[mac] = entry
	r.mu.Unlock()
	httpSrv := &http.Server{Handler: entry.srv}
	r.c.wg.Add(1)
	go func() {
		defer r.c.wg.Done()
		if err := httpSrv.Serve(ln); err != nil &&
			!errors.Is(err, http.ErrServerClosed) && !errors.Is(err, net.ErrClosed) {
			r.c.Syslog.Log("frontend-0", "relay", "relay %s serve: %v", name, err)
		}
	}()
	r.started.Add(1)
	r.c.events.Publish(lifecycle.Event{
		Node: name, MAC: mac, Phase: lifecycle.PhaseRun,
		Type: lifecycle.EventRelayUp, Source: "relay",
		Detail: fmt.Sprintf("serving %d packages at %s", len(store.All()), entry.url),
	})
}

// withdraw takes a relay out of rotation, matching by MAC or hostname.
func (r *relayRegistry) withdraw(id, reason string) {
	if id == "" {
		return
	}
	r.mu.Lock()
	var entry *relayEntry
	for mac, e := range r.live {
		if e.mac == id || e.name == id {
			entry = e
			delete(r.live, mac)
			break
		}
	}
	if entry != nil {
		r.retire(entry)
	}
	r.mu.Unlock()
	if entry == nil {
		return
	}
	r.c.events.Publish(lifecycle.Event{
		Node: entry.name, MAC: entry.mac, Phase: lifecycle.PhaseRun,
		Type: lifecycle.EventRelayDown, Source: "relay", Detail: reason,
	})
}

// retire (mu held) closes a relay's listener and folds its serve counters
// into the cumulative retired totals so /metrics never goes backwards.
func (r *relayRegistry) retire(e *relayEntry) {
	e.ln.Close()
	stats := e.srv.Stats()
	r.retiredBytes.Add(stats.PackageBytes)
	r.retiredReqs.Add(stats.PackageRequests)
	r.withdrawn.Add(1)
}

// rackOf resolves a relay node's rack from the cluster database; -1 when
// the node is unknown (topology stays the registry's concern — installers
// never learn rack numbers, they just receive a better-ordered list).
func (r *relayRegistry) rackOf(mac string) int {
	n, ok, err := clusterdb.NodeByMAC(r.c.DB, mac)
	if err != nil || !ok {
		return -1
	}
	return n.Rack
}

// sources returns the prioritized peer list one installer should try,
// rotated per call so concurrent installers fan out across the relay
// population instead of stampeding the first entry. rack, when >= 0, is
// the asker's rack: same-rack relays are stably moved to the front of the
// rotated list, keeping mass-reinstall traffic inside rack switches; a
// rack with no live relay falls back to cross-rack peers, counted on
// rocks_dist_relay_cross_rack_total.
func (r *relayRegistry) sources(rack int) []installer.Source {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.live) == 0 {
		return nil
	}
	entries := make([]*relayEntry, 0, len(r.live))
	for _, e := range r.live {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	n := len(entries)
	start := r.rotor % n
	r.rotor++
	rotated := make([]*relayEntry, 0, n)
	for i := 0; i < n; i++ {
		rotated = append(rotated, entries[(start+i)%n])
	}
	if rack >= 0 {
		// Stable partition: same-rack first, rotation order preserved
		// within each class.
		near := make([]*relayEntry, 0, n)
		far := make([]*relayEntry, 0, n)
		for _, e := range rotated {
			if e.rack == rack {
				near = append(near, e)
			} else {
				far = append(far, e)
			}
		}
		rotated = append(near, far...)
	}
	count := n
	if count > r.max {
		count = r.max
	}
	out := make([]installer.Source, 0, count)
	for _, e := range rotated[:count] {
		if rack >= 0 {
			if e.rack == rack {
				r.sameRack.Add(1)
			} else {
				r.crossRack.Add(1)
			}
		}
		out = append(out, installer.Source{URL: e.url, Kind: installer.SourcePeer, Node: e.name})
	}
	return out
}

// liveCount reports how many relays are currently serving.
func (r *relayRegistry) liveCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.live)
}

// serveTotals sums package-serving traffic across live and retired relays —
// the bytes the frontend NIC did not have to carry.
func (r *relayRegistry) serveTotals() (requests uint64, bytes int64) {
	r.mu.Lock()
	for _, e := range r.live {
		s := e.srv.Stats()
		requests += s.PackageRequests
		bytes += s.PackageBytes
	}
	r.mu.Unlock()
	return requests + r.retiredReqs.Load(), bytes + r.retiredBytes.Load()
}

// closeAll shuts every relay listener down and refuses later promotions;
// called from Cluster.Close before the WaitGroup drain.
func (r *relayRegistry) closeAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	for mac, e := range r.live {
		e.ln.Close()
		delete(r.live, mac)
	}
}

// RelaysResponse is the /v1/relays payload: the rotated peer source list an
// installer should try in order (the frontend itself is always the
// installer-side fallback and is not listed), plus the live-relay count.
type RelaysResponse struct {
	Sources []installer.Source `json:"sources"`
	Live    int                `json:"live"`
}

// opRelays serves the relay registry (read-only). With relays disabled the
// endpoint exists and returns an empty list, so installers and scrapers
// never depend on configuration for the surface's presence. The asker's
// rack comes from its mac parameter (installers send their own MAC) via
// the nodes table, or an explicit rack parameter; without either the list
// is rack-blind, exactly as before.
func (c *Cluster) opRelays(r *http.Request) (interface{}, *apiError) {
	resp := RelaysResponse{Sources: []installer.Source{}}
	if c.relays != nil {
		rack := -1
		if mac := r.FormValue("mac"); mac != "" {
			rack = c.relays.rackOf(mac)
		} else if r.FormValue("rack") != "" {
			n, aerr := formInt(r, "rack", -1, 0)
			if aerr != nil {
				return nil, aerr
			}
			rack = n
		}
		if srcs := c.relays.sources(rack); srcs != nil {
			resp.Sources = srcs
		}
		resp.Live = c.relays.liveCount()
	}
	return resp, nil
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

package core

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/hardware"
	"rocks/internal/nfs"
	"rocks/internal/node"
	"rocks/internal/syslogd"
)

// TestNFSCommonModeFailure reproduces §4's diagnosis: "if Linux can't bring
// up the Ethernet network, either a hardware error has occurred... or a
// central (common-mode) service (often NFS) has failed. ... For a
// common-mode failure, fixing the service and then power cycling nodes
// (remotely) solves the dilemma."
func TestNFSCommonModeFailure(t *testing.T) {
	c := newCluster(t)
	nodes := addComputes(t, c, 2)

	// The common-mode failure: the frontend's export disappears. Nodes that
	// boot during the outage log mount failures.
	*c.NFS = *nfs.NewServer() // swap the export table out from under mounts

	if err := c.ShootNode("compute-0-0"); err != nil {
		t.Fatal(err)
	}
	if !WaitState(nodes[0], node.StateUp, integrationTimeout) {
		t.Fatalf("node state = %s", nodes[0].State())
	}
	if _, ok := c.Syslog.WaitFor(func(m syslogd.Message) bool {
		return m.Tag == "mount" && strings.Contains(m.Text, "NFS mount failed")
	}, integrationTimeout); !ok {
		t.Fatal("mount failure not visible in syslog")
	}

	// Fix the service, then remotely power cycle the affected node: it
	// comes back with a working mount and no new failure line.
	c.NFS.AddExport("/export/home")
	before := len(c.Syslog.Grep("NFS mount failed"))
	outlet, _ := c.PDU.OutletFor(nodes[0].MAC())
	if err := c.PDU.HardCycle(outlet); err != nil {
		t.Fatal(err)
	}
	if !WaitState(nodes[0], node.StateUp, integrationTimeout) {
		t.Fatalf("node state = %s after recovery", nodes[0].State())
	}
	if after := len(c.Syslog.Grep("NFS mount failed")); after != before {
		t.Errorf("mount still failing after the service was fixed (%d -> %d)", before, after)
	}
}

// TestHealthMonitorFlagsDarkNode: a node wedges (crashed install); the
// monitor goes dark on it and the health endpoint names the PDU outlet to
// cycle — §4's management loop closed end to end.
func TestHealthMonitorFlagsDarkNode(t *testing.T) {
	c := newCluster(t)
	nodes := addComputes(t, c, 1)
	n := nodes[0]

	mon := c.NewMonitor(50*time.Millisecond, 0)
	defer mon.Stop()
	mon.Probe()
	if dark := mon.Dark(); len(dark) != 0 {
		t.Fatalf("healthy cluster reported dark nodes: %v", dark)
	}

	// Wedge the node: crash it outright (hardware fault stand-in).
	n.PowerOff()
	time.Sleep(60 * time.Millisecond)
	mon.Probe()
	dark := mon.Dark()
	if len(dark) != 1 || dark[0] != "compute-0-0" {
		t.Fatalf("dark = %v", dark)
	}

	// The health endpoint points at the right outlet.
	resp, err := http.Get(c.BaseURL() + "/admin/health")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var rows []struct {
		Host   string `json:"host"`
		Alive  bool   `json:"alive"`
		Outlet int    `json:"outlet"`
	}
	if err := json.Unmarshal(body, &rows); err != nil {
		t.Fatalf("health JSON: %v (%s)", err, body)
	}
	var found bool
	for _, r := range rows {
		if r.Host == "compute-0-0" {
			found = true
			if r.Alive || r.Outlet == 0 {
				t.Errorf("row = %+v; want dead with an outlet", r)
			}
			// Cycle the outlet: the node reinstalls and the monitor clears.
			if err := c.PDU.HardCycle(r.Outlet); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !found {
		t.Fatalf("compute-0-0 missing from health report: %s", body)
	}
	if !WaitState(n, node.StateUp, integrationTimeout) {
		t.Fatalf("node state = %s after cycle", n.State())
	}
	mon.Probe()
	if len(mon.Dark()) != 0 {
		t.Errorf("node still dark after recovery: %v", mon.Dark())
	}
}

// TestCrashCart covers §4's final fallback: a node that no remote mechanism
// can revive is visited physically; the console shows why it died and the
// repair path brings it back through a fresh install.
func TestCrashCart(t *testing.T) {
	c := newCluster(t)
	nodes := addComputes(t, c, 1)
	n := nodes[0]

	// Break the distribution and shoot the node so it crashes.
	var removed = c.Dist.Repo.Versions("sed")
	for _, p := range removed {
		c.Dist.Repo.Remove(p.NVRA())
	}
	c.ShootNode("compute-0-0")
	if !WaitState(n, node.StateCrashed, integrationTimeout) {
		t.Fatalf("state = %s", n.State())
	}
	console, err := c.CrashCart(n.MAC(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(console, "crashed") || !strings.Contains(console, "sed") {
		t.Errorf("console = %q", console)
	}
	// Repair: fix the distribution first, then the cart's repair path.
	for _, p := range removed {
		c.Dist.Repo.Add(p)
	}
	if _, err := c.CrashCart(n.MAC(), true); err != nil {
		t.Fatal(err)
	}
	if !WaitState(n, node.StateUp, integrationTimeout) {
		t.Fatalf("state = %s after repair", n.State())
	}
	if _, err := c.CrashCart("no:such:mac", false); err == nil {
		t.Error("unknown MAC accepted")
	}
}

// TestDecommission removes a node from the cluster entirely: database,
// DHCP, PBS, PDU — and the tools stop seeing it.
func TestDecommission(t *testing.T) {
	c := newCluster(t)
	nodes := addComputes(t, c, 2)
	if err := c.Decommission("compute-0-1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.NodeByName("compute-0-1"); ok {
		t.Error("node still indexed")
	}
	if got := c.PBS.Moms(); len(got) != 1 {
		t.Errorf("moms = %v", got)
	}
	results, err := c.Fork("", "hostname")
	if err != nil || len(results) != 1 || results[0].Host != "compute-0-0" {
		t.Errorf("fork after decommission = %+v, %v", results, err)
	}
	if _, ok := c.PDU.OutletFor(nodes[1].MAC()); ok {
		t.Error("PDU outlet still wired")
	}
	if nodes[1].State() != node.StateOff {
		t.Errorf("node state = %s", nodes[1].State())
	}
	if err := c.Decommission("ghost"); err == nil {
		t.Error("decommission of unknown node accepted")
	}
	// The freed IP is reusable by the next discovery.
	extra, err := c.IntegrateNodes(
		[]hardware.Profile{hardware.PIIICompute(c.MACs(), 733)},
		clusterdb.MembershipCompute, 0, integrationTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if extra[0].Name() != "compute-0-1" {
		t.Errorf("replacement named %s; rank/IP should be reused", extra[0].Name())
	}
}

// TestChurnChaos interleaves shoot-node storms with cluster-fork sweeps and
// health probes: nothing may deadlock, and the cluster must converge to
// consistent.
func TestChurnChaos(t *testing.T) {
	c := newCluster(t)
	nodes := addComputes(t, c, 3)
	mon := c.NewMonitor(time.Minute, 0)
	defer mon.Stop()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // fork sweeps, tolerating down nodes
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.Fork("", "rpm -q glibc")
			mon.Probe()
		}
	}()
	for round := 0; round < 3; round++ {
		for _, n := range nodes {
			name := n.Name()
			if name == "" {
				continue
			}
			// Shoot may race a node that is mid-reinstall; both outcomes
			// are legitimate.
			c.ShootNode(name)
			time.Sleep(2 * time.Millisecond)
		}
		for _, n := range nodes {
			if !WaitState(n, node.StateUp, integrationTimeout) {
				t.Fatalf("%s stuck in %s during churn", n.Name(), n.State())
			}
		}
	}
	close(stop)
	wg.Wait()
	_, divergent, err := c.ConsistencyReport()
	if err != nil || len(divergent) != 0 {
		t.Errorf("after churn: divergent=%v err=%v", divergent, err)
	}
	for _, n := range nodes {
		if n.Installs() < 4 {
			t.Errorf("%s installs = %d, want ≥4", n.Name(), n.Installs())
		}
	}
}

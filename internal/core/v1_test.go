package core

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"rocks/internal/clusterdb"
	"rocks/internal/metrics"
	"rocks/internal/node"
)

// v1Call performs one request against the cluster's /v1 surface.
func v1Call(t *testing.T, c *Cluster, method, path string, params url.Values) (int, string, http.Header) {
	t.Helper()
	u := c.BaseURL() + path
	var resp *http.Response
	var err error
	switch method {
	case http.MethodGet:
		if params != nil {
			u += "?" + params.Encode()
		}
		resp, err = http.Get(u)
	case http.MethodPost:
		resp, err = http.PostForm(u, params)
	default:
		req, _ := http.NewRequest(method, u, nil)
		resp, err = http.DefaultClient.Do(req)
	}
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body), resp.Header
}

// dataOf unwraps a /v1 {"data": ...} envelope into out.
func dataOf(t *testing.T, body string, out interface{}) {
	t.Helper()
	var env struct {
		Data json.RawMessage `json:"data"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("bad envelope %q: %v", body, err)
	}
	if env.Data == nil {
		t.Fatalf("no data in envelope %q", body)
	}
	if err := json.Unmarshal(env.Data, out); err != nil {
		t.Fatalf("bad data payload %q: %v", env.Data, err)
	}
}

// errorOf unwraps a /v1 {"error": ...} envelope.
func errorOf(t *testing.T, body string) apiError {
	t.Helper()
	var env struct {
		Error *apiError `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil || env.Error == nil {
		t.Fatalf("no error envelope in %q (%v)", body, err)
	}
	return *env.Error
}

// scrapeMetrics fetches and strictly parses /metrics.
func scrapeMetrics(t *testing.T, c *Cluster) metrics.Scrape {
	t.Helper()
	resp, err := http.Get(c.BaseURL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	s, err := metrics.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	return s
}

// TestV1MethodGuards: every mutating endpoint rejects GET with 405 and an
// Allow header; reads reject POST; sql mutates only under POST.
func TestV1MethodGuards(t *testing.T) {
	c := newCluster(t)
	for _, path := range []string{
		"/v1/shoot", "/v1/fork", "/v1/kill", "/v1/integrate",
		"/v1/adduser", "/v1/reinstall-cluster",
	} {
		code, body, hdr := v1Call(t, c, http.MethodGet, path, url.Values{"node": {"x"}})
		if code != http.StatusMethodNotAllowed {
			t.Errorf("GET %s = %d, want 405", path, code)
			continue
		}
		if hdr.Get("Allow") != "POST" {
			t.Errorf("GET %s Allow = %q", path, hdr.Get("Allow"))
		}
		if e := errorOf(t, body); e.Code != "method_not_allowed" || e.Status != 405 {
			t.Errorf("GET %s error = %+v", path, e)
		}
	}
	// sql: GET reads are fine, GET with exec=1 is a 405.
	code, _, _ := v1Call(t, c, http.MethodGet, "/v1/sql", url.Values{"q": {"SELECT name FROM nodes"}})
	if code != 200 {
		t.Errorf("GET /v1/sql read = %d", code)
	}
	code, _, hdr := v1Call(t, c, http.MethodGet, "/v1/sql",
		url.Values{"q": {"DELETE FROM nodes"}, "exec": {"1"}})
	if code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/sql exec = %d, want 405", code)
	}
	if hdr.Get("Allow") != "GET, POST" {
		t.Errorf("sql Allow = %q", hdr.Get("Allow"))
	}
	// Reads reject POST.
	for _, path := range []string{"/v1/health", "/v1/dbstats", "/v1/events", "/v1/audit"} {
		code, _, hdr := v1Call(t, c, http.MethodPost, path, url.Values{})
		if code != http.StatusMethodNotAllowed || hdr.Get("Allow") != "GET" {
			t.Errorf("POST %s = %d (Allow %q), want 405/GET", path, code, hdr.Get("Allow"))
		}
	}
}

// TestV1ErrorShapes: missing parameters, unparseable integers, negative
// integers, and unknown nodes come back as structured errors with the
// right codes — never silent defaults, never a crash.
func TestV1ErrorShapes(t *testing.T) {
	c := newCluster(t)
	cases := []struct {
		method, path string
		params       url.Values
		status       int
		code         string
	}{
		{http.MethodPost, "/v1/shoot", url.Values{}, 400, "missing_parameter"},
		{http.MethodPost, "/v1/shoot", url.Values{"node": {"ghost"}}, 404, "unknown_node"},
		{http.MethodPost, "/v1/fork", url.Values{}, 400, "missing_parameter"},
		{http.MethodPost, "/v1/kill", url.Values{}, 400, "missing_parameter"},
		{http.MethodPost, "/v1/adduser", url.Values{}, 400, "missing_parameter"},
		{http.MethodPost, "/v1/adduser", url.Values{"name": {"x"}, "uid": {"abc"}}, 400, "bad_parameter"},
		{http.MethodGet, "/v1/sql", url.Values{}, 400, "missing_parameter"},
		{http.MethodGet, "/v1/events", url.Values{"since": {"abc"}}, 400, "bad_parameter"},
		{http.MethodGet, "/v1/events", url.Values{"since": {"-1"}}, 400, "bad_parameter"},
		{http.MethodGet, "/v1/events", url.Values{"limit": {"2x"}}, 400, "bad_parameter"},
		{http.MethodGet, "/v1/audit", url.Values{"since": {"-5"}}, 400, "bad_parameter"},
		{http.MethodPost, "/v1/integrate", url.Values{"count": {"0"}}, 400, "bad_parameter"},
		{http.MethodPost, "/v1/integrate", url.Values{"count": {"one"}}, 400, "bad_parameter"},
		{http.MethodPost, "/v1/reinstall-cluster", url.Values{"wait": {"never"}}, 400, "bad_parameter"},
	}
	for _, tc := range cases {
		code, body, _ := v1Call(t, c, tc.method, tc.path, tc.params)
		if code != tc.status {
			t.Errorf("%s %s %v = %d, want %d (%s)", tc.method, tc.path, tc.params, code, tc.status, body)
			continue
		}
		if e := errorOf(t, body); e.Code != tc.code || e.Status != tc.status {
			t.Errorf("%s %s error = %+v, want code %s", tc.method, tc.path, e, tc.code)
		}
	}
	// The legacy aliases get the same strictness: bad input is a 400, not
	// a silent default.
	code, _ := adminGet(t, c, "/admin/events", url.Values{"since": {"abc"}})
	if code != 400 {
		t.Errorf("legacy events since=abc = %d, want 400", code)
	}
	code, _ = adminGet(t, c, "/admin/events", url.Values{"since": {"-1"}})
	if code != 400 {
		t.Errorf("legacy events since=-1 = %d, want 400", code)
	}
}

// TestV1MutationsAndAudit drives every mutating operation through /v1 and
// checks each landed in the audit log with its outcome.
func TestV1MutationsAndAudit(t *testing.T) {
	c := newCluster(t)

	code, body, _ := v1Call(t, c, http.MethodPost, "/v1/integrate",
		url.Values{"count": {"2"}, "wait": {"60"}})
	if code != 200 {
		t.Fatalf("integrate: %d %s", code, body)
	}
	var integrated map[string][]string
	dataOf(t, body, &integrated)
	if len(integrated["integrated"]) != 2 {
		t.Fatalf("integrated = %v", integrated)
	}

	code, body, _ = v1Call(t, c, http.MethodPost, "/v1/sql", url.Values{
		"q": {"UPDATE nodes SET comment = 'v1' WHERE name = 'compute-0-0'"}, "exec": {"1"}})
	if code != 200 {
		t.Fatalf("sql exec: %d %s", code, body)
	}
	var sqlResp SQLResponse
	dataOf(t, body, &sqlResp)
	if !sqlResp.Exec {
		t.Errorf("sql response = %+v", sqlResp)
	}

	code, body, _ = v1Call(t, c, http.MethodPost, "/v1/fork", url.Values{"cmd": {"hostname"}})
	if code != 200 {
		t.Fatalf("fork: %d %s", code, body)
	}
	var fr ForkResponse
	dataOf(t, body, &fr)
	if len(fr.Results) != 2 {
		t.Errorf("fork results = %+v", fr)
	}

	code, _, _ = v1Call(t, c, http.MethodPost, "/v1/kill", url.Values{"process": {"nothing"}})
	if code != 200 {
		t.Fatalf("kill: %d", code)
	}
	code, _, _ = v1Call(t, c, http.MethodPost, "/v1/adduser",
		url.Values{"name": {"alice"}, "uid": {"600"}})
	if code != 200 {
		t.Fatalf("adduser: %d", code)
	}
	code, body, _ = v1Call(t, c, http.MethodPost, "/v1/shoot", url.Values{"node": {"compute-0-1"}})
	if code != 200 {
		t.Fatalf("shoot: %d %s", code, body)
	}
	if !WaitState(mustNode(t, c, "compute-0-1"), node.StateUp, integrationTimeout) {
		t.Fatal("shot node never came back")
	}
	code, body, _ = v1Call(t, c, http.MethodPost, "/v1/reinstall-cluster",
		url.Values{"wait": {"60"}})
	if code != 200 {
		t.Fatalf("reinstall-cluster: %d %s", code, body)
	}
	var rr ReinstallResult
	dataOf(t, body, &rr)
	if !rr.Converged || len(rr.NotUp) != 0 {
		t.Errorf("reinstall result = %+v, want converged", rr)
	}
	// A failing mutation is audited too.
	v1Call(t, c, http.MethodPost, "/v1/shoot", url.Values{"node": {"ghost"}})

	// Every op shows up in the audit log with its outcome.
	code, body, _ = v1Call(t, c, http.MethodGet, "/v1/audit", nil)
	if code != 200 {
		t.Fatalf("audit: %d %s", code, body)
	}
	var audit struct {
		Entries []AuditEntry `json:"entries"`
		Seq     uint64       `json:"seq"`
		Errors  uint64       `json:"errors"`
	}
	dataOf(t, body, &audit)
	byOp := make(map[string][]AuditEntry)
	for _, e := range audit.Entries {
		byOp[e.Op] = append(byOp[e.Op], e)
	}
	for _, op := range []string{"integrate", "sql-exec", "fork", "kill", "adduser", "shoot", "reinstall-cluster"} {
		if len(byOp[op]) == 0 {
			t.Errorf("audit has no %s entry; ops seen: %v", op, opsOf(audit.Entries))
		}
	}
	shoots := byOp["shoot"]
	if len(shoots) != 2 {
		t.Fatalf("shoot audit entries = %d, want 2", len(shoots))
	}
	if shoots[0].Outcome != "ok" || shoots[0].Status != 200 {
		t.Errorf("first shoot audit = %+v", shoots[0])
	}
	if shoots[1].Outcome != "error" || shoots[1].Status != 404 || shoots[1].Error == "" {
		t.Errorf("ghost shoot audit = %+v", shoots[1])
	}
	if audit.Errors == 0 {
		t.Error("audit error counter never moved")
	}
	for _, e := range audit.Entries {
		if e.Actor == "" || e.Time.IsZero() || e.Seq == 0 {
			t.Errorf("audit entry missing identity fields: %+v", e)
		}
	}

	// Filters: by op, by outcome, and since the last sequence.
	code, body, _ = v1Call(t, c, http.MethodGet, "/v1/audit",
		url.Values{"op": {"shoot"}, "outcome": {"error"}})
	if code != 200 {
		t.Fatalf("audit filtered: %d", code)
	}
	var filtered struct {
		Entries []AuditEntry `json:"entries"`
	}
	dataOf(t, body, &filtered)
	if len(filtered.Entries) != 1 || filtered.Entries[0].Outcome != "error" {
		t.Errorf("filtered audit = %+v", filtered.Entries)
	}
	code, body, _ = v1Call(t, c, http.MethodGet, "/v1/audit",
		url.Values{"since": {"1000000"}})
	dataOf(t, body, &filtered)
	if len(filtered.Entries) != 0 {
		t.Errorf("since-future audit = %+v", filtered.Entries)
	}

	// Reads are not audited: the audit log holds only the mutations above.
	for _, e := range audit.Entries {
		switch e.Op {
		case "integrate", "sql-exec", "fork", "kill", "adduser", "shoot", "reinstall-cluster":
		default:
			t.Errorf("unexpected audited op %q", e.Op)
		}
	}
}

func opsOf(entries []AuditEntry) []string {
	var out []string
	for _, e := range entries {
		out = append(out, e.Op)
	}
	return out
}

func mustNode(t *testing.T, c *Cluster, name string) *node.Node {
	t.Helper()
	n, ok := c.NodeByName(name)
	if !ok {
		t.Fatalf("no node %s", name)
	}
	return n
}

// TestV1ActorHeader: the X-Rocks-Actor header names the caller in the
// audit record.
func TestV1ActorHeader(t *testing.T) {
	c := newCluster(t)
	req, _ := http.NewRequest(http.MethodPost, c.BaseURL()+"/v1/adduser?name=bob", nil)
	req.Header.Set("X-Rocks-Actor", "operator@console")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("adduser: %d", resp.StatusCode)
	}
	_, body, _ := v1Call(t, c, http.MethodGet, "/v1/audit", url.Values{"op": {"adduser"}})
	var audit struct {
		Entries []AuditEntry `json:"entries"`
	}
	dataOf(t, body, &audit)
	if len(audit.Entries) != 1 || audit.Entries[0].Actor != "operator@console" {
		t.Errorf("audit actor = %+v, want operator@console", audit.Entries)
	}
}

// TestReinstallClusterReportsStragglers: a reinstall that cannot converge
// within the deadline says so instead of lying "cluster reinstalled".
func TestReinstallClusterReportsStragglers(t *testing.T) {
	c := newCluster(t)
	addComputes(t, c, 2)
	// A zero-second deadline cannot possibly see the nodes reinstall and
	// come back up.
	code, body, _ := v1Call(t, c, http.MethodPost, "/v1/reinstall-cluster",
		url.Values{"wait": {"0"}})
	if code != 200 {
		t.Fatalf("reinstall-cluster: %d %s", code, body)
	}
	var rr ReinstallResult
	dataOf(t, body, &rr)
	if rr.Converged {
		t.Fatalf("zero-deadline reinstall claims convergence: %+v", rr)
	}
	if len(rr.NotUp) == 0 {
		t.Errorf("no stragglers named: %+v", rr)
	}
	if !strings.Contains(rr.Status, "incomplete") {
		t.Errorf("status = %q", rr.Status)
	}
	// Let the shot nodes finish so Close doesn't race the installs.
	for _, n := range c.Nodes() {
		WaitState(n, node.StateUp, integrationTimeout)
	}
}

// TestMetricsEndpoint: every registered family the control plane promises
// is present on /metrics, the exposition parses strictly, and the core
// figures move with the cluster.
func TestMetricsEndpoint(t *testing.T) {
	c := newCluster(t)
	addComputes(t, c, 2)
	// One control-plane read so the per-op request counter has traffic;
	// /metrics scrapes themselves are deliberately not counted.
	if code, _, _ := v1Call(t, c, http.MethodGet, "/v1/health", nil); code != 200 {
		t.Fatalf("health: %d", code)
	}
	s := scrapeMetrics(t, c)
	for _, fam := range []string{
		// clusterdb (/admin/dbstats "db")
		"rocks_db_plan_cache_hits_total", "rocks_db_plan_cache_misses_total",
		"rocks_db_plan_cache_entries", "rocks_db_index_selects_total",
		"rocks_db_scan_selects_total", "rocks_db_index_keys",
		"rocks_db_wal_enabled", "rocks_db_wal_records_appended_total",
		"rocks_db_wal_bytes_appended_total", "rocks_db_wal_fsyncs_total",
		"rocks_db_wal_snapshots_total", "rocks_db_wal_last_snapshot_seq",
		"rocks_db_wal_replays_total", "rocks_db_wal_records_replayed_total",
		"rocks_db_wal_replay_errors_total", "rocks_db_wal_stale_skipped_total",
		"rocks_db_wal_torn_tails_dropped_total",
		"rocks_db_recovery_records_replayed", "rocks_db_recovery_replay_errors",
		// kickstart cache (/admin/dbstats "kickstart_cache")
		"rocks_kickstart_cache_hits_total", "rocks_kickstart_cache_misses_total",
		"rocks_kickstart_cache_invalidations_total",
		// reports (/admin/dbstats "reports")
		"rocks_reports_writes_total", "rocks_reports_skips_total",
		"rocks_reports_scheduled_total",
		// dist (/admin/diststats)
		"rocks_dist_listing_requests_total", "rocks_dist_manifest_requests_total",
		"rocks_dist_hdlist_requests_total", "rocks_dist_package_requests_total",
		"rocks_dist_not_found_total", "rocks_dist_package_bytes_total",
		"rocks_dist_packages",
		"rocks_dist_mirror_packages_listed", "rocks_dist_mirror_packages_skipped",
		"rocks_dist_mirror_packages_fetched", "rocks_dist_mirror_bytes_fetched",
		"rocks_dist_mirror_corrupt_bodies",
		// lifecycle (/admin/events)
		"rocks_lifecycle_events_total", "rocks_lifecycle_ring_evictions_total",
		"rocks_lifecycle_subscriber_drops_total", "rocks_lifecycle_subscribers",
		// installer
		"rocks_installer_fetch_retries_total", "rocks_installer_packages_corrupt_total",
		"rocks_installer_installs_total",
		// supervisor (/admin/supervisor)
		"rocks_supervisor_power_cycles_total", "rocks_supervisor_power_cycle_failures_total",
		"rocks_supervisor_quarantines_total", "rocks_supervisor_unquarantines_total",
		"rocks_supervisor_recoveries_total", "rocks_supervisor_running",
		// relay rack preference
		"rocks_dist_relay_same_rack_total", "rocks_dist_relay_cross_rack_total",
		// kickstart CGI latency
		"rocks_kickstart_cgi_seconds",
		// federation
		"rocks_federation_children", "rocks_federation_registrations_total",
		"rocks_federation_events_received_total", "rocks_federation_events_forwarded_total",
		"rocks_federation_forward_errors_total", "rocks_federation_fanout_errors_total",
		"rocks_federation_merge_deduped_total",
		// population + control plane
		"rocks_nodes", "rocks_nodes_quarantined", "rocks_nodes_state",
		"rocks_api_requests_total", "rocks_audit_entries_total",
		"rocks_audit_errors_total", "rocks_audit_evictions_total",
	} {
		if !s.Has(fam) {
			t.Errorf("family %s absent from /metrics", fam)
		}
	}
	// The figures track reality: 2 computes + frontend.
	if got, _ := s.Value("rocks_nodes"); got != 3 {
		t.Errorf("rocks_nodes = %v, want 3", got)
	}
	if got := s.Sum("rocks_installer_installs_total"); got < 2 {
		t.Errorf("installs_total = %v, want >= 2", got)
	}
	if got, _ := s.Value("rocks_lifecycle_events_total"); got == 0 {
		t.Error("lifecycle events counter never moved")
	}
	if got := s.Sum("rocks_nodes_state"); got != 3 {
		t.Errorf("Sum(rocks_nodes_state) = %v, want 3", got)
	}
	// Scrapes themselves do not count as API traffic, but the health read
	// above does.
	if got := s.Sum("rocks_api_requests_total"); got == 0 {
		t.Error("api requests counter never moved")
	}
	// Serving two installs touched the dist server.
	if got, _ := s.Value("rocks_dist_package_requests_total"); got == 0 {
		t.Error("dist package counter never moved")
	}
	// In-memory database: WAL present but disabled.
	if got, _ := s.Value("rocks_db_wal_enabled"); got != 0 {
		t.Errorf("wal_enabled = %v for in-memory db", got)
	}
}

// TestDiscoveryStormMetrics integrates a 1000-node discovery storm and
// asserts on the metric deltas scraped before and after: the lifecycle bus
// must record (at least) a discovered and a bound event per machine, and
// the database's indexes must grow a key per inserted node. The storm runs
// through insert-ethers exactly as a mass rack-and-stack would.
func TestDiscoveryStormMetrics(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 64
	}
	c := newCluster(t)
	before := scrapeMetrics(t, c)
	beforeEvents, _ := before.Value("rocks_lifecycle_events_total")
	beforeKeys := before.Sum("rocks_db_index_keys")

	ie, err := c.StartInsertEthers(clusterdb.MembershipCompute, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := ie.Discover(fmt.Sprintf("02:20:00:00:%02x:%02x", i/256, i%256)); err != nil {
			t.Fatalf("discover %d: %v", i, err)
		}
	}
	ie.Stop()

	after := scrapeMetrics(t, c)
	afterEvents, _ := after.Value("rocks_lifecycle_events_total")
	afterKeys := after.Sum("rocks_db_index_keys")

	// Each discovery publishes a discovered and a bound event.
	if got, want := afterEvents-beforeEvents, float64(2*n); got < want {
		t.Errorf("lifecycle event delta = %v, want >= %v", got, want)
	}
	// Each inserted row lands in the node indexes.
	if got, want := afterKeys-beforeKeys, float64(n); got < want {
		t.Errorf("index key delta = %v, want >= %v", got, want)
	}
	// Discovery inserts database rows, not tracked node objects — the node
	// gauge must not move until the machines actually boot and install.
	beforeNodes, _ := before.Value("rocks_nodes")
	afterNodes, _ := after.Value("rocks_nodes")
	if beforeNodes != afterNodes {
		t.Errorf("rocks_nodes moved during discovery: %v -> %v", beforeNodes, afterNodes)
	}
	// The scrapes themselves exercised the registry: both parsed strictly,
	// and every family present before is still present after.
	for fam := range before.Types {
		if !after.Has(fam) {
			t.Errorf("family %s disappeared between scrapes", fam)
		}
	}
}

// TestLegacyAliasesKeepShape: the /admin endpoints keep their bespoke
// response shapes (no envelope) for old scripts.
func TestLegacyAliasesKeepShape(t *testing.T) {
	c := newCluster(t)
	code, body := adminGet(t, c, "/admin/dbstats", nil)
	if code != 200 {
		t.Fatalf("dbstats: %d", code)
	}
	if strings.Contains(body, `"data"`) {
		t.Errorf("legacy dbstats is enveloped: %.100s", body)
	}
	var stats struct {
		DB struct {
			PlanCacheHits uint64 `json:"plan_cache_hits"`
		} `json:"db"`
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("legacy dbstats undecodable: %v", err)
	}
	// And the same payload is enveloped on /v1.
	code, v1body, _ := v1Call(t, c, http.MethodGet, "/v1/dbstats", nil)
	if code != 200 || !strings.Contains(v1body, `"data"`) {
		t.Errorf("/v1/dbstats = %d %.100s", code, v1body)
	}
}

package core

import (
	"encoding/json"

	"io"
	"net/http"
	"net/url"
	"rocks/internal/clusterdb"
	"strings"
	"testing"
)

func adminGet(t *testing.T, c *Cluster, path string, params url.Values) (int, string) {
	t.Helper()
	u := c.BaseURL() + path
	if params != nil {
		u += "?" + params.Encode()
	}
	resp, err := http.Get(u)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestAdminSQL(t *testing.T) {
	c := newCluster(t)
	addComputes(t, c, 2)
	code, body := adminGet(t, c, "/admin/sql", url.Values{"q": {"SELECT name FROM nodes ORDER BY id"}})
	if code != 200 || !strings.Contains(body, "compute-0-1") {
		t.Errorf("sql: %d %q", code, body)
	}
	// Mutations rejected without exec=1.
	code, _ = adminGet(t, c, "/admin/sql", url.Values{"q": {"DELETE FROM nodes"}})
	if code != 400 {
		t.Errorf("mutation without exec: %d", code)
	}
	code, _ = adminGet(t, c, "/admin/sql", url.Values{
		"q":    {"UPDATE nodes SET comment = 'retired' WHERE name = 'compute-0-1'"},
		"exec": {"1"}})
	if code != 200 {
		t.Errorf("exec update: %d", code)
	}
	_, body = adminGet(t, c, "/admin/sql", url.Values{"q": {"SELECT comment FROM nodes WHERE name = 'compute-0-1'"}})
	if !strings.Contains(body, "retired") {
		t.Errorf("update lost: %q", body)
	}
	code, _ = adminGet(t, c, "/admin/sql", nil)
	if code != 400 {
		t.Errorf("missing q: %d", code)
	}
}

func TestAdminForkAndKill(t *testing.T) {
	c := newCluster(t)
	nodes := addComputes(t, c, 2)
	code, body := adminGet(t, c, "/admin/fork", url.Values{"cmd": {"hostname"}})
	if code != 200 {
		t.Fatalf("fork: %d %s", code, body)
	}
	var fr ForkResponse
	if err := json.Unmarshal([]byte(body), &fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Results) != 2 || fr.Results[0].Output != "compute-0-0\n" {
		t.Errorf("fork results = %+v", fr)
	}

	nodes[0].StartProcess("runaway")
	code, body = adminGet(t, c, "/admin/kill", url.Values{"process": {"runaway"}})
	if code != 200 {
		t.Fatalf("kill: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Killed != 1 {
		t.Errorf("killed = %d", fr.Killed)
	}
}

func TestAdminIntegrateAndShoot(t *testing.T) {
	c := newCluster(t)
	code, body := adminGet(t, c, "/admin/integrate", url.Values{"count": {"2"}, "wait": {"60"}})
	if code != 200 {
		t.Fatalf("integrate: %d %s", code, body)
	}
	var resp map[string][]string
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp["integrated"]) != 2 || resp["integrated"][0] != "compute-0-0" {
		t.Errorf("integrated = %v", resp)
	}

	code, body = adminGet(t, c, "/admin/shoot", url.Values{"node": {"compute-0-0"}, "watch": {"1"}})
	if code != 200 {
		t.Fatalf("shoot: %d %s", code, body)
	}
	var shoot map[string]string
	json.Unmarshal([]byte(body), &shoot)
	if shoot["ekv"] == "" {
		t.Errorf("shoot did not report an eKV address: %v", shoot)
	}
	n, _ := c.NodeByName("compute-0-0")
	if !WaitState(n, "up", integrationTimeout) {
		t.Fatalf("node stuck in %s", n.State())
	}
	if n.Installs() != 2 {
		t.Errorf("installs = %d", n.Installs())
	}

	code, _ = adminGet(t, c, "/admin/shoot", url.Values{"node": {"ghost"}})
	if code != 404 {
		t.Errorf("shooting a ghost: %d, want 404 (unknown node)", code)
	}
}

func TestAdminAddUserAndConsistency(t *testing.T) {
	c := newCluster(t)
	addComputes(t, c, 1)
	code, _ := adminGet(t, c, "/admin/adduser", url.Values{"name": {"bruno"}, "uid": {"500"}})
	if code != 200 {
		t.Fatalf("adduser: %d", code)
	}
	if _, ok := c.NIS.Lookup("bruno"); !ok {
		t.Error("user missing from NIS")
	}
	code, body := adminGet(t, c, "/admin/consistency", nil)
	if code != 200 || !strings.Contains(body, `"reference":"compute-0-0"`) {
		t.Errorf("consistency: %d %q", code, body)
	}
}

func TestAdminReinstallCluster(t *testing.T) {
	c := newCluster(t)
	nodes := addComputes(t, c, 2)
	code, body := adminGet(t, c, "/admin/reinstall-cluster", url.Values{"wait": {"60"}})
	if code != 200 {
		t.Fatalf("reinstall-cluster: %d %s", code, body)
	}
	for _, n := range nodes {
		if n.Installs() != 2 {
			t.Errorf("%s installs = %d", n.Name(), n.Installs())
		}
	}
}

func TestKickstartCGIErrors(t *testing.T) {
	c := newCluster(t)
	// Unknown IP (header set to an unregistered address) → 404.
	req, _ := http.NewRequest("GET", c.BaseURL()+"/install/kickstart.cgi", nil)
	req.Header.Set("X-Rocks-Client-IP", "10.77.77.77")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown IP: %d, want 404", resp.StatusCode)
	}
	// A membership with no appliance root (Ethernet Switches) → 403.
	if _, err := clusterdb.InsertNode(c.DB, clusterdb.Node{
		MAC: "sw:it:ch", Name: "network-0-0", Membership: clusterdb.MembershipEthernetSwitch,
		IP: "10.255.255.253"}); err != nil {
		t.Fatal(err)
	}
	req, _ = http.NewRequest("GET", c.BaseURL()+"/install/kickstart.cgi", nil)
	req.Header.Set("X-Rocks-Client-IP", "10.255.255.253")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 403 {
		t.Errorf("switch membership: %d, want 403 (no kickstartable appliance)", resp.StatusCode)
	}
	// adminAddUser without a name → 400.
	code, _ := adminGet(t, c, "/admin/adduser", nil)
	if code != 400 {
		t.Errorf("adduser without name: %d", code)
	}
	// Ping for unknown host.
	if ok, detail := c.Ping("nobody"); ok || detail != "unknown host" {
		t.Errorf("Ping(nobody) = %v %q", ok, detail)
	}
}

func TestDatabaseBackupOnFrontendDisk(t *testing.T) {
	c := newCluster(t)
	addComputes(t, c, 1)
	raw, err := c.Frontend.Disk().ReadFile("/var/db/cluster.sql")
	if err != nil {
		t.Fatal(err)
	}
	restored := clusterdb.New()
	if err := clusterdb.Restore(restored, string(raw)); err != nil {
		t.Fatal(err)
	}
	res, err := restored.Query(`SELECT name FROM nodes ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Strings()
	if len(got) != 2 || got[1] != "compute-0-0" {
		t.Errorf("backup rows = %v", got)
	}
}

package core

import (
	"strings"
	"sync"
	"time"

	"rocks/internal/clusterdb"
)

// The dbreport step (§6.4) regenerates every service configuration file
// from the database. The original tools ran it after each discovered node —
// O(N) work N times to populate a cabinet. Here WriteReports is guarded by
// the database's mutation counter so a no-op call costs two atomic reads,
// and ScheduleReports debounces bursts so K discoveries trigger one
// coalesced regeneration shortly after the burst quiets.

// reportDebounce is how long ScheduleReports waits for more mutations
// before regenerating. Long enough to swallow a burst of discoveries,
// short enough that a lone insert's reports land before anyone looks.
const reportDebounce = 2 * time.Millisecond

// reportCoalescer tracks what the last written reports reflected and the
// pending debounce timer.
type reportCoalescer struct {
	mu      sync.Mutex
	written bool  // at least one successful write recorded
	dbSeq   int64 // database ChangeSeq the written reports reflect
	quarSeq int64 // quarantine-set generation they reflect
	timer   *time.Timer
	pending bool

	// counters for ReportStats
	writes, skips, scheduled uint64

	// genMu serializes generate+write+record so a slow writer can't
	// overwrite a newer writer's files with stale content.
	genMu sync.Mutex
}

// ReportStats counts report-regeneration traffic: how many WriteReports
// calls actually regenerated, how many were answered by the change-sequence
// guard, and how many ScheduleReports requests were coalesced into timers.
type ReportStats struct {
	Writes    uint64 `json:"writes"`
	Skips     uint64 `json:"skips"`
	Scheduled uint64 `json:"scheduled"`
}

// ReportStats snapshots the coalescer's counters.
func (c *Cluster) ReportStats() ReportStats {
	c.reports.mu.Lock()
	defer c.reports.mu.Unlock()
	return ReportStats{Writes: c.reports.writes, Skips: c.reports.skips, Scheduled: c.reports.scheduled}
}

// WriteReports regenerates the service configuration files from the
// database onto the frontend's disk — the dbreport step (§6.4). It is
// change-sequence-guarded: when neither the database nor the quarantine set
// has moved since the last successful write, nothing regenerates.
func (c *Cluster) WriteReports() error {
	if !c.Frontend.Disk().Bootable() {
		return nil // frontend still installing
	}
	c.reports.genMu.Lock()
	defer c.reports.genMu.Unlock()

	// Snapshot the generations BEFORE generating: a mutation racing the
	// generation below at worst marks these reports stale and costs one
	// extra regeneration on the next call — never a silently stale file.
	dbSeq := c.DB.ChangeSeq()
	c.mu.Lock()
	quarSeq := c.quarSeq
	c.mu.Unlock()

	c.reports.mu.Lock()
	if c.reports.written && c.reports.dbSeq == dbSeq && c.reports.quarSeq == quarSeq {
		c.reports.skips++
		c.reports.mu.Unlock()
		return nil
	}
	c.reports.mu.Unlock()

	if err := c.writeReportsNow(); err != nil {
		return err
	}
	c.reports.mu.Lock()
	c.reports.written = true
	c.reports.dbSeq = dbSeq
	c.reports.quarSeq = quarSeq
	c.reports.writes++
	c.reports.mu.Unlock()
	return nil
}

// ScheduleReports requests a report regeneration soon: the first request in
// a burst arms a short timer, and every further request before it fires
// rides along. The insert-ethers hot loop calls this per discovery, turning
// K discoveries into O(K) binding deltas plus one coalesced regeneration.
func (c *Cluster) ScheduleReports() {
	c.reports.mu.Lock()
	defer c.reports.mu.Unlock()
	c.reports.scheduled++
	if c.reports.pending {
		return
	}
	if c.ctx.Err() != nil {
		return // shutting down: stopReportTimer already ran or will run
	}
	c.reports.pending = true
	c.reports.timer = time.AfterFunc(reportDebounce, func() {
		c.reports.mu.Lock()
		c.reports.pending = false
		c.reports.mu.Unlock()
		if err := c.WriteReports(); err != nil {
			c.Syslog.Log("frontend-0", "dbreport", "coalesced report regeneration: %v", err)
		}
	})
}

// FlushReports cancels any pending debounce and regenerates synchronously
// (a no-op when the reports are already current). Callers that hand control
// back to an administrator — the end of an integration batch, a CLI exit —
// use it so the files on disk match the database they just mutated.
func (c *Cluster) FlushReports() error {
	c.reports.mu.Lock()
	if c.reports.timer != nil {
		c.reports.timer.Stop()
	}
	c.reports.pending = false
	c.reports.mu.Unlock()
	return c.WriteReports()
}

// stopReportTimer kills a pending debounce without flushing (shutdown).
func (c *Cluster) stopReportTimer() {
	c.reports.mu.Lock()
	if c.reports.timer != nil {
		c.reports.timer.Stop()
	}
	c.reports.pending = false
	c.reports.mu.Unlock()
}

// writeReportsNow unconditionally regenerates every report. Callers hold
// reports.genMu.
func (c *Cluster) writeReportsNow() error {
	hosts, err := clusterdb.HostsReport(c.DB)
	if err != nil {
		return err
	}
	dhcpConf, err := clusterdb.DHCPReport(c.DB)
	if err != nil {
		return err
	}
	pbsNodes, err := clusterdb.PBSNodesReport(c.DB)
	if err != nil {
		return err
	}
	pbsNodes = c.annotateOffline(pbsNodes)
	d := c.Frontend.Disk()
	if err := d.WriteFile("/etc/hosts", []byte(hosts), 0o644); err != nil {
		return err
	}
	if err := d.WriteFile("/etc/dhcpd.conf", []byte(dhcpConf), 0o644); err != nil {
		return err
	}
	if err := d.WriteFile("/opt/pbs/server_priv/nodes", []byte(pbsNodes), 0o644); err != nil {
		return err
	}
	// Back the configuration database up alongside the reports (the
	// mysqldump a careful Rocks site cron'd); rocksql -dump reads it.
	if err := d.WriteFile("/var/db/cluster.sql", []byte(c.DB.Dump()), 0o600); err != nil {
		return err
	}
	return c.syncDHCP()
}

// annotateOffline appends the pbsnodes "offline" mark to quarantined hosts'
// lines in the PBS nodes report, so the administrator reading the file sees
// exactly which machines the supervisor pulled from service.
func (c *Cluster) annotateOffline(report string) string {
	c.mu.Lock()
	q := make(map[string]bool, len(c.quarantined))
	for h := range c.quarantined {
		q[h] = true
	}
	c.mu.Unlock()
	if len(q) == 0 {
		return report
	}
	lines := strings.Split(report, "\n")
	for i, line := range lines {
		if f := strings.Fields(line); len(f) > 0 && q[f[0]] {
			lines[i] = line + " offline"
		}
	}
	return strings.Join(lines, "\n")
}

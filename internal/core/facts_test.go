package core

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/faults"
	"rocks/internal/hardware"
	"rocks/internal/lifecycle"
	"rocks/internal/metrics"
)

// postFacts POSTs a raw JSON body to a facts endpoint and returns the
// status and body (v1Call only speaks forms).
func postFacts(t *testing.T, c *Cluster, path string, body []byte) (int, string) {
	t.Helper()
	resp, err := http.Post(c.BaseURL()+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(out)
}

func metricValue(t *testing.T, s metrics.Scrape, key string) float64 {
	t.Helper()
	v, ok := s.Value(key)
	if !ok {
		t.Fatalf("metric %s missing from /metrics", key)
	}
	return v
}

// TestFactsDriftChaosConverges is the tentpole acceptance scenario: four
// nodes integrate while a seeded injector skews what three of them report
// about their own hardware — deterministically, for a bounded number of
// reports each. The supervisor chases every actionable drift with a
// power-cycle-to-reinstall; the two recoverable machines converge to clean
// reports once their skew budget is exhausted, the machine whose drift
// outlives the retry budget is quarantined, and the drift events on the bus
// reconcile exactly against the injector's ledger — as do the rocks_facts_*
// deltas between two live /metrics scrapes.
func TestFactsDriftChaosConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node live drift chaos")
	}
	inj := faults.NewInjector(42)
	c, err := New(Config{
		Name:       "drifty",
		DHCPRetry:  2 * time.Millisecond,
		DisableEKV: true,
		Faults:     inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	profiles := make([]hardware.Profile, 4)
	for i := range profiles {
		profiles[i] = hardware.PIIICompute(c.MACs(), 733)
	}
	flipper := profiles[0].EthernetMAC() // one skewed report, then clean
	chronic := profiles[1].EthernetMAC() // two skewed reports, then clean
	lemon := profiles[2].EthernetMAC()   // skew outlives the retry budget
	clean := profiles[3].EthernetMAC()   // control: never skewed, never touched
	inj.AddRule(faults.Rule{Op: faults.OpFactsReport, Hosts: flipper, Count: 1, Mode: faults.ModeFactsSkew})
	inj.AddRule(faults.Rule{Op: faults.OpFactsReport, Hosts: chronic, Count: 2, Mode: faults.ModeFactsSkew})
	// MaxRetries is 2 below: the initial report plus one report per retry
	// exactly drains this rule as the budget runs out.
	inj.AddRule(faults.Rule{Op: faults.OpFactsReport, Hosts: lemon, Count: 3, Mode: faults.ModeFactsSkew})

	nodes, err := c.IntegrateNodes(profiles, clusterdb.MembershipCompute, 0, integrationTimeout)
	if err != nil {
		t.Fatal(err)
	}

	// Integration is complete, so every first-boot report has landed: three
	// skewed (arch + disk actionable each, MemMB 2% inside tolerance), one
	// clean. This scrape is the delta baseline.
	before := scrapeMetrics(t, c)
	if v := metricValue(t, before, "rocks_facts_reports_total"); v != 4 {
		t.Fatalf("reports after integration = %v, want 4", v)
	}
	for _, field := range []string{"arch", "disk"} {
		if v := metricValue(t, before, `rocks_facts_drift_total{field="`+field+`"}`); v != 3 {
			t.Fatalf("drift_total{%s} after integration = %v, want 3", field, v)
		}
	}
	if v := metricValue(t, before, "rocks_facts_reinstalls_total"); v != 0 {
		t.Fatalf("reinstalls before supervisor = %v, want 0", v)
	}

	sup := c.StartSupervisor(SupervisorConfig{
		Patience:    5 * time.Second, // never mistake a quick reinstall for darkness
		Interval:    10 * time.Millisecond,
		MaxRetries:  2,
		BaseBackoff: 25 * time.Millisecond,
		MaxBackoff:  200 * time.Millisecond,
		Seed:        7,
	})
	defer sup.Stop()

	// Zero manual intervention from here: the two recoverable machines must
	// report clean and be logged recovered, the lemon must exhaust the
	// budget chasing drift and be quarantined.
	waitCtx, cancelWait := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancelWait()
	for _, mac := range []string{flipper, chronic} {
		if _, err := c.Events().WaitFor(waitCtx, lifecycle.Filter{
			MAC: mac, Type: lifecycle.EventRecovered,
		}); err != nil {
			t.Fatalf("%s never recovered from drift: %v\nevents:\n%s", mac, err, sup.EventLog())
		}
	}
	if _, err := c.Events().WaitFor(waitCtx, lifecycle.Filter{
		MAC: lemon, Type: lifecycle.EventQuarantine,
	}); err != nil {
		t.Fatalf("lemon never quarantined: %v\nevents:\n%s", err, sup.EventLog())
	}
	sup.Stop()

	// The injector's ledger dried up exactly: every budgeted skew fired.
	if n := inj.CountOp(faults.OpFactsReport); n != 6 {
		t.Errorf("skewed reports = %d, want 6 (1 flipper + 2 chronic + 3 lemon)", n)
	}
	if !inj.Exhausted() {
		t.Error("skew budget never drained: count-capped rules left unconsumed")
	}

	// Supervisor accounting: every action traces to a drifting machine, the
	// reinstall counts match the skew budgets, and only the lemon was
	// quarantined.
	victims := map[string]bool{flipper: true, chronic: true, lemon: true}
	perMAC := map[string]map[EventType]int{}
	for _, e := range sup.Events() {
		if !victims[e.MAC] {
			t.Errorf("supervisor touched a healthy node: %s", e)
			continue
		}
		if perMAC[e.MAC] == nil {
			perMAC[e.MAC] = map[EventType]int{}
		}
		perMAC[e.MAC][e.Type]++
	}
	for mac, want := range map[string]int{flipper: 1, chronic: 2, lemon: 2} {
		if got := perMAC[mac][EventDriftReinstall]; got != want {
			t.Errorf("drift reinstalls for %s = %d, want %d\nevents:\n%s", mac, got, want, sup.EventLog())
		}
	}
	if perMAC[flipper][EventRecovered] != 1 || perMAC[chronic][EventRecovered] != 1 {
		t.Errorf("recoveries = %d/%d (flipper/chronic), want 1/1",
			perMAC[flipper][EventRecovered], perMAC[chronic][EventRecovered])
	}
	if perMAC[lemon][EventQuarantine] != 1 || perMAC[lemon][EventRecovered] != 0 {
		t.Errorf("lemon events = %v, want exactly 1 quarantine and no recovery", perMAC[lemon])
	}
	quarantines := c.Events().Recent(lifecycle.Filter{MAC: lemon, Type: lifecycle.EventQuarantine})
	if len(quarantines) != 1 || !strings.Contains(quarantines[0].Detail, "chasing drift") {
		t.Errorf("quarantine events = %+v, want one naming the drift chase", quarantines)
	}
	lemonName := nodes[2].Name()
	if !c.PBS.IsOffline(lemonName) {
		t.Errorf("%s not offline in PBS after drift quarantine", lemonName)
	}

	// Bus-vs-ledger reconciliation: every skewed report published exactly
	// two actionable drift events (arch and disk; the 2% MemMB skew sits
	// inside tolerance and must never appear), on a drifting machine.
	driftEvents := c.Events().Recent(lifecycle.Filter{Type: lifecycle.EventDriftDetected})
	if len(driftEvents) != 12 {
		t.Errorf("drift-detected events = %d, want 12 (2 per skewed report)", len(driftEvents))
	}
	perField := map[string]int{}
	for _, e := range driftEvents {
		if !victims[e.MAC] {
			t.Errorf("drift event on a clean node: %+v", e)
		}
		if !strings.Contains(e.Detail, "actionable=true") {
			t.Errorf("benign drift reached the timeline: %+v", e)
		}
		for _, field := range driftFields {
			if strings.HasPrefix(e.Detail, "field="+field+" ") {
				perField[field]++
			}
		}
	}
	if perField["arch"] != 6 || perField["disk"] != 6 || len(perField) != 2 {
		t.Errorf("drift events by field = %v, want exactly arch:6 disk:6", perField)
	}
	if reports := c.Events().Recent(lifecycle.Filter{Type: lifecycle.EventFactsReported}); len(reports) != 9 {
		t.Errorf("facts-reported events = %d, want 9", len(reports))
	}
	cleared := c.Events().Recent(lifecycle.Filter{Type: lifecycle.EventDriftCleared})
	if len(cleared) != 2 {
		t.Errorf("drift-cleared events = %d, want 2 (flipper and chronic)", len(cleared))
	}

	// The served inventory agrees: /v1/facts shows the lemon still carrying
	// its actionable drift and everyone else clean.
	code, body, _ := v1Call(t, c, http.MethodGet, "/v1/facts", nil)
	if code != 200 {
		t.Fatalf("/v1/facts = %d: %s", code, body)
	}
	var inv FactsResponse
	dataOf(t, body, &inv)
	if len(inv.Facts) != 4 || inv.Reports != 9 {
		t.Fatalf("inventory = %d entries / %d reports, want 4 / 9", len(inv.Facts), inv.Reports)
	}
	for _, entry := range inv.Facts {
		switch entry.MAC {
		case lemon:
			if !entry.Actionable || len(entry.Drift) != 2 {
				t.Errorf("lemon inventory entry not flagged: %+v", entry)
			}
		default:
			if entry.Actionable || len(entry.Drift) != 0 {
				t.Errorf("converged node still shows drift: %+v", entry)
			}
		}
	}
	_ = clean

	// Metrics deltas across the remediation, from live scrapes: five more
	// reports (one per reinstall plus the clean finals), three more drift
	// firings per actionable field, five supervisor-ordered reinstalls.
	after := scrapeMetrics(t, c)
	deltas := map[string]float64{
		"rocks_facts_reports_total":             5,
		`rocks_facts_drift_total{field="arch"}`: 3,
		`rocks_facts_drift_total{field="disk"}`: 3,
		"rocks_facts_reinstalls_total":          5,
	}
	for key, want := range deltas {
		got := metricValue(t, after, key) - metricValue(t, before, key)
		if got != want {
			t.Errorf("%s delta = %v, want %v", key, got, want)
		}
	}
	// The benign fields exist as series and never fired.
	for _, field := range []string{"mem_mb", "cpus", "nics"} {
		if v := metricValue(t, after, `rocks_facts_drift_total{field="`+field+`"}`); v != 0 {
			t.Errorf("drift_total{%s} = %v, want 0", field, v)
		}
	}
}

// TestFactsSurviveRecovery: facts rows ride the WAL. A frontend that
// ingested first-boot reports is restarted on the same database directory;
// the recovered inventory serves the same entries — same hardware, same
// report timestamps — without any node reporting again.
func TestFactsSurviveRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Name: "Meteor", DHCPRetry: 2 * time.Millisecond, DBDir: dir}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addComputes(t, c, 2)
	want := map[string]FactsEntry{}
	for _, e := range c.FactsInventory().Facts {
		want[e.MAC] = e
	}
	if len(want) != 2 {
		t.Fatalf("pre-restart inventory has %d entries, want 2", len(want))
	}
	c.Close()

	c2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart on %s: %v", dir, err)
	}
	defer c2.Close()
	if ri := c2.Recovery(); ri == nil || ri.Fresh {
		t.Fatalf("restart did not recover: %+v", ri)
	}
	got := c2.FactsInventory()
	if len(got.Facts) != 2 {
		t.Fatalf("recovered inventory has %d entries, want 2", len(got.Facts))
	}
	for _, e := range got.Facts {
		w, ok := want[e.MAC]
		if !ok {
			t.Errorf("recovered inventory invented %s", e.MAC)
			continue
		}
		if e.Arch != w.Arch || e.CPUs != w.CPUs || e.MemMB != w.MemMB || e.Disk != w.Disk {
			t.Errorf("recovered entry for %s = %+v, want %+v", e.MAC, e, w)
		}
		if strings.Join(e.NICs, ";") != strings.Join(w.NICs, ";") {
			t.Errorf("recovered NICs for %s = %v, want %v", e.MAC, e.NICs, w.NICs)
		}
		if !e.ReportedAt.Equal(w.ReportedAt) {
			t.Errorf("recovered report time for %s = %v, want %v", e.MAC, e.ReportedAt, w.ReportedAt)
		}
		if e.Actionable || len(e.Drift) != 0 {
			t.Errorf("recovery invented drift for %s: %+v", e.MAC, e.Drift)
		}
	}

	// A fresh report for a recovered MAC updates the row in place — no
	// duplicate inventory identity across lives.
	var anyMAC string
	for mac := range want {
		anyMAC = mac
	}
	body, _ := json.Marshal(hardware.Facts{MAC: anyMAC, Name: "reborn", Arch: "i386", CPUs: 1, MemMB: 512})
	if code, resp := postFacts(t, c2, "/v1/facts", body); code != 200 {
		t.Fatalf("re-report after recovery = %d: %s", code, resp)
	}
	if inv := c2.FactsInventory(); len(inv.Facts) != 2 {
		t.Errorf("re-report duplicated an identity: %d entries", len(inv.Facts))
	}
}

// TestFactsEndpointValidation exercises the /v1/facts surface directly:
// the GET inventory (and its legacy /admin alias), drift detection and
// clearing through bare POSTs, and the rejection paths.
func TestFactsEndpointValidation(t *testing.T) {
	c := newCluster(t)
	n := addComputes(t, c, 1)[0]

	code, body, _ := v1Call(t, c, http.MethodGet, "/v1/facts", nil)
	if code != 200 {
		t.Fatalf("/v1/facts = %d: %s", code, body)
	}
	var inv FactsResponse
	dataOf(t, body, &inv)
	if len(inv.Facts) != 1 || inv.Facts[0].MAC != n.MAC() {
		t.Fatalf("inventory = %+v, want the one integrated node", inv)
	}
	if inv.Facts[0].Actionable || len(inv.Facts[0].Drift) != 0 || inv.Facts[0].AgeSeconds < 0 {
		t.Errorf("first-boot entry not clean: %+v", inv.Facts[0])
	}

	// The legacy alias serves the same inventory, unwrapped.
	code, legacy := adminGet(t, c, "/admin/facts", nil)
	if code != 200 {
		t.Fatalf("/admin/facts = %d: %s", code, legacy)
	}
	var legacyInv FactsResponse
	if err := json.Unmarshal([]byte(legacy), &legacyInv); err != nil {
		t.Fatalf("legacy facts body: %v\n%s", err, legacy)
	}
	if len(legacyInv.Facts) != 1 || legacyInv.Facts[0].MAC != n.MAC() {
		t.Errorf("legacy inventory diverges: %+v", legacyInv)
	}

	// A report with the wrong architecture is recorded and flagged.
	bad := hardware.FactsFromProfile(n.HW, n.MAC(), n.Name())
	bad.Arch = "ia64"
	raw, _ := json.Marshal(bad)
	if code, resp := postFacts(t, c, "/v1/facts", raw); code != 200 {
		t.Fatalf("drift report = %d: %s", code, resp)
	}
	_, body, _ = v1Call(t, c, http.MethodGet, "/v1/facts", nil)
	var drifted FactsResponse
	dataOf(t, body, &drifted)
	if !drifted.Facts[0].Actionable || len(drifted.Facts[0].Drift) != 1 || drifted.Facts[0].Drift[0].Field != "arch" {
		t.Fatalf("drift not served: %+v", drifted.Facts[0])
	}
	if evs := c.Events().Recent(lifecycle.Filter{Type: lifecycle.EventDriftDetected}); len(evs) != 1 {
		t.Errorf("drift-detected events = %d, want 1", len(evs))
	}

	// A clean re-report clears it, with a drift-cleared event.
	raw, _ = json.Marshal(hardware.FactsFromProfile(n.HW, n.MAC(), n.Name()))
	if code, resp := postFacts(t, c, "/v1/facts", raw); code != 200 {
		t.Fatalf("clean report = %d: %s", code, resp)
	}
	_, body, _ = v1Call(t, c, http.MethodGet, "/v1/facts", nil)
	var clearedInv FactsResponse
	dataOf(t, body, &clearedInv)
	if clearedInv.Facts[0].Actionable || len(clearedInv.Facts[0].Drift) != 0 {
		t.Errorf("drift not cleared: %+v", clearedInv.Facts[0])
	}
	if evs := c.Events().Recent(lifecycle.Filter{Type: lifecycle.EventDriftCleared}); len(evs) != 1 {
		t.Errorf("drift-cleared events = %d, want 1", len(evs))
	}

	// Rejection paths: no MAC, unparseable body, unregistered shard.
	cases := []struct {
		name, path, body, code string
		status                 int
	}{
		{"no-mac", "/v1/facts", `{"arch":"i386"}`, "missing_parameter", 400},
		{"bad-body", "/v1/facts", `{`, "bad_body", 400},
		{"unknown-shard", "/v1/facts?shard=nope", string(raw), "unknown_shard", 404},
	}
	for _, tc := range cases {
		code, resp := postFacts(t, c, tc.path, []byte(tc.body))
		if code != tc.status {
			t.Errorf("%s: status = %d, want %d: %s", tc.name, code, tc.status, resp)
			continue
		}
		if e := errorOf(t, resp); e.Code != tc.code {
			t.Errorf("%s: error code = %q, want %q", tc.name, e.Code, tc.code)
		}
	}
}

// TestFederationFactsForwarding: a node reporting to a child frontend shows
// up in the parent's merged inventory under the child's shard name, with no
// drift verdict re-derived (the parent has no expected profile for another
// frontend's nodes), and the child's federation view counts the relay.
func TestFederationFactsForwarding(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-frontend live integration")
	}
	parent := newFedCluster(t, "HQ")
	child := newChildCluster(t, parent, "deptA:0-3")
	n := addComputes(t, child, 1)[0]

	// The child's own view is first-hand: no shard stamp.
	cInv := child.FactsInventory()
	if len(cInv.Facts) != 1 || cInv.Facts[0].Shard != "" {
		t.Fatalf("child inventory = %+v, want one unstamped entry", cInv.Facts)
	}

	// The forward is asynchronous; the parent's view converges.
	var got *FactsEntry
	deadline := time.Now().Add(30 * time.Second)
	for got == nil && time.Now().Before(deadline) {
		inv := parent.FactsInventory()
		for i := range inv.Facts {
			if inv.Facts[i].MAC == n.MAC() {
				got = &inv.Facts[i]
			}
		}
		if got == nil {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if got == nil {
		t.Fatal("forwarded facts never reached the parent")
	}
	if got.Shard != "deptA" {
		t.Errorf("forwarded entry shard = %q, want deptA", got.Shard)
	}
	if got.Actionable || len(got.Drift) != 0 {
		t.Errorf("parent re-diffed a forwarded report: %+v", got)
	}
	if got.Arch != n.HW.Arch || got.MemMB != n.HW.MemMB {
		t.Errorf("forwarded hardware diverges: %+v vs %+v", got, n.HW)
	}

	code, body, _ := v1Call(t, child, http.MethodGet, "/v1/federation", nil)
	if code != 200 {
		t.Fatalf("child /v1/federation = %d", code)
	}
	var fed FederationResponse
	dataOf(t, body, &fed)
	if fed.FactsForwarded == 0 {
		t.Errorf("child counted no forwarded facts: %+v", fed)
	}
	if fed.FactsForwardErrors != 0 {
		t.Errorf("facts forward errors = %d, want 0", fed.FactsForwardErrors)
	}
}

// TestFederationDarkChildStaleScrape: when a child goes dark, the parent's
// /metrics keeps serving the child's last successful exposition instead of
// letting its series vanish, flags the shard down, and ages the staleness
// on rocks_federation_child_last_scrape_seconds — the alerting handle.
func TestFederationDarkChildStaleScrape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-frontend live integration")
	}
	parent := newFedCluster(t, "HQ")
	child := newChildCluster(t, parent, "deptA")

	// First scrape primes the stale cache; the second serves an aged gauge
	// (the exposition is rendered before the per-request child scrape).
	s := scrapeMetrics(t, parent)
	if v, ok := s.Value(`rocks_nodes{shard="deptA"}`); !ok || v != 1 {
		t.Fatalf(`live rocks_nodes{shard="deptA"} = %v (ok=%v), want 1`, v, ok)
	}
	s = scrapeMetrics(t, parent)
	if v, ok := s.Value(`rocks_federation_child_last_scrape_seconds{shard="deptA"}`); !ok || v < 0 {
		t.Fatalf("last_scrape_seconds = %v (ok=%v), want a non-negative age", v, ok)
	}

	child.Close()

	// The first post-mortem scrape fails the child fetch and falls back to
	// the cache; the one after also reflects the dark mark in the parent's
	// own families.
	s = scrapeMetrics(t, parent)
	if v, ok := s.Value(`rocks_nodes{shard="deptA"}`); !ok || v != 1 {
		t.Errorf(`stale rocks_nodes{shard="deptA"} = %v (ok=%v), want the cached 1`, v, ok)
	}
	s = scrapeMetrics(t, parent)
	if v, ok := s.Value(`rocks_federation_child_up{shard="deptA"}`); !ok || v != 0 {
		t.Errorf("child_up with a dark child = %v (ok=%v), want 0", v, ok)
	}
	if v, ok := s.Value(`rocks_federation_child_last_scrape_seconds{shard="deptA"}`); !ok || v <= 0 {
		t.Errorf("staleness age with a dark child = %v (ok=%v), want > 0", v, ok)
	}
	if v, ok := s.Value(`rocks_nodes{shard="deptA"}`); !ok || v != 1 {
		t.Errorf("stale exposition vanished on the second dark scrape: %v (ok=%v)", v, ok)
	}
}

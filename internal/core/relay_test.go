package core

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/faults"
	"rocks/internal/hardware"
	"rocks/internal/lifecycle"
	"rocks/internal/node"
	"rocks/internal/rpm"
)

// newRelayCluster builds a cluster with the peer distribution tier on.
func newRelayCluster(t *testing.T, inj *faults.Injector) *Cluster {
	t.Helper()
	c, err := New(Config{
		Name:                "relay",
		DHCPRetry:           2 * time.Millisecond,
		DisableEKV:          true,
		EnableRelays:        true,
		Faults:              inj,
		InstallRetries:      2,
		InstallRetryBackoff: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// waitRelayEvent blocks until an event of the given type exists for the node
// (by hostname or MAC) past the given sequence.
func waitRelayEvent(t *testing.T, c *Cluster, typ lifecycle.EventType, nodeID string, since uint64) lifecycle.Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	e, err := c.Events().WaitFor(ctx, lifecycle.Filter{Type: typ, Node: nodeID, SinceSeq: since})
	if err != nil {
		t.Fatalf("waiting for %s of %s: %v", typ, nodeID, err)
	}
	return e
}

// TestRelayDistribution drives the tentpole end to end on live services:
// the first integrated node becomes a relay after install-complete, later
// installers fetch packages from it (peer bytes dominate the frontend for
// those installs), /v1/relays lists it, the relay metrics advance, and a
// reinstall withdraws the relay before the node's tree is wiped.
func TestRelayDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node live integration")
	}
	c := newRelayCluster(t, nil)

	// First node: installs frontend-only (no relays live yet), then is
	// promoted to a relay.
	first := addComputes(t, c, 1)[0]
	up := waitRelayEvent(t, c, lifecycle.EventRelayUp, first.Name(), 0)
	if !strings.Contains(up.Detail, "serving") {
		t.Errorf("relay-up detail = %q", up.Detail)
	}
	if got := c.installStats.PeerFetches.Load(); got != 0 {
		t.Errorf("first install used %d peer fetches, want 0", got)
	}

	// Later nodes should pull their packages from the peer.
	addComputes(t, c, 3)
	peerFetches := c.installStats.PeerFetches.Load()
	peerBytes := c.installStats.PeerBytes.Load()
	if peerFetches == 0 || peerBytes == 0 {
		t.Fatalf("later installs fetched nothing from peers (fetches=%d bytes=%d)",
			peerFetches, peerBytes)
	}
	reqs, bytes := c.relays.serveTotals()
	if reqs == 0 || bytes == 0 {
		t.Errorf("relay serve totals = %d reqs %d bytes, want > 0", reqs, bytes)
	}

	// /v1/relays lists live peers.
	code, body, _ := v1Call(t, c, http.MethodGet, "/v1/relays", nil)
	if code != 200 {
		t.Fatalf("/v1/relays = %d: %s", code, body)
	}
	var rr RelaysResponse
	dataOf(t, body, &rr)
	if rr.Live == 0 || len(rr.Sources) == 0 {
		t.Fatalf("registry empty after 4 installs: %+v", rr)
	}
	for _, s := range rr.Sources {
		if s.Kind != "peer" || s.URL == "" || s.Node == "" {
			t.Errorf("malformed source %+v", s)
		}
	}

	// The relay tier is visible on /metrics.
	s := scrapeMetrics(t, c)
	if v, _ := s.Value("rocks_dist_relays"); v == 0 {
		t.Error("rocks_dist_relays = 0")
	}
	if v, _ := s.Value("rocks_dist_relay_package_bytes_total"); v == 0 {
		t.Error("rocks_dist_relay_package_bytes_total = 0")
	}
	if v, _ := s.Value(`rocks_installer_fetch_bytes_total{source="peer"}`); v == 0 {
		t.Error(`rocks_installer_fetch_bytes_total{source="peer"} = 0`)
	}
	for _, fam := range []string{
		"rocks_installer_fetch_seconds", "rocks_installer_install_seconds",
	} {
		if s.Types[fam] != "histogram" {
			t.Errorf("%s exposed as %q, want histogram", fam, s.Types[fam])
		}
	}

	// Reinstalling the relay node withdraws it: the lease event fires before
	// the package phase, so peers are never pointed at a tree being wiped.
	since := c.Events().Seq()
	if err := c.ShootNode(first.Name()); err != nil {
		t.Fatal(err)
	}
	down := waitRelayEvent(t, c, lifecycle.EventRelayDown, first.Name(), since)
	if down.Detail != "reinstalling" {
		t.Errorf("relay-down detail = %q", down.Detail)
	}
	if !WaitState(first, node.StateUp, integrationTimeout) {
		t.Fatalf("reinstalled relay node stuck in %s", first.State())
	}
	// And it comes back as a relay after the reinstall completes.
	waitRelayEvent(t, c, lifecycle.EventRelayUp, first.Name(), since)
}

// TestRelayCorruptPeerDemoted proves the trustless-peer contract: a peer
// whose responses arrive corrupt is demoted mid-install (auditable in the
// event log, attributed to the peer's URL), the fetch falls back to the
// frontend, the install still converges, and every injected corruption is
// accounted for by a detected discard — zero verification escapes.
func TestRelayCorruptPeerDemoted(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node live chaos integration")
	}
	inj := faults.NewInjector(7)
	c := newRelayCluster(t, inj)

	relayNode := addComputes(t, c, 1)[0]
	waitRelayEvent(t, c, lifecycle.EventRelayUp, relayNode.Name(), 0)

	// Start the victim and wait until its package phase is underway (its
	// listing fetch is done once the first package lands), then corrupt its
	// next package fetch — which goes to the peer, the preferred source.
	victim := node.New(hardware.PIIICompute(c.MACs(), 733))
	ie, err := c.StartInsertEthers(clusterdb.MembershipCompute, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ie.Stop()
	c.PowerOn(victim)
	deadline := time.Now().Add(integrationTimeout)
	for victim.PackageDB().Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("victim never started installing packages (state %s)", victim.State())
		}
		time.Sleep(time.Millisecond)
	}
	inj.AddRule(faults.Rule{
		Op: faults.OpHTTPPackage, Hosts: victim.MAC(), Count: 1, Mode: faults.ModeCorrupt,
	})
	if !WaitState(victim, node.StateUp, integrationTimeout) {
		t.Fatalf("victim stuck in %s after peer demotion", victim.State())
	}

	if got := c.installStats.PeerDemotions.Load(); got != 1 {
		t.Errorf("peer demotions = %d, want 1", got)
	}
	// Every injected corruption was detected and discarded — the
	// injector's ledger and the installer's corrupt counter reconcile.
	injected := uint64(inj.CountOp(faults.OpHTTPPackage))
	if caught := c.installStats.PackagesCorrupt.Load(); caught != injected {
		t.Errorf("injected %d corruptions, caught %d", injected, caught)
	}
	// The demotion is auditable: the event names the peer's URL.
	demoted := c.Events().Recent(lifecycle.Filter{Type: lifecycle.EventRelayDemoted})
	if len(demoted) != 1 {
		t.Fatalf("relay-demoted events = %d, want 1", len(demoted))
	}
	if !strings.Contains(demoted[0].Detail, "peer http://") {
		t.Errorf("demotion not attributed to peer URL: %q", demoted[0].Detail)
	}
	// The package-corrupt event also names the serving source.
	corrupt := c.Events().Recent(lifecycle.Filter{Type: lifecycle.EventPackageCorrupt})
	if len(corrupt) == 0 || !strings.Contains(corrupt[0].Detail, "source: peer") {
		t.Errorf("package-corrupt events lack source attribution: %+v", corrupt)
	}
}

// TestRelayRackAwareSources: an installer that identifies itself (its MAC
// resolves to a rack via the nodes table) is offered same-rack relays
// first, and the same/cross-rack counters account for every source handed
// out. A rack-blind request leaves the counters alone.
func TestRelayRackAwareSources(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node live integration")
	}
	c := newRelayCluster(t, nil)
	integrate := func(rack, n int) []*node.Node {
		t.Helper()
		profiles := make([]hardware.Profile, n)
		for i := range profiles {
			profiles[i] = hardware.PIIICompute(c.MACs(), 733)
		}
		nodes, err := c.IntegrateNodes(profiles, clusterdb.MembershipCompute, rack, integrationTimeout)
		if err != nil {
			t.Fatal(err)
		}
		return nodes
	}
	rack0 := integrate(0, 2)
	rack1 := integrate(1, 2)
	for _, n := range append(append([]*node.Node{}, rack0...), rack1...) {
		waitRelayEvent(t, c, lifecycle.EventRelayUp, n.Name(), 0)
	}
	inRack0 := map[string]bool{rack0[0].Name(): true, rack0[1].Name(): true}

	sameBefore := c.relays.sameRack.Load()
	crossBefore := c.relays.crossRack.Load()

	// Rack-blind: no counters move, plain rotation.
	code, body, _ := v1Call(t, c, http.MethodGet, "/v1/relays", nil)
	if code != 200 {
		t.Fatalf("/v1/relays = %d", code)
	}
	if c.relays.sameRack.Load() != sameBefore || c.relays.crossRack.Load() != crossBefore {
		t.Error("rack-blind request moved the rack counters")
	}

	// Asking as a rack-0 machine puts both rack-0 relays ahead of rack-1.
	code, body, _ = v1Call(t, c, http.MethodGet, "/v1/relays",
		url.Values{"mac": {rack0[0].MAC()}})
	if code != 200 {
		t.Fatalf("/v1/relays?mac= = %d: %s", code, body)
	}
	var rr RelaysResponse
	dataOf(t, body, &rr)
	if len(rr.Sources) != 4 {
		t.Fatalf("sources = %d, want 4", len(rr.Sources))
	}
	for i, s := range rr.Sources {
		if want := i < 2; inRack0[s.Node] != want {
			t.Errorf("source[%d] = %s; same-rack relays must lead the list", i, s.Node)
		}
	}
	if got := c.relays.sameRack.Load() - sameBefore; got != 2 {
		t.Errorf("same-rack counter moved %d, want 2", got)
	}
	if got := c.relays.crossRack.Load() - crossBefore; got != 2 {
		t.Errorf("cross-rack counter moved %d, want 2", got)
	}

	// An explicit rack parameter works without a MAC, and the preference
	// is visible on /metrics.
	code, body, _ = v1Call(t, c, http.MethodGet, "/v1/relays", url.Values{"rack": {"1"}})
	if code != 200 {
		t.Fatalf("/v1/relays?rack=1 = %d", code)
	}
	dataOf(t, body, &rr)
	if len(rr.Sources) == 0 || inRack0[rr.Sources[0].Node] {
		t.Errorf("rack=1 request led with %+v, want a rack-1 relay", rr.Sources)
	}
	s := scrapeMetrics(t, c)
	if v, _ := s.Value("rocks_dist_relay_same_rack_total"); v == 0 {
		t.Error("rocks_dist_relay_same_rack_total never moved")
	}
	if v, _ := s.Value("rocks_dist_relay_cross_rack_total"); v == 0 {
		t.Error("rocks_dist_relay_cross_rack_total never moved")
	}
}

// TestRelayRegistryChurn hammers the registry's expect→promote→withdraw
// cycle from concurrent goroutines (run under -race in CI) and asserts the
// invariant installers depend on: a withdrawn relay is never handed out.
func TestRelayRegistryChurn(t *testing.T) {
	c := newRelayCluster(t, nil)
	reg := c.relays
	pkg := c.Dist.Repo.All()[0]

	const workers, cycles = 3, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mac := fmt.Sprintf("02:ee:00:00:00:%02x", w)
			name := fmt.Sprintf("churn-%d-0", w)
			for i := 0; i < cycles; i++ {
				store := rpm.NewRepository("churn")
				store.Add(pkg)
				reg.expect(mac, store)
				reg.promote(mac, name)
				reg.withdraw(mac, "reinstalling")
				// The instant withdraw returns, this relay must be out of
				// rotation — an installer asking now may not receive it.
				for _, s := range reg.sources(-1) {
					if s.Node == name {
						t.Errorf("withdrawn relay %s handed out", name)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := reg.liveCount(); got != 0 {
		t.Errorf("live relays after full churn = %d, want 0", got)
	}
	if srcs := reg.sources(-1); srcs != nil {
		t.Errorf("empty registry handed out %+v", srcs)
	}
	if s, wd := reg.started.Load(), reg.withdrawn.Load(); s != workers*cycles || wd != workers*cycles {
		t.Errorf("started=%d withdrawn=%d, want %d each", s, wd, workers*cycles)
	}
}

package core

import (
	"sync"
	"testing"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/hardware"
	"rocks/internal/node"
)

// TestScaleSixteenNodes integrates a full cabinet of 16 nodes on the live
// plane (real HTTP, real DHCP exchanges, 162 real package fetches each) and
// verifies the §3.2 questions all have answers: every node up, every
// manifest identical, PBS seeing every mom, and one SQL query accounting
// for the whole cluster.
func TestScaleSixteenNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("16-node live integration")
	}
	c, err := New(Config{
		Name:       "scale",
		DHCPRetry:  2 * time.Millisecond,
		DisableEKV: true, // 16 concurrent TCP screens add nothing here
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ie, err := c.StartInsertEthers(clusterdb.MembershipCompute, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ie.Stop()

	const n = 16
	nodes := make([]*node.Node, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		nodes[i] = node.New(hardware.PIIICompute(c.MACs(), 733))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.PowerOn(nodes[i])
		}(i)
	}
	wg.Wait()
	for i, nd := range nodes {
		if !WaitState(nd, node.StateUp, 2*time.Minute) {
			t.Fatalf("node %d (%s) stuck in %s", i, nd.MAC(), nd.State())
		}
	}

	// One query accounts for the whole machine.
	res, err := c.DB.Query(`SELECT COUNT(*) FROM nodes, memberships
		WHERE nodes.membership = memberships.id AND memberships.compute = 'yes'`)
	if err != nil || res.Rows[0][0].Int != n {
		t.Fatalf("compute count = %v, %v", res, err)
	}
	// All moms registered.
	if got := len(c.PBS.Moms()); got != n {
		t.Errorf("moms = %d", got)
	}
	// Byte-identical manifests across all 16.
	ref, divergent, err := c.ConsistencyReport()
	if err != nil || len(divergent) != 0 {
		t.Errorf("consistency: ref=%s divergent=%v err=%v", ref, divergent, err)
	}
	// Unique identities.
	seen := map[string]bool{}
	for _, nd := range nodes {
		key := nd.Name() + "/" + nd.IP()
		if seen[key] {
			t.Errorf("duplicate identity %s", key)
		}
		seen[key] = true
		if nd.PackageDB().Len() != 162 {
			t.Errorf("%s has %d packages", nd.Name(), nd.PackageDB().Len())
		}
	}
	// Fork across all 16 at once.
	results, err := c.Fork("", "rpm -q glibc")
	if err != nil || len(results) != n {
		t.Fatalf("fork: %d results, %v", len(results), err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Host, r.Err)
		}
	}
}

package core

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/hardware"
	"rocks/internal/installer"
	"rocks/internal/kickstart"
	"rocks/internal/node"
)

// TestScaleSixteenNodes integrates a full cabinet of 16 nodes on the live
// plane (real HTTP, real DHCP exchanges, 162 real package fetches each) and
// verifies the §3.2 questions all have answers: every node up, every
// manifest identical, PBS seeing every mom, and one SQL query accounting
// for the whole cluster.
func TestScaleSixteenNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("16-node live integration")
	}
	c, err := New(Config{
		Name:       "scale",
		DHCPRetry:  2 * time.Millisecond,
		DisableEKV: true, // 16 concurrent TCP screens add nothing here
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ie, err := c.StartInsertEthers(clusterdb.MembershipCompute, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ie.Stop()

	const n = 16
	nodes := make([]*node.Node, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		nodes[i] = node.New(hardware.PIIICompute(c.MACs(), 733))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.PowerOn(nodes[i])
		}(i)
	}
	wg.Wait()
	for i, nd := range nodes {
		if !WaitState(nd, node.StateUp, 2*time.Minute) {
			t.Fatalf("node %d (%s) stuck in %s", i, nd.MAC(), nd.State())
		}
	}

	// One query accounts for the whole machine.
	res, err := c.DB.Query(`SELECT COUNT(*) FROM nodes, memberships
		WHERE nodes.membership = memberships.id AND memberships.compute = 'yes'`)
	if err != nil || res.Rows[0][0].Int != n {
		t.Fatalf("compute count = %v, %v", res, err)
	}
	// All moms registered.
	if got := len(c.PBS.Moms()); got != n {
		t.Errorf("moms = %d", got)
	}
	// Byte-identical manifests across all 16.
	ref, divergent, err := c.ConsistencyReport()
	if err != nil || len(divergent) != 0 {
		t.Errorf("consistency: ref=%s divergent=%v err=%v", ref, divergent, err)
	}
	// Unique identities.
	seen := map[string]bool{}
	for _, nd := range nodes {
		key := nd.Name() + "/" + nd.IP()
		if seen[key] {
			t.Errorf("duplicate identity %s", key)
		}
		seen[key] = true
		if nd.PackageDB().Len() != 162 {
			t.Errorf("%s has %d packages", nd.Name(), nd.PackageDB().Len())
		}
	}
	// Fork across all 16 at once.
	results, err := c.Fork("", "rpm -q glibc")
	if err != nil || len(results) != n {
		t.Fatalf("fork: %d results, %v", len(results), err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Host, r.Err)
		}
	}
}

// TestMassReinstallLoad simulates the paper's worst hour — every compute
// node reinstalling at once — without full installer state machines: 32
// registered nodes hammer kickstart.cgi and the dist tree concurrently,
// then the graph is edited and the storm repeats. Every post-edit profile
// must carry the new package (the cache may never serve stale), and the
// storm must have been served mostly from cache.
func TestMassReinstallLoad(t *testing.T) {
	c, err := New(Config{
		Name:       "load",
		DHCPRetry:  2 * time.Millisecond,
		DisableEKV: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 32
	names := make([]string, n)
	ips := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("compute-9-%d", i)
		ips[i] = fmt.Sprintf("10.255.250.%d", i)
		if _, err := clusterdb.InsertNode(c.DB, clusterdb.Node{
			MAC: fmt.Sprintf("02:00:00:00:01:%02x", i), Name: names[i],
			Membership: clusterdb.MembershipCompute, Rack: 9, Rank: i, IP: ips[i],
		}); err != nil {
			t.Fatal(err)
		}
	}

	client := &http.Client{Timeout: 30 * time.Second}
	storm := func(wantPackage string) error {
		errc := make(chan error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				req, _ := http.NewRequest("GET", c.BaseURL()+"/install/kickstart.cgi", nil)
				req.Header.Set(installer.ClientIPHeader, ips[i])
				resp, err := client.Do(req)
				if err != nil {
					errc <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("%s: HTTP %d: %s", names[i], resp.StatusCode, body)
					return
				}
				text := string(body)
				if !strings.Contains(text, "# Kickstart file for "+names[i]) {
					errc <- fmt.Errorf("%s: profile not personalized", names[i])
					return
				}
				profile, err := kickstart.ParseProfile(text)
				if err != nil {
					errc <- fmt.Errorf("%s: unparseable profile: %v", names[i], err)
					return
				}
				if wantPackage != "" {
					found := false
					for _, pkg := range profile.Packages {
						if pkg == wantPackage {
							found = true
						}
					}
					if !found {
						errc <- fmt.Errorf("%s: stale profile, %s missing", names[i], wantPackage)
						return
					}
				}
				// Each node also pulls a package from the dist tree, the
				// other half of the reinstall load.
				p := profile.Packages[i%len(profile.Packages)]
				pkg := c.Dist.Repo.Newest(p, "i386")
				if pkg == nil {
					return
				}
				resp2, err := client.Get(c.BaseURL() + "/install/dist/RedHat/RPMS/" + pkg.Filename())
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp2.Body)
				resp2.Body.Close()
				if resp2.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("dist fetch %s: HTTP %d", pkg.Filename(), resp2.StatusCode)
				}
			}(i)
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			return err
		}
		return nil
	}

	if err := storm(""); err != nil {
		t.Fatal(err)
	}

	// Sequenced graph edit between storms: add a module under compute. No
	// request issued after this line may ever see a profile without it.
	fw := c.Dist.Framework
	fw.AddNode(&kickstart.NodeFile{Name: "load-extra",
		Packages: []kickstart.PackageRef{{Name: "load-extra-pkg"}}})
	fw.Graph.AddEdge("compute", "load-extra")

	if err := storm("load-extra-pkg"); err != nil {
		t.Fatal(err)
	}

	hits, misses, invalidations := c.KickstartCacheStats()
	if hits == 0 {
		t.Error("mass reinstall never hit the profile cache")
	}
	if invalidations == 0 {
		t.Error("graph edit did not invalidate the cache")
	}
	t.Logf("cache: %d hits, %d misses, %d invalidations", hits, misses, invalidations)

	// Every storm request was timed on the CGI latency histogram: two
	// storms of n requests each (plus the frontend's own bootstrap render)
	// must show up in the _count series, and the exposition stays a valid
	// histogram under the strict parser.
	s := scrapeMetrics(t, c)
	if s.Types["rocks_kickstart_cgi_seconds"] != "histogram" {
		t.Errorf("rocks_kickstart_cgi_seconds exposed as %q, want histogram",
			s.Types["rocks_kickstart_cgi_seconds"])
	}
	if count, _ := s.Value("rocks_kickstart_cgi_seconds_count"); count < float64(2*n) {
		t.Errorf("cgi histogram count = %v, want >= %d", count, 2*n)
	}
	if sum, _ := s.Value("rocks_kickstart_cgi_seconds_sum"); sum <= 0 {
		t.Error("cgi histogram sum never moved")
	}
}

package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rocks/internal/apiclient"
	"rocks/internal/clusterdb"
	"rocks/internal/dist"
	"rocks/internal/federation"
	"rocks/internal/hardware"
	"rocks/internal/lifecycle"
)

// The federated frontend hierarchy makes the management plane match the
// distribution plane (§6.2): a child frontend is a full Cluster that
// mirrors its parent's distribution (a very durable relay), registers the
// shard of the node population it owns over /v1/federation/register, and
// forwards its lifecycle events upstream. The parent's query plane —
// /v1/nodes, /v1/events, /v1/dbreport, /metrics — fans out to children,
// merges shard results with per-shard provenance, and tolerates a dark
// child by flagging partial results instead of failing. Re-mirrors
// cascade: POST /v1/federation/remirror at the top re-mirrors every level
// against its parent with the delta baseline, so an unchanged tree moves
// zero package bodies anywhere.

// Cluster roles. A mid-tier frontend in a three-level hierarchy has both
// a parent and children; Role reports "child" for it (the parent URL is
// what shapes its behavior), and /v1/federation exposes both sides.
const (
	RoleStandalone = "standalone"
	RoleParent     = "parent"
	RoleChild      = "child"
)

// fedMirrorRing bounds the forwarded-event mirror the parent keeps per
// child — the stale fallback served when that child goes dark.
const fedMirrorRing = 4096

// defaultFederationTimeout bounds each parent→child fan-out request; a
// dark child must cost one bounded wait, not a hung merged query.
const defaultFederationTimeout = 2 * time.Second

// fedState is a cluster's federation half: its own shard declaration, the
// upstream link when it is a child, and the downstream registry when it
// is a parent. Always constructed (cheap when unused) so every query path
// can consult it without nil checks.
type fedState struct {
	c         *Cluster
	shard     federation.Shard
	parentURL string
	client    *http.Client // bounded client for all federation HTTP

	mu        sync.Mutex
	forwarder *lifecycle.Forwarder // child-side upstream stream; nil otherwise
	children  map[string]*fedChild // by shard name

	received      atomic.Uint64 // events ingested from children
	registrations atomic.Uint64
	fanoutErrors  atomic.Uint64 // failed child fetches across fan-outs
	deduped       atomic.Uint64 // duplicates dropped by merged queries

	factsForwarded     atomic.Uint64 // facts reports relayed upstream
	factsForwardErrors atomic.Uint64 // upstream facts relays that failed
}

// fedChild is one registered child frontend.
type fedChild struct {
	shard      federation.Shard
	url        string
	client     *apiclient.Client
	registered time.Time

	mu        sync.Mutex
	lastSeen  time.Time
	forwarded uint64
	lastSeq   uint64
	dark      bool
	mirror    []lifecycle.Event // bounded ring of forwarded events, shard-stamped
	// Last successful /metrics exposition and when it was scraped: the
	// stale fallback a merged scrape serves while the child is dark, aged
	// by rocks_federation_child_last_scrape_seconds.
	lastExpo   string
	lastExpoAt time.Time
}

func newFedState(c *Cluster) *fedState {
	timeout := c.cfg.FederationTimeout
	if timeout <= 0 {
		timeout = defaultFederationTimeout
	}
	return &fedState{
		c:         c,
		shard:     c.cfg.Shard,
		parentURL: strings.TrimSuffix(c.cfg.Parent, "/"),
		client:    &http.Client{Timeout: timeout},
		children:  make(map[string]*fedChild),
	}
}

// Role reports how this frontend participates in the hierarchy.
func (c *Cluster) Role() string {
	if c.fed.parentURL != "" {
		return RoleChild
	}
	if len(c.fed.childSnapshot()) > 0 {
		return RoleParent
	}
	return RoleStandalone
}

// Shard returns this frontend's shard declaration.
func (c *Cluster) Shard() federation.Shard { return c.fed.shard }

// childSnapshot returns the registered children sorted by shard name —
// the deterministic fan-out order every merged query uses.
func (f *fedState) childSnapshot() []*fedChild {
	f.mu.Lock()
	out := make([]*fedChild, 0, len(f.children))
	for _, ch := range f.children {
		out = append(out, ch)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].shard.Name < out[j].shard.Name })
	return out
}

// markResult records a fan-out attempt's outcome on the child.
func (ch *fedChild) markResult(ok bool) {
	ch.mu.Lock()
	ch.dark = !ok
	if ok {
		ch.lastSeen = time.Now()
	}
	ch.mu.Unlock()
}

// ingest appends forwarded events to the child's bounded mirror.
func (ch *fedChild) ingest(events []lifecycle.Event) {
	ch.mu.Lock()
	for _, e := range events {
		if e.Shard == "" {
			e.Shard = ch.shard.Name
		}
		if e.Shard == ch.shard.Name && e.Seq > ch.lastSeq {
			ch.lastSeq = e.Seq
		}
		ch.mirror = append(ch.mirror, e)
	}
	if over := len(ch.mirror) - fedMirrorRing; over > 0 {
		ch.mirror = append(ch.mirror[:0], ch.mirror[over:]...)
	}
	ch.forwarded += uint64(len(events))
	ch.lastSeen = time.Now()
	ch.dark = false
	ch.mu.Unlock()
}

// mirrorEvents returns the child's forwarded history matching the filter
// — the stale view a merged query falls back to when the child is dark.
func (ch *fedChild) mirrorEvents(f lifecycle.Filter, nodeID string, limit int) []lifecycle.Event {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	var out []lifecycle.Event
	for _, e := range ch.mirror {
		if nodeID != "" && e.Node != nodeID && e.MAC != nodeID {
			continue
		}
		if (f.Type != "" && e.Type != f.Type) ||
			(f.Phase != "" && e.Phase != f.Phase) ||
			(f.Source != "" && e.Source != f.Source) ||
			e.Seq <= f.SinceSeq {
			continue
		}
		out = append(out, e)
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// getForwarder reads the child-side forwarder (nil until startForwarder).
func (f *fedState) getForwarder() *lifecycle.Forwarder {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.forwarder
}

// upstreamClient builds an apiclient for this frontend's parent.
func (f *fedState) upstreamClient() *apiclient.Client {
	return &apiclient.Client{
		Base:  f.parentURL,
		Actor: "federation/" + f.shard.Name,
		HTTP:  f.client,
	}
}

// registerWithParent announces this child's shard and URL upstream. New
// calls it synchronously: a child that cannot reach its declared parent
// fails construction the same way a failed parent mirror does.
func (f *fedState) registerWithParent() error {
	params := url.Values{
		"shard": {f.shard.String()},
		"url":   {f.c.baseURL},
	}
	if f.shard.Membership != 0 {
		params.Set("membership", fmt.Sprint(f.shard.Membership))
	}
	return f.upstreamClient().Post("federation/register", params, nil)
}

// startForwarder begins streaming this child's lifecycle events to the
// parent. The goroutine is tracked on the cluster WaitGroup so Close
// remains leak-free.
func (f *fedState) startForwarder() {
	cl := f.upstreamClient()
	shard := f.shard.Name
	fw := lifecycle.StartForwarder(f.c.ctx, f.c.events, lifecycle.ForwarderOptions{FlushInterval: 20 * time.Millisecond},
		func(events []lifecycle.Event) error {
			body, err := json.Marshal(events)
			if err != nil {
				return err
			}
			u := cl.Base + "/v1/federation/events?shard=" + url.QueryEscape(shard)
			req, err := http.NewRequest(http.MethodPost, u, bytes.NewReader(body))
			if err != nil {
				return err
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("X-Rocks-Actor", cl.Actor)
			resp, err := f.client.Do(req)
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("federation forward: parent returned HTTP %d", resp.StatusCode)
			}
			return nil
		})
	f.mu.Lock()
	f.forwarder = fw
	f.mu.Unlock()
	f.c.wg.Add(1)
	go func() {
		defer f.c.wg.Done()
		<-fw.Done()
	}()
}

// forwardFacts relays a facts report upstream under this frontend's own
// shard name, so the parent's merged inventory carries subtree provenance.
// Best-effort and asynchronous — a dark parent must never stall a node's
// first boot — but accounted, and the goroutine is tracked on the cluster
// WaitGroup and carries the cluster context so Close stays leak-free.
func (f *fedState) forwardFacts(facts hardware.Facts) {
	if f.parentURL == "" {
		return
	}
	body, err := json.Marshal(facts)
	if err != nil {
		f.factsForwardErrors.Add(1)
		return
	}
	f.c.wg.Add(1)
	go func() {
		defer f.c.wg.Done()
		u := f.parentURL + "/v1/facts?shard=" + url.QueryEscape(f.shard.Name)
		req, err := http.NewRequestWithContext(f.c.ctx, http.MethodPost, u, bytes.NewReader(body))
		if err != nil {
			f.factsForwardErrors.Add(1)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Rocks-Actor", "federation/"+f.shard.Name)
		resp, err := f.client.Do(req)
		if err != nil {
			f.factsForwardErrors.Add(1)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			f.factsForwardErrors.Add(1)
			return
		}
		f.factsForwarded.Add(1)
	}()
}

// FederationChildInfo is one child's row in the /v1/federation view.
type FederationChildInfo struct {
	Shard      federation.Shard `json:"shard"`
	URL        string           `json:"url"`
	Registered time.Time        `json:"registered"`
	LastSeen   time.Time        `json:"last_seen"`
	Forwarded  uint64           `json:"forwarded"`
	LastSeq    uint64           `json:"last_seq,omitempty"`
	Dark       bool             `json:"dark,omitempty"`
	Mirrored   int              `json:"mirrored"`
}

// FederationResponse is the /v1/federation payload.
type FederationResponse struct {
	Role     string                `json:"role"`
	Shard    federation.Shard      `json:"shard"`
	Parent   string                `json:"parent,omitempty"`
	Children []FederationChildInfo `json:"children"`
	Received uint64                `json:"received"`
	// Child-side forwarder traffic; all zero on parents and standalones.
	Forwarded     uint64 `json:"forwarded,omitempty"`
	ForwardErrors uint64 `json:"forward_errors,omitempty"`
	ForwardDrops  uint64 `json:"forward_drops,omitempty"`
	// Child-side facts relays (upstream inventory provenance).
	FactsForwarded     uint64 `json:"facts_forwarded,omitempty"`
	FactsForwardErrors uint64 `json:"facts_forward_errors,omitempty"`
}

func (c *Cluster) opFederation(r *http.Request) (interface{}, *apiError) {
	resp := FederationResponse{
		Role:     c.Role(),
		Shard:    c.fed.shard,
		Parent:   c.fed.parentURL,
		Children: []FederationChildInfo{},
		Received: c.fed.received.Load(),
	}
	for _, ch := range c.fed.childSnapshot() {
		ch.mu.Lock()
		resp.Children = append(resp.Children, FederationChildInfo{
			Shard: ch.shard, URL: ch.url, Registered: ch.registered,
			LastSeen: ch.lastSeen, Forwarded: ch.forwarded,
			LastSeq: ch.lastSeq, Dark: ch.dark, Mirrored: len(ch.mirror),
		})
		ch.mu.Unlock()
	}
	if fw := c.fed.getForwarder(); fw != nil {
		resp.Forwarded, resp.ForwardErrors, resp.ForwardDrops = fw.Stats()
	}
	resp.FactsForwarded = c.fed.factsForwarded.Load()
	resp.FactsForwardErrors = c.fed.factsForwardErrors.Load()
	return resp, nil
}

// opFedRegister admits (or re-admits) a child frontend. Re-registration
// under the same shard name replaces the URL and keeps going — a child
// restart re-announces itself; its mirror restarts empty because the new
// life's bus restarts its sequence numbers.
func (c *Cluster) opFedRegister(r *http.Request) (interface{}, *apiError) {
	spec := r.FormValue("shard")
	if spec == "" {
		return nil, apiErrorf(http.StatusBadRequest, "missing_parameter", "missing shard parameter")
	}
	shard, err := federation.ParseShard(spec)
	if err != nil {
		return nil, apiErrorf(http.StatusBadRequest, "bad_parameter", "%v", err)
	}
	if m := r.FormValue("membership"); m != "" {
		mm, aerr := formInt(r, "membership", 0, 0)
		if aerr != nil {
			return nil, aerr
		}
		shard.Membership = mm
	}
	childURL := r.FormValue("url")
	u, err := url.Parse(childURL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, apiErrorf(http.StatusBadRequest, "bad_parameter",
			"parameter url: %q is not an absolute http URL", childURL)
	}
	if shard.Name == c.fed.shard.Name {
		return nil, apiErrorf(http.StatusConflict, "shard_conflict",
			"shard %q is this frontend's own shard", shard.Name)
	}
	ch := &fedChild{
		shard:      shard,
		url:        strings.TrimSuffix(childURL, "/"),
		registered: time.Now(),
		lastSeen:   time.Now(),
	}
	ch.client = &apiclient.Client{Base: ch.url, Actor: "federation/" + c.fed.shard.Name, HTTP: c.fed.client}
	c.fed.mu.Lock()
	c.fed.children[shard.Name] = ch
	c.fed.mu.Unlock()
	c.fed.registrations.Add(1)
	c.events.Publish(lifecycle.Event{
		Node: "frontend-0", Phase: lifecycle.PhaseRun, Type: lifecycle.EventUp,
		Source: "federation", Detail: fmt.Sprintf("child frontend %s registered (%s)", shard, ch.url),
	})
	return map[string]interface{}{"status": "registered", "parent": c.fed.shard.Name}, nil
}

// opFedEvents is the upstream forwarder's sink: POST ingests a JSON array
// of a registered child's events into its mirror (and relays them further
// up when this frontend is itself a child); GET reads the ingest totals.
// The endpoint accepts POST without auditing each batch — forwarding is
// telemetry, not an administrative mutation.
func (c *Cluster) opFedEvents(r *http.Request) (interface{}, *apiError) {
	if r.Method != http.MethodPost {
		return map[string]uint64{"received": c.fed.received.Load()}, nil
	}
	shardName := r.URL.Query().Get("shard")
	c.fed.mu.Lock()
	ch := c.fed.children[shardName]
	c.fed.mu.Unlock()
	if ch == nil {
		return nil, apiErrorf(http.StatusNotFound, "unknown_shard",
			"shard %q is not registered; POST /v1/federation/register first", shardName)
	}
	var events []lifecycle.Event
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 16<<20))
	if err := dec.Decode(&events); err != nil {
		return nil, apiErrorf(http.StatusBadRequest, "bad_body", "decoding event batch: %v", err)
	}
	ch.ingest(events)
	c.fed.received.Add(uint64(len(events)))
	if fw := c.fed.getForwarder(); fw != nil {
		// Mid-tier: relay the grandchild's events (already shard-stamped
		// by ingest) further up the hierarchy.
		stamped := make([]lifecycle.Event, len(events))
		for i, e := range events {
			if e.Shard == "" {
				e.Shard = ch.shard.Name
			}
			stamped[i] = e
		}
		fw.Enqueue(stamped)
	}
	return map[string]interface{}{"status": "accepted", "events": len(events)}, nil
}

// --- merged query plane -------------------------------------------------

// NodesResponse is the /v1/nodes payload: this frontend's population
// joined with live state, plus — on a parent — the merged shard listings
// with per-shard provenance.
type NodesResponse struct {
	Shard   string                   `json:"shard"`
	Nodes   []federation.NodeRow     `json:"nodes"`
	Shards  []federation.ShardStatus `json:"shards,omitempty"`
	Partial bool                     `json:"partial,omitempty"`
	Deduped int                      `json:"deduped,omitempty"`
}

// lastActivity indexes the bus ring's most recent event per identity
// (hostname and MAC) — the recency a cross-shard node merge compares.
func (c *Cluster) lastActivity() map[string]lifecycle.Event {
	idx := make(map[string]lifecycle.Event)
	for _, e := range c.events.Recent(lifecycle.Filter{}) {
		if e.Node != "" {
			idx[e.Node] = e
		}
		if e.MAC != "" {
			idx[e.MAC] = e
		}
	}
	return idx
}

func (c *Cluster) opNodes(r *http.Request) (interface{}, *apiError) {
	rows, err := clusterdb.Nodes(c.DB, "")
	if err != nil {
		return nil, apiErrorf(http.StatusInternalServerError, "db_error", "%v", err)
	}
	last := c.lastActivity()
	resp := NodesResponse{Shard: c.fed.shard.Name, Nodes: make([]federation.NodeRow, 0, len(rows))}
	for _, n := range rows {
		row := federation.NodeRow{
			Name: n.Name, MAC: n.MAC, IP: n.IP, Membership: n.Membership,
			Rack: n.Rack, Rank: n.Rank, Arch: n.Arch, CPUs: n.CPUs,
		}
		c.mu.Lock()
		if tracked, ok := c.nodes[n.MAC]; ok {
			row.State = string(tracked.State())
		}
		c.mu.Unlock()
		if e, ok := last[n.MAC]; ok {
			row.LastSeq, row.LastEvent = e.Seq, e.Time
		} else if e, ok := last[n.Name]; ok {
			row.LastSeq, row.LastEvent = e.Seq, e.Time
		}
		resp.Nodes = append(resp.Nodes, row)
	}
	return resp, nil
}

// fanNodes merges every child's /v1/nodes into the local listing. A dark
// child contributes a failed ShardStatus and flips Partial; it never
// turns the merged read into an error.
func (c *Cluster) fanNodes(r *http.Request, payload interface{}) (interface{}, *apiError) {
	children := c.fed.childSnapshot()
	local := payload.(NodesResponse)
	if len(children) == 0 {
		return local, nil
	}
	type result struct {
		resp NodesResponse
		err  error
	}
	results := make([]result, len(children))
	var wg sync.WaitGroup
	for i, ch := range children {
		wg.Add(1)
		go func(i int, ch *fedChild) {
			defer wg.Done()
			results[i].err = ch.client.Get("nodes", nil, &results[i].resp)
		}(i, ch)
	}
	wg.Wait()

	batches := []federation.NodeBatch{{Shard: local.Shard, Nodes: local.Nodes}}
	merged := NodesResponse{Shard: local.Shard}
	for i, ch := range children {
		st := federation.ShardStatus{Shard: ch.shard.Name, URL: ch.url, OK: results[i].err == nil}
		ch.markResult(st.OK)
		if st.OK {
			st.Count = len(results[i].resp.Nodes)
			merged.Partial = merged.Partial || results[i].resp.Partial
			batches = append(batches, federation.NodeBatch{Shard: ch.shard.Name, Nodes: results[i].resp.Nodes})
			merged.Shards = append(merged.Shards, st)
			merged.Shards = append(merged.Shards, results[i].resp.Shards...)
			merged.Deduped += results[i].resp.Deduped
			continue
		}
		st.Error = results[i].err.Error()
		merged.Partial = true
		c.fed.fanoutErrors.Add(1)
		merged.Shards = append(merged.Shards, st)
	}
	nodes, deduped := federation.MergeNodes(batches)
	merged.Nodes = nodes
	merged.Deduped += deduped
	c.fed.deduped.Add(uint64(deduped))
	return merged, nil
}

// EventsResponse is the /v1/events payload. The federation fields are
// empty on a standalone frontend, so the pre-federation response shape —
// and the legacy /admin/events alias — are byte-compatible.
type EventsResponse struct {
	Events  []lifecycle.Event        `json:"events"`
	Seq     uint64                   `json:"seq"`
	Dropped uint64                   `json:"dropped"`
	Shard   string                   `json:"shard,omitempty"`
	Shards  []federation.ShardStatus `json:"shards,omitempty"`
	Partial bool                     `json:"partial,omitempty"`
	Deduped int                      `json:"deduped,omitempty"`
}

// eventQuery re-parses the filter parameters opEvents accepted, for the
// fan-out and the mirror fallback.
func eventQuery(r *http.Request) (lifecycle.Filter, string, int) {
	since, _ := formInt(r, "since", 0, 0)
	limit, _ := formInt(r, "limit", 0, 0)
	f := lifecycle.Filter{
		Type:     lifecycle.EventType(r.FormValue("type")),
		Phase:    lifecycle.Phase(r.FormValue("phase")),
		Source:   r.FormValue("source"),
		SinceSeq: uint64(since),
		Limit:    limit,
	}
	return f, r.FormValue("node"), limit
}

// fanEvents merges child event streams into the local view: live child
// queries when possible, each child's forwarded mirror (flagged stale)
// when it is dark, deduplicated on (MAC, seq) so a node whose child
// re-registered mid-query cannot appear twice.
func (c *Cluster) fanEvents(r *http.Request, payload interface{}) (interface{}, *apiError) {
	children := c.fed.childSnapshot()
	local := payload.(EventsResponse)
	if len(children) == 0 {
		return local, nil
	}
	filter, nodeID, limit := eventQuery(r)
	params := url.Values{}
	for k, vs := range r.URL.Query() {
		params[k] = vs
	}
	type result struct {
		resp EventsResponse
		err  error
	}
	results := make([]result, len(children))
	var wg sync.WaitGroup
	for i, ch := range children {
		wg.Add(1)
		go func(i int, ch *fedChild) {
			defer wg.Done()
			results[i].err = ch.client.Get("events", params, &results[i].resp)
		}(i, ch)
	}
	wg.Wait()

	merged := EventsResponse{Seq: local.Seq, Dropped: local.Dropped, Shard: c.fed.shard.Name}
	batches := []federation.EventBatch{{Shard: c.fed.shard.Name, Events: local.Events}}
	for i, ch := range children {
		st := federation.ShardStatus{Shard: ch.shard.Name, URL: ch.url, OK: results[i].err == nil}
		ch.markResult(st.OK)
		if st.OK {
			st.Count = len(results[i].resp.Events)
			merged.Partial = merged.Partial || results[i].resp.Partial
			merged.Deduped += results[i].resp.Deduped
			batches = append(batches, federation.EventBatch{Shard: ch.shard.Name, Events: results[i].resp.Events})
			merged.Shards = append(merged.Shards, st)
			merged.Shards = append(merged.Shards, results[i].resp.Shards...)
			continue
		}
		// Dark child: fall back to the forwarded mirror, honestly flagged.
		st.Error = results[i].err.Error()
		st.Stale = true
		mirror := ch.mirrorEvents(filter, nodeID, limit)
		st.Count = len(mirror)
		merged.Partial = true
		c.fed.fanoutErrors.Add(1)
		batches = append(batches, federation.EventBatch{Shard: ch.shard.Name, Events: mirror})
		merged.Shards = append(merged.Shards, st)
	}
	events, deduped := federation.MergeEvents(batches, limit)
	merged.Events = events
	merged.Deduped += deduped
	c.fed.deduped.Add(uint64(deduped))
	return merged, nil
}

// DBReportResponse is the /v1/dbreport payload: one of clusterdb's
// canonical text reports, concatenated across shards on a parent.
type DBReportResponse struct {
	Shard   string                   `json:"shard"`
	Report  string                   `json:"report"`
	Kind    string                   `json:"kind"`
	Shards  []federation.ShardStatus `json:"shards,omitempty"`
	Partial bool                     `json:"partial,omitempty"`
}

// opDBReport serves the dbreport tool's views over the control plane, so
// the offline cmd/dbreport and the live API render the same text — and a
// parent can concatenate every shard's report under one heading each.
func (c *Cluster) opDBReport(r *http.Request) (interface{}, *apiError) {
	kind := formOr(r, "report", "nodes")
	var report string
	var err error
	switch kind {
	case "nodes":
		report, err = clusterdb.NodesTableReport(c.DB)
	case "memberships":
		report, err = clusterdb.MembershipsTableReport(c.DB)
	case "hosts":
		report, err = clusterdb.HostsReport(c.DB)
	case "dhcp":
		report, err = clusterdb.DHCPReport(c.DB)
	case "pbs":
		report, err = clusterdb.PBSNodesReport(c.DB)
	default:
		return nil, apiErrorf(http.StatusBadRequest, "bad_parameter",
			"parameter report: unknown report %q (nodes|memberships|hosts|dhcp|pbs)", kind)
	}
	if err != nil {
		return nil, apiErrorf(http.StatusInternalServerError, "report_failed", "%v", err)
	}
	return DBReportResponse{Shard: c.fed.shard.Name, Report: report, Kind: kind}, nil
}

// fanDBReport concatenates child reports under per-shard headings.
func (c *Cluster) fanDBReport(r *http.Request, payload interface{}) (interface{}, *apiError) {
	children := c.fed.childSnapshot()
	local := payload.(DBReportResponse)
	if len(children) == 0 {
		return local, nil
	}
	params := url.Values{"report": {local.Kind}}
	type result struct {
		resp DBReportResponse
		err  error
	}
	results := make([]result, len(children))
	var wg sync.WaitGroup
	for i, ch := range children {
		wg.Add(1)
		go func(i int, ch *fedChild) {
			defer wg.Done()
			results[i].err = ch.client.Get("dbreport", params, &results[i].resp)
		}(i, ch)
	}
	wg.Wait()

	var b strings.Builder
	fmt.Fprintf(&b, "== shard %s ==\n%s", local.Shard, local.Report)
	merged := DBReportResponse{Shard: local.Shard, Kind: local.Kind}
	for i, ch := range children {
		st := federation.ShardStatus{Shard: ch.shard.Name, URL: ch.url, OK: results[i].err == nil}
		ch.markResult(st.OK)
		if st.OK {
			merged.Partial = merged.Partial || results[i].resp.Partial
			merged.Shards = append(merged.Shards, st)
			merged.Shards = append(merged.Shards, results[i].resp.Shards...)
			// A child with its own children already carries headings.
			if strings.HasPrefix(results[i].resp.Report, "== shard ") {
				b.WriteString(results[i].resp.Report)
			} else {
				fmt.Fprintf(&b, "== shard %s ==\n%s", ch.shard.Name, results[i].resp.Report)
			}
			continue
		}
		st.Error = results[i].err.Error()
		merged.Partial = true
		c.fed.fanoutErrors.Add(1)
		merged.Shards = append(merged.Shards, st)
		fmt.Fprintf(&b, "== shard %s UNAVAILABLE: %v ==\n", ch.shard.Name, results[i].err)
	}
	merged.Report = b.String()
	return merged, nil
}

// --- cascading re-mirror ------------------------------------------------

// Remirror re-replicates this frontend's parent distribution using the
// previous mirror as the delta baseline: packages whose digests match are
// reused without a body fetch, so an unchanged tree costs manifest
// traffic only. The rebuilt distribution is bound in place (the §3.3
// upgrade idiom) — the serving side reads through c.Dist, so new installs
// and downstream mirrors see it immediately with no server swap.
func (c *Cluster) Remirror() (dist.MirrorReport, error) {
	if c.cfg.ParentURL == "" {
		return dist.MirrorReport{}, fmt.Errorf("core: no parent distribution to re-mirror")
	}
	mirror, report, err := dist.MirrorReportWith(c.cfg.ParentURL, "parent-mirror", dist.MirrorOptions{Baseline: c.mirrorRepo, Context: c.ctx})
	if err != nil {
		return dist.MirrorReport{}, fmt.Errorf("core: re-mirroring parent distribution: %w", err)
	}
	sources := append([]dist.Source{{Name: "parent-mirror", Repo: mirror}}, c.localSources...)
	rebuilt := dist.Build(c.cfg.Name, c.cfg.Framework, sources...)
	*c.Dist = *rebuilt
	c.mirrorRepo = mirror
	c.mirrorReport = &report
	c.events.Publish(lifecycle.Event{
		Node: "frontend-0", Phase: lifecycle.PhaseRun, Type: lifecycle.EventUp,
		Source: "federation", Detail: fmt.Sprintf("re-mirrored parent: %d listed, %d reused, %d fetched",
			report.Listed, report.Skipped, report.Fetched),
	})
	return report, nil
}

// RemirrorResult is the /v1/federation/remirror payload: this level's
// delta report plus every child's, recursively — the whole cascade from
// one POST at the top.
type RemirrorResult struct {
	Shard    string                   `json:"shard"`
	Mirror   *dist.MirrorReport       `json:"mirror,omitempty"` // nil at the hierarchy root
	Shards   []federation.ShardStatus `json:"shards,omitempty"`
	Partial  bool                     `json:"partial,omitempty"`
	Children []RemirrorResult         `json:"children,omitempty"`
}

func (c *Cluster) opFedRemirror(r *http.Request) (interface{}, *apiError) {
	res := RemirrorResult{Shard: c.fed.shard.Name}
	if c.cfg.ParentURL != "" {
		report, err := c.Remirror()
		if err != nil {
			return nil, apiErrorf(http.StatusBadGateway, "remirror_failed", "%v", err)
		}
		res.Mirror = &report
	}
	return res, nil
}

// fanRemirror cascades the re-mirror to children *after* this level has
// re-mirrored (opFedRemirror ran first), so each level pulls from an
// already-updated parent — top-down, exactly like the distribution tree.
func (c *Cluster) fanRemirror(r *http.Request, payload interface{}) (interface{}, *apiError) {
	children := c.fed.childSnapshot()
	local := payload.(RemirrorResult)
	if len(children) == 0 {
		return local, nil
	}
	type result struct {
		resp RemirrorResult
		err  error
	}
	results := make([]result, len(children))
	var wg sync.WaitGroup
	for i, ch := range children {
		wg.Add(1)
		go func(i int, ch *fedChild) {
			defer wg.Done()
			results[i].err = ch.client.Post("federation/remirror", nil, &results[i].resp)
		}(i, ch)
	}
	wg.Wait()
	for i, ch := range children {
		st := federation.ShardStatus{Shard: ch.shard.Name, URL: ch.url, OK: results[i].err == nil}
		ch.markResult(st.OK)
		if st.OK {
			local.Partial = local.Partial || results[i].resp.Partial
			local.Children = append(local.Children, results[i].resp)
			local.Shards = append(local.Shards, st)
			continue
		}
		st.Error = results[i].err.Error()
		local.Partial = true
		c.fed.fanoutErrors.Add(1)
		local.Shards = append(local.Shards, st)
	}
	return local, nil
}

// --- scrape federation --------------------------------------------------

// metricsHandler serves /metrics. A parent aggregates child expositions
// into its own with per-shard labels; a dark child's last successful
// exposition is re-served in place of a live scrape (its series keep their
// last values rather than vanishing), with rocks_federation_child_up at 0
// and rocks_federation_child_last_scrape_seconds growing so alerting can
// see the staleness. The merged text still satisfies the strict parser,
// histograms included.
func (c *Cluster) metricsHandler(w http.ResponseWriter, r *http.Request) {
	var own strings.Builder
	c.metricsReg.WriteText(&own)
	children := c.fed.childSnapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if len(children) == 0 {
		io.WriteString(w, own.String())
		return
	}
	texts := make([]string, len(children))
	errs := make([]error, len(children))
	var wg sync.WaitGroup
	for i, ch := range children {
		wg.Add(1)
		go func(i int, ch *fedChild) {
			defer wg.Done()
			resp, err := c.fed.client.Get(ch.url + "/metrics")
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
			if err != nil || resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("scraping %s: HTTP %d (%v)", ch.url, resp.StatusCode, err)
				return
			}
			texts[i] = string(body)
		}(i, ch)
	}
	wg.Wait()
	var shards []federation.ShardExposition
	for i, ch := range children {
		ch.markResult(errs[i] == nil)
		if errs[i] != nil {
			c.fed.fanoutErrors.Add(1)
			ch.mu.Lock()
			stale := ch.lastExpo
			ch.mu.Unlock()
			if stale != "" {
				shards = append(shards, federation.ShardExposition{Shard: ch.shard.Name, Text: stale})
			}
			continue
		}
		ch.mu.Lock()
		ch.lastExpo = texts[i]
		ch.lastExpoAt = time.Now()
		ch.mu.Unlock()
		shards = append(shards, federation.ShardExposition{Shard: ch.shard.Name, Text: texts[i]})
	}
	io.WriteString(w, federation.MergeExpositions(own.String(), shards))
}

package core

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"rocks/internal/lifecycle"
	"rocks/internal/node"
	"rocks/internal/pbs"
)

// tightSupervisor is a supervisor config scaled to test time: installs in
// this simulation finish in tens of milliseconds, so patience and backoff
// shrink accordingly.
func tightSupervisor(seed int64) SupervisorConfig {
	return SupervisorConfig{
		Patience:    75 * time.Millisecond,
		Interval:    10 * time.Millisecond,
		MaxRetries:  2,
		BaseBackoff: 25 * time.Millisecond,
		MaxBackoff:  200 * time.Millisecond,
		Seed:        seed,
	}
}

// breakDist removes a kickstart-critical package from the distribution so
// every subsequent install crashes; the returned function restores it.
func breakDist(c *Cluster) (restore func()) {
	removed := c.Dist.Repo.Versions("sed")
	for _, p := range removed {
		c.Dist.Repo.Remove(p.NVRA())
	}
	return func() {
		for _, p := range removed {
			c.Dist.Repo.Add(p)
		}
	}
}

// TestSupervisorRevivesCrashedNode: a node's install crashes; the supervisor
// power-cycles it without any human in the loop and logs the recovery.
func TestSupervisorRevivesCrashedNode(t *testing.T) {
	c := newCluster(t)
	nodes := addComputes(t, c, 1)
	n := nodes[0]

	restore := breakDist(c)
	c.ShootNode("compute-0-0")
	if !WaitState(n, node.StateCrashed, integrationTimeout) {
		t.Fatalf("state = %s", n.State())
	}
	restore() // the fault was transient: the repo is whole again

	s := c.StartSupervisor(tightSupervisor(1))
	defer s.Stop()
	if !WaitState(n, node.StateUp, integrationTimeout) {
		t.Fatalf("supervisor never revived the node; state = %s\nevents:\n%s",
			n.State(), s.EventLog())
	}
	// The bus accounts for the remediation: wait on the recovery event
	// (WaitFor sees events already in the ring, so no publish is missed),
	// then audit the per-node log — at least one cycle, no quarantine.
	ctx, cancelWait := context.WithTimeout(context.Background(), integrationTimeout)
	defer cancelWait()
	if _, err := c.Events().WaitFor(ctx, lifecycle.Filter{
		Node: "compute-0-0", Type: EventRecovered, Source: "supervisor",
	}); err != nil {
		t.Fatalf("no recovered event: %v\nevents:\n%s", err, s.EventLog())
	}
	var cycled bool
	for _, e := range s.EventsFor("compute-0-0") {
		switch e.Type {
		case EventPowerCycle:
			cycled = true
		case EventQuarantine:
			t.Fatalf("healthy retry quarantined:\n%s", s.EventLog())
		}
	}
	if !cycled {
		t.Fatalf("recovered without a power cycle:\n%s", s.EventLog())
	}
	if c.IsQuarantined("compute-0-0") {
		t.Error("recovered node left quarantined")
	}
}

// TestSupervisorQuarantinesHopelessNode: a node that crashes on every
// reinstall exhausts its retry budget and ends quarantined — offline in PBS,
// marked in the nodes report — instead of being cycled forever.
func TestSupervisorQuarantinesHopelessNode(t *testing.T) {
	c := newCluster(t)
	nodes := addComputes(t, c, 2)
	n := nodes[0]

	restore := breakDist(c) // never restored before quarantine: a true lemon
	c.ShootNode("compute-0-0")
	if !WaitState(n, node.StateCrashed, integrationTimeout) {
		t.Fatalf("state = %s", n.State())
	}

	s := c.StartSupervisor(tightSupervisor(2))
	defer s.Stop()
	ctx, cancelWait := context.WithTimeout(context.Background(), integrationTimeout)
	defer cancelWait()
	if _, err := c.Events().WaitFor(ctx, lifecycle.Filter{
		Node: "compute-0-0", Type: EventQuarantine,
	}); err != nil {
		t.Fatalf("node never quarantined: %v; state=%s events:\n%s", err, n.State(), s.EventLog())
	}
	// The event is published after Quarantine takes effect, so the node is
	// already offline when the waiter wakes.
	if !c.IsQuarantined("compute-0-0") {
		t.Fatal("quarantine event published before the node went offline")
	}

	// Budget arithmetic: exactly MaxRetries cycles, then quarantine.
	var cycles, quarantines int
	for _, e := range s.EventsFor("compute-0-0") {
		switch e.Type {
		case EventPowerCycle, EventPowerCycleFailed:
			cycles++
		case EventQuarantine:
			quarantines++
		}
	}
	if cycles != 2 || quarantines != 1 {
		t.Errorf("cycles=%d quarantines=%d, want 2 and 1:\n%s", cycles, quarantines, s.EventLog())
	}

	// The scheduler no longer touches the node; the healthy one still works.
	if !c.PBS.IsOffline("compute-0-0") {
		t.Error("quarantined node not offline in PBS")
	}
	id := c.PBS.Submit(pbs.Job{Name: "probe", NodeCount: 1, Command: "hostname"})
	c.PBS.Schedule()
	if j, _ := c.PBS.Job(id); j.State != pbs.StateComplete || j.Assigned[0] != "compute-0-1" {
		t.Errorf("probe job = %+v; want complete on compute-0-1", j)
	}

	// The report file carries the pbsnodes offline mark.
	report, err := c.Frontend.Disk().ReadFile("/opt/pbs/server_priv/nodes")
	if err != nil {
		t.Fatal(err)
	}
	var marked bool
	for _, line := range strings.Split(string(report), "\n") {
		if strings.HasPrefix(line, "compute-0-0") {
			marked = strings.HasSuffix(line, " offline")
		}
	}
	if !marked {
		t.Errorf("nodes report missing offline mark:\n%s", report)
	}

	// Repair and return to service: unquarantine + power cycle brings the
	// node back into the pool.
	restore()
	if err := c.Unquarantine("compute-0-0"); err != nil {
		t.Fatal(err)
	}
	outlet, _ := c.PDU.OutletFor(n.MAC())
	if err := c.PDU.HardCycle(outlet); err != nil {
		t.Fatal(err)
	}
	if !WaitState(n, node.StateUp, integrationTimeout) {
		t.Fatalf("repaired node state = %s", n.State())
	}
	report, _ = c.Frontend.Disk().ReadFile("/opt/pbs/server_priv/nodes")
	if strings.Contains(string(report), "offline") {
		t.Errorf("offline mark survived unquarantine:\n%s", report)
	}
}

// TestReinstallClusterTimeoutNamesStuck: when reinstall-cluster gives up,
// the error names which nodes and jobs were stuck (satellite of ISSUE 1),
// not just a count.
func TestReinstallClusterTimeoutNamesStuck(t *testing.T) {
	c := newCluster(t)
	nodes := addComputes(t, c, 2)

	// A long-running application occupies compute-0-1: its reinstall job
	// can never start inside the timeout.
	hold := c.PBS.Submit(pbs.Job{
		Name: "simulation", NodeCount: 1, Hold: true, Assigned: []string{"compute-0-1"},
	})
	if c.PBS.Schedule() != 1 {
		t.Fatal("hold job did not start")
	}

	err := c.ReinstallCluster(250 * time.Millisecond)
	if err == nil {
		t.Fatal("reinstall against a busy node should time out")
	}
	var te *ReinstallTimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("error type %T: %v", err, err)
	}
	if hosts := te.StuckHosts(); len(hosts) != 1 || hosts[0] != "compute-0-1" {
		t.Errorf("stuck hosts = %v", hosts)
	}
	if !strings.Contains(err.Error(), "compute-0-1") {
		t.Errorf("error does not name the stuck node: %v", err)
	}
	// compute-0-0 was free: its job must have completed despite the timeout.
	if !WaitState(nodes[0], node.StateUp, integrationTimeout) {
		t.Fatalf("compute-0-0 state = %s", nodes[0].State())
	}

	// Drain the stuck job so shutdown is clean: finish the application and
	// let the queued reinstall run.
	if err := c.PBS.Finish(hold); err != nil {
		t.Fatal(err)
	}
	c.PBS.Schedule()
	if !WaitState(nodes[1], node.StateUp, integrationTimeout) {
		t.Fatalf("compute-0-1 state = %s after drain", nodes[1].State())
	}
}

// TestSupervisorAdminEndpoint: the control plane exposes the supervisor's
// event log and quarantine list to the CLI tools.
func TestSupervisorAdminEndpoint(t *testing.T) {
	c := newCluster(t)
	addComputes(t, c, 1)
	if err := c.Quarantine("compute-0-0"); err != nil {
		t.Fatal(err)
	}
	s := c.StartSupervisor(tightSupervisor(3))
	defer s.Stop()

	var resp struct {
		Running     bool              `json:"running"`
		Events      []SupervisorEvent `json:"events"`
		Dropped     *uint64           `json:"dropped"`
		Quarantined []string          `json:"quarantined"`
	}
	code, body := adminGet(t, c, "/admin/supervisor", nil)
	if code != 200 {
		t.Fatalf("supervisor endpoint: %d %q", code, body)
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("supervisor JSON: %v (%s)", err, body)
	}
	if !resp.Running {
		t.Error("supervisor not reported running")
	}
	if len(resp.Quarantined) != 1 || resp.Quarantined[0] != "compute-0-0" {
		t.Errorf("quarantined = %v", resp.Quarantined)
	}
	// The event log is ring-backed now: the endpoint must report how many
	// events have been evicted (zero here — nothing has wrapped).
	if resp.Dropped == nil {
		t.Error("supervisor endpoint missing dropped count")
	} else if *resp.Dropped != 0 {
		t.Errorf("dropped = %d, want 0", *resp.Dropped)
	}
}

package core

import (
	"encoding/json"
	"fmt"
	"net/url"
	"strings"
	"testing"

	"rocks/internal/clusterdb"
)

// TestCoalescedDiscoveryBurst drives a burst of discoveries through
// insert-ethers and checks the fast-path contract: every node still lands
// in /etc/hosts and gets its DHCP binding, but the full dbreport pass runs
// far fewer times than once per discovery.
func TestCoalescedDiscoveryBurst(t *testing.T) {
	c := newCluster(t)
	const burst = 24

	w0 := c.ReportStats().Writes
	ie, err := c.StartInsertEthers(clusterdb.MembershipCompute, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < burst; i++ {
		if err := ie.Discover(fmt.Sprintf("02:ee:00:00:00:%02x", i)); err != nil {
			t.Fatalf("discover %d: %v", i, err)
		}
	}
	ie.Stop()
	if err := c.FlushReports(); err != nil {
		t.Fatal(err)
	}

	hosts, err := c.Frontend.Disk().ReadFile("/etc/hosts")
	if err != nil {
		t.Fatal(err)
	}
	bindings := c.DHCPd.Bindings()
	for i := 0; i < burst; i++ {
		name := fmt.Sprintf("compute-0-%d", i)
		if !strings.Contains(string(hosts), name) {
			t.Errorf("/etc/hosts missing %s after flush", name)
		}
		if _, ok := bindings[fmt.Sprintf("02:ee:00:00:00:%02x", i)]; !ok {
			t.Errorf("DHCP binding for node %d missing (delta sync failed)", i)
		}
	}
	writes := c.ReportStats().Writes - w0
	if writes == 0 {
		t.Fatal("burst never regenerated reports")
	}
	if writes >= burst {
		t.Errorf("burst of %d discoveries caused %d full regenerations; want coalescing", burst, writes)
	}
}

// TestWriteReportsChangeSeqGuard checks that a WriteReports call with no
// intervening mutation is answered by the guard instead of regenerating.
func TestWriteReportsChangeSeqGuard(t *testing.T) {
	c := newCluster(t)
	if err := c.WriteReports(); err != nil {
		t.Fatal(err)
	}
	s0 := c.ReportStats()
	if err := c.WriteReports(); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteReports(); err != nil {
		t.Fatal(err)
	}
	s1 := c.ReportStats()
	if s1.Writes != s0.Writes {
		t.Errorf("no-op WriteReports regenerated: writes %d -> %d", s0.Writes, s1.Writes)
	}
	if s1.Skips < s0.Skips+2 {
		t.Errorf("guard skips %d -> %d, want +2", s0.Skips, s1.Skips)
	}
	// A mutation re-arms the guard.
	if _, err := c.DB.Exec(`UPDATE site SET value = 'Guarded' WHERE name = 'ClusterName'`); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteReports(); err != nil {
		t.Fatal(err)
	}
	if got := c.ReportStats().Writes; got != s1.Writes+1 {
		t.Errorf("post-mutation writes = %d, want %d", got, s1.Writes+1)
	}
	// Quarantining (no DB mutation) also re-arms it: the PBS report
	// annotates offline hosts, so the files must regenerate.
	addComputes(t, c, 1)
	if err := c.WriteReports(); err != nil {
		t.Fatal(err)
	}
	w := c.ReportStats().Writes
	if err := c.Quarantine("compute-0-0"); err != nil {
		t.Fatal(err)
	}
	if c.ReportStats().Writes <= w {
		t.Error("quarantine did not regenerate reports")
	}
}

// TestAdminDBStats exercises the observability endpoint end to end: the
// counters it reports must be live (an indexed lookup moves index_selects).
func TestAdminDBStats(t *testing.T) {
	c := newCluster(t)
	addComputes(t, c, 1)

	var stats struct {
		DB struct {
			PlanCacheHits   uint64                `json:"plan_cache_hits"`
			PlanCacheMisses uint64                `json:"plan_cache_misses"`
			IndexSelects    uint64                `json:"index_selects"`
			ScanSelects     uint64                `json:"scan_selects"`
			Indexes         []clusterdb.IndexInfo `json:"indexes"`
		} `json:"db"`
		Reports   ReportStats `json:"reports"`
		Kickstart struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"kickstart_cache"`
	}
	fetch := func() {
		t.Helper()
		code, body := adminGet(t, c, "/admin/dbstats", nil)
		if code != 200 {
			t.Fatalf("GET /admin/dbstats = %d: %s", code, body)
		}
		if err := json.Unmarshal([]byte(body), &stats); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	fetch()
	if len(stats.DB.Indexes) == 0 {
		t.Fatal("no indexes reported")
	}
	var nodesMAC bool
	for _, ix := range stats.DB.Indexes {
		if ix.Table == "nodes" && ix.Name == "nodes_mac" && ix.Unique {
			nodesMAC = true
		}
	}
	if !nodesMAC {
		t.Errorf("nodes_mac index missing from %+v", stats.DB.Indexes)
	}
	if stats.Reports.Writes == 0 {
		t.Error("report writes counter never moved")
	}

	// Point an indexed query through /admin/sql and watch the counter move.
	before := stats.DB.IndexSelects
	code, _ := adminGet(t, c, "/admin/sql", url.Values{
		"q": {`SELECT name FROM nodes WHERE name = 'compute-0-0'`}})
	if code != 200 {
		t.Fatalf("admin sql = %d", code)
	}
	fetch()
	if stats.DB.IndexSelects <= before {
		t.Errorf("index_selects static at %d after indexed query", before)
	}
	if stats.DB.PlanCacheMisses == 0 {
		t.Error("plan cache miss counter never moved")
	}
}

package core

import (
	"net/http"
	"time"

	"rocks/internal/monitor"
	"rocks/internal/node"
)

// Ping answers a management-Ethernet reachability probe for a tracked node.
// Per §4, the network is up while Linux runs (node Up) and during
// installation (eKV is reachable); a node that is off, mid-boot, or crashed
// is dark.
func (c *Cluster) Ping(host string) (bool, string) {
	n, ok := c.NodeByName(host)
	if !ok {
		// Fall back to MAC addressing for nodes that never got a hostname.
		c.mu.Lock()
		n, ok = c.nodes[host]
		c.mu.Unlock()
		if !ok {
			return false, "unknown host"
		}
	}
	switch st := n.State(); st {
	case node.StateUp, node.StateInstalling:
		return true, string(st)
	default:
		return false, string(st)
	}
}

// NewMonitor starts a health monitor over the cluster's current nodes
// (frontend included). New nodes must be added with Watch; the caller owns
// Stop.
func (c *Cluster) NewMonitor(patience, interval time.Duration) *monitor.Monitor {
	m := monitor.New(monitor.PingerFunc(c.Ping), patience, interval)
	m.Watch("frontend-0")
	for _, s := range c.Status() {
		if s.Name != "" {
			m.Watch(s.Name)
		}
	}
	return m
}

// adminHealth serves a one-shot health report: every node probed now, dark
// nodes flagged, with the PDU outlet to cycle.
func (c *Cluster) adminHealth(w http.ResponseWriter, r *http.Request) {
	type row struct {
		Host   string `json:"host"`
		Alive  bool   `json:"alive"`
		State  string `json:"state"`
		Outlet int    `json:"outlet,omitempty"`
	}
	var rows []row
	for _, s := range c.Status() {
		name := s.Name
		if name == "" {
			name = s.MAC
		}
		alive, state := c.Ping(name)
		rr := row{Host: name, Alive: alive, State: state}
		if !alive {
			if n, ok := c.NodeByName(name); ok {
				if outlet, wired := c.PDU.OutletFor(n.MAC()); wired {
					rr.Outlet = outlet
				}
			}
		}
		rows = append(rows, rr)
	}
	writeJSON(w, rows)
}

package core

import (
	"net/http"
	"time"

	"rocks/internal/monitor"
	"rocks/internal/node"
)

// Ping answers a management-Ethernet reachability probe for a tracked node.
// Per §4, the network is up while Linux runs (node Up) and during
// installation (eKV is reachable); a node that is off, mid-boot, or crashed
// is dark.
func (c *Cluster) Ping(host string) (bool, string) {
	n, ok := c.NodeByName(host)
	if !ok {
		// Fall back to MAC addressing, then to the name the node itself
		// carries: a node that crashed mid-install has a hostname (DHCP
		// assigned it) but never reached comeUp, which is what populates
		// the byName index.
		c.mu.Lock()
		n, ok = c.nodes[host]
		if !ok {
			for _, cand := range c.nodes {
				if cand.Name() == host {
					n, ok = cand, true
					break
				}
			}
		}
		c.mu.Unlock()
		if !ok {
			return false, "unknown host"
		}
	}
	switch st := n.State(); st {
	case node.StateUp, node.StateInstalling:
		return true, string(st)
	default:
		return false, string(st)
	}
}

// NewMonitor starts a health monitor over the cluster's current nodes
// (frontend included). New nodes must be added with Watch. The monitor
// publishes up/dark transitions to the cluster's lifecycle bus, and its
// background loop (when interval > 0) runs under the cluster's root
// context, so Close reaps it; the caller may also Stop it earlier.
func (c *Cluster) NewMonitor(patience, interval time.Duration) *monitor.Monitor {
	m := monitor.New(monitor.PingerFunc(c.Ping), patience, 0)
	m.PublishTo(c.events)
	m.StartCtx(c.ctx, interval)
	m.Watch("frontend-0")
	for _, s := range c.Status() {
		if s.Name != "" {
			m.Watch(s.Name)
		}
	}
	return m
}

// opHealth serves a one-shot health report: every node probed now, dark
// nodes flagged, with the PDU outlet to cycle.
func (c *Cluster) opHealth(r *http.Request) (interface{}, *apiError) {
	type row struct {
		Host        string `json:"host"`
		Alive       bool   `json:"alive"`
		State       string `json:"state"`
		Outlet      int    `json:"outlet,omitempty"`
		Quarantined bool   `json:"quarantined,omitempty"`
	}
	var rows []row
	for _, s := range c.Status() {
		name := s.Name
		if name == "" {
			name = s.MAC
		}
		alive, state := c.Ping(name)
		rr := row{Host: name, Alive: alive, State: state,
			Quarantined: c.IsQuarantined(name) || c.IsQuarantined(s.MAC)}
		if !alive {
			if outlet, wired := c.PDU.OutletFor(s.MAC); wired {
				rr.Outlet = outlet
			}
		}
		rows = append(rows, rr)
	}
	return rows, nil
}

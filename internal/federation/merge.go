package federation

import (
	"sort"
	"time"

	"rocks/internal/lifecycle"
)

// EventBatch is one shard's contribution to a merged event query: the
// shard's name and the events its frontend returned (live) or the parent
// mirrored (stale fallback for a dark child).
type EventBatch struct {
	Shard  string
	Events []lifecycle.Event
}

// eventKey identifies an event across frontends. Sequence numbers are
// per-bus, so the key pairs the machine's stable identity (MAC, falling
// back to hostname for events published before discovery bound one) with
// the originating sequence: the same event reaching the parent twice — a
// live child response plus the forwarded mirror, or a node whose child
// re-registered under a new shard mid-query — collapses to one.
type eventKey struct {
	id  string
	seq uint64
}

func keyOf(e lifecycle.Event) eventKey {
	id := e.MAC
	if id == "" {
		id = e.Node
	}
	return eventKey{id: id, seq: e.Seq}
}

// MergeEvents flattens shard batches into one stream: every event is
// stamped with its batch's shard (events already carrying deeper
// provenance keep it), duplicates collapse on (MAC, seq), and the result
// is ordered by (time, seq, shard) — within a single shard that is
// exactly the child's own publish order, which is what makes a node's
// timeline byte-identical at the child and at the top, modulo the shard
// stamp. limit > 0 keeps only the most recent events. Returns the merged
// stream and how many duplicates were dropped.
func MergeEvents(batches []EventBatch, limit int) ([]lifecycle.Event, int) {
	total := 0
	for _, b := range batches {
		total += len(b.Events)
	}
	merged := make([]lifecycle.Event, 0, total)
	seen := make(map[eventKey]bool, total)
	deduped := 0
	for _, b := range batches {
		for _, e := range b.Events {
			k := keyOf(e)
			if seen[k] {
				deduped++
				continue
			}
			seen[k] = true
			if e.Shard == "" {
				e.Shard = b.Shard
			}
			merged = append(merged, e)
		}
	}
	sort.SliceStable(merged, func(i, j int) bool {
		a, b := merged[i], merged[j]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Shard < b.Shard
	})
	if limit > 0 && len(merged) > limit {
		merged = merged[len(merged)-limit:]
	}
	return merged, deduped
}

// NodeRow is one node in the merged /v1/nodes view: the clusterdb row
// joined with live tracking state and shard provenance. LastSeq/LastEvent
// carry the node's most recent lifecycle activity on its owning bus;
// cross-shard recency comparisons use the timestamp (sequence numbers are
// per-bus and not comparable between shards).
type NodeRow struct {
	Name       string    `json:"name"`
	MAC        string    `json:"mac"`
	IP         string    `json:"ip"`
	Membership int       `json:"membership"`
	Rack       int       `json:"rack"`
	Rank       int       `json:"rank"`
	Arch       string    `json:"arch,omitempty"`
	CPUs       int       `json:"cpus,omitempty"`
	State      string    `json:"state,omitempty"`
	Shard      string    `json:"shard,omitempty"`
	LastSeq    uint64    `json:"last_seq,omitempty"`
	LastEvent  time.Time `json:"last_event"`
}

// NodeBatch is one shard's node listing.
type NodeBatch struct {
	Shard string
	Nodes []NodeRow
}

// MergeNodes merges shard listings into one population. A node that moved
// shards mid-query (its machine re-registered under another frontend, or
// one child re-registered under a new shard name) appears in more than
// one batch; duplicates collapse on MAC — hostname when a row has no
// MAC — keeping the row whose shard saw the node's lifecycle activity
// most recently. Rows are stamped with their batch's shard and the result
// is sorted by (name, mac). Returns the merged rows and the duplicate
// count.
func MergeNodes(batches []NodeBatch) ([]NodeRow, int) {
	type slot struct{ idx int }
	index := make(map[string]slot)
	merged := []NodeRow{}
	deduped := 0
	for _, b := range batches {
		for _, row := range b.Nodes {
			if row.Shard == "" {
				row.Shard = b.Shard
			}
			id := row.MAC
			if id == "" {
				id = row.Name
			}
			prev, dup := index[id]
			if !dup {
				index[id] = slot{idx: len(merged)}
				merged = append(merged, row)
				continue
			}
			deduped++
			cur := merged[prev.idx]
			// Later lifecycle activity wins; ties keep the first batch
			// (batches arrive in deterministic shard order).
			if row.LastEvent.After(cur.LastEvent) ||
				(row.LastEvent.Equal(cur.LastEvent) && row.LastSeq > cur.LastSeq) {
				merged[prev.idx] = row
			}
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Name != merged[j].Name {
			return merged[i].Name < merged[j].Name
		}
		return merged[i].MAC < merged[j].MAC
	})
	return merged, deduped
}

package federation

import (
	"testing"
	"time"

	"rocks/internal/lifecycle"
)

func TestParseShard(t *testing.T) {
	cases := []struct {
		spec string
		want Shard
		str  string
	}{
		{"deptA", Shard{Name: "deptA", RackLo: 0, RackHi: -1}, "deptA"},
		{"deptA:3", Shard{Name: "deptA", RackLo: 3, RackHi: 3}, "deptA:3"},
		{"deptA:0-3", Shard{Name: "deptA", RackLo: 0, RackHi: 3}, "deptA:0-3"},
	}
	for _, c := range cases {
		got, err := ParseShard(c.spec)
		if err != nil {
			t.Fatalf("ParseShard(%q): %v", c.spec, err)
		}
		if got != c.want {
			t.Errorf("ParseShard(%q) = %+v, want %+v", c.spec, got, c.want)
		}
		if got.String() != c.str {
			t.Errorf("ParseShard(%q).String() = %q, want %q", c.spec, got.String(), c.str)
		}
	}
	for _, bad := range []string{"", ":3", "a:x", "a:-1", "a:5-2"} {
		if _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
}

func TestShardContains(t *testing.T) {
	all, _ := ParseShard("any")
	if !all.Contains(3, 99) || !all.AllRacks() {
		t.Fatal("bare shard must contain every membership and rack")
	}
	ranged, _ := ParseShard("deptA:2-4")
	if ranged.Contains(0, 1) || !ranged.Contains(0, 2) || !ranged.Contains(0, 4) || ranged.Contains(0, 5) {
		t.Fatal("rack range is inclusive on both ends")
	}
	member := Shard{Name: "io", Membership: 5, RackLo: 0, RackHi: -1}
	if member.Contains(1, 0) || !member.Contains(5, 7) {
		t.Fatal("membership filter must apply")
	}
}

func at(sec int) time.Time { return time.Unix(1000+int64(sec), 0) }

func TestMergeEventsDedupesAndOrders(t *testing.T) {
	e1 := lifecycle.Event{Seq: 1, Time: at(1), Node: "c0-0", MAC: "aa", Type: lifecycle.EventDiscovered}
	e2 := lifecycle.Event{Seq: 2, Time: at(2), Node: "c0-0", MAC: "aa", Type: lifecycle.EventInstallComplete}
	e3 := lifecycle.Event{Seq: 1, Time: at(3), Node: "c1-0", MAC: "bb", Type: lifecycle.EventDiscovered}
	merged, deduped := MergeEvents([]EventBatch{
		{Shard: "deptA", Events: []lifecycle.Event{e1, e2}},
		// deptB re-registered the same machine: identical (MAC, seq) rows
		// must collapse, not double the timeline.
		{Shard: "deptB", Events: []lifecycle.Event{e1, e3}},
	}, 0)
	if deduped != 1 {
		t.Fatalf("deduped = %d, want 1", deduped)
	}
	if len(merged) != 3 {
		t.Fatalf("len(merged) = %d, want 3", len(merged))
	}
	for i, want := range []string{"aa", "aa", "bb"} {
		if merged[i].MAC != want {
			t.Errorf("merged[%d].MAC = %q, want %q (time order)", i, merged[i].MAC, want)
		}
	}
	if merged[0].Shard != "deptA" || merged[2].Shard != "deptB" {
		t.Errorf("shard stamps wrong: %q, %q", merged[0].Shard, merged[2].Shard)
	}
	// Keep-first: the duplicate kept deptA's stamp.
	if merged[1].Shard != "deptA" {
		t.Errorf("duplicate kept shard %q, want deptA", merged[1].Shard)
	}
}

func TestMergeEventsPreservesDeepProvenance(t *testing.T) {
	e := lifecycle.Event{Seq: 9, Time: at(1), MAC: "aa", Shard: "leaf"}
	merged, _ := MergeEvents([]EventBatch{{Shard: "mid", Events: []lifecycle.Event{e}}}, 0)
	if merged[0].Shard != "leaf" {
		t.Fatalf("grandchild provenance overwritten: %q", merged[0].Shard)
	}
}

func TestMergeEventsLimit(t *testing.T) {
	var batch []lifecycle.Event
	for i := 0; i < 10; i++ {
		batch = append(batch, lifecycle.Event{Seq: uint64(i + 1), Time: at(i), MAC: "aa"})
	}
	merged, _ := MergeEvents([]EventBatch{{Shard: "a", Events: batch}}, 3)
	if len(merged) != 3 || merged[0].Seq != 8 {
		t.Fatalf("limit must keep the most recent events, got %d starting at seq %d", len(merged), merged[0].Seq)
	}
}

func TestMergeNodesRebindKeepsFreshest(t *testing.T) {
	stale := NodeRow{Name: "c0-0", MAC: "aa", LastEvent: at(1), LastSeq: 5}
	fresh := NodeRow{Name: "c0-0", MAC: "aa", LastEvent: at(9), LastSeq: 2}
	other := NodeRow{Name: "c1-0", MAC: "bb", LastEvent: at(2)}
	merged, deduped := MergeNodes([]NodeBatch{
		{Shard: "deptA", Nodes: []NodeRow{stale, other}},
		// The machine re-registered under deptB after its child frontend
		// was resharded; the row with the later lifecycle activity wins.
		{Shard: "deptB", Nodes: []NodeRow{fresh}},
	})
	if deduped != 1 {
		t.Fatalf("deduped = %d, want 1", deduped)
	}
	if len(merged) != 2 {
		t.Fatalf("len(merged) = %d, want 2", len(merged))
	}
	if merged[0].Shard != "deptB" || !merged[0].LastEvent.Equal(at(9)) {
		t.Fatalf("rebind kept the stale row: shard %q at %v", merged[0].Shard, merged[0].LastEvent)
	}
	if merged[1].MAC != "bb" || merged[1].Shard != "deptA" {
		t.Fatalf("unrelated row mangled: %+v", merged[1])
	}
}

func TestMergeNodesTieKeepsFirstBatch(t *testing.T) {
	a := NodeRow{Name: "c0-0", MAC: "aa", LastEvent: at(5), LastSeq: 3}
	b := NodeRow{Name: "c0-0", MAC: "aa", LastEvent: at(5), LastSeq: 3}
	merged, deduped := MergeNodes([]NodeBatch{
		{Shard: "deptA", Nodes: []NodeRow{a}},
		{Shard: "deptB", Nodes: []NodeRow{b}},
	})
	if deduped != 1 || len(merged) != 1 || merged[0].Shard != "deptA" {
		t.Fatalf("tie must keep the first (deterministic-order) batch, got %+v", merged)
	}
}

// Package federation holds the pieces of the multi-frontend management
// hierarchy that are pure data plumbing: shard declarations (which slice
// of the node population a child frontend owns), merge logic for the
// parent's fanned-out query plane (nodes, events), and scrape federation
// (child /metrics expositions folded into the parent's under per-shard
// labels). The paper's §6.2 hierarchical distributions give the tree its
// shape; this package gives the management plane the same shape: a campus
// frontend fans out to department frontends exactly the way a campus
// distribution cascades down to department mirrors.
//
// The live wiring — registration over /v1/federation/register, the
// lifecycle forwarder, cascading re-mirrors — lives in internal/core;
// everything here is deterministic and free of I/O so the merge semantics
// (dedupe, ordering, dark-shard tolerance) are unit-testable in isolation.
package federation

import (
	"fmt"
	"strconv"
	"strings"
)

// Shard declares the slice of the node population a child frontend owns:
// an optional membership and an inclusive rack range. A RackHi below
// RackLo means every rack; membership 0 means every membership. The zero
// value therefore owns rack 0 only — construct defaults with ParseShard
// or normalize explicitly.
type Shard struct {
	Name       string `json:"name"`
	Membership int    `json:"membership,omitempty"` // 0 = any membership
	RackLo     int    `json:"rack_lo"`
	RackHi     int    `json:"rack_hi"` // inclusive; < RackLo = unbounded
}

// Contains reports whether a node with the given membership and rack
// falls inside this shard.
func (s Shard) Contains(membership, rack int) bool {
	if s.Membership != 0 && membership != s.Membership {
		return false
	}
	if s.RackHi < s.RackLo {
		return true
	}
	return rack >= s.RackLo && rack <= s.RackHi
}

// AllRacks reports whether the shard's rack range is unbounded.
func (s Shard) AllRacks() bool { return s.RackHi < s.RackLo }

func (s Shard) String() string {
	if s.AllRacks() {
		return s.Name
	}
	if s.RackLo == s.RackHi {
		return fmt.Sprintf("%s:%d", s.Name, s.RackLo)
	}
	return fmt.Sprintf("%s:%d-%d", s.Name, s.RackLo, s.RackHi)
}

// ParseShard parses the cluster-sim -shard syntax: "name", "name:rack",
// or "name:lo-hi" (inclusive). A bare name owns every rack.
func ParseShard(spec string) (Shard, error) {
	name, racks, ok := strings.Cut(spec, ":")
	if name == "" {
		return Shard{}, fmt.Errorf("federation: empty shard name in %q", spec)
	}
	s := Shard{Name: name, RackLo: 0, RackHi: -1}
	if !ok {
		return s, nil
	}
	lo, hi, ranged := strings.Cut(racks, "-")
	n, err := strconv.Atoi(lo)
	if err != nil || n < 0 {
		return Shard{}, fmt.Errorf("federation: bad rack %q in shard %q", lo, spec)
	}
	s.RackLo, s.RackHi = n, n
	if ranged {
		m, err := strconv.Atoi(hi)
		if err != nil || m < n {
			return Shard{}, fmt.Errorf("federation: bad rack range %q in shard %q", racks, spec)
		}
		s.RackHi = m
	}
	return s, nil
}

// ShardStatus is the per-shard provenance a merged query carries: one row
// per child the parent fanned out to, so a caller can tell complete
// results from partial ones without the response turning into a 500. A
// dark child is OK=false with the error; Stale marks results served from
// the parent's forwarded mirror instead of a live child query.
type ShardStatus struct {
	Shard string `json:"shard"`
	URL   string `json:"url,omitempty"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	Stale bool   `json:"stale,omitempty"`
	Count int    `json:"count"`
}

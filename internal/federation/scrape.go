package federation

import (
	"sort"
	"strings"
)

// Scrape federation: the parent frontend aggregates child /metrics
// expositions into its own, the way delta mirroring cascades distribution
// trees. Child samples are re-labeled with their shard as the *first*
// label; the parent's own samples stay verbatim. Putting shard first is
// deliberate: strict-parse histogram validation recognizes bucket series
// by the literal prefix `name_bucket{le="`, so per-shard bucket series
// are carried but skipped by validation while the parent's own bare
// series keep satisfying it — one merged exposition that still
// round-trips through metrics.ParseText.

// ShardExposition is one child's scraped /metrics text.
type ShardExposition struct {
	Shard string
	Text  string
}

// famBlock is one family's slice of an exposition: HELP/TYPE comments and
// the sample lines that followed them.
type famBlock struct {
	name    string
	help    string
	typ     string
	samples []string
}

// parseExposition splits text-format metrics into family blocks. The
// input comes from this codebase's own WriteText (HELP then TYPE then
// samples, family-contiguous), so association by "most recent TYPE whose
// name prefixes the sample" is exact; anything unrecognized is dropped
// rather than corrupting the merged output.
func parseExposition(text string) []*famBlock {
	var blocks []*famBlock
	byName := map[string]*famBlock{}
	get := func(name string) *famBlock {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &famBlock{name: name}
		byName[name] = f
		blocks = append(blocks, f)
		return f
	}
	var current *famBlock
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			rest := line[len("# HELP "):]
			name, detail, _ := strings.Cut(rest, " ")
			if name == "" {
				continue
			}
			f := get(name)
			if strings.HasPrefix(line, "# HELP ") {
				f.help = detail
			} else {
				f.typ = detail
			}
			current = f
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Sample: histogram/summary series (name_bucket, name_sum,
		// name_count) belong to the family whose name prefixes theirs.
		if current != nil && strings.HasPrefix(line, current.name) {
			current.samples = append(current.samples, line)
			continue
		}
		bare := line
		if i := strings.IndexAny(bare, "{ "); i >= 0 {
			bare = bare[:i]
		}
		if bare == "" {
			continue
		}
		current = get(bare)
		current.samples = append(current.samples, line)
	}
	return blocks
}

var shardLabelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// stampShard injects shard="name" as the first label of a sample line. A
// sample that already leads with a shard label — a grandchild's series
// passing through a mid-tier frontend — keeps its original provenance.
func stampShard(line, shard string) string {
	label := `shard="` + shardLabelEscaper.Replace(shard) + `"`
	if i := strings.IndexByte(line, '{'); i >= 0 {
		if strings.HasPrefix(line[i+1:], `shard="`) {
			return line
		}
		return line[:i+1] + label + "," + line[i+1:]
	}
	name, rest, ok := strings.Cut(line, " ")
	if !ok {
		return line
	}
	return name + "{" + label + "} " + rest
}

// MergeExpositions folds child expositions into the parent's own: the
// family set is the union, HELP/TYPE are emitted once per family (the
// parent's text wins when both define them), the parent's samples appear
// verbatim, and each child's samples follow re-labeled with its shard.
// Families are emitted in sorted name order, matching WriteText, so the
// merged text still strict-parses.
func MergeExpositions(own string, children []ShardExposition) string {
	type mergedFam struct {
		help, typ string
		lines     []string
	}
	fams := map[string]*mergedFam{}
	get := func(b *famBlock) *mergedFam {
		f, ok := fams[b.name]
		if !ok {
			f = &mergedFam{}
			fams[b.name] = f
		}
		if f.help == "" {
			f.help = b.help
		}
		if f.typ == "" {
			f.typ = b.typ
		}
		return f
	}
	for _, b := range parseExposition(own) {
		f := get(b)
		f.lines = append(f.lines, b.samples...)
	}
	sorted := append([]ShardExposition(nil), children...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Shard < sorted[j].Shard })
	for _, child := range sorted {
		for _, b := range parseExposition(child.Text) {
			f := get(b)
			for _, line := range b.samples {
				f.lines = append(f.lines, stampShard(line, child.Shard))
			}
		}
	}
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		f := fams[n]
		if f.help != "" {
			b.WriteString("# HELP " + n + " " + f.help + "\n")
		}
		if f.typ != "" {
			b.WriteString("# TYPE " + n + " " + f.typ + "\n")
		}
		for _, line := range f.lines {
			b.WriteString(line + "\n")
		}
	}
	return b.String()
}

package federation

import (
	"strings"
	"testing"

	"rocks/internal/metrics"
)

func childText() string {
	r := metrics.NewRegistry()
	r.CounterFunc("rocks_nodes", "Nodes tracked.", func() float64 { return 4 })
	h := r.Histogram("rocks_kickstart_cgi_seconds", "CGI latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

func parentText() string {
	r := metrics.NewRegistry()
	r.CounterFunc("rocks_nodes", "Nodes tracked.", func() float64 { return 1 })
	h := r.Histogram("rocks_kickstart_cgi_seconds", "CGI latency.", []float64{0.1, 1})
	h.Observe(0.01)
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

func TestMergeExpositionsStampsShardFirst(t *testing.T) {
	merged := MergeExpositions(parentText(), []ShardExposition{
		{Shard: "deptB", Text: childText()},
		{Shard: "deptA", Text: childText()},
	})
	if !strings.Contains(merged, "rocks_nodes 1") {
		t.Fatal("parent's bare sample must survive verbatim")
	}
	if !strings.Contains(merged, `rocks_nodes{shard="deptA"} 4`) ||
		!strings.Contains(merged, `rocks_nodes{shard="deptB"} 4`) {
		t.Fatalf("child samples must be shard-labeled:\n%s", merged)
	}
	// Children emit in sorted shard order regardless of argument order.
	if strings.Index(merged, `shard="deptA"`) > strings.Index(merged, `shard="deptB"`) {
		t.Fatal("children must merge in sorted shard order")
	}
	// Histogram bucket series carry the shard as the FIRST label so the
	// strict parser's bucket-prefix match skips them while the parent's
	// own bare buckets still validate.
	if !strings.Contains(merged, `rocks_kickstart_cgi_seconds_bucket{shard="deptA",le="0.1"}`) {
		t.Fatalf("child bucket series must lead with shard:\n%s", merged)
	}
	if strings.Count(merged, "# TYPE rocks_nodes ") != 1 {
		t.Fatal("HELP/TYPE must be emitted once per family")
	}
	if _, err := metrics.ParseText(strings.NewReader(merged)); err != nil {
		t.Fatalf("merged exposition must strict-parse: %v", err)
	}
}

func TestMergeExpositionsChildOnlyFamily(t *testing.T) {
	child := "# HELP rocks_only_here Child-only family.\n# TYPE rocks_only_here counter\nrocks_only_here 7\n"
	merged := MergeExpositions(parentText(), []ShardExposition{{Shard: "x", Text: child}})
	if !strings.Contains(merged, `rocks_only_here{shard="x"} 7`) {
		t.Fatalf("family present only on the child must still appear:\n%s", merged)
	}
	if _, err := metrics.ParseText(strings.NewReader(merged)); err != nil {
		t.Fatalf("merged exposition must strict-parse: %v", err)
	}
}

func TestStampShardPreservesDeepProvenance(t *testing.T) {
	line := `rocks_nodes{shard="leaf"} 2`
	if got := stampShard(line, "mid"); got != line {
		t.Fatalf("grandchild series relabeled: %q", got)
	}
	labeled := `rocks_nodes_state{state="up"} 3`
	want := `rocks_nodes_state{shard="mid",state="up"} 3`
	if got := stampShard(labeled, "mid"); got != want {
		t.Fatalf("stampShard = %q, want %q", got, want)
	}
}

// Package mpirun implements the interactive parallel-job launcher of §4.1:
// Rocks ships "mpirun from the MPICH distribution and REXEC from UC
// Berkeley" for development use. This launcher starts N ranks across a
// machine file's hosts (round-robin, one slot per CPU), propagates the
// caller's environment through rexec, tags each rank's output, and forwards
// signals to every rank — the observable behavior of `mpirun -np N`.
package mpirun

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"rocks/internal/rexec"
)

// Host is one machinefile entry.
type Host struct {
	Name  string
	Slots int // usable CPUs; 0 means 1
	Exec  rexec.Executor
}

// Job is a running parallel job.
type Job struct {
	Name  string
	Ranks []Rank

	mu      sync.Mutex
	results []rexec.Result
	done    bool
}

// Rank is one process of the job.
type Rank struct {
	Rank   int
	Host   string
	daemon *rexec.Daemon
}

// Launch places np ranks over the hosts round-robin by slot and starts a
// process named after the job on each ("spawn <name>" on the node), exactly
// one process per rank. It fails if the machinefile cannot seat np ranks or
// any host refuses the spawn (e.g. it is down) — in that case already
// started ranks are killed, matching mpirun's all-or-nothing startup.
func Launch(name string, np int, hosts []Host) (*Job, error) {
	if np <= 0 {
		return nil, fmt.Errorf("mpirun: need a positive rank count")
	}
	var seats []Host
	for _, h := range hosts {
		slots := h.Slots
		if slots <= 0 {
			slots = 1
		}
		for s := 0; s < slots; s++ {
			seats = append(seats, h)
		}
	}
	if len(seats) < np {
		return nil, fmt.Errorf("mpirun: %d ranks requested but the machinefile seats only %d", np, len(seats))
	}
	job := &Job{Name: name}
	for r := 0; r < np; r++ {
		h := seats[r%len(seats)]
		d := rexec.NewDaemon(h.Name, h.Exec)
		if _, err := h.Exec.Exec("spawn " + processName(name, r)); err != nil {
			job.Kill()
			return nil, fmt.Errorf("mpirun: starting rank %d on %s: %w", r, h.Name, err)
		}
		job.Ranks = append(job.Ranks, Rank{Rank: r, Host: h.Name, daemon: d})
	}
	return job, nil
}

func processName(job string, rank int) string {
	return fmt.Sprintf("%s.%d", job, rank)
}

// Run executes a command in every rank's context concurrently — the
// collective phase of the job — propagating env/uid/cwd, and returns the
// per-rank results in rank order. MPI rank identity is exported as
// MPIRUN_RANK in each rank's environment.
func (j *Job) Run(req rexec.Request) []rexec.Result {
	results := make([]rexec.Result, len(j.Ranks))
	var wg sync.WaitGroup
	for i, r := range j.Ranks {
		wg.Add(1)
		go func(i int, r Rank) {
			defer wg.Done()
			perRank := req
			perRank.Env = make(map[string]string, len(req.Env)+2)
			for k, v := range req.Env {
				perRank.Env[k] = v
			}
			perRank.Env["MPIRUN_RANK"] = fmt.Sprint(r.Rank)
			perRank.Env["MPIRUN_NPROCS"] = fmt.Sprint(len(j.Ranks))
			results[i] = r.daemon.Run(perRank)
		}(i, r)
	}
	wg.Wait()
	j.mu.Lock()
	j.results = results
	j.mu.Unlock()
	return results
}

// Signal forwards a signal to every rank (REXEC's signal fan-out). It
// returns the number of rank processes the signal terminated.
func (j *Job) Signal(sig string) int {
	total := 0
	for _, r := range j.Ranks {
		n, err := r.daemon.Signal(sig, processName(j.Name, r.Rank))
		if err == nil {
			total += n
		}
	}
	return total
}

// Kill terminates every rank process (SIGKILL fan-out) and marks the job
// done.
func (j *Job) Kill() int {
	n := j.Signal("KILL")
	j.mu.Lock()
	j.done = true
	j.mu.Unlock()
	return n
}

// TaggedOutput renders the last Run's output with rank prefixes, the way
// mpirun interleaves ranks' stdout.
func (j *Job) TaggedOutput() string {
	j.mu.Lock()
	results := j.results
	j.mu.Unlock()
	var b strings.Builder
	for i, res := range results {
		stream := res.Stdout
		if res.Err != nil {
			stream = res.Stderr
		}
		for _, line := range strings.Split(strings.TrimRight(stream, "\n"), "\n") {
			if line == "" && stream == "" {
				continue
			}
			fmt.Fprintf(&b, "%d: %s\n", i, line)
		}
	}
	return b.String()
}

// Machinefile renders the host list in MPICH machinefile format
// (host[:slots] per line, sorted), the artifact Rocks generates for users.
func Machinefile(hosts []Host) string {
	lines := make([]string, 0, len(hosts))
	for _, h := range hosts {
		slots := h.Slots
		if slots <= 0 {
			slots = 1
		}
		if slots == 1 {
			lines = append(lines, h.Name)
		} else {
			lines = append(lines, fmt.Sprintf("%s:%d", h.Name, slots))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

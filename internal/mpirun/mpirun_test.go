package mpirun

import (
	"fmt"
	"strings"
	"testing"

	"rocks/internal/hardware"
	"rocks/internal/node"
	"rocks/internal/rexec"
)

func upNodes(t *testing.T, count, cpus int) []Host {
	t.Helper()
	macs := hardware.NewMACAllocator()
	hosts := make([]Host, count)
	for i := range hosts {
		n := node.New(hardware.PIIICompute(macs, 733))
		name := fmt.Sprintf("compute-0-%d", i)
		n.SetName(name)
		n.SetState(node.StateUp)
		hosts[i] = Host{Name: name, Slots: cpus, Exec: n}
	}
	return hosts
}

func TestLaunchPlacesRanksRoundRobin(t *testing.T) {
	hosts := upNodes(t, 2, 2)
	job, err := Launch("cpi", 4, hosts)
	if err != nil {
		t.Fatal(err)
	}
	defer job.Kill()
	if len(job.Ranks) != 4 {
		t.Fatalf("ranks = %d", len(job.Ranks))
	}
	// Round-robin over 4 seats (2 hosts × 2 slots): c0 c0 c1 c1? Seats are
	// built host-major, so ranks land c0,c0,c1,c1 in rank order... actually
	// seats = [c0,c0,c1,c1] and rank r takes seats[r%4].
	perHost := map[string]int{}
	for _, r := range job.Ranks {
		perHost[r.Host]++
	}
	if perHost["compute-0-0"] != 2 || perHost["compute-0-1"] != 2 {
		t.Errorf("placement = %v", perHost)
	}
	// One process per rank exists on the nodes.
	for _, h := range hosts {
		out, _ := h.Exec.Exec("ps")
		if strings.Count(out, "cpi.") != 2 {
			t.Errorf("%s ps = %q", h.Name, out)
		}
	}
}

func TestLaunchOverSubscription(t *testing.T) {
	hosts := upNodes(t, 2, 1)
	if _, err := Launch("big", 3, hosts); err == nil {
		t.Error("3 ranks on 2 seats should fail")
	}
	if _, err := Launch("none", 0, hosts); err == nil {
		t.Error("0 ranks should fail")
	}
}

func TestLaunchFailureCleansUp(t *testing.T) {
	hosts := upNodes(t, 2, 1)
	// Second node is down: startup must fail and kill rank 0.
	downNode := hosts[1].Exec.(*node.Node)
	downNode.SetState(node.StateOff)
	if _, err := Launch("cpi", 2, hosts); err == nil {
		t.Fatal("launch with a down node should fail")
	}
	out, _ := hosts[0].Exec.Exec("ps")
	if strings.Contains(out, "cpi.") {
		t.Errorf("rank 0 leaked after failed startup: %q", out)
	}
}

func TestRunPropagatesRankEnv(t *testing.T) {
	hosts := upNodes(t, 2, 1)
	job, err := Launch("env", 2, hosts)
	if err != nil {
		t.Fatal(err)
	}
	defer job.Kill()
	results := job.Run(rexec.Request{Command: "printenv MPIRUN_RANK",
		Env: map[string]string{"LD_LIBRARY_PATH": "/opt/mpich/lib"}})
	for i, r := range results {
		if r.Err != nil || strings.TrimSpace(r.Stdout) != fmt.Sprint(i) {
			t.Errorf("rank %d env = %+v", i, r)
		}
	}
	results = job.Run(rexec.Request{Command: "printenv MPIRUN_NPROCS"})
	for _, r := range results {
		if strings.TrimSpace(r.Stdout) != "2" {
			t.Errorf("NPROCS = %q", r.Stdout)
		}
	}
	// The user's own environment rides along.
	results = job.Run(rexec.Request{Command: "printenv LD_LIBRARY_PATH",
		Env: map[string]string{"LD_LIBRARY_PATH": "/opt/mpich/lib"}})
	for _, r := range results {
		if strings.TrimSpace(r.Stdout) != "/opt/mpich/lib" {
			t.Errorf("user env lost: %q", r.Stdout)
		}
	}
}

func TestTaggedOutput(t *testing.T) {
	hosts := upNodes(t, 2, 1)
	job, err := Launch("hello", 2, hosts)
	if err != nil {
		t.Fatal(err)
	}
	defer job.Kill()
	job.Run(rexec.Request{Command: "hostname"})
	out := job.TaggedOutput()
	if !strings.Contains(out, "0: compute-0-0") || !strings.Contains(out, "1: compute-0-1") {
		t.Errorf("tagged = %q", out)
	}
}

func TestSignalForwarding(t *testing.T) {
	hosts := upNodes(t, 2, 2)
	job, err := Launch("sim", 4, hosts)
	if err != nil {
		t.Fatal(err)
	}
	if n := job.Signal("USR1"); n != 0 {
		t.Errorf("USR1 killed %d ranks", n)
	}
	if n := job.Kill(); n != 4 {
		t.Errorf("KILL terminated %d ranks, want 4", n)
	}
	for _, h := range hosts {
		out, _ := h.Exec.Exec("ps")
		if strings.Contains(out, "sim.") {
			t.Errorf("ranks survived on %s: %q", h.Name, out)
		}
	}
}

func TestMachinefile(t *testing.T) {
	hosts := []Host{{Name: "compute-0-1", Slots: 2}, {Name: "compute-0-0"}}
	got := Machinefile(hosts)
	if got != "compute-0-0\ncompute-0-1:2\n" {
		t.Errorf("machinefile = %q", got)
	}
}

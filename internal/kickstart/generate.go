package kickstart

import (
	"fmt"
	"sort"
	"strings"
)

// Request carries everything the CGI script derives from the requesting
// node's IP address via SQL queries (§6.1): which appliance root to
// traverse, the node's architecture, and the localization attributes
// substituted into scripts.
type Request struct {
	Appliance string // graph root, e.g. "compute"
	Arch      string // "i386", "athlon", "ia64"
	NodeName  string // e.g. "compute-0-0"
	// Attrs are site/node attributes available to node files as
	// ${Kickstart_*} references, e.g. Kickstart_PrivateKickstartHost.
	Attrs map[string]string
	// NodeAttrs are per-node attributes layered over Attrs (NodeAttrs win
	// on collision). References that resolve from NodeAttrs survive
	// shared-profile memoization (ProfileCache) and are substituted per
	// request, so a thousand nodes of one appliance share one graph
	// traversal.
	NodeAttrs map[string]string
}

// KnownArches lists the processor architectures one Rocks graph supports —
// the Meteor cluster's three ISAs (§6.1).
var KnownArches = []string{"athlon", "i386", "ia64"}

// KnownArch reports whether arch is in KnownArches. The kickstart CGI uses
// it to validate client-supplied architecture values before they reach the
// database.
func KnownArch(arch string) bool {
	for _, a := range KnownArches {
		if a == arch {
			return true
		}
	}
	return false
}

// Profile is a generated Kickstart description, the structured form of the
// text file anaconda consumes.
type Profile struct {
	NodeName  string
	Appliance string
	Arch      string
	Commands  []string // command-section lines (url, lang, part, ...)
	Packages  []string // %packages, deduplicated, in traversal order
	Pre       []Script
	Post      []Script
	// Modules lists the node files that contributed, in traversal order —
	// useful for diagnostics and the DOT rendering.
	Modules []string
}

// Generate traverses the framework for the request and assembles a Profile.
// Package lists are deduplicated (first occurrence wins); command lines are
// deduplicated exactly; scripts are concatenated in traversal order.
// Attribute references of the form ${Name} in command lines and scripts are
// replaced from req.Attrs overlaid with req.NodeAttrs; a reference to a
// missing attribute is an error, because a kickstart with a dangling
// reference bricks the install.
func (f *Framework) Generate(req Request) (*Profile, error) {
	if req.Arch == "" {
		req.Arch = "i386"
	}
	attrs := req.Attrs
	if len(req.NodeAttrs) > 0 {
		attrs = make(map[string]string, len(req.Attrs)+len(req.NodeAttrs))
		for k, v := range req.Attrs {
			attrs[k] = v
		}
		for k, v := range req.NodeAttrs {
			attrs[k] = v
		}
	}
	t, err := f.generateTemplate(req.Appliance, req.Arch, attrs)
	if err != nil {
		return nil, err
	}
	return t.instantiate(req.NodeName, nil)
}

// seg is one piece of a compiled template: literal text, or a deferred
// ${ref} attribute reference left for per-node substitution.
type seg struct {
	lit string
	ref string // non-empty means a deferred reference named ref
}

// tmpl is a compiled command line or script body. Shared attributes are
// already folded into the literals; only deferred references remain.
type tmpl struct {
	module string // for error attribution
	segs   []seg
}

// isLiteral reports whether the template has no deferred references, in
// which case instantiation is a free string share.
func (t tmpl) isLiteral() bool { return len(t.segs) == 1 && t.segs[0].ref == "" }

// canonical renders the template with deferred references in ${Name} form —
// a stable dedup key within one shared profile.
func (t tmpl) canonical() string {
	if t.isLiteral() {
		return t.segs[0].lit
	}
	var b strings.Builder
	for _, s := range t.segs {
		if s.ref != "" {
			b.WriteString("${")
			b.WriteString(s.ref)
			b.WriteString("}")
		} else {
			b.WriteString(s.lit)
		}
	}
	return b.String()
}

// instantiate resolves the remaining references from attrs. A reference
// still missing is an error: every ${Name} must resolve somewhere before
// the profile is served.
func (t tmpl) instantiate(attrs map[string]string) (string, error) {
	if t.isLiteral() {
		return t.segs[0].lit, nil
	}
	var b strings.Builder
	for _, s := range t.segs {
		if s.ref == "" {
			b.WriteString(s.lit)
			continue
		}
		val, ok := attrs[s.ref]
		if !ok {
			return "", fmt.Errorf("kickstart: module %q references undefined attribute %q", t.module, s.ref)
		}
		b.WriteString(val)
	}
	return b.String(), nil
}

// compileTemplate expands ${Name} references from attrs in a single pass.
// $$ escapes a literal $; a bare $ not followed by { passes through (shell
// variables in post scripts). References missing from attrs are not an
// error here: they become deferred segments resolved (or rejected) at
// instantiation, which is what lets a memoized shared profile carry
// per-node references like ${Kickstart_PublicHostname}.
func compileTemplate(s string, attrs map[string]string, module string) (tmpl, error) {
	t := tmpl{module: module}
	if !strings.Contains(s, "$") {
		t.segs = []seg{{lit: s}}
		return t, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		c := s[i]
		if c != '$' {
			b.WriteByte(c)
			i++
			continue
		}
		if i+1 < len(s) && s[i+1] == '$' {
			b.WriteByte('$')
			i += 2
			continue
		}
		if i+1 < len(s) && s[i+1] == '{' {
			end := strings.IndexByte(s[i+2:], '}')
			if end < 0 {
				return tmpl{}, fmt.Errorf("kickstart: module %q: unterminated ${ reference", module)
			}
			name := s[i+2 : i+2+end]
			if val, ok := attrs[name]; ok {
				b.WriteString(val)
			} else {
				t.segs = append(t.segs, seg{lit: b.String()})
				b.Reset()
				t.segs = append(t.segs, seg{ref: name})
			}
			i += 2 + end + 1
			continue
		}
		b.WriteByte('$')
		i++
	}
	t.segs = append(t.segs, seg{lit: b.String()})
	return t, nil
}

// substitute expands ${Name} references from attrs. $$ escapes a literal $.
func substitute(s string, attrs map[string]string, module string) (string, error) {
	t, err := compileTemplate(s, attrs, module)
	if err != nil {
		return "", err
	}
	return t.instantiate(nil)
}

// scriptTemplate is a %pre/%post fragment with its body compiled.
type scriptTemplate struct {
	interpreter string
	text        tmpl
}

// profileTemplate is the memoizable shared form of a generated profile:
// everything identical across all nodes of one (appliance, arch,
// shared-attrs) class, with per-node references still deferred. ProfileCache
// stores these; instantiate stamps out the per-node Profile.
type profileTemplate struct {
	appliance string
	arch      string
	modules   []string
	packages  []string
	commands  []tmpl
	pre       []scriptTemplate
	post      []scriptTemplate
}

// generateTemplate runs the expensive, node-independent part of Generate:
// the graph traversal, package deduplication, and substitution of the
// shared attributes. References not covered by attrs stay deferred.
func (f *Framework) generateTemplate(appliance, arch string, attrs map[string]string) (*profileTemplate, error) {
	nodes, err := f.Traverse(appliance, arch)
	if err != nil {
		return nil, err
	}
	t := &profileTemplate{appliance: appliance, arch: arch}
	seenPkg := map[string]bool{}
	seenCmd := map[string]bool{}
	for _, nf := range nodes {
		t.modules = append(t.modules, nf.Name)
		for _, line := range nf.Main {
			ct, err := compileTemplate(line, attrs, nf.Name)
			if err != nil {
				return nil, err
			}
			if key := ct.canonical(); !seenCmd[key] {
				seenCmd[key] = true
				t.commands = append(t.commands, ct)
			}
		}
		for _, pkg := range nf.Packages {
			if pkg.matches(arch) && !seenPkg[pkg.Name] {
				seenPkg[pkg.Name] = true
				t.packages = append(t.packages, pkg.Name)
			}
		}
		for _, s := range nf.Pre {
			if !s.matches(arch) {
				continue
			}
			ct, err := compileTemplate(s.Text, attrs, nf.Name)
			if err != nil {
				return nil, err
			}
			t.pre = append(t.pre, scriptTemplate{interpreter: s.Interpreter, text: ct})
		}
		for _, s := range nf.Post {
			if !s.matches(arch) {
				continue
			}
			ct, err := compileTemplate(s.Text, attrs, nf.Name)
			if err != nil {
				return nil, err
			}
			t.post = append(t.post, scriptTemplate{interpreter: s.Interpreter, text: ct})
		}
	}
	return t, nil
}

// instantiate stamps a per-node Profile out of the shared template,
// resolving deferred references from nodeAttrs. Command lines are
// re-deduplicated on their final text so instantiation matches what a full
// Generate of the merged attributes would produce.
func (t *profileTemplate) instantiate(nodeName string, nodeAttrs map[string]string) (*Profile, error) {
	p := &Profile{
		NodeName:  nodeName,
		Appliance: t.appliance,
		Arch:      t.arch,
		Packages:  append([]string(nil), t.packages...),
		Modules:   append([]string(nil), t.modules...),
	}
	seenCmd := make(map[string]bool, len(t.commands))
	for _, ct := range t.commands {
		line, err := ct.instantiate(nodeAttrs)
		if err != nil {
			return nil, err
		}
		if !seenCmd[line] {
			seenCmd[line] = true
			p.Commands = append(p.Commands, line)
		}
	}
	for _, s := range t.pre {
		text, err := s.text.instantiate(nodeAttrs)
		if err != nil {
			return nil, err
		}
		p.Pre = append(p.Pre, Script{Interpreter: s.interpreter, Text: text})
	}
	for _, s := range t.post {
		text, err := s.text.instantiate(nodeAttrs)
		if err != nil {
			return nil, err
		}
		p.Post = append(p.Post, Script{Interpreter: s.interpreter, Text: text})
	}
	return p, nil
}

// Render emits the Red Hat-compliant text Kickstart file: the command
// section, %packages, then %pre and %post sections. This is the exact
// artifact the node's installer fetches over HTTP.
func (p *Profile) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Kickstart file for %s (appliance %q, arch %s)\n", p.NodeName, p.Appliance, p.Arch)
	fmt.Fprintf(&b, "# Generated by the Rocks kickstart CGI from modules: %s\n", strings.Join(p.Modules, ", "))
	for _, c := range p.Commands {
		b.WriteString(c)
		b.WriteByte('\n')
	}
	b.WriteString("\n%packages\n")
	for _, pkg := range p.Packages {
		b.WriteString(pkg)
		b.WriteByte('\n')
	}
	for _, s := range p.Pre {
		b.WriteString(sectionHeader("%pre", s.Interpreter))
		b.WriteString(s.Text)
		if !strings.HasSuffix(s.Text, "\n") {
			b.WriteByte('\n')
		}
	}
	for _, s := range p.Post {
		b.WriteString(sectionHeader("%post", s.Interpreter))
		b.WriteString(s.Text)
		if !strings.HasSuffix(s.Text, "\n") {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func sectionHeader(section, interp string) string {
	if interp != "" {
		return "\n" + section + " --interpreter " + interp + "\n"
	}
	return "\n" + section + "\n"
}

// ParseProfile parses a rendered Kickstart file back into a Profile — the
// installer side of the contract. Only the structure Render emits is
// understood (command lines, %packages, %pre/%post sections).
func ParseProfile(text string) (*Profile, error) {
	p := &Profile{}
	section := "commands"
	var cur *Script
	flush := func() {
		if cur != nil {
			cur.Text = strings.TrimRight(cur.Text, "\n")
			if section == "pre" {
				p.Pre = append(p.Pre, *cur)
			} else {
				p.Post = append(p.Post, *cur)
			}
			cur = nil
		}
	}
	for _, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "%packages"):
			flush()
			section = "packages"
			continue
		case strings.HasPrefix(trimmed, "%pre"), strings.HasPrefix(trimmed, "%post"):
			flush()
			if strings.HasPrefix(trimmed, "%pre") {
				section = "pre"
			} else {
				section = "post"
			}
			cur = &Script{}
			if idx := strings.Index(trimmed, "--interpreter"); idx >= 0 {
				cur.Interpreter = strings.TrimSpace(trimmed[idx+len("--interpreter"):])
			}
			continue
		}
		switch section {
		case "commands":
			if trimmed == "" || strings.HasPrefix(trimmed, "#") {
				continue
			}
			p.Commands = append(p.Commands, trimmed)
		case "packages":
			if trimmed == "" || strings.HasPrefix(trimmed, "#") {
				continue
			}
			p.Packages = append(p.Packages, trimmed)
		case "pre", "post":
			cur.Text += line + "\n"
		}
	}
	flush()
	if len(p.Commands) == 0 && len(p.Packages) == 0 {
		return nil, fmt.Errorf("kickstart: text has no command section and no packages; not a kickstart file")
	}
	return p, nil
}

// CommandValue returns the argument of the first command line starting with
// the given directive (e.g. CommandValue("url") → "--url http://...").
func (p *Profile) CommandValue(directive string) (string, bool) {
	for _, c := range p.Commands {
		fields := strings.Fields(c)
		if len(fields) > 0 && fields[0] == directive {
			return strings.TrimSpace(strings.TrimPrefix(c, fields[0])), true
		}
	}
	return "", false
}

// SortedPackages returns the package list sorted (Render preserves
// traversal order; comparisons in tests want a canonical order).
func (p *Profile) SortedPackages() []string {
	out := append([]string(nil), p.Packages...)
	sort.Strings(out)
	return out
}

package kickstart

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the graph in Graphviz dot syntax — the visualization the
// paper shows as Figure 4. Appliance roots are drawn as boxes, ordinary
// modules as ellipses; arch-restricted edges are labelled.
func (f *Framework) DOT() string {
	var b strings.Builder
	b.WriteString("digraph rocks {\n")
	b.WriteString("\trankdir=TB;\n")
	b.WriteString("\tnode [shape=ellipse];\n")
	roots := map[string]bool{}
	for _, r := range f.Graph.Roots() {
		roots[r] = true
	}
	names := f.Graph.NodeNames()
	// Include node files that no edge mentions (isolated modules).
	mentioned := map[string]bool{}
	for _, n := range names {
		mentioned[n] = true
	}
	var isolated []string
	for n := range f.Nodes {
		if !mentioned[n] {
			isolated = append(isolated, n)
		}
	}
	sort.Strings(isolated)
	names = append(names, isolated...)

	for _, n := range names {
		attrs := []string{fmt.Sprintf("label=%q", n)}
		if roots[n] {
			attrs = append(attrs, "shape=box", "style=bold")
		}
		if _, ok := f.Nodes[n]; !ok {
			attrs = append(attrs, `color=red`, `label="`+n+`\n(missing)"`)
		}
		fmt.Fprintf(&b, "\t%q [%s];\n", n, strings.Join(attrs, ", "))
	}
	for _, e := range f.Graph.Edges {
		if len(e.Arches) > 0 {
			fmt.Fprintf(&b, "\t%q -> %q [label=%q];\n", e.From, e.To, strings.Join(e.Arches, ","))
		} else {
			fmt.Fprintf(&b, "\t%q -> %q;\n", e.From, e.To)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

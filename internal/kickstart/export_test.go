package kickstart

import (
	"os"
	"reflect"
	"strings"
	"testing"
)

func TestNodeXMLRoundTrip(t *testing.T) {
	orig := &NodeFile{
		Name:        "mpi",
		Description: "Message passing & libraries <with markup>",
		Packages: []PackageRef{
			{Name: "mpich"},
			{Name: "mpich-gm", Arches: []string{"i386", "athlon"}},
		},
		Main: []string{"install", "url --url ${Kickstart_DistURL}"},
		Pre:  []Script{{Text: "echo pre"}},
		Post: []Script{
			{Text: "chkconfig foo on"},
			{Interpreter: "/usr/bin/python", Text: "print('hi')", Arches: []string{"ia64"}},
		},
	}
	parsed, err := ParseNode("mpi", strings.NewReader(orig.XML()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Description != orig.Description {
		t.Errorf("description = %q", parsed.Description)
	}
	if !reflect.DeepEqual(parsed.Packages, orig.Packages) {
		t.Errorf("packages = %+v", parsed.Packages)
	}
	if !reflect.DeepEqual(parsed.Main, orig.Main) {
		t.Errorf("main = %+v", parsed.Main)
	}
	if len(parsed.Post) != 2 || parsed.Post[1].Interpreter != "/usr/bin/python" ||
		!reflect.DeepEqual(parsed.Post[1].Arches, []string{"ia64"}) {
		t.Errorf("post = %+v", parsed.Post)
	}
	if parsed.Post[0].Text != "chkconfig foo on" {
		t.Errorf("post text = %q", parsed.Post[0].Text)
	}
}

func TestGraphXMLRoundTrip(t *testing.T) {
	g := &Graph{Name: "default", Description: "test graph"}
	g.AddEdge("compute", "mpi")
	g.AddEdge("compute", "myrinet", "i386", "athlon")
	parsed, err := ParseGraph("default", strings.NewReader(g.XML()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Description != g.Description || !reflect.DeepEqual(parsed.Edges, g.Edges) {
		t.Errorf("parsed = %+v", parsed)
	}
}

// TestExportLoadRoundTrip writes the full default framework to disk and
// loads it back: the build-directory cycle of §6.2.3. The reloaded
// framework must generate byte-identical kickstart files.
func TestExportLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	orig := DefaultFramework()
	if err := orig.Export(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir + "/nodes")
	if err != nil || len(entries) != len(orig.Nodes) {
		t.Fatalf("exported %d node files, want %d (%v)", len(entries), len(orig.Nodes), err)
	}
	loaded, err := LoadFS(os.DirFS(dir))
	if err != nil {
		t.Fatal(err)
	}
	if errs := loaded.Validate("i386", "athlon", "ia64"); len(errs) != 0 {
		t.Fatalf("reloaded framework invalid: %v", errs)
	}
	attrs := DefaultAttrs("http://10.1.1.1/dist", "10.1.1.1")
	for _, app := range []string{"compute", "frontend"} {
		for _, arch := range []string{"i386", "ia64"} {
			a, err1 := orig.Generate(Request{Appliance: app, Arch: arch, NodeName: "n", Attrs: attrs})
			b, err2 := loaded.Generate(Request{Appliance: app, Arch: arch, NodeName: "n", Attrs: attrs})
			if err1 != nil || err2 != nil {
				t.Fatalf("%s/%s: %v %v", app, arch, err1, err2)
			}
			if a.Render() != b.Render() {
				t.Errorf("%s/%s: kickstart changed across export/load", app, arch)
			}
		}
	}
}

// TestExportedFigure2Style checks the exported dhcp-server module still
// carries the paper's awk script intact.
func TestExportedFigure2Style(t *testing.T) {
	fw := DefaultFramework()
	xmlText := fw.Nodes["dhcp-server"].XML()
	for _, want := range []string{"<package>dhcp</package>", "DHCPD_INTERFACES"} {
		if !strings.Contains(xmlText, want) {
			t.Errorf("export missing %q:\n%s", want, xmlText)
		}
	}
	parsed, err := ParseNode("dhcp-server", strings.NewReader(xmlText))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(parsed.Post[0].Text, `printf("DHCPD_INTERFACES=\"eth0\"\n");`) {
		t.Errorf("awk script mangled: %q", parsed.Post[0].Text)
	}
}

package kickstart

import (
	"os"
	"strings"
	"testing"
)

// TestFig2DHCPNodeFile parses the paper's Figure 2 node file verbatim
// (upper-case tags, XML comment inside <POST>, the awk rewrite script).
func TestFig2DHCPNodeFile(t *testing.T) {
	f, err := os.Open("testdata/nodes/dhcp-server.xml")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	nf, err := ParseNode("dhcp-server", f)
	if err != nil {
		t.Fatal(err)
	}
	if nf.Description != "Setup the DHCP server for the cluster" {
		t.Errorf("description = %q", nf.Description)
	}
	if len(nf.Packages) != 1 || nf.Packages[0].Name != "dhcp" {
		t.Errorf("packages = %+v", nf.Packages)
	}
	if len(nf.Post) != 1 {
		t.Fatalf("post sections = %d, want 1", len(nf.Post))
	}
	post := nf.Post[0].Text
	for _, want := range []string{
		"/^DHCPD_INTERFACES/",
		`printf("DHCPD_INTERFACES=\"eth0\"\n");`,
		"mv /tmp/dhcpd /etc/sysconfig/dhcpd",
	} {
		if !strings.Contains(post, want) {
			t.Errorf("post script missing %q:\n%s", want, post)
		}
	}
}

func TestParseNodeArchRestrictions(t *testing.T) {
	f, err := os.Open("testdata/nodes/mpi.xml")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	nf, err := ParseNode("mpi", f)
	if err != nil {
		t.Fatal(err)
	}
	if len(nf.Packages) != 3 {
		t.Fatalf("packages = %+v", nf.Packages)
	}
	gm := nf.Packages[1]
	if gm.Name != "mpich-gm" || len(gm.Arches) != 2 {
		t.Errorf("arch-restricted package = %+v", gm)
	}
	if !gm.matches("i386") || !gm.matches("athlon") || gm.matches("ia64") {
		t.Error("arch matching wrong")
	}
	if len(nf.Post) != 1 || !nf.Post[0].matches("i386") || nf.Post[0].matches("ia64") {
		t.Errorf("post arch restriction wrong: %+v", nf.Post)
	}
}

func TestParseNodeErrors(t *testing.T) {
	if _, err := ParseNode("bad", strings.NewReader("<kickstart><package></package></kickstart>")); err == nil {
		t.Error("empty package should fail")
	}
	if _, err := ParseNode("bad", strings.NewReader("not xml at all <")); err == nil {
		t.Error("malformed XML should fail")
	}
}

func TestParseGraphFig3(t *testing.T) {
	f, err := os.Open("testdata/graphs/default.xml")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := ParseGraph("default", f)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 3 {
		t.Fatalf("edges = %+v", g.Edges)
	}
	if got := g.Successors("compute", "i386"); len(got) != 1 || got[0] != "mpi" {
		t.Errorf("i386 successors of compute = %v", got)
	}
	if got := g.Successors("compute", "ia64"); len(got) != 2 {
		t.Errorf("ia64 successors of compute = %v (arch edge should apply)", got)
	}
	if roots := g.Roots(); len(roots) != 1 || roots[0] != "compute" {
		t.Errorf("roots = %v", roots)
	}
}

func TestLoadFS(t *testing.T) {
	fw, err := LoadFS(os.DirFS("testdata"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fw.Nodes) != 4 {
		t.Fatalf("loaded %d nodes, want 4", len(fw.Nodes))
	}
	order, err := fw.Traverse("compute", "i386")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, nf := range order {
		names = append(names, nf.Name)
	}
	if strings.Join(names, " ") != "compute mpi c-development" {
		t.Errorf("traversal = %v, want the paper's compute, mpi, c-development", names)
	}
}

func TestTraverseMissingNode(t *testing.T) {
	fw := NewFramework()
	fw.AddNode(&NodeFile{Name: "compute"})
	fw.Graph.AddEdge("compute", "ghost")
	_, err := fw.Traverse("compute", "i386")
	te, ok := err.(*TraversalError)
	if !ok {
		t.Fatalf("err = %v, want *TraversalError", err)
	}
	if te.Missing != "ghost" || strings.Join(te.Path, "->") != "compute->ghost" {
		t.Errorf("TraversalError = %+v", te)
	}
}

func TestTraverseCycleTerminates(t *testing.T) {
	fw := NewFramework()
	fw.AddNode(&NodeFile{Name: "a"})
	fw.AddNode(&NodeFile{Name: "b"})
	fw.Graph.AddEdge("a", "b")
	fw.Graph.AddEdge("b", "a")
	order, err := fw.Traverse("a", "i386")
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Errorf("cycle traversal visited %d nodes, want 2", len(order))
	}
}

func TestTraverseDiamondVisitsOnce(t *testing.T) {
	fw := NewFramework()
	for _, n := range []string{"root", "l", "r", "shared"} {
		fw.AddNode(&NodeFile{Name: n, Packages: []PackageRef{{Name: "pkg-" + n}}})
	}
	fw.Graph.AddEdge("root", "l")
	fw.Graph.AddEdge("root", "r")
	fw.Graph.AddEdge("l", "shared")
	fw.Graph.AddEdge("r", "shared")
	order, err := fw.Traverse("root", "i386")
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Errorf("diamond visited %d nodes, want 4", len(order))
	}
}

func TestDefaultFrameworkValidates(t *testing.T) {
	fw := DefaultFramework()
	if errs := fw.Validate("i386", "athlon", "ia64"); len(errs) != 0 {
		t.Fatalf("default framework invalid: %v", errs)
	}
	roots := fw.Graph.Roots()
	if strings.Join(roots, " ") != "compute frontend" {
		t.Errorf("roots = %v, want [compute frontend]", roots)
	}
}

// TestDefaultComputeHas162Packages pins the compute appliance at the
// paper's package count (Figure 7: "Total ... 162" packages).
func TestDefaultComputeHas162Packages(t *testing.T) {
	fw := DefaultFramework()
	p, err := fw.Generate(Request{Appliance: "compute", Arch: "i386", NodeName: "compute-0-0",
		Attrs: DefaultAttrs("http://10.1.1.1/dist", "10.1.1.1")})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Packages) != 162 {
		t.Errorf("compute/i386 resolves %d packages, want 162", len(p.Packages))
	}
	// IA-64 nodes skip the Myrinet modules (arch-restricted edge).
	p64, err := fw.Generate(Request{Appliance: "compute", Arch: "ia64", NodeName: "compute-1-0",
		Attrs: DefaultAttrs("http://10.1.1.1/dist", "10.1.1.1")})
	if err != nil {
		t.Fatal(err)
	}
	if len(p64.Packages) != 160 {
		t.Errorf("compute/ia64 resolves %d packages, want 160 (no gm, no myrinet-gm-src)", len(p64.Packages))
	}
	for _, pkg := range p64.Packages {
		if pkg == "gm" || pkg == "myrinet-gm-src" {
			t.Errorf("ia64 profile must not contain %s", pkg)
		}
	}
}

func TestGenerateSubstitutesAttributes(t *testing.T) {
	fw := DefaultFramework()
	p, err := fw.Generate(Request{Appliance: "compute", Arch: "i386", NodeName: "compute-0-0",
		Attrs: DefaultAttrs("http://10.1.1.1/dist", "10.1.1.1")})
	if err != nil {
		t.Fatal(err)
	}
	url, ok := p.CommandValue("url")
	if !ok || url != "--url http://10.1.1.1/dist" {
		t.Errorf("url directive = %q, %v", url, ok)
	}
	text := p.Render()
	if strings.Contains(text, "${") {
		t.Errorf("rendered kickstart still contains unexpanded attributes:\n%s", text)
	}
	if !strings.Contains(text, "authconfig --enablenis --nisdomain rocks") {
		t.Error("NIS post script not substituted")
	}
}

func TestGenerateUndefinedAttributeFails(t *testing.T) {
	fw := DefaultFramework()
	_, err := fw.Generate(Request{Appliance: "compute", Arch: "i386", Attrs: map[string]string{}})
	if err == nil || !strings.Contains(err.Error(), "undefined attribute") {
		t.Errorf("missing attribute should fail, got %v", err)
	}
}

func TestSubstituteEscapes(t *testing.T) {
	got, err := substitute("cost: $$5 and $HOME stays", nil, "m")
	if err != nil {
		t.Fatal(err)
	}
	if got != "cost: $5 and $HOME stays" {
		t.Errorf("substitute = %q", got)
	}
	if _, err := substitute("${unterminated", nil, "m"); err == nil {
		t.Error("unterminated reference should fail")
	}
}

func TestRenderAndParseRoundTrip(t *testing.T) {
	fw := DefaultFramework()
	p, err := fw.Generate(Request{Appliance: "compute", Arch: "i386", NodeName: "compute-0-0",
		Attrs: DefaultAttrs("http://10.1.1.1/dist", "10.1.1.1")})
	if err != nil {
		t.Fatal(err)
	}
	text := p.Render()
	q, err := ParseProfile(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Packages) != len(p.Packages) {
		t.Errorf("round-trip packages %d != %d", len(q.Packages), len(p.Packages))
	}
	if len(q.Commands) != len(p.Commands) {
		t.Errorf("round-trip commands %d != %d", len(q.Commands), len(p.Commands))
	}
	if len(q.Post) != len(p.Post) {
		t.Errorf("round-trip post sections %d != %d", len(q.Post), len(p.Post))
	}
	// The Figure 2 awk script must survive the round trip byte-for-byte in
	// content terms.
	var found bool
	for _, s := range q.Post {
		if strings.Contains(s.Text, "DHCPD_INTERFACES") {
			found = true
		}
	}
	if found {
		t.Error("compute profile should not carry the dhcp-server post script")
	}
}

func TestParseProfileRejectsGarbage(t *testing.T) {
	if _, err := ParseProfile("# just a comment\n"); err == nil {
		t.Error("ParseProfile should reject contentless text")
	}
}

func TestPackageDeduplicationFirstWins(t *testing.T) {
	fw := NewFramework()
	fw.AddNode(&NodeFile{Name: "root", Packages: []PackageRef{{Name: "shared"}, {Name: "a"}}})
	fw.AddNode(&NodeFile{Name: "child", Packages: []PackageRef{{Name: "shared"}, {Name: "b"}}})
	fw.Graph.AddEdge("root", "child")
	p, err := fw.Generate(Request{Appliance: "root", Arch: "i386"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(p.Packages, " ") != "shared a b" {
		t.Errorf("packages = %v", p.Packages)
	}
}

func TestCloneIsolation(t *testing.T) {
	parent := DefaultFramework()
	child := parent.Clone()
	child.AddNode(&NodeFile{Name: "site-local", Packages: []PackageRef{{Name: "sitepkg"}}})
	child.Graph.AddEdge("compute", "site-local")
	if _, ok := parent.Nodes["site-local"]; ok {
		t.Error("child AddNode leaked into parent")
	}
	before := len(parent.Graph.Edges)
	if len(child.Graph.Edges) != before+1 {
		t.Error("child edge not added")
	}
	// Parent traversal unchanged.
	p, _ := parent.Generate(Request{Appliance: "compute", Arch: "i386",
		Attrs: DefaultAttrs("u", "h")})
	for _, pkg := range p.Packages {
		if pkg == "sitepkg" {
			t.Error("parent traversal sees child package")
		}
	}
}

func TestDOTOutput(t *testing.T) {
	fw := DefaultFramework()
	dot := fw.DOT()
	for _, want := range []string{
		"digraph rocks",
		`"compute" [label="compute", shape=box, style=bold];`,
		`"compute" -> "mpi";`,
		`"compute" -> "myrinet" [label="i386,athlon"];`,
		`"mpi" -> "c-development";`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestDOTMarksMissingNodes(t *testing.T) {
	fw := NewFramework()
	fw.AddNode(&NodeFile{Name: "a"})
	fw.Graph.AddEdge("a", "ghost")
	dot := fw.DOT()
	if !strings.Contains(dot, "missing") || !strings.Contains(dot, "color=red") {
		t.Errorf("DOT should flag missing node files:\n%s", dot)
	}
}

func TestValidateReportsMissing(t *testing.T) {
	fw := DefaultFramework()
	fw.Graph.AddEdge("compute", "typo-module")
	errs := fw.Validate("i386")
	if len(errs) == 0 {
		t.Fatal("Validate should report the missing module")
	}
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "typo-module") {
			found = true
		}
	}
	if !found {
		t.Errorf("errors = %v", errs)
	}
}

func TestDedent(t *testing.T) {
	in := "\n\t\tline one\n\t\t\tindented\n\t\tline two\n\n"
	got := dedent(in)
	if got != "line one\n\tindented\nline two" {
		t.Errorf("dedent = %q", got)
	}
	if dedent("") != "" || dedent("\n \n") != "" {
		t.Error("dedent of blank input should be empty")
	}
}

// TestRenderParseRoundTripInterpreter: --interpreter sections must survive
// Render → ParseProfile with interpreter and body intact.
func TestRenderParseRoundTripInterpreter(t *testing.T) {
	fw := NewFramework()
	fw.AddNode(&NodeFile{
		Name: "compute",
		Main: []string{"install"},
		Pre:  []Script{{Interpreter: "/usr/bin/python", Text: "import os\nprint(os.uname())"}},
		Post: []Script{
			{Text: "touch /etc/configured"},
			{Interpreter: "/bin/bash", Text: "set -e\nldconfig"},
		},
	})
	p, err := fw.Generate(Request{Appliance: "compute", Arch: "i386", NodeName: "compute-0-0"})
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseProfile(p.Render())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Pre) != 1 || q.Pre[0].Interpreter != "/usr/bin/python" {
		t.Fatalf("pre = %+v, want one /usr/bin/python section", q.Pre)
	}
	if q.Pre[0].Text != "import os\nprint(os.uname())" {
		t.Errorf("pre text = %q", q.Pre[0].Text)
	}
	if len(q.Post) != 2 {
		t.Fatalf("post sections = %d, want 2", len(q.Post))
	}
	if q.Post[0].Interpreter != "" || q.Post[0].Text != "touch /etc/configured" {
		t.Errorf("post[0] = %+v", q.Post[0])
	}
	if q.Post[1].Interpreter != "/bin/bash" || q.Post[1].Text != "set -e\nldconfig" {
		t.Errorf("post[1] = %+v", q.Post[1])
	}
}

// TestRenderParseRoundTripDollarEscapes: $$ in a node file means a literal
// $ in the generated script, and that literal must survive re-parsing.
func TestRenderParseRoundTripDollarEscapes(t *testing.T) {
	fw := NewFramework()
	fw.AddNode(&NodeFile{
		Name: "compute",
		Main: []string{"install"},
		Post: []Script{{Text: "price=$$5\nfor f in $FILES; do echo $f; done"}},
	})
	p, err := fw.Generate(Request{Appliance: "compute", Arch: "i386"})
	if err != nil {
		t.Fatal(err)
	}
	want := "price=$5\nfor f in $FILES; do echo $f; done"
	if p.Post[0].Text != want {
		t.Fatalf("generated post = %q, want %q", p.Post[0].Text, want)
	}
	q, err := ParseProfile(p.Render())
	if err != nil {
		t.Fatal(err)
	}
	if q.Post[0].Text != want {
		t.Errorf("round-tripped post = %q, want %q", q.Post[0].Text, want)
	}
}

package kickstart

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"rocks/internal/metrics"
)

// ProfileCache memoizes kickstart generation for one framework. The paper's
// premise makes full reinstallation the default management operation (§4),
// so when a few hundred nodes reinstall at once the kickstart CGI is the
// install server's hot path — and almost every request in such a storm is
// for the same (appliance, arch, site attributes) class. The cache stores
// the shared profile template (graph traversal + substitution of the shared
// attributes) keyed on that class, and stamps per-node Profiles out of it:
// a thousand compute nodes cost one traversal plus a thousand cheap
// instantiations of the deferred per-node references
// (Request.NodeAttrs, e.g. Kickstart_PublicHostname).
//
// Every entry is guarded by the framework's Generation stamp: any graph
// edge, node file, or merged graph change bumps the stamp and the whole
// cache drops atomically on the next request, so a stale profile is never
// served. Changing the shared attributes changes the key itself.
//
// The cache is safe for concurrent Generate calls. Framework mutations must
// be sequenced with respect to Generate (see Framework.Generation).
type ProfileCache struct {
	fw *Framework

	mu       sync.RWMutex
	gen      uint64
	entries  map[profileKey]*profileTemplate
	rendered map[renderKey]string

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
}

// profileKey identifies one shared-profile class. The attrs field is a
// canonical encoding of the shared attribute map — an exact key, so two
// different attribute sets can never collide into one entry.
type profileKey struct {
	appliance string
	arch      string
	attrs     string
}

// renderKey identifies one node's fully rendered kickstart file within a
// shared-profile class.
type renderKey struct {
	pk        profileKey
	node      string
	nodeAttrs string
}

// NewProfileCache creates an empty cache bound to the framework.
func NewProfileCache(fw *Framework) *ProfileCache {
	return &ProfileCache{
		fw:       fw,
		gen:      fw.Generation(),
		entries:  make(map[profileKey]*profileTemplate),
		rendered: make(map[renderKey]string),
	}
}

// Generate is Framework.Generate through the memo: on a hit the graph
// traversal and shared substitution are skipped entirely and only the
// per-node references (req.NodeAttrs) are resolved. Results are identical
// to the uncached path, including errors for undefined attributes.
func (pc *ProfileCache) Generate(req Request) (*Profile, error) {
	if req.Arch == "" {
		req.Arch = "i386"
	}
	gen := pc.fw.Generation()
	key := profileKey{appliance: req.Appliance, arch: req.Arch, attrs: canonicalAttrs(req.Attrs)}

	pc.mu.RLock()
	var t *profileTemplate
	if pc.gen == gen {
		t = pc.entries[key]
	}
	pc.mu.RUnlock()

	if t != nil {
		pc.hits.Add(1)
	} else {
		var err error
		t, err = pc.fw.generateTemplate(req.Appliance, req.Arch, req.Attrs)
		if err != nil {
			return nil, err
		}
		pc.misses.Add(1)
		pc.mu.Lock()
		pc.flushIfStaleLocked(gen)
		pc.entries[key] = t
		pc.mu.Unlock()
	}
	return t.instantiate(req.NodeName, req.NodeAttrs)
}

// flushIfStaleLocked drops every memoized entry if the cache was filled
// under a different generation stamp. The framework changed since then:
// everything from the older generation is dead. Callers hold pc.mu.
func (pc *ProfileCache) flushIfStaleLocked(gen uint64) {
	if pc.gen != gen {
		pc.entries = make(map[profileKey]*profileTemplate)
		pc.rendered = make(map[renderKey]string)
		pc.gen = gen
		pc.invalidations.Add(1)
	}
}

// Render is Generate plus Profile.Render, memoized per node: during a mass
// reinstall every node re-requests its own kickstart file repeatedly, and
// on those repeats the whole request collapses to one map lookup. The memo
// lives under the same generation stamp as the templates, so a framework
// edit drops rendered files and templates together. Memory is bounded by
// nodes × appliance classes — a few kilobytes per registered node.
func (pc *ProfileCache) Render(req Request) (string, error) {
	if req.Arch == "" {
		req.Arch = "i386"
	}
	gen := pc.fw.Generation()
	key := renderKey{
		pk:        profileKey{appliance: req.Appliance, arch: req.Arch, attrs: canonicalAttrs(req.Attrs)},
		node:      req.NodeName,
		nodeAttrs: canonicalAttrs(req.NodeAttrs),
	}
	pc.mu.RLock()
	if pc.gen == gen {
		if text, ok := pc.rendered[key]; ok {
			pc.mu.RUnlock()
			pc.hits.Add(1)
			return text, nil
		}
	}
	pc.mu.RUnlock()
	p, err := pc.Generate(req)
	if err != nil {
		return "", err
	}
	text := p.Render()
	pc.mu.Lock()
	pc.flushIfStaleLocked(gen)
	pc.rendered[key] = text
	pc.mu.Unlock()
	return text, nil
}

// Stats reports cache traffic: template hits, template builds (misses), and
// generation-stamp flushes (invalidations).
func (pc *ProfileCache) Stats() (hits, misses, invalidations uint64) {
	return pc.hits.Load(), pc.misses.Load(), pc.invalidations.Load()
}

// RegisterMetrics exposes the cache counters on the registry. Collector
// funcs sample the atomics at scrape time; the Generate/Render hot paths
// are untouched.
func (pc *ProfileCache) RegisterMetrics(r *metrics.Registry) {
	r.CounterFunc("rocks_kickstart_cache_hits_total",
		"Kickstart requests answered from the profile memo.",
		func() float64 { return float64(pc.hits.Load()) })
	r.CounterFunc("rocks_kickstart_cache_misses_total",
		"Kickstart requests that paid a full graph traversal.",
		func() float64 { return float64(pc.misses.Load()) })
	r.CounterFunc("rocks_kickstart_cache_invalidations_total",
		"Whole-cache drops caused by framework generation bumps.",
		func() float64 { return float64(pc.invalidations.Load()) })
}

// canonicalAttrs encodes an attribute map into one deterministic string.
// Keys and values are joined with bytes that cannot appear in either, so
// distinct maps always encode differently.
func canonicalAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte(0)
		b.WriteString(attrs[k])
		b.WriteByte(1)
	}
	return b.String()
}

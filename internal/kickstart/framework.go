package kickstart

import (
	"fmt"
	"io/fs"
	"path"
	"sort"
	"strings"
	"sync/atomic"
)

// Framework is the complete XML configuration infrastructure of one
// distribution: a graph plus the node files it references. rocks-dist
// materializes one of these in each distribution's build directory
// (§6.2.3); users customize a cluster by editing or adding node files and
// graph edges.
type Framework struct {
	Graph *Graph
	Nodes map[string]*NodeFile

	// gen counts AddNode mutations; together with the graph's own counter
	// it forms the Generation stamp ProfileCache keys on.
	gen atomic.Uint64
}

// NewFramework returns an empty framework with an empty graph.
func NewFramework() *Framework {
	return &Framework{Graph: &Graph{Name: "default"}, Nodes: make(map[string]*NodeFile)}
}

// AddNode registers a node file, replacing any module of the same name —
// which is exactly how a site overrides a stock Rocks module with a local
// copy.
func (f *Framework) AddNode(n *NodeFile) {
	f.Nodes[n.Name] = n
	f.gen.Add(1)
}

// Generation returns a stamp that changes whenever the framework is mutated
// through AddNode, Graph.AddEdge, or Graph.Merge. ProfileCache compares
// stamps so one graph or node-file edit atomically invalidates every cached
// profile. Mutations must be sequenced (happens-before) with respect to
// concurrent Generate calls — the maps themselves are not lock-protected —
// and once sequenced, the next request observes the new stamp and can never
// be served a stale profile.
func (f *Framework) Generation() uint64 { return f.gen.Load() + f.Graph.gen.Load() }

// Clone returns a deep-enough copy: the graph edges and node map are
// copied so a child distribution can extend its framework without mutating
// the parent's. Node files themselves are immutable by convention and
// shared.
func (f *Framework) Clone() *Framework {
	g := &Graph{Name: f.Graph.Name, Description: f.Graph.Description,
		Edges: append([]Edge(nil), f.Graph.Edges...)}
	nodes := make(map[string]*NodeFile, len(f.Nodes))
	for k, v := range f.Nodes {
		nodes[k] = v
	}
	return &Framework{Graph: g, Nodes: nodes}
}

// LoadFS populates a framework from a filesystem laid out the way
// rocks-dist builds the profiles directory: nodes/*.xml are node files,
// graphs/*.xml are graph files (all merged). Missing directories are not an
// error — a site may supply only extra nodes.
func LoadFS(fsys fs.FS) (*Framework, error) {
	fw := NewFramework()
	nodeFiles, err := fs.Glob(fsys, "nodes/*.xml")
	if err != nil {
		return nil, err
	}
	sort.Strings(nodeFiles)
	for _, nf := range nodeFiles {
		data, err := fs.ReadFile(fsys, nf)
		if err != nil {
			return nil, fmt.Errorf("kickstart: reading %s: %w", nf, err)
		}
		name := strings.TrimSuffix(path.Base(nf), ".xml")
		parsed, err := ParseNode(name, strings.NewReader(string(data)))
		if err != nil {
			return nil, err
		}
		fw.AddNode(parsed)
	}
	graphFiles, err := fs.Glob(fsys, "graphs/*.xml")
	if err != nil {
		return nil, err
	}
	sort.Strings(graphFiles)
	for _, gf := range graphFiles {
		data, err := fs.ReadFile(fsys, gf)
		if err != nil {
			return nil, fmt.Errorf("kickstart: reading %s: %w", gf, err)
		}
		name := strings.TrimSuffix(path.Base(gf), ".xml")
		parsed, err := ParseGraph(name, strings.NewReader(string(data)))
		if err != nil {
			return nil, err
		}
		fw.Graph.Merge(parsed)
	}
	return fw, nil
}

// TraversalError reports a graph reference to a node file that does not
// exist, including the path that reached it — the diagnostic an
// administrator needs when a hand-edited graph has a typo.
type TraversalError struct {
	Missing string
	Path    []string
}

// Error renders the missing module and the path that reached it.
func (e *TraversalError) Error() string {
	return fmt.Sprintf("kickstart: graph references node %q which has no node file (path: %s)",
		e.Missing, strings.Join(e.Path, " -> "))
}

// Traverse walks the graph depth-first from root, following only edges that
// apply to arch, and returns the reachable node files in deterministic
// preorder (the paper's example: compute -> compute, mpi, c-development).
// Cycles are tolerated — each module is visited once. A reference to a
// missing node file returns a *TraversalError.
func (f *Framework) Traverse(root, arch string) ([]*NodeFile, error) {
	var order []*NodeFile
	visited := map[string]bool{}
	var walk func(name string, trail []string) error
	walk = func(name string, trail []string) error {
		if visited[name] {
			return nil
		}
		visited[name] = true
		nf, ok := f.Nodes[name]
		if !ok {
			return &TraversalError{Missing: name, Path: append(trail, name)}
		}
		order = append(order, nf)
		for _, next := range f.Graph.Successors(name, arch) {
			if err := walk(next, append(trail, name)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, nil); err != nil {
		return nil, err
	}
	return order, nil
}

// Validate checks every edge endpoint has a node file and that every
// appliance root traverses cleanly for the given architectures. It returns
// all problems, not just the first.
func (f *Framework) Validate(arches ...string) []error {
	var errs []error
	seen := map[string]bool{}
	for _, e := range f.Graph.Edges {
		for _, end := range []string{e.From, e.To} {
			if _, ok := f.Nodes[end]; !ok && !seen[end] {
				seen[end] = true
				errs = append(errs, fmt.Errorf("kickstart: edge endpoint %q has no node file", end))
			}
		}
	}
	if len(arches) == 0 {
		arches = []string{"i386"}
	}
	for _, root := range f.Graph.Roots() {
		for _, arch := range arches {
			if _, err := f.Traverse(root, arch); err != nil {
				if !seen[err.(*TraversalError).Missing] {
					errs = append(errs, err)
				}
			}
		}
	}
	return errs
}

package kickstart

import (
	"encoding/xml"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// XML export. rocks-dist materializes each distribution's XML configuration
// infrastructure in a build directory (§6.2.3: "Inside this tree is a build
// directory that contains the XML configuration infrastructure. Users can
// customize this new distribution by editing the XML modules or graph").
// Export writes a Framework back to that on-disk form; LoadFS reads it.

// XML renders a node file in the Figure 2 format.
func (n *NodeFile) XML() string {
	var b strings.Builder
	b.WriteString("<?xml version=\"1.0\" standalone=\"no\"?>\n<kickstart>\n")
	if n.Description != "" {
		fmt.Fprintf(&b, "\t<description>%s</description>\n", xmlEscape(n.Description))
	}
	for _, p := range n.Packages {
		if len(p.Arches) > 0 {
			fmt.Fprintf(&b, "\t<package arch=%q>%s</package>\n",
				strings.Join(p.Arches, ","), xmlEscape(p.Name))
		} else {
			fmt.Fprintf(&b, "\t<package>%s</package>\n", xmlEscape(p.Name))
		}
	}
	for _, m := range n.Main {
		fmt.Fprintf(&b, "\t<main>%s</main>\n", xmlEscape(m))
	}
	writeScripts := func(tag string, scripts []Script) {
		for _, s := range scripts {
			attrs := ""
			if s.Interpreter != "" {
				attrs += fmt.Sprintf(" interpreter=%q", s.Interpreter)
			}
			if len(s.Arches) > 0 {
				attrs += fmt.Sprintf(" arch=%q", strings.Join(s.Arches, ","))
			}
			fmt.Fprintf(&b, "\t<%s%s>\n%s\n\t</%s>\n", tag, attrs, xmlEscape(s.Text), tag)
		}
	}
	writeScripts("pre", n.Pre)
	writeScripts("post", n.Post)
	b.WriteString("</kickstart>\n")
	return b.String()
}

// XML renders the graph in the Figure 3 format.
func (g *Graph) XML() string {
	var b strings.Builder
	b.WriteString("<?xml version=\"1.0\" standalone=\"no\"?>\n<graph>\n")
	if g.Description != "" {
		fmt.Fprintf(&b, "\t<description>%s</description>\n", xmlEscape(g.Description))
	}
	for _, e := range g.Edges {
		if len(e.Arches) > 0 {
			fmt.Fprintf(&b, "\t<edge from=%q to=%q arch=%q/>\n",
				e.From, e.To, strings.Join(e.Arches, ","))
		} else {
			fmt.Fprintf(&b, "\t<edge from=%q to=%q/>\n", e.From, e.To)
		}
	}
	b.WriteString("</graph>\n")
	return b.String()
}

func xmlEscape(s string) string {
	var b strings.Builder
	xml.EscapeText(&b, []byte(s))
	return b.String()
}

// Export writes the framework to dir as nodes/*.xml and graphs/default.xml
// — the profiles build directory a site edits and LoadFS reads back.
func (f *Framework) Export(dir string) error {
	nodesDir := filepath.Join(dir, "nodes")
	graphsDir := filepath.Join(dir, "graphs")
	for _, d := range []string{nodesDir, graphsDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return fmt.Errorf("kickstart: export: %w", err)
		}
	}
	names := make([]string, 0, len(f.Nodes))
	for n := range f.Nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		path := filepath.Join(nodesDir, n+".xml")
		if err := os.WriteFile(path, []byte(f.Nodes[n].XML()), 0o644); err != nil {
			return fmt.Errorf("kickstart: export %s: %w", n, err)
		}
	}
	graphName := f.Graph.Name
	if graphName == "" {
		graphName = "default"
	}
	path := filepath.Join(graphsDir, graphName+".xml")
	if err := os.WriteFile(path, []byte(f.Graph.XML()), 0o644); err != nil {
		return fmt.Errorf("kickstart: export graph: %w", err)
	}
	return nil
}

package kickstart

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"
)

// Edge is one directed relation in the graph: installing From implies
// installing To. Edges may be restricted to architectures, which is how one
// graph file supports the Meteor cluster's three processor types (§6.1).
type Edge struct {
	From, To string
	Arches   []string
}

func (e Edge) matches(arch string) bool { return archListMatches(e.Arches, arch) }

// Graph is a parsed graph file: a set of edges over node-file names.
type Graph struct {
	Name        string
	Description string
	Edges       []Edge

	// gen counts edge mutations; Framework.Generation folds it into the
	// stamp ProfileCache invalidates on.
	gen atomic.Uint64
}

type xmlGraph struct {
	XMLName     xml.Name  `xml:"graph"`
	Description string    `xml:"description"`
	Edges       []xmlEdge `xml:"edge"`
}

type xmlEdge struct {
	From string `xml:"from,attr"`
	To   string `xml:"to,attr"`
	Arch string `xml:"arch,attr"`
}

// ParseGraph parses a graph file.
func ParseGraph(name string, r io.Reader) (*Graph, error) {
	var xg xmlGraph
	dec := xml.NewDecoder(r)
	dec.Strict = false
	if err := decodeCaseInsensitive(dec, &xg); err != nil {
		return nil, fmt.Errorf("kickstart: parsing graph %q: %w", name, err)
	}
	g := &Graph{Name: name, Description: strings.TrimSpace(xg.Description)}
	for _, e := range xg.Edges {
		from, to := strings.TrimSpace(e.From), strings.TrimSpace(e.To)
		if from == "" || to == "" {
			return nil, fmt.Errorf("kickstart: graph %q has an edge missing from/to", name)
		}
		g.Edges = append(g.Edges, Edge{From: from, To: to, Arches: splitArches(e.Arch)})
	}
	return g, nil
}

// AddEdge appends an edge; used by programmatic graph construction and by
// rocks-dist when a child distribution extends its parent's graph (§6.2.3).
func (g *Graph) AddEdge(from, to string, arches ...string) {
	g.Edges = append(g.Edges, Edge{From: from, To: to, Arches: arches})
	g.gen.Add(1)
}

// Successors returns the targets of all edges leaving `from` that apply to
// arch, in edge order.
func (g *Graph) Successors(from, arch string) []string {
	var out []string
	for _, e := range g.Edges {
		if e.From == from && e.matches(arch) {
			out = append(out, e.To)
		}
	}
	return out
}

// Roots returns node names that appear as edge sources but never as
// targets — the appliances (Figure 4 calls out "compute" and "frontend").
func (g *Graph) Roots() []string {
	isTarget := map[string]bool{}
	isSource := map[string]bool{}
	for _, e := range g.Edges {
		isTarget[e.To] = true
		isSource[e.From] = true
	}
	var roots []string
	for s := range isSource {
		if !isTarget[s] {
			roots = append(roots, s)
		}
	}
	sort.Strings(roots)
	return roots
}

// NodeNames returns every node name mentioned by any edge, sorted.
func (g *Graph) NodeNames() []string {
	seen := map[string]bool{}
	for _, e := range g.Edges {
		seen[e.From] = true
		seen[e.To] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Merge appends another graph's edges (child distributions extend the
// parent graph rather than replacing it).
func (g *Graph) Merge(other *Graph) {
	g.Edges = append(g.Edges, other.Edges...)
	g.gen.Add(1)
}

package kickstart

// This file ships the default set of node and graph files that Rocks
// installs when a frontend is created (§6.1 footnote: "We develop and
// distribute the default set of node and graph files..."). Sites customize
// clusters by overriding these modules or adding edges.
//
// The compute appliance traversal yields exactly 162 packages on IA-32 —
// matching the package count visible in the paper's Figure 7 eKV screenshot
// (Total: 162 packages, 386 MB) and exercised by the Table I reproduction.

// BasePackages is the stock Red Hat core every Rocks node receives: the
// paper's philosophy is "If Red Hat ships it, so do we" (§6.2.1).
var BasePackages = []string{
	"setup", "filesystem", "basesystem", "glibc", "glibc-common",
	"mktemp", "termcap", "libtermcap", "bash", "chkconfig",
	"db1", "db2", "db3", "gdbm", "ncurses",
	"readline", "info", "fileutils", "grep", "sed",
	"gawk", "textutils", "sh-utils", "findutils", "diffutils",
	"gzip", "tar", "cpio", "unzip", "zip",
	"bzip2", "bzip2-libs", "zlib", "popt", "rpm",
	"shadow-utils", "pam", "cracklib", "cracklib-dicts", "words",
	"authconfig", "passwd", "util-linux", "mount", "initscripts",
	"e2fsprogs", "modutils", "console-tools", "dev", "rootfiles",
	"mingetty", "sysvinit", "sysklogd", "logrotate", "crontabs",
	"vixie-cron", "anacron", "at", "procps", "psmisc",
	"less", "vim-minimal", "vim-common", "ed", "file",
	"slocate", "man", "man-pages", "groff", "time",
	"which", "net-tools", "iputils", "traceroute", "tcpdump",
	"openssl", "krb5-libs", "cyrus-sasl", "openldap", "nss_ldap",
	"pam_krb5", "wget", "ftp", "telnet", "rsh",
	"rsync", "portmap", "xinetd", "tcp_wrappers", "bind-utils",
	"dhcpcd", "pump", "kernel", "mkinitrd", "grub",
	"lilo", "kudzu", "hdparm", "eject", "raidtools",
	"parted", "pciutils", "setserial", "gpm", "ntp",
	"sendmail", "procmail", "mailx", "quota", "nscd",
	"libstdc++", "compat-libstdc++", "expat", "freetype", "libjpeg",
	"libpng", "libtiff", "libxml", "glib", "perl",
	"python", "tcl", "tk", "expect", "curl",
	"lsof", "strace", "ltrace", "screen", "tmpwatch",
	"utempter", "mt-st", "dump", "ash", "newt",
}

// figure2DHCPPost is the post-installation script from the paper's
// Figure 2, verbatim: it rewrites /etc/sysconfig/dhcpd so dhcpd listens
// only on the private interface.
const figure2DHCPPost = `# tell dhcp just to listen to eth0
awk '
	/^DHCPD_INTERFACES/ {
		printf("DHCPD_INTERFACES=\"eth0\"\n");
		next;
	}
	{
		print $0;
	} ' /etc/sysconfig/dhcpd > /tmp/dhcpd
mv /tmp/dhcpd /etc/sysconfig/dhcpd`

// DefaultFramework builds the stock Rocks graph and node files. The result
// is mutable; callers that extend it for a child distribution should Clone
// first.
func DefaultFramework() *Framework {
	fw := NewFramework()

	pkgs := func(names ...string) []PackageRef {
		out := make([]PackageRef, len(names))
		for i, n := range names {
			out[i] = PackageRef{Name: n}
		}
		return out
	}

	// Appliance roots. The main sections carry the Kickstart command
	// directives; compute nodes clear only the root partition so that
	// /state/partition1 survives reinstallation (§6.3).
	fw.AddNode(&NodeFile{
		Name:        "compute",
		Description: "Compute appliance: a minimal container for parallel jobs",
		Main: []string{
			"install",
			"url --url ${Kickstart_DistURL}",
			"lang en_US",
			"keyboard us",
			"timezone ${Kickstart_Timezone}",
			"rootpw --iscrypted ${Kickstart_RootPW}",
			"clearpart --drives sda --partition root",
			"part / --size 4096 --ondisk sda",
			"part /state/partition1 --size 1 --grow --ondisk sda --noformat",
			"reboot",
		},
		Post: []Script{{Text: "echo 'compute appliance configured' >> /root/install.log"}},
	})
	fw.AddNode(&NodeFile{
		Name:        "frontend",
		Description: "Frontend appliance: the cluster's server and build host",
		Packages:    pkgs("rocks-dist"),
		Main: []string{
			"install",
			"url --url ${Kickstart_DistURL}",
			"lang en_US",
			"keyboard us",
			"timezone ${Kickstart_Timezone}",
			"rootpw --iscrypted ${Kickstart_RootPW}",
			"clearpart --all",
			"part / --size 8192 --ondisk sda",
			"part /export --size 1 --grow --ondisk sda",
			"reboot",
		},
		Post: []Script{{Text: "echo 'frontend appliance configured' >> /root/install.log"}},
	})

	fw.AddNode(&NodeFile{
		Name:        "base",
		Description: "The stock Red Hat operating environment",
		Packages:    pkgs(BasePackages...),
		Post:        []Script{{Text: "echo '${Kickstart_PrivateKickstartHost} frontend' >> /etc/hosts"}},
	})
	fw.AddNode(&NodeFile{
		Name:        "ssh",
		Description: "OpenSSH client and server",
		Packages:    pkgs("openssh", "openssh-clients", "openssh-server"),
		Post:        []Script{{Text: "chkconfig sshd on"}},
	})
	fw.AddNode(&NodeFile{
		Name:        "nis-client",
		Description: "NIS binding for user account synchronization",
		Packages:    pkgs("ypbind", "yp-tools"),
		Post: []Script{{Text: "authconfig --enablenis --nisdomain ${Kickstart_PrivateNISDomain} " +
			"--nisserver ${Kickstart_PrivateKickstartHost} --kickstart"}},
	})
	fw.AddNode(&NodeFile{
		Name:        "nis-server",
		Description: "NIS master for the cluster's account maps",
		Packages:    pkgs("ypserv", "yp-tools"),
		Post:        []Script{{Text: "nisdomainname ${Kickstart_PrivateNISDomain}\nchkconfig ypserv on"}},
	})
	fw.AddNode(&NodeFile{
		Name:        "nfs-client",
		Description: "Mount user home directories from the frontend",
		Packages:    pkgs("nfs-utils"),
		Post:        []Script{{Text: "echo '${Kickstart_PrivateNFSHost}:/export/home /home nfs defaults 0 0' >> /etc/fstab"}},
	})
	fw.AddNode(&NodeFile{
		Name:        "nfs-server",
		Description: "Export home directories to compute nodes",
		Packages:    pkgs("nfs-utils"),
		Post:        []Script{{Text: "echo '/export/home 10.0.0.0/255.0.0.0(rw)' >> /etc/exports\nchkconfig nfs on"}},
	})
	fw.AddNode(&NodeFile{
		Name:        "autofs",
		Description: "Automounter for NFS home directories",
		Packages:    pkgs("autofs"),
	})
	fw.AddNode(&NodeFile{
		Name:        "dhcp-server",
		Description: "Setup the DHCP server for the cluster",
		Packages:    pkgs("dhcp"),
		Post:        []Script{{Text: figure2DHCPPost}, {Text: "chkconfig dhcpd on"}},
	})
	fw.AddNode(&NodeFile{
		Name:        "http-server",
		Description: "HTTP service: kickstart generation and RPM distribution",
		Packages:    pkgs("apache"),
		Post:        []Script{{Text: "chkconfig httpd on"}},
	})
	fw.AddNode(&NodeFile{
		Name:        "mysql-server",
		Description: "MySQL database holding the cluster configuration",
		Packages:    pkgs("mysql", "mysql-server"),
		Post:        []Script{{Text: "chkconfig mysqld on\n/usr/bin/create-rocks-tables"}},
	})
	fw.AddNode(&NodeFile{
		Name:        "pbs-mom",
		Description: "PBS execution daemon for compute nodes",
		Packages:    pkgs("pbs", "pbs-mom"),
		Post:        []Script{{Text: "echo '$pbsserver ${Kickstart_PrivateKickstartHost}' > /opt/pbs/mom_priv/config"}},
	})
	fw.AddNode(&NodeFile{
		Name:        "pbs-server",
		Description: "PBS workload management server with a default queue",
		Packages:    pkgs("pbs", "pbs-server"),
		Post:        []Script{{Text: "qmgr -c 'create queue default'\nchkconfig pbs_server on"}},
	})
	fw.AddNode(&NodeFile{
		Name:        "maui",
		Description: "The Maui scheduler driving PBS",
		Packages:    pkgs("maui"),
		Post:        []Script{{Text: "chkconfig maui on"}},
	})
	fw.AddNode(&NodeFile{
		Name:        "mpi",
		Description: "Message passing libraries (MPICH with Myrinet and Ethernet devices, PVM)",
		Packages:    pkgs("mpich", "mpich-devel", "pvm"),
	})
	fw.AddNode(&NodeFile{
		Name:        "c-development",
		Description: "C/C++ development tools",
		Packages:    pkgs("gcc", "gcc-c++", "cpp", "glibc-devel", "make", "binutils", "gdb"),
	})
	fw.AddNode(&NodeFile{
		Name:        "fortran-development",
		Description: "Fortran development tools",
		Packages:    []PackageRef{{Name: "gcc-g77"}},
	})
	fw.AddNode(&NodeFile{
		Name:        "atlas",
		Description: "ATLAS tuned basic linear algebra subprograms",
		Packages:    pkgs("atlas"),
	})
	fw.AddNode(&NodeFile{
		Name:        "rexec",
		Description: "UC Berkeley REXEC transparent remote execution",
		Packages:    pkgs("rexec"),
		Post:        []Script{{Text: "chkconfig rexecd on"}},
	})
	fw.AddNode(&NodeFile{
		Name:        "ekv",
		Description: "Ethernet keyboard and video: installation screen over telnet",
		Packages:    pkgs("ekv"),
	})
	fw.AddNode(&NodeFile{
		Name:        "rocks",
		Description: "NPACI Rocks cluster tools",
		Packages:    pkgs("rocks-release", "rocks-tools"),
	})
	fw.AddNode(&NodeFile{
		Name:        "myrinet",
		Description: "Myrinet GM driver, rebuilt from source at install time (§6.3)",
		Packages: []PackageRef{
			{Name: "gm"},
			{Name: "myrinet-gm-src"},
		},
		Post: []Script{{Text: "cd /usr/src/myrinet && ./rebuild-gm-driver `uname -r`"}},
	})

	g := fw.Graph
	g.Description = "Default Rocks graph: appliances compute and frontend"
	// Compute appliance.
	g.AddEdge("compute", "base")
	g.AddEdge("compute", "ssh")
	g.AddEdge("compute", "nis-client")
	g.AddEdge("compute", "nfs-client")
	g.AddEdge("compute", "autofs")
	g.AddEdge("compute", "pbs-mom")
	g.AddEdge("compute", "mpi")
	g.AddEdge("compute", "fortran-development")
	g.AddEdge("compute", "rexec")
	g.AddEdge("compute", "ekv")
	g.AddEdge("compute", "rocks")
	g.AddEdge("compute", "myrinet", "i386", "athlon")
	// Shared chain: mpi pulls the development environment it needs.
	g.AddEdge("mpi", "c-development")
	g.AddEdge("mpi", "atlas")
	// Frontend appliance.
	g.AddEdge("frontend", "base")
	g.AddEdge("frontend", "ssh")
	g.AddEdge("frontend", "dhcp-server")
	g.AddEdge("frontend", "http-server")
	g.AddEdge("frontend", "mysql-server")
	g.AddEdge("frontend", "nis-server")
	g.AddEdge("frontend", "nfs-server")
	g.AddEdge("frontend", "pbs-server")
	g.AddEdge("frontend", "maui")
	g.AddEdge("frontend", "mpi")
	g.AddEdge("frontend", "fortran-development")
	g.AddEdge("frontend", "rexec")
	g.AddEdge("frontend", "rocks")

	return fw
}

// DefaultAttrs returns the attribute set a freshly installed frontend
// publishes for kickstart generation. distURL is where nodes pull packages
// from; host is the frontend's private address.
func DefaultAttrs(distURL, host string) map[string]string {
	return map[string]string{
		"Kickstart_DistURL":              distURL,
		"Kickstart_PrivateKickstartHost": host,
		"Kickstart_PrivateNISDomain":     "rocks",
		"Kickstart_PrivateNFSHost":       host,
		"Kickstart_Timezone":             "America/Los_Angeles",
		"Kickstart_RootPW":               "$1$rocks$encrypted",
	}
}

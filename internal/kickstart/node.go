// Package kickstart implements the paper's central contribution (§6.1): a
// framework of XML files describing node software configuration, linked by
// an XML graph into "appliance" definitions, from which Red Hat-compliant
// Kickstart files are generated on the fly per requesting node.
//
// A *node file* (Figure 2) is a small, single-purpose module naming the
// packages and post-installation commands for one service. A *graph file*
// (Figure 3) links modules with directed edges; the roots of the graph are
// appliances such as "compute" and "frontend". Traversing the graph from an
// appliance root, filtered by the requesting node's architecture, collects
// the node files whose union is rendered as a single Kickstart file
// (Figure 4). One graph therefore describes every hardware and software
// variant in the cluster.
package kickstart

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// PackageRef names one RPM a node file pulls in, optionally restricted to a
// set of architectures ("i386,ia64") the way Rocks node files guard
// arch-specific packages.
type PackageRef struct {
	Name   string
	Arches []string // nil means all architectures
}

// matches reports whether the ref applies to the given architecture.
func (p PackageRef) matches(arch string) bool { return archListMatches(p.Arches, arch) }

// Script is a %pre or %post fragment.
type Script struct {
	Interpreter string // e.g. "/bin/sh" (default), "/usr/bin/python"
	Text        string
	Arches      []string
}

func (s Script) matches(arch string) bool { return archListMatches(s.Arches, arch) }

func archListMatches(arches []string, arch string) bool {
	if len(arches) == 0 {
		return true
	}
	for _, a := range arches {
		if a == arch {
			return true
		}
	}
	return false
}

// NodeFile is one parsed XML module.
type NodeFile struct {
	Name        string // module name, e.g. "dhcp-server"; the graph refers to this
	Description string
	Packages    []PackageRef
	Main        []string // lines merged into the Kickstart command section
	Pre         []Script
	Post        []Script
}

// xmlNode mirrors the on-disk XML schema of a node file. The paper's
// Figure 2 (upper-cased <KICKSTART> tags) and the lower-case spelling used
// by later Rocks releases both parse: encoding/xml matching here is made
// case-insensitive by normalizing the input.
type xmlNode struct {
	XMLName     xml.Name     `xml:"kickstart"`
	Description string       `xml:"description"`
	Packages    []xmlPackage `xml:"package"`
	Main        []string     `xml:"main"`
	Pre         []xmlScript  `xml:"pre"`
	Post        []xmlScript  `xml:"post"`
}

type xmlPackage struct {
	Arch string `xml:"arch,attr"`
	Name string `xml:",chardata"`
}

type xmlScript struct {
	Arch        string `xml:"arch,attr"`
	Interpreter string `xml:"interpreter,attr"`
	Text        string `xml:",chardata"`
}

// ParseNode parses a node file. The name is the module name the graph uses
// (conventionally the file's base name without ".xml").
func ParseNode(name string, r io.Reader) (*NodeFile, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("kickstart: reading node %q: %w", name, err)
	}
	var xn xmlNode
	dec := xml.NewDecoder(strings.NewReader(string(data)))
	// The paper's Figure 2 uses upper-case tags (<KICKSTART>, <PACKAGE>);
	// normalize element names to lower case while leaving content alone.
	dec.Strict = false
	if err := decodeCaseInsensitive(dec, &xn); err != nil {
		return nil, fmt.Errorf("kickstart: parsing node %q: %w", name, err)
	}
	nf := &NodeFile{Name: name, Description: strings.TrimSpace(xn.Description)}
	for _, p := range xn.Packages {
		pkg := strings.TrimSpace(p.Name)
		if pkg == "" {
			return nil, fmt.Errorf("kickstart: node %q has an empty <package>", name)
		}
		nf.Packages = append(nf.Packages, PackageRef{Name: pkg, Arches: splitArches(p.Arch)})
	}
	for _, m := range xn.Main {
		for _, line := range strings.Split(m, "\n") {
			if l := strings.TrimSpace(line); l != "" {
				nf.Main = append(nf.Main, l)
			}
		}
	}
	for _, s := range xn.Pre {
		nf.Pre = append(nf.Pre, scriptFromXML(s))
	}
	for _, s := range xn.Post {
		nf.Post = append(nf.Post, scriptFromXML(s))
	}
	return nf, nil
}

func scriptFromXML(s xmlScript) Script {
	return Script{
		Interpreter: strings.TrimSpace(s.Interpreter),
		Text:        dedent(s.Text),
		Arches:      splitArches(s.Arch),
	}
}

func splitArches(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// dedent trims blank leading/trailing lines and removes the common leading
// whitespace, so scripts indented for XML readability emit clean shell.
func dedent(s string) string {
	lines := strings.Split(s, "\n")
	// Drop leading/trailing blank lines.
	for len(lines) > 0 && strings.TrimSpace(lines[0]) == "" {
		lines = lines[1:]
	}
	for len(lines) > 0 && strings.TrimSpace(lines[len(lines)-1]) == "" {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return ""
	}
	common := -1
	for _, l := range lines {
		if strings.TrimSpace(l) == "" {
			continue
		}
		indent := len(l) - len(strings.TrimLeft(l, " \t"))
		if common < 0 || indent < common {
			common = indent
		}
	}
	if common <= 0 {
		return strings.Join(lines, "\n")
	}
	for i, l := range lines {
		if len(l) >= common {
			lines[i] = l[common:]
		} else {
			lines[i] = strings.TrimLeft(l, " \t")
		}
	}
	return strings.Join(lines, "\n")
}

// decodeCaseInsensitive decodes XML treating element names
// case-insensitively (the paper's files are upper-case, later Rocks files
// lower-case).
func decodeCaseInsensitive(dec *xml.Decoder, v interface{}) error {
	// Re-tokenize, lower-casing element names, then decode the result.
	var b strings.Builder
	enc := xml.NewEncoder(&b)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			t.Name.Local = strings.ToLower(t.Name.Local)
			for i := range t.Attr {
				t.Attr[i].Name.Local = strings.ToLower(t.Attr[i].Name.Local)
			}
			if err := enc.EncodeToken(t); err != nil {
				return err
			}
		case xml.EndElement:
			t.Name.Local = strings.ToLower(t.Name.Local)
			if err := enc.EncodeToken(t); err != nil {
				return err
			}
		case xml.ProcInst, xml.Directive:
			// Skip <?XML ...?> declarations; Figure 2's "<?XML" is not
			// valid XML 1.0, so we drop declarations entirely.
		default:
			if err := enc.EncodeToken(tok); err != nil {
				return err
			}
		}
	}
	if err := enc.Flush(); err != nil {
		return err
	}
	return xml.Unmarshal([]byte(b.String()), v)
}

package kickstart

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertyGenerateDeterministic: generating the same request twice
// yields byte-identical kickstart files — the guarantee that makes
// "reinstall to a known configuration" meaningful.
func TestPropertyGenerateDeterministic(t *testing.T) {
	fw := DefaultFramework()
	attrs := DefaultAttrs("http://10.1.1.1/dist", "10.1.1.1")
	f := func(archSeed uint8) bool {
		arch := []string{"i386", "athlon", "ia64"}[int(archSeed)%3]
		a, err1 := fw.Generate(Request{Appliance: "compute", Arch: arch, NodeName: "n", Attrs: attrs})
		b, err2 := fw.Generate(Request{Appliance: "compute", Arch: arch, NodeName: "n", Attrs: attrs})
		if err1 != nil || err2 != nil {
			return false
		}
		return a.Render() == b.Render()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPropertyGeneratePackagesUnique: no package appears twice in a
// generated profile, regardless of how tangled the graph is.
func TestPropertyGeneratePackagesUnique(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fw := NewFramework()
		const modules = 10
		for i := 0; i < modules; i++ {
			nf := &NodeFile{Name: fmt.Sprintf("m%d", i)}
			// Random, overlapping package sets.
			for p := 0; p < 1+r.Intn(5); p++ {
				nf.Packages = append(nf.Packages, PackageRef{Name: fmt.Sprintf("pkg%d", r.Intn(12))})
			}
			fw.AddNode(nf)
		}
		// Random edges, possibly cyclic.
		for e := 0; e < 15; e++ {
			fw.Graph.AddEdge(fmt.Sprintf("m%d", r.Intn(modules)), fmt.Sprintf("m%d", r.Intn(modules)))
		}
		p, err := fw.Generate(Request{Appliance: "m0", Arch: "i386"})
		if err != nil {
			return false
		}
		seen := map[string]bool{}
		for _, pkg := range p.Packages {
			if seen[pkg] {
				return false
			}
			seen[pkg] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRenderParseStable: Render → ParseProfile → Render is a fixed
// point for profiles generated from random subsets of the default graph.
func TestPropertyRenderParseStable(t *testing.T) {
	fw := DefaultFramework()
	attrs := DefaultAttrs("http://10.1.1.1/dist", "10.1.1.1")
	for _, app := range []string{"compute", "frontend"} {
		p, err := fw.Generate(Request{Appliance: app, Arch: "i386", NodeName: "n", Attrs: attrs})
		if err != nil {
			t.Fatal(err)
		}
		q, err := ParseProfile(p.Render())
		if err != nil {
			t.Fatal(err)
		}
		r, err := ParseProfile(q.Render())
		if err != nil {
			t.Fatal(err)
		}
		if len(q.Packages) != len(r.Packages) || len(q.Commands) != len(r.Commands) ||
			len(q.Post) != len(r.Post) {
			t.Errorf("%s: render/parse not stable", app)
		}
	}
}

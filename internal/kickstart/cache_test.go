package kickstart

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func defaultTestAttrs() map[string]string {
	return DefaultAttrs("http://10.1.1.1/install/dist", "10.1.1.1")
}

// TestProfileCacheMatchesUncached proves the memoized path is
// indistinguishable from a full Generate for every appliance/arch class of
// the stock framework.
func TestProfileCacheMatchesUncached(t *testing.T) {
	fw := DefaultFramework()
	pc := NewProfileCache(fw)
	attrs := defaultTestAttrs()
	for _, app := range []string{"compute", "frontend"} {
		for _, arch := range []string{"i386", "athlon", "ia64"} {
			req := Request{Appliance: app, Arch: arch, NodeName: app + "-0-0", Attrs: attrs}
			want, err := fw.Generate(req)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ { // miss then hits
				got, err := pc.Generate(req)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s/%s: cached profile differs from uncached", app, arch)
				}
			}
		}
	}
	hits, misses, _ := pc.Stats()
	if misses != 6 {
		t.Errorf("misses = %d, want 6 (one per appliance/arch class)", misses)
	}
	if hits != 12 {
		t.Errorf("hits = %d, want 12", hits)
	}
}

// TestProfileCachePerNodeAttrs: one cached template serves many nodes, each
// with its own deferred ${Kickstart_PublicHostname}.
func TestProfileCachePerNodeAttrs(t *testing.T) {
	fw := NewFramework()
	fw.AddNode(&NodeFile{
		Name: "compute",
		Main: []string{"install", "url --url ${Kickstart_DistURL}"},
		Post: []Script{{Text: "hostname ${Kickstart_PublicHostname}"}},
	})
	pc := NewProfileCache(fw)
	attrs := map[string]string{"Kickstart_DistURL": "http://fe/dist"}
	for _, name := range []string{"compute-0-0", "compute-0-1", "compute-0-2"} {
		p, err := pc.Generate(Request{Appliance: "compute", Arch: "i386", NodeName: name,
			Attrs: attrs, NodeAttrs: map[string]string{"Kickstart_PublicHostname": name}})
		if err != nil {
			t.Fatal(err)
		}
		if p.NodeName != name {
			t.Errorf("NodeName = %q, want %q", p.NodeName, name)
		}
		if got := p.Post[0].Text; got != "hostname "+name {
			t.Errorf("post script = %q, want per-node hostname", got)
		}
		if url, _ := p.CommandValue("url"); url != "--url http://fe/dist" {
			t.Errorf("url = %q; shared attribute lost", url)
		}
	}
	hits, misses, _ := pc.Stats()
	if misses != 1 || hits != 2 {
		t.Errorf("stats = %d hits / %d misses; three nodes must share one traversal", hits, misses)
	}
	// A request that never supplies the deferred attribute still fails —
	// memoization must not weaken the dangling-reference contract.
	if _, err := pc.Generate(Request{Appliance: "compute", Arch: "i386", Attrs: attrs}); err == nil ||
		!strings.Contains(err.Error(), "undefined attribute") {
		t.Errorf("missing per-node attribute: err = %v", err)
	}
}

// TestProfileCacheInvalidation: any graph or node-file edit must invalidate
// atomically — the next Generate sees the new framework, never a stale
// profile.
func TestProfileCacheInvalidation(t *testing.T) {
	fw := DefaultFramework()
	pc := NewProfileCache(fw)
	attrs := defaultTestAttrs()
	req := Request{Appliance: "compute", Arch: "i386", NodeName: "compute-0-0", Attrs: attrs}
	if _, err := pc.Generate(req); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Generate(req); err != nil { // warm
		t.Fatal(err)
	}

	// Edit 1: a new module wired under compute.
	fw.AddNode(&NodeFile{Name: "site-extra", Packages: []PackageRef{{Name: "site-extra-pkg"}}})
	fw.Graph.AddEdge("compute", "site-extra")
	p, err := pc.Generate(req)
	if err != nil {
		t.Fatal(err)
	}
	if !containsString(p.Packages, "site-extra-pkg") {
		t.Fatal("graph edit served a stale profile: site-extra-pkg missing")
	}

	// Edit 2: overriding an existing node file alone (no edge change) must
	// also invalidate — that is how a site replaces a stock module.
	fw.AddNode(&NodeFile{Name: "atlas", Packages: []PackageRef{{Name: "atlas"}, {Name: "atlas-docs"}}})
	p, err = pc.Generate(req)
	if err != nil {
		t.Fatal(err)
	}
	if !containsString(p.Packages, "atlas-docs") {
		t.Fatal("node-file override served a stale profile: atlas-docs missing")
	}

	// Edit 3: merging a graph must bump the stamp too.
	before := fw.Generation()
	extra := &Graph{}
	extra.AddEdge("compute", "ekv")
	fw.Graph.Merge(extra)
	if fw.Generation() <= before {
		t.Error("Merge did not advance the generation stamp")
	}

	_, _, invalidations := pc.Stats()
	if invalidations < 2 {
		t.Errorf("invalidations = %d, want >= 2", invalidations)
	}
}

// TestProfileCacheDistinguishesAttrSets: two sites sharing a framework but
// differing in one attribute value must never share a cache entry.
func TestProfileCacheDistinguishesAttrSets(t *testing.T) {
	fw := DefaultFramework()
	pc := NewProfileCache(fw)
	a := defaultTestAttrs()
	b := defaultTestAttrs()
	b["Kickstart_Timezone"] = "Europe/Zurich"
	pa, err := pc.Generate(Request{Appliance: "compute", NodeName: "n", Attrs: a})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := pc.Generate(Request{Appliance: "compute", NodeName: "n", Attrs: b})
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := pa.CommandValue("timezone")
	tb, _ := pb.CommandValue("timezone")
	if ta == tb {
		t.Fatalf("timezone collided across attr sets: %q", ta)
	}
	_, misses, _ := pc.Stats()
	if misses != 2 {
		t.Errorf("misses = %d, want 2 distinct classes", misses)
	}
}

// TestProfileCacheConcurrentGenerate hammers one cache from many
// goroutines (the mass-reinstall shape) and checks every result against
// the uncached reference; run under -race this also proves the cache's
// synchronization.
func TestProfileCacheConcurrentGenerate(t *testing.T) {
	fw := DefaultFramework()
	pc := NewProfileCache(fw)
	attrs := defaultTestAttrs()
	classes := []struct{ app, arch string }{
		{"compute", "i386"}, {"compute", "ia64"}, {"frontend", "i386"}, {"compute", "athlon"},
	}
	want := map[string]*Profile{}
	for _, cl := range classes {
		p, err := fw.Generate(Request{Appliance: cl.app, Arch: cl.arch, NodeName: "ref", Attrs: attrs})
		if err != nil {
			t.Fatal(err)
		}
		want[cl.app+"/"+cl.arch] = p
	}

	const goroutines = 32
	const perG = 25
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				cl := classes[(g+i)%len(classes)]
				name := fmt.Sprintf("node-%d-%d", g, i)
				p, err := pc.Generate(Request{Appliance: cl.app, Arch: cl.arch, NodeName: name, Attrs: attrs})
				if err != nil {
					errc <- err
					return
				}
				if p.NodeName != name {
					errc <- fmt.Errorf("NodeName = %q, want %q", p.NodeName, name)
					return
				}
				p.NodeName = "ref"
				if !reflect.DeepEqual(p, want[cl.app+"/"+cl.arch]) {
					errc <- fmt.Errorf("%s/%s: concurrent cached profile diverged", cl.app, cl.arch)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	hits, misses, _ := pc.Stats()
	if hits+misses != goroutines*perG {
		t.Errorf("hits+misses = %d, want %d", hits+misses, goroutines*perG)
	}
	if hits == 0 {
		t.Error("no cache hits under concurrent load")
	}
}

// TestProfileCacheTraversalError: a broken graph errors identically through
// the cache and is not memoized as success.
func TestProfileCacheTraversalError(t *testing.T) {
	fw := NewFramework()
	fw.AddNode(&NodeFile{Name: "compute"})
	fw.Graph.AddEdge("compute", "ghost")
	pc := NewProfileCache(fw)
	for i := 0; i < 2; i++ {
		_, err := pc.Generate(Request{Appliance: "compute", Arch: "i386"})
		if _, ok := err.(*TraversalError); !ok {
			t.Fatalf("err = %v, want *TraversalError", err)
		}
	}
	// Repairing the graph heals the cache on the same request.
	fw.AddNode(&NodeFile{Name: "ghost", Packages: []PackageRef{{Name: "ghost-pkg"}}})
	p, err := pc.Generate(Request{Appliance: "compute", Arch: "i386"})
	if err != nil {
		t.Fatal(err)
	}
	if !containsString(p.Packages, "ghost-pkg") {
		t.Error("repaired graph not visible through cache")
	}
}

func containsString(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}

package kickstart_test

import (
	"fmt"
	"strings"

	"rocks/internal/kickstart"
)

// Example_generate shows the §6.1 pipeline in miniature: node files linked
// by a graph, traversed for an appliance, rendered as a kickstart file.
func Example_generate() {
	fw := kickstart.NewFramework()
	fw.AddNode(&kickstart.NodeFile{
		Name: "compute",
		Main: []string{"install", "url --url ${Kickstart_DistURL}"},
	})
	fw.AddNode(&kickstart.NodeFile{
		Name:     "mpi",
		Packages: []kickstart.PackageRef{{Name: "mpich"}, {Name: "pvm"}},
	})
	fw.AddNode(&kickstart.NodeFile{
		Name:     "c-development",
		Packages: []kickstart.PackageRef{{Name: "gcc"}},
		Post:     []kickstart.Script{{Text: "gcc --version >> /root/install.log"}},
	})
	fw.Graph.AddEdge("compute", "mpi")
	fw.Graph.AddEdge("mpi", "c-development")

	profile, err := fw.Generate(kickstart.Request{
		Appliance: "compute",
		Arch:      "i386",
		NodeName:  "compute-0-0",
		Attrs:     map[string]string{"Kickstart_DistURL": "http://10.1.1.1/install/dist"},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("modules:", strings.Join(profile.Modules, " "))
	fmt.Println("packages:", strings.Join(profile.Packages, " "))
	url, _ := profile.CommandValue("url")
	fmt.Println("url:", url)
	// Output:
	// modules: compute mpi c-development
	// packages: mpich pvm gcc
	// url: --url http://10.1.1.1/install/dist
}

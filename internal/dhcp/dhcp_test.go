package dhcp

import (
	"strings"
	"testing"
	"testing/quick"

	"rocks/internal/syslogd"
)

func TestMarshalRoundTrip(t *testing.T) {
	p := Packet{
		Type:       Discover,
		Xid:        0xdeadbeef,
		MAC:        "00:50:8b:e0:3a:a7",
		Hostname:   "compute-0-0",
		NextServer: "10.1.1.1",
	}
	got, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Errorf("round trip: got %+v, want %+v", got, p)
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(typ byte, xid uint32, mac, ip, host, next string) bool {
		p := Packet{Type: MessageType(typ), Xid: xid, MAC: mac, YourIP: ip,
			Hostname: host, NextServer: next}
		got, err := Unmarshal(p.Marshal())
		return err == nil && got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		[]byte("definitely not a packet"),
		Packet{Type: Discover}.Marshal()[:10], // truncated
		append(Packet{Type: Discover}.Marshal(), 0xff),        // trailing byte
		append([]byte{0, 0, 0, 0}, Packet{}.Marshal()[4:]...), // bad magic
	}
	for i, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("case %d: Unmarshal accepted garbage", i)
		}
	}
}

func TestMessageTypeString(t *testing.T) {
	if Discover.String() != "DHCPDISCOVER" || Offer.String() != "DHCPOFFER" {
		t.Error("type names wrong")
	}
	if !strings.Contains(MessageType(99).String(), "99") {
		t.Error("unknown type should render numerically")
	}
}

func TestServerOffersKnownMAC(t *testing.T) {
	log := syslogd.New()
	s := NewServer("frontend-0", log)
	s.SetBinding("aa:bb", Binding{IP: "10.255.255.254", Hostname: "compute-0-0", NextServer: "10.1.1.1"})

	reply, ok := s.HandleDHCP(Packet{Type: Discover, Xid: 7, MAC: "aa:bb"})
	if !ok {
		t.Fatal("no offer for a known MAC")
	}
	if reply.Type != Offer || reply.YourIP != "10.255.255.254" ||
		reply.Hostname != "compute-0-0" || reply.NextServer != "10.1.1.1" || reply.Xid != 7 {
		t.Errorf("offer = %+v", reply)
	}
	ack, ok := s.HandleDHCP(Packet{Type: Request, Xid: 8, MAC: "aa:bb"})
	if !ok || ack.Type != Ack {
		t.Errorf("request → %+v, %v", ack, ok)
	}
}

func TestServerLogsUnknownMAC(t *testing.T) {
	log := syslogd.New()
	s := NewServer("frontend-0", log)
	_, ok := s.HandleDHCP(Packet{Type: Discover, MAC: "de:ad:be:ef:00:01"})
	if ok {
		t.Fatal("server answered an unknown MAC")
	}
	hits := log.Grep("de:ad:be:ef:00:01")
	if len(hits) != 1 {
		t.Fatalf("syslog entries = %v", hits)
	}
	if hits[0].Tag != "dhcpd" || !strings.Contains(hits[0].Text, "DHCPDISCOVER") {
		t.Errorf("log line = %+v", hits[0])
	}
}

func TestServerIgnoresNonClientMessages(t *testing.T) {
	s := NewServer("frontend-0", nil)
	if _, ok := s.HandleDHCP(Packet{Type: Offer, MAC: "aa"}); ok {
		t.Error("server must not respond to OFFER")
	}
}

func TestBusEndToEnd(t *testing.T) {
	log := syslogd.New()
	bus := NewBus()
	s := NewServer("frontend-0", log)
	bus.Register(s)

	// Unknown MAC: no reply, but a syslog trace.
	if _, ok := bus.Broadcast(Packet{Type: Discover, MAC: "aa:bb", Xid: 1}); ok {
		t.Fatal("offer for unregistered MAC")
	}
	if len(log.Grep("aa:bb")) != 1 {
		t.Fatal("discovery not logged")
	}

	// Bind (what insert-ethers does) and retry: now the node gets its lease.
	s.SetBinding("aa:bb", Binding{IP: "10.255.255.254", Hostname: "compute-0-0", NextServer: "10.1.1.1"})
	reply, ok := bus.Broadcast(Packet{Type: Discover, MAC: "aa:bb", Xid: 2})
	if !ok || reply.YourIP != "10.255.255.254" {
		t.Fatalf("retry after binding: %+v, %v", reply, ok)
	}
}

func TestBusFirstResponderWins(t *testing.T) {
	bus := NewBus()
	a := NewServer("a", nil)
	a.SetBinding("m", Binding{IP: "10.0.0.1"})
	b := NewServer("b", nil)
	b.SetBinding("m", Binding{IP: "10.0.0.2"})
	bus.Register(a)
	bus.Register(b)
	reply, ok := bus.Broadcast(Packet{Type: Discover, MAC: "m"})
	if !ok || reply.YourIP != "10.0.0.1" {
		t.Errorf("reply = %+v, want the first server's offer", reply)
	}
}

func TestRemoveBinding(t *testing.T) {
	s := NewServer("fe", nil)
	s.SetBinding("m", Binding{IP: "10.0.0.1"})
	s.RemoveBinding("m")
	if _, ok := s.HandleDHCP(Packet{Type: Discover, MAC: "m"}); ok {
		t.Error("removed binding still answered")
	}
	if len(s.Bindings()) != 0 {
		t.Error("Bindings not empty")
	}
}

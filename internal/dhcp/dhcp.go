// Package dhcp implements the slice of DHCP that Rocks management depends
// on (§5: "For configuring Ethernet devices on compute nodes, the Dynamic
// Host Configuration Protocol is essential"): DISCOVER/OFFER over a
// broadcast segment, a server driven by a MAC→address binding table, and
// syslog emission for unknown MACs — the hook insert-ethers listens on
// (§6.4).
//
// Packets use a compact binary wire format so the code path exercises real
// marshalling, but the transport is an in-process broadcast Bus standing in
// for the private Ethernet segment.
package dhcp

import (
	"encoding/binary"
	"fmt"
	"sync"

	"rocks/internal/syslogd"
)

// MessageType is the DHCP message op.
type MessageType byte

// The message types the Rocks flow uses.
const (
	Discover MessageType = 1
	Offer    MessageType = 2
	Request  MessageType = 3
	Ack      MessageType = 4
)

// String names the message type in syslog's vocabulary.
func (t MessageType) String() string {
	switch t {
	case Discover:
		return "DHCPDISCOVER"
	case Offer:
		return "DHCPOFFER"
	case Request:
		return "DHCPREQUEST"
	case Ack:
		return "DHCPACK"
	}
	return fmt.Sprintf("DHCP(%d)", byte(t))
}

// Packet is a simplified DHCP message.
type Packet struct {
	Type       MessageType
	Xid        uint32 // transaction id
	MAC        string // client hardware address
	YourIP     string // assigned address (OFFER/ACK)
	Hostname   string // option 12
	NextServer string // siaddr: where to kickstart from
}

const wireMagic = 0x52434b53 // "RCKS"

// Marshal encodes the packet.
func (p Packet) Marshal() []byte {
	var b []byte
	b = binary.BigEndian.AppendUint32(b, wireMagic)
	b = append(b, byte(p.Type))
	b = binary.BigEndian.AppendUint32(b, p.Xid)
	for _, s := range []string{p.MAC, p.YourIP, p.Hostname, p.NextServer} {
		b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
		b = append(b, s...)
	}
	return b
}

// Unmarshal decodes a packet from wire bytes.
func Unmarshal(b []byte) (Packet, error) {
	var p Packet
	if len(b) < 9 || binary.BigEndian.Uint32(b[:4]) != wireMagic {
		return p, fmt.Errorf("dhcp: bad packet header")
	}
	p.Type = MessageType(b[4])
	p.Xid = binary.BigEndian.Uint32(b[5:9])
	rest := b[9:]
	fields := []*string{&p.MAC, &p.YourIP, &p.Hostname, &p.NextServer}
	for _, f := range fields {
		if len(rest) < 2 {
			return p, fmt.Errorf("dhcp: truncated packet")
		}
		n := int(binary.BigEndian.Uint16(rest[:2]))
		rest = rest[2:]
		if len(rest) < n {
			return p, fmt.Errorf("dhcp: truncated field")
		}
		*f = string(rest[:n])
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return p, fmt.Errorf("dhcp: %d trailing bytes", len(rest))
	}
	return p, nil
}

// Responder handles a broadcast packet, optionally replying.
type Responder interface {
	HandleDHCP(Packet) (Packet, bool)
}

// Bus is the private Ethernet broadcast segment: clients broadcast, every
// registered responder sees the packet, and the first affirmative reply is
// returned to the sender. Packets cross the bus in wire format, so both
// marshalling paths are exercised on every exchange.
type Bus struct {
	mu         sync.RWMutex
	responders []Responder
}

// NewBus creates an empty segment.
func NewBus() *Bus { return &Bus{} }

// Register attaches a responder (a DHCP server) to the segment.
func (b *Bus) Register(r Responder) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.responders = append(b.responders, r)
}

// Broadcast sends a packet to every responder and returns the first reply.
func (b *Bus) Broadcast(p Packet) (Packet, bool) {
	wire := p.Marshal()
	b.mu.RLock()
	responders := append([]Responder(nil), b.responders...)
	b.mu.RUnlock()
	for _, r := range responders {
		decoded, err := Unmarshal(wire)
		if err != nil {
			return Packet{}, false
		}
		if reply, ok := r.HandleDHCP(decoded); ok {
			// Replies also cross the wire.
			back, err := Unmarshal(reply.Marshal())
			if err != nil {
				return Packet{}, false
			}
			return back, true
		}
	}
	return Packet{}, false
}

// Binding is one static host entry in the server's configuration — the
// product of a dbreport over the nodes table.
type Binding struct {
	IP         string
	Hostname   string
	NextServer string
}

// Server answers DISCOVER/REQUEST for known MACs and logs unknown MACs to
// syslog, which is the signal insert-ethers discovers new nodes by.
type Server struct {
	mu       sync.RWMutex
	host     string // server's own hostname, used as the syslog origin
	bindings map[string]Binding
	log      *syslogd.Collector
}

// NewServer creates a DHCP server logging to the given collector.
func NewServer(host string, log *syslogd.Collector) *Server {
	return &Server{host: host, bindings: make(map[string]Binding), log: log}
}

// SetBinding installs or replaces the static entry for a MAC.
func (s *Server) SetBinding(mac string, b Binding) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bindings[mac] = b
}

// RemoveBinding deletes a MAC's entry.
func (s *Server) RemoveBinding(mac string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.bindings, mac)
}

// Bindings returns a copy of the current table.
func (s *Server) Bindings() map[string]Binding {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]Binding, len(s.bindings))
	for k, v := range s.bindings {
		out[k] = v
	}
	return out
}

// HandleDHCP implements Responder: DISCOVER→OFFER and REQUEST→ACK for known
// MACs; unknown MACs are logged and left unanswered, exactly the behavior
// insert-ethers depends on.
func (s *Server) HandleDHCP(p Packet) (Packet, bool) {
	if p.Type != Discover && p.Type != Request {
		return Packet{}, false
	}
	s.mu.RLock()
	b, ok := s.bindings[p.MAC]
	s.mu.RUnlock()
	if !ok {
		if s.log != nil {
			s.log.Log(s.host, "dhcpd", "%s from %s via eth0: network 10.0.0.0/8: no free leases",
				p.Type, p.MAC)
		}
		return Packet{}, false
	}
	reply := Packet{
		Xid:        p.Xid,
		MAC:        p.MAC,
		YourIP:     b.IP,
		Hostname:   b.Hostname,
		NextServer: b.NextServer,
	}
	if p.Type == Discover {
		reply.Type = Offer
	} else {
		reply.Type = Ack
	}
	if s.log != nil {
		s.log.Log(s.host, "dhcpd", "%s on %s to %s (%s) via eth0",
			reply.Type, b.IP, p.MAC, b.Hostname)
	}
	return reply, true
}

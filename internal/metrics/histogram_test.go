package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramObserveAndExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("fetch_seconds", "per-package fetch latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 56.05; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Sum = %g, want %g", got, want)
	}

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE fetch_seconds histogram",
		`fetch_seconds_bucket{le="0.1"} 1`,
		`fetch_seconds_bucket{le="1"} 3`,
		`fetch_seconds_bucket{le="10"} 4`,
		`fetch_seconds_bucket{le="+Inf"} 5`,
		"fetch_seconds_count 5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	// The strict parser must accept its own output and type the family.
	s, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("round-trip parse: %v", err)
	}
	if s.Types["fetch_seconds"] != TypeHistogram {
		t.Errorf("parsed type = %q, want histogram", s.Types["fetch_seconds"])
	}
	if v, _ := s.Value(`fetch_seconds_bucket{le="1"}`); v != 3 {
		t.Errorf(`le="1" bucket = %g, want 3`, v)
	}
	if v, _ := s.Value("fetch_seconds_count"); v != 5 {
		t.Errorf("count sample = %g, want 5", v)
	}
	if !s.Has("fetch_seconds") {
		t.Error("Has(fetch_seconds) = false")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%8) + 0.5) // uniform over (0,8)
	}
	if q := h.Quantile(0.5); q < 3 || q > 5 {
		t.Errorf("p50 = %g, want ~4", q)
	}
	if q := h.Quantile(0.99); q < 7 || q > 8 {
		t.Errorf("p99 = %g, want near 8", q)
	}
	h.Observe(1e9) // beyond the last bound clamps
	if q := h.Quantile(1); q != 8 {
		t.Errorf("p100 with overflow = %g, want clamp to 8", q)
	}
}

func TestHistogramBucketNormalization(t *testing.T) {
	h := NewHistogram([]float64{5, 1, 1, math.Inf(1), 3})
	if got, want := len(h.upper), 3; got != want {
		t.Fatalf("normalized bounds = %v, want 3 finite deduped", h.upper)
	}
	for i, want := range []float64{1, 3, 5} {
		if h.upper[i] != want {
			t.Errorf("bound[%d] = %g, want %g", i, h.upper[i], want)
		}
	}
	if NewHistogram(nil).upper == nil {
		t.Error("nil bounds should fall back to DefBuckets")
	}
}

func TestParseTextRejectsBrokenHistograms(t *testing.T) {
	cases := map[string]string{
		"missing count": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\n" + `h_bucket{le="+Inf"} 1` + "\nh_sum 1\n",
		"missing sum": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 1` + "\nh_count 1\n",
		"missing inf bucket": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n",
		"inf bucket != count": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 5\n",
		"decreasing buckets": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 4` + "\n" + `h_bucket{le="2"} 2` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n",
	}
	for name, text := range cases {
		if _, err := ParseText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parse accepted corrupt histogram:\n%s", name, text)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 20))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
}

// Package metrics is the cluster's observability registry: a
// dependency-free counter/gauge store with Prometheus text-format
// exposition. Every management layer — the cluster database's plan cache
// and WAL, the kickstart profile cache, the distribution server, the
// lifecycle bus, the installer, the supervisor — registers its counters
// here, and the frontend serves the whole registry at /metrics. One
// uniform surface replaces the bespoke JSON shapes each /admin endpoint
// grew: a load test scrapes before and after and asserts on deltas, and a
// real Prometheus can scrape the same endpoint unmodified (the Brookhaven
// scalability paper's point that monitoring must scale with the cluster).
//
// Two registration styles cover every producer:
//
//   - Direct instruments (Counter, Gauge, CounterVec, GaugeVec) for code
//     paths that increment inline — the control plane's per-op request
//     counts, the audit log.
//   - Collector funcs (CounterFunc, GaugeFunc, …VecFunc) for subsystems
//     that already keep atomic counters: the func samples them at scrape
//     time, so migrating an existing counter costs one closure, not a
//     rewrite of its hot path.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// TypeCounter and TypeGauge are the exposition TYPE values.
const (
	TypeCounter = "counter"
	TypeGauge   = "gauge"
)

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// value is a float64 cell updated with CAS so concurrent Add calls never
// lose increments. Counters and gauges share it; the family's type decides
// what operations the public wrapper exposes.
type value struct{ bits atomic.Uint64 }

func (v *value) load() float64 { return math.Float64frombits(v.bits.Load()) }
func (v *value) set(f float64) { v.bits.Store(math.Float64bits(f)) }
func (v *value) add(d float64) {
	for {
		old := v.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if v.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Counter is a monotonically increasing value. Decrementing is a
// programmer error the type simply does not expose.
type Counter struct{ v value }

// Inc adds one.
func (c *Counter) Inc() { c.v.add(1) }

// Add increases the counter; negative deltas panic (a counter only goes up).
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic("metrics: counter decremented")
	}
	c.v.add(d)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v value }

// Set replaces the gauge's value.
func (g *Gauge) Set(f float64) { g.v.set(f) }

// Add adjusts the gauge by d (negative allowed).
func (g *Gauge) Add(d float64) { g.v.add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.load() }

// Sample is one exposed time-series point: the label values (matching the
// family's label names positionally; nil for a scalar family) and the
// value at scrape time. Collector funcs return them.
type Sample struct {
	Labels []string
	Value  float64
}

// child is one labeled instrument inside a vec family.
type child struct {
	labels []string
	c      *Counter
	g      *Gauge
}

func (ch *child) value() float64 {
	if ch.c != nil {
		return ch.c.Value()
	}
	return ch.g.Value()
}

// family is one named metric: its metadata, and either direct instruments
// (scalar or labeled children) or a collector func.
type family struct {
	name   string
	help   string
	typ    string
	labels []string

	mu       sync.Mutex
	scalarC  *Counter
	scalarG  *Gauge
	children map[string]*child
	collect  func() []Sample
	hist     *Histogram
}

// samples snapshots the family's series, sorted by label key for stable
// output.
func (f *family) samples() []Sample {
	if f.collect != nil {
		return f.collect()
	}
	if f.scalarC != nil {
		return []Sample{{Value: f.scalarC.Value()}}
	}
	if f.scalarG != nil {
		return []Sample{{Value: f.scalarG.Value()}}
	}
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Sample, 0, len(keys))
	for _, k := range keys {
		ch := f.children[k]
		out = append(out, Sample{Labels: ch.labels, Value: ch.value()})
	}
	f.mu.Unlock()
	return out
}

// Registry holds a set of metric families. A cluster owns exactly one; the
// zero value is not usable — call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register installs a family, panicking on an invalid or duplicate name —
// both are wiring bugs a test trips immediately, not runtime conditions.
func (r *Registry) register(f *family) *family {
	if !nameRE.MatchString(f.name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !nameRE.MatchString(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l, f.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %s", f.name))
	}
	r.families[f.name] = f
	return f
}

// Counter registers and returns a scalar counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, typ: TypeCounter, scalarC: c})
	return c
}

// Gauge registers and returns a scalar gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, typ: TypeGauge, scalarG: g})
	return g
}

// CounterVec is a counter family with labels; With materializes children.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	f := r.register(&family{name: name, help: help, typ: TypeCounter,
		labels: labelNames, children: make(map[string]*child)})
	return &CounterVec{f: f}
}

// With returns the counter for the given label values, creating it on
// first use. The number of values must match the registered label names.
func (v *CounterVec) With(values ...string) *Counter {
	ch := v.f.child(values)
	return ch.c
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	f := r.register(&family{name: name, help: help, typ: TypeGauge,
		labels: labelNames, children: make(map[string]*child)})
	return &GaugeVec{f: f}
}

// With returns the gauge for the given label values, creating it on first
// use.
func (v *GaugeVec) With(values ...string) *Gauge {
	ch := v.f.child(values)
	return ch.g
}

func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	ch, ok := f.children[key]
	if !ok {
		ch = &child{labels: append([]string(nil), values...)}
		if f.typ == TypeCounter {
			ch.c = &Counter{}
		} else {
			ch.g = &Gauge{}
		}
		f.children[key] = ch
	}
	return ch
}

// CounterFunc registers a counter sampled by fn at scrape time — the
// migration path for subsystems that already keep an atomic counter.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: TypeCounter,
		collect: func() []Sample { return []Sample{{Value: fn()}} }})
}

// GaugeFunc registers a gauge sampled by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: TypeGauge,
		collect: func() []Sample { return []Sample{{Value: fn()}} }})
}

// CounterVecFunc registers a labeled counter family whose full series set
// is produced by fn at scrape time.
func (r *Registry) CounterVecFunc(name, help string, labelNames []string, fn func() []Sample) {
	r.register(&family{name: name, help: help, typ: TypeCounter, labels: labelNames, collect: fn})
}

// GaugeVecFunc registers a labeled gauge family whose full series set is
// produced by fn at scrape time.
func (r *Registry) GaugeVecFunc(name, help string, labelNames []string, fn func() []Sample) {
	r.register(&family{name: name, help: help, typ: TypeGauge, labels: labelNames, collect: fn})
}

// formatValue renders a float the way the exposition format expects:
// integers without an exponent (counters are counts; "1e+06" helps nobody
// grepping a scrape), specials as +Inf/-Inf/NaN.
func formatValue(f float64) string {
	switch {
	case math.IsInf(f, 1):
		return "+Inf"
	case math.IsInf(f, -1):
		return "-Inf"
	case math.IsNaN(f):
		return "NaN"
	case f == math.Trunc(f) && math.Abs(f) < 1<<53:
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// WriteText renders the registry in the Prometheus text exposition format
// (version 0.0.4): families sorted by name, each with HELP and TYPE lines
// followed by its samples.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, helpEscaper.Replace(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		if f.hist != nil {
			f.hist.writeTo(&b, f.name)
			continue
		}
		for _, s := range f.samples() {
			b.WriteString(f.name)
			if len(s.Labels) > 0 {
				b.WriteByte('{')
				for i, lv := range s.Labels {
					if i > 0 {
						b.WriteByte(',')
					}
					ln := ""
					if i < len(f.labels) {
						ln = f.labels[i]
					}
					fmt.Fprintf(&b, `%s=%q`, ln, labelEscaper.Replace(lv))
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatValue(s.Value))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the registry as a /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

// Families lists the registered family names, sorted — the CI smoke's
// "every registered counter is present" ground truth.
func (r *Registry) Families() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.families))
	for n := range r.families {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Scrape is a parsed exposition payload: every sample keyed exactly as
// rendered (name or name{label="value",...}), plus the family metadata from
// the TYPE lines — so a family that currently exposes zero series (an empty
// vec) is still visibly *registered*.
type Scrape struct {
	Values map[string]float64
	Types  map[string]string
}

// Has reports whether the family was present in the scrape (via its TYPE
// line or any sample).
func (s Scrape) Has(familyName string) bool {
	if _, ok := s.Types[familyName]; ok {
		return true
	}
	_, ok := s.Values[familyName]
	return ok
}

// Value returns the sample with the exact key, and whether it existed.
func (s Scrape) Value(key string) (float64, bool) {
	v, ok := s.Values[key]
	return v, ok
}

// Sum totals every sample belonging to the family — the scalar series plus
// all labeled children. Asserting on deltas of Sum is how load tests read
// a vec without caring about label sets.
func (s Scrape) Sum(familyName string) float64 {
	var total float64
	for k, v := range s.Values {
		if k == familyName || strings.HasPrefix(k, familyName+"{") {
			total += v
		}
	}
	return total
}

// ParseText parses a text-format exposition payload — the other half of
// WriteText, used by cluster-health -metrics, the CI smoke, and the
// round-trip tests. It is strict: any line that is neither a comment nor a
// well-formed sample is an error, so a corrupted exposition can't silently
// pass a smoke test.
func ParseText(rd io.Reader) (Scrape, error) {
	s := Scrape{Values: make(map[string]float64), Types: make(map[string]string)}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			// "# TYPE name counter" registers the family.
			if len(fields) >= 4 && fields[1] == "TYPE" {
				s.Types[fields[2]] = fields[3]
			}
			continue
		}
		key, val, err := parseSample(line)
		if err != nil {
			return Scrape{}, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		s.Values[key] = val
	}
	if err := sc.Err(); err != nil {
		return Scrape{}, fmt.Errorf("metrics: reading exposition: %w", err)
	}
	if err := validateHistograms(s); err != nil {
		return Scrape{}, err
	}
	return s, nil
}

// parseSample splits `name{labels} value` (labels optional) into a sample
// key and its float value, validating both halves.
func parseSample(line string) (string, float64, error) {
	var key, rest string
	if i := strings.IndexByte(line, '{'); i >= 0 {
		end := strings.LastIndexByte(line, '}')
		if end < i {
			return "", 0, fmt.Errorf("unterminated label set in %q", line)
		}
		if !nameRE.MatchString(line[:i]) {
			return "", 0, fmt.Errorf("invalid metric name in %q", line)
		}
		if err := checkLabels(line[i+1 : end]); err != nil {
			return "", 0, fmt.Errorf("%w in %q", err, line)
		}
		key, rest = line[:end+1], strings.TrimSpace(line[end+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return "", 0, fmt.Errorf("malformed sample line %q", line)
		}
		if !nameRE.MatchString(fields[0]) {
			return "", 0, fmt.Errorf("invalid metric name in %q", line)
		}
		key, rest = fields[0], fields[1]
	}
	val, err := parseValue(rest)
	if err != nil {
		return "", 0, fmt.Errorf("bad value %q in %q", rest, line)
	}
	return key, val, nil
}

// checkLabels validates a rendered label body: name="value" pairs,
// comma-separated, values quoted with the exposition escapes.
func checkLabels(body string) error {
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq <= 0 || !nameRE.MatchString(body[:eq]) {
			return fmt.Errorf("malformed label name")
		}
		rest := body[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value")
		}
		// Walk the quoted value honoring backslash escapes.
		i := 1
		for i < len(rest) {
			if rest[i] == '\\' {
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		if i >= len(rest) {
			return fmt.Errorf("unterminated label value")
		}
		body = strings.TrimPrefix(rest[i+1:], ",")
	}
	return nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// TypeHistogram is the exposition TYPE value for histogram families.
const TypeHistogram = "histogram"

// DefBuckets covers the latency range the cluster cares about: from a
// sub-millisecond cached kickstart fetch to a multi-hour whole-fleet
// reinstall, in seconds.
var DefBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 15, 60, 300, 1800, 7200,
}

// Histogram is a fixed-bucket distribution: observations land in the first
// bucket whose upper bound is >= the value, with an implicit +Inf bucket
// catching the rest. Exposition follows the Prometheus histogram contract —
// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
//
// Like Counter and Gauge it is safe for concurrent use and can exist
// unregistered (the installer's Stats keeps histograms that only reach a
// registry when a cluster wires them up).
type Histogram struct {
	upper   []float64 // ascending bucket upper bounds, +Inf excluded
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     value
}

// NewHistogram creates a histogram with the given bucket upper bounds. The
// bounds are copied, sorted, and deduplicated; a trailing +Inf is dropped
// (it is always implicit). Nil or empty buckets fall back to DefBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	upper := append([]float64(nil), bounds...)
	sort.Float64s(upper)
	dedup := upper[:0]
	for _, b := range upper {
		if math.IsNaN(b) {
			panic("metrics: NaN histogram bucket bound")
		}
		if math.IsInf(b, 1) {
			continue
		}
		if len(dedup) > 0 && dedup[len(dedup)-1] == b {
			continue
		}
		dedup = append(dedup, b)
	}
	return &Histogram{upper: dedup, buckets: make([]atomic.Uint64, len(dedup)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the bucket that spans it, the way PromQL's histogram_quantile
// does. It returns NaN with no observations; values beyond the last finite
// bound clamp to that bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum uint64
	for i, ub := range h.upper {
		prev := cum
		cum += h.buckets[i].Load()
		if float64(cum) >= rank {
			lb := 0.0
			if i > 0 {
				lb = h.upper[i-1]
			}
			width := float64(h.buckets[i].Load())
			if width == 0 {
				return ub
			}
			return lb + (ub-lb)*(rank-float64(prev))/width
		}
	}
	if n := len(h.upper); n > 0 {
		return h.upper[n-1]
	}
	return math.NaN()
}

// writeTo renders the histogram's exposition series under the family name.
func (h *Histogram) writeTo(b *strings.Builder, name string) {
	var cum uint64
	for i, ub := range h.upper {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, formatValue(ub), cum)
	}
	cum += h.buckets[len(h.upper)].Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", name, formatValue(h.sum.load()))
	fmt.Fprintf(b, "%s_count %d\n", name, cum)
}

// Histogram registers and returns a histogram family. Pass nil bounds for
// DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.RegisterHistogram(name, help, h)
	return h
}

// RegisterHistogram installs an existing histogram under the given family
// name — the collector-func analogue for subsystems that already own their
// instrument.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {
	r.register(&family{name: name, help: help, typ: TypeHistogram, hist: h})
}

// validateHistograms enforces the histogram exposition contract on a parsed
// scrape: every family declared `# TYPE x histogram` must carry x_sum,
// x_count, an le="+Inf" bucket equal to x_count, and cumulative bucket
// counts that never decrease as le rises. A scrape violating any of these
// was corrupted (or produced by a broken exporter) and must not pass a
// smoke test.
func validateHistograms(s Scrape) error {
	for name, typ := range s.Types {
		if typ != TypeHistogram {
			continue
		}
		count, ok := s.Values[name+"_count"]
		if !ok {
			return fmt.Errorf("metrics: histogram %s missing _count", name)
		}
		if _, ok := s.Values[name+"_sum"]; !ok {
			return fmt.Errorf("metrics: histogram %s missing _sum", name)
		}
		type bkt struct {
			le  float64
			cum float64
		}
		var bkts []bkt
		sawInf := false
		prefix := name + `_bucket{le="`
		for k, v := range s.Values {
			if !strings.HasPrefix(k, prefix) || !strings.HasSuffix(k, `"}`) {
				continue
			}
			leStr := k[len(prefix) : len(k)-2]
			le, err := parseValue(leStr)
			if err != nil {
				return fmt.Errorf("metrics: histogram %s: bad le bound %q", name, leStr)
			}
			if math.IsInf(le, 1) {
				sawInf = true
				if v != count {
					return fmt.Errorf("metrics: histogram %s: +Inf bucket %g != count %g", name, v, count)
				}
			}
			bkts = append(bkts, bkt{le: le, cum: v})
		}
		if !sawInf {
			return fmt.Errorf("metrics: histogram %s missing le=\"+Inf\" bucket", name)
		}
		sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
		for i := 1; i < len(bkts); i++ {
			if bkts[i].cum < bkts[i-1].cum {
				return fmt.Errorf("metrics: histogram %s: bucket counts decrease at le=%g", name, bkts[i].le)
			}
		}
	}
	return nil
}

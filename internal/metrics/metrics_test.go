package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_depth", "depth")
	c.Inc()
	c.Add(4)
	g.Set(10)
	g.Add(-3)
	g.Dec()
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %v", got)
	}
	if got := g.Value(); got != 6 {
		t.Errorf("gauge = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative counter Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_requests_total", "requests", "op")
	v.With("shoot").Inc()
	v.With("shoot").Inc()
	v.With("fork").Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_requests_total requests",
		"# TYPE test_requests_total counter",
		`test_requests_total{op="fork"} 1`,
		`test_requests_total{op="shoot"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Children render sorted: fork before shoot.
	if strings.Index(out, `op="fork"`) > strings.Index(out, `op="shoot"`) {
		t.Errorf("children not sorted:\n%s", out)
	}
}

func TestFuncCollectors(t *testing.T) {
	r := NewRegistry()
	var hits uint64 = 42
	r.CounterFunc("test_hits_total", "sampled hits", func() float64 { return float64(hits) })
	r.GaugeVecFunc("test_keys", "index keys", []string{"table", "index"}, func() []Sample {
		return []Sample{
			{Labels: []string{"nodes", "mac"}, Value: 7},
			{Labels: []string{"nodes", "ip"}, Value: 9},
		}
	})
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"test_hits_total 42",
		`test_keys{table="nodes",index="mac"} 7`,
		`test_keys{table="nodes",index="ip"} 9`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	hits = 43
	b.Reset()
	r.WriteText(&b)
	if !strings.Contains(b.String(), "test_hits_total 43") {
		t.Errorf("func collector not re-sampled:\n%s", b.String())
	}
}

func TestDuplicateAndInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_a_total", "a")
	for name, fn := range map[string]func(){
		"duplicate":      func() { r.Counter("test_a_total", "again") },
		"invalid name":   func() { r.Counter("bad name", "x") },
		"invalid label":  func() { r.CounterVec("test_b_total", "b", "bad label") },
		"label mismatch": func() { r.CounterVec("test_c_total", "c", "op").With("a", "b") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestExpositionRoundTrip is the format contract: everything WriteText
// renders, ParseText reads back to the same values — including escaped
// label values, floats, and specials.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_plain_total", "plain").Add(12345)
	r.Gauge("rt_float", "float").Set(2.5)
	r.Gauge("rt_inf", "inf").Set(math.Inf(1))
	v := r.GaugeVec("rt_labeled", "labeled", "path")
	v.With(`tricky "quoted"\and\n`).Set(3)
	v.With("plain").Set(4)
	r.CounterVec("rt_empty_total", "registered but empty", "op")

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	s, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("round-trip parse: %v\n%s", err, b.String())
	}
	if got, ok := s.Value("rt_plain_total"); !ok || got != 12345 {
		t.Errorf("rt_plain_total = %v, %v", got, ok)
	}
	if got, _ := s.Value("rt_float"); got != 2.5 {
		t.Errorf("rt_float = %v", got)
	}
	if got, _ := s.Value("rt_inf"); !math.IsInf(got, 1) {
		t.Errorf("rt_inf = %v", got)
	}
	if got := s.Sum("rt_labeled"); got != 7 {
		t.Errorf("Sum(rt_labeled) = %v", got)
	}
	// A vec family with no children yet is still visibly registered.
	if !s.Has("rt_empty_total") {
		t.Error("empty vec family missing from scrape")
	}
	if s.Has("rt_absent") {
		t.Error("Has reported an unregistered family")
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		"name{unterminated=\"x} 1\n",
		"name 1 2 3\n",
		"0bad_name 1\n",
		"name{=\"v\"} 1\n",
		"name notanumber\n",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) accepted garbage", bad)
		}
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "h").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	s, err := ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Value("h_total"); !ok || got != 1 {
		t.Errorf("h_total = %v, %v", got, ok)
	}
}

// TestConcurrentUpdates hammers one counter, one gauge, and one vec from
// many goroutines under -race; the final counts must be exact (CAS adds
// lose nothing).
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "c")
	g := r.Gauge("cg", "g")
	v := r.CounterVec("cv_total", "v", "worker")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := string(rune('a' + w%4))
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				v.With(id).Inc()
				if i%100 == 0 {
					var b strings.Builder
					r.WriteText(&b) // scrapes race with updates
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %v, want %v", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Errorf("gauge = %v, want %v", got, workers*per)
	}
	var b strings.Builder
	r.WriteText(&b)
	s, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Sum("cv_total"); got != workers*per {
		t.Errorf("vec sum = %v, want %v", got, workers*per)
	}
}

func TestFormatValue(t *testing.T) {
	for in, want := range map[float64]string{
		0:       "0",
		1000000: "1000000",
		2.5:     "2.5",
		-12:     "-12",
	} {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
}

package rpm

import (
	"archive/tar"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"time"
)

// Arch names the hardware architectures Rocks supports. The Meteor cluster
// in the paper mixes IA-32, Athlon, and IA-64 nodes under one graph (§6.1).
const (
	ArchI386   = "i386"
	ArchAthlon = "athlon"
	ArchIA64   = "ia64"
	ArchNoarch = "noarch"
	ArchSRPM   = "src" // source package, e.g. the Myrinet driver source RPM
)

// FileEntry is one file carried in a package payload.
type FileEntry struct {
	Path string // absolute path on the installed system, e.g. "/etc/dhcpd.conf"
	Mode uint32 // permission bits
	Data []byte // file contents
}

// Metadata describes a package without its payload; it is what repository
// indexes and the installed-package database store.
type Metadata struct {
	Name     string   // package name, e.g. "dhcp"
	Version  Version  // EVR
	Arch     string   // one of the Arch* constants
	Summary  string   // one-line description
	Size     int64    // installed payload size in bytes
	Requires []string // names of packages that must be installed first
	Source   string   // which repository/origin produced the package (for rocks-dist provenance)
	// Digest is the hex SHA-256 over the payload, stamped at serialization
	// time and verified on read — a corrupted mirror or truncated download
	// fails loudly instead of installing garbage.
	Digest string `json:",omitempty"`
}

// NVRA returns the canonical name-version-release.arch identifier.
func (m Metadata) NVRA() string {
	return fmt.Sprintf("%s-%s-%s.%s", m.Name, m.Version.Version, m.Version.Release, m.Arch)
}

// Filename returns the package file name, NVRA plus the ".rpm" suffix.
func (m Metadata) Filename() string { return m.NVRA() + ".rpm" }

// Package is a complete binary package: metadata, payload files, and
// optional install-time scripts.
type Package struct {
	Metadata
	Files []FileEntry
	// PostScript runs after the payload is unpacked (RPM %post). The
	// simulated installer records its execution in the node's install log.
	PostScript string
	// BuildRequires applies to source packages: the packages that must be
	// installed before the source can be compiled (e.g. kernel headers for
	// the Myrinet driver, §6.3).
	BuildRequires []string
}

// ParseFilename splits "name-version-release.arch.rpm" back into its parts.
// Package names may themselves contain dashes, so the version and release
// are taken as the last two dash-separated fields.
func ParseFilename(fn string) (Metadata, error) {
	var m Metadata
	base := path.Base(fn)
	if !strings.HasSuffix(base, ".rpm") {
		return m, fmt.Errorf("rpm: %q does not end in .rpm", fn)
	}
	base = strings.TrimSuffix(base, ".rpm")
	dot := strings.LastIndexByte(base, '.')
	if dot < 0 {
		return m, fmt.Errorf("rpm: %q has no architecture suffix", fn)
	}
	m.Arch = base[dot+1:]
	nvr := base[:dot]
	d2 := strings.LastIndexByte(nvr, '-')
	if d2 <= 0 {
		return m, fmt.Errorf("rpm: %q has no release field", fn)
	}
	d1 := strings.LastIndexByte(nvr[:d2], '-')
	if d1 <= 0 {
		return m, fmt.Errorf("rpm: %q has no version field", fn)
	}
	m.Name = nvr[:d1]
	m.Version = Version{Version: nvr[d1+1 : d2], Release: nvr[d2+1:]}
	return m, nil
}

// payloadSize sums the sizes of the payload files.
func payloadSize(files []FileEntry) int64 {
	var n int64
	for _, f := range files {
		n += int64(len(f.Data))
	}
	return n
}

// New builds a Package, filling in Size from the payload when the caller
// left it zero. A caller may set Size explicitly to model a larger package
// than the synthetic payload actually carries (the timing experiments do
// this so that 162 packages sum to the paper's 225 MB without allocating
// 225 MB of bytes).
func New(name string, version Version, arch string, files ...FileEntry) *Package {
	p := &Package{Metadata: Metadata{Name: name, Version: version, Arch: arch}, Files: files}
	p.Size = payloadSize(files)
	return p
}

const metadataEntry = "metadata.json"

// WriteTo serializes the package in the on-disk format: a tar archive whose
// first entry is metadata.json (the Metadata plus scripts) and whose
// remaining entries are the payload files. It implements io.WriterTo.
func (p *Package) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	tw := tar.NewWriter(cw)
	hdr := struct {
		Metadata
		PostScript    string   `json:"post_script,omitempty"`
		BuildRequires []string `json:"build_requires,omitempty"`
	}{p.Metadata, p.PostScript, p.BuildRequires}
	hdr.Digest = PayloadDigest(p.Files)
	meta, err := json.MarshalIndent(hdr, "", "  ")
	if err != nil {
		return cw.n, err
	}
	if err := writeTarFile(tw, metadataEntry, 0o644, meta); err != nil {
		return cw.n, err
	}
	for _, f := range p.Files {
		if err := writeTarFile(tw, "payload"+f.Path, f.Mode, f.Data); err != nil {
			return cw.n, err
		}
	}
	return cw.n, tw.Close()
}

// Read parses a package from its on-disk tar format.
func Read(r io.Reader) (*Package, error) {
	tr := tar.NewReader(r)
	first, err := tr.Next()
	if err != nil {
		return nil, fmt.Errorf("rpm: reading package: %w", err)
	}
	if first.Name != metadataEntry {
		return nil, fmt.Errorf("rpm: first entry is %q, want %q", first.Name, metadataEntry)
	}
	var hdr struct {
		Metadata
		PostScript    string   `json:"post_script"`
		BuildRequires []string `json:"build_requires"`
	}
	if err := json.NewDecoder(tr).Decode(&hdr); err != nil {
		return nil, fmt.Errorf("rpm: decoding metadata: %w", err)
	}
	p := &Package{Metadata: hdr.Metadata, PostScript: hdr.PostScript, BuildRequires: hdr.BuildRequires}
	for {
		th, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("rpm: reading payload: %w", err)
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			return nil, fmt.Errorf("rpm: reading payload %q: %w", th.Name, err)
		}
		p.Files = append(p.Files, FileEntry{
			Path: strings.TrimPrefix(th.Name, "payload"),
			Mode: uint32(th.Mode),
			Data: data,
		})
	}
	if p.Digest != "" {
		if got := PayloadDigest(p.Files); got != p.Digest {
			return nil, fmt.Errorf("rpm: %s: payload digest mismatch (corrupted package)", p.NVRA())
		}
	}
	return p, nil
}

// PayloadDigest computes the canonical SHA-256 over a payload: file paths,
// modes, and contents in path order.
func PayloadDigest(files []FileEntry) string {
	sorted := append([]FileEntry(nil), files...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	h := sha256.New()
	for _, f := range sorted {
		mode := f.Mode
		if mode == 0 {
			mode = 0o644 // the default the tar writer applies
		}
		fmt.Fprintf(h, "%s\x00%o\x00%d\x00", f.Path, mode, len(f.Data))
		h.Write(f.Data)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// EnsureDigest returns the package's payload digest, computing and stamping
// it when the package was built in memory and never serialized. Packages
// that came through WriteTo/Read already carry it. The digest is the
// package's content identity across the distribution pipeline: manifests,
// delta mirroring, and install-time verification all key on it.
func (p *Package) EnsureDigest() string {
	if p.Digest == "" {
		p.Digest = PayloadDigest(p.Files)
	}
	return p.Digest
}

// Bytes serializes the package to a byte slice.
func (p *Package) Bytes() []byte {
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		// Writing to a bytes.Buffer cannot fail; a failure here means the
		// package itself is malformed beyond repair.
		panic("rpm: serializing package: " + err.Error())
	}
	return buf.Bytes()
}

// SortMetadata orders package descriptions by name, then by version (oldest
// first), then by architecture, giving repositories a stable listing order.
func SortMetadata(ms []Metadata) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Name != ms[j].Name {
			return ms[i].Name < ms[j].Name
		}
		if c := Compare(ms[i].Version, ms[j].Version); c != 0 {
			return c < 0
		}
		return ms[i].Arch < ms[j].Arch
	})
}

func writeTarFile(tw *tar.Writer, name string, mode uint32, data []byte) error {
	if mode == 0 {
		mode = 0o644
	}
	if err := tw.WriteHeader(&tar.Header{
		Name:    name,
		Mode:    int64(mode),
		Size:    int64(len(data)),
		ModTime: time.Unix(0, 0), // fixed timestamp keeps package bytes deterministic
	}); err != nil {
		return err
	}
	_, err := tw.Write(data)
	return err
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

package rpm

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// vercmpCases are drawn from the rpmvercmp reference test suite plus cases
// exercised by the paper's own package set (kernel 2.4 updates, glibc, etc.).
var vercmpCases = []struct {
	a, b string
	want int
}{
	{"1.0", "1.0", 0},
	{"1.0", "2.0", -1},
	{"2.0", "1.0", 1},
	{"2.0.1", "2.0.1", 0},
	{"2.0", "2.0.1", -1},
	{"2.0.1", "2.0", 1},
	{"2.0.1a", "2.0.1a", 0},
	{"2.0.1a", "2.0.1", 1},
	{"2.0.1", "2.0.1a", -1},
	{"5.5p1", "5.5p1", 0},
	{"5.5p1", "5.5p2", -1},
	{"5.5p2", "5.5p1", 1},
	{"5.5p10", "5.5p10", 0},
	{"5.5p1", "5.5p10", -1},
	{"5.5p10", "5.5p1", 1},
	{"10xyz", "10.1xyz", -1},
	{"10.1xyz", "10xyz", 1},
	{"xyz10", "xyz10", 0},
	{"xyz10", "xyz10.1", -1},
	{"xyz10.1", "xyz10", 1},
	{"xyz.4", "xyz.4", 0},
	{"xyz.4", "8", -1},
	{"8", "xyz.4", 1},
	{"xyz.4", "2", -1},
	{"2", "xyz.4", 1},
	{"5.5p2", "5.6p1", -1},
	{"5.6p1", "5.5p2", 1},
	{"5.6p1", "6.5p1", -1},
	{"6.5p1", "5.6p1", 1},
	{"6.0.rc1", "6.0", 1},
	{"6.0", "6.0.rc1", -1},
	{"10b2", "10a1", 1},
	{"10a2", "10b2", -1},
	{"1.0aa", "1.0aa", 0},
	{"1.0a", "1.0aa", -1},
	{"1.0aa", "1.0a", 1},
	{"10.0001", "10.0001", 0},
	{"10.0001", "10.1", 0},
	{"10.1", "10.0001", 0},
	{"10.0001", "10.0039", -1},
	{"10.0039", "10.0001", 1},
	{"4.999.9", "5.0", -1},
	{"5.0", "4.999.9", 1},
	{"20101121", "20101121", 0},
	{"20101121", "20101122", -1},
	{"20101122", "20101121", 1},
	{"2_0", "2_0", 0},
	{"2.0", "2_0", 0},
	{"2_0", "2.0", 0},
	{"a", "a", 0},
	{"a+", "a+", 0},
	{"a+", "a_", 0},
	{"a_", "a+", 0},
	{"+a", "+a", 0},
	{"+a", "_a", 0},
	{"_a", "+a", 0},
	{"+_", "+_", 0},
	{"_+", "+_", 0},
	{"_+", "_+", 0},
	{"+", "_", 0},
	{"_", "+", 0},
	// Tilde ordering.
	{"1.0~rc1", "1.0~rc1", 0},
	{"1.0~rc1", "1.0", -1},
	{"1.0", "1.0~rc1", 1},
	{"1.0~rc1", "1.0~rc2", -1},
	{"1.0~rc2", "1.0~rc1", 1},
	{"1.0~rc1~git123", "1.0~rc1~git123", 0},
	{"1.0~rc1~git123", "1.0~rc1", -1},
	{"1.0~rc1", "1.0~rc1~git123", 1},
	// Paper-era kernel versions.
	{"2.4.9", "2.4.18", -1},
	{"2.4.18", "2.2.19", 1},
	{"7.2", "6.2", 1},
}

func TestVercmp(t *testing.T) {
	for _, c := range vercmpCases {
		if got := Vercmp(c.a, c.b); got != c.want {
			t.Errorf("Vercmp(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestVercmpAntisymmetric(t *testing.T) {
	for _, c := range vercmpCases {
		if got, rev := Vercmp(c.a, c.b), Vercmp(c.b, c.a); got != -rev {
			t.Errorf("Vercmp(%q,%q)=%d but Vercmp(%q,%q)=%d; want negation", c.a, c.b, got, c.b, c.a, rev)
		}
	}
}

// versionString generates random version-like strings for property tests.
func versionString(r *rand.Rand) string {
	const alphabet = "0123456789abcXY.~-_"
	n := r.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[r.Intn(len(alphabet))]
	}
	return string(b)
}

func TestVercmpPropertyReflexive(t *testing.T) {
	f := func(seed int64) bool {
		s := versionString(rand.New(rand.NewSource(seed)))
		return Vercmp(s, s) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVercmpPropertyAntisymmetric(t *testing.T) {
	f := func(seed1, seed2 int64) bool {
		a := versionString(rand.New(rand.NewSource(seed1)))
		b := versionString(rand.New(rand.NewSource(seed2)))
		return Vercmp(a, b) == -Vercmp(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVercmpPropertyTransitiveOnTriples(t *testing.T) {
	// Sample random triples and check transitivity of the induced order.
	f := func(s1, s2, s3 int64) bool {
		a := versionString(rand.New(rand.NewSource(s1)))
		b := versionString(rand.New(rand.NewSource(s2)))
		c := versionString(rand.New(rand.NewSource(s3)))
		if Vercmp(a, b) <= 0 && Vercmp(b, c) <= 0 {
			return Vercmp(a, c) <= 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestVercmpPropertyAppendSegmentIsNewer(t *testing.T) {
	// Appending a ".1" segment to a non-empty version that doesn't end in a
	// tilde must produce a strictly newer version.
	f := func(seed int64) bool {
		s := versionString(rand.New(rand.NewSource(seed)))
		if s == "" || s[len(s)-1] == '~' {
			return true
		}
		return Vercmp(s+".1", s) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareEpochDominates(t *testing.T) {
	a := Version{Epoch: 1, Version: "1.0", Release: "1"}
	b := Version{Epoch: 0, Version: "99.0", Release: "99"}
	if Compare(a, b) != 1 {
		t.Errorf("epoch 1 should beat epoch 0 regardless of version")
	}
	if Compare(b, a) != -1 {
		t.Errorf("epoch comparison should be antisymmetric")
	}
}

func TestCompareVersionThenRelease(t *testing.T) {
	base := Version{Version: "3.0.6", Release: "5"}
	newer := Version{Version: "3.0.6", Release: "6"}
	if Compare(base, newer) != -1 {
		t.Errorf("release 6 should be newer than release 5")
	}
	if Compare(Version{Version: "3.0.7", Release: "1"}, newer) != 1 {
		t.Errorf("version comparison should dominate release")
	}
}

func TestParseEVR(t *testing.T) {
	cases := []struct {
		in   string
		want Version
	}{
		{"3.0.6-5", Version{Version: "3.0.6", Release: "5"}},
		{"1:2.4.9-31", Version{Epoch: 1, Version: "2.4.9", Release: "31"}},
		{"7.2", Version{Version: "7.2"}},
		{"1.2.3-4.5-6", Version{Version: "1.2.3-4.5", Release: "6"}},
	}
	for _, c := range cases {
		got, err := ParseEVR(c.in)
		if err != nil {
			t.Errorf("ParseEVR(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseEVR(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseEVRErrors(t *testing.T) {
	for _, in := range []string{"", "x:1.0-1", ":1.0-1"} {
		if _, err := ParseEVR(in); err == nil {
			t.Errorf("ParseEVR(%q) should fail", in)
		}
	}
}

func TestVersionString(t *testing.T) {
	v := Version{Version: "3.0.6", Release: "5"}
	if got := v.String(); got != "3.0.6-5" {
		t.Errorf("String() = %q, want 3.0.6-5", got)
	}
	v.Epoch = 2
	if got := v.String(); got != "2:3.0.6-5" {
		t.Errorf("String() = %q, want 2:3.0.6-5", got)
	}
}

func TestParseEVRRoundTrip(t *testing.T) {
	f := func(epoch uint8, hasRelease bool) bool {
		v := Version{Epoch: int(epoch), Version: "1.2", Release: "3"}
		if !hasRelease {
			v.Release = ""
		}
		s := v.String()
		// Versions without a release render without a trailing dash.
		got, err := ParseEVR(s)
		if err != nil {
			return false
		}
		return got == v || (v.Release == "" && got.Version == v.Version && got.Epoch == v.Epoch)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package rpm

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func v(ver, rel string) Version { return Version{Version: ver, Release: rel} }

func TestNVRAAndFilename(t *testing.T) {
	p := New("dev", v("3.0.6", "5"), ArchI386)
	if got := p.NVRA(); got != "dev-3.0.6-5.i386" {
		t.Errorf("NVRA = %q", got)
	}
	if got := p.Filename(); got != "dev-3.0.6-5.i386.rpm" {
		t.Errorf("Filename = %q", got)
	}
}

func TestParseFilename(t *testing.T) {
	cases := []struct {
		in       string
		name     string
		ver, rel string
		arch     string
	}{
		{"dev-3.0.6-5.i386.rpm", "dev", "3.0.6", "5", "i386"},
		{"kernel-smp-2.4.9-31.athlon.rpm", "kernel-smp", "2.4.9", "31", "athlon"},
		{"rocks-dist-2.2.1-1.noarch.rpm", "rocks-dist", "2.2.1", "1", "noarch"},
		{"some/dir/myrinet-gm-1.5-2.src.rpm", "myrinet-gm", "1.5", "2", "src"},
	}
	for _, c := range cases {
		m, err := ParseFilename(c.in)
		if err != nil {
			t.Errorf("ParseFilename(%q): %v", c.in, err)
			continue
		}
		if m.Name != c.name || m.Version.Version != c.ver || m.Version.Release != c.rel || m.Arch != c.arch {
			t.Errorf("ParseFilename(%q) = %+v", c.in, m)
		}
	}
}

func TestParseFilenameErrors(t *testing.T) {
	for _, in := range []string{"", "foo", "foo.rpm", "foo.i386.rpm", "foo-1.i386.rpm", "-1-2.i386.rpm"} {
		if _, err := ParseFilename(in); err == nil {
			t.Errorf("ParseFilename(%q) should fail", in)
		}
	}
}

func TestParseFilenameRoundTrip(t *testing.T) {
	f := func(nameSeed, verSeed uint8) bool {
		names := []string{"dev", "kernel-smp", "glibc", "rocks-dist", "pbs-mom"}
		vers := []string{"1.0", "2.4.9", "3.0.6"}
		m := Metadata{
			Name:    names[int(nameSeed)%len(names)],
			Version: v(vers[int(verSeed)%len(vers)], "5"),
			Arch:    ArchI386,
		}
		got, err := ParseFilename(m.Filename())
		if err != nil {
			return false
		}
		return got.Name == m.Name && got.Version == m.Version && got.Arch == m.Arch
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackageRoundTrip(t *testing.T) {
	p := New("dhcp", v("2.0", "5"), ArchI386,
		FileEntry{Path: "/usr/sbin/dhcpd", Mode: 0o755, Data: []byte("#!binary dhcpd")},
		FileEntry{Path: "/etc/sysconfig/dhcpd", Mode: 0o644, Data: []byte("DHCPD_INTERFACES=\"\"\n")},
	)
	p.Summary = "DHCP server"
	p.Requires = []string{"glibc"}
	p.PostScript = "chkconfig dhcpd on"

	var buf bytes.Buffer
	n, err := p.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	q, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if q.NVRA() != p.NVRA() || q.Summary != p.Summary || q.PostScript != p.PostScript {
		t.Errorf("metadata mismatch: got %+v want %+v", q.Metadata, p.Metadata)
	}
	if !reflect.DeepEqual(q.Requires, p.Requires) {
		t.Errorf("requires mismatch: %v vs %v", q.Requires, p.Requires)
	}
	if len(q.Files) != 2 {
		t.Fatalf("got %d payload files, want 2", len(q.Files))
	}
	for i := range q.Files {
		if q.Files[i].Path != p.Files[i].Path || !bytes.Equal(q.Files[i].Data, p.Files[i].Data) {
			t.Errorf("file %d mismatch: %+v vs %+v", i, q.Files[i], p.Files[i])
		}
	}
}

func TestPackageBytesDeterministic(t *testing.T) {
	p := New("glibc", v("2.2.4", "24"), ArchI386,
		FileEntry{Path: "/lib/libc.so.6", Mode: 0o755, Data: []byte("glibc payload")})
	if !bytes.Equal(p.Bytes(), p.Bytes()) {
		t.Error("serializing the same package twice produced different bytes")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("this is not a package")); err == nil {
		t.Error("Read should reject non-tar input")
	}
}

func TestNewComputesSize(t *testing.T) {
	p := New("x", v("1", "1"), ArchNoarch,
		FileEntry{Path: "/a", Data: make([]byte, 100)},
		FileEntry{Path: "/b", Data: make([]byte, 23)})
	if p.Size != 123 {
		t.Errorf("Size = %d, want 123", p.Size)
	}
}

func TestSortMetadata(t *testing.T) {
	ms := []Metadata{
		{Name: "b", Version: v("1.0", "1"), Arch: ArchI386},
		{Name: "a", Version: v("2.0", "1"), Arch: ArchI386},
		{Name: "a", Version: v("1.0", "1"), Arch: ArchI386},
	}
	SortMetadata(ms)
	want := []string{"a-1.0-1.i386", "a-2.0-1.i386", "b-1.0-1.i386"}
	for i, m := range ms {
		if m.NVRA() != want[i] {
			t.Errorf("position %d: got %s, want %s", i, m.NVRA(), want[i])
		}
	}
}

func TestPayloadDigestVerification(t *testing.T) {
	p := New("glibc", v("2.2.4", "24"), ArchI386,
		FileEntry{Path: "/lib/libc.so.6", Mode: 0o755, Data: []byte("the real library bytes")})
	raw := p.Bytes()
	// An intact package reads back and carries the digest.
	q, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if q.Digest == "" || q.Digest != PayloadDigest(q.Files) {
		t.Errorf("digest = %q", q.Digest)
	}
	// Flip one payload byte (tar data blocks have no checksum of their
	// own): the digest check must catch it.
	idx := bytes.Index(raw, []byte("the real library bytes"))
	if idx < 0 {
		t.Fatal("payload not found in raw package")
	}
	corrupted := append([]byte(nil), raw...)
	corrupted[idx] ^= 0xff
	if _, err := Read(bytes.NewReader(corrupted)); err == nil ||
		!strings.Contains(err.Error(), "digest mismatch") {
		t.Errorf("corruption not detected: %v", err)
	}
}

func TestPayloadDigestOrderIndependent(t *testing.T) {
	a := []FileEntry{{Path: "/a", Data: []byte("1")}, {Path: "/b", Data: []byte("2")}}
	b := []FileEntry{{Path: "/b", Data: []byte("2")}, {Path: "/a", Data: []byte("1")}}
	if PayloadDigest(a) != PayloadDigest(b) {
		t.Error("digest should be canonical over file order")
	}
	if PayloadDigest(a) == PayloadDigest(a[:1]) {
		t.Error("different payloads should differ")
	}
}

package rpm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Database records the packages installed on one node — the state `rpm -q`
// inspects. The paper's pitfall questions ("What version of software X do I
// have on node Y?", §3.2) are answered by querying this database; the Rocks
// answer is that reinstallation makes the database identical on every node.
type Database struct {
	mu        sync.RWMutex
	installed map[string]Metadata // keyed by package name; one version installed at a time
	order     []string            // install order, for transcript-style listings
}

// NewDatabase returns an empty installed-package database.
func NewDatabase() *Database {
	return &Database{installed: make(map[string]Metadata)}
}

// Install records a package as installed, replacing any prior version of
// the same name (an upgrade).
func (d *Database) Install(m Metadata) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.installed[m.Name]; !ok {
		d.order = append(d.order, m.Name)
	}
	d.installed[m.Name] = m
}

// Erase removes a package record; it reports whether the package was
// installed.
func (d *Database) Erase(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.installed[name]; !ok {
		return false
	}
	delete(d.installed, name)
	for i, n := range d.order {
		if n == name {
			d.order = append(d.order[:i:i], d.order[i+1:]...)
			break
		}
	}
	return true
}

// Query returns the installed metadata for a package name, like `rpm -q`.
func (d *Database) Query(name string) (Metadata, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	m, ok := d.installed[name]
	return m, ok
}

// List returns every installed package in name order.
func (d *Database) List() []Metadata {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]Metadata, 0, len(d.installed))
	for _, m := range d.installed {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len reports the number of installed packages.
func (d *Database) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.installed)
}

// Manifest renders one NVRA per line in name order — the canonical "software
// state" of a node. Two nodes are consistent exactly when their manifests
// are byte-identical; the consistency tests in the integration suite compare
// manifests after concurrent reinstallations.
func (d *Database) Manifest() string {
	var b strings.Builder
	for _, m := range d.List() {
		fmt.Fprintln(&b, m.NVRA())
	}
	return b.String()
}

// Diff reports the package-level differences between two databases: packages
// only in d (removed), only in other (added), and present in both with
// different versions (changed, rendered "name old -> new"). All three slices
// are sorted. A cluster where every Diff against the frontend's reference
// database is empty is "consistent" in the paper's sense.
func (d *Database) Diff(other *Database) (removed, added, changed []string) {
	mine := d.List()
	theirs := other.List()
	im := make(map[string]Metadata, len(mine))
	for _, m := range mine {
		im[m.Name] = m
	}
	io := make(map[string]Metadata, len(theirs))
	for _, m := range theirs {
		io[m.Name] = m
	}
	for _, m := range mine {
		o, ok := io[m.Name]
		switch {
		case !ok:
			removed = append(removed, m.NVRA())
		case Compare(m.Version, o.Version) != 0 || m.Arch != o.Arch:
			changed = append(changed, fmt.Sprintf("%s %s -> %s", m.Name, m.Version, o.Version))
		}
	}
	for _, m := range theirs {
		if _, ok := im[m.Name]; !ok {
			added = append(added, m.NVRA())
		}
	}
	sort.Strings(removed)
	sort.Strings(added)
	sort.Strings(changed)
	return removed, added, changed
}

// Package rpm implements the package-management substrate that Rocks builds
// on: versioned binary packages (name-version-release-arch), the rpmvercmp
// version-ordering algorithm used to decide which of two packages is newer,
// an on-disk package file format, repositories, and a per-node database of
// installed packages.
//
// The paper's management strategy (§5) rests on three rules, the first of
// which is "all software deployed on Rocks clusters are in RPMs". This
// package supplies that contract: packages carry enough metadata for
// rocks-dist to resolve duplicate versions (keeping only the newest, §6.2.1)
// and enough payload for the simulated installer to materialize a node's
// root filesystem.
package rpm

import (
	"fmt"
	"strings"
)

// Version identifies one release of a package. It mirrors RPM's EVR triple:
// an optional Epoch that trumps everything, an upstream Version, and a
// packaging Release.
type Version struct {
	Epoch   int    // 0 unless explicitly set; higher epoch always wins
	Version string // upstream version, e.g. "3.0.6"
	Release string // package release, e.g. "5" or "27.7.x"
}

// String renders the version as [epoch:]version[-release].
func (v Version) String() string {
	s := v.Version
	if v.Release != "" {
		s += "-" + v.Release
	}
	if v.Epoch != 0 {
		s = fmt.Sprintf("%d:%s", v.Epoch, s)
	}
	return s
}

// ParseEVR parses "[epoch:]version[-release]" into a Version.
func ParseEVR(s string) (Version, error) {
	var v Version
	rest := s
	if i := strings.IndexByte(rest, ':'); i >= 0 {
		var epoch int
		if _, err := fmt.Sscanf(rest[:i], "%d", &epoch); err != nil {
			return v, fmt.Errorf("rpm: bad epoch in %q: %v", s, err)
		}
		v.Epoch = epoch
		rest = rest[i+1:]
	}
	if i := strings.LastIndexByte(rest, '-'); i >= 0 {
		v.Version = rest[:i]
		v.Release = rest[i+1:]
	} else {
		v.Version = rest
	}
	if v.Version == "" {
		return v, fmt.Errorf("rpm: empty version in %q", s)
	}
	return v, nil
}

// Compare orders two Versions the way RPM does: epoch first, then
// rpmvercmp on the version, then rpmvercmp on the release. It returns
// -1 if a is older than b, 0 if they are equal, and +1 if a is newer.
func Compare(a, b Version) int {
	switch {
	case a.Epoch < b.Epoch:
		return -1
	case a.Epoch > b.Epoch:
		return 1
	}
	if c := Vercmp(a.Version, b.Version); c != 0 {
		return c
	}
	return Vercmp(a.Release, b.Release)
}

// Vercmp implements the rpmvercmp segment-comparison algorithm. Strings are
// split into alternating runs of digits and letters; separators only delimit
// segments. Numeric segments compare as integers (leading zeros ignored), a
// numeric segment is always newer than an alphabetic one, and a tilde sorts
// before everything, including the end of the string (so "1.0~rc1" < "1.0").
func Vercmp(a, b string) int {
	if a == b {
		return 0
	}
	ia, ib := 0, 0
	for ia < len(a) || ib < len(b) {
		// Skip separators (anything that is not alphanumeric or '~').
		for ia < len(a) && !isAlnum(a[ia]) && a[ia] != '~' {
			ia++
		}
		for ib < len(b) && !isAlnum(b[ib]) && b[ib] != '~' {
			ib++
		}
		// Tilde sorts before everything.
		ta := ia < len(a) && a[ia] == '~'
		tb := ib < len(b) && b[ib] == '~'
		if ta || tb {
			if ta && tb {
				ia++
				ib++
				continue
			}
			if ta {
				return -1
			}
			return 1
		}
		if ia >= len(a) || ib >= len(b) {
			break
		}
		// Grab the next segment from each: a run of digits or letters.
		var sa, sb string
		numeric := isDigit(a[ia])
		if numeric {
			sa, ia = takeRun(a, ia, isDigit)
		} else {
			sa, ia = takeRun(a, ia, isAlpha)
		}
		if isDigit(b[ib]) {
			sb, ib = takeRun(b, ib, isDigit)
		} else {
			sb, ib = takeRun(b, ib, isAlpha)
		}
		if sb == "" {
			// Different segment types: numeric beats alphabetic.
			if numeric {
				return 1
			}
			return -1
		}
		if numeric != isDigit(sb[0]) {
			if numeric {
				return 1
			}
			return -1
		}
		if numeric {
			sa = strings.TrimLeft(sa, "0")
			sb = strings.TrimLeft(sb, "0")
			if len(sa) != len(sb) {
				if len(sa) > len(sb) {
					return 1
				}
				return -1
			}
		}
		if c := strings.Compare(sa, sb); c != 0 {
			return c
		}
	}
	// One string ran out of segments: the longer one is newer.
	switch {
	case ia < len(a):
		return 1
	case ib < len(b):
		return -1
	}
	return 0
}

func takeRun(s string, i int, class func(byte) bool) (string, int) {
	start := i
	for i < len(s) && class(s[i]) {
		i++
	}
	return s[start:i], i
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isAlnum(c byte) bool { return isDigit(c) || isAlpha(c) }

package rpm

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestRepositoryNewestPicksHighestVersion(t *testing.T) {
	r := NewRepository("redhat")
	r.Add(New("glibc", v("2.2.4", "13"), ArchI386))
	r.Add(New("glibc", v("2.2.4", "24"), ArchI386)) // security update
	r.Add(New("glibc", v("2.2.2", "10"), ArchI386))
	got := r.Newest("glibc", ArchI386)
	if got == nil || got.Version.Release != "24" {
		t.Fatalf("Newest = %v, want release 24", got)
	}
}

func TestRepositoryNewestArchCompatibility(t *testing.T) {
	r := NewRepository("redhat")
	r.Add(New("kernel", v("2.4.9", "31"), ArchI386))
	r.Add(New("kernel", v("2.4.9", "31"), ArchAthlon))
	r.Add(New("rocks-dist", v("2.2.1", "1"), ArchNoarch))

	if got := r.Newest("kernel", ArchAthlon); got == nil || got.Arch != ArchAthlon {
		t.Errorf("athlon node should prefer the athlon kernel, got %v", got)
	}
	if got := r.Newest("kernel", ArchI386); got == nil || got.Arch != ArchI386 {
		t.Errorf("i386 node must not get the athlon kernel, got %v", got)
	}
	if got := r.Newest("rocks-dist", ArchIA64); got == nil {
		t.Errorf("noarch packages should match any architecture")
	}
	if got := r.Newest("kernel", ArchIA64); got != nil {
		t.Errorf("ia64 node must not receive an i386 kernel, got %v", got)
	}
}

func TestRepositoryAthlonFallsBackToI386(t *testing.T) {
	r := NewRepository("redhat")
	r.Add(New("emacs", v("20.7", "34"), ArchI386))
	if got := r.Newest("emacs", ArchAthlon); got == nil {
		t.Error("athlon node should fall back to the i386 package")
	}
}

func TestRepositoryAddReplacesSameNVRA(t *testing.T) {
	r := NewRepository("local")
	a := New("foo", v("1.0", "1"), ArchI386, FileEntry{Path: "/a", Data: []byte("old")})
	b := New("foo", v("1.0", "1"), ArchI386, FileEntry{Path: "/a", Data: []byte("new")})
	r.Add(a)
	r.Add(b)
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	if got := string(r.Get("foo-1.0-1.i386").Files[0].Data); got != "new" {
		t.Errorf("re-adding the same NVRA should replace the payload, got %q", got)
	}
}

func TestRepositoryRemove(t *testing.T) {
	r := NewRepository("local")
	r.Add(New("foo", v("1.0", "1"), ArchI386))
	if !r.Remove("foo-1.0-1.i386") {
		t.Fatal("Remove returned false for an existing package")
	}
	if r.Remove("foo-1.0-1.i386") {
		t.Fatal("Remove returned true for a missing package")
	}
	if r.Newest("foo", ArchI386) != nil {
		t.Error("package still resolvable after Remove")
	}
}

func TestRepositoryResolveClosure(t *testing.T) {
	r := NewRepository("dist")
	mpich := New("mpich", v("1.2.2", "1"), ArchI386)
	mpich.Requires = []string{"glibc", "gcc"}
	gcc := New("gcc", v("2.96", "98"), ArchI386)
	gcc.Requires = []string{"glibc"}
	r.Add(mpich)
	r.Add(gcc)
	r.Add(New("glibc", v("2.2.4", "24"), ArchI386))

	got, err := r.Resolve(ArchI386, []string{"mpich"})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	var names []string
	for _, p := range got {
		names = append(names, p.Name)
	}
	want := "mpich glibc gcc"
	if strings.Join(names, " ") != want {
		t.Errorf("Resolve order = %v, want %s", names, want)
	}
}

func TestRepositoryResolveMissingNamesCulprit(t *testing.T) {
	r := NewRepository("dist")
	p := New("pbs", v("2.3.12", "1"), ArchI386)
	p.Requires = []string{"libtcl"}
	r.Add(p)
	_, err := r.Resolve(ArchI386, []string{"pbs"})
	if err == nil {
		t.Fatal("Resolve should fail on a missing dependency")
	}
	if !strings.Contains(err.Error(), "libtcl") || !strings.Contains(err.Error(), "pbs") {
		t.Errorf("error should name both the missing package and what required it: %v", err)
	}
}

func TestRepositoryResolveCycleTerminates(t *testing.T) {
	r := NewRepository("dist")
	a := New("a", v("1", "1"), ArchI386)
	a.Requires = []string{"b"}
	b := New("b", v("1", "1"), ArchI386)
	b.Requires = []string{"a"}
	r.Add(a)
	r.Add(b)
	got, err := r.Resolve(ArchI386, []string{"a"})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if len(got) != 2 {
		t.Errorf("cycle should resolve each package once, got %d", len(got))
	}
}

func TestRepositoryNamesAndAll(t *testing.T) {
	r := NewRepository("dist")
	r.Add(New("zsh", v("3.0.8", "8"), ArchI386))
	r.Add(New("bash", v("2.05", "8"), ArchI386))
	r.Add(New("bash", v("2.05a", "1"), ArchI386))
	if got := r.Names(); len(got) != 2 || got[0] != "bash" || got[1] != "zsh" {
		t.Errorf("Names = %v", got)
	}
	all := r.All()
	if len(all) != 3 || all[0].NVRA() != "bash-2.05-8.i386" || all[1].NVRA() != "bash-2.05a-1.i386" {
		t.Errorf("All = %v", all)
	}
	if got := r.Versions("bash"); len(got) != 2 || got[0].Version.Version != "2.05a" {
		t.Errorf("Versions should be newest-first, got %v", got)
	}
}

func TestRepositoryTotalSize(t *testing.T) {
	r := NewRepository("dist")
	p := New("a", v("1", "1"), ArchI386)
	p.Size = 1000
	q := New("b", v("1", "1"), ArchI386)
	q.Size = 234
	r.Add(p)
	r.Add(q)
	if got := r.TotalSize(); got != 1234 {
		t.Errorf("TotalSize = %d, want 1234", got)
	}
}

func TestRepositoryConcurrentAccess(t *testing.T) {
	// The reinstall experiments read one repository from many node
	// goroutines while rocks-dist may be refreshing it; exercise that under
	// the race detector.
	r := NewRepository("dist")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				r.Add(New(fmt.Sprintf("pkg%d", i), v("1.0", fmt.Sprint(j)), ArchI386))
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				r.Newest(fmt.Sprintf("pkg%d", i), ArchI386)
				r.Names()
			}
		}(i)
	}
	wg.Wait()
	if r.Len() != 8*50 {
		t.Errorf("Len = %d, want %d", r.Len(), 8*50)
	}
}

package rpm

import (
	"fmt"
	"sort"
	"sync"
)

// Repository is an in-memory collection of packages indexed by name. It is
// the unit rocks-dist manipulates: a Red Hat mirror, an updates directory,
// a contrib directory, and a local RPMS directory are all Repositories, and
// a built distribution is one too (§6.2).
//
// A Repository is safe for concurrent use; the installer fan-out in the
// reinstallation experiments reads one repository from many node goroutines.
type Repository struct {
	mu   sync.RWMutex
	name string
	pkgs map[string][]*Package // keyed by package name, unsorted
}

// NewRepository creates an empty repository. The name is used in package
// provenance (Metadata.Source) and diagnostics.
func NewRepository(name string) *Repository {
	return &Repository{name: name, pkgs: make(map[string][]*Package)}
}

// Name returns the repository's name.
func (r *Repository) Name() string { return r.name }

// Add inserts a package, stamping its Source with the repository name if
// the package does not already carry provenance. Adding a package with an
// NVRA that is already present replaces the existing copy (a re-pushed
// package wins, matching wget mirror semantics).
func (r *Repository) Add(p *Package) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p.Source == "" {
		p.Source = r.name
	}
	list := r.pkgs[p.Name]
	for i, q := range list {
		if q.NVRA() == p.NVRA() {
			list[i] = p
			return
		}
	}
	r.pkgs[p.Name] = append(list, p)
}

// Remove deletes the package with the given NVRA. It reports whether a
// package was removed.
func (r *Repository) Remove(nvra string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, list := range r.pkgs {
		for i, q := range list {
			if q.NVRA() == nvra {
				r.pkgs[name] = append(list[:i:i], list[i+1:]...)
				if len(r.pkgs[name]) == 0 {
					delete(r.pkgs, name)
				}
				return true
			}
		}
	}
	return false
}

// Get returns the package with the exact NVRA, or nil.
func (r *Repository) Get(nvra string) *Package {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, list := range r.pkgs {
		for _, q := range list {
			if q.NVRA() == nvra {
				return q
			}
		}
	}
	return nil
}

// Newest returns the most recent version of the named package for the given
// architecture. Packages built for ArchNoarch match any architecture, and a
// request for ArchAthlon falls back to i386 packages the way RPM's
// architecture-compatibility ladder does. It returns nil if the repository
// has no matching package.
func (r *Repository) Newest(name, arch string) *Package {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var best *Package
	for _, q := range r.pkgs[name] {
		if !archCompatible(arch, q.Arch) {
			continue
		}
		if best == nil || Compare(q.Version, best.Version) > 0 ||
			(Compare(q.Version, best.Version) == 0 && archRank(q.Arch) > archRank(best.Arch)) {
			best = q
		}
	}
	return best
}

// Versions returns every package stored under the given name, newest first.
func (r *Repository) Versions(name string) []*Package {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := append([]*Package(nil), r.pkgs[name]...)
	sort.Slice(out, func(i, j int) bool { return Compare(out[i].Version, out[j].Version) > 0 })
	return out
}

// Names returns the sorted list of package names in the repository.
func (r *Repository) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.pkgs))
	for n := range r.pkgs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns every package in the repository in stable (name, version,
// arch) order.
func (r *Repository) All() []*Package {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*Package
	for _, list := range r.pkgs {
		out = append(out, list...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if c := Compare(a.Version, b.Version); c != 0 {
			return c < 0
		}
		return a.Arch < b.Arch
	})
	return out
}

// Len reports the number of packages (all versions counted) in the
// repository.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, list := range r.pkgs {
		n += len(list)
	}
	return n
}

// TotalSize reports the sum of the installed sizes of every package.
func (r *Repository) TotalSize() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var n int64
	for _, list := range r.pkgs {
		for _, q := range list {
			n += q.Size
		}
	}
	return n
}

// Resolve expands a list of package names into concrete packages, choosing
// the newest compatible version of each and recursively adding their
// Requires closure. Names are resolved in the order given; dependencies are
// appended after the package that pulled them in, each package appearing
// once. Unresolvable names produce an error naming the missing package —
// the error a Rocks administrator sees when a node file names a package the
// distribution does not carry.
func (r *Repository) Resolve(arch string, names []string) ([]*Package, error) {
	seen := make(map[string]bool)
	var out []*Package
	var walk func(name, wantedBy string) error
	walk = func(name, wantedBy string) error {
		if seen[name] {
			return nil
		}
		seen[name] = true
		p := r.Newest(name, arch)
		if p == nil {
			if wantedBy != "" {
				return fmt.Errorf("rpm: package %q (required by %q) not found in repository %q for arch %s", name, wantedBy, r.name, arch)
			}
			return fmt.Errorf("rpm: package %q not found in repository %q for arch %s", name, r.name, arch)
		}
		out = append(out, p)
		for _, dep := range p.Requires {
			if err := walk(dep, name); err != nil {
				return err
			}
		}
		return nil
	}
	for _, n := range names {
		if err := walk(n, ""); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ArchCompatible reports whether a package built for pkgArch can install on
// a node of arch nodeArch: exact matches, noarch and source packages
// everywhere, and i386 packages on athlon nodes.
func ArchCompatible(nodeArch, pkgArch string) bool { return archCompatible(nodeArch, pkgArch) }

// archCompatible reports whether a package built for pkgArch can install on
// a node of arch nodeArch.
func archCompatible(nodeArch, pkgArch string) bool {
	if pkgArch == ArchNoarch || pkgArch == ArchSRPM {
		return true
	}
	if nodeArch == pkgArch {
		return true
	}
	// Athlon nodes run i386 packages (the compatibility ladder the Meteor
	// cluster relies on for its mixed IA-32/Athlon compute nodes).
	return nodeArch == ArchAthlon && pkgArch == ArchI386
}

// archRank prefers the most specific architecture when versions tie.
func archRank(arch string) int {
	switch arch {
	case ArchNoarch:
		return 0
	case ArchI386:
		return 1
	default:
		return 2
	}
}
